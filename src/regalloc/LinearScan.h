//===- regalloc/LinearScan.h - Linear-scan register allocation --*- C++ -*-===//
///
/// \file
/// Global linear-scan register allocation over the Alpha-like register file
/// (32 integer + 32 floating-point registers, of which 26 per class are
/// allocatable after reserving spill scratch registers and a frame base).
///
/// Runs after scheduling, as in the paper's pipeline: spill and restore code
/// is therefore *unscheduled*, which is exactly why aggressive unrolling can
/// backfire — "the independent instructions, now relatively fewer in number,
/// were less able to hide the latency of the additional spill loads"
/// (section 5.1). Spill/restore instructions are flagged so the simulator
/// reports them separately, matching the paper's instruction categories.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_REGALLOC_LINEARSCAN_H
#define BALSCHED_REGALLOC_LINEARSCAN_H

#include "ir/IR.h"

#include <string>

namespace bsched {
namespace regalloc {

// Register-file conventions (per class, indices within the class):
//  0..AllocatablePerClass-1 : allocatable (at most 28)
//  SpillScratchRegs         : spill scratch
//  FrameBaseReg (int only)  : frame base for the spill area
// Exported so the verifier can re-derive allocation legality without
// trusting the allocator's own bookkeeping.
constexpr unsigned SpillScratchRegs[3] = {28, 30, 31};
constexpr unsigned FrameBaseReg = 29;

struct RegAllocOptions {
  /// Allocatable registers per class. The rest are reserved: three spill
  /// scratch registers per class plus the frame base on the integer side.
  unsigned AllocatablePerClass = 28;
};

struct RegAllocStats {
  unsigned IntRegsUsed = 0;
  unsigned FpRegsUsed = 0;
  int SpilledVRegs = 0;
  int SpillStores = 0;   ///< spill instructions inserted.
  int RestoreLoads = 0;  ///< restore instructions inserted.
  int Remats = 0;        ///< spilled constants re-materialized at uses.
  std::string Error;     ///< empty on success.

  bool ok() const { return Error.empty(); }
};

/// Rewrites every virtual register of \p M.Fn to a physical register,
/// inserting spill/restore code against the module's spill area when the
/// register file is exhausted. The module must be laid out. With
/// \p UseReferenceImpl the preserved seed allocator (ordered-map side
/// tables) runs instead of the dense one; both produce identical code —
/// the flag exists so the compile-throughput benchmark can time the
/// pre-overhaul implementation.
RegAllocStats allocateRegisters(ir::Module &M, RegAllocOptions Opts = {},
                                bool UseReferenceImpl = false);

} // namespace regalloc
} // namespace bsched

#endif // BALSCHED_REGALLOC_LINEARSCAN_H
