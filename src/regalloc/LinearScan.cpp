//===- regalloc/LinearScan.cpp - Linear-scan register allocation -----------===//
//
// All per-vreg side tables (interval hulls, assignments, spill slots, remat
// defs) are dense vectors indexed by register id — register ids are dense by
// construction, so ordered maps only added rb-tree overhead to what a vector
// indexes directly. Iteration that used to follow map key order now walks
// ascending ids, which is the same order, so allocation decisions (and thus
// the emitted code) are unchanged.
//
//===----------------------------------------------------------------------===//

#include "regalloc/LinearScan.h"

#include "ir/Liveness.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace bsched;
using namespace bsched::regalloc;
using namespace bsched::ir;

namespace {

/// Conservative live interval: the hull of every position where the virtual
/// register is live, in linearized instruction order.
struct Interval {
  uint32_t VReg = 0;
  int Start = -1, End = -1;
  RegClass Cls = RegClass::Int;

  void extend(int Pos) {
    if (Start < 0 || Pos < Start)
      Start = Pos;
    if (Pos > End)
      End = Pos;
  }
};

class Allocator {
public:
  Allocator(Module &M, RegAllocOptions Opts) : M(M), Opts(Opts) {}

  RegAllocStats run() {
    if (Opts.AllocatablePerClass == 0 ||
        Opts.AllocatablePerClass > NumPhysPerClass - 4) {
      Stats.Error = "allocatable register count out of range";
      return Stats;
    }
    unsigned NumRegs = M.Fn.numRegs();
    Assignment.assign(NumRegs, Untouched);
    SpillSlot.assign(NumRegs, -1);
    DefCount.assign(NumRegs, 0);
    HasRemat.assign(NumRegs, 0);
    RematDef.assign(NumRegs, Instr());
    buildIntervals();
    scan();
    rewrite();
    return Stats;
  }

private:
  Module &M;
  RegAllocOptions Opts;
  RegAllocStats Stats;

  /// Assignment sentinel: the vreg never appeared in any interval.
  static constexpr int Untouched = -2;
  /// Assignment sentinel: the vreg lives in memory (spilled).
  static constexpr int Spilled = -1;

  std::vector<Interval> Intervals; ///< one per live virtual register.
  /// Reg id -> physical register id, Spilled, or Untouched.
  std::vector<int> Assignment;
  /// Reg id -> spill slot index, or -1.
  std::vector<int> SpillSlot;
  int NextSlot = 0;
  /// Reg id -> its unique constant-materializing definition (LdI/FLdI).
  /// Spills of such registers are rematerialized: the use re-executes the
  /// one-cycle immediate load instead of a memory restore.
  std::vector<uint8_t> HasRemat;
  std::vector<Instr> RematDef;
  std::vector<int> DefCount;

  void buildIntervals() {
    Function &F = M.Fn;
    Liveness L = computeLiveness(F);

    // Hull per reg id; Start < 0 marks a register never touched.
    std::vector<Interval> ByReg(F.numRegs());
    auto Touch = [&](Reg R, int Pos) {
      if (!R.isVirtual())
        return;
      Interval &I = ByReg[R.Id];
      I.VReg = R.Id;
      I.Cls = F.regClass(R);
      I.extend(Pos);
    };

    int Pos = 0;
    std::vector<Reg> Uses;
    for (const BasicBlock &B : F.Blocks) {
      int BlockStart = Pos;
      int BlockEnd = Pos + static_cast<int>(B.Instrs.size()) - 1;
      for (const Instr &In : B.Instrs) {
        Uses.clear();
        In.appendUses(Uses);
        for (Reg R : Uses)
          Touch(R, Pos);
        Touch(In.def(), Pos);
        if (Reg D = In.def(); D.isVirtual()) {
          if (++DefCount[D.Id] == 1 &&
              (In.Op == Opcode::LdI || In.Op == Opcode::FLdI)) {
            HasRemat[D.Id] = 1;
            RematDef[D.Id] = In;
          } else {
            HasRemat[D.Id] = 0;
          }
        }
        ++Pos;
      }
      // Live-in/out registers span the whole block (conservative hull).
      L.LiveIn[B.Id].forEach([&](unsigned Id) {
        Touch(Reg(Id), BlockStart);
      });
      L.LiveOut[B.Id].forEach([&](unsigned Id) {
        Touch(Reg(Id), BlockEnd);
      });
    }

    // Ascending reg id — the iteration order the ordered map used to give.
    for (Interval &I : ByReg)
      if (I.Start >= 0)
        Intervals.push_back(I);
    std::sort(Intervals.begin(), Intervals.end(),
              [](const Interval &A, const Interval &B) {
                if (A.Start != B.Start)
                  return A.Start < B.Start;
                return A.VReg < B.VReg;
              });
  }

  void scan() {
    // One independent scan per register class.
    for (RegClass Cls : {RegClass::Int, RegClass::Fp}) {
      std::vector<const Interval *> Active; // sorted by End ascending.
      std::vector<unsigned> FreeRegs;       // class-local indices.
      for (unsigned R = Opts.AllocatablePerClass; R-- > 0;)
        FreeRegs.push_back(R); // pop_back hands out low indices first.
      unsigned MaxUsed = 0;

      auto PhysId = [&](unsigned ClassLocal) {
        return Cls == RegClass::Int ? ClassLocal
                                    : NumPhysPerClass + ClassLocal;
      };

      for (const Interval &Cur : Intervals) {
        if (Cur.Cls != Cls)
          continue;
        // Expire intervals whose hull ended at or before our start: a def at
        // the position of another value's final use may share the register
        // (reads precede writes within an instruction).
        while (!Active.empty() && Active.front()->End <= Cur.Start) {
          uint32_t Freed = Active.front()->VReg;
          FreeRegs.push_back(static_cast<unsigned>(
              Cls == RegClass::Int ? Assignment[Freed]
                                   : Assignment[Freed] -
                                         static_cast<int>(NumPhysPerClass)));
          Active.erase(Active.begin());
        }
        if (!FreeRegs.empty()) {
          unsigned R = FreeRegs.back();
          FreeRegs.pop_back();
          MaxUsed = std::max(MaxUsed, R + 1);
          Assignment[Cur.VReg] = static_cast<int>(PhysId(R));
          insertActive(Active, &Cur);
          continue;
        }
        // Spill the interval that ends furthest in the future.
        const Interval *Victim = Active.empty() ? nullptr : Active.back();
        if (Victim && Victim->End > Cur.End) {
          int R = Assignment[Victim->VReg];
          Assignment[Victim->VReg] = Spilled;
          if (!HasRemat[Victim->VReg])
            SpillSlot[Victim->VReg] = NextSlot++;
          ++Stats.SpilledVRegs;
          Active.pop_back();
          Assignment[Cur.VReg] = R;
          insertActive(Active, &Cur);
        } else {
          Assignment[Cur.VReg] = Spilled;
          if (!HasRemat[Cur.VReg])
            SpillSlot[Cur.VReg] = NextSlot++;
          ++Stats.SpilledVRegs;
        }
      }
      if (Cls == RegClass::Int)
        Stats.IntRegsUsed = MaxUsed;
      else
        Stats.FpRegsUsed = MaxUsed;
    }
  }

  static void insertActive(std::vector<const Interval *> &Active,
                           const Interval *I) {
    auto It = std::lower_bound(Active.begin(), Active.end(), I,
                               [](const Interval *A, const Interval *B) {
                                 return A->End < B->End;
                               });
    Active.insert(It, I);
  }

  Reg scratch(RegClass Cls, int K) {
    unsigned Local = SpillScratchRegs[K];
    return Cls == RegClass::Int ? physIntReg(Local) : physFpReg(Local);
  }

  /// Builds a restore (load) of \p VReg's slot into \p Into.
  Instr makeRestore(uint32_t VReg, Reg Into, RegClass Cls) {
    Instr In;
    In.Op = Cls == RegClass::Int ? Opcode::Load : Opcode::FLoad;
    In.Dst = Into;
    In.Base = physIntReg(FrameBaseReg);
    assert(SpillSlot[VReg] >= 0 && "restore of a register without a slot");
    In.Offset = SpillSlot[VReg] * 8;
    In.Mem.ArrayId = M.SpillArrayId;
    In.Mem.HasForm = true;
    In.Mem.Const = In.Offset;
    In.IsRestore = true;
    ++Stats.RestoreLoads;
    return In;
  }

  Instr makeSpill(uint32_t VReg, Reg From, RegClass Cls) {
    Instr In;
    In.Op = Cls == RegClass::Int ? Opcode::Store : Opcode::FStore;
    In.SrcA = From;
    In.Base = physIntReg(FrameBaseReg);
    assert(SpillSlot[VReg] >= 0 && "spill of a register without a slot");
    In.Offset = SpillSlot[VReg] * 8;
    In.Mem.ArrayId = M.SpillArrayId;
    In.Mem.HasForm = true;
    In.Mem.Const = In.Offset;
    In.IsSpill = true;
    ++Stats.SpillStores;
    return In;
  }

  void rewrite() {
    Function &F = M.Fn;
    const ArrayInfo &SpillArea =
        M.Arrays[static_cast<size_t>(M.SpillArrayId)];
    if (static_cast<int64_t>(NextSlot) * 8 > SpillArea.sizeBytes()) {
      Stats.Error = "spill area exhausted";
      return;
    }

    // Per-instruction scratch replacements: at most one per readable
    // operand (SrcA/SrcB/SrcC/Base/Dst), so a fixed array suffices.
    struct Replacement {
      uint32_t VReg;
      Reg Phys;
    };
    Replacement Replaced[8];

    for (BasicBlock &B : F.Blocks) {
      std::vector<Instr> Out;
      Out.reserve(B.Instrs.size());
      for (Instr &Orig : B.Instrs) {
        Instr In = std::move(Orig);
        // Restores for spilled sources; one scratch per distinct register.
        int NextScratch[2] = {0, 0};
        int NumReplaced = 0;
        auto Fix = [&](Reg &R) {
          if (!R.isVirtual())
            return;
          int Phys = Assignment[R.Id];
          assert(Phys != Untouched && "use of a register with no interval");
          if (Phys >= 0) {
            R = Reg(static_cast<uint32_t>(Phys));
            return;
          }
          for (int K = 0; K != NumReplaced; ++K)
            if (Replaced[K].VReg == R.Id) {
              R = Replaced[K].Phys;
              return;
            }
          RegClass Cls = F.regClass(R);
          int K = NextScratch[Cls == RegClass::Fp ? 1 : 0]++;
          Reg S = scratch(Cls, K);
          if (HasRemat[R.Id]) {
            Instr Clone = RematDef[R.Id];
            Clone.Dst = S;
            Clone.IsRemat = true;
            Out.push_back(Clone);
            ++Stats.Remats;
          } else {
            Out.push_back(makeRestore(R.Id, S, Cls));
          }
          Replaced[NumReplaced++] = {R.Id, S};
          R = S;
        };

        // CMov/FCMov reads its old destination; restore it like a source.
        bool ReadsDst = In.Op == Opcode::CMov || In.Op == Opcode::FCMov;
        uint32_t DstVReg =
            In.def().isValid() && In.Dst.isVirtual() ? In.Dst.Id : Reg().Id;

        Fix(In.SrcA);
        Fix(In.SrcB);
        Fix(In.SrcC);
        Fix(In.Base);
        if (ReadsDst && In.Dst.isVirtual() && Assignment[In.Dst.Id] < 0)
          Fix(In.Dst); // restores old value into a scratch; spilled below.
        else if (In.Dst.isVirtual()) {
          int Phys = Assignment[In.Dst.Id];
          if (Phys >= 0)
            In.Dst = Reg(static_cast<uint32_t>(Phys));
          else {
            RegClass Cls = F.regClass(In.Dst);
            int K = NextScratch[Cls == RegClass::Fp ? 1 : 0]++;
            In.Dst = scratch(Cls, K);
          }
        }

        // Remap MemRef terms so post-allocation consumers see physical ids;
        // spilled symbols lose the exact form. A term register can also be
        // gone entirely (cleanup propagated the copy and removed the def, so
        // it has no interval); the symbolic form is then lost too.
        for (auto TIt = In.Mem.Terms.begin(); TIt != In.Mem.Terms.end();) {
          Reg TR(TIt->RegId);
          if (!TR.isVirtual()) {
            ++TIt;
            continue;
          }
          int Phys =
              TIt->RegId < Assignment.size() ? Assignment[TIt->RegId] : Untouched;
          if (Phys >= 0) {
            TIt->RegId = static_cast<uint32_t>(Phys);
            ++TIt;
          } else {
            In.Mem.HasForm = false;
            In.Mem.Terms.clear();
            break;
          }
        }

        Out.push_back(std::move(In));

        // Spill the defined value if its vreg lives in memory; constants
        // are rematerialized at their uses instead.
        if (DstVReg != Reg().Id && Assignment[DstVReg] < 0 &&
            !HasRemat[DstVReg]) {
          RegClass Cls = F.regClass(Reg(DstVReg));
          Out.push_back(makeSpill(DstVReg, Out.back().Dst, Cls));
        }
      }
      // A terminator must stay last: spills after a terminator are illegal,
      // but terminators never define registers, so none are emitted.
      B.Instrs = std::move(Out);
    }

    // Initialize the frame base at function entry.
    Instr Init;
    Init.Op = Opcode::LdI;
    Init.Dst = physIntReg(FrameBaseReg);
    Init.Imm = static_cast<int64_t>(SpillArea.Base);
    Init.HasImm = true;
    F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(), Init);
  }
};

/// The seed allocator, preserved verbatim: ordered-map side tables and a
/// per-instruction copy in rewrite(). Identical allocation decisions to the
/// dense Allocator above (map key order == ascending reg-id order); kept as
/// the compile-throughput baseline and differential-testing oracle.
class ReferenceAllocator {
public:
  ReferenceAllocator(Module &M, RegAllocOptions Opts) : M(M), Opts(Opts) {}

  RegAllocStats run() {
    if (Opts.AllocatablePerClass == 0 ||
        Opts.AllocatablePerClass > NumPhysPerClass - 4) {
      Stats.Error = "allocatable register count out of range";
      return Stats;
    }
    buildIntervals();
    scan();
    rewrite();
    return Stats;
  }

private:
  Module &M;
  RegAllocOptions Opts;
  RegAllocStats Stats;

  std::vector<Interval> Intervals; ///< one per live virtual register.
  /// VReg id -> physical register id, or -1 when spilled.
  std::map<uint32_t, int> Assignment;
  /// VReg id -> spill slot index.
  std::map<uint32_t, int> SpillSlot;
  int NextSlot = 0;
  /// VReg id -> its unique constant-materializing definition (LdI/FLdI).
  /// Spills of such registers are rematerialized: the use re-executes the
  /// one-cycle immediate load instead of a memory restore.
  std::map<uint32_t, Instr> RematDef;
  std::map<uint32_t, int> DefCount;

  void buildIntervals() {
    Function &F = M.Fn;
    Liveness L = computeLiveness(F);

    std::map<uint32_t, Interval> ByReg;
    auto Touch = [&](Reg R, int Pos) {
      if (!R.isVirtual())
        return;
      Interval &I = ByReg[R.Id];
      I.VReg = R.Id;
      I.Cls = F.regClass(R);
      I.extend(Pos);
    };

    int Pos = 0;
    std::vector<Reg> Uses;
    for (const BasicBlock &B : F.Blocks) {
      int BlockStart = Pos;
      int BlockEnd = Pos + static_cast<int>(B.Instrs.size()) - 1;
      for (const Instr &In : B.Instrs) {
        Uses.clear();
        In.appendUses(Uses);
        for (Reg R : Uses)
          Touch(R, Pos);
        Touch(In.def(), Pos);
        if (Reg D = In.def(); D.isVirtual()) {
          if (++DefCount[D.Id] == 1 &&
              (In.Op == Opcode::LdI || In.Op == Opcode::FLdI))
            RematDef[D.Id] = In;
          else
            RematDef.erase(D.Id);
        }
        ++Pos;
      }
      // Live-in/out registers span the whole block (conservative hull).
      L.LiveIn[B.Id].forEach([&](unsigned Id) {
        Touch(Reg(Id), BlockStart);
      });
      L.LiveOut[B.Id].forEach([&](unsigned Id) {
        Touch(Reg(Id), BlockEnd);
      });
    }

    Intervals.reserve(ByReg.size());
    for (auto &[Id, I] : ByReg) {
      (void)Id;
      Intervals.push_back(I);
    }
    std::sort(Intervals.begin(), Intervals.end(),
              [](const Interval &A, const Interval &B) {
                if (A.Start != B.Start)
                  return A.Start < B.Start;
                return A.VReg < B.VReg;
              });
  }

  void scan() {
    // One independent scan per register class.
    for (RegClass Cls : {RegClass::Int, RegClass::Fp}) {
      std::vector<const Interval *> Active; // sorted by End ascending.
      std::vector<unsigned> FreeRegs;       // class-local indices.
      for (unsigned R = Opts.AllocatablePerClass; R-- > 0;)
        FreeRegs.push_back(R); // pop_back hands out low indices first.
      unsigned MaxUsed = 0;

      auto PhysId = [&](unsigned ClassLocal) {
        return Cls == RegClass::Int ? ClassLocal
                                    : NumPhysPerClass + ClassLocal;
      };

      for (const Interval &Cur : Intervals) {
        if (Cur.Cls != Cls)
          continue;
        // Expire intervals whose hull ended at or before our start: a def at
        // the position of another value's final use may share the register
        // (reads precede writes within an instruction).
        while (!Active.empty() && Active.front()->End <= Cur.Start) {
          uint32_t Freed = Active.front()->VReg;
          FreeRegs.push_back(static_cast<unsigned>(
              Cls == RegClass::Int ? Assignment[Freed]
                                   : Assignment[Freed] -
                                         static_cast<int>(NumPhysPerClass)));
          Active.erase(Active.begin());
        }
        if (!FreeRegs.empty()) {
          unsigned R = FreeRegs.back();
          FreeRegs.pop_back();
          MaxUsed = std::max(MaxUsed, R + 1);
          Assignment[Cur.VReg] = static_cast<int>(PhysId(R));
          insertActive(Active, &Cur);
          continue;
        }
        // Spill the interval that ends furthest in the future.
        const Interval *Victim = Active.empty() ? nullptr : Active.back();
        if (Victim && Victim->End > Cur.End) {
          int R = Assignment[Victim->VReg];
          Assignment[Victim->VReg] = -1;
          if (!RematDef.count(Victim->VReg))
            SpillSlot[Victim->VReg] = NextSlot++;
          ++Stats.SpilledVRegs;
          Active.pop_back();
          Assignment[Cur.VReg] = R;
          insertActive(Active, &Cur);
        } else {
          Assignment[Cur.VReg] = -1;
          if (!RematDef.count(Cur.VReg))
            SpillSlot[Cur.VReg] = NextSlot++;
          ++Stats.SpilledVRegs;
        }
      }
      if (Cls == RegClass::Int)
        Stats.IntRegsUsed = MaxUsed;
      else
        Stats.FpRegsUsed = MaxUsed;
    }
  }

  static void insertActive(std::vector<const Interval *> &Active,
                           const Interval *I) {
    auto It = std::lower_bound(Active.begin(), Active.end(), I,
                               [](const Interval *A, const Interval *B) {
                                 return A->End < B->End;
                               });
    Active.insert(It, I);
  }

  Reg scratch(RegClass Cls, int K) {
    unsigned Local = SpillScratchRegs[K];
    return Cls == RegClass::Int ? physIntReg(Local) : physFpReg(Local);
  }

  /// Builds a restore (load) of \p VReg's slot into \p Into.
  Instr makeRestore(uint32_t VReg, Reg Into, RegClass Cls) {
    Instr In;
    In.Op = Cls == RegClass::Int ? Opcode::Load : Opcode::FLoad;
    In.Dst = Into;
    In.Base = physIntReg(FrameBaseReg);
    In.Offset = SpillSlot.at(VReg) * 8;
    In.Mem.ArrayId = M.SpillArrayId;
    In.Mem.HasForm = true;
    In.Mem.Const = In.Offset;
    In.IsRestore = true;
    ++Stats.RestoreLoads;
    return In;
  }

  Instr makeSpill(uint32_t VReg, Reg From, RegClass Cls) {
    Instr In;
    In.Op = Cls == RegClass::Int ? Opcode::Store : Opcode::FStore;
    In.SrcA = From;
    In.Base = physIntReg(FrameBaseReg);
    In.Offset = SpillSlot.at(VReg) * 8;
    In.Mem.ArrayId = M.SpillArrayId;
    In.Mem.HasForm = true;
    In.Mem.Const = In.Offset;
    In.IsSpill = true;
    ++Stats.SpillStores;
    return In;
  }

  void rewrite() {
    Function &F = M.Fn;
    const ArrayInfo &SpillArea =
        M.Arrays[static_cast<size_t>(M.SpillArrayId)];
    if (static_cast<int64_t>(NextSlot) * 8 > SpillArea.sizeBytes()) {
      Stats.Error = "spill area exhausted";
      return;
    }

    for (BasicBlock &B : F.Blocks) {
      std::vector<Instr> Out;
      Out.reserve(B.Instrs.size());
      for (Instr In : B.Instrs) {
        // Restores for spilled sources; one scratch per distinct register.
        int NextScratch[2] = {0, 0};
        std::map<uint32_t, Reg> Replaced;
        auto Fix = [&](Reg &R) {
          if (!R.isVirtual())
            return;
          int Phys = Assignment.at(R.Id);
          if (Phys >= 0) {
            R = Reg(static_cast<uint32_t>(Phys));
            return;
          }
          auto It = Replaced.find(R.Id);
          if (It != Replaced.end()) {
            R = It->second;
            return;
          }
          RegClass Cls = F.regClass(R);
          int K = NextScratch[Cls == RegClass::Fp ? 1 : 0]++;
          Reg S = scratch(Cls, K);
          auto RIt = RematDef.find(R.Id);
          if (RIt != RematDef.end()) {
            Instr Clone = RIt->second;
            Clone.Dst = S;
            Clone.IsRemat = true;
            Out.push_back(Clone);
            ++Stats.Remats;
          } else {
            Out.push_back(makeRestore(R.Id, S, Cls));
          }
          Replaced[R.Id] = S;
          R = S;
        };

        // CMov/FCMov reads its old destination; restore it like a source.
        bool ReadsDst = In.Op == Opcode::CMov || In.Op == Opcode::FCMov;
        uint32_t DstVReg =
            In.def().isValid() && In.Dst.isVirtual() ? In.Dst.Id : Reg().Id;

        Fix(In.SrcA);
        Fix(In.SrcB);
        Fix(In.SrcC);
        Fix(In.Base);
        if (ReadsDst && In.Dst.isVirtual() && Assignment.at(In.Dst.Id) < 0)
          Fix(In.Dst); // restores old value into a scratch; spilled below.
        else if (In.Dst.isVirtual()) {
          int Phys = Assignment.at(In.Dst.Id);
          if (Phys >= 0)
            In.Dst = Reg(static_cast<uint32_t>(Phys));
          else {
            RegClass Cls = F.regClass(In.Dst);
            int K = NextScratch[Cls == RegClass::Fp ? 1 : 0]++;
            In.Dst = scratch(Cls, K);
          }
        }

        // Remap MemRef terms so post-allocation consumers see physical ids;
        // spilled symbols lose the exact form.
        for (auto TIt = In.Mem.Terms.begin(); TIt != In.Mem.Terms.end();) {
          Reg TR(TIt->RegId);
          if (!TR.isVirtual()) {
            ++TIt;
            continue;
          }
          // A term register can be gone entirely (cleanup propagated the
          // copy and removed the def); the symbolic form is then lost.
          auto AIt = Assignment.find(TIt->RegId);
          if (AIt != Assignment.end() && AIt->second >= 0) {
            TIt->RegId = static_cast<uint32_t>(AIt->second);
            ++TIt;
          } else {
            In.Mem.HasForm = false;
            In.Mem.Terms.clear();
            break;
          }
        }

        Out.push_back(In);

        // Spill the defined value if its vreg lives in memory; constants
        // are rematerialized at their uses instead.
        if (DstVReg != Reg().Id && Assignment.at(DstVReg) < 0 &&
            !RematDef.count(DstVReg)) {
          RegClass Cls = F.regClass(Reg(DstVReg));
          Out.push_back(makeSpill(DstVReg, Out.back().Dst, Cls));
        }
      }
      // A terminator must stay last: spills after a terminator are illegal,
      // but terminators never define registers, so none are emitted.
      B.Instrs = std::move(Out);
    }

    // Initialize the frame base at function entry.
    Instr Init;
    Init.Op = Opcode::LdI;
    Init.Dst = physIntReg(FrameBaseReg);
    Init.Imm = static_cast<int64_t>(SpillArea.Base);
    Init.HasImm = true;
    F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(), Init);
  }
};

} // namespace

RegAllocStats regalloc::allocateRegisters(Module &M, RegAllocOptions Opts,
                                          bool UseReferenceImpl) {
  return UseReferenceImpl ? ReferenceAllocator(M, Opts).run()
                          : Allocator(M, Opts).run();
}
