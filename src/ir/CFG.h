//===- ir/CFG.h - Control-flow analyses --------------------------*- C++ -*-===//
///
/// \file
/// Generic CFG analyses shared by trace formation, the static frequency
/// estimator and the loop-invariant hoister: DFS back-edge identification
/// and natural-loop discovery.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_CFG_H
#define BALSCHED_IR_CFG_H

#include "ir/IR.h"

#include <vector>

namespace bsched {
namespace ir {

/// Back[b][k] is true when successor slot k of block b is a DFS back edge
/// (its target is an ancestor on the DFS stack).
std::vector<std::vector<bool>> findBackEdges(const Function &F);

/// A natural loop: the target of a back edge plus every block that reaches
/// the back edge's source without passing through the header.
struct NaturalLoop {
  int Header = -1;
  int Latch = -1;               ///< source of the defining back edge.
  std::vector<bool> Contains;   ///< per block id.
  /// The unique predecessor of Header outside the loop, or -1 when the
  /// header has several outside predecessors.
  int Preheader = -1;
};

/// All natural loops of \p F, one per back edge.
std::vector<NaturalLoop> findNaturalLoops(const Function &F);

/// Loop-nesting depth per block (number of natural loops containing it).
std::vector<int> loopDepths(const Function &F);

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_CFG_H
