//===- ir/IRParser.h - Textual IR parser ------------------------*- C++ -*-===//
///
/// \file
/// Parser for the textual IR form emitted by printModule/printFunction,
/// closing the loop for IR-level tests and tooling:
///
///     array A 1024            # 1024 f64 cells, 32-byte aligned
///     array Out 8 output      # checksummed
///     func kernel
///     b0:
///       ldi v0, 64
///       fld f1, 8(v0)  ; miss
///       br v2, b1, b0
///     ...
///
/// Virtual-register classes are inferred from the operand slots of the
/// opcodes that use them (and cross-checked by the verifier). MemRef affine
/// forms are not part of the textual format; parsed memory operations carry
/// no aliasing information, so a scheduler run on re-parsed IR is
/// conservative. Functional behaviour (interpretation) round-trips exactly.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_IRPARSER_H
#define BALSCHED_IR_IRPARSER_H

#include "ir/IR.h"

#include <string>

namespace bsched {
namespace ir {

/// Renders \p M as re-parseable text: array headers followed by the
/// function body.
std::string printModule(const Module &M);

struct ParseIRResult {
  Module M;
  std::string Error; ///< empty on success ("line N: message" otherwise).

  bool ok() const { return Error.empty(); }
};

/// Parses printModule output. The returned module is laid out and verified.
ParseIRResult parseModule(const std::string &Text);

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_IRPARSER_H
