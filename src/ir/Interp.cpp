//===- ir/Interp.cpp - Functional IR interpreter --------------------------===//

#include "ir/Interp.h"

#include <cstring>

using namespace bsched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// ExecState
//===----------------------------------------------------------------------===//

ExecState::ExecState(const Module &M)
    : Regs(M.Fn.numRegs(), 0), Memory(M.MemorySize, 0) {
  assert(M.MemorySize != 0 && "module must be laid out before execution");
}

double ExecState::readFp(Reg R) const {
  double V;
  std::memcpy(&V, &Regs[R.Id], sizeof(double));
  return V;
}

void ExecState::writeFp(Reg R, double V) {
  std::memcpy(&Regs[R.Id], &V, sizeof(double));
}

uint64_t ExecState::loadWord(uint64_t Addr) const {
  // Non-faulting loads: trace scheduling may hoist a load above the branch
  // guarding it (section 3.2 permits speculating instructions that do not
  // write memory and whose destination is dead off-trace). On the
  // misspeculated path the address can be arbitrary, so out-of-range reads
  // return deterministic garbage instead of faulting — the value is dead by
  // the speculation-safety rule. Both the interpreter and the simulator use
  // this routine, so checksums stay comparable.
  if (Addr + 8 > Memory.size() || Addr + 8 < Addr)
    return 0xdeadbeefdeadbeefull ^ Addr;
  uint64_t V;
  std::memcpy(&V, &Memory[Addr], 8);
  return V;
}

void ExecState::storeWord(uint64_t Addr, uint64_t V) {
  assert(Addr + 8 <= Memory.size() && "store out of bounds");
  std::memcpy(&Memory[Addr], &V, 8);
}

uint64_t ExecState::outputChecksum(const Module &M) const {
  uint64_t Hash = 1469598103934665603ull;
  for (const ArrayInfo &A : M.Arrays) {
    if (!A.IsOutput)
      continue;
    const uint8_t *Data = Memory.data() + A.Base;
    for (int64_t I = 0; I != A.sizeBytes(); ++I) {
      Hash ^= Data[I];
      Hash *= 1099511628211ull;
    }
  }
  return Hash;
}

//===----------------------------------------------------------------------===//
// Instruction execution
//===----------------------------------------------------------------------===//

void ir::executeInstr(ExecState &S, const Instr &I) {
  auto B = [&]() -> int64_t {
    return I.SrcB.isValid() ? S.readInt(I.SrcB) : I.Imm;
  };
  switch (I.Op) {
  case Opcode::LdI:
    S.writeInt(I.Dst, I.Imm);
    break;
  case Opcode::FLdI:
    S.writeFp(I.Dst, I.fimm());
    break;
  case Opcode::Mov:
    S.writeInt(I.Dst, S.readInt(I.SrcA));
    break;
  case Opcode::FMov:
    S.writeFp(I.Dst, S.readFp(I.SrcA));
    break;
  case Opcode::ItoF:
    S.writeFp(I.Dst, static_cast<double>(S.readInt(I.SrcA)));
    break;
  case Opcode::FtoI:
    S.writeInt(I.Dst, static_cast<int64_t>(S.readFp(I.SrcA)));
    break;
  case Opcode::IAdd:
    S.writeInt(I.Dst, S.readInt(I.SrcA) + B());
    break;
  case Opcode::ISub:
    S.writeInt(I.Dst, S.readInt(I.SrcA) - B());
    break;
  case Opcode::IMul:
    S.writeInt(I.Dst, S.readInt(I.SrcA) * B());
    break;
  case Opcode::Sll:
    S.writeInt(I.Dst, S.readInt(I.SrcA) << (B() & 63));
    break;
  case Opcode::Srl:
    S.writeInt(I.Dst,
               static_cast<int64_t>(
                   static_cast<uint64_t>(S.readInt(I.SrcA)) >> (B() & 63)));
    break;
  case Opcode::And:
    S.writeInt(I.Dst, S.readInt(I.SrcA) & B());
    break;
  case Opcode::Or:
    S.writeInt(I.Dst, S.readInt(I.SrcA) | B());
    break;
  case Opcode::Xor:
    S.writeInt(I.Dst, S.readInt(I.SrcA) ^ B());
    break;
  case Opcode::CmpEq:
    S.writeInt(I.Dst, S.readInt(I.SrcA) == B() ? 1 : 0);
    break;
  case Opcode::CmpLt:
    S.writeInt(I.Dst, S.readInt(I.SrcA) < B() ? 1 : 0);
    break;
  case Opcode::CmpLe:
    S.writeInt(I.Dst, S.readInt(I.SrcA) <= B() ? 1 : 0);
    break;
  case Opcode::FAdd:
    S.writeFp(I.Dst, S.readFp(I.SrcA) + S.readFp(I.SrcB));
    break;
  case Opcode::FSub:
    S.writeFp(I.Dst, S.readFp(I.SrcA) - S.readFp(I.SrcB));
    break;
  case Opcode::FMul:
    S.writeFp(I.Dst, S.readFp(I.SrcA) * S.readFp(I.SrcB));
    break;
  case Opcode::FDiv:
    S.writeFp(I.Dst, S.readFp(I.SrcA) / S.readFp(I.SrcB));
    break;
  case Opcode::FCmpEq:
    S.writeInt(I.Dst, S.readFp(I.SrcA) == S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLt:
    S.writeInt(I.Dst, S.readFp(I.SrcA) < S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLe:
    S.writeInt(I.Dst, S.readFp(I.SrcA) <= S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::CMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeInt(I.Dst, S.readInt(I.SrcB));
    break;
  case Opcode::FCMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeFp(I.Dst, S.readFp(I.SrcB));
    break;
  case Opcode::Load:
    S.writeInt(I.Dst, static_cast<int64_t>(S.loadWord(
                          S.effectiveAddress(I))));
    break;
  case Opcode::FLoad: {
    uint64_t Bits = S.loadWord(S.effectiveAddress(I));
    double V;
    std::memcpy(&V, &Bits, 8);
    S.writeFp(I.Dst, V);
    break;
  }
  case Opcode::Store:
    S.storeWord(S.effectiveAddress(I),
                static_cast<uint64_t>(S.readInt(I.SrcA)));
    break;
  case Opcode::FStore: {
    double V = S.readFp(I.SrcA);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    S.storeWord(S.effectiveAddress(I), Bits);
    break;
  }
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    assert(false && "terminators are handled by the execution loop");
    break;
  }
}

//===----------------------------------------------------------------------===//
// Interpreter loop
//===----------------------------------------------------------------------===//

InterpResult ir::interpret(const Module &M, uint64_t MaxInstrs) {
  const Function &F = M.Fn;
  ExecState S(M);
  InterpResult R;
  R.BlockCounts.assign(F.Blocks.size(), 0);
  R.EdgeCounts.assign(F.Blocks.size(), {0, 0});

  int Block = 0;
  while (true) {
    const BasicBlock &BB = F.Blocks[Block];
    ++R.BlockCounts[Block];
    if (R.DynInstrs + BB.Instrs.size() > MaxInstrs)
      return R;
    R.DynInstrs += BB.Instrs.size();
    for (size_t K = 0; K + 1 < BB.Instrs.size(); ++K)
      executeInstr(S, BB.Instrs[K]);
    const Instr &T = BB.terminator();
    switch (T.Op) {
    case Opcode::Br:
      if (S.readInt(T.SrcA) != 0) {
        ++R.EdgeCounts[Block][0];
        Block = T.Target0;
      } else {
        ++R.EdgeCounts[Block][1];
        Block = T.Target1;
      }
      break;
    case Opcode::Jmp:
      ++R.EdgeCounts[Block][0];
      Block = T.Target0;
      break;
    case Opcode::Ret:
      R.Finished = true;
      R.Checksum = S.outputChecksum(M);
      return R;
    default:
      assert(false && "bad terminator");
      return R;
    }
  }
}
