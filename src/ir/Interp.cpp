//===- ir/Interp.cpp - Functional IR interpreter --------------------------===//

#include "ir/Interp.h"

#include <cstring>

using namespace bsched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// ExecState
//===----------------------------------------------------------------------===//

ExecState::ExecState(const Module &M)
    : Regs(M.Fn.numRegs(), 0), Memory(M.MemorySize, 0) {
  assert(M.MemorySize != 0 && "module must be laid out before execution");
}

double ExecState::readFp(Reg R) const {
  double V;
  std::memcpy(&V, &Regs[R.Id], sizeof(double));
  return V;
}

void ExecState::writeFp(Reg R, double V) {
  std::memcpy(&Regs[R.Id], &V, sizeof(double));
}

uint64_t ExecState::loadWord(uint64_t Addr) const {
  // Non-faulting loads: trace scheduling may hoist a load above the branch
  // guarding it (section 3.2 permits speculating instructions that do not
  // write memory and whose destination is dead off-trace). On the
  // misspeculated path the address can be arbitrary, so out-of-range reads
  // return deterministic garbage instead of faulting — the value is dead by
  // the speculation-safety rule. Both the interpreter and the simulator use
  // this routine, so checksums stay comparable.
  if (Addr + 8 > Memory.size() || Addr + 8 < Addr)
    return 0xdeadbeefdeadbeefull ^ Addr;
  uint64_t V;
  std::memcpy(&V, &Memory[Addr], 8);
  return V;
}

void ExecState::storeWord(uint64_t Addr, uint64_t V) {
  assert(Addr + 8 <= Memory.size() && "store out of bounds");
  std::memcpy(&Memory[Addr], &V, 8);
}

uint64_t ExecState::outputChecksum(const Module &M) const {
  uint64_t Hash = 1469598103934665603ull;
  for (const ArrayInfo &A : M.Arrays) {
    if (!A.IsOutput)
      continue;
    const uint8_t *Data = Memory.data() + A.Base;
    for (int64_t I = 0; I != A.sizeBytes(); ++I) {
      Hash ^= Data[I];
      Hash *= 1099511628211ull;
    }
  }
  return Hash;
}

//===----------------------------------------------------------------------===//
// Instruction execution
//===----------------------------------------------------------------------===//

void ir::executeInstr(ExecState &S, const Instr &I) {
  auto B = [&]() -> int64_t {
    return I.SrcB.isValid() ? S.readInt(I.SrcB) : I.Imm;
  };
  switch (I.Op) {
  case Opcode::LdI:
    S.writeInt(I.Dst, I.Imm);
    break;
  case Opcode::FLdI:
    S.writeFp(I.Dst, I.fimm());
    break;
  case Opcode::Mov:
    S.writeInt(I.Dst, S.readInt(I.SrcA));
    break;
  case Opcode::FMov:
    S.writeFp(I.Dst, S.readFp(I.SrcA));
    break;
  case Opcode::ItoF:
    S.writeFp(I.Dst, static_cast<double>(S.readInt(I.SrcA)));
    break;
  case Opcode::FtoI:
    S.writeInt(I.Dst, static_cast<int64_t>(S.readFp(I.SrcA)));
    break;
  case Opcode::IAdd:
    S.writeInt(I.Dst, S.readInt(I.SrcA) + B());
    break;
  case Opcode::ISub:
    S.writeInt(I.Dst, S.readInt(I.SrcA) - B());
    break;
  case Opcode::IMul:
    S.writeInt(I.Dst, S.readInt(I.SrcA) * B());
    break;
  case Opcode::Sll:
    S.writeInt(I.Dst, S.readInt(I.SrcA) << (B() & 63));
    break;
  case Opcode::Srl:
    S.writeInt(I.Dst,
               static_cast<int64_t>(
                   static_cast<uint64_t>(S.readInt(I.SrcA)) >> (B() & 63)));
    break;
  case Opcode::And:
    S.writeInt(I.Dst, S.readInt(I.SrcA) & B());
    break;
  case Opcode::Or:
    S.writeInt(I.Dst, S.readInt(I.SrcA) | B());
    break;
  case Opcode::Xor:
    S.writeInt(I.Dst, S.readInt(I.SrcA) ^ B());
    break;
  case Opcode::CmpEq:
    S.writeInt(I.Dst, S.readInt(I.SrcA) == B() ? 1 : 0);
    break;
  case Opcode::CmpLt:
    S.writeInt(I.Dst, S.readInt(I.SrcA) < B() ? 1 : 0);
    break;
  case Opcode::CmpLe:
    S.writeInt(I.Dst, S.readInt(I.SrcA) <= B() ? 1 : 0);
    break;
  case Opcode::FAdd:
    S.writeFp(I.Dst, S.readFp(I.SrcA) + S.readFp(I.SrcB));
    break;
  case Opcode::FSub:
    S.writeFp(I.Dst, S.readFp(I.SrcA) - S.readFp(I.SrcB));
    break;
  case Opcode::FMul:
    S.writeFp(I.Dst, S.readFp(I.SrcA) * S.readFp(I.SrcB));
    break;
  case Opcode::FDiv:
    S.writeFp(I.Dst, S.readFp(I.SrcA) / S.readFp(I.SrcB));
    break;
  case Opcode::FCmpEq:
    S.writeInt(I.Dst, S.readFp(I.SrcA) == S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLt:
    S.writeInt(I.Dst, S.readFp(I.SrcA) < S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLe:
    S.writeInt(I.Dst, S.readFp(I.SrcA) <= S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::CMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeInt(I.Dst, S.readInt(I.SrcB));
    break;
  case Opcode::FCMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeFp(I.Dst, S.readFp(I.SrcB));
    break;
  case Opcode::Load:
    S.writeInt(I.Dst, static_cast<int64_t>(S.loadWord(
                          S.effectiveAddress(I))));
    break;
  case Opcode::FLoad: {
    uint64_t Bits = S.loadWord(S.effectiveAddress(I));
    double V;
    std::memcpy(&V, &Bits, 8);
    S.writeFp(I.Dst, V);
    break;
  }
  case Opcode::Store:
    S.storeWord(S.effectiveAddress(I),
                static_cast<uint64_t>(S.readInt(I.SrcA)));
    break;
  case Opcode::FStore: {
    double V = S.readFp(I.SrcA);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    S.storeWord(S.effectiveAddress(I), Bits);
    break;
  }
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    assert(false && "terminators are handled by the execution loop");
    break;
  }
}

//===----------------------------------------------------------------------===//
// Interpreter loop
//===----------------------------------------------------------------------===//

InterpResult ir::interpretByInstr(const Module &M, uint64_t MaxInstrs) {
  const Function &F = M.Fn;
  ExecState S(M);
  InterpResult R;
  R.BlockCounts.assign(F.Blocks.size(), 0);
  R.EdgeCounts.assign(F.Blocks.size(), {0, 0});

  int Block = 0;
  while (true) {
    const BasicBlock &BB = F.Blocks[Block];
    ++R.BlockCounts[Block];
    if (R.DynInstrs + BB.Instrs.size() > MaxInstrs)
      return R;
    R.DynInstrs += BB.Instrs.size();
    for (size_t K = 0; K + 1 < BB.Instrs.size(); ++K)
      executeInstr(S, BB.Instrs[K]);
    const Instr &T = BB.terminator();
    switch (T.Op) {
    case Opcode::Br:
      if (S.readInt(T.SrcA) != 0) {
        ++R.EdgeCounts[Block][0];
        Block = T.Target0;
      } else {
        ++R.EdgeCounts[Block][1];
        Block = T.Target1;
      }
      break;
    case Opcode::Jmp:
      ++R.EdgeCounts[Block][0];
      Block = T.Target0;
      break;
    case Opcode::Ret:
      R.Finished = true;
      R.Checksum = S.outputChecksum(M);
      return R;
    default:
      assert(false && "bad terminator");
      return R;
    }
  }
}

//===----------------------------------------------------------------------===//
// Predecoded interpreter loop
//===----------------------------------------------------------------------===//
//
// Instr is heavy — memory instructions carry a symbolic address-term vector,
// so a block's instruction array is neither compact nor contiguous in the
// fields the executor touches. The profiling interpreter runs millions of
// dynamic instructions per compile (it is the dominant cost of a trace-
// scheduled compile), so interpret() first flattens the function into one
// compact op stream — non-terminators via the shared predecoder
// (decodeMicro in Interp.h, also used by the fast timing simulator), plus
// terminator ops embedded in the same stream so the run loop is a single
// dispatch with no per-block outer loop. The loop keeps restrict-qualified
// pointers to the register file, memory image, and profile counters (all
// separate allocations), so the compiler keeps them in registers across
// stores. Results are bit-identical to interpretByInstr().

namespace {

/// One op of the flat profiling stream: the MicroOp payload with registers
/// as raw ids, or an embedded terminator. For PkBr, A is the condition
/// register and Dst/B the taken/fallthrough block ids; for PkJmp, Dst is
/// the target block id.
struct ProfOp {
  uint8_t K; ///< MicroKind value, or PkBr/PkJmp/PkRet.
  uint32_t Dst = 0, A = 0, B = 0;
  int64_t Imm = 0;
};

constexpr uint8_t PkBr = 41, PkJmp = 42, PkRet = 43;
static_assert(static_cast<uint8_t>(MicroKind::FStore) + 1 == PkBr,
              "terminator op codes must extend the MicroKind space");

/// Per-block entry bookkeeping for the flat stream.
struct ProfBlock {
  uint32_t Pc = 0;        ///< first op of the block in the stream.
  uint64_t NumInstrs = 0; ///< dynamic instructions incl. the terminator.
};

} // namespace

MicroOp ir::decodeMicro(const Instr &I) {
  MicroOp O;
  O.Dst = I.Dst;
  O.A = I.SrcA;
  O.B = I.SrcB;
  O.Imm = I.Imm;
  // Reg-or-literal ops: pick the form once, mirroring executeInstr's B().
  bool RegB = I.SrcB.isValid();
  switch (I.Op) {
  case Opcode::LdI: O.K = MicroKind::LdI; break;
  case Opcode::FLdI: O.K = MicroKind::FLdI; break; // Imm is the bit pattern
  case Opcode::Mov: O.K = MicroKind::Mov; break;
  case Opcode::FMov: O.K = MicroKind::FMov; break;
  case Opcode::ItoF: O.K = MicroKind::ItoF; break;
  case Opcode::FtoI: O.K = MicroKind::FtoI; break;
  case Opcode::IAdd: O.K = RegB ? MicroKind::IAddR : MicroKind::IAddI; break;
  case Opcode::ISub: O.K = RegB ? MicroKind::ISubR : MicroKind::ISubI; break;
  case Opcode::IMul: O.K = RegB ? MicroKind::IMulR : MicroKind::IMulI; break;
  case Opcode::Sll: O.K = RegB ? MicroKind::SllR : MicroKind::SllI; break;
  case Opcode::Srl: O.K = RegB ? MicroKind::SrlR : MicroKind::SrlI; break;
  case Opcode::And: O.K = RegB ? MicroKind::AndR : MicroKind::AndI; break;
  case Opcode::Or: O.K = RegB ? MicroKind::OrR : MicroKind::OrI; break;
  case Opcode::Xor: O.K = RegB ? MicroKind::XorR : MicroKind::XorI; break;
  case Opcode::CmpEq:
    O.K = RegB ? MicroKind::CmpEqR : MicroKind::CmpEqI;
    break;
  case Opcode::CmpLt:
    O.K = RegB ? MicroKind::CmpLtR : MicroKind::CmpLtI;
    break;
  case Opcode::CmpLe:
    O.K = RegB ? MicroKind::CmpLeR : MicroKind::CmpLeI;
    break;
  case Opcode::FAdd: O.K = MicroKind::FAdd; break;
  case Opcode::FSub: O.K = MicroKind::FSub; break;
  case Opcode::FMul: O.K = MicroKind::FMul; break;
  case Opcode::FDiv: O.K = MicroKind::FDiv; break;
  case Opcode::FCmpEq: O.K = MicroKind::FCmpEq; break;
  case Opcode::FCmpLt: O.K = MicroKind::FCmpLt; break;
  case Opcode::FCmpLe: O.K = MicroKind::FCmpLe; break;
  case Opcode::CMov: O.K = MicroKind::CMov; break;
  case Opcode::FCMov: O.K = MicroKind::FCMov; break;
  case Opcode::Load:
  case Opcode::FLoad:
  case Opcode::Store:
  case Opcode::FStore:
    O.K = I.Op == Opcode::Load    ? MicroKind::Load
          : I.Op == Opcode::FLoad ? MicroKind::FLoad
          : I.Op == Opcode::Store ? MicroKind::Store
                                  : MicroKind::FStore;
    O.A = I.Op == Opcode::Store || I.Op == Opcode::FStore ? I.SrcA : Reg();
    O.B = I.Base;
    O.Imm = I.Offset;
    break;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    assert(false && "terminators are not predecoded as micro-ops");
    break;
  }
  return O;
}

InterpResult ir::interpret(const Module &M, uint64_t MaxInstrs) {
  const Function &F = M.Fn;

  std::vector<ProfOp> Ops;
  std::vector<ProfBlock> Blocks(F.Blocks.size());
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    ProfBlock &PB = Blocks[B];
    PB.Pc = static_cast<uint32_t>(Ops.size());
    PB.NumInstrs = BB.Instrs.size();
    for (size_t K = 0; K + 1 < BB.Instrs.size(); ++K) {
      MicroOp MO = decodeMicro(BB.Instrs[K]);
      ProfOp O;
      O.K = static_cast<uint8_t>(MO.K);
      O.Dst = MO.Dst.Id;
      O.A = MO.A.Id;
      O.B = MO.B.Id;
      O.Imm = MO.Imm;
      Ops.push_back(O);
    }
    const Instr &T = BB.terminator();
    ProfOp O;
    switch (T.Op) {
    case Opcode::Br:
      O.K = PkBr;
      O.A = T.SrcA.Id;
      O.Dst = static_cast<uint32_t>(T.Target0);
      O.B = static_cast<uint32_t>(T.Target1);
      break;
    case Opcode::Jmp:
      O.K = PkJmp;
      O.Dst = static_cast<uint32_t>(T.Target0);
      break;
    case Opcode::Ret:
      O.K = PkRet;
      break;
    default:
      assert(false && "bad terminator");
      break;
    }
    Ops.push_back(O);
  }

  ExecState S(M);
  InterpResult R;
  R.BlockCounts.assign(F.Blocks.size(), 0);
  R.EdgeCounts.assign(F.Blocks.size(), {0, 0});

  // The hot loop works on raw restrict-qualified pointers: the register
  // file, memory image, counters, and op stream never alias one another, so
  // the compiler can keep the bases in registers across the stores below.
  uint64_t *__restrict Rg = S.regsData();
  uint8_t *__restrict Mem = S.memData();
  const uint64_t MemSize = S.memSize();
  uint64_t *__restrict BC = R.BlockCounts.data();
  auto *__restrict EC = R.EdgeCounts.data();
  const ProfOp *__restrict Base = Ops.data();
  const ProfBlock *__restrict PB = Blocks.data();

  const auto ReadI = [&](uint32_t Id) -> int64_t {
    return static_cast<int64_t>(Rg[Id]);
  };
  const auto WriteI = [&](uint32_t Id, int64_t V) {
    Rg[Id] = static_cast<uint64_t>(V);
  };
  const auto ReadF = [&](uint32_t Id) -> double {
    double V;
    std::memcpy(&V, &Rg[Id], sizeof(double));
    return V;
  };
  const auto WriteF = [&](uint32_t Id, double V) {
    std::memcpy(&Rg[Id], &V, sizeof(double));
  };
  // Same non-faulting semantics as ExecState::loadWord / storeWord.
  const auto LoadW = [&](uint64_t Addr) -> uint64_t {
    if (Addr + 8 > MemSize || Addr + 8 < Addr)
      return 0xdeadbeefdeadbeefull ^ Addr;
    uint64_t V;
    std::memcpy(&V, Mem + Addr, 8);
    return V;
  };
  const auto StoreW = [&](uint64_t Addr, uint64_t V) {
    assert(Addr + 8 <= MemSize && "store out of bounds");
    std::memcpy(Mem + Addr, &V, 8);
  };

  uint64_t Dyn = 0;
  int Block = 0;
  int Next = 0;
  const ProfOp *__restrict Pc = Base;
  const ProfOp *O;

  // Dispatch. With GNU extensions every handler ends in its own computed
  // goto, so the indirect-branch predictor sees one jump site per opcode and
  // learns the op-pair transitions of the hot blocks; a single shared switch
  // dispatch funnels every transition through one site and mispredicts on
  // almost every dynamic instruction. The portable fallback is the plain
  // for/switch loop with identical handler bodies.
#if defined(__GNUC__) || defined(__clang__)
#define BS_CASE(name) H_##name:
#define BS_NEXT                                                              \
  do {                                                                       \
    O = Pc++;                                                                \
    goto *Jump[O->K];                                                        \
  } while (0)
#define BS_DISPATCH_BEGIN BS_NEXT;
#define BS_DISPATCH_END
  static const void *const Jump[] = {
      &&H_LdI,    &&H_FLdI,   &&H_Mov,    &&H_FMov,   &&H_ItoF,
      &&H_FtoI,   &&H_IAddR,  &&H_IAddI,  &&H_ISubR,  &&H_ISubI,
      &&H_IMulR,  &&H_IMulI,  &&H_SllR,   &&H_SllI,   &&H_SrlR,
      &&H_SrlI,   &&H_AndR,   &&H_AndI,   &&H_OrR,    &&H_OrI,
      &&H_XorR,   &&H_XorI,   &&H_CmpEqR, &&H_CmpEqI, &&H_CmpLtR,
      &&H_CmpLtI, &&H_CmpLeR, &&H_CmpLeI, &&H_FAdd,   &&H_FSub,
      &&H_FMul,   &&H_FDiv,   &&H_FCmpEq, &&H_FCmpLt, &&H_FCmpLe,
      &&H_CMov,   &&H_FCMov,  &&H_Load,   &&H_FLoad,  &&H_Store,
      &&H_FStore, &&H_PkBr,   &&H_PkJmp,  &&H_PkRet};
  static_assert(sizeof(Jump) / sizeof(Jump[0]) == PkRet + 1,
                "one handler per op code, in numbering order");
#else
#define BS_CASE(name) case Case_##name:
  // The switch needs integral case values; mirror the label names onto the
  // shared numbering so the handler bodies below stay identical.
  constexpr uint8_t Case_LdI = static_cast<uint8_t>(MicroKind::LdI),
      Case_FLdI = static_cast<uint8_t>(MicroKind::FLdI),
      Case_Mov = static_cast<uint8_t>(MicroKind::Mov),
      Case_FMov = static_cast<uint8_t>(MicroKind::FMov),
      Case_ItoF = static_cast<uint8_t>(MicroKind::ItoF),
      Case_FtoI = static_cast<uint8_t>(MicroKind::FtoI),
      Case_IAddR = static_cast<uint8_t>(MicroKind::IAddR),
      Case_IAddI = static_cast<uint8_t>(MicroKind::IAddI),
      Case_ISubR = static_cast<uint8_t>(MicroKind::ISubR),
      Case_ISubI = static_cast<uint8_t>(MicroKind::ISubI),
      Case_IMulR = static_cast<uint8_t>(MicroKind::IMulR),
      Case_IMulI = static_cast<uint8_t>(MicroKind::IMulI),
      Case_SllR = static_cast<uint8_t>(MicroKind::SllR),
      Case_SllI = static_cast<uint8_t>(MicroKind::SllI),
      Case_SrlR = static_cast<uint8_t>(MicroKind::SrlR),
      Case_SrlI = static_cast<uint8_t>(MicroKind::SrlI),
      Case_AndR = static_cast<uint8_t>(MicroKind::AndR),
      Case_AndI = static_cast<uint8_t>(MicroKind::AndI),
      Case_OrR = static_cast<uint8_t>(MicroKind::OrR),
      Case_OrI = static_cast<uint8_t>(MicroKind::OrI),
      Case_XorR = static_cast<uint8_t>(MicroKind::XorR),
      Case_XorI = static_cast<uint8_t>(MicroKind::XorI),
      Case_CmpEqR = static_cast<uint8_t>(MicroKind::CmpEqR),
      Case_CmpEqI = static_cast<uint8_t>(MicroKind::CmpEqI),
      Case_CmpLtR = static_cast<uint8_t>(MicroKind::CmpLtR),
      Case_CmpLtI = static_cast<uint8_t>(MicroKind::CmpLtI),
      Case_CmpLeR = static_cast<uint8_t>(MicroKind::CmpLeR),
      Case_CmpLeI = static_cast<uint8_t>(MicroKind::CmpLeI),
      Case_FAdd = static_cast<uint8_t>(MicroKind::FAdd),
      Case_FSub = static_cast<uint8_t>(MicroKind::FSub),
      Case_FMul = static_cast<uint8_t>(MicroKind::FMul),
      Case_FDiv = static_cast<uint8_t>(MicroKind::FDiv),
      Case_FCmpEq = static_cast<uint8_t>(MicroKind::FCmpEq),
      Case_FCmpLt = static_cast<uint8_t>(MicroKind::FCmpLt),
      Case_FCmpLe = static_cast<uint8_t>(MicroKind::FCmpLe),
      Case_CMov = static_cast<uint8_t>(MicroKind::CMov),
      Case_FCMov = static_cast<uint8_t>(MicroKind::FCMov),
      Case_Load = static_cast<uint8_t>(MicroKind::Load),
      Case_FLoad = static_cast<uint8_t>(MicroKind::FLoad),
      Case_Store = static_cast<uint8_t>(MicroKind::Store),
      Case_FStore = static_cast<uint8_t>(MicroKind::FStore),
      Case_PkBr = PkBr, Case_PkJmp = PkJmp, Case_PkRet = PkRet;
#define BS_NEXT break
#define BS_DISPATCH_BEGIN                                                    \
  for (;;) {                                                                 \
    O = Pc++;                                                                \
    switch (O->K) {
#define BS_DISPATCH_END                                                      \
    default:                                                                 \
      assert(false && "bad profiling op");                                   \
    }                                                                        \
  }
#endif

Enter:
  // Per-block bookkeeping matches interpretByInstr exactly: the count is
  // bumped before the budget check, so the block that would overrun is
  // still recorded as entered.
  ++BC[Next];
  if (Dyn + PB[Next].NumInstrs > MaxInstrs) {
    R.DynInstrs = Dyn;
    return R;
  }
  Dyn += PB[Next].NumInstrs;
  Block = Next;
  Pc = Base + PB[Next].Pc;
  BS_DISPATCH_BEGIN

  BS_CASE(LdI)
    WriteI(O->Dst, O->Imm);
    BS_NEXT;
  BS_CASE(FLdI) {
    double V;
    std::memcpy(&V, &O->Imm, sizeof(double));
    WriteF(O->Dst, V);
    BS_NEXT;
  }
  BS_CASE(Mov)
    WriteI(O->Dst, ReadI(O->A));
    BS_NEXT;
  BS_CASE(FMov)
    WriteF(O->Dst, ReadF(O->A));
    BS_NEXT;
  BS_CASE(ItoF)
    WriteF(O->Dst, static_cast<double>(ReadI(O->A)));
    BS_NEXT;
  BS_CASE(FtoI)
    WriteI(O->Dst, static_cast<int64_t>(ReadF(O->A)));
    BS_NEXT;
  BS_CASE(IAddR)
    WriteI(O->Dst, ReadI(O->A) + ReadI(O->B));
    BS_NEXT;
  BS_CASE(IAddI)
    WriteI(O->Dst, ReadI(O->A) + O->Imm);
    BS_NEXT;
  BS_CASE(ISubR)
    WriteI(O->Dst, ReadI(O->A) - ReadI(O->B));
    BS_NEXT;
  BS_CASE(ISubI)
    WriteI(O->Dst, ReadI(O->A) - O->Imm);
    BS_NEXT;
  BS_CASE(IMulR)
    WriteI(O->Dst, ReadI(O->A) * ReadI(O->B));
    BS_NEXT;
  BS_CASE(IMulI)
    WriteI(O->Dst, ReadI(O->A) * O->Imm);
    BS_NEXT;
  BS_CASE(SllR)
    WriteI(O->Dst, ReadI(O->A) << (ReadI(O->B) & 63));
    BS_NEXT;
  BS_CASE(SllI)
    WriteI(O->Dst, ReadI(O->A) << (O->Imm & 63));
    BS_NEXT;
  BS_CASE(SrlR)
    WriteI(O->Dst, static_cast<int64_t>(static_cast<uint64_t>(ReadI(O->A)) >>
                                        (ReadI(O->B) & 63)));
    BS_NEXT;
  BS_CASE(SrlI)
    WriteI(O->Dst, static_cast<int64_t>(static_cast<uint64_t>(ReadI(O->A)) >>
                                        (O->Imm & 63)));
    BS_NEXT;
  BS_CASE(AndR)
    WriteI(O->Dst, ReadI(O->A) & ReadI(O->B));
    BS_NEXT;
  BS_CASE(AndI)
    WriteI(O->Dst, ReadI(O->A) & O->Imm);
    BS_NEXT;
  BS_CASE(OrR)
    WriteI(O->Dst, ReadI(O->A) | ReadI(O->B));
    BS_NEXT;
  BS_CASE(OrI)
    WriteI(O->Dst, ReadI(O->A) | O->Imm);
    BS_NEXT;
  BS_CASE(XorR)
    WriteI(O->Dst, ReadI(O->A) ^ ReadI(O->B));
    BS_NEXT;
  BS_CASE(XorI)
    WriteI(O->Dst, ReadI(O->A) ^ O->Imm);
    BS_NEXT;
  BS_CASE(CmpEqR)
    WriteI(O->Dst, ReadI(O->A) == ReadI(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(CmpEqI)
    WriteI(O->Dst, ReadI(O->A) == O->Imm ? 1 : 0);
    BS_NEXT;
  BS_CASE(CmpLtR)
    WriteI(O->Dst, ReadI(O->A) < ReadI(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(CmpLtI)
    WriteI(O->Dst, ReadI(O->A) < O->Imm ? 1 : 0);
    BS_NEXT;
  BS_CASE(CmpLeR)
    WriteI(O->Dst, ReadI(O->A) <= ReadI(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(CmpLeI)
    WriteI(O->Dst, ReadI(O->A) <= O->Imm ? 1 : 0);
    BS_NEXT;
  BS_CASE(FAdd)
    WriteF(O->Dst, ReadF(O->A) + ReadF(O->B));
    BS_NEXT;
  BS_CASE(FSub)
    WriteF(O->Dst, ReadF(O->A) - ReadF(O->B));
    BS_NEXT;
  BS_CASE(FMul)
    WriteF(O->Dst, ReadF(O->A) * ReadF(O->B));
    BS_NEXT;
  BS_CASE(FDiv)
    WriteF(O->Dst, ReadF(O->A) / ReadF(O->B));
    BS_NEXT;
  BS_CASE(FCmpEq)
    WriteI(O->Dst, ReadF(O->A) == ReadF(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(FCmpLt)
    WriteI(O->Dst, ReadF(O->A) < ReadF(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(FCmpLe)
    WriteI(O->Dst, ReadF(O->A) <= ReadF(O->B) ? 1 : 0);
    BS_NEXT;
  BS_CASE(CMov)
    if (ReadI(O->A) != 0)
      WriteI(O->Dst, ReadI(O->B));
    BS_NEXT;
  BS_CASE(FCMov)
    if (ReadI(O->A) != 0)
      WriteF(O->Dst, ReadF(O->B));
    BS_NEXT;
  BS_CASE(Load)
    WriteI(O->Dst, static_cast<int64_t>(
                       LoadW(static_cast<uint64_t>(ReadI(O->B) + O->Imm))));
    BS_NEXT;
  BS_CASE(FLoad) {
    uint64_t Bits = LoadW(static_cast<uint64_t>(ReadI(O->B) + O->Imm));
    double V;
    std::memcpy(&V, &Bits, 8);
    WriteF(O->Dst, V);
    BS_NEXT;
  }
  BS_CASE(Store)
    StoreW(static_cast<uint64_t>(ReadI(O->B) + O->Imm),
           static_cast<uint64_t>(ReadI(O->A)));
    BS_NEXT;
  BS_CASE(FStore) {
    double V = ReadF(O->A);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    StoreW(static_cast<uint64_t>(ReadI(O->B) + O->Imm), Bits);
    BS_NEXT;
  }
  BS_CASE(PkBr)
    if (ReadI(O->A) != 0) {
      ++EC[Block][0];
      Next = static_cast<int>(O->Dst);
    } else {
      ++EC[Block][1];
      Next = static_cast<int>(O->B);
    }
    goto Enter;
  BS_CASE(PkJmp)
    ++EC[Block][0];
    Next = static_cast<int>(O->Dst);
    goto Enter;
  BS_CASE(PkRet)
    R.Finished = true;
    R.DynInstrs = Dyn;
    R.Checksum = S.outputChecksum(M);
    return R;

  BS_DISPATCH_END

#undef BS_CASE
#undef BS_NEXT
#undef BS_DISPATCH_BEGIN
#undef BS_DISPATCH_END
}

std::string ir::checkProfileConservation(const Function &F,
                                         const InterpResult &R,
                                         uint64_t EntryUnits) {
  size_t N = F.Blocks.size();
  if (R.BlockCounts.size() != N)
    return "BlockCounts has " + std::to_string(R.BlockCounts.size()) +
           " entries for " + std::to_string(N) + " blocks";
  if (R.EdgeCounts.size() != N)
    return "EdgeCounts has " + std::to_string(R.EdgeCounts.size()) +
           " entries for " + std::to_string(N) + " blocks";

  std::vector<uint64_t> InSum(N, 0);
  for (size_t B = 0; B != N; ++B) {
    std::vector<int> Succs = F.Blocks[B].successors();
    uint64_t OutSum = 0;
    for (size_t K = 0; K != Succs.size(); ++K) {
      if (Succs[K] < 0 || static_cast<size_t>(Succs[K]) >= N)
        return "block b" + std::to_string(B) + " has an out-of-range successor";
      InSum[static_cast<size_t>(Succs[K])] += R.EdgeCounts[B][K];
      OutSum += R.EdgeCounts[B][K];
    }
    // Unused edge slots must stay zero (a Jmp's slot 1, a Ret's both).
    for (size_t K = Succs.size(); K != 2; ++K)
      if (R.EdgeCounts[B][K] != 0)
        return "block b" + std::to_string(B) + " has flow " +
               std::to_string(R.EdgeCounts[B][K]) + " on unused edge slot " +
               std::to_string(K);
    if (!Succs.empty() && OutSum != R.BlockCounts[B])
      return "block b" + std::to_string(B) + ": out-edge sum " +
             std::to_string(OutSum) + " != count " +
             std::to_string(R.BlockCounts[B]);
  }
  for (size_t B = 0; B != N; ++B) {
    uint64_t In = InSum[B] + (B == 0 ? EntryUnits : 0);
    if (In != R.BlockCounts[B])
      return "block b" + std::to_string(B) + ": in-edge sum " +
             std::to_string(In) + " != count " +
             std::to_string(R.BlockCounts[B]);
  }
  return "";
}
