//===- ir/Interp.cpp - Functional IR interpreter --------------------------===//

#include "ir/Interp.h"

#include <cstring>

using namespace bsched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// ExecState
//===----------------------------------------------------------------------===//

ExecState::ExecState(const Module &M)
    : Regs(M.Fn.numRegs(), 0), Memory(M.MemorySize, 0) {
  assert(M.MemorySize != 0 && "module must be laid out before execution");
}

double ExecState::readFp(Reg R) const {
  double V;
  std::memcpy(&V, &Regs[R.Id], sizeof(double));
  return V;
}

void ExecState::writeFp(Reg R, double V) {
  std::memcpy(&Regs[R.Id], &V, sizeof(double));
}

uint64_t ExecState::loadWord(uint64_t Addr) const {
  // Non-faulting loads: trace scheduling may hoist a load above the branch
  // guarding it (section 3.2 permits speculating instructions that do not
  // write memory and whose destination is dead off-trace). On the
  // misspeculated path the address can be arbitrary, so out-of-range reads
  // return deterministic garbage instead of faulting — the value is dead by
  // the speculation-safety rule. Both the interpreter and the simulator use
  // this routine, so checksums stay comparable.
  if (Addr + 8 > Memory.size() || Addr + 8 < Addr)
    return 0xdeadbeefdeadbeefull ^ Addr;
  uint64_t V;
  std::memcpy(&V, &Memory[Addr], 8);
  return V;
}

void ExecState::storeWord(uint64_t Addr, uint64_t V) {
  assert(Addr + 8 <= Memory.size() && "store out of bounds");
  std::memcpy(&Memory[Addr], &V, 8);
}

uint64_t ExecState::outputChecksum(const Module &M) const {
  uint64_t Hash = 1469598103934665603ull;
  for (const ArrayInfo &A : M.Arrays) {
    if (!A.IsOutput)
      continue;
    const uint8_t *Data = Memory.data() + A.Base;
    for (int64_t I = 0; I != A.sizeBytes(); ++I) {
      Hash ^= Data[I];
      Hash *= 1099511628211ull;
    }
  }
  return Hash;
}

//===----------------------------------------------------------------------===//
// Instruction execution
//===----------------------------------------------------------------------===//

void ir::executeInstr(ExecState &S, const Instr &I) {
  auto B = [&]() -> int64_t {
    return I.SrcB.isValid() ? S.readInt(I.SrcB) : I.Imm;
  };
  switch (I.Op) {
  case Opcode::LdI:
    S.writeInt(I.Dst, I.Imm);
    break;
  case Opcode::FLdI:
    S.writeFp(I.Dst, I.fimm());
    break;
  case Opcode::Mov:
    S.writeInt(I.Dst, S.readInt(I.SrcA));
    break;
  case Opcode::FMov:
    S.writeFp(I.Dst, S.readFp(I.SrcA));
    break;
  case Opcode::ItoF:
    S.writeFp(I.Dst, static_cast<double>(S.readInt(I.SrcA)));
    break;
  case Opcode::FtoI:
    S.writeInt(I.Dst, static_cast<int64_t>(S.readFp(I.SrcA)));
    break;
  case Opcode::IAdd:
    S.writeInt(I.Dst, S.readInt(I.SrcA) + B());
    break;
  case Opcode::ISub:
    S.writeInt(I.Dst, S.readInt(I.SrcA) - B());
    break;
  case Opcode::IMul:
    S.writeInt(I.Dst, S.readInt(I.SrcA) * B());
    break;
  case Opcode::Sll:
    S.writeInt(I.Dst, S.readInt(I.SrcA) << (B() & 63));
    break;
  case Opcode::Srl:
    S.writeInt(I.Dst,
               static_cast<int64_t>(
                   static_cast<uint64_t>(S.readInt(I.SrcA)) >> (B() & 63)));
    break;
  case Opcode::And:
    S.writeInt(I.Dst, S.readInt(I.SrcA) & B());
    break;
  case Opcode::Or:
    S.writeInt(I.Dst, S.readInt(I.SrcA) | B());
    break;
  case Opcode::Xor:
    S.writeInt(I.Dst, S.readInt(I.SrcA) ^ B());
    break;
  case Opcode::CmpEq:
    S.writeInt(I.Dst, S.readInt(I.SrcA) == B() ? 1 : 0);
    break;
  case Opcode::CmpLt:
    S.writeInt(I.Dst, S.readInt(I.SrcA) < B() ? 1 : 0);
    break;
  case Opcode::CmpLe:
    S.writeInt(I.Dst, S.readInt(I.SrcA) <= B() ? 1 : 0);
    break;
  case Opcode::FAdd:
    S.writeFp(I.Dst, S.readFp(I.SrcA) + S.readFp(I.SrcB));
    break;
  case Opcode::FSub:
    S.writeFp(I.Dst, S.readFp(I.SrcA) - S.readFp(I.SrcB));
    break;
  case Opcode::FMul:
    S.writeFp(I.Dst, S.readFp(I.SrcA) * S.readFp(I.SrcB));
    break;
  case Opcode::FDiv:
    S.writeFp(I.Dst, S.readFp(I.SrcA) / S.readFp(I.SrcB));
    break;
  case Opcode::FCmpEq:
    S.writeInt(I.Dst, S.readFp(I.SrcA) == S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLt:
    S.writeInt(I.Dst, S.readFp(I.SrcA) < S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::FCmpLe:
    S.writeInt(I.Dst, S.readFp(I.SrcA) <= S.readFp(I.SrcB) ? 1 : 0);
    break;
  case Opcode::CMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeInt(I.Dst, S.readInt(I.SrcB));
    break;
  case Opcode::FCMov:
    if (S.readInt(I.SrcA) != 0)
      S.writeFp(I.Dst, S.readFp(I.SrcB));
    break;
  case Opcode::Load:
    S.writeInt(I.Dst, static_cast<int64_t>(S.loadWord(
                          S.effectiveAddress(I))));
    break;
  case Opcode::FLoad: {
    uint64_t Bits = S.loadWord(S.effectiveAddress(I));
    double V;
    std::memcpy(&V, &Bits, 8);
    S.writeFp(I.Dst, V);
    break;
  }
  case Opcode::Store:
    S.storeWord(S.effectiveAddress(I),
                static_cast<uint64_t>(S.readInt(I.SrcA)));
    break;
  case Opcode::FStore: {
    double V = S.readFp(I.SrcA);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    S.storeWord(S.effectiveAddress(I), Bits);
    break;
  }
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    assert(false && "terminators are handled by the execution loop");
    break;
  }
}

//===----------------------------------------------------------------------===//
// Interpreter loop
//===----------------------------------------------------------------------===//

InterpResult ir::interpretByInstr(const Module &M, uint64_t MaxInstrs) {
  const Function &F = M.Fn;
  ExecState S(M);
  InterpResult R;
  R.BlockCounts.assign(F.Blocks.size(), 0);
  R.EdgeCounts.assign(F.Blocks.size(), {0, 0});

  int Block = 0;
  while (true) {
    const BasicBlock &BB = F.Blocks[Block];
    ++R.BlockCounts[Block];
    if (R.DynInstrs + BB.Instrs.size() > MaxInstrs)
      return R;
    R.DynInstrs += BB.Instrs.size();
    for (size_t K = 0; K + 1 < BB.Instrs.size(); ++K)
      executeInstr(S, BB.Instrs[K]);
    const Instr &T = BB.terminator();
    switch (T.Op) {
    case Opcode::Br:
      if (S.readInt(T.SrcA) != 0) {
        ++R.EdgeCounts[Block][0];
        Block = T.Target0;
      } else {
        ++R.EdgeCounts[Block][1];
        Block = T.Target1;
      }
      break;
    case Opcode::Jmp:
      ++R.EdgeCounts[Block][0];
      Block = T.Target0;
      break;
    case Opcode::Ret:
      R.Finished = true;
      R.Checksum = S.outputChecksum(M);
      return R;
    default:
      assert(false && "bad terminator");
      return R;
    }
  }
}

//===----------------------------------------------------------------------===//
// Predecoded interpreter loop
//===----------------------------------------------------------------------===//
//
// Instr is heavy — memory instructions carry a symbolic address-term vector,
// so a block's instruction array is neither compact nor contiguous in the
// fields the executor touches. The profiling interpreter runs millions of
// dynamic instructions per compile, so interpret() first flattens the
// function into 24-byte micro-ops (one pass) via the shared predecoder
// (decodeMicro / execMicro in Interp.h, also used by the fast timing
// simulator), then runs the flat stream. Results are bit-identical to
// interpretByInstr().

namespace {

struct MicroBlock {
  uint32_t Start = 0;     ///< first micro-op in the flat stream
  uint32_t NumMicro = 0;  ///< non-terminator micro-ops
  uint64_t NumInstrs = 0; ///< dynamic instructions incl. the terminator
  Opcode Term = Opcode::Ret;
  Reg Cond;
  int T0 = -1, T1 = -1;
};

} // namespace

MicroOp ir::decodeMicro(const Instr &I) {
  MicroOp O;
  O.Dst = I.Dst;
  O.A = I.SrcA;
  O.B = I.SrcB;
  O.Imm = I.Imm;
  // Reg-or-literal ops: pick the form once, mirroring executeInstr's B().
  bool RegB = I.SrcB.isValid();
  switch (I.Op) {
  case Opcode::LdI: O.K = MicroKind::LdI; break;
  case Opcode::FLdI: O.K = MicroKind::FLdI; break; // Imm is the bit pattern
  case Opcode::Mov: O.K = MicroKind::Mov; break;
  case Opcode::FMov: O.K = MicroKind::FMov; break;
  case Opcode::ItoF: O.K = MicroKind::ItoF; break;
  case Opcode::FtoI: O.K = MicroKind::FtoI; break;
  case Opcode::IAdd: O.K = RegB ? MicroKind::IAddR : MicroKind::IAddI; break;
  case Opcode::ISub: O.K = RegB ? MicroKind::ISubR : MicroKind::ISubI; break;
  case Opcode::IMul: O.K = RegB ? MicroKind::IMulR : MicroKind::IMulI; break;
  case Opcode::Sll: O.K = RegB ? MicroKind::SllR : MicroKind::SllI; break;
  case Opcode::Srl: O.K = RegB ? MicroKind::SrlR : MicroKind::SrlI; break;
  case Opcode::And: O.K = RegB ? MicroKind::AndR : MicroKind::AndI; break;
  case Opcode::Or: O.K = RegB ? MicroKind::OrR : MicroKind::OrI; break;
  case Opcode::Xor: O.K = RegB ? MicroKind::XorR : MicroKind::XorI; break;
  case Opcode::CmpEq:
    O.K = RegB ? MicroKind::CmpEqR : MicroKind::CmpEqI;
    break;
  case Opcode::CmpLt:
    O.K = RegB ? MicroKind::CmpLtR : MicroKind::CmpLtI;
    break;
  case Opcode::CmpLe:
    O.K = RegB ? MicroKind::CmpLeR : MicroKind::CmpLeI;
    break;
  case Opcode::FAdd: O.K = MicroKind::FAdd; break;
  case Opcode::FSub: O.K = MicroKind::FSub; break;
  case Opcode::FMul: O.K = MicroKind::FMul; break;
  case Opcode::FDiv: O.K = MicroKind::FDiv; break;
  case Opcode::FCmpEq: O.K = MicroKind::FCmpEq; break;
  case Opcode::FCmpLt: O.K = MicroKind::FCmpLt; break;
  case Opcode::FCmpLe: O.K = MicroKind::FCmpLe; break;
  case Opcode::CMov: O.K = MicroKind::CMov; break;
  case Opcode::FCMov: O.K = MicroKind::FCMov; break;
  case Opcode::Load:
  case Opcode::FLoad:
  case Opcode::Store:
  case Opcode::FStore:
    O.K = I.Op == Opcode::Load    ? MicroKind::Load
          : I.Op == Opcode::FLoad ? MicroKind::FLoad
          : I.Op == Opcode::Store ? MicroKind::Store
                                  : MicroKind::FStore;
    O.A = I.Op == Opcode::Store || I.Op == Opcode::FStore ? I.SrcA : Reg();
    O.B = I.Base;
    O.Imm = I.Offset;
    break;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    assert(false && "terminators are not predecoded as micro-ops");
    break;
  }
  return O;
}

InterpResult ir::interpret(const Module &M, uint64_t MaxInstrs) {
  const Function &F = M.Fn;

  std::vector<MicroOp> Ops;
  std::vector<MicroBlock> Blocks(F.Blocks.size());
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    MicroBlock &MB = Blocks[B];
    MB.Start = static_cast<uint32_t>(Ops.size());
    for (size_t K = 0; K + 1 < BB.Instrs.size(); ++K)
      Ops.push_back(decodeMicro(BB.Instrs[K]));
    MB.NumMicro = static_cast<uint32_t>(Ops.size()) - MB.Start;
    MB.NumInstrs = BB.Instrs.size();
    const Instr &T = BB.terminator();
    MB.Term = T.Op;
    MB.Cond = T.SrcA;
    MB.T0 = T.Target0;
    MB.T1 = T.Target1;
  }

  ExecState S(M);
  InterpResult R;
  R.BlockCounts.assign(F.Blocks.size(), 0);
  R.EdgeCounts.assign(F.Blocks.size(), {0, 0});
  const MicroOp *Base = Ops.data();

  int Block = 0;
  while (true) {
    const MicroBlock &MB = Blocks[Block];
    ++R.BlockCounts[Block];
    if (R.DynInstrs + MB.NumInstrs > MaxInstrs)
      return R;
    R.DynInstrs += MB.NumInstrs;
    for (const MicroOp *O = Base + MB.Start, *E = O + MB.NumMicro; O != E;
         ++O)
      execMicro(S, *O);
    switch (MB.Term) {
    case Opcode::Br:
      if (S.readInt(MB.Cond) != 0) {
        ++R.EdgeCounts[Block][0];
        Block = MB.T0;
      } else {
        ++R.EdgeCounts[Block][1];
        Block = MB.T1;
      }
      break;
    case Opcode::Jmp:
      ++R.EdgeCounts[Block][0];
      Block = MB.T0;
      break;
    case Opcode::Ret:
      R.Finished = true;
      R.Checksum = S.outputChecksum(M);
      return R;
    default:
      assert(false && "bad terminator");
      return R;
    }
  }
}
