//===- ir/IR.h - Alpha-like three-address intermediate form -----*- C++ -*-===//
///
/// \file
/// The intermediate representation shared by the whole pipeline: an
/// Alpha-21164-flavoured three-address code over virtual (later physical)
/// registers, organized into basic blocks with explicit branch targets.
///
/// Design notes:
///  - Register ids share one dense space. Ids 0..31 are the physical integer
///    registers, 32..63 the physical floating-point registers, and ids >= 64
///    are virtual. This keeps liveness/allocation bitsets trivially dense.
///  - Loads and stores carry a MemRef: the affine linear form of the accessed
///    address (array id, sum of reg*coeff terms, constant). The scheduler's
///    dependence DAG uses it for array dependence analysis (the paper credits
///    the Multiflow compiler's load/store disambiguation for part of its
///    advantage over the earlier gcc-based study, section 5.5).
///  - Loads also carry a compile-time hit/miss annotation written by the
///    locality-analysis pass (section 3.3); it influences scheduling only,
///    never simulation.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_IR_H
#define BALSCHED_IR_IR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bsched {
namespace ir {

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

enum class RegClass : uint8_t { Int, Fp };

/// Number of physical registers per class (Alpha: 32 integer, 32 FP).
constexpr unsigned NumPhysPerClass = 32;
/// Total number of physical register ids (integer ids then FP ids).
constexpr unsigned NumPhysTotal = 2 * NumPhysPerClass;

/// A register operand; a thin wrapper over a dense id.
struct Reg {
  static constexpr uint32_t InvalidId = 0xffffffffu;
  uint32_t Id = InvalidId;

  Reg() = default;
  explicit Reg(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != InvalidId; }
  bool isPhys() const { return isValid() && Id < NumPhysTotal; }
  bool isVirtual() const { return isValid() && Id >= NumPhysTotal; }

  bool operator==(const Reg &O) const { return Id == O.Id; }
  bool operator!=(const Reg &O) const { return Id != O.Id; }
};

/// Returns the N'th physical integer register.
inline Reg physIntReg(unsigned N) {
  assert(N < NumPhysPerClass && "physical int register out of range");
  return Reg(N);
}

/// Returns the N'th physical floating-point register.
inline Reg physFpReg(unsigned N) {
  assert(N < NumPhysPerClass && "physical fp register out of range");
  return Reg(NumPhysPerClass + N);
}

//===----------------------------------------------------------------------===//
// Opcodes
//===----------------------------------------------------------------------===//

enum class Opcode : uint8_t {
  // Immediates and moves.
  LdI,   ///< dst:int <- integer immediate (Alpha lda-like).
  FLdI,  ///< dst:fp  <- double immediate (constant-pool load stand-in).
  Mov,   ///< dst:int <- srcA:int.
  FMov,  ///< dst:fp  <- srcA:fp.
  ItoF,  ///< dst:fp  <- (double)srcA:int.
  FtoI,  ///< dst:int <- (int64)srcA:fp (truncating).
  // Integer ALU (srcB may be an immediate, Alpha operate-literal style).
  IAdd, ISub, IMul, Sll, Srl, And, Or, Xor,
  CmpEq, CmpLt, CmpLe, ///< dst:int <- 0/1 comparison of int operands.
  // Floating point.
  FAdd, FSub, FMul, FDiv,
  FCmpEq, FCmpLt, FCmpLe, ///< dst:int <- 0/1 comparison of fp operands.
  // Conditional moves (Multiflow-style predication; they read the old dst).
  CMov,  ///< if (srcA:int != 0) dst:int = srcB:int.
  FCMov, ///< if (srcA:int != 0) dst:fp  = srcB:fp.
  // Memory. Address = Base + Offset.
  Load,   ///< dst:int <- mem64[addr].
  FLoad,  ///< dst:fp  <- mem64[addr] (as double).
  Store,  ///< mem64[addr] <- srcA:int.
  FStore, ///< mem64[addr] <- srcA:fp.
  // Control. Each block ends in exactly one of these.
  Br,  ///< if (srcA:int != 0) goto Target0 else goto Target1.
  Jmp, ///< goto Target0.
  Ret, ///< end of program.
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Ret) + 1;

/// Instruction-class buckets for the paper's dynamic-instruction metrics
/// ("long and short integers, long and short floating point operations,
/// loads, stores, branches, and spill and restore instructions", section 4.3).
enum class InstrClass : uint8_t {
  ShortInt, ///< 1-cycle integer/move/immediate operations.
  LongInt,  ///< integer multiply (8 cycles).
  ShortFp,  ///< 4-cycle FP operations.
  LongFp,   ///< FP divide (30 cycles for 53-bit fractions).
  LoadCls,  ///< memory loads (variable latency).
  StoreCls, ///< memory stores.
  BranchCls ///< conditional branches / jumps / ret.
};

/// Operand-slot typing for an opcode, used by the verifier and builders.
struct OpInfo {
  const char *Name;
  /// Fixed issue-to-result latency in cycles (Table 3). Loads use the L1-hit
  /// value here; their real latency is decided by the memory hierarchy.
  int Latency;
  InstrClass Cls;
  /// Register class of the destination, or -1 if none.
  int DstCls;
  /// Register classes of srcA/srcB/srcC, or -1 if the slot is unused.
  int SrcACls, SrcBCls, SrcCCls;
  bool IsLoad, IsStore, IsTerminator;
  /// True if srcB may be an immediate instead of a register.
  bool SrcBImmOk;
};

/// Returns the static operand/latency table entry for \p Op.
const OpInfo &opInfo(Opcode Op);

/// L1-hit load latency in cycles (Table 3: "load 2"). This is the optimistic
/// weight the traditional scheduler assigns every load.
constexpr int LoadHitLatency = 2;

/// Upper bound on balanced load weights (section 4.2: "we limited load
/// weights to a maximum of 50", matching the main-memory latency).
constexpr int LoadWeightCap = 50;

//===----------------------------------------------------------------------===//
// Memory references
//===----------------------------------------------------------------------===//

/// Affine description of a load/store address: the byte address equals
/// base(ArrayId) + Const + sum(Terms[i].Coeff * value(Terms[i].Sym)).
///
/// A "symbol" is a (register id, definition epoch) pair captured at lowering
/// time; two MemRefs in the same block are comparable when their symbols'
/// registers have not been redefined between the two accesses (the dependence
/// DAG checks the epochs).
struct MemRef {
  struct Term {
    uint32_t RegId;
    int64_t Coeff;
    bool operator==(const Term &O) const = default;
  };
  int ArrayId = -1; ///< -1 = unknown object (forces conservative deps).
  /// True when Terms/Const describe the address exactly (affine subscripts).
  /// False = only the array identity is known (e.g. indirect subscripts).
  bool HasForm = false;
  std::vector<Term> Terms;
  /// Byte offset from the array base (with HasForm), plus Terms (byte
  /// coefficients).
  int64_t Const = 0;
  int Size = 8; ///< access size in bytes.

  bool isKnown() const { return ArrayId >= 0; }
  bool sameLinearForm(const MemRef &O) const {
    return HasForm && O.HasForm && ArrayId == O.ArrayId && Terms == O.Terms;
  }
};

/// Compile-time cache-behaviour annotation from locality analysis.
enum class HitMiss : uint8_t { Unknown, Hit, Miss };

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

struct Instr {
  Opcode Op = Opcode::Ret;
  Reg Dst;
  Reg SrcA, SrcB, SrcC;
  /// Integer immediate (LdI, ALU literal), or the bit pattern of the double
  /// immediate for FLdI.
  int64_t Imm = 0;
  bool HasImm = false;

  // Memory operands.
  Reg Base;
  int64_t Offset = 0;
  MemRef Mem;
  HitMiss HM = HitMiss::Unknown;
  /// Locality group: hit loads carry the index of their governing miss load's
  /// group so the DAG can add the miss->hit arcs of section 4.2.
  int LocalityGroup = -1;

  // Spill bookkeeping (set by the register allocator; counted separately in
  // the paper's instruction metrics).
  bool IsSpill = false;   ///< store of a spilled value.
  bool IsRestore = false; ///< reload of a spilled value.
  bool IsRemat = false;   ///< constant re-materialized at a spilled use.

  // Control-flow targets (block ids). Br: Target0 = taken, Target1 = fall
  // through. Jmp: Target0.
  int Target0 = -1, Target1 = -1;

  bool isLoad() const { return opInfo(Op).IsLoad; }
  bool isStore() const { return opInfo(Op).IsStore; }
  bool isMem() const { return isLoad() || isStore(); }
  bool isTerminator() const { return opInfo(Op).IsTerminator; }

  /// Double immediate accessors for FLdI.
  void setFImm(double V);
  double fimm() const;

  /// Appends every register this instruction reads to \p Out (including the
  /// old destination of conditional moves and the address base register).
  void appendUses(std::vector<Reg> &Out) const;
  /// Returns the defined register, or an invalid Reg.
  Reg def() const { return opInfo(Op).DstCls >= 0 ? Dst : Reg(); }
};

//===----------------------------------------------------------------------===//
// Basic blocks / function / module
//===----------------------------------------------------------------------===//

struct BasicBlock {
  int Id = -1;
  std::vector<Instr> Instrs;

  /// Exact trip count of the `for` loop whose control branch terminates this
  /// block, when the front end could fold the bounds to constants at lowering
  /// time (`for (i = 0; i < 16; i += 1)` -> 16). Set on both the guard block
  /// (the preheader's entry test) and the latch block of a rotated loop;
  /// -1 = unknown (0 is a real value: a statically empty loop). Consumed only
  /// by the static profile estimator (trace/EstimateProfile) — execution
  /// semantics never read it.
  int64_t ExactTripCount = -1;

  const Instr &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block lacks a terminator");
    return Instrs.back();
  }
  Instr &terminator() {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block lacks a terminator");
    return Instrs.back();
  }

  /// Successor block ids in (taken, fallthrough) order; empty for Ret.
  std::vector<int> successors() const;
};

/// A single-procedure unit of compilation. Block 0 is the entry.
struct Function {
  std::string Name = "kernel";
  std::vector<BasicBlock> Blocks;
  /// Register class per register id; the first NumPhysTotal entries describe
  /// the physical registers.
  std::vector<RegClass> RegClasses;

  Function();

  Reg makeReg(RegClass C) {
    RegClasses.push_back(C);
    return Reg(static_cast<uint32_t>(RegClasses.size() - 1));
  }
  unsigned numRegs() const { return static_cast<unsigned>(RegClasses.size()); }
  RegClass regClass(Reg R) const {
    assert(R.isValid() && R.Id < RegClasses.size() && "bad register");
    return RegClasses[R.Id];
  }

  /// Appends a new block and returns its id. (Returns an id, not a
  /// reference: growing Blocks invalidates references.)
  int makeBlock() {
    Blocks.emplace_back();
    Blocks.back().Id = static_cast<int>(Blocks.size()) - 1;
    return Blocks.back().Id;
  }

  /// Returns block ids of every predecessor of \p B.
  std::vector<int> predecessors(int B) const;
};

/// A named, cache-line-aligned data object ("arrays in our examples are laid
/// out ... aligned on cache-line boundaries", section 3.3).
struct ArrayInfo {
  std::string Name;
  std::vector<int64_t> Dims; ///< extents, outermost first.
  int ElemSize = 8;
  bool RowMajor = true;
  bool IsOutput = false; ///< participates in the program checksum.
  uint64_t Base = 0;     ///< byte address, assigned by Module::layout().

  int64_t numElems() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }
  int64_t sizeBytes() const { return numElems() * ElemSize; }
};

/// A kernel program: one function plus its data arrays and memory layout.
struct Module {
  std::vector<ArrayInfo> Arrays;
  Function Fn;
  uint64_t MemorySize = 0;
  /// Pseudo-array covering the spill area (added by layout, used by the
  /// register allocator for precise spill-slot dependence info).
  int SpillArrayId = -1;

  int addArray(ArrayInfo Info) {
    Arrays.push_back(std::move(Info));
    return static_cast<int>(Arrays.size()) - 1;
  }

  /// Assigns base addresses (32-byte aligned) and reserves \p SpillBytes of
  /// spill space; sets MemorySize. Idempotent per call (recomputes bases).
  void layout(uint64_t SpillBytes = 1u << 16);
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Renders \p F as text (for tests and debugging).
std::string printFunction(const Function &F);

/// Renders one instruction as text.
std::string printInstr(const Instr &I);

/// Structural and type validation. Returns an empty string when the module is
/// well formed, otherwise a description of the first problem found.
std::string verify(const Module &M);

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_IR_H
