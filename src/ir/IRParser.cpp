//===- ir/IRParser.cpp - Textual IR parser ----------------------------------===//

#include "ir/IRParser.h"

#include "support/Str.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace bsched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string ir::printModule(const Module &M) {
  std::string S;
  for (size_t K = 0; K != M.Arrays.size(); ++K) {
    if (static_cast<int>(K) == M.SpillArrayId)
      continue; // layout() recreates the spill area
    const ArrayInfo &A = M.Arrays[K];
    S += "array " + A.Name + " " + std::to_string(A.numElems());
    if (A.IsOutput)
      S += " output";
    S += "\n";
  }
  S += printFunction(M.Fn);
  return S;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class IRParser {
public:
  explicit IRParser(const std::string &Text) : In(Text) {}

  ParseIRResult run() {
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      stripCommentAndAnnotations(Line);
      Tokens = tokenize(Line);
      if (Tokens.empty())
        continue;
      parseLine();
      if (!Err.empty())
        break;
    }
    finishRegClasses();

    ParseIRResult R;
    if (Err.empty() && M.Fn.Blocks.empty())
      Err = "no function body";
    if (Err.empty()) {
      M.layout();
      if (std::string V = verify(M); !V.empty())
        Err = "parsed module does not verify: " + V;
    }
    R.Error = Err;
    if (R.ok())
      R.M = std::move(M);
    return R;
  }

private:
  std::istringstream In;
  int LineNo = 0;
  std::string Err;
  Module M;
  int CurBlock = -1;
  std::vector<std::string> Tokens;
  size_t Pos = 0;
  // Annotations found after ';' on the current line.
  bool AnnHit = false, AnnMiss = false, AnnSpill = false, AnnRestore = false;
  bool AnnRemat = false;
  /// Inferred class per virtual reg id; -1 = unconstrained yet.
  std::map<uint32_t, int> VRegCls;

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(LineNo) + ": " + Msg;
  }

  void stripCommentAndAnnotations(std::string &Line) {
    AnnHit = AnnMiss = AnnSpill = AnnRestore = AnnRemat = false;
    size_t Semi = Line.find(';');
    if (Semi == std::string::npos)
      return;
    std::string Comment = Line.substr(Semi + 1);
    Line.resize(Semi);
    AnnHit = Comment.find("hit") != std::string::npos;
    AnnMiss = Comment.find("miss") != std::string::npos;
    AnnSpill = Comment.find("spill") != std::string::npos;
    AnnRestore = Comment.find("restore") != std::string::npos;
    AnnRemat = Comment.find("remat") != std::string::npos;
  }

  static std::vector<std::string> tokenize(const std::string &Line) {
    std::vector<std::string> Out;
    std::string Cur;
    auto Flush = [&] {
      if (!Cur.empty()) {
        Out.push_back(Cur);
        Cur.clear();
      }
    };
    for (char C : Line) {
      if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
        Flush();
      } else if (C == '(' || C == ')' || C == ':') {
        Flush();
        Out.push_back(std::string(1, C));
      } else {
        Cur.push_back(C);
      }
    }
    Flush();
    return Out;
  }

  bool atEnd() const { return Pos >= Tokens.size(); }
  std::string next() {
    if (atEnd()) {
      return "";
    }
    return Tokens[Pos++];
  }
  bool accept(const std::string &T) {
    if (!atEnd() && Tokens[Pos] == T) {
      ++Pos;
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Registers with class inference
  //===--------------------------------------------------------------------===//

  Reg parseReg(int WantCls) {
    std::string T = next();
    if (T.size() < 2) {
      fail("expected register, got '" + T + "'");
      return Reg();
    }
    char Kind = T[0];
    char *End = nullptr;
    long N = std::strtol(T.c_str() + 1, &End, 10);
    if (*End != '\0' || N < 0) {
      fail("bad register '" + T + "'");
      return Reg();
    }
    if (Kind == 'r') {
      if (N >= static_cast<long>(NumPhysPerClass)) {
        fail("integer register out of range: " + T);
        return Reg();
      }
      if (WantCls == 1)
        fail("expected an fp register, got '" + T + "'");
      return Reg(static_cast<uint32_t>(N));
    }
    if (Kind == 'f') {
      if (N >= static_cast<long>(NumPhysPerClass)) {
        fail("fp register out of range: " + T);
        return Reg();
      }
      if (WantCls == 0)
        fail("expected an integer register, got '" + T + "'");
      return Reg(NumPhysPerClass + static_cast<uint32_t>(N));
    }
    if (Kind == 'v') {
      if (N > (1 << 20)) {
        // Unchecked, a huge index would make finishRegClasses materialize
        // billions of registers.
        fail("virtual register index out of range: " + T);
        return Reg();
      }
      uint32_t Id = NumPhysTotal + static_cast<uint32_t>(N);
      auto It = VRegCls.find(Id);
      if (It == VRegCls.end())
        VRegCls[Id] = WantCls;
      else if (WantCls >= 0 && It->second >= 0 && It->second != WantCls)
        fail("register class conflict for '" + T + "'");
      else if (WantCls >= 0 && It->second < 0)
        It->second = WantCls;
      return Reg(Id);
    }
    fail("bad register '" + T + "'");
    return Reg();
  }

  int64_t parseInt() {
    std::string T = next();
    if (!T.empty() && T[0] == '#')
      T.erase(0, 1);
    char *End = nullptr;
    long long V = std::strtoll(T.c_str(), &End, 10);
    if (T.empty() || *End != '\0')
      fail("expected integer, got '" + T + "'");
    return V;
  }

  int parseBlockRef() {
    std::string T = next();
    if (T.size() < 2 || T[0] != 'b') {
      fail("expected block reference, got '" + T + "'");
      return -1;
    }
    return static_cast<int>(std::strtol(T.c_str() + 1, nullptr, 10));
  }

  //===--------------------------------------------------------------------===//
  // Lines
  //===--------------------------------------------------------------------===//

  void parseLine() {
    Pos = 0;
    const std::string &Head = Tokens[0];

    if (Head == "array") {
      ++Pos;
      ArrayInfo A;
      A.Name = next();
      A.Dims = {parseInt()};
      if (Err.empty() && A.Dims[0] <= 0)
        fail("array size must be positive");
      if (accept("output"))
        A.IsOutput = true;
      if (!atEnd())
        fail("trailing tokens after array declaration");
      M.addArray(std::move(A));
      return;
    }
    if (Head == "func") {
      M.Fn.Name = Tokens.size() > 1 ? Tokens[1] : "kernel";
      return;
    }
    // Block label: "bN" ":".
    if (Head.size() >= 2 && Head[0] == 'b' &&
        std::isdigit(static_cast<unsigned char>(Head[1])) &&
        Tokens.size() == 2 && Tokens[1] == ":") {
      int Id = static_cast<int>(std::strtol(Head.c_str() + 1, nullptr, 10));
      int NewId = M.Fn.makeBlock();
      if (Id != NewId)
        fail("block labels must appear in order (got b" +
             std::to_string(Id) + ", expected b" + std::to_string(NewId) +
             ")");
      CurBlock = NewId;
      return;
    }

    if (CurBlock < 0) {
      fail("instruction outside a block");
      return;
    }
    parseInstr();
  }

  void parseInstr() {
    static const std::map<std::string, Opcode> ByName = [] {
      std::map<std::string, Opcode> Map;
      for (unsigned K = 0; K != NumOpcodes; ++K)
        Map[opInfo(static_cast<Opcode>(K)).Name] = static_cast<Opcode>(K);
      return Map;
    }();

    std::string Name = next();
    auto It = ByName.find(Name);
    if (It == ByName.end()) {
      fail("unknown opcode '" + Name + "'");
      return;
    }
    Instr I;
    I.Op = It->second;
    const OpInfo &Info = opInfo(I.Op);

    switch (I.Op) {
    case Opcode::LdI:
      I.Dst = parseReg(0);
      I.Imm = parseInt();
      I.HasImm = true;
      break;
    case Opcode::FLdI: {
      I.Dst = parseReg(1);
      std::string T = next();
      char *End = nullptr;
      double V = std::strtod(T.c_str(), &End);
      if (T.empty() || *End != '\0')
        fail("expected float, got '" + T + "'");
      I.setFImm(V);
      break;
    }
    case Opcode::Load:
    case Opcode::FLoad:
      I.Dst = parseReg(I.Op == Opcode::FLoad ? 1 : 0);
      I.Offset = parseInt();
      if (!accept("("))
        fail("expected '(' in memory operand");
      I.Base = parseReg(0);
      if (!accept(")"))
        fail("expected ')' in memory operand");
      I.HM = AnnMiss ? HitMiss::Miss : AnnHit ? HitMiss::Hit : HitMiss::Unknown;
      I.IsRestore = AnnRestore;
      break;
    case Opcode::Store:
    case Opcode::FStore:
      I.SrcA = parseReg(I.Op == Opcode::FStore ? 1 : 0);
      I.Offset = parseInt();
      if (!accept("("))
        fail("expected '(' in memory operand");
      I.Base = parseReg(0);
      if (!accept(")"))
        fail("expected ')' in memory operand");
      I.IsSpill = AnnSpill;
      break;
    case Opcode::Br:
      I.SrcA = parseReg(0);
      I.Target0 = parseBlockRef();
      I.Target1 = parseBlockRef();
      break;
    case Opcode::Jmp:
      I.Target0 = parseBlockRef();
      break;
    case Opcode::Ret:
      break;
    case Opcode::CMov:
    case Opcode::FCMov: {
      int ValCls = I.Op == Opcode::FCMov ? 1 : 0;
      I.Dst = parseReg(ValCls);
      I.SrcA = parseReg(0);
      I.SrcB = parseReg(ValCls);
      break;
    }
    default: {
      // Unary and binary register forms; srcB may be a '#imm' literal.
      I.Dst = parseReg(Info.DstCls);
      I.SrcA = parseReg(Info.SrcACls);
      if (Info.SrcBCls >= 0) {
        if (!atEnd() && Tokens[Pos][0] == '#') {
          I.Imm = parseInt();
          I.HasImm = true;
        } else {
          I.SrcB = parseReg(Info.SrcBCls);
        }
      }
      break;
    }
    }
    if (!atEnd())
      fail("trailing tokens after instruction");
    if (I.Op == Opcode::LdI || I.Op == Opcode::FLdI)
      I.IsRemat = AnnRemat;
    if (Err.empty())
      M.Fn.Blocks[CurBlock].Instrs.push_back(std::move(I));
  }

  /// Registers all inferred virtual registers on the function (defaulting
  /// unconstrained ones to Int).
  void finishRegClasses() {
    uint32_t MaxId = NumPhysTotal;
    for (const auto &[Id, Cls] : VRegCls) {
      (void)Cls;
      MaxId = std::max(MaxId, Id + 1);
    }
    while (M.Fn.numRegs() < MaxId)
      M.Fn.makeReg(RegClass::Int);
    for (const auto &[Id, Cls] : VRegCls)
      if (Cls == 1)
        M.Fn.RegClasses[Id] = RegClass::Fp;
  }
};

} // namespace

ParseIRResult ir::parseModule(const std::string &Text) {
  return IRParser(Text).run();
}
