//===- ir/Liveness.cpp - Global register liveness -------------------------===//

#include "ir/Liveness.h"

using namespace bsched;
using namespace bsched::ir;

Liveness ir::computeLiveness(const Function &F) {
  unsigned NumRegs = F.numRegs();
  size_t NumBlocks = F.Blocks.size();

  // Per-block Use (upward-exposed reads) and Def (writes) sets.
  std::vector<BitVec> Use(NumBlocks, BitVec(NumRegs));
  std::vector<BitVec> Def(NumBlocks, BitVec(NumRegs));
  std::vector<Reg> Uses;
  for (size_t B = 0; B != NumBlocks; ++B) {
    for (const Instr &I : F.Blocks[B].Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        if (!Def[B].test(R.Id))
          Use[B].set(R.Id);
      // CMov-style partial writes already appear in Uses; a definition after
      // that still kills downward exposure.
      if (Reg D = I.def(); D.isValid())
        Def[B].set(D.Id);
    }
  }

  Liveness L;
  L.LiveIn.assign(NumBlocks, BitVec(NumRegs));
  L.LiveOut.assign(NumBlocks, BitVec(NumRegs));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      BitVec Out(NumRegs);
      for (int S : F.Blocks[BI].successors())
        Out.orWith(L.LiveIn[S]);
      BitVec In = Out;
      In.subtract(Def[BI]);
      In.orWith(Use[BI]);
      if (!(Out == L.LiveOut[BI])) {
        L.LiveOut[BI] = std::move(Out);
        Changed = true;
      }
      if (!(In == L.LiveIn[BI])) {
        L.LiveIn[BI] = std::move(In);
        Changed = true;
      }
    }
  }
  return L;
}
