//===- ir/Liveness.cpp - Global register liveness -------------------------===//

#include "ir/Liveness.h"

#include <cstring>

using namespace bsched;
using namespace bsched::ir;

Liveness ir::computeLiveness(const Function &F) {
  unsigned NumRegs = F.numRegs();
  size_t NumBlocks = F.Blocks.size();
  size_t W = (NumRegs + 63) / 64;

  // All four dataflow sets live in flat NumBlocks x W word arrays: four
  // allocations total instead of one BitVec per block per set, and the
  // fixpoint below runs as plain word loops. Cleanup recomputes liveness
  // many times per compile, so constant overhead here is hot.
  std::vector<uint64_t> Use(NumBlocks * W, 0), Def(NumBlocks * W, 0);
  std::vector<uint64_t> In(NumBlocks * W, 0), Out(NumBlocks * W, 0);
  auto SetBit = [](uint64_t *Row, uint32_t I) {
    Row[I / 64] |= 1ull << (I % 64);
  };
  auto TestBit = [](const uint64_t *Row, uint32_t I) {
    return (Row[I / 64] >> (I % 64)) & 1;
  };

  // Per-block Use (upward-exposed reads) and Def (writes) sets.
  std::vector<Reg> Uses;
  for (size_t B = 0; B != NumBlocks; ++B) {
    uint64_t *UseB = Use.data() + B * W, *DefB = Def.data() + B * W;
    for (const Instr &I : F.Blocks[B].Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        if (!TestBit(DefB, R.Id))
          SetBit(UseB, R.Id);
      // CMov-style partial writes already appear in Uses; a definition after
      // that still kills downward exposure.
      if (Reg D = I.def(); D.isValid())
        SetBit(DefB, D.Id);
    }
  }

  std::vector<uint64_t> Scratch(W);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      uint64_t *OutB = Out.data() + BI * W, *InB = In.data() + BI * W;
      std::memset(Scratch.data(), 0, W * sizeof(uint64_t));
      for (int S : F.Blocks[BI].successors()) {
        const uint64_t *InS = In.data() + size_t(S) * W;
        for (size_t I = 0; I != W; ++I)
          Scratch[I] |= InS[I];
      }
      const uint64_t *UseB = Use.data() + BI * W, *DefB = Def.data() + BI * W;
      for (size_t I = 0; I != W; ++I) {
        uint64_t O = Scratch[I];
        uint64_t N = (O & ~DefB[I]) | UseB[I];
        Changed |= O != OutB[I] || N != InB[I];
        OutB[I] = O;
        InB[I] = N;
      }
    }
  }

  Liveness L;
  L.LiveIn.assign(NumBlocks, BitVec(NumRegs));
  L.LiveOut.assign(NumBlocks, BitVec(NumRegs));
  for (size_t B = 0; W != 0 && B != NumBlocks; ++B) {
    std::memcpy(L.LiveIn[B].words().data(), In.data() + B * W,
                W * sizeof(uint64_t));
    std::memcpy(L.LiveOut[B].words().data(), Out.data() + B * W,
                W * sizeof(uint64_t));
  }
  return L;
}
