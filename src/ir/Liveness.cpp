//===- ir/Liveness.cpp - Global register liveness -------------------------===//

#include "ir/Liveness.h"

#include <algorithm>
#include <cstring>

using namespace bsched;
using namespace bsched::ir;

Liveness ir::computeLiveness(const Function &F) {
  unsigned NumRegs = F.numRegs();
  size_t NumBlocks = F.Blocks.size();
  size_t W = (NumRegs + 63) / 64;

  // All four dataflow sets live in flat NumBlocks x W word arrays: four
  // allocations total instead of one BitVec per block per set, and the
  // fixpoint below runs as plain word loops. Cleanup recomputes liveness
  // many times per compile, so constant overhead here is hot.
  std::vector<uint64_t> Use(NumBlocks * W, 0), Def(NumBlocks * W, 0);
  std::vector<uint64_t> In(NumBlocks * W, 0), Out(NumBlocks * W, 0);
  auto SetBit = [](uint64_t *Row, uint32_t I) {
    Row[I / 64] |= 1ull << (I % 64);
  };
  auto TestBit = [](const uint64_t *Row, uint32_t I) {
    return (Row[I / 64] >> (I % 64)) & 1;
  };

  // Per-block Use (upward-exposed reads) and Def (writes) sets.
  std::vector<Reg> Uses;
  for (size_t B = 0; B != NumBlocks; ++B) {
    uint64_t *UseB = Use.data() + B * W, *DefB = Def.data() + B * W;
    for (const Instr &I : F.Blocks[B].Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        if (!TestBit(DefB, R.Id))
          SetBit(UseB, R.Id);
      // CMov-style partial writes already appear in Uses; a definition after
      // that still kills downward exposure.
      if (Reg D = I.def(); D.isValid())
        SetBit(DefB, D.Id);
    }
  }

  std::vector<uint64_t> Scratch(W);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      uint64_t *OutB = Out.data() + BI * W, *InB = In.data() + BI * W;
      std::memset(Scratch.data(), 0, W * sizeof(uint64_t));
      for (int S : F.Blocks[BI].successors()) {
        const uint64_t *InS = In.data() + size_t(S) * W;
        for (size_t I = 0; I != W; ++I)
          Scratch[I] |= InS[I];
      }
      const uint64_t *UseB = Use.data() + BI * W, *DefB = Def.data() + BI * W;
      for (size_t I = 0; I != W; ++I) {
        uint64_t O = Scratch[I];
        uint64_t N = (O & ~DefB[I]) | UseB[I];
        Changed |= O != OutB[I] || N != InB[I];
        OutB[I] = O;
        InB[I] = N;
      }
    }
  }

  Liveness L;
  L.LiveIn.assign(NumBlocks, BitVec(NumRegs));
  L.LiveOut.assign(NumBlocks, BitVec(NumRegs));
  for (size_t B = 0; W != 0 && B != NumBlocks; ++B) {
    std::memcpy(L.LiveIn[B].words().data(), In.data() + B * W,
                W * sizeof(uint64_t));
    std::memcpy(L.LiveOut[B].words().data(), Out.data() + B * W,
                W * sizeof(uint64_t));
  }
  return L;
}

//===----------------------------------------------------------------------===//
// LivenessTracker
//===----------------------------------------------------------------------===//

void LivenessTracker::rebuildGenKill(const Function &F, int Block) {
  uint64_t *UseB = Use.data() + size_t(Block) * W;
  uint64_t *DefB = Def.data() + size_t(Block) * W;
  std::memset(UseB, 0, W * sizeof(uint64_t));
  std::memset(DefB, 0, W * sizeof(uint64_t));
  for (const Instr &I : F.Blocks[Block].Instrs) {
    UsesScratch.clear();
    I.appendUses(UsesScratch);
    for (Reg R : UsesScratch)
      if (!testBit(DefB, R.Id))
        UseB[R.Id / 64] |= 1ull << (R.Id % 64);
    if (Reg D = I.def(); D.isValid())
      DefB[D.Id / 64] |= 1ull << (D.Id % 64);
  }
}

/// Round-robin fixpoint restricted to \p Blocks (descending block id, the
/// same visit order compute() uses over the whole function). Out rows of
/// successors outside \p Blocks are read but never written — they hold the
/// still-valid remainder of the solution.
void LivenessTracker::solveRegion(const std::vector<int> &Blocks) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int BI : Blocks) {
      ++BlocksResolved;
      uint64_t *OutB = Out.data() + size_t(BI) * W;
      uint64_t *InB = In.data() + size_t(BI) * W;
      std::memset(Scratch.data(), 0, W * sizeof(uint64_t));
      for (int SI = SuccStart[BI]; SI != SuccStart[BI + 1]; ++SI) {
        const uint64_t *InS = In.data() + size_t(Succs[SI]) * W;
        for (size_t I = 0; I != W; ++I)
          Scratch[I] |= InS[I];
      }
      const uint64_t *UseB = Use.data() + size_t(BI) * W;
      const uint64_t *DefB = Def.data() + size_t(BI) * W;
      for (size_t I = 0; I != W; ++I) {
        uint64_t O = Scratch[I];
        uint64_t N = (O & ~DefB[I]) | UseB[I];
        Changed |= O != OutB[I] || N != InB[I];
        OutB[I] = O;
        InB[I] = N;
      }
    }
  }
}

void LivenessTracker::compute(const Function &F) {
  ++FullComputes;
  NumBlocks = F.Blocks.size();
  W = (F.numRegs() + 63) / 64;

  Use.assign(NumBlocks * W, 0);
  Def.assign(NumBlocks * W, 0);
  In.assign(NumBlocks * W, 0);
  Out.assign(NumBlocks * W, 0);
  Scratch.assign(W, 0);
  DirtyMark.assign(NumBlocks, 0);
  InRegion.assign(NumBlocks, 0);
  RowVersion.assign(NumBlocks, 1);
  DirtyList.clear();

  // Successor and predecessor CSR; the CFG is static for the tracker's
  // lifetime (cleanup rewrites operands, never terminator targets).
  SuccStart.assign(NumBlocks + 1, 0);
  PredStart.assign(NumBlocks + 1, 0);
  Succs.clear();
  Preds.clear();
  std::vector<int> SuccsOf;
  for (size_t B = 0; B != NumBlocks; ++B) {
    SuccStart[B] = static_cast<int>(Succs.size());
    for (int S : F.Blocks[B].successors()) {
      Succs.push_back(S);
      ++PredStart[S + 1];
    }
  }
  SuccStart[NumBlocks] = static_cast<int>(Succs.size());
  for (size_t B = 0; B != NumBlocks; ++B)
    PredStart[B + 1] += PredStart[B];
  Preds.resize(Succs.size());
  {
    std::vector<int> Cursor(PredStart.begin(), PredStart.end() - 1);
    for (size_t B = 0; B != NumBlocks; ++B)
      for (int SI = SuccStart[B]; SI != SuccStart[B + 1]; ++SI)
        Preds[Cursor[Succs[SI]]++] = static_cast<int>(B);
  }

  for (size_t B = 0; B != NumBlocks; ++B)
    rebuildGenKill(F, static_cast<int>(B));

  Region.resize(NumBlocks);
  for (size_t B = 0; B != NumBlocks; ++B)
    Region[B] = static_cast<int>(NumBlocks - 1 - B); // descending ids
  solveRegion(Region);
  Valid = true;
}

void LivenessTracker::markDirty(int Block) {
  if (!Valid)
    return; // the next compute() covers everything anyway
  if (!DirtyMark[Block]) {
    DirtyMark[Block] = 1;
    DirtyList.push_back(Block);
  }
}

void LivenessTracker::refresh(const Function &F) {
  if (!Valid) {
    compute(F);
    return;
  }
  if (DirtyList.empty())
    return;
  ++IncrementalUpdates;

  // New gen/kill sets for the edited blocks.
  for (int B : DirtyList)
    rebuildGenKill(F, B);

  // Affected region: every block from which a dirty block is reachable —
  // liveness flows backward, so only those blocks' In/Out can differ in the
  // new least fixpoint. Collected by BFS over predecessor edges.
  Region.clear();
  Stack.clear();
  for (int B : DirtyList) {
    InRegion[B] = 1;
    Region.push_back(B);
    Stack.push_back(B);
  }
  while (!Stack.empty()) {
    int B = Stack.back();
    Stack.pop_back();
    for (int PI = PredStart[B]; PI != PredStart[B + 1]; ++PI) {
      int P = Preds[PI];
      if (!InRegion[P]) {
        InRegion[P] = 1;
        Region.push_back(P);
        Stack.push_back(P);
      }
    }
  }

  // Zero the region's rows and re-solve from below: re-iterating from the
  // stale solution is unsound after deletions (stale bits around a CFG
  // cycle can sustain each other above the least fixpoint), while a
  // from-zero solve against the frozen boundary converges to exactly the
  // global least fixpoint's restriction.
  for (int B : Region) {
    std::memset(In.data() + size_t(B) * W, 0, W * sizeof(uint64_t));
    std::memset(Out.data() + size_t(B) * W, 0, W * sizeof(uint64_t));
    ++RowVersion[B]; // rows in the region may move (conservative)
  }
  std::sort(Region.begin(), Region.end(), std::greater<int>());
  solveRegion(Region);

  for (int B : Region)
    InRegion[B] = 0;
  for (int B : DirtyList)
    DirtyMark[B] = 0;
  DirtyList.clear();
}
