//===- ir/CFG.cpp - Control-flow analyses ------------------------------------===//

#include "ir/CFG.h"

#include <utility>

using namespace bsched;
using namespace bsched::ir;

std::vector<std::vector<bool>> ir::findBackEdges(const Function &F) {
  size_t N = F.Blocks.size();
  std::vector<std::vector<bool>> Back(N);
  for (size_t B = 0; B != N; ++B)
    Back[B].assign(F.Blocks[B].successors().size(), false);

  enum class Color : uint8_t { White, Grey, Black };
  std::vector<Color> Colors(N, Color::White);
  std::vector<std::pair<int, size_t>> Stack;
  Stack.push_back({0, 0});
  Colors[0] = Color::Grey;
  while (!Stack.empty()) {
    auto &[B, K] = Stack.back();
    std::vector<int> Succs = F.Blocks[B].successors();
    if (K == Succs.size()) {
      Colors[B] = Color::Black;
      Stack.pop_back();
      continue;
    }
    int S = Succs[K];
    size_t Slot = K;
    ++K;
    if (Colors[S] == Color::Grey) {
      Back[B][Slot] = true;
    } else if (Colors[S] == Color::White) {
      Colors[S] = Color::Grey;
      Stack.push_back({S, 0});
    }
  }
  return Back;
}

std::vector<NaturalLoop> ir::findNaturalLoops(const Function &F) {
  size_t N = F.Blocks.size();
  std::vector<std::vector<bool>> Back = findBackEdges(F);
  std::vector<NaturalLoop> Loops;

  // One predecessor map up front: Function::predecessors() rescans every
  // block per call, which made each latch's pred-walk quadratic on unrolled
  // CFGs (and this function dominates estimateProfile's runtime).
  std::vector<std::vector<int>> Pred(N);
  for (size_t B = 0; B != N; ++B)
    for (int S : F.Blocks[B].successors())
      Pred[static_cast<size_t>(S)].push_back(static_cast<int>(B));

  for (size_t B = 0; B != N; ++B) {
    std::vector<int> Succs = F.Blocks[B].successors();
    for (size_t K = 0; K != Succs.size(); ++K) {
      if (!Back[B][K])
        continue;
      NaturalLoop L;
      L.Header = Succs[K];
      L.Latch = static_cast<int>(B);
      L.Contains.assign(N, false);
      L.Contains[L.Header] = true;
      std::vector<int> Work;
      if (!L.Contains[L.Latch]) {
        L.Contains[L.Latch] = true;
        Work.push_back(L.Latch);
      }
      while (!Work.empty()) {
        int Cur = Work.back();
        Work.pop_back();
        for (int P : Pred[static_cast<size_t>(Cur)])
          if (!L.Contains[P]) {
            L.Contains[P] = true;
            Work.push_back(P);
          }
      }
      // Preheader: the single outside predecessor of the header.
      int Outside = -1;
      bool Unique = true;
      for (int P : Pred[static_cast<size_t>(L.Header)]) {
        if (L.Contains[P])
          continue;
        if (Outside >= 0)
          Unique = false;
        Outside = P;
      }
      L.Preheader = Unique ? Outside : -1;
      Loops.push_back(std::move(L));
    }
  }
  return Loops;
}

std::vector<int> ir::loopDepths(const Function &F) {
  std::vector<int> Depth(F.Blocks.size(), 0);
  for (const NaturalLoop &L : findNaturalLoops(F))
    for (size_t B = 0; B != Depth.size(); ++B)
      if (L.Contains[B])
        ++Depth[B];
  return Depth;
}
