//===- ir/IR.cpp - IR definitions, printer, verifier ----------------------===//

#include "ir/IR.h"

#include "support/Str.h"

#include <cstring>

using namespace bsched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Opcode table
//===----------------------------------------------------------------------===//

namespace {

constexpr int IntC = 0, FpC = 1, NoC = -1;

// Latencies follow Table 3 of the paper: integer op 1, integer multiply 8,
// load 2 (L1 hit), store 1, FP op 4, FP div (53-bit fraction) 30, branch 2.
const OpInfo OpTable[NumOpcodes] = {
    //        name     lat cls                    dst   a     b     c    ld     st     term   bimm
    /*LdI*/ {"ldi", 1, InstrClass::ShortInt, IntC, NoC, NoC, NoC, false, false, false, false},
    /*FLdI*/ {"fldi", 1, InstrClass::ShortInt, FpC, NoC, NoC, NoC, false, false, false, false},
    /*Mov*/ {"mov", 1, InstrClass::ShortInt, IntC, IntC, NoC, NoC, false, false, false, false},
    /*FMov*/ {"fmov", 4, InstrClass::ShortFp, FpC, FpC, NoC, NoC, false, false, false, false},
    /*ItoF*/ {"itof", 4, InstrClass::ShortFp, FpC, IntC, NoC, NoC, false, false, false, false},
    /*FtoI*/ {"ftoi", 4, InstrClass::ShortFp, IntC, FpC, NoC, NoC, false, false, false, false},
    /*IAdd*/ {"add", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*ISub*/ {"sub", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*IMul*/ {"mul", 8, InstrClass::LongInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*Sll*/ {"sll", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*Srl*/ {"srl", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*And*/ {"and", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*Or*/ {"or", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*Xor*/ {"xor", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*CmpEq*/ {"cmpeq", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*CmpLt*/ {"cmplt", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*CmpLe*/ {"cmple", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, true},
    /*FAdd*/ {"fadd", 4, InstrClass::ShortFp, FpC, FpC, FpC, NoC, false, false, false, false},
    /*FSub*/ {"fsub", 4, InstrClass::ShortFp, FpC, FpC, FpC, NoC, false, false, false, false},
    /*FMul*/ {"fmul", 4, InstrClass::ShortFp, FpC, FpC, FpC, NoC, false, false, false, false},
    /*FDiv*/ {"fdiv", 30, InstrClass::LongFp, FpC, FpC, FpC, NoC, false, false, false, false},
    /*FCmpEq*/ {"fcmpeq", 4, InstrClass::ShortFp, IntC, FpC, FpC, NoC, false, false, false, false},
    /*FCmpLt*/ {"fcmplt", 4, InstrClass::ShortFp, IntC, FpC, FpC, NoC, false, false, false, false},
    /*FCmpLe*/ {"fcmple", 4, InstrClass::ShortFp, IntC, FpC, FpC, NoC, false, false, false, false},
    /*CMov*/ {"cmov", 1, InstrClass::ShortInt, IntC, IntC, IntC, NoC, false, false, false, false},
    /*FCMov*/ {"fcmov", 4, InstrClass::ShortFp, FpC, IntC, FpC, NoC, false, false, false, false},
    /*Load*/ {"ld", LoadHitLatency, InstrClass::LoadCls, IntC, NoC, NoC, NoC, true, false, false, false},
    /*FLoad*/ {"fld", LoadHitLatency, InstrClass::LoadCls, FpC, NoC, NoC, NoC, true, false, false, false},
    /*Store*/ {"st", 1, InstrClass::StoreCls, NoC, IntC, NoC, NoC, false, true, false, false},
    /*FStore*/ {"fst", 1, InstrClass::StoreCls, NoC, FpC, NoC, NoC, false, true, false, false},
    /*Br*/ {"br", 2, InstrClass::BranchCls, NoC, IntC, NoC, NoC, false, false, true, false},
    /*Jmp*/ {"jmp", 2, InstrClass::BranchCls, NoC, NoC, NoC, NoC, false, false, true, false},
    /*Ret*/ {"ret", 2, InstrClass::BranchCls, NoC, NoC, NoC, NoC, false, false, true, false},
};

} // namespace

const OpInfo &ir::opInfo(Opcode Op) {
  return OpTable[static_cast<unsigned>(Op)];
}

//===----------------------------------------------------------------------===//
// Instr
//===----------------------------------------------------------------------===//

void Instr::setFImm(double V) {
  static_assert(sizeof(double) == sizeof(int64_t));
  std::memcpy(&Imm, &V, sizeof(double));
  HasImm = true;
}

double Instr::fimm() const {
  double V;
  std::memcpy(&V, &Imm, sizeof(double));
  return V;
}

void Instr::appendUses(std::vector<Reg> &Out) const {
  if (SrcA.isValid())
    Out.push_back(SrcA);
  if (SrcB.isValid())
    Out.push_back(SrcB);
  if (SrcC.isValid())
    Out.push_back(SrcC);
  if (Base.isValid())
    Out.push_back(Base);
  // Conditional moves leave the destination unchanged when the predicate is
  // false, so the previous value of Dst is a real input.
  if ((Op == Opcode::CMov || Op == Opcode::FCMov) && Dst.isValid())
    Out.push_back(Dst);
}

//===----------------------------------------------------------------------===//
// BasicBlock / Function
//===----------------------------------------------------------------------===//

std::vector<int> BasicBlock::successors() const {
  const Instr &T = terminator();
  switch (T.Op) {
  case Opcode::Br:
    return {T.Target0, T.Target1};
  case Opcode::Jmp:
    return {T.Target0};
  case Opcode::Ret:
    return {};
  default:
    assert(false && "non-terminator at block end");
    return {};
  }
}

Function::Function() {
  RegClasses.reserve(256);
  for (unsigned I = 0; I != NumPhysPerClass; ++I)
    RegClasses.push_back(RegClass::Int);
  for (unsigned I = 0; I != NumPhysPerClass; ++I)
    RegClasses.push_back(RegClass::Fp);
}

std::vector<int> Function::predecessors(int B) const {
  std::vector<int> Preds;
  for (const BasicBlock &BB : Blocks)
    for (int S : BB.successors())
      if (S == B)
        Preds.push_back(BB.Id);
  return Preds;
}

//===----------------------------------------------------------------------===//
// Module layout
//===----------------------------------------------------------------------===//

void Module::layout(uint64_t SpillBytes) {
  // Drop a stale spill pseudo-array from a previous layout() call.
  if (SpillArrayId >= 0 &&
      SpillArrayId == static_cast<int>(Arrays.size()) - 1 &&
      Arrays.back().Name == "<spill>")
    Arrays.pop_back();
  SpillArrayId = -1;

  // Leave the first 64 bytes unused so that address 0 stays invalid.
  uint64_t Addr = 64;
  constexpr uint64_t LineSize = 32;
  for (ArrayInfo &A : Arrays) {
    Addr = (Addr + LineSize - 1) / LineSize * LineSize;
    A.Base = Addr;
    Addr += static_cast<uint64_t>(A.sizeBytes());
  }
  Addr = (Addr + LineSize - 1) / LineSize * LineSize;

  ArrayInfo Spill;
  Spill.Name = "<spill>";
  Spill.Dims = {static_cast<int64_t>(SpillBytes / 8)};
  Spill.ElemSize = 8;
  Spill.Base = Addr;
  SpillArrayId = static_cast<int>(Arrays.size());
  Arrays.push_back(std::move(Spill));
  Addr += SpillBytes;

  MemorySize = Addr;
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

static std::string regName(Reg R) {
  if (!R.isValid())
    return "<none>";
  if (R.Id < NumPhysPerClass)
    return "r" + std::to_string(R.Id);
  if (R.Id < NumPhysTotal)
    return "f" + std::to_string(R.Id - NumPhysPerClass);
  return "v" + std::to_string(R.Id - NumPhysTotal);
}

std::string ir::printInstr(const Instr &I) {
  const OpInfo &Info = opInfo(I.Op);
  std::string S = Info.Name;
  auto Arg = [&](const std::string &A) {
    S += S.back() == ' ' ? "" : (S == Info.Name ? " " : ", ");
    S += A;
  };
  switch (I.Op) {
  case Opcode::LdI:
    Arg(regName(I.Dst));
    Arg(std::to_string(I.Imm));
    break;
  case Opcode::FLdI:
    Arg(regName(I.Dst));
    Arg(fmtDoubleExact(I.fimm()));
    break;
  case Opcode::Load:
  case Opcode::FLoad:
    Arg(regName(I.Dst));
    Arg(std::to_string(I.Offset) + "(" + regName(I.Base) + ")");
    break;
  case Opcode::Store:
  case Opcode::FStore:
    Arg(regName(I.SrcA));
    Arg(std::to_string(I.Offset) + "(" + regName(I.Base) + ")");
    break;
  case Opcode::Br:
    Arg(regName(I.SrcA));
    Arg("b" + std::to_string(I.Target0));
    Arg("b" + std::to_string(I.Target1));
    break;
  case Opcode::Jmp:
    Arg("b" + std::to_string(I.Target0));
    break;
  case Opcode::Ret:
    break;
  default:
    if (Info.DstCls >= 0)
      Arg(regName(I.Dst));
    if (I.SrcA.isValid())
      Arg(regName(I.SrcA));
    if (I.SrcB.isValid())
      Arg(regName(I.SrcB));
    else if (I.HasImm)
      Arg("#" + std::to_string(I.Imm));
    break;
  }
  if (I.isLoad()) {
    if (I.HM == HitMiss::Hit)
      S += "  ; hit";
    else if (I.HM == HitMiss::Miss)
      S += "  ; miss";
  }
  if (I.IsSpill)
    S += "  ; spill";
  if (I.IsRestore)
    S += "  ; restore";
  if (I.IsRemat)
    S += "  ; remat";
  return S;
}

std::string ir::printFunction(const Function &F) {
  std::string S = "func " + F.Name + "\n";
  for (const BasicBlock &B : F.Blocks) {
    S += "b" + std::to_string(B.Id) + ":\n";
    for (const Instr &I : B.Instrs)
      S += "  " + printInstr(I) + "\n";
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

static std::string checkReg(const Function &F, Reg R, int WantCls,
                            const char *What, const Instr &I) {
  if (WantCls < 0) {
    if (R.isValid())
      return std::string("unexpected ") + What + " operand in '" +
             printInstr(I) + "'";
    return "";
  }
  if (!R.isValid())
    return std::string("missing ") + What + " operand in '" + printInstr(I) +
           "'";
  if (R.Id >= F.numRegs())
    return std::string("out-of-range register in '") + printInstr(I) + "'";
  RegClass Want = WantCls == 0 ? RegClass::Int : RegClass::Fp;
  if (F.regClass(R) != Want)
    return std::string("register class mismatch for ") + What + " in '" +
           printInstr(I) + "'";
  return "";
}

std::string ir::verify(const Module &M) {
  const Function &F = M.Fn;
  if (F.Blocks.empty())
    return "function has no blocks";
  int NumBlocks = static_cast<int>(F.Blocks.size());
  for (const BasicBlock &B : F.Blocks) {
    if (B.Id != static_cast<int>(&B - F.Blocks.data()))
      return "block id out of sync with position";
    if (B.Instrs.empty())
      return "empty block b" + std::to_string(B.Id);
    for (size_t K = 0; K != B.Instrs.size(); ++K) {
      const Instr &I = B.Instrs[K];
      const OpInfo &Info = opInfo(I.Op);
      bool IsLast = K + 1 == B.Instrs.size();
      if (Info.IsTerminator != IsLast)
        return std::string(Info.IsTerminator ? "terminator before block end"
                                             : "block does not end in a "
                                               "terminator") +
               " in b" + std::to_string(B.Id);

      // CMov/FCMov: SrcA is the (int) predicate, SrcB the value.
      if (I.Op == Opcode::CMov || I.Op == Opcode::FCMov) {
        if (std::string E = checkReg(F, I.SrcA, IntC, "cond", I); !E.empty())
          return E;
        int ValCls = I.Op == Opcode::CMov ? IntC : FpC;
        if (std::string E = checkReg(F, I.SrcB, ValCls, "value", I);
            !E.empty())
          return E;
        if (std::string E = checkReg(F, I.Dst, ValCls, "dst", I); !E.empty())
          return E;
      } else {
        if (std::string E = checkReg(F, I.Dst, Info.DstCls, "dst", I);
            !E.empty())
          return E;
        if (std::string E = checkReg(F, I.SrcA, Info.SrcACls, "srcA", I);
            !E.empty())
          return E;
        if (Info.SrcBCls < 0) {
          if (I.SrcB.isValid())
            return "unexpected srcB operand in '" + printInstr(I) + "'";
        } else if (!I.SrcB.isValid() && Info.SrcBImmOk && I.HasImm) {
          // Operate-with-literal form: fine.
        } else if (std::string E = checkReg(F, I.SrcB, Info.SrcBCls, "srcB",
                                            I);
                   !E.empty()) {
          return E;
        }
      }
      if (I.isMem()) {
        if (std::string E = checkReg(F, I.Base, IntC, "base", I); !E.empty())
          return E;
        if (I.Mem.isKnown() &&
            I.Mem.ArrayId >= static_cast<int>(M.Arrays.size()))
          return "memref names unknown array in '" + printInstr(I) + "'";
      }
      if (I.Op == Opcode::Br &&
          (I.Target0 < 0 || I.Target0 >= NumBlocks || I.Target1 < 0 ||
           I.Target1 >= NumBlocks))
        return "branch target out of range in b" + std::to_string(B.Id);
      if (I.Op == Opcode::Jmp && (I.Target0 < 0 || I.Target0 >= NumBlocks))
        return "jump target out of range in b" + std::to_string(B.Id);
    }
  }
  return "";
}
