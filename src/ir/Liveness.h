//===- ir/Liveness.h - Global register liveness -----------------*- C++ -*-===//
///
/// \file
/// Classic backward dataflow liveness over the whole register id space
/// (physical + virtual). Consumed by the register allocator (live intervals)
/// and by the trace scheduler (speculation is illegal when an instruction's
/// destination is live into the off-trace path, section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_LIVENESS_H
#define BALSCHED_IR_LIVENESS_H

#include "ir/IR.h"
#include "support/BitVec.h"

#include <vector>

namespace bsched {
namespace ir {

struct Liveness {
  /// One bit set per register id, per block.
  std::vector<BitVec> LiveIn, LiveOut;

  bool isLiveIn(int Block, Reg R) const { return LiveIn[Block].test(R.Id); }
  bool isLiveOut(int Block, Reg R) const { return LiveOut[Block].test(R.Id); }
};

/// Computes liveness for \p F by iterating LiveIn/LiveOut to a fixpoint.
Liveness computeLiveness(const Function &F);

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_LIVENESS_H
