//===- ir/Liveness.h - Global register liveness -----------------*- C++ -*-===//
///
/// \file
/// Classic backward dataflow liveness over the whole register id space
/// (physical + virtual). Consumed by the register allocator (live intervals)
/// and by the trace scheduler (speculation is illegal when an instruction's
/// destination is live into the off-trace path, section 3.2).
///
/// Two entry points:
///  - computeLiveness: one-shot solve returning per-block BitVec rows.
///  - LivenessTracker: a persistent solver with an incremental update API.
///    Consumers that edit the function (the cleanup fixpoint) mark exactly
///    the blocks they touched; update() then re-solves only the blocks whose
///    solution can actually change — the dirty blocks plus every block that
///    can reach one along CFG edges — against the frozen solution of the
///    rest. Liveness has a unique least fixpoint, so the result is exactly
///    equal to a fresh computeLiveness (cleanup_test asserts it under
///    randomized edits).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_LIVENESS_H
#define BALSCHED_IR_LIVENESS_H

#include "ir/IR.h"
#include "support/BitVec.h"

#include <cstdint>
#include <vector>

namespace bsched {
namespace ir {

struct Liveness {
  /// One bit set per register id, per block.
  std::vector<BitVec> LiveIn, LiveOut;

  bool isLiveIn(int Block, Reg R) const { return LiveIn[Block].test(R.Id); }
  bool isLiveOut(int Block, Reg R) const { return LiveOut[Block].test(R.Id); }
};

/// Computes liveness for \p F by iterating LiveIn/LiveOut to a fixpoint.
Liveness computeLiveness(const Function &F);

/// Incrementally-updatable liveness over a function whose CFG is static
/// (blocks and terminator targets unchanged) while instruction lists mutate.
/// All state is flat word storage recycled across compute/update cycles —
/// no per-block BitVec allocation. Register capacity is fixed at the first
/// compute(); instruction edits may only use register ids that existed then
/// (true for every cleanup pass: they never create registers).
class LivenessTracker {
public:
  /// Full solve for \p F; (re)builds the successor/predecessor CSR.
  void compute(const Function &F);

  /// Records that \p Block's instruction list may have changed. Cheap and
  /// idempotent; a no-op when the tracker has never computed.
  void markDirty(int Block);

  /// Re-solves the affected region (dirty blocks plus all blocks that reach
  /// one) so the solution again equals a fresh computeLiveness(F). Falls
  /// back to compute() when no solution exists yet. No-op when clean.
  void refresh(const Function &F);

  bool valid() const { return Valid; }
  void invalidate() {
    Valid = false;
    DirtyList.clear();
  }

  bool isLiveIn(int Block, Reg R) const {
    return testBit(In.data() + size_t(Block) * W, R.Id);
  }
  bool isLiveOut(int Block, Reg R) const {
    return testBit(Out.data() + size_t(Block) * W, R.Id);
  }
  /// Raw live-out row of \p Block (W words); valid until the next refresh.
  const uint64_t *liveOutRow(int Block) const {
    return Out.data() + size_t(Block) * W;
  }
  const uint64_t *liveInRow(int Block) const {
    return In.data() + size_t(Block) * W;
  }
  size_t words() const { return W; }
  size_t numBlocks() const { return NumBlocks; }

  /// Monotonic per-block solution version: bumped whenever \p Block's
  /// In/Out rows may have changed (conservatively: whenever the block lands
  /// in a refresh's affected region). Consumers can cache the version to
  /// recognize blocks whose liveness provably did not move between solves.
  uint64_t rowVersion(int Block) const { return RowVersion[Block]; }

  /// Counters for the bench's cleanup instrumentation: how many full solves
  /// vs. incremental region updates this tracker ran, and how many block
  /// re-solutions the incremental updates visited in total.
  int FullComputes = 0;
  int IncrementalUpdates = 0;
  int BlocksResolved = 0;

private:
  static bool testBit(const uint64_t *Row, uint32_t I) {
    return (Row[I / 64] >> (I % 64)) & 1;
  }
  void rebuildGenKill(const Function &F, int Block);
  void solveRegion(const std::vector<int> &Blocks);

  bool Valid = false;
  size_t NumBlocks = 0;
  size_t W = 0; ///< words per row, fixed at compute().
  std::vector<uint64_t> Use, Def, In, Out; ///< NumBlocks x W each.

  // CFG in CSR form (static across the tracker's lifetime within a cleanup).
  std::vector<int> SuccStart, Succs, PredStart, Preds;

  std::vector<uint8_t> DirtyMark, InRegion;
  std::vector<uint64_t> RowVersion;
  std::vector<int> DirtyList, Region, Stack;
  std::vector<uint64_t> Scratch;
  std::vector<Reg> UsesScratch;
};

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_LIVENESS_H
