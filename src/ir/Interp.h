//===- ir/Interp.h - Functional IR interpreter ------------------*- C++ -*-===//
///
/// \file
/// A functional (untimed) executor for IR modules. It serves three roles:
///  - reference oracle: every optimization/scheduling configuration must
///    produce a program whose output checksum matches the interpreter's run
///    of the unoptimized module;
///  - profiler: block and edge execution counts guide trace selection
///    (section 4.2: "we first profiled the programs to determine basic block
///    execution frequencies");
///  - dynamic-instruction counter for sanity checks.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_INTERP_H
#define BALSCHED_IR_INTERP_H

#include "ir/IR.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace bsched {
namespace ir {

/// Result of one interpreter run.
struct InterpResult {
  bool Finished = false; ///< false = instruction budget exhausted.
  uint64_t DynInstrs = 0;
  uint64_t Checksum = 0; ///< FNV-1a over the output arrays' bytes.
  /// Executions per block.
  std::vector<uint64_t> BlockCounts;
  /// Edge counts per block: [0] = taken/jump target, [1] = fallthrough.
  std::vector<std::array<uint64_t, 2>> EdgeCounts;
};

/// Executes \p M from its entry block until Ret (or until \p MaxInstrs
/// instructions have run). The module must have been laid out. Predecodes
/// every instruction into a compact micro-op once, then runs the flat
/// micro-op stream — the IR's Instr is large (memory instructions carry a
/// symbolic address-term vector) and walking it per dynamic instruction
/// dominates profiling time.
InterpResult interpret(const Module &M, uint64_t MaxInstrs = 1000000000ull);

/// The original executor: walks the IR instruction-by-instruction through
/// executeInstr with no predecoding. Produces results identical to
/// interpret(); kept as the compile-throughput baseline and as a
/// differential-testing oracle for the predecoder.
InterpResult interpretByInstr(const Module &M,
                              uint64_t MaxInstrs = 1000000000ull);

/// Checks that \p R is a flow-conserving profile of \p F: every block's
/// incoming edge flow (plus \p EntryUnits injected at the entry block) equals
/// its BlockCounts entry, and every block with successors pushes exactly its
/// count back out over its edges (Ret blocks absorb their flow). Finished
/// interpreter profiles conserve with EntryUnits == 1; the static estimator
/// (trace/EstimateProfile) conserves with EntryUnits ==
/// trace::EstimateEntryCount. Returns "" when conserving, otherwise a
/// description of the first violation.
std::string checkProfileConservation(const Function &F, const InterpResult &R,
                                     uint64_t EntryUnits);

/// Architectural state (register file + memory image) shared by the
/// functional interpreter and the timing simulator.
class ExecState {
public:
  explicit ExecState(const Module &M);

  int64_t readInt(Reg R) const { return static_cast<int64_t>(Regs[R.Id]); }
  double readFp(Reg R) const;
  void writeInt(Reg R, int64_t V) { Regs[R.Id] = static_cast<uint64_t>(V); }
  void writeFp(Reg R, double V);

  /// Reads a 64-bit word; out-of-range addresses return deterministic
  /// garbage (non-faulting speculative-load semantics — see Interp.cpp).
  uint64_t loadWord(uint64_t Addr) const;
  /// Writes a 64-bit word; out-of-range stores are program bugs (asserts).
  void storeWord(uint64_t Addr, uint64_t V);

  /// Effective address of a memory instruction under the current registers.
  uint64_t effectiveAddress(const Instr &I) const {
    return static_cast<uint64_t>(readInt(I.Base) + I.Offset);
  }

  const std::vector<uint8_t> &memory() const { return Memory; }

  /// Raw state access for the predecoded execution loops: the register file
  /// and memory image are separate allocations, so hot loops may hold
  /// restrict-qualified pointers to both without reloading them across
  /// stores (the encapsulated accessors above defeat that analysis).
  uint64_t *regsData() { return Regs.data(); }
  uint8_t *memData() { return Memory.data(); }
  size_t memSize() const { return Memory.size(); }

  /// FNV-1a checksum over the module's output arrays.
  uint64_t outputChecksum(const Module &M) const;

private:
  std::vector<uint64_t> Regs;
  std::vector<uint8_t> Memory;
};

/// Architecturally executes one non-terminator instruction (terminators are
/// control decisions for the caller). Timing is the caller's concern.
void executeInstr(ExecState &S, const Instr &I);

//===----------------------------------------------------------------------===//
// Predecoded micro-ops
//===----------------------------------------------------------------------===//
//
// Instr is heavy — memory instructions carry a symbolic address-term vector,
// so walking Instr per dynamic instruction dominates any execution loop. The
// predecoder flattens each instruction once into a compact micro-op with the
// operand form resolved (reg-or-literal opcodes split into explicit register
// and immediate variants). Both the profiling interpreter (interpret) and the
// fast timing simulator (sim::SimImpl::Fast) run the micro-op stream;
// execMicro is the single shared executor, so the two can never diverge
// architecturally.

enum class MicroKind : uint8_t {
  LdI, FLdI, Mov, FMov, ItoF, FtoI,
  IAddR, IAddI, ISubR, ISubI, IMulR, IMulI,
  SllR, SllI, SrlR, SrlI, AndR, AndI, OrR, OrI, XorR, XorI,
  CmpEqR, CmpEqI, CmpLtR, CmpLtI, CmpLeR, CmpLeI,
  FAdd, FSub, FMul, FDiv, FCmpEq, FCmpLt, FCmpLe,
  CMov, FCMov, Load, FLoad, Store, FStore,
};

/// One predecoded non-terminator instruction. For memory kinds, B is the
/// address base register, Imm the byte offset, and A the stored value
/// register (stores only).
struct MicroOp {
  MicroKind K;
  Reg Dst, A, B;
  int64_t Imm; ///< ALU literal, memory offset, or FLdI bit pattern.
};

/// Predecodes one non-terminator instruction (asserts on terminators).
MicroOp decodeMicro(const Instr &I);

/// Executes one micro-op; behaviour is bit-identical to executeInstr on the
/// instruction it was decoded from. Inline so the callers' dispatch loops
/// keep it in their hot path.
inline void execMicro(ExecState &S, const MicroOp &O) {
  switch (O.K) {
  case MicroKind::LdI: S.writeInt(O.Dst, O.Imm); break;
  case MicroKind::FLdI: {
    double V;
    std::memcpy(&V, &O.Imm, sizeof(double));
    S.writeFp(O.Dst, V);
    break;
  }
  case MicroKind::Mov: S.writeInt(O.Dst, S.readInt(O.A)); break;
  case MicroKind::FMov: S.writeFp(O.Dst, S.readFp(O.A)); break;
  case MicroKind::ItoF:
    S.writeFp(O.Dst, static_cast<double>(S.readInt(O.A)));
    break;
  case MicroKind::FtoI:
    S.writeInt(O.Dst, static_cast<int64_t>(S.readFp(O.A)));
    break;
  case MicroKind::IAddR:
    S.writeInt(O.Dst, S.readInt(O.A) + S.readInt(O.B));
    break;
  case MicroKind::IAddI:
    S.writeInt(O.Dst, S.readInt(O.A) + O.Imm);
    break;
  case MicroKind::ISubR:
    S.writeInt(O.Dst, S.readInt(O.A) - S.readInt(O.B));
    break;
  case MicroKind::ISubI:
    S.writeInt(O.Dst, S.readInt(O.A) - O.Imm);
    break;
  case MicroKind::IMulR:
    S.writeInt(O.Dst, S.readInt(O.A) * S.readInt(O.B));
    break;
  case MicroKind::IMulI:
    S.writeInt(O.Dst, S.readInt(O.A) * O.Imm);
    break;
  case MicroKind::SllR:
    S.writeInt(O.Dst, S.readInt(O.A) << (S.readInt(O.B) & 63));
    break;
  case MicroKind::SllI:
    S.writeInt(O.Dst, S.readInt(O.A) << (O.Imm & 63));
    break;
  case MicroKind::SrlR:
    S.writeInt(O.Dst, static_cast<int64_t>(
                          static_cast<uint64_t>(S.readInt(O.A)) >>
                          (S.readInt(O.B) & 63)));
    break;
  case MicroKind::SrlI:
    S.writeInt(O.Dst, static_cast<int64_t>(
                          static_cast<uint64_t>(S.readInt(O.A)) >>
                          (O.Imm & 63)));
    break;
  case MicroKind::AndR:
    S.writeInt(O.Dst, S.readInt(O.A) & S.readInt(O.B));
    break;
  case MicroKind::AndI:
    S.writeInt(O.Dst, S.readInt(O.A) & O.Imm);
    break;
  case MicroKind::OrR:
    S.writeInt(O.Dst, S.readInt(O.A) | S.readInt(O.B));
    break;
  case MicroKind::OrI:
    S.writeInt(O.Dst, S.readInt(O.A) | O.Imm);
    break;
  case MicroKind::XorR:
    S.writeInt(O.Dst, S.readInt(O.A) ^ S.readInt(O.B));
    break;
  case MicroKind::XorI:
    S.writeInt(O.Dst, S.readInt(O.A) ^ O.Imm);
    break;
  case MicroKind::CmpEqR:
    S.writeInt(O.Dst, S.readInt(O.A) == S.readInt(O.B) ? 1 : 0);
    break;
  case MicroKind::CmpEqI:
    S.writeInt(O.Dst, S.readInt(O.A) == O.Imm ? 1 : 0);
    break;
  case MicroKind::CmpLtR:
    S.writeInt(O.Dst, S.readInt(O.A) < S.readInt(O.B) ? 1 : 0);
    break;
  case MicroKind::CmpLtI:
    S.writeInt(O.Dst, S.readInt(O.A) < O.Imm ? 1 : 0);
    break;
  case MicroKind::CmpLeR:
    S.writeInt(O.Dst, S.readInt(O.A) <= S.readInt(O.B) ? 1 : 0);
    break;
  case MicroKind::CmpLeI:
    S.writeInt(O.Dst, S.readInt(O.A) <= O.Imm ? 1 : 0);
    break;
  case MicroKind::FAdd:
    S.writeFp(O.Dst, S.readFp(O.A) + S.readFp(O.B));
    break;
  case MicroKind::FSub:
    S.writeFp(O.Dst, S.readFp(O.A) - S.readFp(O.B));
    break;
  case MicroKind::FMul:
    S.writeFp(O.Dst, S.readFp(O.A) * S.readFp(O.B));
    break;
  case MicroKind::FDiv:
    S.writeFp(O.Dst, S.readFp(O.A) / S.readFp(O.B));
    break;
  case MicroKind::FCmpEq:
    S.writeInt(O.Dst, S.readFp(O.A) == S.readFp(O.B) ? 1 : 0);
    break;
  case MicroKind::FCmpLt:
    S.writeInt(O.Dst, S.readFp(O.A) < S.readFp(O.B) ? 1 : 0);
    break;
  case MicroKind::FCmpLe:
    S.writeInt(O.Dst, S.readFp(O.A) <= S.readFp(O.B) ? 1 : 0);
    break;
  case MicroKind::CMov:
    if (S.readInt(O.A) != 0)
      S.writeInt(O.Dst, S.readInt(O.B));
    break;
  case MicroKind::FCMov:
    if (S.readInt(O.A) != 0)
      S.writeFp(O.Dst, S.readFp(O.B));
    break;
  case MicroKind::Load:
    S.writeInt(O.Dst, static_cast<int64_t>(S.loadWord(
                          static_cast<uint64_t>(S.readInt(O.B) + O.Imm))));
    break;
  case MicroKind::FLoad: {
    uint64_t Bits =
        S.loadWord(static_cast<uint64_t>(S.readInt(O.B) + O.Imm));
    double V;
    std::memcpy(&V, &Bits, 8);
    S.writeFp(O.Dst, V);
    break;
  }
  case MicroKind::Store:
    S.storeWord(static_cast<uint64_t>(S.readInt(O.B) + O.Imm),
                static_cast<uint64_t>(S.readInt(O.A)));
    break;
  case MicroKind::FStore: {
    double V = S.readFp(O.A);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    S.storeWord(static_cast<uint64_t>(S.readInt(O.B) + O.Imm), Bits);
    break;
  }
  }
}

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_INTERP_H
