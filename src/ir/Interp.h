//===- ir/Interp.h - Functional IR interpreter ------------------*- C++ -*-===//
///
/// \file
/// A functional (untimed) executor for IR modules. It serves three roles:
///  - reference oracle: every optimization/scheduling configuration must
///    produce a program whose output checksum matches the interpreter's run
///    of the unoptimized module;
///  - profiler: block and edge execution counts guide trace selection
///    (section 4.2: "we first profiled the programs to determine basic block
///    execution frequencies");
///  - dynamic-instruction counter for sanity checks.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_IR_INTERP_H
#define BALSCHED_IR_INTERP_H

#include "ir/IR.h"

#include <array>
#include <cstdint>
#include <vector>

namespace bsched {
namespace ir {

/// Result of one interpreter run.
struct InterpResult {
  bool Finished = false; ///< false = instruction budget exhausted.
  uint64_t DynInstrs = 0;
  uint64_t Checksum = 0; ///< FNV-1a over the output arrays' bytes.
  /// Executions per block.
  std::vector<uint64_t> BlockCounts;
  /// Edge counts per block: [0] = taken/jump target, [1] = fallthrough.
  std::vector<std::array<uint64_t, 2>> EdgeCounts;
};

/// Executes \p M from its entry block until Ret (or until \p MaxInstrs
/// instructions have run). The module must have been laid out. Predecodes
/// every instruction into a compact micro-op once, then runs the flat
/// micro-op stream — the IR's Instr is large (memory instructions carry a
/// symbolic address-term vector) and walking it per dynamic instruction
/// dominates profiling time.
InterpResult interpret(const Module &M, uint64_t MaxInstrs = 1000000000ull);

/// The original executor: walks the IR instruction-by-instruction through
/// executeInstr with no predecoding. Produces results identical to
/// interpret(); kept as the compile-throughput baseline and as a
/// differential-testing oracle for the predecoder.
InterpResult interpretByInstr(const Module &M,
                              uint64_t MaxInstrs = 1000000000ull);

/// Architectural state (register file + memory image) shared by the
/// functional interpreter and the timing simulator.
class ExecState {
public:
  explicit ExecState(const Module &M);

  int64_t readInt(Reg R) const { return static_cast<int64_t>(Regs[R.Id]); }
  double readFp(Reg R) const;
  void writeInt(Reg R, int64_t V) { Regs[R.Id] = static_cast<uint64_t>(V); }
  void writeFp(Reg R, double V);

  /// Reads a 64-bit word; out-of-range addresses return deterministic
  /// garbage (non-faulting speculative-load semantics — see Interp.cpp).
  uint64_t loadWord(uint64_t Addr) const;
  /// Writes a 64-bit word; out-of-range stores are program bugs (asserts).
  void storeWord(uint64_t Addr, uint64_t V);

  /// Effective address of a memory instruction under the current registers.
  uint64_t effectiveAddress(const Instr &I) const {
    return static_cast<uint64_t>(readInt(I.Base) + I.Offset);
  }

  const std::vector<uint8_t> &memory() const { return Memory; }

  /// FNV-1a checksum over the module's output arrays.
  uint64_t outputChecksum(const Module &M) const;

private:
  std::vector<uint64_t> Regs;
  std::vector<uint8_t> Memory;
};

/// Architecturally executes one non-terminator instruction (terminators are
/// control decisions for the caller). Timing is the caller's concern.
void executeInstr(ExecState &S, const Instr &I);

} // namespace ir
} // namespace bsched

#endif // BALSCHED_IR_INTERP_H
