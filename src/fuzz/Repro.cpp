//===- fuzz/Repro.cpp - Reduced-failure repro files -------------------------===//

#include "fuzz/Repro.h"

#include <cstdlib>
#include <sstream>

using namespace bsched;
using namespace bsched::fuzz;
using namespace bsched::driver;

namespace {

const char *schedulerName(sched::SchedulerKind K) {
  switch (K) {
  case sched::SchedulerKind::Traditional: return "traditional";
  case sched::SchedulerKind::Balanced: return "balanced";
  case sched::SchedulerKind::Hybrid: return "hybrid";
  }
  return "?";
}

bool parseScheduler(const std::string &V, sched::SchedulerKind &Out) {
  if (V == "traditional")
    Out = sched::SchedulerKind::Traditional;
  else if (V == "balanced")
    Out = sched::SchedulerKind::Balanced;
  else if (V == "hybrid")
    Out = sched::SchedulerKind::Hybrid;
  else
    return false;
  return true;
}

} // namespace

std::string fuzz::writeRepro(const Repro &R) {
  const CompileOptions D; // defaults: only deviations are written
  const CompileOptions &O = R.Options;
  std::ostringstream S;
  S << "# bsched-fuzz repro\n";
  if (!R.Kind.empty())
    S << "kind: " << R.Kind << "\n";
  if (!R.Detail.empty()) {
    // Keep the detail single-line; newlines would break the line format.
    std::string Flat = R.Detail;
    for (char &C : Flat)
      if (C == '\n')
        C = ' ';
    S << "detail: " << Flat << "\n";
  }
  if (!R.MachineTag.empty())
    S << "machine: " << R.MachineTag << "\n";

  auto OptInt = [&S](const char *Key, long long V, long long Default) {
    if (V != Default)
      S << "option " << Key << " " << V << "\n";
  };
  if (O.Scheduler != D.Scheduler)
    S << "option scheduler " << schedulerName(O.Scheduler) << "\n";
  OptInt("unroll", O.UnrollFactor, D.UnrollFactor);
  OptInt("trace", O.TraceScheduling, D.TraceScheduling);
  OptInt("estprofile", O.UseEstimatedProfile, D.UseEstimatedProfile);
  OptInt("locality", O.LocalityAnalysis, D.LocalityAnalysis);
  OptInt("cleanup", O.CleanupIR, D.CleanupIR);
  OptInt("verify", O.VerifyPasses, D.VerifyPasses);
  OptInt("strengthred", O.Lower.StrengthReduction,
         D.Lower.StrengthReduction);
  OptInt("ifconv", O.Lower.IfConversion, D.Lower.IfConversion);
  OptInt("allocatable", O.RegAlloc.AllocatablePerClass,
         D.RegAlloc.AllocatablePerClass);
  OptInt("balancefixed", O.Balance.BalanceFixedOps,
         D.Balance.BalanceFixedOps);
  OptInt("respecthits", O.Balance.RespectHitAnnotations,
         D.Balance.RespectHitAnnotations);
  OptInt("pressure", O.Balance.PressureThreshold,
         D.Balance.PressureThreshold);
  OptInt("hybridcost", O.Balance.HybridLoadCost, D.Balance.HybridLoadCost);
  if (O.Balance.WeightCap != D.Balance.WeightCap)
    S << "option weightcap " << O.Balance.WeightCap << "\n";
  if (O.Balance.Impl != D.Balance.Impl)
    S << "option impl "
      << (O.Balance.Impl == sched::SchedImpl::Reference ? "reference"
                                                        : "exact")
      << "\n";
  S << "---\n";
  S << R.Source;
  if (!R.Source.empty() && R.Source.back() != '\n')
    S << "\n";
  return S.str();
}

bool fuzz::parseRepro(const std::string &Text, Repro &Out, std::string &Err) {
  Out = Repro{};
  std::istringstream In(Text);
  std::string Line;
  bool SawSeparator = false;
  int LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line == "---") {
      SawSeparator = true;
      break;
    }
    if (Line.empty() || Line[0] == '#')
      continue;
    auto StartsWith = [&Line](const char *Prefix) {
      return Line.rfind(Prefix, 0) == 0;
    };
    if (StartsWith("kind: ")) {
      Out.Kind = Line.substr(6);
      continue;
    }
    if (StartsWith("detail: ")) {
      Out.Detail = Line.substr(8);
      continue;
    }
    if (StartsWith("machine: ")) {
      Out.MachineTag = Line.substr(9);
      continue;
    }
    if (StartsWith("option ")) {
      std::istringstream L(Line.substr(7));
      std::string Key, Value;
      if (!(L >> Key >> Value)) {
        Err = "line " + std::to_string(LineNo) + ": malformed option";
        return false;
      }
      CompileOptions &O = Out.Options;
      if (Key == "scheduler") {
        if (!parseScheduler(Value, O.Scheduler)) {
          Err = "line " + std::to_string(LineNo) + ": unknown scheduler '" +
                Value + "'";
          return false;
        }
        continue;
      }
      if (Key == "weightcap") {
        O.Balance.WeightCap = std::strtod(Value.c_str(), nullptr);
        continue;
      }
      if (Key == "impl") {
        if (Value == "fast")
          O.Balance.Impl = sched::SchedImpl::Fast;
        else if (Value == "reference")
          O.Balance.Impl = sched::SchedImpl::Reference;
        else if (Value == "exact")
          O.Balance.Impl = sched::SchedImpl::Exact;
        else {
          Err = "line " + std::to_string(LineNo) + ": unknown impl '" +
                Value + "'";
          return false;
        }
        continue;
      }
      long long V = std::strtoll(Value.c_str(), nullptr, 10);
      if (Key == "unroll")
        O.UnrollFactor = static_cast<int>(V);
      else if (Key == "trace")
        O.TraceScheduling = V != 0;
      else if (Key == "estprofile")
        O.UseEstimatedProfile = V != 0;
      else if (Key == "locality")
        O.LocalityAnalysis = V != 0;
      else if (Key == "cleanup")
        O.CleanupIR = V != 0;
      else if (Key == "verify")
        O.VerifyPasses = V != 0;
      else if (Key == "strengthred")
        O.Lower.StrengthReduction = V != 0;
      else if (Key == "ifconv")
        O.Lower.IfConversion = V != 0;
      else if (Key == "allocatable")
        O.RegAlloc.AllocatablePerClass = static_cast<unsigned>(V);
      else if (Key == "balancefixed")
        O.Balance.BalanceFixedOps = V != 0;
      else if (Key == "respecthits")
        O.Balance.RespectHitAnnotations = V != 0;
      else if (Key == "pressure")
        O.Balance.PressureThreshold = static_cast<unsigned>(V);
      else if (Key == "hybridcost")
        O.Balance.HybridLoadCost = static_cast<int>(V);
      else {
        Err = "line " + std::to_string(LineNo) + ": unknown option '" + Key +
              "'";
        return false;
      }
      continue;
    }
    Err = "line " + std::to_string(LineNo) + ": unrecognized line: " + Line;
    return false;
  }
  if (!SawSeparator) {
    Err = "missing '---' source separator";
    return false;
  }
  std::string Source;
  while (std::getline(In, Line)) {
    Source += Line;
    Source += '\n';
  }
  if (Source.empty()) {
    Err = "empty source section";
    return false;
  }
  Out.Source = std::move(Source);
  return true;
}
