//===- fuzz/Configs.h - Canonical differential-testing configs --*- C++ -*-===//
///
/// \file
/// The one shared list of compiler configurations and machine models that
/// differential testing sweeps. Historically three tests carried hand-copied
/// variants of these lists (fuzz_test, sim_equivalence_test, golden_sim_test);
/// they now all include tests/TestConfigs.h, which forwards here, and the
/// coverage-guided fuzzer (fuzz::runFuzzer / bsched-fuzz) consumes the same
/// list — so a config added here is exercised by the fixed-seed sweeps, the
/// twin-equivalence tests and the fuzzer alike.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_CONFIGS_H
#define BALSCHED_FUZZ_CONFIGS_H

#include "driver/Compiler.h"
#include "sim/Machine.h"

#include <vector>

namespace bsched {
namespace fuzz {

/// The compiler configurations that exercise distinct code paths: both
/// scheduler kinds plain/unrolled/traced, the estimated-profile and hybrid
/// paths, lowering options off, and three register-pressure regimes through
/// near-minimal register files. Every entry keeps VerifyPasses on.
std::vector<driver::CompileOptions> differentialCompileConfigs();

/// A named machine model for simulator differential testing.
struct MachinePoint {
  const char *Tag;
  sim::MachineConfig Config;
};

/// The paper's 21164 (all defaults).
sim::MachineConfig machine21164();
/// The 1993 stochastic simple model at \p HitRate.
sim::MachineConfig simpleModelMachine(double HitRate);
/// Back-end only: no instruction-fetch modeling.
sim::MachineConfig perfectFrontEndMachine();
/// In-order superscalar of width \p W, optionally with a perfect front end.
sim::MachineConfig widthMachine(unsigned W, bool Pfe = false);
/// Near-minimal resources: 2-entry TLBs, 2 MSHRs, a 1-entry write buffer,
/// tiny caches and predictor. Every stall path fires constantly, MSHR and
/// write-buffer pressure is permanent, and the TLB MRU path thrashes.
sim::MachineConfig starvedMachine();
/// Non-power-of-two geometry everywhere: set counts of 150/100/1875, a
/// 1000-byte page. Exercises the division/modulo fallbacks of the fast
/// cache/TLB models (the shift/mask paths cannot engage).
sim::MachineConfig oddGeometryMachine();

/// Machine models the fuzzer and FuzzSim-style differential tests run both
/// simulator cores under: the full 21164, the simple model, and the starved
/// machine (constant stall pressure).
std::vector<MachinePoint> differentialMachinePoints();

/// Machine models whose statistics golden_sim_test pins per workload.
std::vector<MachinePoint> goldenMachinePoints();

/// Looks up a machine point by tag across the points above (plus "oddgeom",
/// "pfe", "w2", "w4"); returns the 21164 when \p Tag is empty or unknown.
sim::MachineConfig machineByTag(const std::string &Tag);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_CONFIGS_H
