//===- fuzz/Mutate.h - Structured AST mutator -------------------*- C++ -*-===//
///
/// \file
/// Structured mutation over lang::Program ASTs, layered on the generator:
/// where lang::generateProgram samples whole programs, the mutator makes one
/// local, validity-preserving edit — statement insertion/deletion/swaps,
/// affine-subscript perturbation, loop-bound and conditional rewrites, and
/// array-geometry changes — so the coverage-guided fuzzer can walk outward
/// from corpus entries instead of resampling from scratch.
///
/// Every mutation is validated before it is accepted: the mutant must pass
/// lang::checkProgram (which also re-inserts implicit conversions), survive a
/// print -> parse round trip, and evaluate cleanly under the AST oracle
/// within a statement budget (which rejects out-of-bounds subscripts and
/// runaway loops). Invalid candidates are rolled back and another mutation
/// kind is tried, so mutateProgram either returns a valid mutant or leaves
/// the input untouched.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_MUTATE_H
#define BALSCHED_FUZZ_MUTATE_H

#include "lang/AST.h"
#include "support/RNG.h"

#include <cstdint>
#include <optional>

namespace bsched {
namespace fuzz {

enum class MutationKind : uint8_t {
  InsertAssign,     ///< new scalar/array store built from in-scope names.
  InsertLoop,       ///< new small counted loop around a fresh assignment.
  DeleteStmt,       ///< remove one statement.
  SwapStmts,        ///< swap two adjacent statements in a block.
  PerturbSubscript, ///< rewrite one array-subscript dimension.
  RewriteLoopBounds,///< change a literal trip count or the step.
  RewriteCond,      ///< flip/negate a conditional or swap its branches.
  ResizeArray,      ///< grow or shrink one array dimension.
  ToggleLayout,     ///< flip row-major/column-major on one array.
  ToggleOutput,     ///< flip checksum participation of a non-primary array.
};
constexpr int NumMutationKinds = 10;

const char *mutationKindName(MutationKind K);

struct MutateOptions {
  /// Candidate mutations tried before giving up on this step.
  int Attempts = 24;
  /// AST-eval statement budget a mutant must finish within.
  uint64_t EvalBudget = 2000000;
  /// Reject mutants whose statement count (estimateCost proxy) exceeds this.
  int MaxCost = 4096;
  /// Upper bound for any array dimension after a resize.
  int64_t MaxDim = 256;
};

/// Per-kind accept/reject bookkeeping (diagnostics for the fuzzer log).
struct MutationCounts {
  uint64_t Applied[NumMutationKinds] = {};
  uint64_t Rejected = 0;
};

/// Applies one valid mutation to \p P in place, drawing randomness from
/// \p Rng. Returns the mutation kind applied, or std::nullopt if no valid
/// mutant was found within Opts.Attempts (P is then unchanged).
std::optional<MutationKind> mutateProgram(lang::Program &P, RNG &Rng,
                                          const MutateOptions &Opts = {},
                                          MutationCounts *Counts = nullptr);

/// The validity gate mutateProgram enforces; exposed so tests and the
/// reducer can apply the same contract. Returns an empty string when \p P
/// checks, reparses and evaluates in bounds, otherwise the first diagnostic.
std::string validateProgram(const lang::Program &P, uint64_t EvalBudget);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_MUTATE_H
