//===- fuzz/Fuzzer.h - Coverage-guided differential fuzzing loop -*- C++ -*-===//
///
/// \file
/// The fuzzing campaign driver behind the bsched-fuzz CLI: a corpus of
/// kernel-language programs evolves under the structured mutator, guided by
/// the behavioural CoverageMap, with every candidate judged by the
/// differential oracle and every failure shrunk by the reducer into a
/// repro file.
///
/// The loop is organized in rounds so that multi-threaded runs stay
/// deterministic: each round schedules a fixed batch of jobs whose RNG
/// streams depend only on (campaign seed, job index), runs them on a
/// support/ThreadPool, and merges results in job order at the round
/// barrier. Corpus content after round K is therefore identical for any
/// --threads value; a wall-clock budget only decides *how many* rounds run.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_FUZZER_H
#define BALSCHED_FUZZ_FUZZER_H

#include "fuzz/Mutate.h"
#include "fuzz/Oracle.h"
#include "fuzz/Repro.h"
#include "lang/Generate.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bsched {
namespace fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Threads = 1;
  /// Wall-clock budget in seconds, checked at round boundaries; 0 = run
  /// exactly Rounds rounds.
  double Seconds = 10.0;
  /// Explicit round count (fully deterministic campaigns); 0 = time-driven.
  int Rounds = 0;
  /// Mutated candidates per round (one oracle sweep each).
  int JobsPerRound = 24;
  /// Generator-seeded programs the corpus starts from.
  int InitialSeeds = 16;
  /// Corpus-size cap; growth stops once reached (coverage still counts).
  size_t MaxCorpus = 512;
  /// Probability a job starts from a fresh generated program instead of
  /// mutating a corpus parent.
  double FreshProgramChance = 0.1;
  /// Mutations applied per job: 1 + uniform[0, MutationsPerJob).
  int MutationsPerJob = 3;
  /// Directory reduced repro files are written to ("" = don't write).
  std::string CorpusDir;
  /// Shrink failures with the reducer before reporting them.
  bool ReduceFailures = true;
  /// Per-round progress lines on the log stream.
  bool Verbose = true;

  OracleOptions Oracle;
  MutateOptions Mutate;
  lang::GenerateOptions Generate;
};

struct FailureRecord {
  Failure Fail;
  std::string OriginalSource; ///< program that first hit the failure.
  Repro Reduced;              ///< reduced program + stripped options.
  std::string FilePath;       ///< repro file written, if CorpusDir set.
};

struct FuzzReport {
  uint64_t Iterations = 0; ///< oracle sweeps (initial seeds + mutants).
  int RoundsRun = 0;
  size_t CorpusSize = 0;
  size_t CoverageBits = 0;
  MutationCounts Mutations;
  std::vector<FailureRecord> Failures;

  bool clean() const { return Failures.empty(); }
};

/// Runs a fuzzing campaign. Progress and failure reports go to \p Log when
/// non-null (the CLI passes stdout; tests pass nullptr).
FuzzReport runFuzzer(const FuzzOptions &Opts, std::ostream *Log = nullptr);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_FUZZER_H
