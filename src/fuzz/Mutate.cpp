//===- fuzz/Mutate.cpp - Structured AST mutator -----------------------------===//

#include "fuzz/Mutate.h"

#include "lang/Eval.h"
#include "lang/Parser.h"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::fuzz;
using namespace bsched::lang;

const char *fuzz::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::InsertAssign: return "insert-assign";
  case MutationKind::InsertLoop: return "insert-loop";
  case MutationKind::DeleteStmt: return "delete-stmt";
  case MutationKind::SwapStmts: return "swap-stmts";
  case MutationKind::PerturbSubscript: return "perturb-subscript";
  case MutationKind::RewriteLoopBounds: return "rewrite-loop-bounds";
  case MutationKind::RewriteCond: return "rewrite-cond";
  case MutationKind::ResizeArray: return "resize-array";
  case MutationKind::ToggleLayout: return "toggle-layout";
  case MutationKind::ToggleOutput: return "toggle-output";
  }
  return "?";
}

namespace {

/// A loop variable in scope at some program point, with the largest value it
/// can take when that is provable from literal bounds.
struct LoopVarInfo {
  std::string Name;
  int64_t MaxVal = 0;
  bool Known = false;
};
using Env = std::vector<LoopVarInfo>;

/// Addressable mutation points, collected in one walk so each mutation kind
/// can sample uniformly from the sites it applies to.
struct Sites {
  struct Block { StmtList *List; Env E; int Depth; };
  struct StmtAt { StmtList *List; size_t Index; Env E; };
  struct Ref { Expr *E; Env Scope; };   ///< an ArrayRef expression.
  struct Loop { Stmt *S; };
  struct Cond { Stmt *S; };

  std::vector<Block> Blocks;
  std::vector<StmtAt> Stmts;
  std::vector<Ref> Refs;
  std::vector<Loop> Loops;
  std::vector<Cond> Conds;
};

void collectExpr(Expr &E, const Env &Scope, Sites &Out) {
  if (E.Kind == ExprKind::ArrayRef)
    Out.Refs.push_back({&E, Scope});
  for (ExprPtr &A : E.Args)
    collectExpr(*A, Scope, Out);
}

void collectList(StmtList &L, Env &E, int Depth, Sites &Out) {
  Out.Blocks.push_back({&L, E, Depth});
  for (size_t I = 0; I != L.size(); ++I) {
    Stmt &S = *L[I];
    Out.Stmts.push_back({&L, I, E});
    switch (S.Kind) {
    case StmtKind::Assign:
      collectExpr(*S.Lhs, E, Out);
      collectExpr(*S.Rhs, E, Out);
      break;
    case StmtKind::For: {
      Out.Loops.push_back({&S});
      collectExpr(*S.Lo, E, Out);
      collectExpr(*S.Hi, E, Out);
      LoopVarInfo V;
      V.Name = S.LoopVar;
      if (S.Lo->Kind == ExprKind::IntLit && S.Hi->Kind == ExprKind::IntLit &&
          S.Lo->IntVal >= 0 && S.Hi->IntVal > S.Lo->IntVal && S.Step > 0) {
        V.Known = true;
        V.MaxVal = S.Lo->IntVal +
                   (S.Hi->IntVal - 1 - S.Lo->IntVal) / S.Step * S.Step;
      }
      E.push_back(V);
      collectList(S.Body, E, Depth + 1, Out);
      E.pop_back();
      break;
    }
    case StmtKind::If:
      Out.Conds.push_back({&S});
      collectExpr(*S.Cond, E, Out);
      collectList(S.Then, E, Depth + 1, Out);
      collectList(S.Else, E, Depth + 1, Out);
      break;
    }
  }
}

Sites collectSites(Program &P) {
  Sites Out;
  Env E;
  collectList(P.Body, E, 0, Out);
  return Out;
}

/// Builds an int expression provably in [0, Dim) from the loop variables in
/// scope, falling back to a literal.
ExprPtr inBoundsSubscript(RNG &Rng, const Env &Scope, int64_t Dim) {
  if (!Scope.empty() && Rng.nextBool(0.7)) {
    for (int Attempt = 0; Attempt != 3; ++Attempt) {
      const LoopVarInfo &V = Scope[Rng.nextBelow(Scope.size())];
      if (!V.Known || V.MaxVal >= Dim)
        continue;
      int64_t MaxOff = Dim - 1 - V.MaxVal;
      int64_t Off =
          MaxOff > 0
              ? static_cast<int64_t>(Rng.nextBelow(static_cast<uint64_t>(
                    std::min<int64_t>(MaxOff, 3) + 1)))
              : 0;
      if (Off == 0)
        return varRef(V.Name);
      return binary(BinOp::Add, varRef(V.Name), intLit(Off));
    }
  }
  return intLit(static_cast<int64_t>(
      Rng.nextBelow(static_cast<uint64_t>(std::max<int64_t>(Dim, 1)))));
}

/// Index of a random fp array of \p P, or npos if none exist.
size_t pickFpArray(RNG &Rng, const Program &P) {
  std::vector<size_t> Fp;
  for (size_t K = 0; K != P.Arrays.size(); ++K)
    if (P.Arrays[K].ElemTy == Type::Fp)
      Fp.push_back(K);
  if (Fp.empty())
    return static_cast<size_t>(-1);
  return Fp[Rng.nextBelow(Fp.size())];
}

ExprPtr fpRef(RNG &Rng, const Program &P, const Env &Scope) {
  switch (Rng.nextBelow(3)) {
  case 0:
    return fpLit(static_cast<double>(Rng.nextBelow(64)) * 0.25 - 8.0);
  case 1:
    if (!P.Vars.empty())
      return varRef(P.Vars[Rng.nextBelow(P.Vars.size())].Name);
    [[fallthrough]];
  default: {
    size_t K = pickFpArray(Rng, P);
    if (K == static_cast<size_t>(-1))
      return fpLit(1.5);
    std::vector<ExprPtr> Subs;
    for (int64_t D : P.Arrays[K].Dims)
      Subs.push_back(inBoundsSubscript(Rng, Scope, D));
    return arrayRef(P.Arrays[K].Name, std::move(Subs));
  }
  }
}

/// A small fp expression over in-scope names (depth at most 2).
ExprPtr smallFpExpr(RNG &Rng, const Program &P, const Env &Scope) {
  if (Rng.nextBool(0.4))
    return fpRef(Rng, P, Scope);
  BinOp Op;
  switch (Rng.nextBelow(6)) {
  case 0: Op = BinOp::Sub; break;
  case 1: Op = BinOp::Mul; break;
  case 2: Op = BinOp::Div; break;
  default: Op = BinOp::Add; break;
  }
  ExprPtr L = fpRef(Rng, P, Scope);
  ExprPtr R = fpRef(Rng, P, Scope);
  if (Op == BinOp::Div) // keep denominators away from zero
    R = binary(BinOp::Add, binary(BinOp::Mul, std::move(R), fpLit(0.25)),
               fpLit(1.0));
  return binary(Op, std::move(L), std::move(R));
}

StmtPtr newAssign(RNG &Rng, const Program &P, const Env &Scope) {
  size_t K = pickFpArray(Rng, P);
  if (K != static_cast<size_t>(-1) && Rng.nextBool(0.6)) {
    std::vector<ExprPtr> Subs;
    for (int64_t D : P.Arrays[K].Dims)
      Subs.push_back(inBoundsSubscript(Rng, Scope, D));
    return assign(arrayRef(P.Arrays[K].Name, std::move(Subs)),
                  smallFpExpr(Rng, P, Scope));
  }
  if (P.Vars.empty())
    return nullptr;
  return assign(varRef(P.Vars[Rng.nextBelow(P.Vars.size())].Name),
                smallFpExpr(Rng, P, Scope));
}

/// A loop-variable name not used by any loop in \p P.
std::string freshLoopVar(const Program &P) {
  std::vector<std::string> Used;
  std::function<void(const StmtList &)> Walk = [&](const StmtList &L) {
    for (const StmtPtr &S : L) {
      if (S->Kind == StmtKind::For) {
        Used.push_back(S->LoopVar);
        Walk(S->Body);
      } else if (S->Kind == StmtKind::If) {
        Walk(S->Then);
        Walk(S->Else);
      }
    }
  };
  Walk(P.Body);
  for (int K = 0;; ++K) {
    std::string Name = "m" + std::to_string(K);
    if (std::find(Used.begin(), Used.end(), Name) == Used.end())
      return Name;
  }
}

/// One comparator other than \p Op, uniformly.
BinOp otherComparator(RNG &Rng, BinOp Op) {
  const BinOp Cmp[] = {BinOp::Lt, BinOp::Le, BinOp::Gt,
                       BinOp::Ge, BinOp::Eq, BinOp::Ne};
  for (;;) {
    BinOp C = Cmp[Rng.nextBelow(6)];
    if (C != Op)
      return C;
  }
}

/// Applies one candidate mutation of kind \p K to \p P. Returns false when
/// the kind has no applicable site; the result is validated by the caller.
bool applyMutation(MutationKind K, Program &P, RNG &Rng,
                   const MutateOptions &Opts) {
  Sites S = collectSites(P);
  switch (K) {
  case MutationKind::InsertAssign: {
    Sites::Block &B = S.Blocks[Rng.nextBelow(S.Blocks.size())];
    StmtPtr A = newAssign(Rng, P, B.E);
    if (!A)
      return false;
    size_t At = Rng.nextBelow(B.List->size() + 1);
    B.List->insert(B.List->begin() + static_cast<ptrdiff_t>(At),
                   std::move(A));
    return true;
  }
  case MutationKind::InsertLoop: {
    Sites::Block &B = S.Blocks[Rng.nextBelow(S.Blocks.size())];
    if (B.Depth >= 3)
      return false;
    int64_t Trip = 2 + static_cast<int64_t>(Rng.nextBelow(7));
    std::string Var = freshLoopVar(P);
    Env Inner = B.E;
    Inner.push_back({Var, Trip - 1, true});
    StmtPtr A = newAssign(Rng, P, Inner);
    if (!A)
      return false;
    StmtList Body;
    Body.push_back(std::move(A));
    size_t At = Rng.nextBelow(B.List->size() + 1);
    B.List->insert(B.List->begin() + static_cast<ptrdiff_t>(At),
                   forLoop(Var, intLit(0), intLit(Trip),
                           Rng.nextBool(0.8) ? 1 : 2, std::move(Body)));
    return true;
  }
  case MutationKind::DeleteStmt: {
    if (S.Stmts.empty())
      return false;
    Sites::StmtAt &T = S.Stmts[Rng.nextBelow(S.Stmts.size())];
    // Keep the program non-empty and never empty a structured body: the
    // printer/parser round trip wants every block to hold a statement.
    if (T.List->size() <= 1)
      return false;
    T.List->erase(T.List->begin() + static_cast<ptrdiff_t>(T.Index));
    return true;
  }
  case MutationKind::SwapStmts: {
    std::vector<Sites::Block *> Candidates;
    for (Sites::Block &B : S.Blocks)
      if (B.List->size() >= 2)
        Candidates.push_back(&B);
    if (Candidates.empty())
      return false;
    Sites::Block *B = Candidates[Rng.nextBelow(Candidates.size())];
    size_t I = Rng.nextBelow(B->List->size() - 1);
    std::swap((*B->List)[I], (*B->List)[I + 1]);
    return true;
  }
  case MutationKind::PerturbSubscript: {
    std::vector<size_t> WithSubs;
    for (size_t I = 0; I != S.Refs.size(); ++I)
      if (!S.Refs[I].E->Args.empty())
        WithSubs.push_back(I);
    if (WithSubs.empty())
      return false;
    Sites::Ref &R = S.Refs[WithSubs[Rng.nextBelow(WithSubs.size())]];
    const ArrayDecl *A = P.findArray(R.E->Name);
    if (!A || A->Dims.size() != R.E->Args.size())
      return false;
    size_t Dim = Rng.nextBelow(A->Dims.size());
    R.E->Args[Dim] = inBoundsSubscript(Rng, R.Scope, A->Dims[Dim]);
    return true;
  }
  case MutationKind::RewriteLoopBounds: {
    if (S.Loops.empty())
      return false;
    Stmt *L = S.Loops[Rng.nextBelow(S.Loops.size())].S;
    if (Rng.nextBool(0.3)) {
      L->Step = L->Step == 1 ? 2 : 1;
      return true;
    }
    if (L->Hi->Kind != ExprKind::IntLit)
      return false;
    int64_t Cap = std::min<int64_t>(2 * L->Hi->IntVal + 2, Opts.MaxDim);
    L->Hi = intLit(1 + static_cast<int64_t>(
                           Rng.nextBelow(static_cast<uint64_t>(Cap))));
    return true;
  }
  case MutationKind::RewriteCond: {
    if (S.Conds.empty())
      return false;
    Stmt *C = S.Conds[Rng.nextBelow(S.Conds.size())].S;
    double Roll = Rng.nextDouble();
    if (Roll < 0.4 && C->Cond->Kind == ExprKind::Binary) {
      C->Cond->BOp = otherComparator(Rng, C->Cond->BOp);
      return true;
    }
    if (Roll < 0.7 && !C->Then.empty() && !C->Else.empty()) {
      std::swap(C->Then, C->Else);
      return true;
    }
    C->Cond = unary(UnOp::Not, std::move(C->Cond));
    return true;
  }
  case MutationKind::ResizeArray: {
    if (P.Arrays.empty())
      return false;
    ArrayDecl &A = P.Arrays[Rng.nextBelow(P.Arrays.size())];
    size_t Dim = Rng.nextBelow(A.Dims.size());
    int64_t Old = A.Dims[Dim];
    int64_t New =
        Rng.nextBool(0.6)
            ? std::min<int64_t>(Old + 1 +
                                    static_cast<int64_t>(Rng.nextBelow(32)),
                                Opts.MaxDim)
            : std::max<int64_t>(1, Old - 1 -
                                       static_cast<int64_t>(
                                           Rng.nextBelow(8)));
    if (New == Old)
      return false;
    A.Dims[Dim] = New;
    return true;
  }
  case MutationKind::ToggleLayout: {
    std::vector<ArrayDecl *> Multi;
    for (ArrayDecl &A : P.Arrays)
      if (A.Dims.size() >= 2)
        Multi.push_back(&A);
    if (Multi.empty())
      return false;
    ArrayDecl *A = Multi[Rng.nextBelow(Multi.size())];
    A->RowMajor = !A->RowMajor;
    return true;
  }
  case MutationKind::ToggleOutput: {
    if (P.Arrays.size() < 2)
      return false;
    ArrayDecl &A = P.Arrays[Rng.nextBelow(P.Arrays.size())];
    int Outputs = 0;
    for (const ArrayDecl &D : P.Arrays)
      Outputs += D.IsOutput ? 1 : 0;
    if (A.IsOutput && Outputs <= 1)
      return false; // keep the checksum sensitive to something
    A.IsOutput = !A.IsOutput;
    return true;
  }
  }
  return false;
}

} // namespace

std::string fuzz::validateProgram(const lang::Program &P,
                                  uint64_t EvalBudget) {
  // Check a copy (checkProgram mutates: name resolution + conversions).
  Program Checked = P;
  if (std::string E = checkProgram(Checked); !E.empty())
    return "check: " + E;
  // Print -> parse round trip: the corpus stores source text, so a mutant
  // that cannot survive re-parsing is useless no matter how it evaluates.
  std::string Text = printProgram(Checked);
  ParseResult R = parseProgram(Text, P.Name);
  if (!R.ok())
    return "reparse: " + R.Error;
  if (std::string E = checkProgram(R.Prog); !E.empty())
    return "recheck: " + E;
  // AST evaluation rejects out-of-bounds subscripts and runaway loops.
  lang::EvalResult Ev = lang::evalProgram(Checked, EvalBudget);
  if (!Ev.ok())
    return "eval: " + Ev.Error;
  return "";
}

std::optional<MutationKind> fuzz::mutateProgram(lang::Program &P, RNG &Rng,
                                                const MutateOptions &Opts,
                                                MutationCounts *Counts) {
  for (int Attempt = 0; Attempt != Opts.Attempts; ++Attempt) {
    auto K = static_cast<MutationKind>(
        Rng.nextBelow(static_cast<uint64_t>(NumMutationKinds)));
    Program Cand = P;
    if (!applyMutation(K, Cand, Rng, Opts))
      continue;
    if (lang::estimateCost(Cand.Body) > Opts.MaxCost ||
        !validateProgram(Cand, Opts.EvalBudget).empty()) {
      if (Counts)
        ++Counts->Rejected;
      continue;
    }
    // Commit the CHECKED candidate, not the raw edit: freshly built nodes
    // carry no type/conversion annotations yet, and an unnormalized AST is
    // a semantic trap — lang::evalProgram honors the stale annotations
    // while compileProgram re-checks its own copy, so the two can disagree
    // on a program that is unambiguous on paper. Normalizing here keeps
    // the in-memory mutant bit-for-bit equivalent to its printed source.
    if (!checkProgram(Cand).empty()) {
      if (Counts)
        ++Counts->Rejected;
      continue; // unreachable given validation, but never commit unchecked
    }
    P = std::move(Cand);
    if (Counts)
      ++Counts->Applied[static_cast<int>(K)];
    return K;
  }
  return std::nullopt;
}
