//===- fuzz/Coverage.h - Feature-coverage map for the fuzzer ----*- C++ -*-===//
///
/// \file
/// Cheap feedback for coverage-guided fuzzing. The pipeline already exports
/// counters as a side effect of compiling and simulating — spill statistics,
/// trace shapes, schedule-slot (block-size) histograms, verifier-predicate
/// hits, and cache/TLB/MSHR/write-buffer event counts from the simulator
/// cores. Each (feature, log2 bucket, config) triple is hashed into a
/// fixed-size bitmap; a mutant earns a place in the corpus when it lights a
/// bit no earlier input has. No instrumentation or rebuild is needed: the
/// "coverage" is behavioural, which is exactly what matters for a compiler
/// whose rare paths (deep spills, odd trace splits, MSHR saturation) are
/// reached by program *shape*, not by code location.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_COVERAGE_H
#define BALSCHED_FUZZ_COVERAGE_H

#include "driver/Compiler.h"
#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace bsched {
namespace fuzz {

/// Behavioural features bucketed into the coverage bitmap. Values are part
/// of the map's hash domain only (not persisted), so reordering merely
/// relabels bits.
enum class Feature : uint8_t {
  // Register allocation.
  SpilledVRegs, SpillStores, RestoreLoads, Remats, IntRegsUsed, FpRegsUsed,
  // Transformations.
  LoopsUnrolled, LoopsFullyUnrolled, LoopsPeeled, SpatialRefs, TemporalRefs,
  CleanupIterations, DeadRemoved,
  // Trace shapes.
  Traces, MultiBlockTraces, LongestTrace, CompensationBlocks,
  CompensationInstrs,
  // Schedule-slot histogram: one feature per log2 block-size class.
  BlockSizeClass, NumBlocks,
  // Verifier predicates (diagnostic kinds; populated only by failures).
  VerifyDiagKind,
  // Simulator events.
  Cycles, LoadInterlock, FixedInterlock, ICacheStall, ITlbStall, DTlbStall,
  BranchPenalty, MshrStall, WriteBufferStall, L1DMisses, L2Misses, L3Misses,
  L1IMisses, DTlbMisses, ITlbMisses, BranchMispredicts, SpillsExecuted,
  CyclesPerInstr,
};

/// Log2-style bucketing: 0 -> 0, otherwise 1 + floor(log2(V)). Collapses
/// raw counters into ~65 classes so "some spilling" and "deep spilling"
/// are distinct signals but 1000 vs 1001 stall cycles are not.
uint64_t log2Bucket(uint64_t V);

/// Fixed-size feature bitmap (2^16 bits, 8 KB). Thread-compatible: each
/// fuzz job fills a local map, and the fuzzer merges maps at deterministic
/// round boundaries.
class CoverageMap {
public:
  static constexpr size_t NumBits = 1u << 16;

  CoverageMap() : Words(NumBits / 64, 0) {}

  /// Records (feature, bucket) under configuration index \p Cfg. Returns
  /// true when the bit was not previously set in this map.
  bool add(unsigned Cfg, Feature F, uint64_t Bucket);

  /// ORs \p O into this map; returns how many bits were newly set.
  size_t merge(const CoverageMap &O);

  /// True if \p O contains at least one bit this map lacks.
  bool wouldGrow(const CoverageMap &O) const;

  size_t bitsSet() const { return Count; }

private:
  std::vector<uint64_t> Words;
  size_t Count = 0;
};

/// Extracts the compile-side features of \p C (spills, trace shapes, block
/// sizes, transformation counters, verifier diagnostics) into \p M under
/// configuration index \p Cfg.
void addCompileFeatures(CoverageMap &M, unsigned Cfg,
                        const driver::CompileResult &C);

/// Extracts the simulator event buckets of \p R into \p M under
/// configuration index \p Cfg (callers offset Cfg per machine model so the
/// same event under a different model is a different signal).
void addSimFeatures(CoverageMap &M, unsigned Cfg, const sim::SimResult &R);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_COVERAGE_H
