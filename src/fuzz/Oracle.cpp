//===- fuzz/Oracle.cpp - Differential oracle for one candidate --------------===//

#include "fuzz/Oracle.h"

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "trace/EstimateProfile.h"

#include <utility>

using namespace bsched;
using namespace bsched::fuzz;

const char *fuzz::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None: return "none";
  case FailureKind::EvalError: return "eval-error";
  case FailureKind::CompileError: return "compile-error";
  case FailureKind::VerifierDiag: return "verifier-diag";
  case FailureKind::SchedTwinDivergence: return "sched-twin-divergence";
  case FailureKind::TraceTwinDivergence: return "trace-twin-divergence";
  case FailureKind::InterpDivergence: return "interp-divergence";
  case FailureKind::SimError: return "sim-error";
  case FailureKind::SimTwinDivergence: return "sim-twin-divergence";
  case FailureKind::SimDivergence: return "sim-divergence";
  case FailureKind::OptimalityGap: return "optimality-gap";
  case FailureKind::EstProfileInvalid: return "est-profile-invalid";
  }
  return "?";
}

std::string fuzz::diffSimResults(const sim::SimResult &F,
                                 const sim::SimResult &R) {
  auto Diff = [](const char *Name, uint64_t A, uint64_t B) {
    return std::string(Name) + " fast=" + std::to_string(A) +
           " ref=" + std::to_string(B);
  };
#define BS_CHECK(FIELD)                                                        \
  if (F.FIELD != R.FIELD)                                                      \
  return Diff(#FIELD, static_cast<uint64_t>(F.FIELD),                          \
              static_cast<uint64_t>(R.FIELD))
  BS_CHECK(Finished);
  BS_CHECK(Checksum);
  BS_CHECK(Cycles);
  BS_CHECK(Counts.ShortInt);
  BS_CHECK(Counts.LongInt);
  BS_CHECK(Counts.ShortFp);
  BS_CHECK(Counts.LongFp);
  BS_CHECK(Counts.Loads);
  BS_CHECK(Counts.Stores);
  BS_CHECK(Counts.Branches);
  BS_CHECK(Counts.Spills);
  BS_CHECK(Counts.Restores);
  BS_CHECK(LoadInterlockCycles);
  BS_CHECK(FixedInterlockCycles);
  BS_CHECK(ICacheStallCycles);
  BS_CHECK(ITlbStallCycles);
  BS_CHECK(DTlbStallCycles);
  BS_CHECK(BranchPenaltyCycles);
  BS_CHECK(MshrStallCycles);
  BS_CHECK(WriteBufferStallCycles);
  BS_CHECK(L1D.Accesses);
  BS_CHECK(L1D.Misses);
  BS_CHECK(L2.Accesses);
  BS_CHECK(L2.Misses);
  BS_CHECK(L3.Accesses);
  BS_CHECK(L3.Misses);
  BS_CHECK(L1I.Accesses);
  BS_CHECK(L1I.Misses);
  BS_CHECK(DTlbMisses);
  BS_CHECK(ITlbMisses);
  BS_CHECK(BranchMispredicts);
#undef BS_CHECK
  if (F.Error != R.Error)
    return "Error fast='" + F.Error + "' ref='" + R.Error + "'";
  return "";
}

namespace {

/// The compile configuration the simulator sweep runs under (the FuzzSim
/// setup: moderate unrolling builds interesting blocks; the verifier is the
/// compile sweep's job).
driver::CompileOptions simCompileConfig() {
  driver::CompileOptions O;
  O.UnrollFactor = 4;
  O.VerifyPasses = false;
  return O;
}

Failure fail(FailureKind K, std::string ConfigTag, int ConfigIndex,
             std::string MachineTag, std::string Detail) {
  Failure F;
  F.Kind = K;
  F.ConfigTag = std::move(ConfigTag);
  F.ConfigIndex = ConfigIndex;
  F.MachineTag = std::move(MachineTag);
  F.Detail = std::move(Detail);
  return F;
}

/// Optimality-gap leg for one configuration: recompile stopping before
/// register allocation (the scheduler's own output, before spills reshape
/// it), then on every block within the solver's node budget ask the
/// branch-and-bound oracle (sched/Exact.h) for the proven optimum. On
/// closed blocks three things must hold: the solver's order is a legal
/// topological order, the solver never lost to its own warm start
/// (fast-beats-exact == solver bug), and the fast schedule is within
/// MaxGapPct of optimal (exact-beats-fast beyond that == finding).
Failure gapOracle(const lang::Program &P, const driver::CompileOptions &Config,
                  const std::string &Tag, int Index,
                  const OracleOptions &Opts) {
  namespace exact = sched::exact;
  driver::CompileOptions GapCfg = Config;
  GapCfg.StopBeforeRegAlloc = true;
  GapCfg.Balance.Impl = sched::SchedImpl::Fast;
  // Trace compaction schedules whole traces — downward motion and
  // compensation deliberately leave individual blocks locally suboptimal —
  // so single-block optimality is the list scheduler's contract, not the
  // trace scheduler's. Judge the same config with traces off.
  GapCfg.TraceScheduling = false;
  driver::CompileResult C = driver::compileProgram(P, GapCfg);
  if (!C.ok())
    return fail(FailureKind::CompileError, Tag, Index, "",
                "gap-leg compile: " + C.Error);
  for (const ir::BasicBlock &B : C.M.Fn.Blocks) {
    if (B.Instrs.size() <= 2 || B.Instrs.size() > Opts.Exact.MaxNodes)
      continue;
    std::vector<const ir::Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    sched::DepDAG G = sched::buildDepDAG(Ptrs);
    sched::addBlockControlEdges(G, Ptrs);
    // The block is already in its scheduled order, so the identity order IS
    // the fast schedule (and, the DAG being built from that order, a legal
    // topological order by construction).
    std::vector<unsigned> Fast(Ptrs.size());
    for (unsigned K = 0; K != Ptrs.size(); ++K)
      Fast[K] = K;
    unsigned FastCycles = exact::evaluateOrder(G, Ptrs, Fast, Opts.Exact);
    exact::ExactResult R = exact::scheduleExact(G, Ptrs, Opts.Exact, &Fast);
    if (!R.closed())
      continue;
    auto Where = [&](const std::string &What) {
      return "block b" + std::to_string(B.Id) + " (" +
             std::to_string(Ptrs.size()) + " instrs): " + What +
             " fast=" + std::to_string(FastCycles) +
             " exact=" + std::to_string(R.Cycles);
    };
    // Solver self-checks first: a broken solver must never masquerade as a
    // scheduler finding.
    std::vector<bool> Seen(Ptrs.size(), false);
    std::vector<unsigned> Pos(Ptrs.size(), 0);
    bool Legal = R.Order.size() == Ptrs.size();
    for (unsigned K = 0; Legal && K != R.Order.size(); ++K) {
      if (R.Order[K] >= Ptrs.size() || Seen[R.Order[K]])
        Legal = false;
      else {
        Seen[R.Order[K]] = true;
        Pos[R.Order[K]] = K;
      }
    }
    for (unsigned I = 0; Legal && I != G.size(); ++I)
      for (unsigned S : G.succs(I))
        if (Pos[I] >= Pos[S])
          Legal = false;
    if (!Legal)
      return fail(FailureKind::OptimalityGap, Tag, Index, "",
                  Where("solver bug: exact order is not a legal "
                        "topological order"));
    if (R.Cycles > FastCycles ||
        exact::evaluateOrder(G, Ptrs, R.Order, Opts.Exact) != R.Cycles)
      return fail(FailureKind::OptimalityGap, Tag, Index, "",
                  Where("solver bug: exact schedule worse than its warm "
                        "start or inconsistent with its claimed cycles"));
    // The scheduler finding: fast exceeds the allowed gap over the optimum.
    if (static_cast<double>(FastCycles) * 100.0 >
        static_cast<double>(R.Cycles) * (100.0 + Opts.MaxGapPct))
      return fail(FailureKind::OptimalityGap, Tag, Index, "",
                  Where("fast schedule exceeds the " +
                        std::to_string(static_cast<int>(Opts.MaxGapPct)) +
                        "% optimality-gap bound"));
  }
  return {};
}

/// Estimated-profile leg for one configuration: rebuild the module exactly
/// as compileProgram would hand it to the profiler (front-end transforms,
/// lowering, cleanup), then hold the static estimate to its contract —
/// flow-conserving in exact integer arithmetic, deterministic across runs,
/// Finished (the fuzzer only generates terminating programs), and digestible
/// by trace formation with every block covered exactly once.
Failure estProfileOracle(const lang::Program &P,
                         const driver::CompileOptions &Config,
                         const std::string &Tag, int Index) {
  lang::Program Copy = P;
  if (Config.LocalityAnalysis) {
    locality::LocalityOptions LOpts;
    LOpts.UnrollFactor = Config.UnrollFactor > 1 ? Config.UnrollFactor : 0;
    locality::applyLocality(Copy, LOpts);
  }
  if (Config.UnrollFactor > 1)
    xform::unrollLoops(Copy, Config.UnrollFactor);
  if (Config.LocalityAnalysis || Config.UnrollFactor > 1)
    if (std::string E = lang::checkProgram(Copy); !E.empty())
      return fail(FailureKind::CompileError, Tag, Index, "",
                  "est-leg recheck: " + E);
  lower::LowerResult LR = lower::lowerProgram(Copy, Config.Lower);
  if (!LR.ok())
    return fail(FailureKind::CompileError, Tag, Index, "",
                "est-leg lower: " + LR.Error);
  if (Config.CleanupIR)
    opt::cleanupModule(LR.M, false);

  ir::InterpResult Est = trace::estimateProfile(LR.M.Fn);
  if (!Est.Finished)
    return fail(FailureKind::EstProfileInvalid, Tag, Index, "",
                "a terminating program was judged to never return");
  if (std::string E = ir::checkProfileConservation(
          LR.M.Fn, Est, trace::EstimateEntryCount);
      !E.empty())
    return fail(FailureKind::EstProfileInvalid, Tag, Index, "",
                "not flow-conserving: " + E);
  ir::InterpResult Est2 = trace::estimateProfile(LR.M.Fn);
  if (Est2.Finished != Est.Finished ||
      Est2.BlockCounts != Est.BlockCounts ||
      Est2.EdgeCounts != Est.EdgeCounts)
    return fail(FailureKind::EstProfileInvalid, Tag, Index, "",
                "estimate differs across two runs on the same module");
  std::vector<trace::Trace> Traces = trace::formTraces(LR.M.Fn, Est);
  std::vector<int> Covered(LR.M.Fn.Blocks.size(), 0);
  for (const trace::Trace &T : Traces)
    for (int B : T) {
      if (B < 0 || static_cast<size_t>(B) >= Covered.size() ||
          ++Covered[static_cast<size_t>(B)] > 1)
        return fail(FailureKind::EstProfileInvalid, Tag, Index, "",
                    "trace formation covered block b" + std::to_string(B) +
                        " twice (or out of range) under the estimate");
    }
  for (size_t B = 0; B != Covered.size(); ++B)
    if (!Covered[B])
      return fail(FailureKind::EstProfileInvalid, Tag, Index, "",
                  "trace formation left block b" + std::to_string(B) +
                      " uncovered under the estimate");
  return {};
}

/// Compile-side differential for one configuration; fills \p Cov when given.
Failure compileOracle(const lang::Program &P, uint64_t RefChecksum,
                      const driver::CompileOptions &Config, int Index,
                      const OracleOptions &Opts, CoverageMap *Cov) {
  const std::string Tag = Config.tag();
  driver::CompileResult C = driver::compileProgram(P, Config);
  if (Cov)
    addCompileFeatures(*Cov, static_cast<unsigned>(Index), C);
  if (!C.VerifyDiags.empty()) {
    std::string Text;
    for (const verify::Diagnostic &D : C.VerifyDiags)
      Text += verify::toString(D) + "\n";
    return fail(FailureKind::VerifierDiag, Tag, Index, "", Text);
  }
  if (!C.ok())
    return fail(FailureKind::CompileError, Tag, Index, "", C.Error);

  ir::InterpResult I = ir::interpret(C.M);
  if (!I.Finished)
    return fail(FailureKind::InterpDivergence, Tag, Index, "",
                "interpreter exceeded its instruction budget");
  if (I.Checksum != RefChecksum)
    return fail(FailureKind::InterpDivergence, Tag, Index, "",
                "checksum interp=" + std::to_string(I.Checksum) +
                    " eval=" + std::to_string(RefChecksum));

  if (Opts.CheckSchedTwin) {
    driver::CompileOptions RefOpts = Config;
    RefOpts.Balance.Impl = sched::SchedImpl::Reference;
    driver::CompileResult RC = driver::compileProgram(P, RefOpts);
    if (!RC.ok())
      return fail(FailureKind::SchedTwinDivergence, Tag, Index, "",
                  "reference pipeline failed: " + RC.Error);
    if (ir::printFunction(C.M.Fn) != ir::printFunction(RC.M.Fn))
      return fail(FailureKind::SchedTwinDivergence, Tag, Index, "",
                  "fast and reference compiled code differ");
  }

  // Trace twin: only the trace-scheduling core differs (the fast scheduler
  // core runs in both pipelines), isolating any divergence to trace
  // formation, compaction, or compensation bookkeeping.
  if (Opts.CheckTraceTwin && Config.TraceScheduling) {
    driver::CompileOptions RefOpts = Config;
    RefOpts.TraceImpl = trace::TraceImpl::Reference;
    driver::CompileResult RC = driver::compileProgram(P, RefOpts);
    if (!RC.ok())
      return fail(FailureKind::TraceTwinDivergence, Tag, Index, "",
                  "reference trace pipeline failed: " + RC.Error);
    if (ir::printFunction(C.M.Fn) != ir::printFunction(RC.M.Fn))
      return fail(FailureKind::TraceTwinDivergence, Tag, Index, "",
                  "fast and reference trace-scheduled code differ");
  }

  if (Opts.CheckEstimatedProfile)
    if (Failure EF = estProfileOracle(P, Config, Tag, Index);
        EF.Kind != FailureKind::None)
      return EF;

  if (Opts.CheckOptimalityGap)
    return gapOracle(P, Config, Tag, Index, Opts);
  return {};
}

/// Simulator differential under one machine model; fills \p Cov when given.
Failure simOracle(const ir::Module &M, uint64_t RefChecksum,
                  const MachinePoint &Point, unsigned CovCfg,
                  uint64_t MaxCycles, CoverageMap *Cov) {
  sim::MachineConfig C = Point.Config;
  C.Impl = sim::SimImpl::Fast;
  sim::SimResult F = sim::simulate(M, C, MaxCycles);
  C.Impl = sim::SimImpl::Reference;
  sim::SimResult R = sim::simulate(M, C, MaxCycles);
  if (Cov)
    addSimFeatures(*Cov, CovCfg, F);
  if (!F.ok())
    return fail(FailureKind::SimError, "", -1, Point.Tag, F.Error);
  if (std::string D = diffSimResults(F, R); !D.empty())
    return fail(FailureKind::SimTwinDivergence, "", -1, Point.Tag, D);
  if (F.Finished && F.Checksum != RefChecksum)
    return fail(FailureKind::SimDivergence, "", -1, Point.Tag,
                "checksum sim=" + std::to_string(F.Checksum) +
                    " eval=" + std::to_string(RefChecksum));
  return {};
}

} // namespace

OracleRun fuzz::runOracle(const lang::Program &Input,
                          const OracleOptions &Opts) {
  OracleRun Run;
  const std::vector<driver::CompileOptions> Configs =
      Opts.Configs.empty() ? differentialCompileConfigs() : Opts.Configs;
  const std::vector<MachinePoint> Machines =
      Opts.Machines.empty() ? differentialMachinePoints() : Opts.Machines;

  // Normalize before judging: evalProgram honors whatever type/conversion
  // annotations the AST carries, while compileProgram re-checks its own
  // copy — an unchecked input would make the oracle disagree with itself.
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty()) {
    Run.Failures.push_back(
        fail(FailureKind::EvalError, "", -1, "", "check: " + E));
    return Run;
  }

  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok()) {
    Run.Failures.push_back(
        fail(FailureKind::EvalError, "", -1, "", Ref.Error));
    return Run;
  }

  for (size_t I = 0; I != Configs.size(); ++I) {
    Failure F = compileOracle(P, Ref.Checksum, Configs[I],
                              static_cast<int>(I), Opts, &Run.Cov);
    if (F.Kind != FailureKind::None) {
      Run.Failures.push_back(std::move(F));
      if (Opts.StopOnFirstFailure)
        return Run;
    }
  }

  if (Opts.RunSim) {
    driver::CompileResult C = driver::compileProgram(P, simCompileConfig());
    if (!C.ok()) {
      Run.Failures.push_back(fail(FailureKind::CompileError,
                                  simCompileConfig().tag(), -1, "",
                                  C.Error));
      return Run;
    }
    for (size_t I = 0; I != Machines.size(); ++I) {
      // Offset the coverage config index past the compile sweep so "MSHR
      // stalls under starved" and "... under 21164" are distinct bits.
      Failure F = simOracle(C.M, Ref.Checksum, Machines[I],
                            static_cast<unsigned>(1000 + I),
                            Opts.SimMaxCycles, &Run.Cov);
      if (F.Kind != FailureKind::None) {
        Run.Failures.push_back(std::move(F));
        if (Opts.StopOnFirstFailure)
          return Run;
      }
    }
  }
  return Run;
}

Failure fuzz::runCompileOracle(const lang::Program &Input,
                               const driver::CompileOptions &Config,
                               const OracleOptions &Opts) {
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty())
    return fail(FailureKind::EvalError, "", -1, "", "check: " + E);
  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok())
    return fail(FailureKind::EvalError, "", -1, "", Ref.Error);
  return compileOracle(P, Ref.Checksum, Config, -1, Opts, nullptr);
}

Failure fuzz::runSimOracle(const lang::Program &Input,
                           const sim::MachineConfig &Machine,
                           const std::string &MachineTag,
                           const OracleOptions &Opts) {
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty())
    return fail(FailureKind::EvalError, "", -1, "", "check: " + E);
  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok())
    return fail(FailureKind::EvalError, "", -1, "", Ref.Error);
  driver::CompileResult C = driver::compileProgram(P, simCompileConfig());
  if (!C.ok())
    return fail(FailureKind::CompileError, simCompileConfig().tag(), -1, "",
                C.Error);
  MachinePoint Point{MachineTag.c_str(), Machine};
  return simOracle(C.M, Ref.Checksum, Point, 0, Opts.SimMaxCycles, nullptr);
}

Failure fuzz::replayRepro(const Repro &R, std::string &Err,
                          const OracleOptions &Opts) {
  Err.clear();
  lang::ParseResult P = lang::parseProgram(R.Source, "repro");
  if (!P.ok()) {
    Err = "parse: " + P.Error;
    return fail(FailureKind::EvalError, "", -1, "", Err);
  }
  if (std::string E = lang::checkProgram(P.Prog); !E.empty()) {
    Err = "check: " + E;
    return fail(FailureKind::EvalError, "", -1, "", Err);
  }
  if (!R.MachineTag.empty())
    return runSimOracle(P.Prog, machineByTag(R.MachineTag), R.MachineTag,
                        Opts);
  // A gap repro re-arms the leg that found it; the caller's other settings
  // (budgets, MaxGapPct) still apply.
  if (R.Kind == failureKindName(FailureKind::OptimalityGap)) {
    OracleOptions GapOpts = Opts;
    GapOpts.CheckOptimalityGap = true;
    return runCompileOracle(P.Prog, R.Options, GapOpts);
  }
  // Likewise an estimated-profile repro re-arms the estimator leg.
  if (R.Kind == failureKindName(FailureKind::EstProfileInvalid)) {
    OracleOptions EstOpts = Opts;
    EstOpts.CheckEstimatedProfile = true;
    return runCompileOracle(P.Prog, R.Options, EstOpts);
  }
  return runCompileOracle(P.Prog, R.Options, Opts);
}
