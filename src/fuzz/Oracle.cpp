//===- fuzz/Oracle.cpp - Differential oracle for one candidate --------------===//

#include "fuzz/Oracle.h"

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"

#include <utility>

using namespace bsched;
using namespace bsched::fuzz;

const char *fuzz::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None: return "none";
  case FailureKind::EvalError: return "eval-error";
  case FailureKind::CompileError: return "compile-error";
  case FailureKind::VerifierDiag: return "verifier-diag";
  case FailureKind::SchedTwinDivergence: return "sched-twin-divergence";
  case FailureKind::TraceTwinDivergence: return "trace-twin-divergence";
  case FailureKind::InterpDivergence: return "interp-divergence";
  case FailureKind::SimError: return "sim-error";
  case FailureKind::SimTwinDivergence: return "sim-twin-divergence";
  case FailureKind::SimDivergence: return "sim-divergence";
  }
  return "?";
}

std::string fuzz::diffSimResults(const sim::SimResult &F,
                                 const sim::SimResult &R) {
  auto Diff = [](const char *Name, uint64_t A, uint64_t B) {
    return std::string(Name) + " fast=" + std::to_string(A) +
           " ref=" + std::to_string(B);
  };
#define BS_CHECK(FIELD)                                                        \
  if (F.FIELD != R.FIELD)                                                      \
  return Diff(#FIELD, static_cast<uint64_t>(F.FIELD),                          \
              static_cast<uint64_t>(R.FIELD))
  BS_CHECK(Finished);
  BS_CHECK(Checksum);
  BS_CHECK(Cycles);
  BS_CHECK(Counts.ShortInt);
  BS_CHECK(Counts.LongInt);
  BS_CHECK(Counts.ShortFp);
  BS_CHECK(Counts.LongFp);
  BS_CHECK(Counts.Loads);
  BS_CHECK(Counts.Stores);
  BS_CHECK(Counts.Branches);
  BS_CHECK(Counts.Spills);
  BS_CHECK(Counts.Restores);
  BS_CHECK(LoadInterlockCycles);
  BS_CHECK(FixedInterlockCycles);
  BS_CHECK(ICacheStallCycles);
  BS_CHECK(ITlbStallCycles);
  BS_CHECK(DTlbStallCycles);
  BS_CHECK(BranchPenaltyCycles);
  BS_CHECK(MshrStallCycles);
  BS_CHECK(WriteBufferStallCycles);
  BS_CHECK(L1D.Accesses);
  BS_CHECK(L1D.Misses);
  BS_CHECK(L2.Accesses);
  BS_CHECK(L2.Misses);
  BS_CHECK(L3.Accesses);
  BS_CHECK(L3.Misses);
  BS_CHECK(L1I.Accesses);
  BS_CHECK(L1I.Misses);
  BS_CHECK(DTlbMisses);
  BS_CHECK(ITlbMisses);
  BS_CHECK(BranchMispredicts);
#undef BS_CHECK
  if (F.Error != R.Error)
    return "Error fast='" + F.Error + "' ref='" + R.Error + "'";
  return "";
}

namespace {

/// The compile configuration the simulator sweep runs under (the FuzzSim
/// setup: moderate unrolling builds interesting blocks; the verifier is the
/// compile sweep's job).
driver::CompileOptions simCompileConfig() {
  driver::CompileOptions O;
  O.UnrollFactor = 4;
  O.VerifyPasses = false;
  return O;
}

Failure fail(FailureKind K, std::string ConfigTag, int ConfigIndex,
             std::string MachineTag, std::string Detail) {
  Failure F;
  F.Kind = K;
  F.ConfigTag = std::move(ConfigTag);
  F.ConfigIndex = ConfigIndex;
  F.MachineTag = std::move(MachineTag);
  F.Detail = std::move(Detail);
  return F;
}

/// Compile-side differential for one configuration; fills \p Cov when given.
Failure compileOracle(const lang::Program &P, uint64_t RefChecksum,
                      const driver::CompileOptions &Config, int Index,
                      bool CheckSchedTwin, bool CheckTraceTwin,
                      CoverageMap *Cov) {
  const std::string Tag = Config.tag();
  driver::CompileResult C = driver::compileProgram(P, Config);
  if (Cov)
    addCompileFeatures(*Cov, static_cast<unsigned>(Index), C);
  if (!C.VerifyDiags.empty()) {
    std::string Text;
    for (const verify::Diagnostic &D : C.VerifyDiags)
      Text += verify::toString(D) + "\n";
    return fail(FailureKind::VerifierDiag, Tag, Index, "", Text);
  }
  if (!C.ok())
    return fail(FailureKind::CompileError, Tag, Index, "", C.Error);

  ir::InterpResult I = ir::interpret(C.M);
  if (!I.Finished)
    return fail(FailureKind::InterpDivergence, Tag, Index, "",
                "interpreter exceeded its instruction budget");
  if (I.Checksum != RefChecksum)
    return fail(FailureKind::InterpDivergence, Tag, Index, "",
                "checksum interp=" + std::to_string(I.Checksum) +
                    " eval=" + std::to_string(RefChecksum));

  if (CheckSchedTwin) {
    driver::CompileOptions RefOpts = Config;
    RefOpts.Balance.Impl = sched::SchedImpl::Reference;
    driver::CompileResult RC = driver::compileProgram(P, RefOpts);
    if (!RC.ok())
      return fail(FailureKind::SchedTwinDivergence, Tag, Index, "",
                  "reference pipeline failed: " + RC.Error);
    if (ir::printFunction(C.M.Fn) != ir::printFunction(RC.M.Fn))
      return fail(FailureKind::SchedTwinDivergence, Tag, Index, "",
                  "fast and reference compiled code differ");
  }

  // Trace twin: only the trace-scheduling core differs (the fast scheduler
  // core runs in both pipelines), isolating any divergence to trace
  // formation, compaction, or compensation bookkeeping.
  if (CheckTraceTwin && Config.TraceScheduling) {
    driver::CompileOptions RefOpts = Config;
    RefOpts.TraceImpl = trace::TraceImpl::Reference;
    driver::CompileResult RC = driver::compileProgram(P, RefOpts);
    if (!RC.ok())
      return fail(FailureKind::TraceTwinDivergence, Tag, Index, "",
                  "reference trace pipeline failed: " + RC.Error);
    if (ir::printFunction(C.M.Fn) != ir::printFunction(RC.M.Fn))
      return fail(FailureKind::TraceTwinDivergence, Tag, Index, "",
                  "fast and reference trace-scheduled code differ");
  }
  return {};
}

/// Simulator differential under one machine model; fills \p Cov when given.
Failure simOracle(const ir::Module &M, uint64_t RefChecksum,
                  const MachinePoint &Point, unsigned CovCfg,
                  uint64_t MaxCycles, CoverageMap *Cov) {
  sim::MachineConfig C = Point.Config;
  C.Impl = sim::SimImpl::Fast;
  sim::SimResult F = sim::simulate(M, C, MaxCycles);
  C.Impl = sim::SimImpl::Reference;
  sim::SimResult R = sim::simulate(M, C, MaxCycles);
  if (Cov)
    addSimFeatures(*Cov, CovCfg, F);
  if (!F.ok())
    return fail(FailureKind::SimError, "", -1, Point.Tag, F.Error);
  if (std::string D = diffSimResults(F, R); !D.empty())
    return fail(FailureKind::SimTwinDivergence, "", -1, Point.Tag, D);
  if (F.Finished && F.Checksum != RefChecksum)
    return fail(FailureKind::SimDivergence, "", -1, Point.Tag,
                "checksum sim=" + std::to_string(F.Checksum) +
                    " eval=" + std::to_string(RefChecksum));
  return {};
}

} // namespace

OracleRun fuzz::runOracle(const lang::Program &Input,
                          const OracleOptions &Opts) {
  OracleRun Run;
  const std::vector<driver::CompileOptions> Configs =
      Opts.Configs.empty() ? differentialCompileConfigs() : Opts.Configs;
  const std::vector<MachinePoint> Machines =
      Opts.Machines.empty() ? differentialMachinePoints() : Opts.Machines;

  // Normalize before judging: evalProgram honors whatever type/conversion
  // annotations the AST carries, while compileProgram re-checks its own
  // copy — an unchecked input would make the oracle disagree with itself.
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty()) {
    Run.Failures.push_back(
        fail(FailureKind::EvalError, "", -1, "", "check: " + E));
    return Run;
  }

  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok()) {
    Run.Failures.push_back(
        fail(FailureKind::EvalError, "", -1, "", Ref.Error));
    return Run;
  }

  for (size_t I = 0; I != Configs.size(); ++I) {
    Failure F = compileOracle(P, Ref.Checksum, Configs[I],
                              static_cast<int>(I), Opts.CheckSchedTwin,
                              Opts.CheckTraceTwin, &Run.Cov);
    if (F.Kind != FailureKind::None) {
      Run.Failures.push_back(std::move(F));
      if (Opts.StopOnFirstFailure)
        return Run;
    }
  }

  if (Opts.RunSim) {
    driver::CompileResult C = driver::compileProgram(P, simCompileConfig());
    if (!C.ok()) {
      Run.Failures.push_back(fail(FailureKind::CompileError,
                                  simCompileConfig().tag(), -1, "",
                                  C.Error));
      return Run;
    }
    for (size_t I = 0; I != Machines.size(); ++I) {
      // Offset the coverage config index past the compile sweep so "MSHR
      // stalls under starved" and "... under 21164" are distinct bits.
      Failure F = simOracle(C.M, Ref.Checksum, Machines[I],
                            static_cast<unsigned>(1000 + I),
                            Opts.SimMaxCycles, &Run.Cov);
      if (F.Kind != FailureKind::None) {
        Run.Failures.push_back(std::move(F));
        if (Opts.StopOnFirstFailure)
          return Run;
      }
    }
  }
  return Run;
}

Failure fuzz::runCompileOracle(const lang::Program &Input,
                               const driver::CompileOptions &Config,
                               const OracleOptions &Opts) {
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty())
    return fail(FailureKind::EvalError, "", -1, "", "check: " + E);
  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok())
    return fail(FailureKind::EvalError, "", -1, "", Ref.Error);
  return compileOracle(P, Ref.Checksum, Config, -1, Opts.CheckSchedTwin,
                       Opts.CheckTraceTwin, nullptr);
}

Failure fuzz::runSimOracle(const lang::Program &Input,
                           const sim::MachineConfig &Machine,
                           const std::string &MachineTag,
                           const OracleOptions &Opts) {
  lang::Program P = Input;
  if (std::string E = lang::checkProgram(P); !E.empty())
    return fail(FailureKind::EvalError, "", -1, "", "check: " + E);
  lang::EvalResult Ref = lang::evalProgram(P, Opts.EvalBudget);
  if (!Ref.ok())
    return fail(FailureKind::EvalError, "", -1, "", Ref.Error);
  driver::CompileResult C = driver::compileProgram(P, simCompileConfig());
  if (!C.ok())
    return fail(FailureKind::CompileError, simCompileConfig().tag(), -1, "",
                C.Error);
  MachinePoint Point{MachineTag.c_str(), Machine};
  return simOracle(C.M, Ref.Checksum, Point, 0, Opts.SimMaxCycles, nullptr);
}

Failure fuzz::replayRepro(const Repro &R, std::string &Err,
                          const OracleOptions &Opts) {
  Err.clear();
  lang::ParseResult P = lang::parseProgram(R.Source, "repro");
  if (!P.ok()) {
    Err = "parse: " + P.Error;
    return fail(FailureKind::EvalError, "", -1, "", Err);
  }
  if (std::string E = lang::checkProgram(P.Prog); !E.empty()) {
    Err = "check: " + E;
    return fail(FailureKind::EvalError, "", -1, "", Err);
  }
  if (!R.MachineTag.empty())
    return runSimOracle(P.Prog, machineByTag(R.MachineTag), R.MachineTag,
                        Opts);
  return runCompileOracle(P.Prog, R.Options, Opts);
}
