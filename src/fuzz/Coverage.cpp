//===- fuzz/Coverage.cpp - Feature-coverage map for the fuzzer --------------===//

#include "fuzz/Coverage.h"

using namespace bsched;
using namespace bsched::fuzz;

uint64_t fuzz::log2Bucket(uint64_t V) {
  uint64_t B = 0;
  while (V) {
    ++B;
    V >>= 1;
  }
  return B;
}

namespace {

/// SplitMix64-style mixer; the map only needs a stable, well-spread hash of
/// the (config, feature, bucket) triple.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

size_t bitIndex(unsigned Cfg, Feature F, uint64_t Bucket) {
  uint64_t Key = (static_cast<uint64_t>(Cfg) << 32) |
                 (static_cast<uint64_t>(static_cast<uint8_t>(F)) << 24);
  return static_cast<size_t>(mix(Key ^ mix(Bucket)) &
                             (CoverageMap::NumBits - 1));
}

} // namespace

bool CoverageMap::add(unsigned Cfg, Feature F, uint64_t Bucket) {
  size_t Bit = bitIndex(Cfg, F, Bucket);
  uint64_t &W = Words[Bit / 64];
  uint64_t Mask = 1ull << (Bit % 64);
  if (W & Mask)
    return false;
  W |= Mask;
  ++Count;
  return true;
}

size_t CoverageMap::merge(const CoverageMap &O) {
  size_t New = 0;
  for (size_t I = 0; I != Words.size(); ++I) {
    uint64_t Fresh = O.Words[I] & ~Words[I];
    if (Fresh) {
      New += static_cast<size_t>(__builtin_popcountll(Fresh));
      Words[I] |= Fresh;
    }
  }
  Count += New;
  return New;
}

bool CoverageMap::wouldGrow(const CoverageMap &O) const {
  for (size_t I = 0; I != Words.size(); ++I)
    if (O.Words[I] & ~Words[I])
      return true;
  return false;
}

void fuzz::addCompileFeatures(CoverageMap &M, unsigned Cfg,
                              const driver::CompileResult &C) {
  auto Add = [&](Feature F, uint64_t V) { M.add(Cfg, F, log2Bucket(V)); };

  Add(Feature::SpilledVRegs, static_cast<uint64_t>(C.RegAlloc.SpilledVRegs));
  Add(Feature::SpillStores, static_cast<uint64_t>(C.RegAlloc.SpillStores));
  Add(Feature::RestoreLoads, static_cast<uint64_t>(C.RegAlloc.RestoreLoads));
  Add(Feature::Remats, static_cast<uint64_t>(C.RegAlloc.Remats));
  Add(Feature::IntRegsUsed, C.RegAlloc.IntRegsUsed);
  Add(Feature::FpRegsUsed, C.RegAlloc.FpRegsUsed);

  Add(Feature::LoopsUnrolled, static_cast<uint64_t>(C.Unroll.LoopsUnrolled));
  Add(Feature::LoopsFullyUnrolled,
      static_cast<uint64_t>(C.Unroll.LoopsFullyUnrolled));
  Add(Feature::LoopsPeeled, static_cast<uint64_t>(C.Locality.LoopsPeeled));
  Add(Feature::SpatialRefs, static_cast<uint64_t>(C.Locality.SpatialRefs));
  Add(Feature::TemporalRefs, static_cast<uint64_t>(C.Locality.TemporalRefs));
  Add(Feature::CleanupIterations,
      static_cast<uint64_t>(C.Cleanup.Iterations));
  Add(Feature::DeadRemoved, static_cast<uint64_t>(C.Cleanup.DeadRemoved));

  Add(Feature::Traces, static_cast<uint64_t>(C.Trace.Traces));
  Add(Feature::MultiBlockTraces,
      static_cast<uint64_t>(C.Trace.MultiBlockTraces));
  Add(Feature::LongestTrace, static_cast<uint64_t>(C.Trace.LongestTrace));
  Add(Feature::CompensationBlocks,
      static_cast<uint64_t>(C.Trace.CompensationBlocks));
  Add(Feature::CompensationInstrs,
      static_cast<uint64_t>(C.Trace.CompensationInstrs));

  // Schedule-slot histogram: which log2 block-size classes exist, and how
  // many blocks the schedule spreads over.
  for (const ir::BasicBlock &B : C.M.Fn.Blocks)
    M.add(Cfg, Feature::BlockSizeClass, log2Bucket(B.Instrs.size()));
  Add(Feature::NumBlocks, C.M.Fn.Blocks.size());

  // Verifier predicates: on a healthy tree these never fire; when they do,
  // each diagnostic kind is its own signal so a mutant tripping a *new*
  // predicate is always corpus-worthy.
  for (const verify::Diagnostic &D : C.VerifyDiags)
    M.add(Cfg, Feature::VerifyDiagKind,
          static_cast<uint64_t>(static_cast<uint8_t>(D.Kind)));
}

void fuzz::addSimFeatures(CoverageMap &M, unsigned Cfg,
                          const sim::SimResult &R) {
  auto Add = [&](Feature F, uint64_t V) { M.add(Cfg, F, log2Bucket(V)); };

  Add(Feature::Cycles, R.Cycles);
  Add(Feature::LoadInterlock, R.LoadInterlockCycles);
  Add(Feature::FixedInterlock, R.FixedInterlockCycles);
  Add(Feature::ICacheStall, R.ICacheStallCycles);
  Add(Feature::ITlbStall, R.ITlbStallCycles);
  Add(Feature::DTlbStall, R.DTlbStallCycles);
  Add(Feature::BranchPenalty, R.BranchPenaltyCycles);
  Add(Feature::MshrStall, R.MshrStallCycles);
  Add(Feature::WriteBufferStall, R.WriteBufferStallCycles);
  Add(Feature::L1DMisses, R.L1D.Misses);
  Add(Feature::L2Misses, R.L2.Misses);
  Add(Feature::L3Misses, R.L3.Misses);
  Add(Feature::L1IMisses, R.L1I.Misses);
  Add(Feature::DTlbMisses, R.DTlbMisses);
  Add(Feature::ITlbMisses, R.ITlbMisses);
  Add(Feature::BranchMispredicts, R.BranchMispredicts);
  Add(Feature::SpillsExecuted, R.Counts.Spills + R.Counts.Restores);
  if (R.Counts.total())
    Add(Feature::CyclesPerInstr, R.Cycles / R.Counts.total());
}
