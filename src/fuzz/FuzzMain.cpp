//===- fuzz/FuzzMain.cpp - bsched-fuzz command-line driver ------------------===//
///
/// \file
/// Standalone coverage-guided differential fuzzer. Typical runs:
///
///   bsched-fuzz --seconds 60 --threads 4 --seed 1 --corpus out/
///   bsched-fuzz --rounds 8 --seed 7            # fully deterministic
///   bsched-fuzz --replay tests/corpus/repro-0-sim-twin-divergence.repro
///
/// Exit status: 0 = clean campaign (or a --replay that no longer fails),
/// 1 = at least one differential failure, 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace bsched;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: bsched-fuzz [options]\n"
        "\n"
        "Coverage-guided differential fuzzer for the balanced-scheduling\n"
        "pipeline: mutates generated kernel programs, cross-checks the AST\n"
        "evaluator, both scheduler implementations, the IR interpreter and\n"
        "both simulator cores, and reduces any mismatch to a minimal repro.\n"
        "\n"
        "options:\n"
        "  --seconds <f>    wall-clock budget, checked at round boundaries\n"
        "                   (default 10; ignored when --rounds is given)\n"
        "  --rounds <n>     run exactly n mutation rounds (deterministic\n"
        "                   regardless of wall clock)\n"
        "  --threads <n>    worker threads (default 1; results are\n"
        "                   identical for any value)\n"
        "  --seed <n>       campaign seed (default 1)\n"
        "  --jobs <n>       mutated candidates per round (default 24)\n"
        "  --initial <n>    generator-seeded corpus size (default 16)\n"
        "  --corpus <dir>   write reduced repro files here\n"
        "  --no-reduce      report failures without reducing them\n"
        "  --no-sim         skip the simulator differential sweep\n"
        "  --gap            also run the optimality-gap oracle leg: the\n"
        "                   exact branch-and-bound scheduler judges every\n"
        "                   solver-closed block (legality, solver sanity,\n"
        "                   fast within --gap-pct of optimal)\n"
        "  --gap-pct <f>    allowed fast-over-optimal excess in percent\n"
        "                   (default 100)\n"
        "  --est            also run the estimated-profile oracle leg: the\n"
        "                   static profile estimate of every config's module\n"
        "                   must be flow-conserving, deterministic, and\n"
        "                   safely drive trace formation\n"
        "  --replay <file>  replay one repro file through the oracle and\n"
        "                   report whether it still fails\n"
        "  --quiet          suppress per-round progress lines\n"
        "  --help           this text\n";
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseF64(const char *S, double &Out) {
  char *End = nullptr;
  Out = std::strtod(S, &End);
  return End && *End == '\0' && End != S;
}

int replayFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "bsched-fuzz: cannot open '" << Path << "'\n";
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  fuzz::Repro R;
  std::string Err;
  if (!fuzz::parseRepro(Buf.str(), R, Err)) {
    std::cerr << "bsched-fuzz: " << Path << ": " << Err << "\n";
    return 2;
  }
  fuzz::Failure F = fuzz::replayRepro(R, Err);
  if (!Err.empty()) {
    std::cerr << "bsched-fuzz: " << Path << ": " << Err << "\n";
    return 2;
  }
  if (F.Kind == fuzz::FailureKind::None) {
    std::cout << Path << ": clean (recorded kind was '" << R.Kind << "')\n";
    return 0;
  }
  std::cout << Path << ": still fails: " << fuzz::failureKindName(F.Kind)
            << " " << F.Detail << "\n";
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions Opts;
  Opts.Seconds = 10.0;
  std::string ReplayPath;

  for (int I = 1; I < argc; ++I) {
    const std::string A = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::cerr << "bsched-fuzz: " << Flag << " needs a value\n";
        return nullptr;
      }
      return argv[++I];
    };
    uint64_t U = 0;
    double D = 0;
    if (A == "--help" || A == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (A == "--seconds") {
      const char *V = NextArg("--seconds");
      if (!V || !parseF64(V, D) || D < 0) return 2;
      Opts.Seconds = D;
    } else if (A == "--rounds") {
      const char *V = NextArg("--rounds");
      if (!V || !parseU64(V, U)) return 2;
      Opts.Rounds = static_cast<int>(U);
    } else if (A == "--threads") {
      const char *V = NextArg("--threads");
      if (!V || !parseU64(V, U) || U == 0) return 2;
      Opts.Threads = static_cast<unsigned>(U);
    } else if (A == "--seed") {
      const char *V = NextArg("--seed");
      if (!V || !parseU64(V, U)) return 2;
      Opts.Seed = U;
    } else if (A == "--jobs") {
      const char *V = NextArg("--jobs");
      if (!V || !parseU64(V, U) || U == 0) return 2;
      Opts.JobsPerRound = static_cast<int>(U);
    } else if (A == "--initial") {
      const char *V = NextArg("--initial");
      if (!V || !parseU64(V, U) || U == 0) return 2;
      Opts.InitialSeeds = static_cast<int>(U);
    } else if (A == "--corpus") {
      const char *V = NextArg("--corpus");
      if (!V) return 2;
      Opts.CorpusDir = V;
    } else if (A == "--replay") {
      const char *V = NextArg("--replay");
      if (!V) return 2;
      ReplayPath = V;
    } else if (A == "--no-reduce") {
      Opts.ReduceFailures = false;
    } else if (A == "--no-sim") {
      Opts.Oracle.RunSim = false;
    } else if (A == "--gap") {
      Opts.Oracle.CheckOptimalityGap = true;
    } else if (A == "--est") {
      Opts.Oracle.CheckEstimatedProfile = true;
    } else if (A == "--gap-pct") {
      const char *V = NextArg("--gap-pct");
      if (!V || !parseF64(V, D) || D < 0) return 2;
      Opts.Oracle.MaxGapPct = D;
    } else if (A == "--quiet") {
      Opts.Verbose = false;
    } else {
      std::cerr << "bsched-fuzz: unknown option '" << A << "'\n";
      printUsage(std::cerr);
      return 2;
    }
  }

  if (!ReplayPath.empty())
    return replayFile(ReplayPath);

  fuzz::FuzzReport Report = fuzz::runFuzzer(Opts, &std::cout);

  std::cout << "done: " << Report.Iterations << " programs, "
            << Report.RoundsRun << " rounds, corpus " << Report.CorpusSize
            << ", coverage " << Report.CoverageBits << " bits, "
            << Report.Failures.size() << " failure(s)\n";
  if (!Report.clean()) {
    for (const fuzz::FailureRecord &R : Report.Failures) {
      std::cout << "  " << fuzz::failureKindName(R.Fail.Kind);
      if (!R.Fail.ConfigTag.empty())
        std::cout << " config='" << R.Fail.ConfigTag << "'";
      if (!R.Fail.MachineTag.empty())
        std::cout << " machine=" << R.Fail.MachineTag;
      if (!R.FilePath.empty())
        std::cout << " repro=" << R.FilePath;
      std::cout << "\n";
    }
    return 1;
  }
  return 0;
}
