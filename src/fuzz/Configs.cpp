//===- fuzz/Configs.cpp - Canonical differential-testing configs ------------===//

#include "fuzz/Configs.h"

using namespace bsched;
using namespace bsched::fuzz;
using namespace bsched::driver;
using namespace bsched::sim;

std::vector<CompileOptions> fuzz::differentialCompileConfigs() {
  std::vector<CompileOptions> Cs;
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    auto Add = [&](int LU, bool TrS, bool LA) {
      CompileOptions O;
      O.Scheduler = Kind;
      O.UnrollFactor = LU;
      O.TraceScheduling = TrS;
      O.LocalityAnalysis = LA;
      Cs.push_back(O);
    };
    Add(1, false, false);
    Add(4, false, false);
    Add(8, true, true);
  }
  // Estimated-profile trace scheduling (exercises the static estimator on
  // arbitrary CFGs) and the hybrid per-block chooser.
  CompileOptions Est;
  Est.TraceScheduling = true;
  Est.UseEstimatedProfile = true;
  Est.UnrollFactor = 4;
  Cs.push_back(Est);
  CompileOptions Hy;
  Hy.Scheduler = sched::SchedulerKind::Hybrid;
  Cs.push_back(Hy);
  // Lowering options off (exercises the generic code paths).
  CompileOptions Plain;
  Plain.Lower.StrengthReduction = false;
  Plain.Lower.IfConversion = false;
  Cs.push_back(Plain);
  // Tight register file (exercises spilling on every program).
  CompileOptions Tight;
  Tight.UnrollFactor = 4;
  Tight.RegAlloc.AllocatablePerClass = 6;
  Cs.push_back(Tight);
  // Register-pressure-hostile: heavy unrolling feeding trace scheduling
  // into a near-minimal register file, so every program spills across the
  // restore/remat/scratch paths of regalloc::LinearScan.
  CompileOptions Spill;
  Spill.UnrollFactor = 8;
  Spill.TraceScheduling = true;
  Spill.RegAlloc.AllocatablePerClass = 4;
  Cs.push_back(Spill);
  // Large-block stress for the optimized scheduler core: heavy unrolling
  // plus traces builds the biggest regions (where the fast DAG builder's
  // bucketed disambiguation and the bitset weight sweeps engage, past the
  // small-region reference fallback), with fixed-latency balancing on to
  // cover the widened weight denominators.
  CompileOptions Big;
  Big.Scheduler = sched::SchedulerKind::Balanced;
  Big.UnrollFactor = 8;
  Big.TraceScheduling = true;
  Big.Balance.BalanceFixedOps = true;
  Cs.push_back(Big);
  // Trace-hostile: with if-conversion off every diamond survives into the
  // CFG, maximizing splits, joins and compensation blocks — the paths where
  // the fast trace core's incremental predecessor/DAG bookkeeping could
  // drift from the reference twin.
  CompileOptions TraceHostile;
  TraceHostile.TraceScheduling = true;
  TraceHostile.Lower.IfConversion = false;
  Cs.push_back(TraceHostile);
  // Compaction-hostile: the longest traces the pipeline can form (heavy
  // unrolling, if-conversion explicitly on so diamonds collapse into long
  // straight-line runs the trace grower can swallow), scheduled with the
  // pressure heuristic disabled so the balanced weights alone pick the
  // order. This drives the incremental balanced-weights builder through
  // the most prefix-extension steps per trace, where a stale cached bitset
  // row or memo entry would diverge from the reference twin.
  CompileOptions CompactHostile;
  CompactHostile.Scheduler = sched::SchedulerKind::Balanced;
  CompactHostile.UnrollFactor = 8;
  CompactHostile.TraceScheduling = true;
  CompactHostile.Lower.IfConversion = true;
  CompactHostile.Balance.BalanceFixedOps = true;
  CompactHostile.Balance.PressureThreshold = 0;
  Cs.push_back(CompactHostile);
  return Cs;
}

MachineConfig fuzz::machine21164() { return MachineConfig{}; }

MachineConfig fuzz::simpleModelMachine(double HitRate) {
  MachineConfig C;
  C.SimpleModel = true;
  C.SimpleHitRate = HitRate;
  return C;
}

MachineConfig fuzz::perfectFrontEndMachine() {
  MachineConfig C;
  C.PerfectFrontEnd = true;
  return C;
}

MachineConfig fuzz::widthMachine(unsigned W, bool Pfe) {
  MachineConfig C;
  C.IssueWidth = W;
  C.PerfectFrontEnd = Pfe;
  return C;
}

MachineConfig fuzz::starvedMachine() {
  MachineConfig C;
  C.L1D = {256, 32, 1, 2};
  C.L1I = {256, 32, 1, 1};
  C.L2 = {2048, 32, 2, 6};
  C.L3 = {16384, 64, 1, 15};
  C.NumMSHRs = 2;
  C.WriteBufferEntries = 1;
  C.DTlbEntries = 2;
  C.ITlbEntries = 2;
  C.PageSize = 4096;
  C.TlbRefillLatency = 9;
  C.BranchPredictorEntries = 8;
  return C;
}

MachineConfig fuzz::oddGeometryMachine() {
  MachineConfig C;
  C.L1D = {4800, 32, 1, 2};   // 150 sets
  C.L1I = {4800, 32, 1, 1};   // 150 sets
  C.L2 = {9600, 32, 3, 6};    // 100 sets
  C.L3 = {120000, 64, 1, 15}; // 1875 sets
  C.PageSize = 1000;
  C.DTlbEntries = 3;
  C.ITlbEntries = 3;
  C.BranchPredictorEntries = 7;
  return C;
}

std::vector<MachinePoint> fuzz::differentialMachinePoints() {
  return {{"21164", machine21164()},
          {"simple80", simpleModelMachine(0.8)},
          {"starved", starvedMachine()}};
}

std::vector<MachinePoint> fuzz::goldenMachinePoints() {
  return {{"21164", machine21164()},
          {"simple80", simpleModelMachine(0.8)},
          {"pfe", perfectFrontEndMachine()},
          {"w4", widthMachine(4)}};
}

MachineConfig fuzz::machineByTag(const std::string &Tag) {
  if (Tag == "simple80")
    return simpleModelMachine(0.8);
  if (Tag == "simple95")
    return simpleModelMachine(0.95);
  if (Tag == "starved")
    return starvedMachine();
  if (Tag == "oddgeom")
    return oddGeometryMachine();
  if (Tag == "pfe")
    return perfectFrontEndMachine();
  if (Tag == "w2")
    return widthMachine(2);
  if (Tag == "w4")
    return widthMachine(4);
  return machine21164();
}
