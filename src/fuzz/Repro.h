//===- fuzz/Repro.h - Reduced-failure repro files ---------------*- C++ -*-===//
///
/// \file
/// The on-disk exchange format between the fuzzer and the regression suite:
/// one self-contained text file holding the failure classification, the
/// compile options, the machine-model tag (for simulator failures) and the
/// reduced kernel-language source. bsched-fuzz writes these into its corpus
/// directory; files promoted into tests/corpus/ are replayed by
/// corpus_test.cpp as ordinary gtests, so every reduced bug becomes a
/// permanent regression test by a `cp`.
///
/// Format (line-oriented, '#' comments ignored):
///
///   kind: sim-twin-divergence
///   machine: starved
///   detail: MshrStallCycles fast=12 ref=13
///   option unroll 8
///   option trace 1
///   ---
///   array a0[16] output;
///   ...
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_REPRO_H
#define BALSCHED_FUZZ_REPRO_H

#include "driver/Compiler.h"

#include <string>

namespace bsched {
namespace fuzz {

struct Repro {
  std::string Kind;       ///< failureKindName() of the original failure.
  std::string Detail;     ///< free-text: first differing field, etc.
  std::string MachineTag; ///< machineByTag() name; "" = compile-side repro.
  driver::CompileOptions Options;
  std::string Source;     ///< kernel-language text.
};

/// Serializes \p R (only non-default options are written).
std::string writeRepro(const Repro &R);

/// Parses \p Text. Returns true on success; on failure \p Err names the
/// offending line.
bool parseRepro(const std::string &Text, Repro &Out, std::string &Err);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_REPRO_H
