//===- fuzz/Oracle.h - Differential oracle for one candidate ----*- C++ -*-===//
///
/// \file
/// Runs one candidate program through every cross-check the repo has and
/// classifies any disagreement:
///
///   AST eval  ==  ir::interpret(compiled)     per compile configuration
///   verify::  finds no diagnostic             per compile configuration
///   SchedImpl::Fast == SchedImpl::Reference   byte-identical compiled code
///   TraceImpl::Fast == TraceImpl::Reference   byte-identical compiled code,
///                                             per trace-scheduling config
///   SimImpl::Fast == SimImpl::Reference       every SimResult field, per
///                                             machine model
///   sim checksum == AST eval checksum         when the run finishes
///
/// The compile sweep uses the canonical fuzz::differentialCompileConfigs()
/// list; the simulator sweep compiles once (unroll 4, the FuzzSim setup) and
/// runs each machine point of fuzz::differentialMachinePoints() under both
/// cores. Along the way the oracle fills a CoverageMap, so one call yields
/// both the verdict and the feedback signal.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_ORACLE_H
#define BALSCHED_FUZZ_ORACLE_H

#include "fuzz/Configs.h"
#include "fuzz/Coverage.h"
#include "fuzz/Repro.h"
#include "lang/AST.h"
#include "sched/Exact.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bsched {
namespace fuzz {

enum class FailureKind : uint8_t {
  None,
  EvalError,          ///< the AST oracle itself rejected the program.
  CompileError,       ///< a configuration failed to compile.
  VerifierDiag,       ///< verify:: produced diagnostics.
  SchedTwinDivergence,///< fast vs reference compile output differs.
  TraceTwinDivergence,///< fast vs reference trace-scheduling output differs.
  InterpDivergence,   ///< interpreter checksum != AST eval checksum.
  SimError,           ///< a simulator run errored out.
  SimTwinDivergence,  ///< fast vs reference SimResult field mismatch.
  SimDivergence,      ///< finished sim checksum != AST eval checksum.
  OptimalityGap,      ///< fast schedule illegal, beaten beyond MaxGapPct by
                      ///< the exact solver on a closed block, or (solver
                      ///< bug) worse-than-warm-start exact output.
  EstProfileInvalid,  ///< the static profile estimate was not
                      ///< flow-conserving, not deterministic, judged a
                      ///< terminating program unfinished, or broke trace
                      ///< formation.
};

const char *failureKindName(FailureKind K);

/// One classified mismatch, localized to the configuration (and machine
/// model, for simulator failures) that exposed it.
struct Failure {
  FailureKind Kind = FailureKind::None;
  std::string ConfigTag;  ///< CompileOptions::tag() of the exposing config.
  int ConfigIndex = -1;   ///< index into the oracle's compile-config list.
  std::string MachineTag; ///< machine point, for Sim* kinds.
  std::string Detail;     ///< first differing field / diagnostic / error.
};

struct OracleOptions {
  /// Compile configurations to sweep; empty = differentialCompileConfigs().
  std::vector<driver::CompileOptions> Configs;
  /// Machine models for the simulator sweep; empty =
  /// differentialMachinePoints().
  std::vector<MachinePoint> Machines;
  /// Compile every config a second time with SchedImpl::Reference and
  /// require byte-identical output (doubles compile cost).
  bool CheckSchedTwin = true;
  /// Compile every trace-scheduling config a further time with
  /// TraceImpl::Reference (the fast scheduler core otherwise — only the
  /// trace core differs) and require byte-identical output.
  bool CheckTraceTwin = true;
  /// Run the simulator differential sweep.
  bool RunSim = true;
  /// Run the optimality-gap leg: recompile each config stopping before
  /// register allocation, then on every block the branch-and-bound solver
  /// closes (sched/Exact.h) require the fast schedule to be a legal
  /// topological order no worse than (100 + MaxGapPct)% of the proven
  /// optimum — and the solver's own order to be legal and no worse than its
  /// warm start (fast-beats-exact is a solver bug, not a scheduler finding).
  /// Off by default: it is a quality oracle, not a correctness oracle.
  bool CheckOptimalityGap = false;
  /// Run the estimated-profile leg: rebuild the module the estimator sees
  /// (same transforms + lowering + cleanup as the compile pipeline) and
  /// require trace::estimateProfile to be flow-conserving (entry = one
  /// normalized unit of EstimateEntryCount flow; per block, in-edge sum ==
  /// count == out-edge sum), deterministic across runs, Finished for these
  /// always-terminating programs, and digestible by formTraces (every block
  /// covered exactly once). Off by default for the same reason as the gap
  /// leg: it judges the estimator, not program semantics.
  bool CheckEstimatedProfile = false;
  /// Allowed fast-over-optimal excess (percent) on solver-closed blocks.
  /// The default leaves room for balanced scheduling's deliberate
  /// hit-model pessimism (load weights up to 50 under a 2-cycle hit model).
  double MaxGapPct = 100.0;
  /// Solver budgets for the gap leg; modest, since fuzzing sweeps many
  /// candidates times many configs.
  sched::exact::ExactOptions Exact{/*MaxNodes=*/32,
                                   /*MaxExpansions=*/50000};
  /// Cycle cap per simulator run; the twins must agree at the cut as well.
  uint64_t SimMaxCycles = 400000;
  /// AST-eval statement budget.
  uint64_t EvalBudget = 200000000;
  /// Stop at the first failure instead of sweeping every configuration.
  bool StopOnFirstFailure = true;
};

struct OracleRun {
  std::vector<Failure> Failures; ///< empty on a clean candidate.
  CoverageMap Cov;               ///< behavioural coverage of this candidate.

  bool clean() const { return Failures.empty(); }
};

/// Runs the full differential oracle on \p P.
OracleRun runOracle(const lang::Program &P, const OracleOptions &Opts = {});

/// Runs only the compile-side oracle for one configuration (used by the
/// reducer's predicate, where re-sweeping every config per candidate would
/// dominate reduction time). Returns the first failure, Kind==None if clean.
Failure runCompileOracle(const lang::Program &P,
                         const driver::CompileOptions &Config,
                         const OracleOptions &Opts = {});

/// Runs only the simulator twin/checksum oracle under \p Machine (compile
/// config fixed to the FuzzSim setup). Kind==None if clean.
Failure runSimOracle(const lang::Program &P, const sim::MachineConfig &Machine,
                     const std::string &MachineTag,
                     const OracleOptions &Opts = {});

/// Replays a repro file's payload: parses and checks the source, then
/// re-runs the oracle leg the repro came from (the simulator oracle under
/// machineByTag(R.MachineTag) when the tag is set, the compile oracle under
/// R.Options otherwise). Kind==None means the bug no longer reproduces —
/// the steady state tests/corpus/ asserts. Unparseable sources are reported
/// through \p Err with Kind==EvalError.
Failure replayRepro(const Repro &R, std::string &Err,
                    const OracleOptions &Opts = {});

/// First differing SimResult field between \p F and \p R rendered as
/// "field fast=X ref=Y", or "" when all fields match. Shared by the oracle
/// and the corpus replay test.
std::string diffSimResults(const sim::SimResult &F, const sim::SimResult &R);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_ORACLE_H
