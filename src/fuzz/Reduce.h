//===- fuzz/Reduce.h - Automatic test-case reduction ------------*- C++ -*-===//
///
/// \file
/// Delta debugging over kernel-language programs and compile options: given
/// a failing input and a predicate that re-checks the failure, shrink the
/// program with semantics-preserving-enough structural passes (statement
/// deletion, loop/conditional flattening, trip-count shrinking, expression
/// and declaration simplification) until no pass makes progress, then strip
/// compile-option flags the failure does not need. Every candidate must be a
/// valid program (checks, reparses, evaluates in bounds) *and* still satisfy
/// the predicate; anything else is rolled back, so the reducer can never
/// turn one bug into another.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_FUZZ_REDUCE_H
#define BALSCHED_FUZZ_REDUCE_H

#include "driver/Compiler.h"
#include "lang/AST.h"

#include <cstdint>
#include <functional>

namespace bsched {
namespace fuzz {

/// Returns true when the candidate still exhibits the failure being reduced.
using Predicate = std::function<bool(const lang::Program &)>;

/// Predicate over (program, options) for the option-stripping phase.
using OptionsPredicate =
    std::function<bool(const lang::Program &, const driver::CompileOptions &)>;

struct ReduceOptions {
  /// Fixpoint rounds over the pass list before giving up.
  int MaxPasses = 10;
  /// AST-eval statement budget for candidate validation.
  uint64_t EvalBudget = 2000000;
  /// Hard cap on predicate evaluations (an oracle call each); the reducer
  /// returns its best-so-far when the budget runs out.
  int MaxCandidates = 4000;
};

struct ReduceStats {
  int CandidatesTried = 0;
  int CandidatesAccepted = 0;
  int Passes = 0;
};

/// Shrinks \p Input while \p StillFails holds. \p Input itself is assumed to
/// fail; the result always satisfies the predicate (it is \p Input itself if
/// nothing smaller does).
lang::Program reduceProgram(const lang::Program &Input,
                            const Predicate &StillFails,
                            const ReduceOptions &Opts = {},
                            ReduceStats *Stats = nullptr);

/// Strips compile-option flags (unrolling, trace scheduling, locality,
/// estimated profile, non-default lowering/regalloc/balance settings) that
/// the failure does not need, returning the simplest options under which
/// \p StillFails still holds for \p P.
driver::CompileOptions reduceCompileOptions(const lang::Program &P,
                                            driver::CompileOptions Opts,
                                            const OptionsPredicate &StillFails,
                                            ReduceStats *Stats = nullptr);

} // namespace fuzz
} // namespace bsched

#endif // BALSCHED_FUZZ_REDUCE_H
