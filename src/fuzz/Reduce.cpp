//===- fuzz/Reduce.cpp - Automatic test-case reduction ----------------------===//

#include "fuzz/Reduce.h"

#include "fuzz/Mutate.h" // validateProgram: the same validity gate
#include "lang/Parser.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

using namespace bsched;
using namespace bsched::fuzz;
using namespace bsched::lang;

namespace {

/// Addresses one statement inside nested statement lists without pointers,
/// so a path survives copying the whole program. Each step descends from the
/// current list into child Index's sub-list (0 = For body, 1 = Then,
/// 2 = Else); the final Index names the target statement itself.
struct PathStep {
  size_t Index;
  int Branch; ///< -1 = stop here, 0 = Body, 1 = Then, 2 = Else.
};
using Path = std::vector<PathStep>;

void enumerateList(const StmtList &L, Path &Prefix, std::vector<Path> &Out) {
  for (size_t I = 0; I != L.size(); ++I) {
    Prefix.push_back({I, -1});
    Out.push_back(Prefix);
    const Stmt &S = *L[I];
    if (S.Kind == StmtKind::For) {
      Prefix.back().Branch = 0;
      enumerateList(S.Body, Prefix, Out);
    } else if (S.Kind == StmtKind::If) {
      Prefix.back().Branch = 1;
      enumerateList(S.Then, Prefix, Out);
      Prefix.back().Branch = 2;
      enumerateList(S.Else, Prefix, Out);
    }
    Prefix.pop_back();
  }
}

/// All statement paths in document order (parents before their children).
std::vector<Path> enumerateStmts(const Program &P) {
  std::vector<Path> Out;
  Path Prefix;
  enumerateList(P.Body, Prefix, Out);
  return Out;
}

/// Resolves \p Pa against \p P; returns the containing list and target
/// index, or nullptr if the path no longer exists.
StmtList *navigate(Program &P, const Path &Pa, size_t &Index) {
  StmtList *L = &P.Body;
  for (size_t S = 0; S != Pa.size(); ++S) {
    if (Pa[S].Index >= L->size())
      return nullptr;
    if (Pa[S].Branch < 0) {
      Index = Pa[S].Index;
      return L;
    }
    Stmt &St = *(*L)[Pa[S].Index];
    switch (Pa[S].Branch) {
    case 0:
      if (St.Kind != StmtKind::For)
        return nullptr;
      L = &St.Body;
      break;
    case 1:
      if (St.Kind != StmtKind::If)
        return nullptr;
      L = &St.Then;
      break;
    default:
      if (St.Kind != StmtKind::If)
        return nullptr;
      L = &St.Else;
      break;
    }
  }
  return nullptr;
}

/// Appends every name referenced anywhere in \p E to \p Out.
void collectNames(const Expr &E, std::vector<std::string> &Out) {
  if (E.Kind == ExprKind::VarRef || E.Kind == ExprKind::ArrayRef)
    Out.push_back(E.Name);
  for (const ExprPtr &A : E.Args)
    collectNames(*A, Out);
}

void collectNames(const StmtList &L, std::vector<std::string> &Out) {
  for (const StmtPtr &S : L) {
    switch (S->Kind) {
    case StmtKind::Assign:
      collectNames(*S->Lhs, Out);
      collectNames(*S->Rhs, Out);
      break;
    case StmtKind::For:
      collectNames(*S->Lo, Out);
      collectNames(*S->Hi, Out);
      collectNames(S->Body, Out);
      break;
    case StmtKind::If:
      collectNames(*S->Cond, Out);
      collectNames(S->Then, Out);
      collectNames(S->Else, Out);
      break;
    }
  }
}

class Reducer {
public:
  Reducer(lang::Program Input, const Predicate &Pred,
          const ReduceOptions &Opts, ReduceStats *Stats)
      : Best(std::move(Input)), Pred(Pred), Opts(Opts), Stats(Stats) {
    // Resolve types on the working copy so expression passes can consult
    // Expr::Ty (checkProgram is idempotent; the input already validated).
    (void)lang::checkProgram(Best);
  }

  lang::Program run() {
    for (int Round = 0; Round != Opts.MaxPasses; ++Round) {
      if (Stats)
        ++Stats->Passes;
      bool Progress = false;
      Progress |= removeStmtsPass();
      Progress |= flattenPass();
      Progress |= shrinkTripsPass();
      Progress |= simplifyExprsPass();
      Progress |= dropDeclsPass();
      Progress |= shrinkDimsPass();
      if (!Progress || !budgetLeft())
        break;
    }
    return std::move(Best);
  }

private:
  lang::Program Best;
  const Predicate &Pred;
  ReduceOptions Opts;
  ReduceStats *Stats;
  int Tried = 0;

  bool budgetLeft() const { return Tried < Opts.MaxCandidates; }

  /// Accepts \p Cand as the new Best when it is valid and still failing.
  bool accept(lang::Program &&Cand) {
    if (!budgetLeft())
      return false;
    ++Tried;
    if (Stats)
      ++Stats->CandidatesTried;
    if (!validateProgram(Cand, Opts.EvalBudget).empty())
      return false;
    if (!Pred(Cand))
      return false;
    Best = std::move(Cand);
    (void)lang::checkProgram(Best);
    if (Stats)
      ++Stats->CandidatesAccepted;
    return true;
  }

  /// Tries deleting each statement, children before parents (reverse
  /// document order keeps every remaining path valid after an acceptance).
  bool removeStmtsPass() {
    bool Any = false;
    std::vector<Path> Paths = enumerateStmts(Best);
    for (auto It = Paths.rbegin(); It != Paths.rend() && budgetLeft(); ++It) {
      lang::Program Cand = Best;
      size_t Index = 0;
      StmtList *L = navigate(Cand, *It, Index);
      if (!L)
        continue;
      L->erase(L->begin() + static_cast<ptrdiff_t>(Index));
      Any |= accept(std::move(Cand));
    }
    return Any;
  }

  /// Replaces loops with one unrolled-at-Lo copy of their body, and
  /// conditionals with one of their branches.
  bool flattenPass() {
    bool Any = false;
    std::vector<Path> Paths = enumerateStmts(Best);
    for (auto It = Paths.rbegin(); It != Paths.rend() && budgetLeft(); ++It) {
      for (int Variant = 0; Variant != 2; ++Variant) {
        lang::Program Cand = Best;
        size_t Index = 0;
        StmtList *L = navigate(Cand, *It, Index);
        if (!L)
          break;
        Stmt &S = *(*L)[Index];
        StmtList Repl;
        if (S.Kind == StmtKind::For && Variant == 0) {
          Repl = cloneList(S.Body);
          for (StmtPtr &B : Repl)
            replaceVarRefs(*B, S.LoopVar, *S.Lo);
        } else if (S.Kind == StmtKind::If) {
          Repl = cloneList(Variant == 0 ? S.Then : S.Else);
          if (Repl.empty() && Variant == 1)
            continue; // dropping to an empty Else is removeStmts' job
        } else {
          continue;
        }
        L->erase(L->begin() + static_cast<ptrdiff_t>(Index));
        L->insert(L->begin() + static_cast<ptrdiff_t>(Index),
                  std::make_move_iterator(Repl.begin()),
                  std::make_move_iterator(Repl.end()));
        if (accept(std::move(Cand))) {
          Any = true;
          break;
        }
      }
    }
    return Any;
  }

  /// Shrinks literal trip counts: first to a single iteration, else halved.
  bool shrinkTripsPass() {
    bool Any = false;
    std::vector<Path> Paths = enumerateStmts(Best);
    for (auto It = Paths.rbegin(); It != Paths.rend() && budgetLeft(); ++It) {
      size_t Index = 0;
      StmtList *L0 = navigate(Best, *It, Index);
      if (!L0)
        continue;
      const Stmt &S0 = *(*L0)[Index];
      if (S0.Kind != StmtKind::For || S0.Lo->Kind != ExprKind::IntLit ||
          S0.Hi->Kind != ExprKind::IntLit)
        continue;
      int64_t Lo = S0.Lo->IntVal, Hi = S0.Hi->IntVal;
      for (int64_t NewHi :
           {Lo + S0.Step, Lo + (Hi - Lo) / 2, Lo + 2 * S0.Step}) {
        if (NewHi >= Hi || NewHi <= Lo || !budgetLeft())
          continue;
        lang::Program Cand = Best;
        StmtList *L = navigate(Cand, *It, Index);
        if (!L)
          break;
        (*L)[Index]->Hi = intLit(NewHi);
        if (accept(std::move(Cand))) {
          Any = true;
          break;
        }
      }
    }
    return Any;
  }

  /// Replaces assignment right-hand sides with a literal or one of their
  /// operands, and zeroes array subscripts, statement by statement.
  bool simplifyExprsPass() {
    bool Any = false;
    std::vector<Path> Paths = enumerateStmts(Best);
    for (auto It = Paths.rbegin(); It != Paths.rend() && budgetLeft(); ++It) {
      size_t Index = 0;
      StmtList *L0 = navigate(Best, *It, Index);
      if (!L0 || (*L0)[Index]->Kind != StmtKind::Assign)
        continue;
      const Stmt &S0 = *(*L0)[Index];
      // Candidate right-hand sides, simplest first.
      std::vector<ExprPtr> Rhss;
      if (S0.Rhs->Kind != ExprKind::FpLit &&
          S0.Rhs->Kind != ExprKind::IntLit)
        Rhss.push_back(S0.Rhs->Ty == Type::Fp ? fpLit(1.0) : intLit(1));
      if (S0.Rhs->Kind == ExprKind::Binary)
        for (const ExprPtr &Arg : S0.Rhs->Args)
          if (Arg->Ty == S0.Rhs->Ty)
            Rhss.push_back(Arg->clone());
      bool Replaced = false;
      for (ExprPtr &NewRhs : Rhss) {
        if (!budgetLeft())
          break;
        lang::Program Cand = Best;
        StmtList *L = navigate(Cand, *It, Index);
        if (!L)
          break;
        (*L)[Index]->Rhs = std::move(NewRhs);
        if (accept(std::move(Cand))) {
          Any = Replaced = true;
          break;
        }
      }
      if (Replaced || !budgetLeft())
        continue;
      // Zero every subscript in the statement (one combined candidate).
      lang::Program Cand = Best;
      StmtList *L = navigate(Cand, *It, Index);
      if (!L)
        continue;
      bool Zeroed = false;
      std::function<void(Expr &)> Zero = [&](Expr &E) {
        for (ExprPtr &A : E.Args)
          Zero(*A);
        if (E.Kind == ExprKind::ArrayRef)
          for (ExprPtr &A : E.Args)
            if (A->Kind != ExprKind::IntLit || A->IntVal != 0) {
              A = intLit(0);
              Zeroed = true;
            }
      };
      Zero(*(*L)[Index]->Lhs);
      Zero(*(*L)[Index]->Rhs);
      if (Zeroed)
        Any |= accept(std::move(Cand));
    }
    return Any;
  }

  /// Drops declarations nothing references (arrays and scalars).
  bool dropDeclsPass() {
    bool Any = false;
    for (bool Progress = true; Progress && budgetLeft();) {
      Progress = false;
      std::vector<std::string> Used;
      collectNames(Best.Body, Used);
      auto IsUsed = [&Used](const std::string &N) {
        return std::find(Used.begin(), Used.end(), N) != Used.end();
      };
      for (size_t K = 0; K != Best.Arrays.size() && budgetLeft(); ++K) {
        if (IsUsed(Best.Arrays[K].Name))
          continue;
        lang::Program Cand = Best;
        Cand.Arrays.erase(Cand.Arrays.begin() + static_cast<ptrdiff_t>(K));
        if (accept(std::move(Cand))) {
          Any = Progress = true;
          break;
        }
      }
      for (size_t K = 0; K != Best.Vars.size() && budgetLeft(); ++K) {
        if (IsUsed(Best.Vars[K].Name))
          continue;
        lang::Program Cand = Best;
        Cand.Vars.erase(Cand.Vars.begin() + static_cast<ptrdiff_t>(K));
        if (accept(std::move(Cand))) {
          Any = Progress = true;
          break;
        }
      }
    }
    return Any;
  }

  /// Shrinks array extents (toward 8, then halving).
  bool shrinkDimsPass() {
    bool Any = false;
    for (size_t K = 0; K != Best.Arrays.size(); ++K) {
      for (size_t D = 0; D != Best.Arrays[K].Dims.size(); ++D) {
        int64_t Cur = Best.Arrays[K].Dims[D];
        for (int64_t New : {static_cast<int64_t>(8), Cur / 2}) {
          if (New <= 0 || New >= Cur || !budgetLeft())
            continue;
          lang::Program Cand = Best;
          Cand.Arrays[K].Dims[D] = New;
          if (accept(std::move(Cand))) {
            Any = true;
            break;
          }
        }
      }
    }
    return Any;
  }
};

} // namespace

lang::Program fuzz::reduceProgram(const lang::Program &Input,
                                  const Predicate &StillFails,
                                  const ReduceOptions &Opts,
                                  ReduceStats *Stats) {
  return Reducer(Input, StillFails, Opts, Stats).run();
}

driver::CompileOptions
fuzz::reduceCompileOptions(const lang::Program &P, driver::CompileOptions Opts,
                           const OptionsPredicate &StillFails,
                           ReduceStats *Stats) {
  const driver::CompileOptions Defaults;
  // Candidate simplifications toward the default configuration, applied
  // greedily while the failure persists. Two rounds: stripping one flag can
  // unlock stripping another.
  using Tweak = std::function<void(driver::CompileOptions &)>;
  const Tweak Tweaks[] = {
      [&](driver::CompileOptions &O) { O.UnrollFactor = 1; },
      [&](driver::CompileOptions &O) { O.TraceScheduling = false; },
      [&](driver::CompileOptions &O) { O.UseEstimatedProfile = false; },
      [&](driver::CompileOptions &O) { O.LocalityAnalysis = false; },
      [&](driver::CompileOptions &O) { O.Scheduler = Defaults.Scheduler; },
      [&](driver::CompileOptions &O) { O.CleanupIR = Defaults.CleanupIR; },
      [&](driver::CompileOptions &O) { O.Lower = Defaults.Lower; },
      [&](driver::CompileOptions &O) { O.RegAlloc = Defaults.RegAlloc; },
      [&](driver::CompileOptions &O) {
        sched::SchedImpl Impl = O.Balance.Impl;
        O.Balance = Defaults.Balance;
        O.Balance.Impl = Impl;
      },
  };
  for (int Round = 0; Round != 2; ++Round) {
    for (const Tweak &T : Tweaks) {
      driver::CompileOptions Cand = Opts;
      T(Cand);
      if (Stats)
        ++Stats->CandidatesTried;
      if (StillFails(P, Cand)) {
        Opts = Cand;
        if (Stats)
          ++Stats->CandidatesAccepted;
      }
    }
  }
  return Opts;
}
