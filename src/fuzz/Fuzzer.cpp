//===- fuzz/Fuzzer.cpp - Coverage-guided differential fuzzing loop ---------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Reduce.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>

using namespace bsched;
using namespace bsched::fuzz;

namespace {

uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Seed of the RNG stream for global job index \p Index. A pure function of
/// (campaign seed, job index), so a job's behaviour never depends on which
/// worker thread picks it up or in what order.
uint64_t jobSeed(uint64_t CampaignSeed, uint64_t Index) {
  return mix64(CampaignSeed ^ mix64(Index ^ 0x51ed2701cba93ull));
}

struct JobResult {
  lang::Program P;
  OracleRun Run;
  MutationCounts Mutations;
  bool Mutated = false; ///< at least one mutation step succeeded.
};

/// One fuzz job: pick a parent from the round-start corpus snapshot (or
/// generate fresh), mutate, run the oracle. Pure function of the job seed
/// and the snapshot.
JobResult runJob(uint64_t Seed, const std::vector<lang::Program> &Corpus,
                 const FuzzOptions &Opts) {
  RNG Rng(Seed);
  JobResult R;
  const bool Fresh =
      Corpus.empty() || Rng.nextBool(Opts.FreshProgramChance);
  if (Fresh) {
    R.P = lang::generateProgram(Rng.next(), Opts.Generate);
    R.Mutated = true; // a fresh program is always a candidate.
  } else {
    R.P = Corpus[Rng.nextBelow(Corpus.size())];
  }
  const int Steps =
      1 + static_cast<int>(Rng.nextBelow(
              static_cast<uint64_t>(std::max(1, Opts.MutationsPerJob))));
  for (int I = 0; I != Steps; ++I)
    if (mutateProgram(R.P, Rng, Opts.Mutate, &R.Mutations))
      R.Mutated = true;
  R.Run = runOracle(R.P, Opts.Oracle);
  return R;
}

/// Key for failure deduplication: one reduction per (kind, config, machine)
/// signature per campaign, so a systematic bug does not trigger hundreds of
/// identical reductions.
std::string failureKey(const Failure &F) {
  return std::string(failureKindName(F.Kind)) + "|" + F.ConfigTag + "|" +
         F.MachineTag;
}

bool isSimKind(FailureKind K) {
  return K == FailureKind::SimError || K == FailureKind::SimTwinDivergence ||
         K == FailureKind::SimDivergence;
}

} // namespace

FuzzReport fuzz::runFuzzer(const FuzzOptions &Opts, std::ostream *Log) {
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  FuzzReport Report;
  CoverageMap Global;
  std::vector<lang::Program> Corpus;
  std::set<std::string> SeenFailures;
  int ReproFileNo = 0;

  const std::vector<driver::CompileOptions> Configs =
      Opts.Oracle.Configs.empty() ? differentialCompileConfigs()
                                  : Opts.Oracle.Configs;

  if (!Opts.CorpusDir.empty())
    std::filesystem::create_directories(Opts.CorpusDir);

  // Collects a job's results into the campaign state. Called on the main
  // thread in job-index order, which is what makes parallel runs
  // deterministic.
  auto Merge = [&](JobResult &J, bool ForceKeep) {
    ++Report.Iterations;
    for (int K = 0; K != NumMutationKinds; ++K)
      Report.Mutations.Applied[K] += J.Mutations.Applied[K];
    Report.Mutations.Rejected += J.Mutations.Rejected;

    const size_t NewBits = Global.merge(J.Run.Cov);
    const bool Keep = ForceKeep || (J.Mutated && NewBits > 0);

    for (Failure &F : J.Run.Failures) {
      const std::string Key = failureKey(F);
      if (!SeenFailures.insert(Key).second)
        continue; // already reduced an instance of this signature.

      const lang::Program &Culprit = J.P;
      FailureRecord Rec;
      Rec.Fail = F;
      Rec.OriginalSource = lang::printProgram(Culprit);

      // Re-check predicate for the reducer, scoped to the failing leg so a
      // reduction step costs one compile (or one sim pair), not a full
      // oracle sweep.
      lang::Program Reduced = Culprit;
      driver::CompileOptions ReducedOpts;
      ReduceOptions ROpts;
      if (Opts.ReduceFailures && isSimKind(F.Kind)) {
        const sim::MachineConfig M = machineByTag(F.MachineTag);
        const FailureKind Want = F.Kind;
        const std::string Tag = F.MachineTag;
        const OracleOptions &OO = Opts.Oracle;
        Reduced = reduceProgram(
            Culprit,
            [&](const lang::Program &P) {
              return runSimOracle(P, M, Tag, OO).Kind == Want;
            },
            ROpts);
      } else if (Opts.ReduceFailures && F.Kind != FailureKind::EvalError &&
                 F.ConfigIndex >= 0 &&
                 static_cast<size_t>(F.ConfigIndex) < Configs.size()) {
        const driver::CompileOptions &Cfg = Configs[F.ConfigIndex];
        ReducedOpts = Cfg;
        const FailureKind Want = F.Kind;
        const OracleOptions &OO = Opts.Oracle;
        Reduced = reduceProgram(
            Culprit,
            [&](const lang::Program &P) {
              return runCompileOracle(P, Cfg, OO).Kind == Want;
            },
            ROpts);
        ReducedOpts = reduceCompileOptions(
            Reduced, Cfg,
            [&](const lang::Program &P, const driver::CompileOptions &O) {
              return runCompileOracle(P, O, OO).Kind == Want;
            });
      } else if (F.ConfigIndex >= 0 &&
                 static_cast<size_t>(F.ConfigIndex) < Configs.size()) {
        ReducedOpts = Configs[F.ConfigIndex];
      }

      Rec.Reduced.Kind = failureKindName(F.Kind);
      Rec.Reduced.Detail = F.Detail;
      Rec.Reduced.MachineTag = F.MachineTag;
      Rec.Reduced.Options = ReducedOpts;
      Rec.Reduced.Source = lang::printProgram(Reduced);

      if (!Opts.CorpusDir.empty()) {
        std::string Name = std::string("repro-") +
                           std::to_string(ReproFileNo++) + "-" +
                           failureKindName(F.Kind) + ".repro";
        std::filesystem::path Path =
            std::filesystem::path(Opts.CorpusDir) / Name;
        std::ofstream Out(Path);
        Out << writeRepro(Rec.Reduced);
        Rec.FilePath = Path.string();
      }
      if (Log) {
        *Log << "FAILURE " << failureKindName(F.Kind) << " config='"
             << F.ConfigTag << "'";
        if (!F.MachineTag.empty())
          *Log << " machine=" << F.MachineTag;
        *Log << "\n  " << F.Detail << "\n";
        if (!Rec.FilePath.empty())
          *Log << "  repro: " << Rec.FilePath << "\n";
      }
      Report.Failures.push_back(std::move(Rec));
    }

    if (Keep && Corpus.size() < Opts.MaxCorpus)
      Corpus.push_back(std::move(J.P));
  };

  ThreadPool Pool(Opts.Threads);

  // Round 0: oracle the generator-seeded corpus. Every seed is kept (they
  // are the diversity baseline the mutator walks outward from).
  {
    const size_t N = static_cast<size_t>(std::max(1, Opts.InitialSeeds));
    std::vector<JobResult> Results(N);
    for (size_t I = 0; I != N; ++I)
      Pool.submit([&Results, &Opts, I] {
        RNG Rng(jobSeed(Opts.Seed, I));
        JobResult R;
        R.P = lang::generateProgram(Rng.next(), Opts.Generate);
        R.Mutated = true;
        R.Run = runOracle(R.P, Opts.Oracle);
        Results[I] = std::move(R);
      });
    Pool.wait();
    for (JobResult &R : Results)
      Merge(R, /*ForceKeep=*/true);
    if (Log && Opts.Verbose)
      *Log << "seed    " << std::setw(6) << Report.Iterations << " iters  "
           << "corpus " << std::setw(4) << Corpus.size() << "  coverage "
           << Global.bitsSet() << "  " << std::fixed << std::setprecision(1)
           << Elapsed() << "s\n";
  }

  // Mutation rounds. Job inputs are fixed at the round boundary (corpus
  // snapshot + per-index seeds), so execution order within a round cannot
  // affect the outcome; the time budget only decides how many rounds run.
  uint64_t NextJobIndex = static_cast<uint64_t>(std::max(1, Opts.InitialSeeds));
  for (int Round = 0;; ++Round) {
    if (Opts.Rounds > 0 && Round >= Opts.Rounds)
      break;
    if (Opts.Rounds <= 0 && Opts.Seconds > 0 && Elapsed() >= Opts.Seconds)
      break;
    if (Opts.Rounds <= 0 && Opts.Seconds <= 0)
      break; // no budget at all: run only the seed round.

    const size_t N = static_cast<size_t>(std::max(1, Opts.JobsPerRound));
    const size_t PrevBits = Global.bitsSet();
    std::vector<JobResult> Results(N);
    for (size_t I = 0; I != N; ++I) {
      const uint64_t Seed = jobSeed(Opts.Seed, NextJobIndex + I);
      Pool.submit([&Results, &Corpus, &Opts, Seed, I] {
        Results[I] = runJob(Seed, Corpus, Opts);
      });
    }
    Pool.wait();
    NextJobIndex += N;
    for (JobResult &R : Results)
      Merge(R, /*ForceKeep=*/false);

    Report.RoundsRun = Round + 1;
    if (Log && Opts.Verbose)
      *Log << "round " << std::setw(3) << Round << " " << std::setw(6)
           << Report.Iterations << " iters  corpus " << std::setw(4)
           << Corpus.size() << "  coverage " << Global.bitsSet() << " (+"
           << (Global.bitsSet() - PrevBits) << ")  failures "
           << Report.Failures.size() << "  " << std::fixed
           << std::setprecision(1) << Elapsed() << "s\n";
  }

  Report.CorpusSize = Corpus.size();
  Report.CoverageBits = Global.bitsSet();
  return Report;
}
