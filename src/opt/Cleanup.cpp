//===- opt/Cleanup.cpp - IR cleanup: copyprop, constfold, DCE --------------===//
//
// The fast path is a worklist-driven fixpoint. A modification clock stamps
// every block a pass touches; the block-local passes (copy propagation,
// constant folding) re-run only on blocks modified since their last visit,
// and the global passes (hoisting, DCE) skip a round entirely when nothing
// anywhere changed since they last ran — both are sound because every pass
// is a deterministic function of the code it reads, so a re-run on
// unchanged input is a guaranteed no-op. Liveness comes from an incremental
// ir::LivenessTracker fed exactly the touched blocks, natural loops are
// discovered once per cleanup (the CFG is static: passes rewrite operands
// and delete instructions, never terminator targets), and per-instruction
// bookkeeping is kept O(1) in dense, timestamp-validated vectors.
//
// The original map-based, recompute-everything passes are preserved below
// (reference*) as the compile-throughput baseline; both versions make
// identical decisions and the golden-schedule tests pin the output.
//
//===----------------------------------------------------------------------===//

#include "opt/Cleanup.h"

#include "ir/CFG.h"
#include "ir/Liveness.h"
#include "support/BitVec.h"

#include <cstring>
#include <map>
#include <vector>

using namespace bsched;
using namespace bsched::opt;
using namespace bsched::ir;

namespace {

bool foldBinaryToConstant(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  switch (Op) {
  case Opcode::IAdd: Out = A + B; return true;
  case Opcode::ISub: Out = A - B; return true;
  case Opcode::IMul: Out = A * B; return true;
  case Opcode::Sll: Out = A << (B & 63); return true;
  case Opcode::Srl:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
    return true;
  case Opcode::And: Out = A & B; return true;
  case Opcode::Or: Out = A | B; return true;
  case Opcode::Xor: Out = A ^ B; return true;
  case Opcode::CmpEq: Out = A == B ? 1 : 0; return true;
  case Opcode::CmpLt: Out = A < B ? 1 : 0; return true;
  case Opcode::CmpLe: Out = A <= B ? 1 : 0; return true;
  default: return false;
  }
}

/// Pure, hoistable operation: no memory access, no control flow, and no
/// read of its own destination (conditional moves read Dst).
bool isHoistableOp(const Instr &I) {
  if (I.isMem() || I.isTerminator())
    return false;
  if (I.Op == Opcode::CMov || I.Op == Opcode::FCMov)
    return false;
  return I.def().isValid();
}

bool hasSideEffects(const Instr &I) {
  return I.isStore() || I.isTerminator();
}

//===----------------------------------------------------------------------===//
// Fast worklist-driven cleanup
//===----------------------------------------------------------------------===//

/// One cleanup fixpoint over a function. State lives for the whole fixpoint:
/// the modification clock, per-block visit stamps, the liveness tracker, the
/// natural loops (computed once — the CFG never changes under cleanup), and
/// the dense fact arrays the block-local passes validate by timestamp.
class FastCleanup {
public:
  explicit FastCleanup(Function &F) : F(F) {
    unsigned NumRegs = F.numRegs();
    size_t NumBlocks = F.Blocks.size();
    // Clock 1 with stamps 0 makes every block "modified" for the first
    // round of each pass.
    LastMod.assign(NumBlocks, 1);
    LastCopyRun.assign(NumBlocks, 0);
    LastFoldRun.assign(NumBlocks, 0);
    DefTime.assign(NumRegs, 0);
    CopyTime.assign(NumRegs, 0);
    CopySrc.assign(NumRegs, Reg());
    KnownTime.assign(NumRegs, 0);
    KnownVal.assign(NumRegs, 0);
  }

  int runCopyProp(CleanupStats &S) {
    int Total = 0;
    for (BasicBlock &B : F.Blocks) {
      if (LastCopyRun[B.Id] >= LastMod[B.Id]) {
        ++S.BlocksSkipped; // unchanged since the last visit: re-run is a no-op
        continue;
      }
      uint64_t RunAt = Clock;
      int P = copyPropBlock(B);
      LastCopyRun[B.Id] = RunAt; // pre-touch, so a self-modified block re-runs
      if (P > 0)
        touch(B.Id);
      Total += P;
    }
    return Total;
  }

  int runFold(CleanupStats &S) {
    int Total = 0;
    for (BasicBlock &B : F.Blocks) {
      if (LastFoldRun[B.Id] >= LastMod[B.Id]) {
        ++S.BlocksSkipped;
        continue;
      }
      uint64_t RunAt = Clock;
      int C = foldBlock(B);
      LastFoldRun[B.Id] = RunAt;
      if (C > 0)
        touch(B.Id);
      Total += C;
    }
    return Total;
  }

  int runHoist() {
    // The whole pass depends on global liveness, so it can only be skipped
    // when nothing at all changed since its last complete run — which is
    // exactly the steady-state round that ends the fixpoint.
    if (HoistRan && LastHoistClock == Clock)
      return 0;
    uint64_t ClockAtStart = Clock;
    if (!LoopsComputed) {
      Loops = findNaturalLoops(F);
      LoopsComputed = true;
    }
    int Hoisted = Loops.empty() ? 0 : hoistBody();
    HoistRan = true;
    LastHoistClock = ClockAtStart;
    return Hoisted;
  }

  int runDce(CleanupStats &S) {
    if (DceRan && LastDceClock == Clock)
      return 0;
    uint64_t ClockAtStart = Clock;
    int Removed = dceBody(S);
    DceRan = true;
    LastDceClock = ClockAtStart;
    return Removed;
  }

  void exportStats(CleanupStats &S) const {
    S.LivenessFullComputes = Live.FullComputes;
    S.LivenessIncrementalUpdates = Live.IncrementalUpdates;
  }

private:
  /// Record that \p B's instructions changed: bump the clock, stamp the
  /// block, and queue it for the next liveness refresh.
  void touch(int B) {
    LastMod[B] = ++Clock;
    Live.markDirty(B);
  }

  /// Liveness for the function's current state (computed on first demand,
  /// incrementally refreshed from the touched blocks afterwards).
  LivenessTracker &live() {
    Live.refresh(F);
    return Live;
  }

  /// Dense copy propagation over one block. A fact "R is a copy of
  /// CopySrc[R]" recorded at time CopyTime[R] is valid iff it was recorded
  /// after BlockStart and after both registers' latest definitions — so a
  /// definition of either register (or a stale fact from a previously
  /// visited block) invalidates it implicitly, with no erase-by-value scan.
  int copyPropBlock(BasicBlock &B) {
    int Propagated = 0;
    uint32_t BlockStart = Time;
    auto Rewrite = [&](Reg &R) {
      if (!R.isValid())
        return;
      uint32_t T = CopyTime[R.Id];
      if (T > BlockStart && T >= DefTime[R.Id] &&
          T > DefTime[CopySrc[R.Id].Id]) {
        R = CopySrc[R.Id];
        ++Propagated;
      }
    };

    for (Instr &I : B.Instrs) {
      ++Time;
      // Conditional moves also *read* Dst; never rewrite their Dst.
      Rewrite(I.SrcA);
      Rewrite(I.SrcB);
      Rewrite(I.SrcC);
      Rewrite(I.Base);

      if (Reg D = I.def(); D.isValid()) {
        DefTime[D.Id] = Time;
        if ((I.Op == Opcode::Mov || I.Op == Opcode::FMov) && I.SrcA != D) {
          CopyTime[D.Id] = Time;
          CopySrc[D.Id] = I.SrcA;
        }
      }
    }
    return Propagated;
  }

  /// Dense constant folding over one block, timestamp-validated like
  /// copyPropBlock: "R holds KnownVal[R]" is valid iff recorded in this
  /// block at or after R's latest definition.
  int foldBlock(BasicBlock &B) {
    int Folded = 0;
    uint32_t BlockStart = Time;
    auto Lookup = [&](Reg R, int64_t &Out) {
      if (!R.isValid())
        return false;
      uint32_t T = KnownTime[R.Id];
      if (T > BlockStart && T >= DefTime[R.Id]) {
        Out = KnownVal[R.Id];
        return true;
      }
      return false;
    };

    for (Instr &I : B.Instrs) {
      ++Time;
      int64_t V;
      // Literalize a constant SrcB of an operate instruction.
      if (I.SrcB.isValid() && opInfo(I.Op).SrcBImmOk && Lookup(I.SrcB, V)) {
        I.SrcB = Reg();
        I.Imm = V;
        I.HasImm = true;
        ++Folded;
      }
      // Fold a fully constant operation into an immediate load.
      if (I.HasImm && I.SrcA.isValid() && opInfo(I.Op).SrcBImmOk) {
        int64_t Out;
        if (Lookup(I.SrcA, V) && foldBinaryToConstant(I.Op, V, I.Imm, Out)) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = Out;
          I.HasImm = true;
          ++Folded;
        }
      }
      // Mov of a constant becomes an immediate load.
      if (I.Op == Opcode::Mov && Lookup(I.SrcA, V)) {
        Reg D = I.Dst;
        I = Instr();
        I.Op = Opcode::LdI;
        I.Dst = D;
        I.Imm = V;
        I.HasImm = true;
        ++Folded;
      }

      if (Reg D = I.def(); D.isValid()) {
        DefTime[D.Id] = Time;
        if (I.Op == Opcode::LdI) {
          KnownTime[D.Id] = Time;
          KnownVal[D.Id] = I.Imm;
        }
      }
    }
    return Folded;
  }

  int hoistBody() {
    int Hoisted = 0;
    std::vector<Reg> &Uses = UsesScratch;
    // Dense def counts per loop, reset via epoch stamps (one epoch per
    // loop), persisted across rounds.
    if (LoopDefs.empty()) {
      LoopDefs.assign(F.numRegs(), 0);
      DefEpoch.assign(F.numRegs(), 0);
    }
    if (LoopScanClock.empty()) {
      LoopScanClock.assign(Loops.size(), 0);
      LoopUsedLive.assign(Loops.size(), 0);
      LoopLiveVer.assign(Loops.size(), 0);
    }

    for (size_t LI = 0; LI != Loops.size(); ++LI) {
      const NaturalLoop &Loop = Loops[LI];
      if (Loop.Preheader < 0)
        continue;
      BasicBlock &Pre = F.Blocks[Loop.Preheader];

      // Liveness frozen at this loop's scan start. The first demand always
      // precedes the first hoist of the loop (a hoist must pass the
      // liveness checks), so the refresh sees the un-mutated function; later
      // demands in the same scan reuse it rather than observing the
      // half-moved state between a member-block rebuild and the preheader
      // install — the exact caching discipline of the reference twin.
      bool LiveFresh = false;
      auto LQ = [&]() -> LivenessTracker & {
        if (!LiveFresh) {
          Live.refresh(F);
          LiveFresh = true;
        }
        return Live;
      };

      // Successors of the preheader other than the header (the zero-trip
      // path); needed by both the skip check and the scan.
      std::vector<int> OtherSuccs;
      for (int S : Pre.successors())
        if (S != Loop.Header)
          OtherSuccs.push_back(S);

      // Per-loop skip. The scan's decisions are a pure function of the
      // member blocks, the preheader (guard reads), and the liveness rows
      // of the header and the zero-trip successors. If no member or the
      // preheader changed since the loop's last zero-hoist scan, a rerun
      // can only decide differently through those liveness rows — and if
      // the previous scan never got far enough to consult liveness, not
      // even through them.
      if (LoopScanClock[LI] != 0) {
        uint64_t MaxMod = LastMod[Loop.Preheader];
        for (size_t B = 0; B != F.Blocks.size(); ++B)
          if (Loop.Contains[B] && LastMod[B] > MaxMod)
            MaxMod = LastMod[B];
        if (MaxMod <= LoopScanClock[LI]) {
          if (!LoopUsedLive[LI])
            continue; // decisions did not depend on liveness: exact rerun
          // Refreshing here is what the first in-scan demand would do
          // anyway (the function is unchanged in between), so parity with
          // the lazy discipline is preserved whether we skip or not.
          LivenessTracker &L = LQ();
          uint64_t LV = L.rowVersion(Loop.Header);
          for (int S : OtherSuccs)
            LV += L.rowVersion(S); // versions are monotone: sum equal
                                   // iff every row version is equal
          if (LV == LoopLiveVer[LI])
            continue;
        }
      }
      int HoistedBefore = Hoisted;

      // Registers defined anywhere in the loop, with def counts.
      ++Epoch;
      auto DefCountOf = [&](uint32_t Id) {
        return DefEpoch[Id] == Epoch ? LoopDefs[Id] : 0;
      };
      for (size_t B = 0; B != F.Blocks.size(); ++B) {
        if (!Loop.Contains[B])
          continue;
        for (const Instr &I : F.Blocks[B].Instrs)
          if (Reg D = I.def(); D.isValid()) {
            if (DefEpoch[D.Id] != Epoch) {
              DefEpoch[D.Id] = Epoch;
              LoopDefs[D.Id] = 0;
            }
            ++LoopDefs[D.Id];
          }
      }

      // Registers the preheader's terminator reads (must not be clobbered
      // by a hoisted def inserted before it).
      Uses.clear();
      Pre.terminator().appendUses(Uses);
      std::vector<Reg> GuardReads = Uses;

      std::vector<Instr> HoistedInstrs;
      for (size_t B = 0; B != F.Blocks.size(); ++B) {
        if (!Loop.Contains[B])
          continue;
        // Decision pass first; the block is only rewritten when something
        // actually hoists (most loop scans hoist nothing).
        DeadIdx.clear(); // reused as the hoisted-index scratch
        for (size_t K = 0; K != F.Blocks[B].Instrs.size(); ++K) {
          Instr &I = F.Blocks[B].Instrs[K];
          // All conditions must hold, so the liveness-dependent ones run
          // last (same decisions, but liveness is only refreshed when a
          // candidate gets that far).
          bool Hoist = isHoistableOp(I);
          Reg D = I.def();
          if (Hoist && DefCountOf(D.Id) != 1)
            Hoist = false; // several defs in the loop: not invariant
          if (Hoist)
            for (Reg R : GuardReads)
              if (R == D)
                Hoist = false; // would clobber the guard's operand
          if (Hoist) {
            Uses.clear();
            I.appendUses(Uses);
            for (Reg R : Uses)
              if (DefCountOf(R.Id) > 0)
                Hoist = false; // operand varies within the loop
          }
          if (Hoist && LQ().isLiveIn(Loop.Header, D))
            Hoist = false; // a loop path reads the pre-loop value first
          if (Hoist)
            for (int S : OtherSuccs)
              if (LQ().isLiveIn(S, D))
                Hoist = false; // zero-trip path needs the old value
          if (Hoist) {
            DeadIdx.push_back(K);
            ++Hoisted;
          }
        }
        if (DeadIdx.empty())
          continue;
        // Move the hoisted instructions out (ascending, preserving program
        // order in the preheader) and compact the survivors in place.
        std::vector<Instr> &Instrs = F.Blocks[B].Instrs;
        size_t Put = DeadIdx.front(), NextH = 0;
        for (size_t K = Put; K != Instrs.size(); ++K) {
          if (NextH != DeadIdx.size() && DeadIdx[NextH] == K) {
            HoistedInstrs.push_back(std::move(Instrs[K]));
            ++NextH;
            continue;
          }
          Instrs[Put++] = std::move(Instrs[K]);
        }
        Instrs.resize(Put);
        touch(static_cast<int>(B));
      }
      if (!HoistedInstrs.empty()) {
        Pre.Instrs.insert(Pre.Instrs.end() - 1,
                          std::make_move_iterator(HoistedInstrs.begin()),
                          std::make_move_iterator(HoistedInstrs.end()));
        // The next liveness consultation — this loop nest or a later pass —
        // folds the touched blocks in incrementally; same answers as the
        // reference's eager full recompute.
        touch(Loop.Preheader);
      }

      if (Hoisted == HoistedBefore) {
        // A zero-hoist scan touches nothing, so Clock is still the value
        // from the scan's entry; any later modification stamps past it.
        LoopScanClock[LI] = Clock;
        LoopUsedLive[LI] = LiveFresh ? 1 : 0;
        if (LiveFresh) {
          uint64_t LV = Live.rowVersion(Loop.Header);
          for (int S : OtherSuccs)
            LV += Live.rowVersion(S);
          LoopLiveVer[LI] = LV;
        }
      } else {
        LoopScanClock[LI] = 0; // the loop changed under us: always rescan
      }
    }
    return Hoisted;
  }

  int dceBody(CleanupStats &S) {
    LivenessTracker &L = live();
    size_t W = L.words();
    int Removed = 0;
    std::vector<Reg> &Uses = UsesScratch;
    if (DceVisitMod.empty()) {
      DceVisitMod.assign(F.Blocks.size(), 0);
      DceVisitVer.assign(F.Blocks.size(), 0);
    }
    for (BasicBlock &B : F.Blocks) {
      // The removal decisions are a pure function of the block's
      // instructions and its live-out row; when neither moved since the
      // last visit, that visit already removed everything removable.
      if (LastMod[B.Id] <= DceVisitMod[B.Id] &&
          L.rowVersion(B.Id) == DceVisitVer[B.Id]) {
        ++S.BlocksSkipped;
        continue;
      }
      DceVisitMod[B.Id] = LastMod[B.Id]; // pre-scan: a removal re-arms it
      DceVisitVer[B.Id] = L.rowVersion(B.Id);
      // Working copy of the block's live-out row, walked backwards. The
      // decision pass only marks; the steady-state rounds (no dead code
      // anywhere) then never move an instruction.
      LiveRow.assign(L.liveOutRow(B.Id), L.liveOutRow(B.Id) + W);
      DeadIdx.clear();
      for (size_t K = B.Instrs.size(); K-- > 0;) {
        Instr &I = B.Instrs[K];
        Reg D = I.def();
        bool Dead = !hasSideEffects(I) && D.isValid() &&
                    !((LiveRow[D.Id / 64] >> (D.Id % 64)) & 1);
        if (Dead) {
          DeadIdx.push_back(K);
          continue;
        }
        if (D.isValid())
          LiveRow[D.Id / 64] &= ~(1ull << (D.Id % 64));
        Uses.clear();
        I.appendUses(Uses);
        for (Reg R : Uses)
          LiveRow[R.Id / 64] |= 1ull << (R.Id % 64);
      }
      if (DeadIdx.empty())
        continue;
      // Stable in-place compaction over the survivors. DeadIdx is in
      // descending index order, so walk it from the back.
      size_t Put = DeadIdx.back(), NextDead = DeadIdx.size() - 1;
      for (size_t K = Put; K != B.Instrs.size(); ++K) {
        if (NextDead != size_t(-1) && DeadIdx[NextDead] == K) {
          NextDead = NextDead == 0 ? size_t(-1) : NextDead - 1;
          continue;
        }
        B.Instrs[Put++] = std::move(B.Instrs[K]);
      }
      B.Instrs.resize(Put);
      touch(B.Id);
      Removed += static_cast<int>(DeadIdx.size());
    }
    return Removed;
  }

  Function &F;
  LivenessTracker Live;

  std::vector<NaturalLoop> Loops;
  bool LoopsComputed = false;

  // Worklist bookkeeping: Clock advances on every block modification.
  uint64_t Clock = 1;
  std::vector<uint64_t> LastMod, LastCopyRun, LastFoldRun;
  uint64_t LastHoistClock = 0, LastDceClock = 0;
  bool HoistRan = false, DceRan = false;

  // Block-local pass facts, timestamp-validated (see copyPropBlock).
  uint32_t Time = 0;
  std::vector<uint32_t> DefTime, CopyTime, KnownTime;
  std::vector<Reg> CopySrc;
  std::vector<int64_t> KnownVal;

  // Hoisting scratch.
  std::vector<int> LoopDefs;
  std::vector<unsigned> DefEpoch;
  unsigned Epoch = 0;

  // Per-loop hoist visit stamps (see hoistBody): the clock at the loop's
  // last zero-hoist scan (0 = must scan), whether that scan consulted
  // liveness, and the summed row versions it consulted.
  std::vector<uint64_t> LoopScanClock;
  std::vector<uint8_t> LoopUsedLive;
  std::vector<uint64_t> LoopLiveVer;

  // DCE per-block visit stamps (block mod clock + liveness row version).
  std::vector<uint64_t> DceVisitMod, DceVisitVer;

  // Shared scratch.
  std::vector<Reg> UsesScratch;
  std::vector<uint64_t> LiveRow;
  std::vector<size_t> DeadIdx;
};

//===----------------------------------------------------------------------===//
// Reference (seed) passes — the compile-throughput baseline.
//===----------------------------------------------------------------------===//

int referencePropagateCopies(Function &F) {
  int Propagated = 0;
  for (BasicBlock &B : F.Blocks) {
    // CopyOf[d] = s while `mov d, s` holds and neither was redefined.
    std::map<uint32_t, Reg> CopyOf;
    auto Invalidate = [&](Reg Def) {
      CopyOf.erase(Def.Id);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == Def)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    auto Rewrite = [&](Reg &R) {
      if (!R.isValid())
        return;
      auto It = CopyOf.find(R.Id);
      if (It != CopyOf.end()) {
        R = It->second;
        ++Propagated;
      }
    };

    for (Instr &I : B.Instrs) {
      Rewrite(I.SrcA);
      Rewrite(I.SrcB);
      Rewrite(I.SrcC);
      Rewrite(I.Base);

      if (Reg D = I.def(); D.isValid()) {
        Invalidate(D);
        if ((I.Op == Opcode::Mov || I.Op == Opcode::FMov) && I.SrcA != D)
          CopyOf[D.Id] = I.SrcA;
      }
    }
  }
  return Propagated;
}

int referenceFoldConstants(Function &F) {
  int Folded = 0;
  for (BasicBlock &B : F.Blocks) {
    // Known integer constants per register within the block.
    std::map<uint32_t, int64_t> Known;
    for (Instr &I : B.Instrs) {
      if (I.SrcB.isValid() && opInfo(I.Op).SrcBImmOk) {
        auto It = Known.find(I.SrcB.Id);
        if (It != Known.end()) {
          I.SrcB = Reg();
          I.Imm = It->second;
          I.HasImm = true;
          ++Folded;
        }
      }
      if (I.HasImm && I.SrcA.isValid() && opInfo(I.Op).SrcBImmOk) {
        auto It = Known.find(I.SrcA.Id);
        int64_t Out;
        if (It != Known.end() &&
            foldBinaryToConstant(I.Op, It->second, I.Imm, Out)) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = Out;
          I.HasImm = true;
          ++Folded;
        }
      }
      if (I.Op == Opcode::Mov) {
        auto It = Known.find(I.SrcA.Id);
        if (It != Known.end()) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = It->second;
          I.HasImm = true;
          ++Folded;
        }
      }

      if (Reg D = I.def(); D.isValid()) {
        if (I.Op == Opcode::LdI)
          Known[D.Id] = I.Imm;
        else
          Known.erase(D.Id);
      }
    }
  }
  return Folded;
}

/// The seed implementation: ordered-map def counts, loops rediscovered and
/// liveness recomputed eagerly on entry and after every hoisting loop. Same
/// decisions as FastCleanup::hoistBody; kept as the throughput baseline.
int referenceHoistLoopInvariants(Function &F) {
  int Hoisted = 0;
  std::vector<NaturalLoop> Loops = findNaturalLoops(F);
  if (Loops.empty())
    return 0;
  Liveness L = computeLiveness(F);
  std::vector<Reg> Uses;

  for (const NaturalLoop &Loop : Loops) {
    if (Loop.Preheader < 0)
      continue;
    BasicBlock &Pre = F.Blocks[Loop.Preheader];

    // Registers defined anywhere in the loop, with def counts.
    std::map<uint32_t, int> LoopDefs;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      for (const Instr &I : F.Blocks[B].Instrs)
        if (Reg D = I.def(); D.isValid())
          ++LoopDefs[D.Id];
    }

    // Registers the preheader's terminator reads (must not be clobbered by
    // a hoisted def inserted before it), and registers live into the
    // preheader's non-header successors (the zero-trip path).
    Uses.clear();
    Pre.terminator().appendUses(Uses);
    std::vector<Reg> GuardReads = Uses;
    std::vector<int> OtherSuccs;
    for (int S : Pre.successors())
      if (S != Loop.Header)
        OtherSuccs.push_back(S);

    std::vector<Instr> HoistedInstrs;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      std::vector<Instr> Kept;
      Kept.reserve(F.Blocks[B].Instrs.size());
      for (Instr &I : F.Blocks[B].Instrs) {
        bool Hoist = isHoistableOp(I);
        Reg D = I.def();
        if (Hoist && LoopDefs[D.Id] != 1)
          Hoist = false; // several defs in the loop: not invariant
        if (Hoist && L.isLiveIn(Loop.Header, D))
          Hoist = false; // a loop path reads the pre-loop value first
        if (Hoist)
          for (Reg R : GuardReads)
            if (R == D)
              Hoist = false; // would clobber the guard's operand
        if (Hoist)
          for (int S : OtherSuccs)
            if (L.isLiveIn(S, D))
              Hoist = false; // zero-trip path needs the old value
        if (Hoist) {
          Uses.clear();
          I.appendUses(Uses);
          for (Reg R : Uses)
            if (LoopDefs.count(R.Id) && LoopDefs[R.Id] > 0)
              Hoist = false; // operand varies within the loop
        }
        if (Hoist) {
          HoistedInstrs.push_back(std::move(I));
          ++Hoisted;
        } else {
          Kept.push_back(std::move(I));
        }
      }
      F.Blocks[B].Instrs = std::move(Kept);
    }
    if (!HoistedInstrs.empty()) {
      Pre.Instrs.insert(Pre.Instrs.end() - 1,
                        std::make_move_iterator(HoistedInstrs.begin()),
                        std::make_move_iterator(HoistedInstrs.end()));
      // Liveness changed; recompute for subsequent loops this round.
      L = computeLiveness(F);
    }
  }
  return Hoisted;
}

/// Seed behavior: liveness recomputed from scratch on every call.
int referenceEliminateDead(Function &F) {
  Liveness L = computeLiveness(F);
  int Removed = 0;
  std::vector<Reg> Uses;
  for (BasicBlock &B : F.Blocks) {
    BitVec Live = L.LiveOut[B.Id];
    std::vector<Instr> Kept;
    Kept.reserve(B.Instrs.size());
    for (size_t K = B.Instrs.size(); K-- > 0;) {
      Instr &I = B.Instrs[K];
      Reg D = I.def();
      bool Dead = !hasSideEffects(I) && D.isValid() && !Live.test(D.Id);
      if (Dead) {
        ++Removed;
        continue;
      }
      if (D.isValid())
        Live.reset(D.Id);
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        Live.set(R.Id);
      Kept.push_back(std::move(I));
    }
    B.Instrs.assign(std::make_move_iterator(Kept.rbegin()),
                    std::make_move_iterator(Kept.rend()));
  }
  return Removed;
}

} // namespace

CleanupStats opt::cleanupModule(Module &M, bool UseReferenceImpl) {
  CleanupStats S;
  if (UseReferenceImpl) {
    for (int Iter = 0; Iter != 8; ++Iter) {
      ++S.Iterations;
      int P = referencePropagateCopies(M.Fn);
      int C = referenceFoldConstants(M.Fn);
      int H = referenceHoistLoopInvariants(M.Fn);
      int D = referenceEliminateDead(M.Fn);
      S.CopiesPropagated += P;
      S.ConstantsFolded += C;
      S.Hoisted += H;
      S.DeadRemoved += D;
      if (P + C + H + D == 0)
        break;
    }
    return S;
  }

  FastCleanup FC(M.Fn);
  for (int Iter = 0; Iter != 8; ++Iter) {
    ++S.Iterations;
    int P = FC.runCopyProp(S);
    int C = FC.runFold(S);
    int H = FC.runHoist();
    int D = FC.runDce(S);
    S.CopiesPropagated += P;
    S.ConstantsFolded += C;
    S.Hoisted += H;
    S.DeadRemoved += D;
    if (P + C + H + D == 0)
      break;
  }
  FC.exportStats(S);
  return S;
}
