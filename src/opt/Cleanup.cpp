//===- opt/Cleanup.cpp - IR cleanup: copyprop, constfold, DCE --------------===//
//
// The local passes run once per fixpoint iteration over every instruction,
// so their per-instruction bookkeeping is kept O(1): copy propagation and
// constant folding track per-register facts in dense, timestamp-validated
// vectors instead of ordered maps (the original erase-by-value invalidation
// scanned the whole map on every definition). The original map-based passes
// are preserved below (reference*) as the compile-throughput baseline; both
// versions make identical decisions and the golden-schedule tests pin the
// output.
//
//===----------------------------------------------------------------------===//

#include "opt/Cleanup.h"

#include "ir/CFG.h"
#include "ir/Liveness.h"
#include "support/BitVec.h"

#include <map>
#include <optional>
#include <vector>

using namespace bsched;
using namespace bsched::opt;
using namespace bsched::ir;

namespace {

//===----------------------------------------------------------------------===//
// Local copy propagation
//===----------------------------------------------------------------------===//

/// Dense copy propagation. A fact "R is a copy of CopySrc[R]" recorded at
/// time CopyTime[R] is valid iff it was recorded in the current block after
/// both R's and the source's latest definitions — so a definition of either
/// register invalidates the fact implicitly, with no erase-by-value scan.
int propagateCopies(Function &F) {
  int Propagated = 0;
  unsigned NumRegs = F.numRegs();
  std::vector<uint32_t> DefTime(NumRegs, 0), CopyTime(NumRegs, 0);
  std::vector<Reg> CopySrc(NumRegs);
  uint32_t Time = 0;

  for (BasicBlock &B : F.Blocks) {
    uint32_t BlockStart = Time;
    auto Rewrite = [&](Reg &R) {
      if (!R.isValid())
        return;
      uint32_t T = CopyTime[R.Id];
      if (T > BlockStart && T >= DefTime[R.Id] &&
          T > DefTime[CopySrc[R.Id].Id]) {
        R = CopySrc[R.Id];
        ++Propagated;
      }
    };

    for (Instr &I : B.Instrs) {
      ++Time;
      // Conditional moves also *read* Dst; never rewrite their Dst.
      Rewrite(I.SrcA);
      Rewrite(I.SrcB);
      Rewrite(I.SrcC);
      Rewrite(I.Base);

      if (Reg D = I.def(); D.isValid()) {
        DefTime[D.Id] = Time;
        if ((I.Op == Opcode::Mov || I.Op == Opcode::FMov) && I.SrcA != D) {
          CopyTime[D.Id] = Time;
          CopySrc[D.Id] = I.SrcA;
        }
      }
    }
  }
  return Propagated;
}

//===----------------------------------------------------------------------===//
// Local constant folding
//===----------------------------------------------------------------------===//

bool foldBinaryToConstant(Opcode Op, int64_t A, int64_t B, int64_t &Out) {
  switch (Op) {
  case Opcode::IAdd: Out = A + B; return true;
  case Opcode::ISub: Out = A - B; return true;
  case Opcode::IMul: Out = A * B; return true;
  case Opcode::Sll: Out = A << (B & 63); return true;
  case Opcode::Srl:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
    return true;
  case Opcode::And: Out = A & B; return true;
  case Opcode::Or: Out = A | B; return true;
  case Opcode::Xor: Out = A ^ B; return true;
  case Opcode::CmpEq: Out = A == B ? 1 : 0; return true;
  case Opcode::CmpLt: Out = A < B ? 1 : 0; return true;
  case Opcode::CmpLe: Out = A <= B ? 1 : 0; return true;
  default: return false;
  }
}

/// Dense constant tracking, timestamp-validated like propagateCopies: the
/// fact "R holds KnownVal[R]" is valid iff it was recorded in this block at
/// or after R's latest definition (LdI records both at the same time).
int foldConstants(Function &F) {
  int Folded = 0;
  unsigned NumRegs = F.numRegs();
  std::vector<uint32_t> DefTime(NumRegs, 0), KnownTime(NumRegs, 0);
  std::vector<int64_t> KnownVal(NumRegs, 0);
  uint32_t Time = 0;

  for (BasicBlock &B : F.Blocks) {
    uint32_t BlockStart = Time;
    auto Lookup = [&](Reg R, int64_t &Out) {
      if (!R.isValid())
        return false;
      uint32_t T = KnownTime[R.Id];
      if (T > BlockStart && T >= DefTime[R.Id]) {
        Out = KnownVal[R.Id];
        return true;
      }
      return false;
    };

    for (Instr &I : B.Instrs) {
      ++Time;
      int64_t V;
      // Literalize a constant SrcB of an operate instruction.
      if (I.SrcB.isValid() && opInfo(I.Op).SrcBImmOk && Lookup(I.SrcB, V)) {
        I.SrcB = Reg();
        I.Imm = V;
        I.HasImm = true;
        ++Folded;
      }
      // Fold a fully constant operation into an immediate load.
      if (I.HasImm && I.SrcA.isValid() && opInfo(I.Op).SrcBImmOk) {
        int64_t Out;
        if (Lookup(I.SrcA, V) && foldBinaryToConstant(I.Op, V, I.Imm, Out)) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = Out;
          I.HasImm = true;
          ++Folded;
        }
      }
      // Mov of a constant becomes an immediate load.
      if (I.Op == Opcode::Mov && Lookup(I.SrcA, V)) {
        Reg D = I.Dst;
        I = Instr();
        I.Op = Opcode::LdI;
        I.Dst = D;
        I.Imm = V;
        I.HasImm = true;
        ++Folded;
      }

      if (Reg D = I.def(); D.isValid()) {
        DefTime[D.Id] = Time;
        if (I.Op == Opcode::LdI) {
          KnownTime[D.Id] = Time;
          KnownVal[D.Id] = I.Imm;
        }
      }
    }
  }
  return Folded;
}

//===----------------------------------------------------------------------===//
// Reference (seed) local passes — the compile-throughput baseline.
//===----------------------------------------------------------------------===//

int referencePropagateCopies(Function &F) {
  int Propagated = 0;
  for (BasicBlock &B : F.Blocks) {
    // CopyOf[d] = s while `mov d, s` holds and neither was redefined.
    std::map<uint32_t, Reg> CopyOf;
    auto Invalidate = [&](Reg Def) {
      CopyOf.erase(Def.Id);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == Def)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    auto Rewrite = [&](Reg &R) {
      if (!R.isValid())
        return;
      auto It = CopyOf.find(R.Id);
      if (It != CopyOf.end()) {
        R = It->second;
        ++Propagated;
      }
    };

    for (Instr &I : B.Instrs) {
      Rewrite(I.SrcA);
      Rewrite(I.SrcB);
      Rewrite(I.SrcC);
      Rewrite(I.Base);

      if (Reg D = I.def(); D.isValid()) {
        Invalidate(D);
        if ((I.Op == Opcode::Mov || I.Op == Opcode::FMov) && I.SrcA != D)
          CopyOf[D.Id] = I.SrcA;
      }
    }
  }
  return Propagated;
}

int referenceFoldConstants(Function &F) {
  int Folded = 0;
  for (BasicBlock &B : F.Blocks) {
    // Known integer constants per register within the block.
    std::map<uint32_t, int64_t> Known;
    for (Instr &I : B.Instrs) {
      if (I.SrcB.isValid() && opInfo(I.Op).SrcBImmOk) {
        auto It = Known.find(I.SrcB.Id);
        if (It != Known.end()) {
          I.SrcB = Reg();
          I.Imm = It->second;
          I.HasImm = true;
          ++Folded;
        }
      }
      if (I.HasImm && I.SrcA.isValid() && opInfo(I.Op).SrcBImmOk) {
        auto It = Known.find(I.SrcA.Id);
        int64_t Out;
        if (It != Known.end() &&
            foldBinaryToConstant(I.Op, It->second, I.Imm, Out)) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = Out;
          I.HasImm = true;
          ++Folded;
        }
      }
      if (I.Op == Opcode::Mov) {
        auto It = Known.find(I.SrcA.Id);
        if (It != Known.end()) {
          Reg D = I.Dst;
          I = Instr();
          I.Op = Opcode::LdI;
          I.Dst = D;
          I.Imm = It->second;
          I.HasImm = true;
          ++Folded;
        }
      }

      if (Reg D = I.def(); D.isValid()) {
        if (I.Op == Opcode::LdI)
          Known[D.Id] = I.Imm;
        else
          Known.erase(D.Id);
      }
    }
  }
  return Folded;
}

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

/// Pure, hoistable operation: no memory access, no control flow, and no
/// read of its own destination (conditional moves read Dst).
bool isHoistableOp(const Instr &I) {
  if (I.isMem() || I.isTerminator())
    return false;
  if (I.Op == Opcode::CMov || I.Op == Opcode::FCMov)
    return false;
  return I.def().isValid();
}

/// \p Live carries liveness for the CURRENT state of \p F between passes
/// when present; passes fill it on demand and reset or refresh it whenever
/// they change the function. Steady-state fixpoint rounds (nothing left to
/// do) then compute liveness once instead of once per pass — liveness is
/// most of cleanup's cost.
int hoistLoopInvariants(Function &F, std::optional<Liveness> &Live) {
  int Hoisted = 0;
  std::vector<NaturalLoop> Loops = findNaturalLoops(F);
  if (Loops.empty())
    return 0;
  // Liveness is only consulted once a candidate survives the cheap checks;
  // most rounds none does, and the lazy compute is skipped entirely.
  auto L = [&]() -> const Liveness & {
    if (!Live)
      Live = computeLiveness(F);
    return *Live;
  };
  std::vector<Reg> Uses;
  // Dense def counts per loop, reset via epoch stamps (one epoch per loop).
  std::vector<int> LoopDefs(F.numRegs(), 0);
  std::vector<unsigned> DefEpoch(F.numRegs(), 0);
  unsigned Epoch = 0;

  for (const NaturalLoop &Loop : Loops) {
    if (Loop.Preheader < 0)
      continue;
    BasicBlock &Pre = F.Blocks[Loop.Preheader];

    // Registers defined anywhere in the loop, with def counts.
    ++Epoch;
    auto DefCountOf = [&](uint32_t Id) {
      return DefEpoch[Id] == Epoch ? LoopDefs[Id] : 0;
    };
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      for (const Instr &I : F.Blocks[B].Instrs)
        if (Reg D = I.def(); D.isValid()) {
          if (DefEpoch[D.Id] != Epoch) {
            DefEpoch[D.Id] = Epoch;
            LoopDefs[D.Id] = 0;
          }
          ++LoopDefs[D.Id];
        }
    }

    // Registers the preheader's terminator reads (must not be clobbered by
    // a hoisted def inserted before it), and registers live into the
    // preheader's non-header successors (the zero-trip path).
    Uses.clear();
    Pre.terminator().appendUses(Uses);
    std::vector<Reg> GuardReads = Uses;
    std::vector<int> OtherSuccs;
    for (int S : Pre.successors())
      if (S != Loop.Header)
        OtherSuccs.push_back(S);

    std::vector<Instr> HoistedInstrs;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      std::vector<Instr> Kept;
      Kept.reserve(F.Blocks[B].Instrs.size());
      for (Instr &I : F.Blocks[B].Instrs) {
        // All conditions must hold, so the liveness-dependent ones run last
        // (same decisions, but liveness is only computed when a candidate
        // gets that far).
        bool Hoist = isHoistableOp(I);
        Reg D = I.def();
        if (Hoist && DefCountOf(D.Id) != 1)
          Hoist = false; // several defs in the loop: not invariant
        if (Hoist)
          for (Reg R : GuardReads)
            if (R == D)
              Hoist = false; // would clobber the guard's operand
        if (Hoist) {
          Uses.clear();
          I.appendUses(Uses);
          for (Reg R : Uses)
            if (DefCountOf(R.Id) > 0)
              Hoist = false; // operand varies within the loop
        }
        if (Hoist && L().isLiveIn(Loop.Header, D))
          Hoist = false; // a loop path reads the pre-loop value first
        if (Hoist)
          for (int S : OtherSuccs)
            if (L().isLiveIn(S, D))
              Hoist = false; // zero-trip path needs the old value
        if (Hoist) {
          HoistedInstrs.push_back(std::move(I));
          ++Hoisted;
        } else {
          Kept.push_back(std::move(I));
        }
      }
      F.Blocks[B].Instrs = std::move(Kept);
    }
    if (!HoistedInstrs.empty()) {
      Pre.Instrs.insert(Pre.Instrs.end() - 1,
                        std::make_move_iterator(HoistedInstrs.begin()),
                        std::make_move_iterator(HoistedInstrs.end()));
      // Liveness changed; drop the cache so the next consultation — if any
      // loop gets that far — recomputes against the current function. Same
      // answers as an eager recompute, minus the computes nobody reads.
      Live.reset();
    }
  }
  return Hoisted;
}

/// The seed implementation: ordered-map def counts and liveness computed
/// eagerly on entry and after every hoisting loop. Same decisions as the
/// lazy version above; kept as the compile-throughput baseline.
int referenceHoistLoopInvariants(Function &F) {
  int Hoisted = 0;
  std::vector<NaturalLoop> Loops = findNaturalLoops(F);
  if (Loops.empty())
    return 0;
  Liveness L = computeLiveness(F);
  std::vector<Reg> Uses;

  for (const NaturalLoop &Loop : Loops) {
    if (Loop.Preheader < 0)
      continue;
    BasicBlock &Pre = F.Blocks[Loop.Preheader];

    // Registers defined anywhere in the loop, with def counts.
    std::map<uint32_t, int> LoopDefs;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      for (const Instr &I : F.Blocks[B].Instrs)
        if (Reg D = I.def(); D.isValid())
          ++LoopDefs[D.Id];
    }

    // Registers the preheader's terminator reads (must not be clobbered by
    // a hoisted def inserted before it), and registers live into the
    // preheader's non-header successors (the zero-trip path).
    Uses.clear();
    Pre.terminator().appendUses(Uses);
    std::vector<Reg> GuardReads = Uses;
    std::vector<int> OtherSuccs;
    for (int S : Pre.successors())
      if (S != Loop.Header)
        OtherSuccs.push_back(S);

    std::vector<Instr> HoistedInstrs;
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      if (!Loop.Contains[B])
        continue;
      std::vector<Instr> Kept;
      Kept.reserve(F.Blocks[B].Instrs.size());
      for (Instr &I : F.Blocks[B].Instrs) {
        bool Hoist = isHoistableOp(I);
        Reg D = I.def();
        if (Hoist && LoopDefs[D.Id] != 1)
          Hoist = false; // several defs in the loop: not invariant
        if (Hoist && L.isLiveIn(Loop.Header, D))
          Hoist = false; // a loop path reads the pre-loop value first
        if (Hoist)
          for (Reg R : GuardReads)
            if (R == D)
              Hoist = false; // would clobber the guard's operand
        if (Hoist)
          for (int S : OtherSuccs)
            if (L.isLiveIn(S, D))
              Hoist = false; // zero-trip path needs the old value
        if (Hoist) {
          Uses.clear();
          I.appendUses(Uses);
          for (Reg R : Uses)
            if (LoopDefs.count(R.Id) && LoopDefs[R.Id] > 0)
              Hoist = false; // operand varies within the loop
        }
        if (Hoist) {
          HoistedInstrs.push_back(std::move(I));
          ++Hoisted;
        } else {
          Kept.push_back(std::move(I));
        }
      }
      F.Blocks[B].Instrs = std::move(Kept);
    }
    if (!HoistedInstrs.empty()) {
      Pre.Instrs.insert(Pre.Instrs.end() - 1,
                        std::make_move_iterator(HoistedInstrs.begin()),
                        std::make_move_iterator(HoistedInstrs.end()));
      // Liveness changed; recompute for subsequent loops this round.
      L = computeLiveness(F);
    }
  }
  return Hoisted;
}

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

bool hasSideEffects(const Instr &I) {
  return I.isStore() || I.isTerminator();
}

int eliminateDead(Function &F, std::optional<Liveness> &LiveIO) {
  if (!LiveIO)
    LiveIO = computeLiveness(F);
  const Liveness &L = *LiveIO;
  int Removed = 0;
  std::vector<Reg> Uses;
  for (BasicBlock &B : F.Blocks) {
    BitVec Live = L.LiveOut[B.Id];
    std::vector<Instr> Kept;
    Kept.reserve(B.Instrs.size());
    for (size_t K = B.Instrs.size(); K-- > 0;) {
      Instr &I = B.Instrs[K];
      Reg D = I.def();
      bool Dead =
          !hasSideEffects(I) && D.isValid() && !Live.test(D.Id);
      if (Dead) {
        ++Removed;
        continue;
      }
      if (D.isValid())
        Live.reset(D.Id);
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        Live.set(R.Id);
      Kept.push_back(std::move(I));
    }
    B.Instrs.assign(std::make_move_iterator(Kept.rbegin()),
                    std::make_move_iterator(Kept.rend()));
  }
  if (Removed > 0)
    LiveIO.reset(); // the function changed; cached liveness is stale
  return Removed;
}

/// Seed behavior: liveness recomputed from scratch on every call.
int referenceEliminateDead(Function &F) {
  std::optional<Liveness> Fresh;
  return eliminateDead(F, Fresh);
}

} // namespace

CleanupStats opt::cleanupModule(Module &M, bool UseReferenceImpl) {
  CleanupStats S;
  // Liveness carried between the fast passes within a round (and across
  // rounds once the function stops changing).
  std::optional<Liveness> Live;
  for (int Iter = 0; Iter != 8; ++Iter) {
    ++S.Iterations;
    int P, C, H, D;
    if (UseReferenceImpl) {
      P = referencePropagateCopies(M.Fn);
      C = referenceFoldConstants(M.Fn);
      H = referenceHoistLoopInvariants(M.Fn);
      D = referenceEliminateDead(M.Fn);
    } else {
      P = propagateCopies(M.Fn);
      C = foldConstants(M.Fn);
      if (P + C > 0)
        Live.reset(); // operand rewrites change liveness
      H = hoistLoopInvariants(M.Fn, Live);
      D = eliminateDead(M.Fn, Live);
    }
    S.CopiesPropagated += P;
    S.ConstantsFolded += C;
    S.Hoisted += H;
    S.DeadRemoved += D;
    if (P + C + H + D == 0)
      break;
  }
  return S;
}
