//===- opt/Cleanup.h - IR cleanup: copyprop, constfold, DCE -----*- C++ -*-===//
///
/// \file
/// Post-lowering IR cleanup, iterated to a fixpoint:
///  - local copy propagation (uses of `mov d, s` read `s` directly while
///    both registers hold the copied value);
///  - local constant folding (integer ALU operations whose operands are
///    known LdI constants become operate-with-literal forms or immediate
///    loads);
///  - loop-invariant code motion (pure instructions whose operands are
///    defined outside the loop move to the preheader — constants and
///    invariant arithmetic otherwise re-execute every iteration);
///  - global dead-code elimination (instructions without side effects whose
///    results are never used; dead loads are architecturally removable).
///
/// Runs before scheduling so the dependence DAG and the balanced-weight
/// computation see the code the machine will actually execute — the
/// Multiflow compiler the paper modified was "a very optimizing compiler"
/// (section 5.5), and leaving trivially dead code in would hand the
/// scheduler free-but-fake padding instructions.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_OPT_CLEANUP_H
#define BALSCHED_OPT_CLEANUP_H

#include "ir/IR.h"

namespace bsched {
namespace opt {

struct CleanupStats {
  int CopiesPropagated = 0;
  int ConstantsFolded = 0;
  int Hoisted = 0;
  int DeadRemoved = 0;
  int Iterations = 0;
  /// Instrumentation for the worklist-driven fast path (left zero by the
  /// reference twin, and excluded from the twin-equality checks): liveness
  /// solves split into full computes vs. incremental region updates, and how
  /// many per-block pass runs the dirty-block worklist skipped outright.
  int LivenessFullComputes = 0;
  int LivenessIncrementalUpdates = 0;
  int BlocksSkipped = 0;
};

/// Cleans every block of \p M in place. The module must verify before and
/// will verify after; program semantics (interpreter checksum) are
/// preserved. With \p UseReferenceImpl the original map-based local passes
/// run instead of the dense timestamp-validated ones; both make identical
/// decisions, so the output is byte-identical — the flag exists so the
/// compile-throughput benchmark can time the pre-overhaul implementation.
CleanupStats cleanupModule(ir::Module &M, bool UseReferenceImpl = false);

} // namespace opt
} // namespace bsched

#endif // BALSCHED_OPT_CLEANUP_H
