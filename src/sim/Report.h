//===- sim/Report.h - Simulation metrics report -----------------*- C++ -*-===//
///
/// \file
/// Renders a SimResult as the section-4.3 metrics report: total cycles with
/// a full stall breakdown, and dynamic instruction counts by category
/// ("long and short integers, long and short floating point operations,
/// loads, stores, branches, and spill and restore instructions").
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SIM_REPORT_H
#define BALSCHED_SIM_REPORT_H

#include "sim/Machine.h"

#include <string>

namespace bsched {
namespace sim {

/// Multi-line human-readable report for \p R; \p Title heads the block.
std::string printReport(const SimResult &R, const std::string &Title = "");

/// One-line comma-separated summary (cycles, instrs, li, fi, l1d-miss%),
/// for logs and scripts.
std::string printSummaryLine(const SimResult &R);

} // namespace sim
} // namespace bsched

#endif // BALSCHED_SIM_REPORT_H
