//===- sim/Report.cpp - Simulation metrics report ---------------------------===//

#include "sim/Report.h"

#include "support/Str.h"
#include "support/Table.h"

using namespace bsched;
using namespace bsched::sim;

std::string sim::printReport(const SimResult &R, const std::string &Title) {
  std::string Out;
  if (!Title.empty())
    Out += Title + "\n";
  if (!R.ok())
    return Out + "error: " + R.Error + "\n";
  if (!R.Finished)
    Out += "(cycle budget exhausted before completion)\n";

  auto Pct = [&](uint64_t Part) {
    return R.Cycles == 0 ? std::string("-")
                         : fmtPercent(static_cast<double>(Part) /
                                      static_cast<double>(R.Cycles));
  };

  Table T({"Metric", "Value", "% of cycles"});
  T.addRow({"total cycles", fmtInt(static_cast<int64_t>(R.Cycles)), ""});
  T.addRow({"dynamic instructions",
            fmtInt(static_cast<int64_t>(R.Counts.total())),
            Pct(R.Counts.total())});
  T.addSeparator();
  T.addRow({"load interlock cycles",
            fmtInt(static_cast<int64_t>(R.LoadInterlockCycles)),
            Pct(R.LoadInterlockCycles)});
  T.addRow({"fixed-latency interlock cycles",
            fmtInt(static_cast<int64_t>(R.FixedInterlockCycles)),
            Pct(R.FixedInterlockCycles)});
  T.addRow({"I-cache stall cycles",
            fmtInt(static_cast<int64_t>(R.ICacheStallCycles)),
            Pct(R.ICacheStallCycles)});
  T.addRow({"I/D TLB stall cycles",
            fmtInt(static_cast<int64_t>(R.ITlbStallCycles +
                                        R.DTlbStallCycles)),
            Pct(R.ITlbStallCycles + R.DTlbStallCycles)});
  T.addRow({"branch mispredict cycles",
            fmtInt(static_cast<int64_t>(R.BranchPenaltyCycles)),
            Pct(R.BranchPenaltyCycles)});
  T.addRow({"MSHR / write-buffer stalls",
            fmtInt(static_cast<int64_t>(R.MshrStallCycles +
                                        R.WriteBufferStallCycles)),
            Pct(R.MshrStallCycles + R.WriteBufferStallCycles)});
  Out += T.render();

  Table C({"Instruction class", "Count"});
  C.addRow({"short integer", fmtInt(static_cast<int64_t>(R.Counts.ShortInt))});
  C.addRow({"long integer (multiply)",
            fmtInt(static_cast<int64_t>(R.Counts.LongInt))});
  C.addRow({"short floating point",
            fmtInt(static_cast<int64_t>(R.Counts.ShortFp))});
  C.addRow({"long floating point (divide)",
            fmtInt(static_cast<int64_t>(R.Counts.LongFp))});
  C.addRow({"loads", fmtInt(static_cast<int64_t>(R.Counts.Loads))});
  C.addRow({"stores", fmtInt(static_cast<int64_t>(R.Counts.Stores))});
  C.addRow({"branches", fmtInt(static_cast<int64_t>(R.Counts.Branches))});
  C.addRow({"spills", fmtInt(static_cast<int64_t>(R.Counts.Spills))});
  C.addRow({"restores", fmtInt(static_cast<int64_t>(R.Counts.Restores))});
  Out += C.render();

  Table M({"Cache / predictor", "Accesses", "Misses", "Miss rate"});
  auto CacheRow = [&](const char *Name, const CacheStats &S) {
    M.addRow({Name, fmtInt(static_cast<int64_t>(S.Accesses)),
              fmtInt(static_cast<int64_t>(S.Misses)),
              fmtPercent(S.missRate())});
  };
  CacheRow("L1 D", R.L1D);
  CacheRow("L1 I", R.L1I);
  CacheRow("L2", R.L2);
  CacheRow("L3", R.L3);
  M.addRow({"DTLB misses", fmtInt(static_cast<int64_t>(R.DTlbMisses))});
  M.addRow({"branch mispredicts",
            fmtInt(static_cast<int64_t>(R.BranchMispredicts))});
  Out += M.render();
  return Out;
}

std::string sim::printSummaryLine(const SimResult &R) {
  return "cycles=" + fmtInt(static_cast<int64_t>(R.Cycles)) +
         ", instrs=" + fmtInt(static_cast<int64_t>(R.Counts.total())) +
         ", li=" + fmtPercent(R.loadInterlockShare()) +
         ", fi=" +
         fmtPercent(R.Cycles == 0
                        ? 0.0
                        : static_cast<double>(R.FixedInterlockCycles) /
                              static_cast<double>(R.Cycles)) +
         ", l1d-miss=" + fmtPercent(R.L1D.missRate());
}
