//===- sim/FastMachine.cpp - Optimized 21164 simulator core ----------------===//
//
// The throughput-optimized simulator behind SimImpl::Fast. It models exactly
// the machine ReferenceMachine.cpp models — same issue groups, same
// scoreboard, same memory system, same statistics — and is held bit-identical
// to it by sim_equivalence_test and the golden sim-stats test. The speed
// comes from three structural changes, not from changing the model:
//
//  1. Predecoding. Each basic block is flattened once into SimOps: the
//     ir::MicroOp executor form (shared with the profiling interpreter, so
//     architectural behaviour cannot diverge) plus everything the pipeline
//     asks per dynamic instruction — use list in appendUses order, def id,
//     fixed latency, pipe class, count bucket, and flags. The per-cycle loop
//     never touches ir::Instr or opInfo again.
//
//  2. Fast memory-system models (FastCaches.h): one-compare MRU TLB front,
//     shift/mask direct-mapped caches, fixed-array MSHR file and
//     write-buffer ring.
//
//  3. Run-based fetch. Straight-line code stays in one I-cache line for
//     several instructions and in one page for hundreds; the predecoder
//     marks those runs. The full ITLB+L1I probe happens once per run, and
//     the remaining instructions book guaranteed hits (exact same counter
//     and LRU-stamp updates) without probing. The hits are provable: fetch
//     is the only client of the ITLB and L1I, and a run never leaves the
//     head's line or page, so nothing can evict them mid-run. The D-side
//     shares only L2/L3, which the I-side touches only on a run-head L1I
//     miss — so the interleaving of L2/L3 accesses is also preserved.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulators.h"

#include "sim/Caches.h" // BranchPredictor (already O(1); reused verbatim)
#include "sim/FastCaches.h"

#include "ir/Interp.h"
#include "support/RNG.h"

#include <cassert>
#include <cstring>
#include <vector>

using namespace bsched;
using namespace bsched::sim;
using namespace bsched::ir;

namespace {

constexpr uint8_t FlagLoad = 1, FlagStore = 2, FlagFDiv = 4, FlagTerm = 8;
enum : uint8_t { TermRet = 0, TermBr = 1, TermJmp = 2 };

constexpr unsigned BucketSpill = 7, BucketRestore = 8, NumBuckets = 9;

/// One predecoded instruction: the executor micro-op plus every per-dynamic-
/// instruction fact the pipeline needs, resolved once.
struct SimOp {
  MicroOp U;         ///< executor form (unused for terminators).
  uint32_t DefId;    ///< defined register id, or Reg::InvalidId.
  int32_t Latency;   ///< fixed issue-to-result latency (opInfo).
  uint32_t Uses[4];  ///< source register ids, appendUses order.
  uint32_t RunLen;   ///< fetch-run length when this op heads a run.
  int32_t T0, T1;    ///< terminator targets.
  uint32_t CondId;   ///< Br condition register id.
  uint8_t NumUses;
  uint8_t Pipe;      ///< 0 int, 1 fp, 2 mem.
  uint8_t Bucket;    ///< InstrClass value, or spill/restore bucket.
  uint8_t Flags;
  uint8_t TermKind;
};

struct SimBlock {
  uint32_t Start = 0, NumOps = 0;
  uint64_t BaseAddr = 0;
};

uint8_t pipeOf(InstrClass Cls) {
  switch (Cls) {
  case InstrClass::ShortFp:
  case InstrClass::LongFp:
    return 1;
  case InstrClass::LoadCls:
  case InstrClass::StoreCls:
    return 2;
  default:
    return 0;
  }
}

/// The simulator core, specialized at compile time on the three per-
/// instruction mode tests so the hot loop carries no model branches:
/// Simple = the 1993 stochastic model, Fetch = I-stream modeled (neither
/// simple nor PerfectFrontEnd), Wide = IssueWidth > 1. simulateFast
/// dispatches once per run; every instantiation is bit-identical to the
/// reference (the conditions fold to the same values the branches tested).
template <bool Simple, bool Fetch, bool Wide> class FastSimulator {
public:
  FastSimulator(const Module &M, const MachineConfig &C, uint64_t MaxCycles)
      : M(M), Config(C), MaxCycles(MaxCycles), State(M), L1D(C.L1D),
        L1I(C.L1I), L2(C.L2), L3(C.L3), DTlb(C.DTlbEntries, C.PageSize),
        ITlb(C.ITlbEntries, C.PageSize), Pred(C.BranchPredictorEntries),
        Mshrs(C.NumMSHRs), WriteBuf(C.WriteBufferEntries), Rng(C.SimpleSeed) {}

  SimResult run() {
    if (!predecode())
      return R;

    ReadyAt.assign(M.Fn.numRegs(), 0);
    LoadProduced.assign(M.Fn.numRegs(), 0);

    assert(Simple == Config.SimpleModel && Wide == (Config.IssueWidth > 1) &&
           Fetch == (!Simple && !Config.PerfectFrontEnd) &&
           "dispatched to the wrong specialization");
    uint64_t CountBy[NumBuckets] = {};

    int Block = 0;
    while (true) {
      const SimBlock &SB = Blocks[static_cast<size_t>(Block)];
      const SimOp *Ops = &AllOps[SB.Start];
      uint32_t RunLeft = 0;
      for (uint32_t I = 0;; ++I) {
        if (Cycle > MaxCycles) {
          R.Cycles = Cycle;
          finishCounts(CountBy);
          return R;
        }
        const SimOp &Op = Ops[I];

        if (!Wide) {
          // Single issue: one slot per cycle, no per-pipe limits.
          if (SlotsUsed != 0)
            closeGroup();
        } else {
          while (!slotAvailable(Op))
            closeGroup();
        }

        if (Fetch) {
          if (RunLeft != 0) {
            // Provably resident (see file header): book the hits without
            // probing. Counter and recency effects match a full access.
            --RunLeft;
            ITlb.cheapHit();
            L1I.cheapHit(R.L1I);
          } else {
            fetch(SB.BaseAddr + 4ull * I);
            RunLeft = Op.RunLen - 1;
          }
        }

        stallOnSources(Op);
        ++CountBy[Op.Bucket];
        takeSlot(Op);

        if (Op.Flags & FlagTerm) {
          if (Op.TermKind == TermRet) {
            R.Finished = true;
            R.Cycles = Cycle + 1;
            R.Checksum = State.outputChecksum(M);
            finishCounts(CountBy);
            return R;
          }
          int Next;
          if (Op.TermKind == TermBr) {
            bool Taken = State.readInt(Reg(Op.CondId)) != 0;
            Next = Taken ? Op.T0 : Op.T1;
            // The 1993 simple model assumes a perfect front end.
            if (!Simple &&
                !Pred.predictAndUpdate(SB.BaseAddr + 4ull * I, Taken)) {
              ++R.BranchMispredicts;
              closeGroup();
              Cycle += static_cast<uint64_t>(Config.BranchMispredictPenalty);
              R.BranchPenaltyCycles +=
                  static_cast<uint64_t>(Config.BranchMispredictPenalty);
            } else if (Taken) {
              // No issue past a taken branch within the same cycle.
              closeGroup();
            }
          } else {
            Next = Op.T0;
            closeGroup();
          }
          Block = Next;
          break;
        }

        issueAndExec(Op);
      }
    }
  }

private:
  const Module &M;
  MachineConfig Config;
  uint64_t MaxCycles;
  SimResult R;

  ExecState State;
  FastCache L1D, L1I, L2, L3;
  FastTlb DTlb, ITlb;
  BranchPredictor Pred;
  MshrFile Mshrs;
  WriteFifo WriteBuf;
  RNG Rng;

  uint64_t Cycle = 0;
  // Per-cycle issue bookkeeping (the in-order superscalar group).
  unsigned SlotsUsed = 0, IntUsed = 0, FpUsed = 0, MemUsed = 0;
  std::vector<uint64_t> ReadyAt;
  std::vector<uint8_t> LoadProduced;
  uint64_t DivBusyUntil = 0;

  std::vector<SimOp> AllOps;
  std::vector<SimBlock> Blocks;

  //===--------------------------------------------------------------------===//
  // Predecode
  //===--------------------------------------------------------------------===//

  bool predecode() {
    size_t Total = 0;
    for (const BasicBlock &B : M.Fn.Blocks)
      Total += B.Instrs.size();
    AllOps.reserve(Total);
    Blocks.resize(M.Fn.Blocks.size());

    std::vector<uint64_t> CodeAddr(M.Fn.Blocks.size());
    uint64_t Addr = Config.CodeBase;
    for (const BasicBlock &B : M.Fn.Blocks) {
      CodeAddr[static_cast<size_t>(B.Id)] = Addr;
      Addr += 4 * B.Instrs.size();
    }

    std::vector<Reg> Uses;
    for (size_t BI = 0; BI != M.Fn.Blocks.size(); ++BI) {
      const BasicBlock &B = M.Fn.Blocks[BI];
      SimBlock &SB = Blocks[BI];
      SB.Start = static_cast<uint32_t>(AllOps.size());
      SB.NumOps = static_cast<uint32_t>(B.Instrs.size());
      SB.BaseAddr = CodeAddr[static_cast<size_t>(B.Id)];

      for (const Instr &In : B.Instrs) {
        Uses.clear();
        In.appendUses(Uses);
        Reg D = In.def();
        for (Reg Rg : Uses)
          if (!Rg.isPhys())
            return fail();
        if (D.isValid() && !D.isPhys())
          return fail();

        SimOp Op{};
        assert(Uses.size() <= 4 && "instruction with more than four sources");
        Op.NumUses = static_cast<uint8_t>(Uses.size());
        for (size_t UI = 0; UI != Uses.size(); ++UI)
          Op.Uses[UI] = Uses[UI].Id;
        const OpInfo &Info = opInfo(In.Op);
        Op.Pipe = pipeOf(Info.Cls);
        Op.Bucket = In.IsSpill     ? BucketSpill
                    : In.IsRestore ? BucketRestore
                                   : static_cast<uint8_t>(Info.Cls);
        Op.Latency = Info.Latency;
        Op.DefId = D.isValid() ? D.Id : Reg::InvalidId;
        if (Info.IsTerminator) {
          Op.Flags = FlagTerm;
          Op.TermKind = In.Op == Opcode::Ret  ? TermRet
                        : In.Op == Opcode::Br ? TermBr
                                              : TermJmp;
          Op.CondId = In.SrcA.isValid() ? In.SrcA.Id : 0;
          Op.T0 = In.Target0;
          Op.T1 = In.Target1;
        } else {
          Op.U = decodeMicro(In);
          if (Info.IsLoad)
            Op.Flags |= FlagLoad;
          if (Info.IsStore)
            Op.Flags |= FlagStore;
          if (In.Op == Opcode::FDiv)
            Op.Flags |= FlagFDiv;
        }
        AllOps.push_back(Op);
      }
      markFetchRuns(SB);
    }
    return true;
  }

  bool fail() {
    R.Error = "simulator requires register-allocated code";
    return false;
  }

  /// Marks maximal same-line, same-page instruction runs: RunLen on the run
  /// head is the number of consecutive instructions sharing the head's
  /// I-cache line and page (every later one is a guaranteed fetch hit).
  void markFetchRuns(SimBlock &SB) {
    if (SB.NumOps == 0)
      return;
    SimOp *Ops = &AllOps[SB.Start];
    uint64_t HeadLine = SB.BaseAddr / Config.L1I.LineSize;
    uint64_t HeadPage = SB.BaseAddr / Config.PageSize;
    uint32_t RunStart = 0;
    for (uint32_t I = 1; I <= SB.NumOps; ++I) {
      bool Boundary = I == SB.NumOps;
      if (!Boundary) {
        uint64_t A = SB.BaseAddr + 4ull * I;
        uint64_t Line = A / Config.L1I.LineSize;
        uint64_t Page = A / Config.PageSize;
        Boundary = Line != HeadLine || Page != HeadPage;
        if (Boundary) {
          HeadLine = Line;
          HeadPage = Page;
        }
      }
      if (Boundary) {
        Ops[RunStart].RunLen = I - RunStart;
        RunStart = I;
      }
    }
  }

  void finishCounts(const uint64_t (&CountBy)[NumBuckets]) {
    R.Counts.ShortInt = CountBy[static_cast<int>(InstrClass::ShortInt)];
    R.Counts.LongInt = CountBy[static_cast<int>(InstrClass::LongInt)];
    R.Counts.ShortFp = CountBy[static_cast<int>(InstrClass::ShortFp)];
    R.Counts.LongFp = CountBy[static_cast<int>(InstrClass::LongFp)];
    R.Counts.Loads = CountBy[static_cast<int>(InstrClass::LoadCls)];
    R.Counts.Stores = CountBy[static_cast<int>(InstrClass::StoreCls)];
    R.Counts.Branches = CountBy[static_cast<int>(InstrClass::BranchCls)];
    R.Counts.Spills = CountBy[BucketSpill];
    R.Counts.Restores = CountBy[BucketRestore];
  }

  //===--------------------------------------------------------------------===//
  // Issue groups
  //===--------------------------------------------------------------------===//

  bool slotAvailable(const SimOp &Op) const {
    if (SlotsUsed >= Config.IssueWidth)
      return false;
    if (!Wide)
      return true; // the single slot is the only constraint
    switch (Op.Pipe) {
    case 0:
      return IntUsed < Config.MaxIntPerCycle;
    case 1:
      return FpUsed < Config.MaxFpPerCycle;
    default:
      return MemUsed < Config.MaxMemPerCycle;
    }
  }

  /// Ends the current issue group: the next instruction starts a new cycle.
  void closeGroup() {
    ++Cycle;
    SlotsUsed = IntUsed = FpUsed = MemUsed = 0;
  }

  /// Moves time forward (stalls); any partially filled group is abandoned.
  void advanceTo(uint64_t NewCycle) {
    Cycle = NewCycle;
    SlotsUsed = IntUsed = FpUsed = MemUsed = 0;
  }

  /// A stall discovered while the current instruction is issuing (divider,
  /// TLB refill, MSHR or write-buffer pressure): time moves, and the group
  /// is marked full so the next instruction starts a fresh cycle.
  void stallInIssue(uint64_t NewCycle) {
    Cycle = NewCycle;
    SlotsUsed = Config.IssueWidth;
  }

  void takeSlot(const SimOp &Op) {
    ++SlotsUsed;
    if (!Wide)
      return; // per-pipe counters are only consulted when issuing wide
    switch (Op.Pipe) {
    case 0: ++IntUsed; break;
    case 1: ++FpUsed; break;
    default: ++MemUsed; break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Front end
  //===--------------------------------------------------------------------===//

  void fetch(uint64_t Addr) {
    if (!ITlb.access(Addr)) {
      ++R.ITlbMisses;
      advanceTo(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
      R.ITlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
    }
    if (!L1I.access(Addr, /*Allocate=*/true, R.L1I)) {
      int Latency = Config.L2.Latency;
      if (!L2.access(Addr, true, R.L2)) {
        Latency = Config.L3.Latency;
        if (!L3.access(Addr, true, R.L3))
          Latency = Config.MemoryLatency;
      }
      uint64_t Stall = static_cast<uint64_t>(Latency - Config.L1I.Latency);
      advanceTo(Cycle + Stall);
      R.ICacheStallCycles += Stall;
    }
  }

  //===--------------------------------------------------------------------===//
  // Scoreboard
  //===--------------------------------------------------------------------===//

  void stallOnSources(const SimOp &Op) {
    uint64_t Until = Cycle;
    bool BlameLoad = false;
    for (uint8_t N = 0; N != Op.NumUses; ++N) {
      uint32_t Id = Op.Uses[N];
      uint64_t T = ReadyAt[Id];
      if (T > Until) {
        Until = T;
        BlameLoad = LoadProduced[Id] != 0;
      } else if (T == Until && T > Cycle && LoadProduced[Id] != 0) {
        // Tie between a load and a fixed-latency producer: blame the load,
        // like the paper's accounting of load interlocks.
        BlameLoad = true;
      }
    }
    if (Until > Cycle) {
      uint64_t Stall = Until - Cycle;
      if (BlameLoad)
        R.LoadInterlockCycles += Stall;
      else
        R.FixedInterlockCycles += Stall;
      advanceTo(Until);
    }
  }

  //===--------------------------------------------------------------------===//
  // Back end
  //===--------------------------------------------------------------------===//

  /// Data-side hierarchy access; returns the load-to-use latency.
  int dataAccess(uint64_t Addr, bool IsLoad) {
    if (L1D.access(Addr, /*Allocate=*/IsLoad, R.L1D))
      return Config.L1D.Latency;
    if (L2.access(Addr, true, R.L2))
      return Config.L2.Latency;
    if (L3.access(Addr, true, R.L3))
      return Config.L3.Latency;
    return Config.MemoryLatency;
  }

  void issueAndExec(const SimOp &Op) {
    if (Op.Flags & FlagLoad) {
      uint64_t Addr =
          static_cast<uint64_t>(State.readInt(Op.U.B) + Op.U.Imm);
      int Latency;
      if (Simple) {
        Latency = Rng.nextBool(Config.SimpleHitRate)
                      ? Config.SimpleHitLatency
                      : Config.SimpleMissLatency;
      } else {
        if (!DTlb.access(Addr)) {
          ++R.DTlbMisses;
          stallInIssue(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
          R.DTlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
        }
        uint64_t Line = L1D.lineOf(Addr);
        // A live entry's completion is always past its insert cycle, so 0
        // (absent) and stale entries take the same miss path — exactly the
        // reference's (found && Done > Cycle) merge condition.
        uint64_t PendingDone = Mshrs.findDone(Line);
        if (PendingDone > Cycle) {
          // Merge with the outstanding miss to the same line. Keep the L1
          // counters honest: this is another L1 access that did not hit in
          // the live cache state.
          Latency = static_cast<int>(PendingDone - Cycle);
          ++R.L1D.Accesses;
        } else {
          Latency = dataAccess(Addr, /*IsLoad=*/true);
          if (Latency > Config.L1D.Latency) {
            // Lockup-free cache: take an MSHR, stalling if all are busy.
            Mshrs.retire(Cycle);
            if (Mshrs.size() >= Config.NumMSHRs) {
              uint64_t Earliest = Mshrs.earliestDone();
              R.MshrStallCycles += Earliest - Cycle;
              stallInIssue(Earliest);
              Mshrs.retire(Cycle);
            }
            Mshrs.insert(Line, Cycle + static_cast<uint64_t>(Latency));
          }
        }
      }
      ReadyAt[Op.DefId] = Cycle + static_cast<uint64_t>(Latency);
      LoadProduced[Op.DefId] = 1;

      uint64_t Bits = State.loadWord(Addr);
      if (Op.U.K == MicroKind::FLoad) {
        double V;
        std::memcpy(&V, &Bits, 8);
        State.writeFp(Op.U.Dst, V);
      } else {
        State.writeInt(Op.U.Dst, static_cast<int64_t>(Bits));
      }
      return;
    }

    if (Op.Flags & FlagStore) {
      uint64_t Addr =
          static_cast<uint64_t>(State.readInt(Op.U.B) + Op.U.Imm);
      if (!Simple) {
        if (!DTlb.access(Addr)) {
          ++R.DTlbMisses;
          stallInIssue(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
          R.DTlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
        }
        // Write-through with no write-allocate at L1; the write buffer
        // absorbs the L2 access time.
        L1D.touch(Addr, R.L1D);
        L2.access(Addr, /*Allocate=*/true, R.L2);
        WriteBuf.drain(Cycle);
        if (WriteBuf.size() >= Config.WriteBufferEntries) {
          uint64_t Earliest = WriteBuf.front();
          R.WriteBufferStallCycles += Earliest - Cycle;
          stallInIssue(Earliest);
          WriteBuf.drain(Cycle);
        }
        WriteBuf.push(Cycle + static_cast<uint64_t>(Config.L2.Latency));
      }

      uint64_t Bits;
      if (Op.U.K == MicroKind::FStore) {
        double V = State.readFp(Op.U.A);
        std::memcpy(&Bits, &V, 8);
      } else {
        Bits = static_cast<uint64_t>(State.readInt(Op.U.A));
      }
      State.storeWord(Addr, Bits);
      return;
    }

    int Latency = Simple ? 1 : Op.Latency;
    if ((Op.Flags & FlagFDiv) && !Simple) {
      // The divider is not pipelined.
      if (DivBusyUntil > Cycle) {
        R.FixedInterlockCycles += DivBusyUntil - Cycle;
        stallInIssue(DivBusyUntil);
      }
      DivBusyUntil = Cycle + static_cast<uint64_t>(Latency);
    }
    if (Op.DefId != Reg::InvalidId) {
      ReadyAt[Op.DefId] = Cycle + static_cast<uint64_t>(Latency);
      LoadProduced[Op.DefId] = 0;
    }
    execMicro(State, Op.U);
  }
};

} // namespace

SimResult sim::detail::simulateFast(const Module &M,
                                    const MachineConfig &Config,
                                    uint64_t MaxCycles) {
  const bool Simple = Config.SimpleModel;
  const bool Fetch = !Simple && !Config.PerfectFrontEnd;
  const bool Wide = Config.IssueWidth > 1;
  if (Simple)
    return Wide ? FastSimulator<true, false, true>(M, Config, MaxCycles).run()
                : FastSimulator<true, false, false>(M, Config, MaxCycles).run();
  if (Fetch)
    return Wide ? FastSimulator<false, true, true>(M, Config, MaxCycles).run()
                : FastSimulator<false, true, false>(M, Config, MaxCycles).run();
  return Wide ? FastSimulator<false, false, true>(M, Config, MaxCycles).run()
              : FastSimulator<false, false, false>(M, Config, MaxCycles).run();
}
