//===- sim/Caches.h - Cache, TLB and branch-predictor models ----*- C++ -*-===//
///
/// \file
/// The memory-system building blocks of the 21164 model, separated from the
/// pipeline so they can be unit-tested in isolation: a set-associative LRU
/// cache (tags only — data lives in the architectural state), a
/// fully-associative LRU TLB, and a table of 2-bit saturating branch
/// counters.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SIM_CACHES_H
#define BALSCHED_SIM_CACHES_H

#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace bsched {
namespace sim {

/// Set-associative LRU cache (tags only).
class Cache {
public:
  explicit Cache(const CacheConfig &C) : Config(C) {
    NumSets = static_cast<unsigned>(C.SizeBytes / (C.LineSize * C.Assoc));
    Tags.assign(static_cast<size_t>(NumSets) * C.Assoc, ~0ull);
    Stamp.assign(Tags.size(), 0);
  }

  /// Returns true on hit; fills the line on miss when \p Allocate is set.
  /// Updates recency and \p Stats either way.
  bool access(uint64_t Addr, bool Allocate, CacheStats &Stats) {
    ++Stats.Accesses;
    uint64_t Line = Addr / Config.LineSize;
    unsigned Set = static_cast<unsigned>(Line % NumSets);
    size_t Base = static_cast<size_t>(Set) * Config.Assoc;
    ++Clock;
    for (unsigned W = 0; W != Config.Assoc; ++W) {
      if (Tags[Base + W] == Line) {
        Stamp[Base + W] = Clock;
        return true;
      }
    }
    ++Stats.Misses;
    if (Allocate) {
      size_t Victim = Base;
      for (unsigned W = 1; W != Config.Assoc; ++W)
        if (Stamp[Base + W] < Stamp[Victim])
          Victim = Base + W;
      Tags[Victim] = Line;
      Stamp[Victim] = Clock;
    }
    return false;
  }

  /// Hit check that updates recency on hit but never allocates (the L1's
  /// write-around behaviour for stores).
  bool touch(uint64_t Addr, CacheStats &Stats) {
    return access(Addr, /*Allocate=*/false, Stats);
  }

  unsigned numSets() const { return NumSets; }

private:
  CacheConfig Config;
  unsigned NumSets;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Stamp;
  uint64_t Clock = 0;
};

/// Fully-associative LRU TLB. A miss installs the page (refill cost is the
/// caller's concern, as the 21164's software refill blocks the pipeline).
class Tlb {
public:
  Tlb(unsigned Entries, unsigned PageSize)
      : PageSize(PageSize), Pages(Entries, ~0ull), Stamp(Entries, 0) {}

  /// Returns true on hit; always leaves the page mapped.
  bool access(uint64_t Addr) {
    uint64_t Page = Addr / PageSize;
    ++Clock;
    size_t Victim = 0;
    for (size_t I = 0; I != Pages.size(); ++I) {
      if (Pages[I] == Page) {
        Stamp[I] = Clock;
        return true;
      }
      if (Stamp[I] < Stamp[Victim])
        Victim = I;
    }
    Pages[Victim] = Page;
    Stamp[Victim] = Clock;
    return false;
  }

private:
  unsigned PageSize;
  std::vector<uint64_t> Pages;
  std::vector<uint64_t> Stamp;
  uint64_t Clock = 0;
};

/// Per-address 2-bit saturating counters, initialized weakly-not-taken.
class BranchPredictor {
public:
  explicit BranchPredictor(unsigned Entries) : Counters(Entries, 1) {}

  /// Returns true if the prediction matched \p Taken; always trains.
  bool predictAndUpdate(uint64_t Addr, bool Taken) {
    size_t I = (Addr >> 2) % Counters.size();
    bool Prediction = Counters[I] >= 2;
    if (Taken && Counters[I] < 3)
      ++Counters[I];
    else if (!Taken && Counters[I] > 0)
      --Counters[I];
    return Prediction == Taken;
  }

private:
  std::vector<uint8_t> Counters;
};

} // namespace sim
} // namespace bsched

#endif // BALSCHED_SIM_CACHES_H
