//===- sim/FastCaches.h - Optimized memory-system models --------*- C++ -*-===//
///
/// \file
/// Throughput-optimized twins of the Caches.h building blocks, used by the
/// fast simulator core (SimImpl::Fast). Each class reproduces its reference
/// counterpart's observable behaviour bit for bit — same hit/miss decisions,
/// same LRU victim choices, same statistics — while removing the seed
/// implementation's per-access costs:
///
///  * FastCache indexes sets with a shift/mask when the geometry is a power
///    of two (division/modulo otherwise) and resolves the direct-mapped case
///    (the 21164's L1s) with a single tag compare. cheapHit() lets the fetch
///    path book a guaranteed hit on the most-recently-touched line without
///    re-probing the set.
///  * FastTlb fronts the fully-associative LRU scan with a one-compare MRU
///    check; the >99% same-page case never walks the entry array.
///  * MshrFile and WriteFifo replace the std::map / erase-from-front vector
///    of the seed with fixed-capacity arrays sized by the configuration
///    (6 entries on the 21164): all operations are short linear scans or
///    ring-buffer index arithmetic, no allocation on the simulation path.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SIM_FASTCACHES_H
#define BALSCHED_SIM_FASTCACHES_H

#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace bsched {
namespace sim {

namespace fastdetail {

inline bool isPow2(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

inline unsigned log2OfPow2(uint64_t X) {
  unsigned S = 0;
  while ((X >>= 1) != 0)
    ++S;
  return S;
}

} // namespace fastdetail

/// Set-associative LRU cache (tags only), behaviourally identical to
/// sim::Cache. The configuration must have passed validateMachineConfig.
class FastCache {
public:
  explicit FastCache(const CacheConfig &C)
      : Assoc(C.Assoc), Latency(C.Latency), LineSize(C.LineSize) {
    NumSets = static_cast<unsigned>(C.SizeBytes / (C.LineSize * C.Assoc));
    Tags.assign(static_cast<size_t>(NumSets) * C.Assoc, ~0ull);
    Stamp.assign(Tags.size(), 0);
    Pow2Line = fastdetail::isPow2(LineSize);
    LineShift = Pow2Line ? fastdetail::log2OfPow2(LineSize) : 0;
    Pow2Sets = fastdetail::isPow2(NumSets);
    SetMask = Pow2Sets ? NumSets - 1 : 0;
  }

  uint64_t lineOf(uint64_t Addr) const {
    return Pow2Line ? Addr >> LineShift : Addr / LineSize;
  }

  /// Returns true on hit; fills the line on miss when \p Allocate is set.
  /// Updates recency and \p Stats either way (exactly like Cache::access).
  bool access(uint64_t Addr, bool Allocate, CacheStats &Stats) {
    ++Stats.Accesses;
    uint64_t Line = lineOf(Addr);
    size_t Base =
        static_cast<size_t>(Pow2Sets ? (Line & SetMask) : (Line % NumSets)) *
        Assoc;
    ++Clock;
    if (Assoc == 1) {
      // Direct-mapped one-probe fast path (the 21164 L1s and L3).
      if (Tags[Base] == Line) {
        Stamp[Base] = Clock;
        LastSlot = Base;
        return true;
      }
      ++Stats.Misses;
      if (Allocate) {
        Tags[Base] = Line;
        Stamp[Base] = Clock;
        LastSlot = Base;
      }
      return false;
    }
    for (unsigned W = 0; W != Assoc; ++W) {
      if (Tags[Base + W] == Line) {
        Stamp[Base + W] = Clock;
        LastSlot = Base + W;
        return true;
      }
    }
    ++Stats.Misses;
    if (Allocate) {
      size_t Victim = Base;
      for (unsigned W = 1; W != Assoc; ++W)
        if (Stamp[Base + W] < Stamp[Victim])
          Victim = Base + W;
      Tags[Victim] = Line;
      Stamp[Victim] = Clock;
      LastSlot = Victim;
    }
    return false;
  }

  /// Hit check that updates recency on hit but never allocates (the L1's
  /// write-around behaviour for stores).
  bool touch(uint64_t Addr, CacheStats &Stats) {
    return access(Addr, /*Allocate=*/false, Stats);
  }

  /// Books one access that is known to hit the line touched by the previous
  /// access/allocate (the fetch path's same-line run): identical counter and
  /// recency effects to a full access() that hits, without the probe. Only
  /// valid when the caller can prove residency — nothing else may have
  /// evicted the line in between.
  void cheapHit(CacheStats &Stats) {
    ++Stats.Accesses;
    ++Clock;
    Stamp[LastSlot] = Clock;
  }

  unsigned numSets() const { return NumSets; }

private:
  unsigned Assoc;
  int Latency;
  unsigned LineSize;
  unsigned NumSets;
  bool Pow2Line = false, Pow2Sets = false;
  unsigned LineShift = 0;
  uint64_t SetMask = 0;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Stamp;
  uint64_t Clock = 0;
  size_t LastSlot = 0;
};

/// Fully-associative LRU TLB with a single-entry MRU front, behaviourally
/// identical to sim::Tlb.
class FastTlb {
public:
  FastTlb(unsigned Entries, unsigned PageSize)
      : PageSize(PageSize), Pages(Entries, ~0ull), Stamp(Entries, 0) {
    Pow2Page = fastdetail::isPow2(PageSize);
    PageShift = Pow2Page ? fastdetail::log2OfPow2(PageSize) : 0;
  }

  /// Returns true on hit; always leaves the page mapped.
  bool access(uint64_t Addr) {
    uint64_t Page = Pow2Page ? Addr >> PageShift : Addr / PageSize;
    ++Clock;
    // MRU fast path: consecutive accesses overwhelmingly touch the same
    // page. A hit here is exactly the hit the reference scan would find —
    // pages are unique in the table — with the same recency update.
    if (Pages[MruIdx] == Page) {
      Stamp[MruIdx] = Clock;
      return true;
    }
    size_t Victim = 0;
    for (size_t I = 0; I != Pages.size(); ++I) {
      if (Pages[I] == Page) {
        Stamp[I] = Clock;
        MruIdx = I;
        return true;
      }
      if (Stamp[I] < Stamp[Victim])
        Victim = I;
    }
    Pages[Victim] = Page;
    Stamp[Victim] = Clock;
    MruIdx = Victim;
    return false;
  }

  /// Books one access known to hit the MRU page (fetch same-page runs);
  /// identical effects to access() hitting, without the compare/scan.
  void cheapHit() {
    ++Clock;
    Stamp[MruIdx] = Clock;
  }

private:
  unsigned PageSize;
  bool Pow2Page = false;
  unsigned PageShift = 0;
  std::vector<uint64_t> Pages;
  std::vector<uint64_t> Stamp;
  uint64_t Clock = 0;
  size_t MruIdx = 0;
};

/// Outstanding-miss file: fixed-capacity array keyed by line address,
/// replacing the seed's std::map<line, completion cycle>. At most one entry
/// per line (the simulator merges while an entry is live and retires stale
/// entries before inserting).
class MshrFile {
public:
  explicit MshrFile(unsigned Capacity) { Entries.resize(Capacity); }

  struct Entry {
    uint64_t Line;
    uint64_t Done;
  };

  /// Completion cycle of the outstanding miss to \p Line, or 0 when absent.
  /// (0 is unambiguous: a real entry's Done is always > the insert cycle.)
  uint64_t findDone(uint64_t Line) const {
    for (unsigned I = 0; I != Count; ++I)
      if (Entries[I].Line == Line)
        return Entries[I].Done;
    return 0;
  }

  /// Drops every entry whose miss has completed by \p Cycle.
  void retire(uint64_t Cycle) {
    for (unsigned I = 0; I != Count;) {
      if (Entries[I].Done <= Cycle)
        Entries[I] = Entries[--Count];
      else
        ++I;
    }
  }

  /// Earliest completion cycle over all live entries (call only when full).
  uint64_t earliestDone() const {
    uint64_t Earliest = ~0ull;
    for (unsigned I = 0; I != Count; ++I)
      if (Entries[I].Done < Earliest)
        Earliest = Entries[I].Done;
    return Earliest;
  }

  /// Inserts a new miss; the caller must have retired any stale entry for
  /// the same line and ensured a free slot (the simulator's stall logic).
  void insert(uint64_t Line, uint64_t Done) {
    Entries[Count++] = {Line, Done};
  }

  unsigned size() const { return Count; }
  unsigned capacity() const { return static_cast<unsigned>(Entries.size()); }

private:
  std::vector<Entry> Entries;
  unsigned Count = 0;
};

/// Write-buffer retire queue: a fixed ring buffer of ascending retire
/// cycles, replacing the seed's erase-from-front vector. Push cycles are
/// non-decreasing (each is current cycle + L2 latency), so FIFO order is
/// retire order.
class WriteFifo {
public:
  explicit WriteFifo(unsigned Capacity) { Buf.resize(Capacity); }

  bool empty() const { return Count == 0; }
  unsigned size() const { return Count; }
  uint64_t front() const { return Buf[Head]; }

  void push(uint64_t RetireCycle) {
    Buf[(Head + Count) % Buf.size()] = RetireCycle;
    ++Count;
  }

  /// Pops every entry retired by \p Cycle.
  void drain(uint64_t Cycle) {
    while (Count != 0 && Buf[Head] <= Cycle) {
      Head = (Head + 1) % Buf.size();
      --Count;
    }
  }

private:
  std::vector<uint64_t> Buf;
  size_t Head = 0;
  unsigned Count = 0;
};

} // namespace sim
} // namespace bsched

#endif // BALSCHED_SIM_FASTCACHES_H
