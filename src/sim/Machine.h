//===- sim/Machine.h - Alpha 21164-like timing simulator --------*- C++ -*-===//
///
/// \file
/// Execution-driven timing simulator modelling the DEC Alpha 21164 the way
/// section 4.3 describes: single instruction issue (deliberately, to isolate
/// balanced scheduling's ability to exploit load-level parallelism),
/// in-order with scoreboard interlocks, a lockup-free first-level data cache
/// (six outstanding misses), a three-level cache hierarchy plus memory,
/// instruction and data TLBs, and 2-bit branch prediction.
///
/// It also implements the stochastic "simple model" of the original balanced
/// scheduling study (Kerns & Eggers 1993) — single-cycle fixed-latency
/// instructions, probabilistic cache behaviour, perfect front end — used by
/// the section 5.5 model-comparison experiment.
///
/// The simulator reports the metrics the paper's tables need: total cycles,
/// load-interlock and fixed-latency-interlock cycles, and dynamic
/// instruction counts by category (short/long integer, short/long floating
/// point, loads, stores, branches, spills and restores).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SIM_MACHINE_H
#define BALSCHED_SIM_MACHINE_H

#include "ir/IR.h"

#include <cstdint>
#include <string>

namespace bsched {
namespace sim {

/// One cache level. Latency is the total load-to-use latency when the access
/// is satisfied at this level (Table 2 style), not an incremental lookup.
struct CacheConfig {
  uint64_t SizeBytes;
  unsigned LineSize;
  unsigned Assoc;
  int Latency;
};

/// Selects between the optimized simulator core (the default) and the seed
/// implementation preserved in ReferenceMachine.cpp. The two produce
/// bit-identical SimResults for every configuration (asserted by
/// sim_equivalence_test and the golden sim-stats test); the reference exists
/// as a correctness oracle and as the baseline bench_sim_throughput measures
/// speedups against — the same twin pattern as sched::SchedImpl.
enum class SimImpl : uint8_t { Fast, Reference };

struct MachineConfig {
  // Memory hierarchy (Table 2). The 21164: 8KB direct-mapped L1 caches with
  // 32-byte lines, a 96KB 3-way on-chip L2, a board-level L3, ~50-cycle
  // memory ("the maximum load latency is 50 cycles", footnote 1).
  CacheConfig L1D{8 * 1024, 32, 1, ir::LoadHitLatency};
  CacheConfig L1I{8 * 1024, 32, 1, 1};
  CacheConfig L2{96 * 1024, 32, 3, 8};
  CacheConfig L3{2 * 1024 * 1024, 64, 1, 20};
  int MemoryLatency = 50;

  unsigned NumMSHRs = 6; ///< 21164 miss-address-file entries.
  unsigned WriteBufferEntries = 6;

  unsigned DTlbEntries = 64;
  unsigned ITlbEntries = 48;
  unsigned PageSize = 8 * 1024;
  int TlbRefillLatency = 30;

  unsigned BranchPredictorEntries = 1024; ///< 2-bit counters.
  int BranchMispredictPenalty = 5;

  // --- Issue model ---------------------------------------------------------
  // The paper deliberately simulates single issue "to understand fully
  // balanced scheduling's ability to exploit load-level parallelism before
  // applying it to multiple-issue processors". Widths > 1 implement the
  // paper's stated future work: an in-order superscalar with 21164-like
  // per-cycle limits (2 integer slots, 2 floating-point slots, 1 memory
  // operation), issuing in order until a slot or operand is unavailable.
  unsigned IssueWidth = 1;
  unsigned MaxIntPerCycle = 2; ///< integer ALU + branch slots (width > 1).
  unsigned MaxFpPerCycle = 2;  ///< floating-point slots (width > 1).
  unsigned MaxMemPerCycle = 1; ///< loads + stores per cycle (width > 1).

  /// Instruction addresses start here so code and data do not collide in the
  /// unified L2/L3.
  uint64_t CodeBase = 1ull << 28;

  /// Analysis toggle: skip instruction-fetch modeling (I-cache and ITLB),
  /// isolating back-end effects. The cycle-accuracy tests use this; the
  /// paper's experiments keep the full front end.
  bool PerfectFrontEnd = false;

  // --- Simple stochastic model (section 5.5 / the 1993 study) -------------
  bool SimpleModel = false;
  double SimpleHitRate = 0.95; ///< the 1993 study used 0.80 and 0.95.
  int SimpleHitLatency = 2;
  int SimpleMissLatency = 24; ///< 1990-era miss cost over a bus interconnect.
  uint64_t SimpleSeed = 12345;

  /// Simulator-core implementation; results are bit-identical either way.
  SimImpl Impl = SimImpl::Fast;
};

/// Dynamic instruction counts, bucketed as in section 4.3. Spill/restore
/// instructions are counted in their own buckets only.
struct InstrCounts {
  uint64_t ShortInt = 0, LongInt = 0;
  uint64_t ShortFp = 0, LongFp = 0;
  uint64_t Loads = 0, Stores = 0, Branches = 0;
  uint64_t Spills = 0, Restores = 0;

  uint64_t total() const {
    return ShortInt + LongInt + ShortFp + LongFp + Loads + Stores + Branches +
           Spills + Restores;
  }
};

struct CacheStats {
  uint64_t Accesses = 0, Misses = 0;

  double missRate() const {
    return Accesses == 0 ? 0.0
                         : static_cast<double>(Misses) /
                               static_cast<double>(Accesses);
  }
};

struct SimResult {
  bool Finished = false; ///< false = cycle budget exhausted.
  std::string Error;     ///< non-empty on configuration/runtime error.
  uint64_t Checksum = 0;

  uint64_t Cycles = 0;
  InstrCounts Counts;

  // Interlock attribution (the paper's key metric split).
  uint64_t LoadInterlockCycles = 0;  ///< stalls on values produced by loads.
  uint64_t FixedInterlockCycles = 0; ///< stalls on fixed-latency producers.

  // Other stall sources.
  uint64_t ICacheStallCycles = 0;
  uint64_t ITlbStallCycles = 0;
  uint64_t DTlbStallCycles = 0;
  uint64_t BranchPenaltyCycles = 0;
  uint64_t MshrStallCycles = 0;
  uint64_t WriteBufferStallCycles = 0;

  CacheStats L1D, L2, L3, L1I;
  uint64_t DTlbMisses = 0, ITlbMisses = 0;
  uint64_t BranchMispredicts = 0;

  bool ok() const { return Error.empty(); }
  double loadInterlockShare() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(LoadInterlockCycles) /
                             static_cast<double>(Cycles);
  }
};

/// Simulates \p M (laid out, physical registers only) to completion or until
/// \p MaxCycles. The returned checksum matches ir::interpret's for the same
/// module — the standing cross-check between the timing and functional
/// models. The configuration is validated up front; a malformed
/// MachineConfig (zero-set cache, zero-entry TLB or predictor, ...) yields
/// SimResult::Error instead of undefined behaviour.
SimResult simulate(const ir::Module &M, const MachineConfig &Config = {},
                   uint64_t MaxCycles = 50000000000ull);

/// Human-readable description of the first problem with \p Config, or empty
/// when it is simulable. simulate() calls this; exposed for tests and for
/// callers that want to fail fast before compiling.
std::string validateMachineConfig(const MachineConfig &Config);

} // namespace sim
} // namespace bsched

#endif // BALSCHED_SIM_MACHINE_H
