//===- sim/Machine.cpp - Simulator entry point: validate and dispatch ------===//
//
// sim::simulate is a thin front door: it validates the MachineConfig once
// (so neither core can divide by zero or index an empty table on a malformed
// configuration) and dispatches to the core selected by MachineConfig::Impl.
// The cores themselves live in FastMachine.cpp and ReferenceMachine.cpp.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulators.h"

#include <string>

using namespace bsched;
using namespace bsched::sim;

namespace {

/// A cache with zero sets ((SizeBytes / (LineSize * Assoc)) == 0) faults on
/// the first access (Line % 0); zero LineSize or Assoc faults even earlier,
/// in the constructor's set-count division.
std::string checkCache(const char *Name, const CacheConfig &C) {
  if (C.LineSize == 0)
    return std::string(Name) + ": LineSize must be positive";
  if (C.Assoc == 0)
    return std::string(Name) + ": Assoc must be positive";
  if (C.SizeBytes < static_cast<uint64_t>(C.LineSize) * C.Assoc)
    return std::string(Name) +
           ": SizeBytes smaller than one set (LineSize * Assoc) leaves zero "
           "sets";
  if (C.Latency < 1)
    return std::string(Name) + ": Latency must be at least one cycle";
  return std::string();
}

} // namespace

std::string sim::validateMachineConfig(const MachineConfig &Config) {
  // The memory system is constructed (and must be constructible) even for
  // SimpleModel runs, so every field is validated unconditionally.
  for (const auto &[Name, C] :
       {std::pair<const char *, const CacheConfig &>{"L1D", Config.L1D},
        {"L1I", Config.L1I},
        {"L2", Config.L2},
        {"L3", Config.L3}})
    if (std::string E = checkCache(Name, C); !E.empty())
      return E;
  if (Config.MemoryLatency < 1)
    return "MemoryLatency must be at least one cycle";
  if (Config.NumMSHRs == 0)
    return "NumMSHRs must be positive (the L1D is lockup-free, not stall-free)";
  if (Config.WriteBufferEntries == 0)
    return "WriteBufferEntries must be positive";
  if (Config.DTlbEntries == 0 || Config.ITlbEntries == 0)
    return "TLBs need at least one entry";
  if (Config.PageSize == 0)
    return "PageSize must be positive";
  if (Config.TlbRefillLatency < 0)
    return "TlbRefillLatency must be non-negative";
  if (Config.BranchPredictorEntries == 0)
    return "BranchPredictorEntries must be positive (counter index is mod "
           "table size)";
  if (Config.BranchMispredictPenalty < 0)
    return "BranchMispredictPenalty must be non-negative";
  if (Config.IssueWidth == 0)
    return "IssueWidth must be at least one";
  if (Config.IssueWidth > 1 && (Config.MaxIntPerCycle == 0 ||
                                Config.MaxFpPerCycle == 0 ||
                                Config.MaxMemPerCycle == 0))
    return "per-class issue limits must be positive when IssueWidth > 1";
  if (Config.SimpleModel &&
      (Config.SimpleHitLatency < 1 || Config.SimpleMissLatency < 1))
    return "simple-model latencies must be at least one cycle";
  return std::string();
}

SimResult sim::simulate(const ir::Module &M, const MachineConfig &Config,
                        uint64_t MaxCycles) {
  if (std::string E = validateMachineConfig(Config); !E.empty()) {
    SimResult R;
    R.Error = "invalid machine configuration: " + E;
    return R;
  }
  return Config.Impl == SimImpl::Reference
             ? detail::simulateReference(M, Config, MaxCycles)
             : detail::simulateFast(M, Config, MaxCycles);
}
