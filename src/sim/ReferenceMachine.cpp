//===- sim/ReferenceMachine.cpp - Seed 21164 simulator (oracle) ------------===//
//
// The original (seed) simulator, preserved verbatim as SimImpl::Reference:
// it walks the IR instruction-by-instruction through the generic
// executeInstr, scans the fully-associative TLBs linearly on every access,
// and keeps MSHRs in a std::map. FastMachine.cpp reimplements the same
// machine for throughput; the golden sim-stats and sim-equivalence tests
// hold the two bit-identical, and bench_sim_throughput reports the speedup
// of Fast over this implementation.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulators.h"

#include "sim/Caches.h"

#include "ir/Interp.h"
#include "support/RNG.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace bsched;
using namespace bsched::sim;
using namespace bsched::ir;

namespace {

//===----------------------------------------------------------------------===//
// Simulator
//===----------------------------------------------------------------------===//

class Simulator {
public:
  Simulator(const Module &M, const MachineConfig &C, uint64_t MaxCycles)
      : M(M), Config(C), MaxCycles(MaxCycles), State(M), L1D(C.L1D),
        L1I(C.L1I), L2(C.L2), L3(C.L3), DTlb(C.DTlbEntries, C.PageSize),
        ITlb(C.ITlbEntries, C.PageSize), Pred(C.BranchPredictorEntries),
        Rng(C.SimpleSeed) {}

  SimResult run() {
    if (!validate())
      return R;
    layoutCode();

    ReadyAt.assign(M.Fn.numRegs(), 0);
    LoadProduced.assign(M.Fn.numRegs(), false);

    int Block = 0;
    size_t Index = 0;
    while (true) {
      if (Cycle > MaxCycles) {
        R.Cycles = Cycle;
        return R;
      }
      const Instr &In = M.Fn.Blocks[Block].Instrs[Index];
      uint64_t InstrAddr = CodeAddr[Block] + 4 * Index;

      // Close the current issue group if no slot (total or per-class) is
      // available for this instruction.
      while (!slotAvailable(In))
        closeGroup();

      fetch(InstrAddr);
      stallOnSources(In);
      count(In);
      takeSlot(In);

      if (In.isTerminator()) {
        if (In.Op == Opcode::Ret) {
          R.Finished = true;
          R.Cycles = Cycle + 1;
          R.Checksum = State.outputChecksum(M);
          return R;
        }
        bool Taken = true;
        int Next;
        if (In.Op == Opcode::Br) {
          Taken = State.readInt(In.SrcA) != 0;
          Next = Taken ? In.Target0 : In.Target1;
          // The 1993 simple model assumes a perfect front end.
          if (!Config.SimpleModel &&
              !Pred.predictAndUpdate(InstrAddr, Taken)) {
            ++R.BranchMispredicts;
            closeGroup();
            Cycle += static_cast<uint64_t>(Config.BranchMispredictPenalty);
            R.BranchPenaltyCycles +=
                static_cast<uint64_t>(Config.BranchMispredictPenalty);
          } else if (Taken) {
            // No issue past a taken branch within the same cycle.
            closeGroup();
          }
        } else {
          Next = In.Target0;
          closeGroup();
        }
        Block = Next;
        Index = 0;
        continue;
      }

      issue(In);
      executeInstr(State, In);
      ++Index;
    }
  }

private:
  const Module &M;
  MachineConfig Config;
  uint64_t MaxCycles;
  SimResult R;

  ExecState State;
  Cache L1D, L1I, L2, L3;
  Tlb DTlb, ITlb;
  BranchPredictor Pred;
  RNG Rng;

  uint64_t Cycle = 0;
  // Per-cycle issue bookkeeping (the in-order superscalar group).
  unsigned SlotsUsed = 0, IntUsed = 0, FpUsed = 0, MemUsed = 0;
  std::vector<uint64_t> ReadyAt;
  std::vector<bool> LoadProduced;
  std::vector<uint64_t> CodeAddr; ///< first instruction address per block.

  /// Outstanding L1D misses: line address -> completion cycle.
  std::map<uint64_t, uint64_t> Mshrs;
  /// Write-buffer entry retire times, ascending.
  std::vector<uint64_t> WriteBuffer;
  uint64_t DivBusyUntil = 0;

  enum class Pipe { Int, Fp, Mem };

  static Pipe pipeOf(const Instr &In) {
    switch (opInfo(In.Op).Cls) {
    case InstrClass::ShortFp:
    case InstrClass::LongFp:
      return Pipe::Fp;
    case InstrClass::LoadCls:
    case InstrClass::StoreCls:
      return Pipe::Mem;
    default:
      return Pipe::Int;
    }
  }

  bool slotAvailable(const Instr &In) const {
    if (SlotsUsed >= Config.IssueWidth)
      return false;
    if (Config.IssueWidth == 1)
      return true; // the single slot is the only constraint
    switch (pipeOf(In)) {
    case Pipe::Int:
      return IntUsed < Config.MaxIntPerCycle;
    case Pipe::Fp:
      return FpUsed < Config.MaxFpPerCycle;
    case Pipe::Mem:
      return MemUsed < Config.MaxMemPerCycle;
    }
    return true;
  }

  /// Ends the current issue group: the next instruction starts a new cycle.
  void closeGroup() {
    ++Cycle;
    SlotsUsed = IntUsed = FpUsed = MemUsed = 0;
  }

  /// Moves time forward (stalls); any partially filled group is abandoned.
  void advanceTo(uint64_t NewCycle) {
    Cycle = NewCycle;
    SlotsUsed = IntUsed = FpUsed = MemUsed = 0;
  }

  /// A stall discovered while the current instruction is issuing (divider,
  /// TLB refill, MSHR or write-buffer pressure): time moves, and the group
  /// is marked full so the next instruction starts a fresh cycle.
  void stallInIssue(uint64_t NewCycle) {
    Cycle = NewCycle;
    SlotsUsed = Config.IssueWidth;
  }

  void takeSlot(const Instr &In) {
    ++SlotsUsed;
    switch (pipeOf(In)) {
    case Pipe::Int: ++IntUsed; break;
    case Pipe::Fp: ++FpUsed; break;
    case Pipe::Mem: ++MemUsed; break;
    }
  }

  bool validate() {
    for (const BasicBlock &B : M.Fn.Blocks)
      for (const Instr &I : B.Instrs) {
        std::vector<Reg> Uses;
        I.appendUses(Uses);
        if (Reg D = I.def(); D.isValid())
          Uses.push_back(D);
        for (Reg Rg : Uses)
          if (!Rg.isPhys()) {
            R.Error = "simulator requires register-allocated code";
            return false;
          }
      }
    return true;
  }

  void layoutCode() {
    CodeAddr.resize(M.Fn.Blocks.size());
    uint64_t Addr = Config.CodeBase;
    for (const BasicBlock &B : M.Fn.Blocks) {
      CodeAddr[static_cast<size_t>(B.Id)] = Addr;
      Addr += 4 * B.Instrs.size();
    }
  }

  //===--------------------------------------------------------------------===//
  // Front end
  //===--------------------------------------------------------------------===//

  void fetch(uint64_t Addr) {
    if (Config.SimpleModel || Config.PerfectFrontEnd)
      return; // Perfect instruction supply.
    if (!ITlb.access(Addr)) {
      ++R.ITlbMisses;
      advanceTo(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
      R.ITlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
    }
    if (!L1I.access(Addr, /*Allocate=*/true, R.L1I)) {
      int Latency = Config.L2.Latency;
      if (!L2.access(Addr, true, R.L2)) {
        Latency = Config.L3.Latency;
        if (!L3.access(Addr, true, R.L3))
          Latency = Config.MemoryLatency;
      }
      uint64_t Stall = static_cast<uint64_t>(Latency - Config.L1I.Latency);
      advanceTo(Cycle + Stall);
      R.ICacheStallCycles += Stall;
    }
  }

  //===--------------------------------------------------------------------===//
  // Scoreboard
  //===--------------------------------------------------------------------===//

  std::vector<Reg> ScratchUses;

  void stallOnSources(const Instr &In) {
    std::vector<Reg> &Uses = ScratchUses;
    Uses.clear();
    In.appendUses(Uses);
    uint64_t Until = Cycle;
    bool BlameLoad = false;
    for (Reg Rg : Uses) {
      uint64_t T = ReadyAt[Rg.Id];
      if (T > Until) {
        Until = T;
        BlameLoad = LoadProduced[Rg.Id];
      } else if (T == Until && T > Cycle && LoadProduced[Rg.Id]) {
        // Tie between a load and a fixed-latency producer: blame the load,
        // like the paper's accounting of load interlocks.
        BlameLoad = true;
      }
    }
    if (Until > Cycle) {
      uint64_t Stall = Until - Cycle;
      if (BlameLoad)
        R.LoadInterlockCycles += Stall;
      else
        R.FixedInterlockCycles += Stall;
      advanceTo(Until);
    }
  }

  void count(const Instr &In) {
    if (In.IsSpill) {
      ++R.Counts.Spills;
      return;
    }
    if (In.IsRestore) {
      ++R.Counts.Restores;
      return;
    }
    switch (opInfo(In.Op).Cls) {
    case InstrClass::ShortInt: ++R.Counts.ShortInt; break;
    case InstrClass::LongInt: ++R.Counts.LongInt; break;
    case InstrClass::ShortFp: ++R.Counts.ShortFp; break;
    case InstrClass::LongFp: ++R.Counts.LongFp; break;
    case InstrClass::LoadCls: ++R.Counts.Loads; break;
    case InstrClass::StoreCls: ++R.Counts.Stores; break;
    case InstrClass::BranchCls: ++R.Counts.Branches; break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Back end
  //===--------------------------------------------------------------------===//

  void issue(const Instr &In) {
    if (In.isLoad()) {
      issueLoad(In);
      return;
    }
    if (In.isStore()) {
      issueStore(In);
      return;
    }
    int Latency =
        Config.SimpleModel ? 1 : opInfo(In.Op).Latency;
    if (In.Op == Opcode::FDiv && !Config.SimpleModel) {
      // The divider is not pipelined.
      if (DivBusyUntil > Cycle) {
        R.FixedInterlockCycles += DivBusyUntil - Cycle;
        stallInIssue(DivBusyUntil);
      }
      DivBusyUntil = Cycle + static_cast<uint64_t>(Latency);
    }
    if (Reg D = In.def(); D.isValid()) {
      ReadyAt[D.Id] = Cycle + static_cast<uint64_t>(Latency);
      LoadProduced[D.Id] = false;
    }
  }

  /// Data-side hierarchy access; returns the load-to-use latency.
  int dataAccess(uint64_t Addr, bool IsLoad) {
    if (L1D.access(Addr, /*Allocate=*/IsLoad, R.L1D))
      return Config.L1D.Latency;
    if (L2.access(Addr, true, R.L2))
      return Config.L2.Latency;
    if (L3.access(Addr, true, R.L3))
      return Config.L3.Latency;
    return Config.MemoryLatency;
  }

  void issueLoad(const Instr &In) {
    uint64_t Addr = State.effectiveAddress(In);
    int Latency;
    if (Config.SimpleModel) {
      Latency = Rng.nextBool(Config.SimpleHitRate) ? Config.SimpleHitLatency
                                                   : Config.SimpleMissLatency;
    } else {
      if (!DTlb.access(Addr)) {
        ++R.DTlbMisses;
        stallInIssue(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
        R.DTlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
      }
      uint64_t Line = Addr / Config.L1D.LineSize;
      auto Pending = Mshrs.find(Line);
      if (Pending != Mshrs.end() && Pending->second > Cycle) {
        // Merge with the outstanding miss to the same line.
        Latency = static_cast<int>(Pending->second - Cycle);
        // Keep the L1 counters honest: this is another L1 access that did
        // not hit in the live cache state.
        ++R.L1D.Accesses;
      } else {
        Latency = dataAccess(Addr, /*IsLoad=*/true);
        if (Latency > Config.L1D.Latency) {
          // Lockup-free cache: take an MSHR, stalling if all are busy.
          retireMshrs();
          if (Mshrs.size() >= Config.NumMSHRs) {
            uint64_t Earliest = ~0ull;
            for (const auto &[L, Done] : Mshrs) {
              (void)L;
              Earliest = std::min(Earliest, Done);
            }
            R.MshrStallCycles += Earliest - Cycle;
            stallInIssue(Earliest);
            retireMshrs();
          }
          Mshrs[Line] = Cycle + static_cast<uint64_t>(Latency);
        }
      }
    }
    ReadyAt[In.Dst.Id] = Cycle + static_cast<uint64_t>(Latency);
    LoadProduced[In.Dst.Id] = true;
  }

  void retireMshrs() {
    for (auto It = Mshrs.begin(); It != Mshrs.end();) {
      if (It->second <= Cycle)
        It = Mshrs.erase(It);
      else
        ++It;
    }
  }

  void issueStore(const Instr &In) {
    if (Config.SimpleModel)
      return;
    uint64_t Addr = State.effectiveAddress(In);
    if (!DTlb.access(Addr)) {
      ++R.DTlbMisses;
      stallInIssue(Cycle + static_cast<uint64_t>(Config.TlbRefillLatency));
      R.DTlbStallCycles += static_cast<uint64_t>(Config.TlbRefillLatency);
    }
    // Write-through with no write-allocate at L1; the write buffer absorbs
    // the L2 access time.
    L1D.touch(Addr, R.L1D);
    L2.access(Addr, /*Allocate=*/true, R.L2);
    while (!WriteBuffer.empty() && WriteBuffer.front() <= Cycle)
      WriteBuffer.erase(WriteBuffer.begin());
    if (WriteBuffer.size() >= Config.WriteBufferEntries) {
      uint64_t Earliest = WriteBuffer.front();
      R.WriteBufferStallCycles += Earliest - Cycle;
      stallInIssue(Earliest);
      while (!WriteBuffer.empty() && WriteBuffer.front() <= Cycle)
        WriteBuffer.erase(WriteBuffer.begin());
    }
    WriteBuffer.push_back(Cycle + static_cast<uint64_t>(Config.L2.Latency));
  }
};

} // namespace

SimResult sim::detail::simulateReference(const Module &M,
                                         const MachineConfig &Config,
                                         uint64_t MaxCycles) {
  return Simulator(M, Config, MaxCycles).run();
}
