//===- sim/Simulators.h - Internal simulator-core entry points --*- C++ -*-===//
///
/// \file
/// Internal (non-installed) declarations of the two simulator cores behind
/// sim::simulate. Machine.cpp validates the configuration and dispatches on
/// MachineConfig::Impl; the cores live in FastMachine.cpp (predecoded
/// micro-op pipeline with fast memory-system models) and
/// ReferenceMachine.cpp (the seed simulator, preserved verbatim as the
/// differential-testing oracle).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SIM_SIMULATORS_H
#define BALSCHED_SIM_SIMULATORS_H

#include "sim/Machine.h"

namespace bsched {
namespace sim {
namespace detail {

/// The seed simulator: generic executeInstr per dynamic instruction,
/// fully-associative linear TLB scans, map-backed MSHRs.
SimResult simulateReference(const ir::Module &M, const MachineConfig &Config,
                            uint64_t MaxCycles);

/// The optimized core: per-block predecoded micro-ops, MRU/one-probe memory
/// system fast paths, run-based fetch modeling. Bit-identical results.
SimResult simulateFast(const ir::Module &M, const MachineConfig &Config,
                       uint64_t MaxCycles);

} // namespace detail
} // namespace sim
} // namespace bsched

#endif // BALSCHED_SIM_SIMULATORS_H
