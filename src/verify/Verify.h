//===- verify/Verify.h - Static schedule/codegen verifier -------*- C++ -*-===//
///
/// \file
/// Translation validation for the scheduling and register-allocation passes:
/// given snapshots of a module before and after a pass, independently
/// re-derive the legality of the transformation and report every violation as
/// a structured diagnostic (block + instruction + message) instead of a bool.
///
/// The verifier deliberately shares no analysis code with `sched::`,
/// `trace::` or `regalloc::` beyond the IR definitions themselves: register
/// and memory dependences are recomputed from scratch here, so a bug in the
/// scheduler's DAG construction cannot hide a matching bug in its own
/// validation. The oracle stack, from weakest to strongest localization:
///
///   end-to-end checksums (lang::evalProgram vs ir::interpret / sim)
///     -> structural checks (ir::verify)
///       -> this pass-by-pass legality verifier.
///
/// Checks implemented:
///  - verifySchedule: every block of After is a permutation of the same
///    block of Before that respects all true/anti/output register
///    dependences, memory dependences (affine disambiguation, recomputed),
///    and locality miss->hit ordering.
///  - verifyTraceSchedule: the trace-scheduling generalization — per-trace
///    permutation across block boundaries, no downward motion past a home
///    terminator, speculation safety above splits (no stores; destination
///    dead on the off-trace path), and an edge-by-edge audit that every
///    off-trace join edge carries exactly the compensation code its crossed
///    instructions require.
///  - verifyRegAlloc: post-allocation code has no virtual registers, no two
///    simultaneously-live values share a physical register (liveness re-run
///    on the pre-allocation code), spill/restore pairs bracket correctly
///    (every restore reloads a slot some spill wrote, slots map 1:1 to
///    virtual registers), rematerialized constants match their unique
///    definition, and reserved registers (frame base) are never allocated.
///  - verifyModule: structural validation plus the locality-annotation
///    contract (hit/miss marks appear only on loads, where they can only
///    shorten an assumed latency, never change semantics).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_VERIFY_VERIFY_H
#define BALSCHED_VERIFY_VERIFY_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace bsched {
namespace verify {

/// Which verifier produced a diagnostic.
enum class Check : uint8_t {
  Structure,    ///< ir::verify-level structural problem.
  Schedule,     ///< per-block scheduling legality.
  Compensation, ///< trace-scheduling compensation/speculation audit.
  RegAlloc,     ///< register-allocation legality.
  Locality,     ///< hit/miss annotation contract.
};

const char *checkName(Check C);

/// One verification failure, localized to a block and instruction where
/// possible (-1 = not attributable to a single block/instruction).
struct Diagnostic {
  Check Kind = Check::Structure;
  int Block = -1;
  int Instr = -1; ///< index within the block, or -1.
  std::string Message;
};

/// Renders "b3[7]: <message> [schedule]" style text.
std::string toString(const Diagnostic &D);

struct VerifyResult {
  std::vector<Diagnostic> Diags;

  bool ok() const { return Diags.empty(); }
  void add(Check Kind, int Block, int Instr, std::string Message) {
    Diags.push_back({Kind, Block, Instr, std::move(Message)});
  }
  void append(VerifyResult Other) {
    for (Diagnostic &D : Other.Diags)
      Diags.push_back(std::move(D));
  }
  /// All diagnostics, one per line.
  std::string report() const;
};

/// Checks that every block of \p After holds a permutation of the same
/// block of \p Before and that no reordered pair violates a register,
/// memory, or locality dependence. Dependences are recomputed here from the
/// Before code; nothing is trusted from the scheduler.
VerifyResult verifySchedule(const ir::Module &Before, const ir::Module &After);

/// Trace-scheduling variant: \p Traces is the list of formed traces (block
/// ids in control-flow order, a partition of Before's blocks, as recorded in
/// trace::TraceStats::Formed). Validates each trace region as a permutation,
/// enforces the downward-motion and speculation-safety rules, and audits
/// every off-trace join edge for correct compensation code. Blocks appended
/// beyond Before's block count are expected to be compensation blocks.
VerifyResult verifyTraceSchedule(const ir::Module &Before,
                                 const ir::Module &After,
                                 const std::vector<std::vector<int>> &Traces);

/// Checks the register allocation that turned \p Before (virtual-register
/// code) into \p After: instruction-by-instruction alignment with
/// restore/remat preambles and spill postambles, a consistent vreg->phys
/// assignment with no live-range interference, correctly bracketed
/// spill slots, and no use of reserved or out-of-budget registers
/// (\p AllocatablePerClass mirrors regalloc::RegAllocOptions).
VerifyResult verifyRegAlloc(const ir::Module &Before, const ir::Module &After,
                            unsigned AllocatablePerClass);

/// Structural validation (ir::verify) plus the locality-annotation contract,
/// as diagnostics.
VerifyResult verifyModule(const ir::Module &M);

} // namespace verify
} // namespace bsched

#endif // BALSCHED_VERIFY_VERIFY_H
