//===- verify/Verify.cpp - Static schedule/codegen verifier ----------------===//

#include "verify/Verify.h"

#include "ir/Liveness.h"
#include "regalloc/LinearScan.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace bsched;
using namespace bsched::verify;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

const char *verify::checkName(Check C) {
  switch (C) {
  case Check::Structure:
    return "structure";
  case Check::Schedule:
    return "schedule";
  case Check::Compensation:
    return "compensation";
  case Check::RegAlloc:
    return "regalloc";
  case Check::Locality:
    return "locality";
  }
  return "?";
}

std::string verify::toString(const Diagnostic &D) {
  std::string S;
  if (D.Block >= 0) {
    S += "b" + std::to_string(D.Block);
    if (D.Instr >= 0)
      S += "[" + std::to_string(D.Instr) + "]";
    S += ": ";
  }
  S += D.Message;
  S += std::string(" [") + checkName(D.Kind) + "]";
  return S;
}

std::string VerifyResult::report() const {
  std::string S;
  for (const Diagnostic &D : Diags)
    S += toString(D) + "\n";
  return S;
}

namespace {

/// Cap on diagnostics of one kind per region, so a badly broken module does
/// not produce quadratically many messages.
constexpr int MaxDiagsPerRegion = 8;

std::string regName(Reg R) {
  if (!R.isValid())
    return "<none>";
  if (R.Id < NumPhysPerClass)
    return "r" + std::to_string(R.Id);
  if (R.Id < NumPhysTotal)
    return "f" + std::to_string(R.Id - NumPhysPerClass);
  return "v" + std::to_string(R.Id - NumPhysTotal);
}

//===----------------------------------------------------------------------===//
// Instruction identity (for permutation matching)
//===----------------------------------------------------------------------===//

bool sameMemRef(const MemRef &A, const MemRef &B) {
  return A.ArrayId == B.ArrayId && A.HasForm == B.HasForm &&
         A.Terms == B.Terms && A.Const == B.Const && A.Size == B.Size;
}

/// Maps an After-side branch target back into Before block ids: compensation
/// blocks stand for the join block they jump to. Null = identity.
int contractTarget(int T, const std::vector<int> *Contract) {
  if (Contract && T >= 0 && T < static_cast<int>(Contract->size()))
    return (*Contract)[T];
  return T;
}

/// Field-exact identity of an After instruction \p A with a Before
/// instruction \p B, modulo compensation-block target contraction.
bool sameInstr(const Instr &A, const Instr &B,
               const std::vector<int> *Contract) {
  return A.Op == B.Op && A.Dst == B.Dst && A.SrcA == B.SrcA &&
         A.SrcB == B.SrcB && A.SrcC == B.SrcC && A.Imm == B.Imm &&
         A.HasImm == B.HasImm && A.Base == B.Base && A.Offset == B.Offset &&
         sameMemRef(A.Mem, B.Mem) && A.HM == B.HM &&
         A.LocalityGroup == B.LocalityGroup && A.IsSpill == B.IsSpill &&
         A.IsRestore == B.IsRestore && A.IsRemat == B.IsRemat &&
         contractTarget(A.Target0, Contract) == B.Target0 &&
         contractTarget(A.Target1, Contract) == B.Target1;
}

//===----------------------------------------------------------------------===//
// Independent dependence recomputation
//===----------------------------------------------------------------------===//

/// Per-instruction facts for conflict testing, derived from the Before
/// region only. Epoch stamps mirror the lowering-time MemRef contract: two
/// linear forms are comparable only when their term registers carry equal
/// definition counts at the respective program points.
struct InstrFacts {
  std::vector<Reg> Uses;
  Reg Def;
  bool IsMem = false, IsStore = false;
  const MemRef *Mem = nullptr;
  std::vector<uint32_t> Epochs; ///< parallel to Mem->Terms.
};

std::vector<InstrFacts> computeFacts(const std::vector<const Instr *> &Region) {
  std::vector<InstrFacts> F(Region.size());
  std::map<uint32_t, uint32_t> DefCount;
  for (size_t I = 0; I != Region.size(); ++I) {
    const Instr &In = *Region[I];
    In.appendUses(F[I].Uses);
    F[I].Def = In.def();
    if (F[I].Def.isValid())
      ++DefCount[F[I].Def.Id];
    if (In.isMem()) {
      F[I].IsMem = true;
      F[I].IsStore = In.isStore();
      F[I].Mem = &In.Mem;
      F[I].Epochs.reserve(In.Mem.Terms.size());
      for (const MemRef::Term &T : In.Mem.Terms)
        F[I].Epochs.push_back(DefCount[T.RegId]);
    }
  }
  return F;
}

/// True when the two memory accesses certainly touch disjoint bytes.
bool memDisjoint(const InstrFacts &A, const InstrFacts &B) {
  const MemRef &MA = *A.Mem;
  const MemRef &MB = *B.Mem;
  if (MA.ArrayId >= 0 && MB.ArrayId >= 0 && MA.ArrayId != MB.ArrayId)
    return true;
  if (!MA.sameLinearForm(MB))
    return false;
  if (A.Epochs != B.Epochs)
    return false;
  int64_t Delta = MA.Const - MB.Const;
  if (Delta < 0)
    Delta = -Delta;
  return Delta >= std::max(MA.Size, MB.Size);
}

/// Dependence between \p A and \p B where A precedes B in original order:
/// true/anti/output register dependences plus memory dependences for pairs
/// involving a store that are not provably disjoint.
bool conflictsWith(const InstrFacts &A, const InstrFacts &B) {
  if (A.Def.isValid()) {
    for (Reg R : B.Uses)
      if (R == A.Def)
        return true; // true dependence
    if (B.Def.isValid() && B.Def == A.Def)
      return true; // output dependence
  }
  if (B.Def.isValid())
    for (Reg R : A.Uses)
      if (R == B.Def)
        return true; // anti dependence
  if (A.IsMem && B.IsMem && (A.IsStore || B.IsStore) && !memDisjoint(A, B))
    return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Region permutation matching
//===----------------------------------------------------------------------===//

/// One instruction of the After region, labelled for diagnostics.
struct AfterInstr {
  const Instr *I = nullptr;
  int Block = -1; ///< After block id.
  int Index = -1; ///< index within that block.
};

/// Greedily matches every After instruction to the earliest identical
/// unmatched Before instruction (identical Before instructions therefore
/// keep their relative order, so no spurious inversions are introduced).
/// Returns the permutation After position -> Before index, or an empty
/// vector when the After region is not a permutation of the Before region.
std::vector<int> matchRegion(const std::vector<const Instr *> &BeforeR,
                             const std::vector<int> &BeforeBlockOf,
                             const std::vector<AfterInstr> &AfterR,
                             const std::vector<int> *Contract,
                             const char *What, VerifyResult &R) {
  std::vector<int> Perm(AfterR.size(), -1);
  std::vector<bool> Used(BeforeR.size(), false);
  size_t NextUnused = 0;
  bool OK = true;
  for (size_t P = 0; P != AfterR.size(); ++P) {
    int Found = -1;
    for (size_t I = NextUnused; I != BeforeR.size(); ++I)
      if (!Used[I] && sameInstr(*AfterR[P].I, *BeforeR[I], Contract)) {
        Found = static_cast<int>(I);
        break;
      }
    if (Found < 0) {
      R.add(Check::Schedule, AfterR[P].Block, AfterR[P].Index,
            "instruction '" + printInstr(*AfterR[P].I) +
                "' was not present in the " + What + " before scheduling");
      OK = false;
    } else {
      Used[Found] = true;
      Perm[P] = Found;
      while (NextUnused != BeforeR.size() && Used[NextUnused])
        ++NextUnused;
    }
  }
  for (size_t I = 0; I != BeforeR.size(); ++I)
    if (!Used[I]) {
      R.add(Check::Schedule, BeforeBlockOf[I], -1,
            "instruction '" + printInstr(*BeforeR[I]) +
                "' was dropped from the " + What);
      OK = false;
    }
  if (!OK)
    Perm.clear();
  return Perm;
}

/// Flags every After-order inversion of a Before-order dependence.
void checkOrder(const std::vector<const Instr *> &BeforeR,
                const std::vector<InstrFacts> &Facts,
                const std::vector<AfterInstr> &AfterR,
                const std::vector<int> &Perm, VerifyResult &R) {
  int Reported = 0;
  for (size_t Q = 0; Q != AfterR.size(); ++Q) {
    for (size_t P = 0; P != Q; ++P) {
      int BI = Perm[P], BJ = Perm[Q];
      if (BI <= BJ)
        continue;
      if (!conflictsWith(Facts[BJ], Facts[BI]))
        continue;
      R.add(Check::Schedule, AfterR[P].Block, AfterR[P].Index,
            "'" + printInstr(*BeforeR[BI]) + "' was scheduled above '" +
                printInstr(*BeforeR[BJ]) + "' despite a dependence");
      if (++Reported == MaxDiagsPerRegion)
        return;
    }
  }
}

/// A hit load that originally followed a miss of its locality group must
/// keep at least one of those misses above it: the miss->hit arcs are what
/// makes the hit annotation a latency statement rather than a semantic one.
void checkLocalityOrder(const std::vector<const Instr *> &BeforeR,
                        const std::vector<AfterInstr> &AfterR,
                        const std::vector<int> &Perm,
                        const std::vector<int> &InvPos, VerifyResult &R) {
  std::map<int, std::vector<int>> MissIdx; // group -> before indices, sorted.
  for (size_t I = 0; I != BeforeR.size(); ++I) {
    const Instr &In = *BeforeR[I];
    if (In.isLoad() && In.HM == HitMiss::Miss && In.LocalityGroup >= 0)
      MissIdx[In.LocalityGroup].push_back(static_cast<int>(I));
  }
  if (MissIdx.empty())
    return;
  int Reported = 0;
  for (size_t Q = 0; Q != AfterR.size(); ++Q) {
    int I = Perm[Q];
    const Instr &In = *BeforeR[I];
    if (!In.isLoad() || In.HM != HitMiss::Hit || In.LocalityGroup < 0)
      continue;
    auto It = MissIdx.find(In.LocalityGroup);
    if (It == MissIdx.end())
      continue;
    bool HadPrior = false, KeptPrior = false;
    for (int K : It->second) {
      if (K >= I)
        break;
      HadPrior = true;
      if (InvPos[K] < static_cast<int>(Q)) {
        KeptPrior = true;
        break;
      }
    }
    if (HadPrior && !KeptPrior) {
      R.add(Check::Locality, AfterR[Q].Block, AfterR[Q].Index,
            "hit load '" + printInstr(In) +
                "' floated above every preceding miss of its locality group");
      if (++Reported == MaxDiagsPerRegion)
        return;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// verifySchedule
//===----------------------------------------------------------------------===//

VerifyResult verify::verifySchedule(const Module &Before,
                                    const Module &After) {
  VerifyResult R;
  const Function &BF = Before.Fn;
  const Function &AF = After.Fn;
  if (BF.Blocks.size() != AF.Blocks.size()) {
    R.add(Check::Schedule, -1, -1,
          "block-local scheduling changed the block count from " +
              std::to_string(BF.Blocks.size()) + " to " +
              std::to_string(AF.Blocks.size()));
    return R;
  }
  for (size_t B = 0; B != BF.Blocks.size(); ++B) {
    const std::vector<Instr> &BIns = BF.Blocks[B].Instrs;
    const std::vector<Instr> &AIns = AF.Blocks[B].Instrs;
    std::vector<const Instr *> BeforeR;
    std::vector<int> BeforeBlockOf(BIns.size(), static_cast<int>(B));
    BeforeR.reserve(BIns.size());
    for (const Instr &I : BIns)
      BeforeR.push_back(&I);
    std::vector<AfterInstr> AfterR;
    AfterR.reserve(AIns.size());
    for (size_t K = 0; K != AIns.size(); ++K)
      AfterR.push_back({&AIns[K], static_cast<int>(B), static_cast<int>(K)});

    std::vector<int> Perm =
        matchRegion(BeforeR, BeforeBlockOf, AfterR, nullptr, "block", R);
    if (Perm.empty())
      continue;
    if (!Perm.empty() && Perm.back() != static_cast<int>(BeforeR.size()) - 1)
      R.add(Check::Schedule, static_cast<int>(B),
            static_cast<int>(AfterR.size()) - 1,
            "the block terminator is no longer the last instruction");
    std::vector<InstrFacts> Facts = computeFacts(BeforeR);
    std::vector<int> InvPos(BeforeR.size(), -1);
    for (size_t P = 0; P != Perm.size(); ++P)
      InvPos[Perm[P]] = static_cast<int>(P);
    checkOrder(BeforeR, Facts, AfterR, Perm, R);
    checkLocalityOrder(BeforeR, AfterR, Perm, InvPos, R);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// verifyTraceSchedule
//===----------------------------------------------------------------------===//

VerifyResult
verify::verifyTraceSchedule(const Module &Before, const Module &After,
                            const std::vector<std::vector<int>> &Traces) {
  VerifyResult R;
  const Function &BF = Before.Fn;
  const Function &AF = After.Fn;
  const int NB = static_cast<int>(BF.Blocks.size());
  const int NA = static_cast<int>(AF.Blocks.size());

  // --- Certificate validation: the traces must partition Before's blocks. --
  std::vector<bool> Seen(static_cast<size_t>(NB), false);
  for (const std::vector<int> &T : Traces)
    for (int B : T) {
      if (B < 0 || B >= NB || Seen[static_cast<size_t>(B)]) {
        R.add(Check::Compensation, B, -1,
              "trace certificate is not a partition of the function's blocks");
        return R;
      }
      Seen[static_cast<size_t>(B)] = true;
    }
  for (int B = 0; B != NB; ++B)
    if (!Seen[static_cast<size_t>(B)]) {
      R.add(Check::Compensation, B, -1,
            "trace certificate does not cover every block");
      return R;
    }
  if (NA < NB) {
    R.add(Check::Compensation, -1, -1, "trace scheduling removed blocks");
    return R;
  }

  // --- Compensation blocks: every appended block must jump to an original
  // block; Contract maps it onto that join target for identity matching. ---
  std::vector<int> Contract(static_cast<size_t>(NA));
  std::vector<bool> CompOK(static_cast<size_t>(NA), false);
  std::vector<bool> CompRef(static_cast<size_t>(NA), false);
  for (int C = 0; C != NA; ++C)
    Contract[static_cast<size_t>(C)] = C;
  for (int C = NB; C != NA; ++C) {
    const BasicBlock &B = AF.Blocks[static_cast<size_t>(C)];
    if (B.Instrs.empty() || B.Instrs.back().Op != Opcode::Jmp ||
        B.Instrs.back().Target0 < 0 || B.Instrs.back().Target0 >= NB) {
      R.add(Check::Compensation, C, -1,
            "compensation block must end in a jump to an original block");
      Contract[static_cast<size_t>(C)] = -2; // matches no Before target.
    } else {
      Contract[static_cast<size_t>(C)] = B.Instrs.back().Target0;
      CompOK[static_cast<size_t>(C)] = true;
    }
  }

  Liveness L = computeLiveness(BF);

  for (const std::vector<int> &T : Traces) {
    const size_t K = T.size();
    // Consecutive trace blocks must be CFG-connected in Before.
    bool Connected = true;
    for (size_t P = 0; P + 1 != K && Connected; ++P) {
      std::vector<int> Succs = BF.Blocks[static_cast<size_t>(T[P])].successors();
      if (std::find(Succs.begin(), Succs.end(), T[P + 1]) == Succs.end()) {
        R.add(Check::Compensation, T[P], -1,
              "trace certificate links b" + std::to_string(T[P]) + " to b" +
                  std::to_string(T[P + 1]) + " without a CFG edge");
        Connected = false;
      }
    }
    if (!Connected)
      continue;

    // Concatenated Before region with home positions and terminator indices.
    std::vector<const Instr *> BeforeR;
    std::vector<int> BeforeBlockOf;
    std::vector<int> Home;
    std::vector<int> TermIdx(K, -1);
    for (size_t Pos = 0; Pos != K; ++Pos) {
      const BasicBlock &B = BF.Blocks[static_cast<size_t>(T[Pos])];
      for (const Instr &I : B.Instrs) {
        BeforeR.push_back(&I);
        BeforeBlockOf.push_back(T[Pos]);
        Home.push_back(static_cast<int>(Pos));
      }
      TermIdx[Pos] = static_cast<int>(BeforeR.size()) - 1;
    }

    // Concatenated After region over the same block list.
    std::vector<AfterInstr> AfterR;
    std::vector<int> Seg; ///< trace position of each After region entry.
    std::vector<int> SegLastPos(K, -1);
    for (size_t Pos = 0; Pos != K; ++Pos) {
      const BasicBlock &B = AF.Blocks[static_cast<size_t>(T[Pos])];
      for (size_t I = 0; I != B.Instrs.size(); ++I) {
        AfterR.push_back({&B.Instrs[I], T[Pos], static_cast<int>(I)});
        Seg.push_back(static_cast<int>(Pos));
      }
      SegLastPos[Pos] = static_cast<int>(AfterR.size()) - 1;
    }

    std::vector<int> Perm =
        matchRegion(BeforeR, BeforeBlockOf, AfterR, &Contract, "trace", R);
    if (Perm.empty())
      continue;
    std::vector<int> InvPos(BeforeR.size(), -1);
    for (size_t P = 0; P != Perm.size(); ++P)
      InvPos[Perm[P]] = static_cast<int>(P);

    std::vector<InstrFacts> Facts = computeFacts(BeforeR);
    checkOrder(BeforeR, Facts, AfterR, Perm, R);
    checkLocalityOrder(BeforeR, AfterR, Perm, InvPos, R);

    // Each segment must end with the terminator of the block it replaces:
    // only then does every external edge into T[Pos] keep its semantics.
    for (size_t Pos = 0; Pos != K; ++Pos)
      if (Perm[static_cast<size_t>(SegLastPos[Pos])] != TermIdx[Pos])
        R.add(Check::Compensation, T[Pos],
              AfterR[static_cast<size_t>(SegLastPos[Pos])].Index,
              "segment does not end with its home block's terminator");

    // Downward-motion and speculation-safety audit.
    int Reported = 0;
    for (size_t I = 0; I != BeforeR.size() && Reported < MaxDiagsPerRegion;
         ++I) {
      if (BeforeR[I]->isTerminator())
        continue;
      const int H = Home[I];
      const int S = Seg[static_cast<size_t>(InvPos[I])];
      const AfterInstr &Where = AfterR[static_cast<size_t>(InvPos[I])];
      if (S > H) {
        R.add(Check::Compensation, Where.Block, Where.Index,
              "'" + printInstr(*BeforeR[I]) +
                  "' moved below its home block's terminator");
        ++Reported;
        continue;
      }
      for (int Sp = S; Sp != H && Reported < MaxDiagsPerRegion; ++Sp) {
        // Crossing the terminator of T[Sp] is speculative iff that branch
        // has an off-trace arm.
        const Instr &Term =
            BF.Blocks[static_cast<size_t>(T[static_cast<size_t>(Sp)])]
                .terminator();
        if (Term.Op != Opcode::Br)
          continue;
        int OnTrace = T[static_cast<size_t>(Sp) + 1];
        for (int Off : {Term.Target0, Term.Target1}) {
          if (Off == OnTrace)
            continue;
          if (BeforeR[I]->isStore()) {
            R.add(Check::Compensation, Where.Block, Where.Index,
                  "store '" + printInstr(*BeforeR[I]) +
                      "' speculated above the split in b" +
                      std::to_string(T[static_cast<size_t>(Sp)]));
            ++Reported;
          } else if (Reg D = BeforeR[I]->def();
                     D.isValid() && L.isLiveIn(Off, D)) {
            R.add(Check::Compensation, Where.Block, Where.Index,
                  "'" + printInstr(*BeforeR[I]) + "' clobbers " + regName(D) +
                      ", live into off-trace b" + std::to_string(Off) +
                      ", above the split in b" +
                      std::to_string(T[static_cast<size_t>(Sp)]));
            ++Reported;
          }
          break; // at most one distinct off-trace arm per split.
        }
      }
    }

    // Join audit: every off-trace edge into T[m] must carry compensation
    // copies of exactly the instructions that crossed the join.
    for (size_t Mm = 1; Mm != K; ++Mm) {
      const int Join = T[Mm];
      const int TermPos = InvPos[static_cast<size_t>(TermIdx[Mm - 1])];
      std::vector<int> Crossed;
      for (size_t I = 0; I != BeforeR.size(); ++I)
        if (!BeforeR[I]->isTerminator() && Home[I] >= static_cast<int>(Mm) &&
            InvPos[I] < TermPos)
          Crossed.push_back(static_cast<int>(I));

      for (int P : BF.predecessors(Join)) {
        if (P == T[Mm - 1])
          continue;
        const Instr &BT = BF.Blocks[static_cast<size_t>(P)].terminator();
        const Instr &AT = AF.Blocks[static_cast<size_t>(P)].terminator();
        if (AT.Op != BT.Op) {
          R.add(Check::Compensation, P, -1,
                "off-trace predecessor's terminator changed opcode");
          continue;
        }
        auto CheckSlot = [&](int BTgt, int ATgt) {
          if (BTgt != Join)
            return;
          if (Crossed.empty()) {
            if (ATgt != Join)
              R.add(Check::Compensation, P, -1,
                    "edge to b" + std::to_string(Join) +
                        " was rerouted although nothing crossed the join");
            return;
          }
          if (ATgt < NB || ATgt >= NA) {
            R.add(Check::Compensation, P, -1,
                  "edge to b" + std::to_string(Join) + " must pass through a " +
                      "compensation block (" +
                      std::to_string(Crossed.size()) +
                      " instructions crossed the join)");
            return;
          }
          CompRef[static_cast<size_t>(ATgt)] = true;
          if (!CompOK[static_cast<size_t>(ATgt)])
            return; // already diagnosed above.
          const std::vector<Instr> &CIns =
              AF.Blocks[static_cast<size_t>(ATgt)].Instrs;
          if (CIns.back().Target0 != Join)
            R.add(Check::Compensation, ATgt,
                  static_cast<int>(CIns.size()) - 1,
                  "compensation block jumps to b" +
                      std::to_string(CIns.back().Target0) +
                      " instead of the join block b" + std::to_string(Join));
          if (CIns.size() != Crossed.size() + 1)
            R.add(Check::Compensation, ATgt, -1,
                  "compensation block holds " +
                      std::to_string(CIns.size() - 1) +
                      " instructions but " + std::to_string(Crossed.size()) +
                      " crossed the join");
          size_t N = std::min(CIns.size() - 1, Crossed.size());
          for (size_t I = 0; I != N; ++I)
            if (!sameInstr(CIns[I], *BeforeR[static_cast<size_t>(Crossed[I])],
                           nullptr))
              R.add(Check::Compensation, ATgt, static_cast<int>(I),
                    "compensation copy differs from the crossed original '" +
                        printInstr(*BeforeR[static_cast<size_t>(Crossed[I])]) +
                        "'");
        };
        CheckSlot(BT.Target0, AT.Target0);
        if (BT.Op == Opcode::Br)
          CheckSlot(BT.Target1, AT.Target1);
      }
    }
  }

  for (int C = NB; C != NA; ++C)
    if (CompOK[static_cast<size_t>(C)] && !CompRef[static_cast<size_t>(C)])
      R.add(Check::Compensation, C, -1,
            "compensation block is not reached by any off-trace edge");
  return R;
}

//===----------------------------------------------------------------------===//
// verifyRegAlloc
//===----------------------------------------------------------------------===//

namespace {

class RegAllocVerifier {
public:
  RegAllocVerifier(const Module &Before, const Module &After,
                   unsigned Allocatable)
      : Before(Before), After(After), Allocatable(Allocatable) {}

  VerifyResult run() {
    const Function &BF = Before.Fn;
    const Function &AF = After.Fn;
    if (BF.Blocks.size() != AF.Blocks.size()) {
      R.add(Check::RegAlloc, -1, -1,
            "register allocation changed the block count");
      return R;
    }
    if (After.SpillArrayId < 0 ||
        After.SpillArrayId >= static_cast<int>(After.Arrays.size())) {
      R.add(Check::RegAlloc, -1, -1, "module has no spill area");
      return R;
    }
    SpillBytes =
        After.Arrays[static_cast<size_t>(After.SpillArrayId)].sizeBytes();
    collectRematCandidates();
    for (size_t B = 0; B != BF.Blocks.size(); ++B)
      walkBlock(static_cast<int>(B));
    resolveClaims();
    checkInterference();
    sweepForVirtuals();
    return R;
  }

private:
  const Module &Before;
  const Module &After;
  unsigned Allocatable;
  VerifyResult R;
  int64_t SpillBytes = 0;

  /// vreg id -> physical register id (non-scratch assignments observed).
  std::map<uint32_t, uint32_t> Assign;
  /// vreg id <-> spill-slot byte offset, from spill stores at definitions.
  std::map<uint32_t, int64_t> SlotOfVReg;
  std::map<int64_t, uint32_t> VRegOfSlot;
  /// vreg id -> its unique LdI/FLdI definition in Before, if any.
  std::map<uint32_t, const Instr *> UniqueConstDef;
  std::map<uint32_t, int> BeforeDefCount;

  struct RestoreClaim {
    uint32_t VReg;
    int64_t Slot;
    int Block, Idx;
  };
  struct RematClaim {
    uint32_t VReg;
    const Instr *Remat;
    int Block, Idx;
  };
  struct NoSpillClaim {
    uint32_t VReg;
    int Block, Idx;
  };
  std::vector<RestoreClaim> RestoreClaims;
  std::vector<RematClaim> RematClaims;
  std::vector<NoSpillClaim> NoSpillClaims;

  static bool isScratch(Reg P) {
    unsigned Local = P.Id % NumPhysPerClass;
    for (unsigned S : regalloc::SpillScratchRegs)
      if (Local == S)
        return true;
    return false;
  }
  static bool isFrameBase(Reg P) {
    return P == physIntReg(regalloc::FrameBaseReg);
  }

  bool rematable(uint32_t V) const {
    auto It = UniqueConstDef.find(V);
    return It != UniqueConstDef.end();
  }

  void collectRematCandidates() {
    for (const BasicBlock &B : Before.Fn.Blocks)
      for (const Instr &In : B.Instrs)
        if (Reg D = In.def(); D.isVirtual()) {
          if (++BeforeDefCount[D.Id] == 1 &&
              (In.Op == Opcode::LdI || In.Op == Opcode::FLdI))
            UniqueConstDef[D.Id] = &In;
          else
            UniqueConstDef.erase(D.Id);
        }
  }

  /// Checks that a spill or restore addresses a real slot of the spill area
  /// through the frame base.
  void checkSlotAccess(const Instr &In, int B, int Idx) {
    if (!(In.Base == physIntReg(regalloc::FrameBaseReg)))
      R.add(Check::RegAlloc, B, Idx,
            "spill traffic must address through the frame base register");
    if (In.Mem.ArrayId != After.SpillArrayId || !In.Mem.HasForm ||
        In.Mem.Const != In.Offset)
      R.add(Check::RegAlloc, B, Idx,
            "spill traffic must carry an exact spill-area memory reference");
    if (In.Offset < 0 || In.Offset % 8 != 0 || In.Offset + 8 > SpillBytes)
      R.add(Check::RegAlloc, B, Idx, "spill slot offset out of range");
  }

  /// Everything that must match between a pre-allocation instruction and
  /// its rewritten form, registers aside. The affine memory form may be
  /// dropped (a spilled symbol loses the form) but never invented.
  bool shapeMatches(const Instr &BI, const Instr &AI) const {
    if (BI.Op != AI.Op || BI.Imm != AI.Imm || BI.HasImm != AI.HasImm ||
        BI.Offset != AI.Offset || BI.Target0 != AI.Target0 ||
        BI.Target1 != AI.Target1 || BI.HM != AI.HM ||
        BI.LocalityGroup != AI.LocalityGroup || AI.IsSpill || AI.IsRestore ||
        AI.IsRemat)
      return false;
    if (BI.Mem.ArrayId != AI.Mem.ArrayId || BI.Mem.Size != AI.Mem.Size)
      return false;
    if (AI.Mem.HasForm) {
      if (!BI.Mem.HasForm || AI.Mem.Const != BI.Mem.Const ||
          AI.Mem.Terms.size() != BI.Mem.Terms.size())
        return false;
      for (size_t K = 0; K != AI.Mem.Terms.size(); ++K)
        if (AI.Mem.Terms[K].Coeff != BI.Mem.Terms[K].Coeff ||
            !Reg(AI.Mem.Terms[K].RegId).isPhys())
          return false;
    }
    return true;
  }

  /// Records the claims made by mapping virtual \p BR to physical \p AR at
  /// a use site; \p Pre holds this instruction's restore/remat preamble
  /// keyed by scratch register id.
  void mapUse(Reg BR, Reg AR, const std::map<uint32_t, const Instr *> &Pre,
              const std::map<uint32_t, int> &PreIdx, int B, int Idx) {
    if (!BR.isValid()) {
      if (AR.isValid())
        R.add(Check::RegAlloc, B, Idx, "operand appeared out of nowhere");
      return;
    }
    if (!AR.isValid()) {
      R.add(Check::RegAlloc, B, Idx, "operand disappeared");
      return;
    }
    if (BR.isPhys()) {
      if (AR != BR)
        R.add(Check::RegAlloc, B, Idx, "physical operand was rewritten");
      return;
    }
    if (!AR.isPhys()) {
      R.add(Check::RegAlloc, B, Idx,
            regName(AR) + " is still virtual after allocation");
      return;
    }
    if (Before.Fn.regClass(BR) != After.Fn.regClass(AR)) {
      R.add(Check::RegAlloc, B, Idx,
            "register class changed for " + regName(BR));
      return;
    }
    if (isScratch(AR)) {
      auto It = Pre.find(AR.Id);
      if (It == Pre.end()) {
        R.add(Check::RegAlloc, B, Idx,
              "use of spilled " + regName(BR) +
                  " without a restore in this instruction's preamble");
        return;
      }
      const Instr &P = *It->second;
      if (P.IsRemat)
        RematClaims.push_back({BR.Id, &P, B, PreIdx.at(AR.Id)});
      else
        RestoreClaims.push_back({BR.Id, P.Offset, B, PreIdx.at(AR.Id)});
      return;
    }
    if (isFrameBase(AR)) {
      R.add(Check::RegAlloc, B, Idx,
            "frame base register allocated to " + regName(BR));
      return;
    }
    if (AR.Id % NumPhysPerClass >= Allocatable) {
      R.add(Check::RegAlloc, B, Idx,
            regName(AR) + " is outside the allocatable range");
      return;
    }
    auto [It, Inserted] = Assign.try_emplace(BR.Id, AR.Id);
    if (!Inserted && It->second != AR.Id)
      R.add(Check::RegAlloc, B, Idx,
            regName(BR) + " was assigned both " + regName(Reg(It->second)) +
                " and " + regName(AR));
  }

  void walkBlock(int B) {
    const std::vector<Instr> &BIns =
        Before.Fn.Blocks[static_cast<size_t>(B)].Instrs;
    const std::vector<Instr> &AIns =
        After.Fn.Blocks[static_cast<size_t>(B)].Instrs;
    size_t J = 0;

    if (B == 0) {
      // The allocator unconditionally materializes the frame base on entry.
      if (AIns.empty() || AIns[0].Op != Opcode::LdI ||
          !(AIns[0].Dst == physIntReg(regalloc::FrameBaseReg))) {
        R.add(Check::RegAlloc, 0, 0,
              "entry block must initialize the frame base register");
      } else {
        int64_t Base = static_cast<int64_t>(
            After.Arrays[static_cast<size_t>(After.SpillArrayId)].Base);
        if (AIns[0].Imm != Base)
          R.add(Check::RegAlloc, 0, 0,
                "frame base initialized off the spill area base");
        J = 1;
      }
    }

    bool Broken = false;
    for (size_t I = 0; I != BIns.size() && !Broken; ++I) {
      const Instr &BI = BIns[I];

      // Restore/remat preamble: loads of spilled values into scratches.
      std::map<uint32_t, const Instr *> Pre;
      std::map<uint32_t, int> PreIdx;
      while (J != AIns.size() && (AIns[J].IsRestore || AIns[J].IsRemat)) {
        const Instr &P = AIns[J];
        if (!P.Dst.isPhys() || !isScratch(P.Dst)) {
          R.add(Check::RegAlloc, B, static_cast<int>(J),
                "restore/remat must target a reserved scratch register");
        } else {
          Pre[P.Dst.Id] = &P;
          PreIdx[P.Dst.Id] = static_cast<int>(J);
        }
        if (P.IsRestore) {
          if (!P.isLoad())
            R.add(Check::RegAlloc, B, static_cast<int>(J),
                  "restore flag on a non-load instruction");
          else
            checkSlotAccess(P, B, static_cast<int>(J));
        }
        ++J;
      }
      if (J == AIns.size()) {
        R.add(Check::RegAlloc, B, -1,
              "allocated block ends before covering '" + printInstr(BI) +
                  "'");
        Broken = true;
        break;
      }

      const Instr &AI = AIns[J];
      const int APos = static_cast<int>(J);
      ++J;
      if (!shapeMatches(BI, AI)) {
        R.add(Check::RegAlloc, B, APos,
              "'" + printInstr(AI) + "' does not line up with '" +
                  printInstr(BI) + "' from before allocation");
        Broken = true;
        break;
      }

      mapUse(BI.SrcA, AI.SrcA, Pre, PreIdx, B, APos);
      mapUse(BI.SrcB, AI.SrcB, Pre, PreIdx, B, APos);
      mapUse(BI.SrcC, AI.SrcC, Pre, PreIdx, B, APos);
      mapUse(BI.Base, AI.Base, Pre, PreIdx, B, APos);

      // Destination mapping. Conditional moves also read the old value, so
      // a spilled CMov destination must have been restored in the preamble.
      bool ReadsDst = BI.Op == Opcode::CMov || BI.Op == Opcode::FCMov;
      bool SpilledDef = false;
      uint32_t DefV = Reg::InvalidId;
      if (Reg BD = BI.def(); BD.isValid()) {
        if (BD.isVirtual()) {
          Reg AD = AI.Dst;
          if (!AD.isPhys()) {
            R.add(Check::RegAlloc, B, APos,
                  "definition of " + regName(BD) + " still virtual");
          } else if (Before.Fn.regClass(BD) != After.Fn.regClass(AD)) {
            R.add(Check::RegAlloc, B, APos,
                  "register class changed for " + regName(BD));
          } else if (isScratch(AD)) {
            SpilledDef = true;
            DefV = BD.Id;
            if (ReadsDst)
              mapUse(BD, AD, Pre, PreIdx, B, APos);
          } else if (isFrameBase(AD)) {
            R.add(Check::RegAlloc, B, APos,
                  "frame base register clobbered by a definition");
          } else if (AD.Id % NumPhysPerClass >= Allocatable) {
            R.add(Check::RegAlloc, B, APos,
                  regName(AD) + " is outside the allocatable range");
          } else {
            auto [It, Inserted] = Assign.try_emplace(BD.Id, AD.Id);
            if (!Inserted && It->second != AD.Id)
              R.add(Check::RegAlloc, B, APos,
                    regName(BD) + " was assigned both " +
                        regName(Reg(It->second)) + " and " + regName(AD));
          }
        } else if (!(AI.Dst == BD)) {
          R.add(Check::RegAlloc, B, APos, "physical destination rewritten");
        }
      }

      // Spill postamble: a spilled definition must be stored to its slot
      // immediately, unless the value is rematerialized at its uses.
      if (J != AIns.size() && AIns[J].IsSpill) {
        const Instr &S = AIns[J];
        const int SPos = static_cast<int>(J);
        ++J;
        if (!S.isStore())
          R.add(Check::RegAlloc, B, SPos,
                "spill flag on a non-store instruction");
        else
          checkSlotAccess(S, B, SPos);
        if (!SpilledDef) {
          R.add(Check::RegAlloc, B, SPos,
                "spill store after a register-resident definition");
        } else {
          if (!(S.SrcA == AI.Dst))
            R.add(Check::RegAlloc, B, SPos,
                  "spill stores " + regName(S.SrcA) +
                      " but the definition landed in " + regName(AI.Dst));
          auto [It, Inserted] = SlotOfVReg.try_emplace(DefV, S.Offset);
          if (!Inserted && It->second != S.Offset)
            R.add(Check::RegAlloc, B, SPos,
                  regName(Reg(DefV)) + " spilled to two different slots");
          auto [It2, Inserted2] = VRegOfSlot.try_emplace(S.Offset, DefV);
          if (!Inserted2 && It2->second != DefV)
            R.add(Check::RegAlloc, B, SPos,
                  "spill slot " + std::to_string(S.Offset) +
                      " shared by " + regName(Reg(It2->second)) + " and " +
                      regName(Reg(DefV)));
        }
      } else if (SpilledDef) {
        NoSpillClaims.push_back({DefV, B, APos});
      }
    }

    if (!Broken)
      for (; J != AIns.size(); ++J)
        R.add(Check::RegAlloc, B, static_cast<int>(J),
              "unexpected trailing instruction '" + printInstr(AIns[J]) +
                  "'");
  }

  void resolveClaims() {
    for (const RestoreClaim &C : RestoreClaims) {
      auto It = SlotOfVReg.find(C.VReg);
      if (It == SlotOfVReg.end())
        R.add(Check::RegAlloc, C.Block, C.Idx,
              "restore of " + regName(Reg(C.VReg)) +
                  " from a slot no spill ever wrote");
      else if (It->second != C.Slot)
        R.add(Check::RegAlloc, C.Block, C.Idx,
              "restore of " + regName(Reg(C.VReg)) + " reads slot " +
                  std::to_string(C.Slot) + " but it was spilled to slot " +
                  std::to_string(It->second));
    }
    for (const RematClaim &C : RematClaims) {
      auto It = UniqueConstDef.find(C.VReg);
      if (It == UniqueConstDef.end()) {
        R.add(Check::RegAlloc, C.Block, C.Idx,
              "rematerialization of " + regName(Reg(C.VReg)) +
                  ", which is not a uniquely-defined constant");
      } else if (C.Remat->Op != It->second->Op ||
                 C.Remat->Imm != It->second->Imm) {
        R.add(Check::RegAlloc, C.Block, C.Idx,
              "rematerialized value differs from the defining '" +
                  printInstr(*It->second) + "'");
      }
    }
    for (const NoSpillClaim &C : NoSpillClaims)
      if (!rematable(C.VReg))
        R.add(Check::RegAlloc, C.Block, C.Idx,
              "spilled definition of " + regName(Reg(C.VReg)) +
                  " has no spill store and is not rematerializable");
  }

  /// Precise per-point liveness over the Before code: at every definition,
  /// no other live virtual register may share the defined register's
  /// physical assignment. Precise liveness is a subset of the allocator's
  /// interval hulls, so a correct allocation can never be flagged.
  void checkInterference() {
    const Function &BF = Before.Fn;
    Liveness L = computeLiveness(BF);
    std::set<std::pair<uint32_t, uint32_t>> Seen;
    std::vector<Reg> Uses;
    for (const BasicBlock &B : BF.Blocks) {
      BitVec Live = L.LiveOut[B.Id];
      for (size_t I = B.Instrs.size(); I-- > 0;) {
        const Instr &In = B.Instrs[I];
        Reg D = In.def();
        if (D.isVirtual()) {
          auto DIt = Assign.find(D.Id);
          if (DIt != Assign.end()) {
            Live.forEach([&](unsigned U) {
              if (U == D.Id || !Reg(U).isVirtual())
                return;
              auto UIt = Assign.find(U);
              if (UIt == Assign.end() || UIt->second != DIt->second)
                return;
              auto Key = std::minmax(D.Id, U);
              if (Seen.insert({Key.first, Key.second}).second)
                R.add(Check::RegAlloc, B.Id, static_cast<int>(I),
                      regName(D) + " and " + regName(Reg(U)) +
                          " are simultaneously live but share " +
                          regName(Reg(DIt->second)));
            });
          }
        }
        if (D.isValid() && D.Id < Live.size())
          Live.reset(D.Id);
        Uses.clear();
        In.appendUses(Uses);
        for (Reg U : Uses)
          if (U.Id < Live.size())
            Live.set(U.Id);
      }
    }
  }

  void sweepForVirtuals() {
    std::vector<Reg> Uses;
    for (const BasicBlock &B : After.Fn.Blocks)
      for (size_t I = 0; I != B.Instrs.size(); ++I) {
        const Instr &In = B.Instrs[I];
        Uses.clear();
        In.appendUses(Uses);
        if (Reg D = In.def(); D.isValid())
          Uses.push_back(D);
        for (Reg U : Uses)
          if (U.isVirtual()) {
            R.add(Check::RegAlloc, B.Id, static_cast<int>(I),
                  regName(U) + " survived register allocation");
            break;
          }
      }
  }
};

} // namespace

VerifyResult verify::verifyRegAlloc(const Module &Before, const Module &After,
                                    unsigned AllocatablePerClass) {
  return RegAllocVerifier(Before, After, AllocatablePerClass).run();
}

//===----------------------------------------------------------------------===//
// verifyModule
//===----------------------------------------------------------------------===//

VerifyResult verify::verifyModule(const Module &M) {
  VerifyResult R;
  if (std::string E = ir::verify(M); !E.empty())
    R.add(Check::Structure, -1, -1, E);
  for (const BasicBlock &B : M.Fn.Blocks)
    for (size_t I = 0; I != B.Instrs.size(); ++I) {
      const Instr &In = B.Instrs[I];
      if (!In.isLoad() &&
          (In.HM != HitMiss::Unknown || In.LocalityGroup >= 0))
        R.add(Check::Locality, B.Id, static_cast<int>(I),
              "locality annotation on a non-load instruction");
    }
  return R;
}
