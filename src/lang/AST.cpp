//===- lang/AST.cpp - Kernel-language AST utilities -----------------------===//

#include "lang/AST.h"

#include "support/Str.h"

#include <cassert>

using namespace bsched;
using namespace bsched::lang;

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

ExprPtr lang::intLit(int64_t V) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IntLit;
  E->Ty = Type::Int;
  E->IntVal = V;
  return E;
}

ExprPtr lang::fpLit(double V) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::FpLit;
  E->Ty = Type::Fp;
  E->FpVal = V;
  return E;
}

ExprPtr lang::varRef(std::string Name) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::VarRef;
  E->Name = std::move(Name);
  return E;
}

ExprPtr lang::arrayRef(std::string Name, std::vector<ExprPtr> Indices) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ArrayRef;
  E->Name = std::move(Name);
  E->Args = std::move(Indices);
  return E;
}

ExprPtr lang::unary(UnOp Op, ExprPtr A) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Args.push_back(std::move(A));
  return E;
}

ExprPtr lang::binary(BinOp Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

StmtPtr lang::assign(ExprPtr Lhs, ExprPtr Rhs) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->Lhs = std::move(Lhs);
  S->Rhs = std::move(Rhs);
  return S;
}

StmtPtr lang::forLoop(std::string Var, ExprPtr Lo, ExprPtr Hi, int64_t Step,
                      StmtList Body) {
  assert(Step > 0 && "loop step must be a positive constant");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::For;
  S->LoopVar = std::move(Var);
  S->Lo = std::move(Lo);
  S->Hi = std::move(Hi);
  S->Step = Step;
  S->Body = std::move(Body);
  return S;
}

StmtPtr lang::ifStmt(ExprPtr Cond, StmtList Then, StmtList Else) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Cond = std::move(Cond);
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  return S;
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

ExprPtr Expr::clone() const {
  auto E = std::make_unique<Expr>();
  E->Kind = Kind;
  E->Ty = Ty;
  E->IntVal = IntVal;
  E->FpVal = FpVal;
  E->Name = Name;
  E->UOp = UOp;
  E->BOp = BOp;
  E->HM = HM;
  E->LocGroup = LocGroup;
  E->Args.reserve(Args.size());
  for (const ExprPtr &A : Args)
    E->Args.push_back(A->clone());
  return E;
}

StmtPtr Stmt::clone() const {
  auto S = std::make_unique<Stmt>();
  S->Kind = Kind;
  if (Lhs)
    S->Lhs = Lhs->clone();
  if (Rhs)
    S->Rhs = Rhs->clone();
  S->LoopVar = LoopVar;
  if (Lo)
    S->Lo = Lo->clone();
  if (Hi)
    S->Hi = Hi->clone();
  S->Step = Step;
  S->Body = cloneList(Body);
  S->NoUnroll = NoUnroll;
  if (Cond)
    S->Cond = Cond->clone();
  S->Then = cloneList(Then);
  S->Else = cloneList(Else);
  return S;
}

StmtList lang::cloneList(const StmtList &L) {
  StmtList Out;
  Out.reserve(L.size());
  for (const StmtPtr &S : L)
    Out.push_back(S->clone());
  return Out;
}

Program::Program(const Program &O)
    : Name(O.Name), Arrays(O.Arrays), Vars(O.Vars), Body(cloneList(O.Body)) {}

Program &Program::operator=(const Program &O) {
  if (this == &O)
    return *this;
  Name = O.Name;
  Arrays = O.Arrays;
  Vars = O.Vars;
  Body = cloneList(O.Body);
  return *this;
}

const ArrayDecl *Program::findArray(const std::string &N) const {
  for (const ArrayDecl &A : Arrays)
    if (A.Name == N)
      return &A;
  return nullptr;
}

const VarDecl *Program::findVar(const std::string &N) const {
  for (const VarDecl &V : Vars)
    if (V.Name == N)
      return &V;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Variable substitution
//===----------------------------------------------------------------------===//

void lang::addToVarRefs(Expr &E, const std::string &Var, int64_t Delta) {
  if (E.Kind == ExprKind::VarRef && E.Name == Var) {
    // Rewrite in place: E := E + Delta.
    auto Inner = varRef(E.Name);
    Inner->Ty = Type::Int;
    E.Kind = ExprKind::Binary;
    E.BOp = BinOp::Add;
    E.Name.clear();
    E.Args.clear();
    E.Args.push_back(std::move(Inner));
    E.Args.push_back(intLit(Delta));
    E.Ty = Type::Int;
    return;
  }
  for (ExprPtr &A : E.Args)
    addToVarRefs(*A, Var, Delta);
}

void lang::addToVarRefs(Stmt &S, const std::string &Var, int64_t Delta) {
  if (S.Lhs)
    addToVarRefs(*S.Lhs, Var, Delta);
  if (S.Rhs)
    addToVarRefs(*S.Rhs, Var, Delta);
  if (S.Cond)
    addToVarRefs(*S.Cond, Var, Delta);
  // An inner loop reusing the name shadows it.
  if (S.Kind == StmtKind::For && S.LoopVar == Var) {
    if (S.Lo)
      addToVarRefs(*S.Lo, Var, Delta);
    if (S.Hi)
      addToVarRefs(*S.Hi, Var, Delta);
    return;
  }
  if (S.Lo)
    addToVarRefs(*S.Lo, Var, Delta);
  if (S.Hi)
    addToVarRefs(*S.Hi, Var, Delta);
  for (StmtPtr &C : S.Body)
    addToVarRefs(*C, Var, Delta);
  for (StmtPtr &C : S.Then)
    addToVarRefs(*C, Var, Delta);
  for (StmtPtr &C : S.Else)
    addToVarRefs(*C, Var, Delta);
}

void lang::replaceVarRefs(Expr &E, const std::string &Var,
                          const Expr &Replacement) {
  if (E.Kind == ExprKind::VarRef && E.Name == Var) {
    ExprPtr R = Replacement.clone();
    E = std::move(*R);
    return;
  }
  for (ExprPtr &A : E.Args)
    replaceVarRefs(*A, Var, Replacement);
}

void lang::replaceVarRefs(Stmt &S, const std::string &Var,
                          const Expr &Replacement) {
  if (S.Lhs)
    replaceVarRefs(*S.Lhs, Var, Replacement);
  if (S.Rhs)
    replaceVarRefs(*S.Rhs, Var, Replacement);
  if (S.Cond)
    replaceVarRefs(*S.Cond, Var, Replacement);
  if (S.Lo)
    replaceVarRefs(*S.Lo, Var, Replacement);
  if (S.Hi)
    replaceVarRefs(*S.Hi, Var, Replacement);
  if (S.Kind == StmtKind::For && S.LoopVar == Var)
    return; // Shadowed inside the body.
  for (StmtPtr &C : S.Body)
    replaceVarRefs(*C, Var, Replacement);
  for (StmtPtr &C : S.Then)
    replaceVarRefs(*C, Var, Replacement);
  for (StmtPtr &C : S.Else)
    replaceVarRefs(*C, Var, Replacement);
}

//===----------------------------------------------------------------------===//
// Cost estimate
//===----------------------------------------------------------------------===//

// Approximates the number of machine instructions the expression lowers to
// AFTER strength reduction: affine array addresses live in induction
// registers, so a reference costs about one memory instruction plus any
// non-trivial subscript arithmetic; literals fold into immediates.
static int estimateCost(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::FpLit:
    return 0; // Immediate operands / constant registers.
  case ExprKind::VarRef:
    return 0; // Scalars live in registers.
  case ExprKind::ArrayRef: {
    int C = 1; // The load or store itself.
    for (const ExprPtr &A : E.Args)
      C += estimateCost(*A);
    return C;
  }
  case ExprKind::Unary:
    return 1 + estimateCost(*E.Args[0]);
  case ExprKind::Binary:
    return 1 + estimateCost(*E.Args[0]) + estimateCost(*E.Args[1]);
  }
  return 0;
}

int lang::estimateCost(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign:
    return ::estimateCost(*S.Lhs) + ::estimateCost(*S.Rhs);
  case StmtKind::For:
    // Loop overhead (induction update, compare, branch) + body.
    return 3 + estimateCost(S.Body);
  case StmtKind::If:
    return 2 + ::estimateCost(*S.Cond) + estimateCost(S.Then) +
           estimateCost(S.Else);
  }
  return 0;
}

int lang::estimateCost(const StmtList &L) {
  int C = 0;
  for (const StmtPtr &S : L)
    C += estimateCost(*S);
  return C;
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

static const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::Div: return "/";
  case BinOp::Lt: return "<";
  case BinOp::Le: return "<=";
  case BinOp::Gt: return ">";
  case BinOp::Ge: return ">=";
  case BinOp::Eq: return "==";
  case BinOp::Ne: return "!=";
  case BinOp::And: return "&&";
  case BinOp::Or: return "||";
  }
  return "?";
}

std::string lang::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return std::to_string(E.IntVal);
  case ExprKind::FpLit:
    return fmtDouble(E.FpVal, 6);
  case ExprKind::VarRef:
    return E.Name;
  case ExprKind::ArrayRef: {
    std::string S = E.Name;
    for (const ExprPtr &A : E.Args)
      S += "[" + printExpr(*A) + "]";
    if (E.HM == ir::HitMiss::Hit)
      S += "/*hit*/";
    else if (E.HM == ir::HitMiss::Miss)
      S += "/*miss*/";
    return S;
  }
  case ExprKind::Unary:
    if (E.UOp == UnOp::IToF)
      return printExpr(*E.Args[0]);
    return std::string(E.UOp == UnOp::Neg ? "-" : "!") + "(" +
           printExpr(*E.Args[0]) + ")";
  case ExprKind::Binary:
    return "(" + printExpr(*E.Args[0]) + " " + binOpName(E.BOp) + " " +
           printExpr(*E.Args[1]) + ")";
  }
  return "?";
}

std::string lang::printStmt(const Stmt &S, int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  auto PrintBody = [&](const StmtList &L) {
    std::string Out = " {\n";
    for (const StmtPtr &C : L)
      Out += printStmt(*C, Indent + 1);
    Out += Pad + "}";
    return Out;
  };
  switch (S.Kind) {
  case StmtKind::Assign:
    return Pad + printExpr(*S.Lhs) + " = " + printExpr(*S.Rhs) + ";\n";
  case StmtKind::For: {
    std::string Out = Pad + "for (" + S.LoopVar + " = " + printExpr(*S.Lo) +
                      "; " + S.LoopVar + " < " + printExpr(*S.Hi) + "; " +
                      S.LoopVar + " += " + std::to_string(S.Step) + ")";
    Out += PrintBody(S.Body);
    Out += "\n";
    return Out;
  }
  case StmtKind::If: {
    std::string Out = Pad + "if (" + printExpr(*S.Cond) + ")";
    Out += PrintBody(S.Then);
    if (!S.Else.empty()) {
      Out += " else";
      Out += PrintBody(S.Else);
    }
    Out += "\n";
    return Out;
  }
  }
  return "";
}

std::string lang::printProgram(const Program &P) {
  std::string Out;
  for (const ArrayDecl &A : P.Arrays) {
    Out += "array " + A.Name;
    for (int64_t D : A.Dims)
      Out += "[" + std::to_string(D) + "]";
    if (A.ElemTy == Type::Int)
      Out += " int";
    if (!A.RowMajor)
      Out += " colmajor";
    if (A.IsOutput)
      Out += " output";
    Out += ";\n";
  }
  for (const VarDecl &V : P.Vars) {
    Out += "var " + V.Name;
    if (V.Ty == Type::Int)
      Out += " int = " + std::to_string(V.IntInit);
    else
      Out += " = " + fmtDouble(V.FpInit, 6);
    Out += ";\n";
  }
  for (const StmtPtr &S : P.Body)
    Out += printStmt(*S, 0);
  return Out;
}
