//===- lang/Generate.cpp - Random kernel-program generator -----------------===//

#include "lang/Generate.h"

#include "lang/Parser.h"
#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::lang;

namespace {

class Generator {
public:
  Generator(uint64_t Seed, GenerateOptions Opts) : Rng(Seed), Opts(Opts) {}

  Program run() {
    P.Name = "fuzz";

    // All fp arrays share the leading dimension so index-array values are
    // always in range for any of them. The lead dimension is at least 8
    // (loops need room for a few unrolled trips), so MaxArrayElems below 8
    // cannot be honored: the subtraction would wrap nextBelow's uint64_t
    // bound. Assert in debug builds and clamp otherwise.
    assert(Opts.MaxArrayElems >= 8 &&
           "GenerateOptions::MaxArrayElems must be at least 8");
    const int64_t MaxElems = std::max<int64_t>(Opts.MaxArrayElems, 8);
    LeadDim = 8 + static_cast<int64_t>(
                      Rng.nextBelow(static_cast<uint64_t>(MaxElems - 7)));
    int NumArrays =
        1 + static_cast<int>(Rng.nextBelow(
                static_cast<uint64_t>(Opts.MaxArrays)));
    for (int K = 0; K != NumArrays; ++K) {
      ArrayDecl A;
      A.Name = "a" + std::to_string(K);
      A.Dims.push_back(LeadDim);
      if (Rng.nextBool(0.4))
        A.Dims.push_back(
            4 + static_cast<int64_t>(Rng.nextBelow(12))); // modest 2D
      A.RowMajor = !Rng.nextBool(0.25);
      A.IsOutput = K == 0 || Rng.nextBool(0.3);
      P.Arrays.push_back(std::move(A));
    }
    if (Rng.nextBool(0.5)) {
      ArrayDecl Idx;
      Idx.Name = "gidx";
      Idx.ElemTy = Type::Int;
      Idx.Dims.push_back(LeadDim);
      P.Arrays.push_back(std::move(Idx));
      HasIndexArray = true;
    }

    int NumScalars = 2 + static_cast<int>(Rng.nextBelow(3));
    for (int K = 0; K != NumScalars; ++K) {
      VarDecl V;
      V.Name = "s" + std::to_string(K);
      V.FpInit = static_cast<double>(Rng.nextBelow(100)) * 0.125 - 4.0;
      P.Vars.push_back(std::move(V));
    }

    // Deterministic in-range fill for the index array (a reversal).
    if (HasIndexArray) {
      StmtList Body;
      Body.push_back(assign(
          arrayRef("gidx", vec(varRef("z"))),
          binary(BinOp::Sub, intLit(LeadDim - 1), varRef("z"))));
      P.Body.push_back(forLoop("z", intLit(0), intLit(LeadDim), 1,
                               std::move(Body)));
    }

    genBlock(P.Body, /*Depth=*/0);

    // Always read something into an output so the checksum is sensitive.
    P.Body.push_back(assign(arrayRef(P.Arrays[0].Name, subsFor(0)),
                            varRef(P.Vars[0].Name)));

    [[maybe_unused]] std::string E = checkProgram(P);
    assert(E.empty() && "generator produced an ill-formed program");
    return std::move(P);
  }

private:
  RNG Rng;
  GenerateOptions Opts;
  Program P;
  int64_t LeadDim = 8;
  bool HasIndexArray = false;
  int LoopCounter = 0;
  int StmtBudget = 60;

  struct LoopVar {
    std::string Name;
    int64_t MaxVal; ///< inclusive upper bound on the variable's value.
  };
  std::vector<LoopVar> LoopVars;

  static std::vector<ExprPtr> vec(ExprPtr A) {
    std::vector<ExprPtr> V;
    V.push_back(std::move(A));
    return V;
  }
  static std::vector<ExprPtr> vec(ExprPtr A, ExprPtr B) {
    std::vector<ExprPtr> V;
    V.push_back(std::move(A));
    V.push_back(std::move(B));
    return V;
  }

  /// An int expression guaranteed to lie in [0, Dim).
  ExprPtr subscript(int64_t Dim) {
    // Try a loop variable (+ small offset) that provably fits.
    if (!LoopVars.empty() && Rng.nextBool(0.75)) {
      for (int Attempt = 0; Attempt != 3; ++Attempt) {
        const LoopVar &LV =
            LoopVars[Rng.nextBelow(LoopVars.size())];
        if (LV.MaxVal >= Dim)
          continue;
        int64_t MaxOff = Dim - 1 - LV.MaxVal;
        int64_t Off = MaxOff > 0
                          ? static_cast<int64_t>(Rng.nextBelow(
                                static_cast<uint64_t>(
                                    std::min<int64_t>(MaxOff, 3) + 1)))
                          : 0;
        if (Off == 0)
          return varRef(LV.Name);
        return binary(BinOp::Add, varRef(LV.Name), intLit(Off));
      }
    }
    // Indirect through the index array (values < LeadDim <= any fp Dim?
    // only when Dim == LeadDim).
    if (HasIndexArray && Dim == LeadDim && Rng.nextBool(0.3))
      return arrayRef("gidx", vec(subscript(LeadDim)));
    return intLit(static_cast<int64_t>(
        Rng.nextBelow(static_cast<uint64_t>(Dim))));
  }

  /// Subscript list for array \p K.
  std::vector<ExprPtr> subsFor(size_t K) {
    std::vector<ExprPtr> Subs;
    for (int64_t D : P.Arrays[K].Dims)
      Subs.push_back(subscript(D));
    return Subs;
  }

  /// Index of a random fp array.
  size_t fpArray() {
    for (;;) {
      size_t K = Rng.nextBelow(P.Arrays.size());
      if (P.Arrays[K].ElemTy == Type::Fp)
        return K;
    }
  }

  ExprPtr fpExpr(int Depth) {
    if (Depth >= Opts.MaxExprDepth || Rng.nextBool(0.35)) {
      switch (Rng.nextBelow(3)) {
      case 0:
        return fpLit(static_cast<double>(Rng.nextBelow(64)) * 0.25 - 8.0);
      case 1:
        return varRef(P.Vars[Rng.nextBelow(P.Vars.size())].Name);
      default: {
        size_t K = fpArray();
        return arrayRef(P.Arrays[K].Name, subsFor(K));
      }
      }
    }
    BinOp Op;
    switch (Rng.nextBelow(8)) {
    case 0: Op = BinOp::Sub; break;
    case 1: Op = BinOp::Mul; break;
    case 2: Op = BinOp::Div; break; // fp division; inf/nan are deterministic
    default: Op = BinOp::Add; break;
    }
    ExprPtr L = fpExpr(Depth + 1);
    ExprPtr R = fpExpr(Depth + 1);
    if (Op == BinOp::Div) // keep denominators away from zero
      R = binary(BinOp::Add, binary(BinOp::Mul, std::move(R), fpLit(0.25)),
                 fpLit(1.0));
    if (Rng.nextBool(0.1))
      L = unary(UnOp::Neg, std::move(L));
    return binary(Op, std::move(L), std::move(R));
  }

  ExprPtr condition() {
    return binary(Rng.nextBool(0.5) ? BinOp::Lt : BinOp::Ge,
                  fpExpr(Opts.MaxExprDepth - 1),
                  fpExpr(Opts.MaxExprDepth - 1));
  }

  void genBlock(StmtList &Out, int Depth) {
    int N = 1 + static_cast<int>(Rng.nextBelow(
                    static_cast<uint64_t>(Opts.MaxStmtsPerBlock)));
    for (int K = 0; K != N && StmtBudget > 0; ++K) {
      --StmtBudget;
      double Roll = Rng.nextDouble();
      if (Roll < 0.45) {
        // Array store or scalar assignment.
        if (Rng.nextBool(0.6)) {
          size_t A = fpArray();
          Out.push_back(
              assign(arrayRef(P.Arrays[A].Name, subsFor(A)), fpExpr(0)));
        } else {
          Out.push_back(assign(
              varRef(P.Vars[Rng.nextBelow(P.Vars.size())].Name), fpExpr(0)));
        }
      } else if (Roll < 0.70 && Depth < Opts.MaxLoopDepth) {
        // Loop with a literal trip count; deeper nests get shorter trips so
        // the total work stays bounded.
        int64_t Trip =
            2 + static_cast<int64_t>(Rng.nextBelow(static_cast<uint64_t>(
                    std::max(2, Opts.MaxTrip >> (2 * Depth)))));
        Trip = std::min<int64_t>(Trip, LeadDim);
        int64_t Step = Rng.nextBool(0.8) ? 1 : 2;
        std::string Var = "i" + std::to_string(LoopCounter++);
        LoopVars.push_back({Var, Trip - 1});
        StmtList Body;
        genBlock(Body, Depth + 1);
        if (Body.empty())
          Body.push_back(assign(varRef(P.Vars[0].Name),
                                binary(BinOp::Add, varRef(P.Vars[0].Name),
                                       fpLit(1.0))));
        LoopVars.pop_back();
        Out.push_back(
            forLoop(Var, intLit(0), intLit(Trip), Step, std::move(Body)));
      } else {
        StmtList Then, Else;
        genBlock(Then, Depth + 1);
        if (Then.empty())
          continue;
        if (Rng.nextBool(0.5))
          genBlock(Else, Depth + 1);
        Out.push_back(ifStmt(condition(), std::move(Then), std::move(Else)));
      }
    }
  }
};

} // namespace

Program lang::generateProgram(uint64_t Seed, GenerateOptions Opts) {
  return Generator(Seed, Opts).run();
}
