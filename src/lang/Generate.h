//===- lang/Generate.h - Random kernel-program generator --------*- C++ -*-===//
///
/// \file
/// Deterministic random generator of well-formed kernel-language programs,
/// used for property-based differential testing: any generated program must
/// compile under every configuration to code whose simulated output matches
/// the AST evaluator's, bit for bit.
///
/// Generated programs are constructed to terminate quickly (bounded loop
/// nests with literal-bounded trip counts) and to stay in bounds (subscripts
/// are clamped affine forms of the loop variables or reads of index arrays
/// filled with in-range values).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LANG_GENERATE_H
#define BALSCHED_LANG_GENERATE_H

#include "lang/AST.h"

#include <cstdint>

namespace bsched {
namespace lang {

struct GenerateOptions {
  int MaxArrays = 4;       ///< fp arrays (plus possibly one int index array).
  int MaxArrayElems = 64;  ///< per dimension.
  int MaxStmtsPerBlock = 5;
  int MaxLoopDepth = 3;
  int MaxTrip = 24;        ///< literal loop trip counts.
  int MaxExprDepth = 3;
};

/// Generates a checked program from \p Seed. Same seed, same program.
Program generateProgram(uint64_t Seed, GenerateOptions Opts = {});

} // namespace lang
} // namespace bsched

#endif // BALSCHED_LANG_GENERATE_H
