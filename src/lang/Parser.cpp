//===- lang/Parser.cpp - Kernel-language lexer + parser -------------------===//

#include "lang/Parser.h"

#include <cctype>
#include <cstdlib>

using namespace bsched;
using namespace bsched::lang;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

enum class Tok : uint8_t {
  End, Ident, IntNum, FpNum,
  LParen, RParen, LBrack, RBrack, LBrace, RBrace,
  Semi, Comma,
  Assign, PlusAssign,
  Plus, Minus, Star, Slash,
  Lt, Le, Gt, Ge, EqEq, Ne, AndAnd, OrOr, Bang,
};

struct Lexer {
  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;

  Tok Kind = Tok::End;
  std::string Ident;
  int64_t IntVal = 0;
  double FpVal = 0.0;
  std::string Error;

  explicit Lexer(const std::string &Src) : Src(Src) { next(); }

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Line) + ": " + Msg;
    Kind = Tok::End;
  }

  void next() {
    if (!Error.empty())
      return;
    // Skip whitespace and '#' line comments.
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    if (Pos >= Src.size()) {
      Kind = Tok::End;
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Kind = Tok::Ident;
      Ident = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      bool IsFp = false;
      if (Pos < Src.size() && Src[Pos] == '.') {
        IsFp = true;
        ++Pos;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          ++Pos;
      }
      if (Pos < Src.size() && (Src[Pos] == 'e' || Src[Pos] == 'E')) {
        IsFp = true;
        ++Pos;
        if (Pos < Src.size() && (Src[Pos] == '+' || Src[Pos] == '-'))
          ++Pos;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          ++Pos;
      }
      std::string Text = Src.substr(Start, Pos - Start);
      if (IsFp) {
        Kind = Tok::FpNum;
        FpVal = std::strtod(Text.c_str(), nullptr);
      } else {
        Kind = Tok::IntNum;
        IntVal = std::strtoll(Text.c_str(), nullptr, 10);
      }
      return;
    }
    auto Two = [&](char A, char B) {
      return C == A && Pos + 1 < Src.size() && Src[Pos + 1] == B;
    };
    if (Two('+', '=')) { Kind = Tok::PlusAssign; Pos += 2; return; }
    if (Two('<', '=')) { Kind = Tok::Le; Pos += 2; return; }
    if (Two('>', '=')) { Kind = Tok::Ge; Pos += 2; return; }
    if (Two('=', '=')) { Kind = Tok::EqEq; Pos += 2; return; }
    if (Two('!', '=')) { Kind = Tok::Ne; Pos += 2; return; }
    if (Two('&', '&')) { Kind = Tok::AndAnd; Pos += 2; return; }
    if (Two('|', '|')) { Kind = Tok::OrOr; Pos += 2; return; }
    ++Pos;
    switch (C) {
    case '(': Kind = Tok::LParen; return;
    case ')': Kind = Tok::RParen; return;
    case '[': Kind = Tok::LBrack; return;
    case ']': Kind = Tok::RBrack; return;
    case '{': Kind = Tok::LBrace; return;
    case '}': Kind = Tok::RBrace; return;
    case ';': Kind = Tok::Semi; return;
    case ',': Kind = Tok::Comma; return;
    case '=': Kind = Tok::Assign; return;
    case '+': Kind = Tok::Plus; return;
    case '-': Kind = Tok::Minus; return;
    case '*': Kind = Tok::Star; return;
    case '/': Kind = Tok::Slash; return;
    case '<': Kind = Tok::Lt; return;
    case '>': Kind = Tok::Gt; return;
    case '!': Kind = Tok::Bang; return;
    default:
      fail(std::string("unexpected character '") + C + "'");
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(const std::string &Src, const std::string &Name) : L(Src) {
    P.Name = Name;
  }

  ParseResult run() {
    parseDecls();
    while (ok() && L.Kind != Tok::End)
      if (StmtPtr S = parseStmt())
        P.Body.push_back(std::move(S));
    ParseResult R;
    R.Error = L.Error;
    if (R.ok())
      R.Prog = std::move(P);
    return R;
  }

private:
  Lexer L;
  Program P;

  bool ok() const { return L.Error.empty(); }
  void fail(const std::string &Msg) { L.fail(Msg); }

  bool accept(Tok K) {
    if (L.Kind != K)
      return false;
    L.next();
    return true;
  }
  void expect(Tok K, const char *What) {
    if (!accept(K))
      fail(std::string("expected ") + What);
  }
  bool acceptIdent(const char *Word) {
    if (L.Kind != Tok::Ident || L.Ident != Word)
      return false;
    L.next();
    return true;
  }
  std::string expectIdent(const char *What) {
    if (L.Kind != Tok::Ident) {
      fail(std::string("expected ") + What);
      return "";
    }
    std::string S = L.Ident;
    L.next();
    return S;
  }

  void parseDecls() {
    while (ok()) {
      if (acceptIdent("array"))
        parseArrayDecl();
      else if (acceptIdent("var"))
        parseVarDecl();
      else
        return;
    }
  }

  void parseArrayDecl() {
    ArrayDecl A;
    A.Name = expectIdent("array name");
    while (ok() && accept(Tok::LBrack)) {
      if (L.Kind != Tok::IntNum) {
        fail("array dimensions must be integer literals");
        return;
      }
      if (L.IntVal <= 0) {
        fail("array dimensions must be positive");
        return;
      }
      A.Dims.push_back(L.IntVal);
      L.next();
      expect(Tok::RBrack, "']'");
    }
    if (A.Dims.empty()) {
      fail("array needs at least one dimension");
      return;
    }
    while (ok() && L.Kind == Tok::Ident) {
      if (acceptIdent("int"))
        A.ElemTy = Type::Int;
      else if (acceptIdent("colmajor"))
        A.RowMajor = false;
      else if (acceptIdent("output"))
        A.IsOutput = true;
      else {
        fail("unknown array attribute '" + L.Ident + "'");
        return;
      }
    }
    expect(Tok::Semi, "';'");
    P.Arrays.push_back(std::move(A));
  }

  void parseVarDecl() {
    VarDecl V;
    V.Name = expectIdent("variable name");
    if (acceptIdent("int"))
      V.Ty = Type::Int;
    expect(Tok::Assign, "'=' (initializer)");
    bool Neg = accept(Tok::Minus);
    if (V.Ty == Type::Int) {
      if (L.Kind != Tok::IntNum) {
        fail("int variable needs an integer initializer");
        return;
      }
      V.IntInit = Neg ? -L.IntVal : L.IntVal;
      L.next();
    } else {
      if (L.Kind == Tok::FpNum)
        V.FpInit = L.FpVal;
      else if (L.Kind == Tok::IntNum)
        V.FpInit = static_cast<double>(L.IntVal);
      else {
        fail("fp variable needs a numeric initializer");
        return;
      }
      if (Neg)
        V.FpInit = -V.FpInit;
      L.next();
    }
    expect(Tok::Semi, "';'");
    P.Vars.push_back(std::move(V));
  }

  StmtList parseBlock() {
    StmtList Body;
    expect(Tok::LBrace, "'{'");
    while (ok() && L.Kind != Tok::RBrace && L.Kind != Tok::End)
      if (StmtPtr S = parseStmt())
        Body.push_back(std::move(S));
    expect(Tok::RBrace, "'}'");
    return Body;
  }

  StmtPtr parseStmt() {
    if (acceptIdent("for"))
      return parseFor();
    if (acceptIdent("if"))
      return parseIf();
    return parseAssign();
  }

  StmtPtr parseFor() {
    expect(Tok::LParen, "'('");
    std::string Var = expectIdent("loop variable");
    expect(Tok::Assign, "'='");
    ExprPtr Lo = parseExpr();
    expect(Tok::Semi, "';'");
    std::string Var2 = expectIdent("loop variable");
    if (ok() && Var2 != Var)
      fail("loop condition must test the loop variable");
    expect(Tok::Lt, "'<'");
    ExprPtr Hi = parseExpr();
    expect(Tok::Semi, "';'");
    std::string Var3 = expectIdent("loop variable");
    if (ok() && Var3 != Var)
      fail("loop increment must update the loop variable");
    expect(Tok::PlusAssign, "'+='");
    if (ok() && L.Kind != Tok::IntNum) {
      fail("loop step must be an integer literal");
      return nullptr;
    }
    int64_t Step = L.IntVal;
    if (ok())
      L.next();
    if (ok() && Step <= 0) {
      fail("loop step must be positive");
      return nullptr;
    }
    expect(Tok::RParen, "')'");
    StmtList Body = parseBlock();
    if (!ok())
      return nullptr;
    return forLoop(std::move(Var), std::move(Lo), std::move(Hi), Step,
                   std::move(Body));
  }

  StmtPtr parseIf() {
    expect(Tok::LParen, "'('");
    ExprPtr Cond = parseExpr();
    expect(Tok::RParen, "')'");
    StmtList Then = parseBlock();
    StmtList Else;
    if (acceptIdent("else")) {
      if (acceptIdent("if")) {
        // else-if chain: wrap the nested if as the sole else statement.
        if (StmtPtr Nested = parseIf())
          Else.push_back(std::move(Nested));
      } else {
        Else = parseBlock();
      }
    }
    if (!ok())
      return nullptr;
    return ifStmt(std::move(Cond), std::move(Then), std::move(Else));
  }

  StmtPtr parseAssign() {
    std::string Name = expectIdent("statement");
    if (!ok())
      return nullptr;
    ExprPtr Lhs;
    if (L.Kind == Tok::LBrack) {
      std::vector<ExprPtr> Idx;
      while (accept(Tok::LBrack)) {
        Idx.push_back(parseExpr());
        expect(Tok::RBrack, "']'");
      }
      Lhs = arrayRef(std::move(Name), std::move(Idx));
    } else {
      Lhs = varRef(std::move(Name));
    }
    bool Plus = false;
    if (accept(Tok::PlusAssign))
      Plus = true;
    else
      expect(Tok::Assign, "'=' or '+='");
    ExprPtr Rhs = parseExpr();
    expect(Tok::Semi, "';'");
    if (!ok())
      return nullptr;
    if (Plus)
      Rhs = binary(BinOp::Add, Lhs->clone(), std::move(Rhs));
    return assign(std::move(Lhs), std::move(Rhs));
  }

  // Precedence: Or < And < Cmp < Add < Mul < Unary < Primary.
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr E = parseAnd();
    while (ok() && accept(Tok::OrOr))
      E = binary(BinOp::Or, std::move(E), parseAnd());
    return E;
  }

  ExprPtr parseAnd() {
    ExprPtr E = parseCmp();
    while (ok() && accept(Tok::AndAnd))
      E = binary(BinOp::And, std::move(E), parseCmp());
    return E;
  }

  ExprPtr parseCmp() {
    ExprPtr E = parseAdd();
    while (ok()) {
      BinOp Op;
      if (accept(Tok::Lt)) Op = BinOp::Lt;
      else if (accept(Tok::Le)) Op = BinOp::Le;
      else if (accept(Tok::Gt)) Op = BinOp::Gt;
      else if (accept(Tok::Ge)) Op = BinOp::Ge;
      else if (accept(Tok::EqEq)) Op = BinOp::Eq;
      else if (accept(Tok::Ne)) Op = BinOp::Ne;
      else break;
      E = binary(Op, std::move(E), parseAdd());
    }
    return E;
  }

  ExprPtr parseAdd() {
    ExprPtr E = parseMul();
    while (ok()) {
      if (accept(Tok::Plus))
        E = binary(BinOp::Add, std::move(E), parseMul());
      else if (accept(Tok::Minus))
        E = binary(BinOp::Sub, std::move(E), parseMul());
      else
        break;
    }
    return E;
  }

  ExprPtr parseMul() {
    ExprPtr E = parseUnary();
    while (ok()) {
      if (accept(Tok::Star))
        E = binary(BinOp::Mul, std::move(E), parseUnary());
      else if (accept(Tok::Slash))
        E = binary(BinOp::Div, std::move(E), parseUnary());
      else
        break;
    }
    return E;
  }

  ExprPtr parseUnary() {
    if (accept(Tok::Minus))
      return unary(UnOp::Neg, parseUnary());
    if (accept(Tok::Bang))
      return unary(UnOp::Not, parseUnary());
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (accept(Tok::LParen)) {
      ExprPtr E = parseExpr();
      expect(Tok::RParen, "')'");
      return E;
    }
    if (L.Kind == Tok::IntNum) {
      int64_t V = L.IntVal;
      L.next();
      return intLit(V);
    }
    if (L.Kind == Tok::FpNum) {
      double V = L.FpVal;
      L.next();
      return fpLit(V);
    }
    if (L.Kind == Tok::Ident) {
      std::string Name = L.Ident;
      L.next();
      if (L.Kind == Tok::LBrack) {
        std::vector<ExprPtr> Idx;
        while (accept(Tok::LBrack)) {
          Idx.push_back(parseExpr());
          expect(Tok::RBrack, "']'");
        }
        return arrayRef(std::move(Name), std::move(Idx));
      }
      return varRef(std::move(Name));
    }
    fail("expected expression");
    return intLit(0);
  }
};

} // namespace

ParseResult lang::parseProgram(const std::string &Source,
                               const std::string &Name) {
  return Parser(Source, Name).run();
}

//===----------------------------------------------------------------------===//
// Semantic checker
//===----------------------------------------------------------------------===//

namespace {

class Checker {
public:
  explicit Checker(Program &P) : P(P) {}

  std::string run() {
    for (size_t I = 0; I != P.Arrays.size(); ++I)
      for (size_t J = I + 1; J != P.Arrays.size(); ++J)
        if (P.Arrays[I].Name == P.Arrays[J].Name)
          return "duplicate array '" + P.Arrays[I].Name + "'";
    for (const VarDecl &V : P.Vars) {
      if (P.findArray(V.Name))
        return "'" + V.Name + "' declared as both array and var";
      for (const VarDecl &W : P.Vars)
        if (&V != &W && V.Name == W.Name)
          return "duplicate var '" + V.Name + "'";
    }
    for (StmtPtr &S : P.Body) {
      checkStmt(*S);
      if (!Err.empty())
        return Err;
    }
    return Err;
  }

private:
  Program &P;
  std::string Err;
  std::vector<std::string> LoopVars;

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  bool isLoopVar(const std::string &N) const {
    for (const std::string &V : LoopVars)
      if (V == N)
        return true;
    return false;
  }

  /// Wraps \p E in an IToF conversion in place.
  static void promote(ExprPtr &E) {
    ExprPtr Conv = unary(UnOp::IToF, std::move(E));
    Conv->Ty = Type::Fp;
    E = std::move(Conv);
  }

  Type checkExpr(Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return E.Ty = Type::Int;
    case ExprKind::FpLit:
      return E.Ty = Type::Fp;
    case ExprKind::VarRef: {
      if (isLoopVar(E.Name))
        return E.Ty = Type::Int;
      if (const VarDecl *V = P.findVar(E.Name))
        return E.Ty = V->Ty;
      fail("unknown variable '" + E.Name + "'");
      return E.Ty = Type::Int;
    }
    case ExprKind::ArrayRef: {
      const ArrayDecl *A = P.findArray(E.Name);
      if (!A) {
        fail("unknown array '" + E.Name + "'");
        return E.Ty = Type::Fp;
      }
      if (E.Args.size() != A->Dims.size()) {
        fail("array '" + E.Name + "' expects " +
             std::to_string(A->Dims.size()) + " subscripts");
        return E.Ty = A->ElemTy;
      }
      for (ExprPtr &Idx : E.Args)
        if (checkExpr(*Idx) != Type::Int)
          fail("array subscript must be an int expression");
      return E.Ty = A->ElemTy;
    }
    case ExprKind::Unary: {
      Type T = checkExpr(*E.Args[0]);
      if (E.UOp == UnOp::IToF) {
        if (T != Type::Int)
          fail("itof on non-int operand");
        return E.Ty = Type::Fp;
      }
      if (E.UOp == UnOp::Not) {
        if (T != Type::Int)
          fail("'!' needs an int operand");
        return E.Ty = Type::Int;
      }
      return E.Ty = T;
    }
    case ExprKind::Binary: {
      Type L = checkExpr(*E.Args[0]);
      Type R = checkExpr(*E.Args[1]);
      switch (E.BOp) {
      case BinOp::And:
      case BinOp::Or:
        if (L != Type::Int || R != Type::Int)
          fail("logical operators need int operands");
        return E.Ty = Type::Int;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
        if (L != R) {
          if (L == Type::Int)
            promote(E.Args[0]);
          else
            promote(E.Args[1]);
        }
        return E.Ty = Type::Int;
      case BinOp::Div:
        if (L == Type::Int)
          promote(E.Args[0]);
        if (R == Type::Int)
          promote(E.Args[1]);
        return E.Ty = Type::Fp;
      default:
        if (L == R)
          return E.Ty = L;
        if (L == Type::Int)
          promote(E.Args[0]);
        else
          promote(E.Args[1]);
        return E.Ty = Type::Fp;
      }
    }
    }
    return Type::Int;
  }

  void checkStmt(Stmt &S) {
    if (!Err.empty())
      return;
    switch (S.Kind) {
    case StmtKind::Assign: {
      if (S.Lhs->Kind != ExprKind::VarRef &&
          S.Lhs->Kind != ExprKind::ArrayRef) {
        fail("assignment target must be a variable or array element");
        return;
      }
      if (S.Lhs->Kind == ExprKind::VarRef && isLoopVar(S.Lhs->Name)) {
        fail("cannot assign to loop variable '" + S.Lhs->Name + "'");
        return;
      }
      Type LT = checkExpr(*S.Lhs);
      Type RT = checkExpr(*S.Rhs);
      if (LT == Type::Fp && RT == Type::Int)
        promote(S.Rhs);
      else if (LT == Type::Int && RT == Type::Fp)
        fail("cannot assign fp value to int location");
      return;
    }
    case StmtKind::For: {
      if (checkExpr(*S.Lo) != Type::Int || checkExpr(*S.Hi) != Type::Int)
        fail("loop bounds must be int expressions");
      if (P.findVar(S.LoopVar) || P.findArray(S.LoopVar))
        fail("loop variable '" + S.LoopVar + "' shadows a declaration");
      LoopVars.push_back(S.LoopVar);
      for (StmtPtr &C : S.Body)
        checkStmt(*C);
      LoopVars.pop_back();
      return;
    }
    case StmtKind::If: {
      if (checkExpr(*S.Cond) != Type::Int)
        fail("if condition must be an int expression (use a comparison)");
      for (StmtPtr &C : S.Then)
        checkStmt(*C);
      for (StmtPtr &C : S.Else)
        checkStmt(*C);
      return;
    }
    }
  }
};

} // namespace

std::string lang::checkProgram(Program &P) { return Checker(P).run(); }
