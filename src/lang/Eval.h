//===- lang/Eval.h - Reference AST evaluator --------------------*- C++ -*-===//
///
/// \file
/// Direct tree-walking evaluator for kernel-language programs. It is the
/// independent oracle for the whole pipeline: lowering, every ILP transform,
/// trace scheduling and register allocation must all preserve the program
/// checksum this evaluator computes (it matches ir::interpret bit for bit:
/// same zero-initialized memory, same FNV-1a over the output arrays).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LANG_EVAL_H
#define BALSCHED_LANG_EVAL_H

#include "lang/AST.h"

#include <cstdint>
#include <string>

namespace bsched {
namespace lang {

struct EvalResult {
  uint64_t Checksum = 0;
  uint64_t StmtCount = 0; ///< statements executed (loop-iteration proxy).
  std::string Error;      ///< empty on success.

  bool ok() const { return Error.empty(); }
};

/// Evaluates \p P (which must have passed checkProgram) with zero-initialized
/// arrays and returns the output-array checksum.
EvalResult evalProgram(const Program &P, uint64_t MaxStmts = 500000000ull);

} // namespace lang
} // namespace bsched

#endif // BALSCHED_LANG_EVAL_H
