//===- lang/AST.h - Kernel-language abstract syntax -------------*- C++ -*-===//
///
/// \file
/// The kernel language: counted loop nests over cache-aligned arrays with
/// affine subscripts, scalar temporaries, and structured conditionals. It
/// plays the role of the paper's Fortran/C sources: rich enough to express
/// the Perfect Club / SPEC92-style numeric kernels the workload consists of,
/// small enough that the ILP transformations of sections 3.1-3.3 (unrolling,
/// peeling, postconditioning, locality annotation) are source-to-source
/// rewrites on this AST.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LANG_AST_H
#define BALSCHED_LANG_AST_H

#include "ir/IR.h" // for ir::HitMiss annotations on array references

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bsched {
namespace lang {

enum class Type : uint8_t { Int, Fp };

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  FpLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
};

enum class UnOp : uint8_t {
  Neg,  ///< arithmetic negation.
  IToF, ///< implicit int->fp conversion (inserted by the checker).
  Not,  ///< logical negation of an int condition.
};

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div,
  Lt, Le, Gt, Ge, Eq, Ne, ///< comparisons; result type Int (0/1).
  And, Or,                ///< logical on Int operands.
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  /// Result type; filled in by the semantic checker (Int until then for
  /// literals/refs whose type is syntactically known).
  Type Ty = Type::Int;

  // IntLit / FpLit.
  int64_t IntVal = 0;
  double FpVal = 0.0;

  // VarRef / ArrayRef.
  std::string Name;

  // Unary / Binary.
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;

  /// Unary: [operand]. Binary: [lhs, rhs]. ArrayRef: subscripts.
  std::vector<ExprPtr> Args;

  // Locality-analysis annotations, meaningful on ArrayRef in rvalue position
  // (section 3.3): compile-time hit/miss knowledge and the locality group
  // tying hit loads to their governing miss load.
  ir::HitMiss HM = ir::HitMiss::Unknown;
  int LocGroup = -1;

  /// Deep copy (annotations included).
  ExprPtr clone() const;
};

ExprPtr intLit(int64_t V);
ExprPtr fpLit(double V);
ExprPtr varRef(std::string Name);
ExprPtr arrayRef(std::string Name, std::vector<ExprPtr> Indices);
ExprPtr unary(UnOp Op, ExprPtr A);
ExprPtr binary(BinOp Op, ExprPtr L, ExprPtr R);

/// Convenience: Add(L, R), Mul(L, R), ... for builder-style tests.
inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Add, std::move(L), std::move(R));
}
inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Sub, std::move(L), std::move(R));
}
inline ExprPtr mul(ExprPtr L, ExprPtr R) {
  return binary(BinOp::Mul, std::move(L), std::move(R));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t { Assign, For, If };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

struct Stmt {
  StmtKind Kind;

  // Assign: Lhs (VarRef or ArrayRef) = Rhs.
  ExprPtr Lhs, Rhs;

  // For: for (Var = Lo; Var < Hi; Var += Step) Body. Step is a positive
  // compile-time constant, which the unrolling and locality transforms rely
  // on; bounds may be arbitrary int expressions over enclosing scope.
  std::string LoopVar;
  ExprPtr Lo, Hi;
  int64_t Step = 1;
  StmtList Body;
  /// Set on loops a transform has already expanded (e.g. the main loop the
  /// unroller emits) so later unrolling passes leave them alone.
  bool NoUnroll = false;

  // If: if (Cond) Then else Else.
  ExprPtr Cond;
  StmtList Then, Else;

  StmtPtr clone() const;
};

StmtPtr assign(ExprPtr Lhs, ExprPtr Rhs);
StmtPtr forLoop(std::string Var, ExprPtr Lo, ExprPtr Hi, int64_t Step,
                StmtList Body);
StmtPtr ifStmt(ExprPtr Cond, StmtList Then, StmtList Else = {});

StmtList cloneList(const StmtList &L);

//===----------------------------------------------------------------------===//
// Declarations / program
//===----------------------------------------------------------------------===//

struct ArrayDecl {
  std::string Name;
  Type ElemTy = Type::Fp;
  std::vector<int64_t> Dims; ///< outermost first.
  bool RowMajor = true;      ///< the paper's C arrays; Fortran = column-major.
  bool IsOutput = false;     ///< contributes to the program checksum.
};

struct VarDecl {
  std::string Name;
  Type Ty = Type::Fp;
  double FpInit = 0.0;
  int64_t IntInit = 0;
};

struct Program {
  std::string Name = "kernel";
  std::vector<ArrayDecl> Arrays;
  std::vector<VarDecl> Vars;
  StmtList Body;

  Program() = default;
  Program(const Program &O);
  Program &operator=(const Program &O);
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const ArrayDecl *findArray(const std::string &N) const;
  const VarDecl *findVar(const std::string &N) const;
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Renders \p P as kernel-language source (used by tests and the
/// transformation examples; the output is re-parseable except for locality
/// hit/miss annotations, which print as trailing comments).
std::string printProgram(const Program &P);
std::string printStmt(const Stmt &S, int Indent = 0);
std::string printExpr(const Expr &E);

/// Rewrites every reference to loop variable \p Var inside \p E by adding the
/// constant \p Delta (used by unrolling: i -> i + k*step).
void addToVarRefs(Expr &E, const std::string &Var, int64_t Delta);
void addToVarRefs(Stmt &S, const std::string &Var, int64_t Delta);

/// Replaces every reference to \p Var inside the tree with a clone of
/// \p Replacement (used by peeling: i -> lo).
void replaceVarRefs(Expr &E, const std::string &Var, const Expr &Replacement);
void replaceVarRefs(Stmt &S, const std::string &Var, const Expr &Replacement);

/// Estimated number of IR instructions the statement lowers to; drives the
/// paper's unrolled-block size limits (64 instructions at factor 4, 128 at
/// factor 8).
int estimateCost(const Stmt &S);
int estimateCost(const StmtList &L);

} // namespace lang
} // namespace bsched

#endif // BALSCHED_LANG_AST_H
