//===- lang/Parser.h - Kernel-language parser -------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the textual form of the kernel language.
/// The workload kernels (driver/Workloads.cpp) and many tests are written in
/// this form; see README.md for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LANG_PARSER_H
#define BALSCHED_LANG_PARSER_H

#include "lang/AST.h"

#include <string>

namespace bsched {
namespace lang {

struct ParseResult {
  Program Prog;
  /// Empty on success, otherwise "line N: message".
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses \p Source into a Program named \p Name. Does not type-check; run
/// checkProgram afterwards.
ParseResult parseProgram(const std::string &Source,
                         const std::string &Name = "kernel");

/// Resolves names, checks types and shapes, and inserts implicit int->fp
/// conversions in place. Returns an empty string on success, otherwise a
/// diagnostic. Idempotent, so transformation passes may re-run it.
std::string checkProgram(Program &P);

} // namespace lang
} // namespace bsched

#endif // BALSCHED_LANG_PARSER_H
