//===- lang/Eval.cpp - Reference AST evaluator -----------------------------===//

#include "lang/Eval.h"

#include <cstring>
#include <map>

using namespace bsched;
using namespace bsched::lang;

namespace {

union Value {
  int64_t I;
  double F;
};

class Evaluator {
public:
  Evaluator(const Program &P, uint64_t MaxStmts) : P(P), MaxStmts(MaxStmts) {}

  EvalResult run() {
    for (const ArrayDecl &A : P.Arrays) {
      int64_t N = 1;
      for (int64_t D : A.Dims)
        N *= D;
      // Zero-initialized, as in the IR machine's memory image.
      Storage[A.Name].assign(static_cast<size_t>(N), 0);
    }
    for (const VarDecl &V : P.Vars) {
      Value Val;
      if (V.Ty == Type::Int)
        Val.I = V.IntInit;
      else
        Val.F = V.FpInit;
      Vars[V.Name] = Val;
    }
    for (const StmtPtr &S : P.Body) {
      execStmt(*S);
      if (!R.Error.empty())
        break;
    }
    if (R.Error.empty())
      R.Checksum = checksum();
    return R;
  }

private:
  const Program &P;
  uint64_t MaxStmts;
  EvalResult R;
  std::map<std::string, std::vector<uint64_t>> Storage; ///< raw 64-bit cells.
  std::map<std::string, Value> Vars; ///< scalars and live loop variables.

  void fail(const std::string &Msg) {
    if (R.Error.empty())
      R.Error = Msg;
  }

  bool budget() {
    if (++R.StmtCount > MaxStmts) {
      fail("statement budget exhausted");
      return false;
    }
    return R.Error.empty();
  }

  /// Flattened element index of an array reference.
  int64_t elemIndex(const Expr &E, const ArrayDecl &A) {
    int64_t Idx = 0;
    if (A.RowMajor) {
      for (size_t K = 0; K != E.Args.size(); ++K) {
        int64_t Sub = evalExpr(*E.Args[K]).I;
        if (Sub < 0 || Sub >= A.Dims[K]) {
          fail("subscript out of bounds on '" + A.Name + "'");
          return 0;
        }
        Idx = Idx * A.Dims[K] + Sub;
      }
    } else {
      int64_t Stride = 1;
      for (size_t K = 0; K != E.Args.size(); ++K) {
        int64_t Sub = evalExpr(*E.Args[K]).I;
        if (Sub < 0 || Sub >= A.Dims[K]) {
          fail("subscript out of bounds on '" + A.Name + "'");
          return 0;
        }
        Idx += Sub * Stride;
        Stride *= A.Dims[K];
      }
    }
    return Idx;
  }

  Value evalExpr(const Expr &E) {
    Value V;
    V.I = 0;
    if (!R.Error.empty())
      return V;
    switch (E.Kind) {
    case ExprKind::IntLit:
      V.I = E.IntVal;
      return V;
    case ExprKind::FpLit:
      V.F = E.FpVal;
      return V;
    case ExprKind::VarRef: {
      auto It = Vars.find(E.Name);
      if (It == Vars.end()) {
        fail("unknown variable '" + E.Name + "'");
        return V;
      }
      return It->second;
    }
    case ExprKind::ArrayRef: {
      const ArrayDecl *A = P.findArray(E.Name);
      if (!A) {
        fail("unknown array '" + E.Name + "'");
        return V;
      }
      int64_t Idx = elemIndex(E, *A);
      uint64_t Raw = Storage[E.Name][static_cast<size_t>(Idx)];
      if (A->ElemTy == Type::Int)
        V.I = static_cast<int64_t>(Raw);
      else
        std::memcpy(&V.F, &Raw, 8);
      return V;
    }
    case ExprKind::Unary: {
      Value A = evalExpr(*E.Args[0]);
      switch (E.UOp) {
      case UnOp::Neg:
        // Defined as (0 - x), matching the lowered code: the Alpha-like ISA
        // has no sign-flip negate, so -(+0.0) is +0.0 and NaN signs are
        // never flipped. Keeps the oracle and the machine bit-identical.
        if (E.Ty == Type::Fp)
          V.F = 0.0 - A.F;
        else
          V.I = -A.I;
        return V;
      case UnOp::IToF:
        V.F = static_cast<double>(A.I);
        return V;
      case UnOp::Not:
        V.I = A.I == 0 ? 1 : 0;
        return V;
      }
      return V;
    }
    case ExprKind::Binary: {
      Value A = evalExpr(*E.Args[0]);
      Value B = evalExpr(*E.Args[1]);
      bool Fp = E.Args[0]->Ty == Type::Fp;
      switch (E.BOp) {
      case BinOp::Add:
        if (Fp) V.F = A.F + B.F; else V.I = A.I + B.I;
        return V;
      case BinOp::Sub:
        if (Fp) V.F = A.F - B.F; else V.I = A.I - B.I;
        return V;
      case BinOp::Mul:
        if (Fp) V.F = A.F * B.F; else V.I = A.I * B.I;
        return V;
      case BinOp::Div:
        V.F = A.F / B.F;
        return V;
      case BinOp::Lt:
        V.I = (Fp ? A.F < B.F : A.I < B.I) ? 1 : 0;
        return V;
      case BinOp::Le:
        V.I = (Fp ? A.F <= B.F : A.I <= B.I) ? 1 : 0;
        return V;
      case BinOp::Gt:
        V.I = (Fp ? A.F > B.F : A.I > B.I) ? 1 : 0;
        return V;
      case BinOp::Ge:
        V.I = (Fp ? A.F >= B.F : A.I >= B.I) ? 1 : 0;
        return V;
      case BinOp::Eq:
        V.I = (Fp ? A.F == B.F : A.I == B.I) ? 1 : 0;
        return V;
      case BinOp::Ne:
        V.I = (Fp ? A.F != B.F : A.I != B.I) ? 1 : 0;
        return V;
      case BinOp::And:
        V.I = (A.I != 0 && B.I != 0) ? 1 : 0;
        return V;
      case BinOp::Or:
        V.I = (A.I != 0 || B.I != 0) ? 1 : 0;
        return V;
      }
      return V;
    }
    }
    return V;
  }

  void execStmt(const Stmt &S) {
    if (!budget())
      return;
    switch (S.Kind) {
    case StmtKind::Assign: {
      Value V = evalExpr(*S.Rhs);
      if (S.Lhs->Kind == ExprKind::VarRef) {
        Vars[S.Lhs->Name] = V;
        return;
      }
      const ArrayDecl *A = P.findArray(S.Lhs->Name);
      if (!A) {
        fail("unknown array '" + S.Lhs->Name + "'");
        return;
      }
      int64_t Idx = elemIndex(*S.Lhs, *A);
      uint64_t Raw;
      if (A->ElemTy == Type::Int)
        Raw = static_cast<uint64_t>(V.I);
      else
        std::memcpy(&Raw, &V.F, 8);
      if (R.Error.empty())
        Storage[S.Lhs->Name][static_cast<size_t>(Idx)] = Raw;
      return;
    }
    case StmtKind::For: {
      int64_t Lo = evalExpr(*S.Lo).I;
      int64_t Hi = evalExpr(*S.Hi).I;
      bool Shadowed = Vars.count(S.LoopVar) != 0;
      Value Saved;
      if (Shadowed)
        Saved = Vars[S.LoopVar];
      for (int64_t I = Lo; I < Hi && R.Error.empty(); I += S.Step) {
        Vars[S.LoopVar].I = I;
        for (const StmtPtr &C : S.Body)
          execStmt(*C);
      }
      if (Shadowed)
        Vars[S.LoopVar] = Saved;
      else
        Vars.erase(S.LoopVar);
      return;
    }
    case StmtKind::If: {
      const StmtList &Arm = evalExpr(*S.Cond).I != 0 ? S.Then : S.Else;
      for (const StmtPtr &C : Arm)
        execStmt(*C);
      return;
    }
    }
  }

  uint64_t checksum() const {
    uint64_t Hash = 1469598103934665603ull;
    for (const ArrayDecl &A : P.Arrays) {
      if (!A.IsOutput)
        continue;
      const std::vector<uint64_t> &S = Storage.at(A.Name);
      for (uint64_t Cell : S) {
        uint8_t Bytes[8];
        std::memcpy(Bytes, &Cell, 8);
        for (uint8_t B : Bytes) {
          Hash ^= B;
          Hash *= 1099511628211ull;
        }
      }
    }
    return Hash;
  }
};

} // namespace

EvalResult lang::evalProgram(const Program &P, uint64_t MaxStmts) {
  return Evaluator(P, MaxStmts).run();
}
