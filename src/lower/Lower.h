//===- lower/Lower.h - Kernel-language -> IR lowering -----------*- C++ -*-===//
///
/// \file
/// Lowers a checked kernel-language program to the Alpha-like IR:
///  - rotated (do-while) loops, so a straight-line loop body plus its
///    induction update, compare and branch form one basic block — the
///    scheduling region shape the paper's basic-block discussion assumes;
///  - strength reduction of affine array addresses (induction address
///    registers updated in the latch; same-form references share a register
///    and differ only in the load/store displacement);
///  - Multiflow-style if-conversion of simple scalar diamonds to conditional
///    moves (section 4.2 footnote 2);
///  - affine MemRef annotations enabling the scheduler's load/store
///    disambiguation.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LOWER_LOWER_H
#define BALSCHED_LOWER_LOWER_H

#include "ir/IR.h"
#include "lang/AST.h"

#include <string>

namespace bsched {
namespace lower {

struct LowerOptions {
  bool IfConversion = true;
  bool StrengthReduction = true;
};

struct LowerResult {
  ir::Module M;
  std::string Error; ///< empty on success.

  bool ok() const { return Error.empty(); }
};

/// Lowers \p P (which must have passed lang::checkProgram). The resulting
/// module is laid out and verifies cleanly.
LowerResult lowerProgram(const lang::Program &P, LowerOptions Opts = {});

/// Returns true if \p S is an if-statement the lowerer can predicate into
/// conditional moves (single scalar assignment per arm, same scalar, pure
/// scalar operand expressions). Exposed for the unrolling pass, which must
/// not count predicable conditionals against the paper's
/// one-internal-branch unrolling limit.
bool isPredicable(const lang::Stmt &S);

} // namespace lower
} // namespace bsched

#endif // BALSCHED_LOWER_LOWER_H
