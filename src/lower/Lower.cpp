//===- lower/Lower.cpp - Kernel-language -> IR lowering -------------------===//

#include "lower/Lower.h"

#include <algorithm>
#include <map>
#include <set>

using namespace bsched;
using namespace bsched::lower;
using namespace bsched::ir;
using lang::BinOp;
using lang::Expr;
using lang::ExprKind;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtList;
using lang::UnOp;

namespace {

/// Folds \p E to a compile-time integer when it is a constant int expression
/// (integer literals combined by negation and +,-,*,/), so loop bounds
/// written as `16 - 1` still yield exact trip counts. Returns false when any
/// leaf is a variable, array element, or floating-point value.
bool foldConstInt(const Expr &E, int64_t &Out) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    Out = E.IntVal;
    return true;
  case ExprKind::Unary: {
    int64_t A;
    if (E.UOp != UnOp::Neg || E.Ty != lang::Type::Int ||
        !foldConstInt(*E.Args[0], A))
      return false;
    Out = -A;
    return true;
  }
  case ExprKind::Binary: {
    int64_t A, B;
    if (E.Ty != lang::Type::Int || !foldConstInt(*E.Args[0], A) ||
        !foldConstInt(*E.Args[1], B))
      return false;
    switch (E.BOp) {
    case BinOp::Add: Out = A + B; return true;
    case BinOp::Sub: Out = A - B; return true;
    case BinOp::Mul: Out = A * B; return true;
    case BinOp::Div:
      if (B == 0)
        return false;
      Out = A / B;
      return true;
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

/// Exact iteration count of `for (v = Lo; v < Hi; v += Step)` when both
/// bounds fold to constants; -1 when they do not.
int64_t staticTripCount(const Expr &Lo, const Expr &Hi, int64_t Step) {
  int64_t L, H;
  if (Step <= 0 || !foldConstInt(Lo, L) || !foldConstInt(Hi, H))
    return -1;
  if (L >= H)
    return 0;
  return (H - L + Step - 1) / Step;
}

//===----------------------------------------------------------------------===//
// Affine forms
//===----------------------------------------------------------------------===//

/// Sorted sum of Coeff * reg, plus Const (all in abstract units; callers
/// scale to bytes).
struct AffineForm {
  bool Valid = false;
  int64_t Const = 0;
  std::vector<MemRef::Term> Terms; ///< sorted by RegId, no zero coeffs.

  static AffineForm constant(int64_t C) {
    AffineForm F;
    F.Valid = true;
    F.Const = C;
    return F;
  }
  static AffineForm invalid() { return AffineForm(); }

  void addTerm(uint32_t RegId, int64_t Coeff) {
    for (auto It = Terms.begin(); It != Terms.end(); ++It) {
      if (It->RegId == RegId) {
        It->Coeff += Coeff;
        if (It->Coeff == 0)
          Terms.erase(It);
        return;
      }
      if (It->RegId > RegId) {
        Terms.insert(It, {RegId, Coeff});
        return;
      }
    }
    Terms.push_back({RegId, Coeff});
  }

  AffineForm plus(const AffineForm &O, int64_t Sign) const {
    if (!Valid || !O.Valid)
      return invalid();
    AffineForm R = *this;
    R.Const += Sign * O.Const;
    for (const MemRef::Term &T : O.Terms)
      R.addTerm(T.RegId, Sign * T.Coeff);
    return R;
  }

  AffineForm scaled(int64_t K) const {
    if (!Valid)
      return invalid();
    AffineForm R;
    R.Valid = true;
    R.Const = Const * K;
    if (K == 0)
      return R;
    for (const MemRef::Term &T : Terms)
      R.Terms.push_back({T.RegId, T.Coeff * K});
    return R;
  }

  int64_t coeffOf(uint32_t RegId) const {
    for (const MemRef::Term &T : Terms)
      if (T.RegId == RegId)
        return T.Coeff;
    return 0;
  }
};

/// Key identifying a strength-reduction group: same array, same term list
/// (addresses differ only in the constant displacement).
struct GroupKey {
  int ArrayId;
  std::vector<MemRef::Term> Terms;

  bool operator<(const GroupKey &O) const {
    if (ArrayId != O.ArrayId)
      return ArrayId < O.ArrayId;
    if (Terms.size() != O.Terms.size())
      return Terms.size() < O.Terms.size();
    for (size_t I = 0; I != Terms.size(); ++I) {
      if (Terms[I].RegId != O.Terms[I].RegId)
        return Terms[I].RegId < O.Terms[I].RegId;
      if (Terms[I].Coeff != O.Terms[I].Coeff)
        return Terms[I].Coeff < O.Terms[I].Coeff;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Lowerer
//===----------------------------------------------------------------------===//

class Lowerer {
public:
  Lowerer(const Program &P, LowerOptions Opts) : P(P), Opts(Opts) {}

  LowerResult run() {
    LowerResult R;
    buildArrays();
    Function &F = M.Fn;
    F.Name = P.Name;
    Cur = F.makeBlock();

    // Scalar variables live in dedicated registers, initialized up front.
    // Compiler-generated temporaries ("__" prefix: unroll cursors and
    // privatized copies) are written before every read by construction, so
    // they get no dead initializer — one would give them a function-long
    // live-interval hull and phantom register pressure.
    for (const lang::VarDecl &V : P.Vars) {
      Reg R2 = F.makeReg(V.Ty == lang::Type::Int ? RegClass::Int
                                                 : RegClass::Fp);
      Scalars[V.Name] = R2;
      if (V.Name.size() >= 2 && V.Name[0] == '_' && V.Name[1] == '_')
        continue;
      Instr In;
      if (V.Ty == lang::Type::Int) {
        In.Op = Opcode::LdI;
        In.Dst = R2;
        In.Imm = V.IntInit;
        In.HasImm = true;
      } else {
        In.Op = Opcode::FLdI;
        In.Dst = R2;
        In.setFImm(V.FpInit);
      }
      emit(In);
    }

    for (const lang::StmtPtr &S : P.Body) {
      lowerStmt(*S);
      if (!Err.empty())
        break;
    }
    emitRet();

    R.Error = Err;
    if (R.ok()) {
      R.M = std::move(M);
      if (std::string V = verify(R.M); !V.empty())
        R.Error = "lowering produced invalid IR: " + V;
    }
    return R;
  }

private:
  const Program &P;
  LowerOptions Opts;
  Module M;
  std::string Err;
  int Cur = 0; ///< current block id.

  std::map<std::string, Reg> Scalars; ///< declared scalar vars.
  std::map<std::string, int> ArrayIds;

  /// Per-block materialized-constant cache.
  int ConstBlock = -1;
  std::map<int64_t, Reg> IntConsts;
  std::map<int64_t, Reg> FpConsts; ///< keyed by bit pattern.

  struct AddrGroup {
    Reg AddrReg;
    int64_t InnerCoeff = 0; ///< byte stride per unit of the loop variable.
  };

  struct LoopCtx {
    std::string Var;
    Reg VarReg;
    int64_t Step = 1;
    std::map<GroupKey, AddrGroup> Groups;
    /// Scalars assigned somewhere in the loop body; their registers must not
    /// appear in strength-reduced forms.
    std::set<std::string> MutatedScalars;
  };
  std::vector<LoopCtx> Loops;

  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  BasicBlock &curBlock() { return M.Fn.Blocks[Cur]; }

  void emit(Instr In) { curBlock().Instrs.push_back(std::move(In)); }

  void switchTo(int Block) { Cur = Block; }

  void emitRet() {
    Instr In;
    In.Op = Opcode::Ret;
    emit(In);
  }

  void emitJmp(int Target) {
    Instr In;
    In.Op = Opcode::Jmp;
    In.Target0 = Target;
    emit(In);
  }

  void emitBr(Reg Cond, int Taken, int Fall) {
    Instr In;
    In.Op = Opcode::Br;
    In.SrcA = Cond;
    In.Target0 = Taken;
    In.Target1 = Fall;
    emit(In);
  }

  Reg newInt() { return M.Fn.makeReg(RegClass::Int); }
  Reg newFp() { return M.Fn.makeReg(RegClass::Fp); }

  Reg intConst(int64_t V) {
    if (ConstBlock != Cur) {
      ConstBlock = Cur;
      IntConsts.clear();
      FpConsts.clear();
    }
    auto It = IntConsts.find(V);
    if (It != IntConsts.end())
      return It->second;
    Reg R = newInt();
    Instr In;
    In.Op = Opcode::LdI;
    In.Dst = R;
    In.Imm = V;
    In.HasImm = true;
    emit(In);
    IntConsts[V] = R;
    return R;
  }

  Reg fpConst(double V) {
    if (ConstBlock != Cur) {
      ConstBlock = Cur;
      IntConsts.clear();
      FpConsts.clear();
    }
    Instr In;
    In.Op = Opcode::FLdI;
    In.setFImm(V);
    auto It = FpConsts.find(In.Imm);
    if (It != FpConsts.end())
      return It->second;
    Reg R = newFp();
    In.Dst = R;
    emit(In);
    FpConsts[In.Imm] = R;
    return R;
  }

  /// Emits Dst = Op(A, imm).
  Reg emitOpImm(Opcode Op, Reg A, int64_t Imm, Reg Dst = Reg()) {
    if (!Dst.isValid())
      Dst = newInt();
    Instr In;
    In.Op = Op;
    In.Dst = Dst;
    In.SrcA = A;
    In.Imm = Imm;
    In.HasImm = true;
    emit(In);
    return Dst;
  }

  Reg emitOp(Opcode Op, Reg A, Reg B, Reg Dst = Reg()) {
    if (!Dst.isValid())
      Dst = opInfo(Op).DstCls == 1 ? newFp() : newInt();
    Instr In;
    In.Op = Op;
    In.Dst = Dst;
    In.SrcA = A;
    In.SrcB = B;
    emit(In);
    return Dst;
  }

  /// Dst += R * Coeff, using shifts for powers of two (strength reduction of
  /// the multiply itself).
  void emitAddScaled(Reg Dst, Reg R, int64_t Coeff) {
    if (Coeff == 0)
      return;
    bool Negative = Coeff < 0;
    uint64_t Mag = Negative ? static_cast<uint64_t>(-Coeff)
                            : static_cast<uint64_t>(Coeff);
    Reg Scaled;
    if (Mag == 1) {
      Scaled = R;
    } else if ((Mag & (Mag - 1)) == 0) {
      Scaled = emitOpImm(Opcode::Sll, R,
                         static_cast<int64_t>(__builtin_ctzll(Mag)));
    } else {
      Scaled = emitOpImm(Opcode::IMul, R, static_cast<int64_t>(Mag));
    }
    emitOp(Negative ? Opcode::ISub : Opcode::IAdd, Dst, Scaled, Dst);
  }

  /// Materializes \p Base + \p Form into a fresh register.
  Reg materializeAffine(int64_t Base, const AffineForm &Form) {
    Reg R = newInt();
    Instr In;
    In.Op = Opcode::LdI;
    In.Dst = R;
    In.Imm = Base + Form.Const;
    In.HasImm = true;
    emit(In);
    for (const MemRef::Term &T : Form.Terms)
      emitAddScaled(R, Reg(T.RegId), T.Coeff);
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Name resolution / affine analysis
  //===--------------------------------------------------------------------===//

  Reg lookupVar(const std::string &Name) {
    // Loop variables shadow scalars; innermost loop first.
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
      if (It->Var == Name)
        return It->VarReg;
    auto It = Scalars.find(Name);
    if (It != Scalars.end())
      return It->second;
    fail("lowering: unknown variable '" + Name + "'");
    return intConst(0);
  }

  bool isLoopVarName(const std::string &Name) const {
    for (const LoopCtx &L : Loops)
      if (L.Var == Name)
        return true;
    return false;
  }

  AffineForm affineOf(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return AffineForm::constant(E.IntVal);
    case ExprKind::VarRef: {
      if (E.Ty != lang::Type::Int)
        return AffineForm::invalid();
      Reg R = lookupVar(E.Name);
      AffineForm F;
      F.Valid = true;
      F.addTerm(R.Id, 1);
      return F;
    }
    case ExprKind::Unary:
      if (E.UOp == UnOp::Neg)
        return affineOf(*E.Args[0]).scaled(-1);
      return AffineForm::invalid();
    case ExprKind::Binary: {
      if (E.BOp == BinOp::Add)
        return affineOf(*E.Args[0]).plus(affineOf(*E.Args[1]), 1);
      if (E.BOp == BinOp::Sub)
        return affineOf(*E.Args[0]).plus(affineOf(*E.Args[1]), -1);
      if (E.BOp == BinOp::Mul) {
        AffineForm L = affineOf(*E.Args[0]);
        AffineForm R = affineOf(*E.Args[1]);
        if (L.Valid && L.Terms.empty())
          return R.scaled(L.Const);
        if (R.Valid && R.Terms.empty())
          return L.scaled(R.Const);
        return AffineForm::invalid();
      }
      return AffineForm::invalid();
    }
    default:
      return AffineForm::invalid();
    }
  }

  /// Byte strides per dimension (outermost first).
  static std::vector<int64_t> byteStrides(const lang::ArrayDecl &A) {
    size_t N = A.Dims.size();
    std::vector<int64_t> S(N, 8);
    if (A.RowMajor) {
      for (size_t K = N; K-- > 0;)
        S[K] = (K + 1 == N) ? 8 : S[K + 1] * A.Dims[K + 1];
    } else {
      for (size_t K = 0; K != N; ++K)
        S[K] = (K == 0) ? 8 : S[K - 1] * A.Dims[K - 1];
    }
    return S;
  }

  /// Full byte-address form of an array reference relative to the array base,
  /// or invalid.
  AffineForm addressFormOf(const Expr &Ref, const lang::ArrayDecl &A) {
    AffineForm Total = AffineForm::constant(0);
    std::vector<int64_t> Strides = byteStrides(A);
    for (size_t K = 0; K != Ref.Args.size(); ++K) {
      AffineForm Sub = affineOf(*Ref.Args[K]);
      if (!Sub.Valid)
        return AffineForm::invalid();
      Total = Total.plus(Sub.scaled(Strides[K]), 1);
    }
    return Total;
  }

  //===--------------------------------------------------------------------===//
  // Strength-reduction pre-scan
  //===--------------------------------------------------------------------===//

  /// Collects array references directly inside \p Body (descending into ifs
  /// but not into nested loops) and the set of scalars assigned anywhere.
  void scanLoopBody(const StmtList &Body, std::vector<const Expr *> &Refs,
                    std::set<std::string> &Mutated) {
    for (const lang::StmtPtr &S : Body)
      scanLoopStmt(*S, Refs, Mutated, /*InNestedLoop=*/false);
  }

  void scanLoopStmt(const Stmt &S, std::vector<const Expr *> &Refs,
                    std::set<std::string> &Mutated, bool InNestedLoop) {
    switch (S.Kind) {
    case StmtKind::Assign:
      if (S.Lhs->Kind == ExprKind::VarRef)
        Mutated.insert(S.Lhs->Name);
      if (!InNestedLoop) {
        scanExpr(*S.Lhs, Refs);
        scanExpr(*S.Rhs, Refs);
      }
      return;
    case StmtKind::For:
      for (const lang::StmtPtr &C : S.Body)
        scanLoopStmt(*C, Refs, Mutated, /*InNestedLoop=*/true);
      return;
    case StmtKind::If:
      if (!InNestedLoop)
        scanExpr(*S.Cond, Refs);
      for (const lang::StmtPtr &C : S.Then)
        scanLoopStmt(*C, Refs, Mutated, InNestedLoop);
      for (const lang::StmtPtr &C : S.Else)
        scanLoopStmt(*C, Refs, Mutated, InNestedLoop);
      return;
    }
  }

  void scanExpr(const Expr &E, std::vector<const Expr *> &Refs) {
    if (E.Kind == ExprKind::ArrayRef)
      Refs.push_back(&E);
    for (const lang::ExprPtr &A : E.Args)
      scanExpr(*A, Refs);
  }

  /// True if every symbolic term is safe to cache across iterations of the
  /// innermost loop: the loop's own variable, an outer loop variable, or a
  /// scalar the loop body never assigns.
  bool termsAreStable(const AffineForm &F, const LoopCtx &L) {
    for (const MemRef::Term &T : F.Terms) {
      Reg R(T.RegId);
      bool IsLoopVar = false;
      for (const LoopCtx &Ctx : Loops)
        if (Ctx.VarReg == R)
          IsLoopVar = true;
      if (R == L.VarReg)
        IsLoopVar = true;
      if (IsLoopVar)
        continue;
      bool IsStableScalar = false;
      for (const auto &[Name, SReg] : Scalars)
        if (SReg == R && !L.MutatedScalars.count(Name))
          IsStableScalar = true;
      if (!IsStableScalar)
        return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Address / memory emission
  //===--------------------------------------------------------------------===//

  struct Address {
    Reg Base;
    int64_t Offset = 0;
    MemRef Mem;
  };

  Address lowerAddress(const Expr &Ref) {
    Address Out;
    auto ArrIt = ArrayIds.find(Ref.Name);
    assert(ArrIt != ArrayIds.end() && "checker admitted unknown array");
    int ArrayId = ArrIt->second;
    const lang::ArrayDecl &A = P.Arrays[static_cast<size_t>(ArrayId)];
    const ArrayInfo &Info = M.Arrays[static_cast<size_t>(ArrayId)];
    Out.Mem.ArrayId = ArrayId;

    AffineForm Form = addressFormOf(Ref, A);
    if (Form.Valid) {
      Out.Mem.HasForm = true;
      Out.Mem.Terms = Form.Terms;
      Out.Mem.Const = Form.Const;

      // Strength reduction: share an induction address register among all
      // same-form references of the innermost loop.
      if (Opts.StrengthReduction && !Loops.empty()) {
        LoopCtx &L = Loops.back();
        GroupKey Key{ArrayId, Form.Terms};
        auto It = L.Groups.find(Key);
        if (It != L.Groups.end()) {
          Out.Base = It->second.AddrReg;
          Out.Offset = Form.Const;
          return Out;
        }
      }
      // General affine materialization.
      AffineForm NoConst = Form;
      NoConst.Const = 0;
      Out.Base = materializeAffine(static_cast<int64_t>(Info.Base), NoConst);
      Out.Offset = Form.Const;
      return Out;
    }

    // Non-affine: flatten subscripts dynamically (index arrays etc.),
    // accumulating sub_k * elemStride_k for either storage layout.
    std::vector<int64_t> Strides = byteStrides(A);
    Reg Idx = newInt();
    emitLdI(Idx, 0);
    for (size_t K = 0; K != Ref.Args.size(); ++K) {
      Reg Sub = lowerExpr(*Ref.Args[K]);
      emitAddScaled(Idx, Sub, Strides[K] / 8); // element strides (8B cells)
    }
    Reg ByteOff = emitOpImm(Opcode::Sll, Idx, 3);
    Reg BaseReg = intConst(static_cast<int64_t>(Info.Base));
    Out.Base = emitOp(Opcode::IAdd, BaseReg, ByteOff);
    Out.Offset = 0;
    Out.Mem.HasForm = false;
    return Out;
  }

  Reg lowerLoad(const Expr &Ref) {
    Address Addr = lowerAddress(Ref);
    const lang::ArrayDecl &A =
        P.Arrays[static_cast<size_t>(Addr.Mem.ArrayId)];
    bool IsFp = A.ElemTy == lang::Type::Fp;
    Instr In;
    In.Op = IsFp ? Opcode::FLoad : Opcode::Load;
    In.Dst = IsFp ? newFp() : newInt();
    In.Base = Addr.Base;
    In.Offset = Addr.Offset;
    In.Mem = Addr.Mem;
    In.HM = Ref.HM;
    In.LocalityGroup = Ref.LocGroup;
    emit(In);
    return In.Dst;
  }

  void lowerStore(const Expr &Ref, Reg Val) {
    Address Addr = lowerAddress(Ref);
    const lang::ArrayDecl &A =
        P.Arrays[static_cast<size_t>(Addr.Mem.ArrayId)];
    bool IsFp = A.ElemTy == lang::Type::Fp;
    Instr In;
    In.Op = IsFp ? Opcode::FStore : Opcode::Store;
    In.SrcA = Val;
    In.Base = Addr.Base;
    In.Offset = Addr.Offset;
    In.Mem = Addr.Mem;
    emit(In);
  }

  //===--------------------------------------------------------------------===//
  // Expression lowering
  //===--------------------------------------------------------------------===//

  Reg lowerExpr(const Expr &E) { return lowerExprInto(E, Reg()); }

  /// Lowers \p E; if \p Target is valid the result is written there.
  Reg lowerExprInto(const Expr &E, Reg Target) {
    switch (E.Kind) {
    case ExprKind::IntLit: {
      if (Target.isValid())
        return emitLdI(Target, E.IntVal);
      return intConst(E.IntVal);
    }
    case ExprKind::FpLit: {
      if (Target.isValid()) {
        Instr In;
        In.Op = Opcode::FLdI;
        In.Dst = Target;
        In.setFImm(E.FpVal);
        emit(In);
        return Target;
      }
      return fpConst(E.FpVal);
    }
    case ExprKind::VarRef: {
      Reg R = lookupVar(E.Name);
      if (Target.isValid() && Target != R)
        return emitOp(E.Ty == lang::Type::Fp ? Opcode::FMov : Opcode::Mov, R,
                      Reg(), Target);
      return R;
    }
    case ExprKind::ArrayRef: {
      Reg R = lowerLoad(E);
      if (Target.isValid())
        return emitOp(E.Ty == lang::Type::Fp ? Opcode::FMov : Opcode::Mov, R,
                      Reg(), Target);
      return R;
    }
    case ExprKind::Unary: {
      if (E.UOp == UnOp::IToF) {
        Reg A = lowerExpr(*E.Args[0]);
        return emitOp(Opcode::ItoF, A, Reg(),
                      Target.isValid() ? Target : newFp());
      }
      if (E.UOp == UnOp::Not) {
        Reg A = lowerExpr(*E.Args[0]);
        return emitOpImm(Opcode::CmpEq, A, 0,
                         Target.isValid() ? Target : newInt());
      }
      // Negation: 0 - x.
      if (E.Ty == lang::Type::Fp) {
        Reg Zero = fpConst(0.0);
        Reg A = lowerExpr(*E.Args[0]);
        return emitOp(Opcode::FSub, Zero, A,
                      Target.isValid() ? Target : newFp());
      }
      Reg Zero = intConst(0);
      Reg A = lowerExpr(*E.Args[0]);
      return emitOp(Opcode::ISub, Zero, A,
                    Target.isValid() ? Target : newInt());
    }
    case ExprKind::Binary:
      return lowerBinary(E, Target);
    }
    fail("lowering: unhandled expression");
    return intConst(0);
  }

  Reg emitLdI(Reg Target, int64_t V) {
    Instr In;
    In.Op = Opcode::LdI;
    In.Dst = Target;
    In.Imm = V;
    In.HasImm = true;
    emit(In);
    return Target;
  }

  /// Lowers an operand used in a 0/1 logical context, normalizing when the
  /// expression is not already a comparison result.
  Reg lowerBool(const Expr &E) {
    bool Already01 =
        (E.Kind == ExprKind::Binary &&
         (E.BOp == BinOp::Lt || E.BOp == BinOp::Le || E.BOp == BinOp::Gt ||
          E.BOp == BinOp::Ge || E.BOp == BinOp::Eq || E.BOp == BinOp::Ne ||
          E.BOp == BinOp::And || E.BOp == BinOp::Or)) ||
        (E.Kind == ExprKind::Unary && E.UOp == UnOp::Not);
    Reg R = lowerExpr(E);
    if (Already01)
      return R;
    Reg IsZero = emitOpImm(Opcode::CmpEq, R, 0);
    return emitOpImm(Opcode::CmpEq, IsZero, 0);
  }

  Reg lowerBinary(const Expr &E, Reg Target) {
    const Expr &L = *E.Args[0];
    const Expr &R = *E.Args[1];
    bool FpOperands = L.Ty == lang::Type::Fp;

    switch (E.BOp) {
    case BinOp::And:
    case BinOp::Or: {
      Reg A = lowerBool(L);
      Reg B = lowerBool(R);
      return emitOp(E.BOp == BinOp::And ? Opcode::And : Opcode::Or, A, B,
                    Target.isValid() ? Target : newInt());
    }
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div: {
      Reg A = lowerExpr(L);
      Reg B = lowerExpr(R);
      Opcode Op;
      if (FpOperands) {
        Op = E.BOp == BinOp::Add   ? Opcode::FAdd
             : E.BOp == BinOp::Sub ? Opcode::FSub
             : E.BOp == BinOp::Mul ? Opcode::FMul
                                   : Opcode::FDiv;
      } else {
        assert(E.BOp != BinOp::Div && "checker rejects integer division");
        Op = E.BOp == BinOp::Add   ? Opcode::IAdd
             : E.BOp == BinOp::Sub ? Opcode::ISub
                                   : Opcode::IMul;
      }
      return emitOp(Op, A, B, Target);
    }
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      bool Swap = E.BOp == BinOp::Gt || E.BOp == BinOp::Ge;
      bool IsLe = E.BOp == BinOp::Le || E.BOp == BinOp::Ge;
      Reg A = lowerExpr(Swap ? R : L);
      Reg B = lowerExpr(Swap ? L : R);
      Opcode Op = FpOperands ? (IsLe ? Opcode::FCmpLe : Opcode::FCmpLt)
                             : (IsLe ? Opcode::CmpLe : Opcode::CmpLt);
      return emitOp(Op, A, B, Target.isValid() ? Target : newInt());
    }
    case BinOp::Eq:
    case BinOp::Ne: {
      Reg A = lowerExpr(L);
      Reg B = lowerExpr(R);
      Reg Eq = emitOp(FpOperands ? Opcode::FCmpEq : Opcode::CmpEq, A, B,
                      E.BOp == BinOp::Eq && Target.isValid() ? Target
                                                             : Reg());
      if (E.BOp == BinOp::Eq)
        return Eq;
      return emitOpImm(Opcode::CmpEq, Eq, 0,
                       Target.isValid() ? Target : newInt());
    }
    }
    fail("lowering: unhandled binary operator");
    return intConst(0);
  }

  //===--------------------------------------------------------------------===//
  // Statement lowering
  //===--------------------------------------------------------------------===//

  void lowerStmt(const Stmt &S) {
    if (!Err.empty())
      return;
    switch (S.Kind) {
    case StmtKind::Assign:
      lowerAssign(S);
      return;
    case StmtKind::For:
      lowerFor(S);
      return;
    case StmtKind::If:
      if (Opts.IfConversion && isPredicable(S))
        lowerPredicatedIf(S);
      else
        lowerBranchyIf(S);
      return;
    }
  }

  void lowerAssign(const Stmt &S) {
    if (S.Lhs->Kind == ExprKind::VarRef) {
      Reg Dst = lookupVar(S.Lhs->Name);
      lowerExprInto(*S.Rhs, Dst);
      return;
    }
    Reg Val = lowerExpr(*S.Rhs);
    lowerStore(*S.Lhs, Val);
  }

  void lowerPredicatedIf(const Stmt &S) {
    Reg Cond = lowerExpr(*S.Cond);
    const Stmt &ThenA = *S.Then[0];
    Reg Dst = lookupVar(ThenA.Lhs->Name);
    bool IsFp = ThenA.Lhs->Ty == lang::Type::Fp;
    // Evaluate the then-value BEFORE the else-value is written into Dst:
    // both arms may read the variable's old value (e.g. t = t + 1 vs
    // t = t - 1).
    Reg ThenVal = lowerExpr(*ThenA.Rhs);
    if (!S.Else.empty()) {
      // Dst = elseVal; if (cond) Dst = thenVal.
      lowerExprInto(*S.Else[0]->Rhs, Dst);
    }
    Instr In;
    In.Op = IsFp ? Opcode::FCMov : Opcode::CMov;
    In.Dst = Dst;
    In.SrcA = Cond;
    In.SrcB = ThenVal;
    emit(In);
  }

  void lowerBranchyIf(const Stmt &S) {
    Reg Cond = lowerExpr(*S.Cond);
    int ThenB = M.Fn.makeBlock();
    int MergeB = M.Fn.makeBlock();
    int ElseB = S.Else.empty() ? MergeB : M.Fn.makeBlock();
    emitBr(Cond, ThenB, ElseB);

    switchTo(ThenB);
    for (const lang::StmtPtr &C : S.Then)
      lowerStmt(*C);
    emitJmp(MergeB);

    if (!S.Else.empty()) {
      switchTo(ElseB);
      for (const lang::StmtPtr &C : S.Else)
        lowerStmt(*C);
      emitJmp(MergeB);
    }
    switchTo(MergeB);
  }

  void lowerFor(const Stmt &S) {
    // Preheader (current block): evaluate bounds once, set up the induction
    // register and the strength-reduction address registers, then guard.
    Reg IVar = newInt();
    lowerExprInto(*S.Lo, IVar);
    Reg Hi = newInt();
    lowerExprInto(*S.Hi, Hi);

    LoopCtx Ctx;
    Ctx.Var = S.LoopVar;
    Ctx.VarReg = IVar;
    Ctx.Step = S.Step;

    std::vector<const Expr *> Refs;
    scanLoopBody(S.Body, Refs, Ctx.MutatedScalars);

    Loops.push_back(std::move(Ctx));

    if (Opts.StrengthReduction) {
      // NOTE: nested loops push onto Loops while the body lowers, which can
      // reallocate the vector — never hold a LoopCtx reference across body
      // lowering (re-fetch via Loops.back() instead).
      LoopCtx &L = Loops.back();
      for (const Expr *Ref : Refs) {
        auto ArrIt = ArrayIds.find(Ref->Name);
        if (ArrIt == ArrayIds.end())
          continue;
        const lang::ArrayDecl &A = P.Arrays[static_cast<size_t>(
            ArrIt->second)];
        AffineForm Form = addressFormOf(*Ref, A);
        if (!Form.Valid || !termsAreStable(Form, L))
          continue;
        GroupKey Key{ArrIt->second, Form.Terms};
        if (L.Groups.count(Key))
          continue;
        AddrGroup G;
        AffineForm NoConst = Form;
        NoConst.Const = 0;
        G.AddrReg = materializeAffine(
            static_cast<int64_t>(
                M.Arrays[static_cast<size_t>(ArrIt->second)].Base),
            NoConst);
        G.InnerCoeff = Form.coeffOf(IVar.Id);
        L.Groups.emplace(std::move(Key), G);
      }
    }

    int BodyB = M.Fn.makeBlock();
    int ExitB = M.Fn.makeBlock();

    // Statically-bounded loops carry their exact trip count on the blocks
    // whose branches control them (the guard here, the latch below); the
    // static profile estimator reads the annotation instead of guessing.
    int64_t Trip = staticTripCount(*S.Lo, *S.Hi, S.Step);

    Reg Guard = emitOp(Opcode::CmpLt, IVar, Hi);
    emitBr(Guard, BodyB, ExitB);
    if (Trip >= 0)
      M.Fn.Blocks[static_cast<size_t>(Cur)].ExactTripCount = Trip;

    switchTo(BodyB);
    for (const lang::StmtPtr &C : S.Body)
      lowerStmt(*C);

    // Latch: bump the address registers and the induction variable, re-test.
    // Re-fetch the context: nested loops may have reallocated Loops.
    LoopCtx &L = Loops.back();
    for (auto &[Key, G] : L.Groups) {
      (void)Key;
      if (G.InnerCoeff != 0)
        emitOpImm(Opcode::IAdd, G.AddrReg, G.InnerCoeff * S.Step, G.AddrReg);
    }
    emitOpImm(Opcode::IAdd, IVar, S.Step, IVar);
    Reg Again = emitOp(Opcode::CmpLt, IVar, Hi);
    emitBr(Again, BodyB, ExitB);
    if (Trip >= 0)
      M.Fn.Blocks[static_cast<size_t>(Cur)].ExactTripCount = Trip;

    Loops.pop_back();
    switchTo(ExitB);
  }

  void buildArrays() {
    for (const lang::ArrayDecl &A : P.Arrays) {
      ArrayInfo Info;
      Info.Name = A.Name;
      Info.Dims = A.Dims;
      Info.RowMajor = A.RowMajor;
      Info.IsOutput = A.IsOutput;
      ArrayIds[A.Name] = M.addArray(std::move(Info));
    }
    M.layout();
  }
};

/// True when every leaf of \p E is scalar (no memory access, so the arm can
/// be executed speculatively by a conditional move).
bool isPureScalarExpr(const Expr &E) {
  if (E.Kind == ExprKind::ArrayRef)
    return false;
  for (const lang::ExprPtr &A : E.Args)
    if (!isPureScalarExpr(*A))
      return false;
  return true;
}

} // namespace

bool lower::isPredicable(const lang::Stmt &S) {
  if (S.Kind != StmtKind::If)
    return false;
  if (S.Then.size() != 1 || S.Else.size() > 1)
    return false;
  const Stmt &ThenA = *S.Then[0];
  if (ThenA.Kind != StmtKind::Assign || ThenA.Lhs->Kind != ExprKind::VarRef)
    return false;
  if (!isPureScalarExpr(*S.Cond) || !isPureScalarExpr(*ThenA.Rhs))
    return false;
  if (!S.Else.empty()) {
    const Stmt &ElseA = *S.Else[0];
    if (ElseA.Kind != StmtKind::Assign ||
        ElseA.Lhs->Kind != ExprKind::VarRef ||
        ElseA.Lhs->Name != ThenA.Lhs->Name ||
        !isPureScalarExpr(*ElseA.Rhs))
      return false;
  }
  return true;
}

LowerResult lower::lowerProgram(const Program &P, LowerOptions Opts) {
  return Lowerer(P, Opts).run();
}
