//===- trace/EstimateProfile.h - Static frequency estimation ----*- C++ -*-===//
///
/// \file
/// Static basic-block and edge frequency estimation for trace selection.
/// Section 3.2 allows traces to be "guided by estimated or profiled
/// execution frequencies"; the paper's experiments profile (as does this
/// reproduction by default), and this estimator provides the other option:
/// classic structural heuristics — each level of loop nesting multiplies a
/// block's expected count by a constant, loop-back and loop-staying edges
/// are strongly favored, other conditional edges split evenly.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_TRACE_ESTIMATEPROFILE_H
#define BALSCHED_TRACE_ESTIMATEPROFILE_H

#include "ir/CFG.h"
#include "ir/IR.h"
#include "ir/Interp.h"

#include <vector>

namespace bsched {
namespace trace {

/// Expected iterations per loop level used by the estimator.
constexpr uint64_t EstimatedTripCount = 10;

/// Produces an InterpResult-shaped profile (BlockCounts/EdgeCounts filled,
/// no checksum) from static heuristics; a drop-in replacement for the
/// interpreter profile consumed by formTraces/traceScheduleFunction.
ir::InterpResult estimateProfile(const ir::Function &F);

} // namespace trace
} // namespace bsched

#endif // BALSCHED_TRACE_ESTIMATEPROFILE_H
