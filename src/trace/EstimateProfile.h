//===- trace/EstimateProfile.h - Static frequency estimation ----*- C++ -*-===//
///
/// \file
/// Static basic-block and edge frequency estimation for trace selection.
/// Section 3.2 allows traces to be "guided by estimated or profiled
/// execution frequencies"; the paper's experiments profile (as does this
/// reproduction by default), and this estimator provides the other option.
///
/// The estimator combines Ball/Larus-style branch heuristics (loop-back,
/// loop-exit, loop-enter/guard, opcode, store, and return predictors merged
/// with the Wu-Larus probability-combination rule), exact trip counts the
/// front end annotated onto statically-bounded `for` loops at lowering time
/// (BasicBlock::ExactTripCount), and frequency propagation over the natural
/// loop forest. The result is an InterpResult whose BlockCounts/EdgeCounts
/// are exactly flow-conserving in integer arithmetic: the entry block is
/// injected with EstimateEntryCount units, and for every block the incoming
/// edge flow (plus the entry injection) equals its count, which equals its
/// outgoing edge flow unless the block returns. Irreducible control flow
/// falls back to a capped iterative propagation that preserves the same
/// invariant. ir::checkProfileConservation verifies it; the fuzz oracle's
/// --est leg enforces it on every mutant.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_TRACE_ESTIMATEPROFILE_H
#define BALSCHED_TRACE_ESTIMATEPROFILE_H

#include "ir/CFG.h"
#include "ir/IR.h"
#include "ir/Interp.h"

#include <vector>

namespace bsched {
namespace trace {

/// Expected iterations of a loop whose trip count is not statically known and
/// whose cyclic probability solve degenerates (the classic libfirm/Ball-Larus
/// default of 10).
constexpr uint64_t EstimatedTripCount = 10;

/// Flow units injected into the entry block. One "execution" of the function
/// is EstimateEntryCount units, so branch probabilities down to about 1/4096
/// survive integer rounding on cold paths.
constexpr uint64_t EstimateEntryCount = 1ull << 12;

/// Produces an InterpResult-shaped profile (BlockCounts/EdgeCounts filled,
/// no checksum) from static heuristics; a drop-in replacement for the
/// interpreter profile consumed by formTraces/traceScheduleFunction.
///
/// Finished is true except when some entry-reachable block cannot reach a
/// Ret (the static analogue of the interpreter running out of budget in an
/// infinite loop); callers that reject unfinished interpreter profiles get
/// the same signal here.
ir::InterpResult estimateProfile(const ir::Function &F);

} // namespace trace
} // namespace bsched

#endif // BALSCHED_TRACE_ESTIMATEPROFILE_H
