//===- trace/EstimateProfile.cpp - Static frequency estimation -------------===//

#include "trace/EstimateProfile.h"

#include <algorithm>

using namespace bsched;
using namespace bsched::trace;
using namespace bsched::ir;

InterpResult trace::estimateProfile(const Function &F) {
  size_t N = F.Blocks.size();
  std::vector<int> Depth = loopDepths(F);
  std::vector<std::vector<bool>> Back = findBackEdges(F);

  InterpResult R;
  R.Finished = true;
  R.BlockCounts.assign(N, 0);
  R.EdgeCounts.assign(N, {0, 0});

  for (size_t B = 0; B != N; ++B) {
    uint64_t Count = 1;
    for (int D = 0; D != std::min(Depth[B], 6); ++D)
      Count *= EstimatedTripCount;
    R.BlockCounts[B] = Count;
  }

  // Edge weights: a back edge keeps (trip-1)/trip of the flow; an edge that
  // stays at the block's depth beats one that leaves the loop; other
  // conditional edges split evenly.
  for (size_t B = 0; B != N; ++B) {
    std::vector<int> Succs = F.Blocks[B].successors();
    uint64_t Total = R.BlockCounts[B];
    if (Succs.size() == 1) {
      R.EdgeCounts[B][0] = Total;
      continue;
    }
    if (Succs.size() != 2)
      continue; // Ret
    uint64_t W0;
    bool Back0 = Back[B][0], Back1 = Back[B][1];
    if (Back0 != Back1) {
      W0 = Back0 ? Total * (EstimatedTripCount - 1) / EstimatedTripCount
                 : Total / EstimatedTripCount;
    } else if (Depth[Succs[0]] != Depth[Succs[1]]) {
      bool DeeperFirst = Depth[Succs[0]] > Depth[Succs[1]];
      W0 = DeeperFirst ? Total * (EstimatedTripCount - 1) / EstimatedTripCount
                       : Total / EstimatedTripCount;
    } else {
      W0 = Total / 2;
    }
    R.EdgeCounts[B][0] = W0;
    R.EdgeCounts[B][1] = Total - W0;
  }
  return R;
}
