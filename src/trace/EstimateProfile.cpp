//===- trace/EstimateProfile.cpp - Static frequency estimation ------------===//
///
/// \file
/// The estimator runs in four stages:
///
///  1. Branch probabilities: Ball/Larus-style heuristics (loop-back,
///     loop-stay, loop-enter, opcode, store, return) combined with the
///     Wu-Larus rule, then overridden with certainty where lowering
///     annotated an exact trip count (BasicBlock::ExactTripCount).
///  2. Loop analysis: natural loops merged by header; each loop gets a trip
///     factor from its latch annotation, or else 1/(1 - cyclic probability)
///     where the cyclic probability comes from a local relative propagation
///     that treats inner loops as run-then-exit.
///  3. Reducible propagation: a single reverse-post-order pass injects
///     EstimateEntryCount units at the entry. Each loop header plans an
///     integer "deficit" of (trip - 1) * inflow extra units, which its
///     latches must deliver back over the back edges; conditional blocks
///     split their flow by the stage-1 probabilities with the remainder kept
///     on the sibling edge, so integer conservation is exact. For the
///     single-latch rotated loops the front end lowers, the plan is
///     delivered exactly on the first pass; otherwise the plan is rescaled
///     by the delivered fraction and re-run (bounded rounds).
///  4. Irreducible/unconverged fallback: bounded weighted sweeps where flow
///     crossing a retreating edge is carried into the next sweep, then a
///     drain pass that walks blocks by decreasing distance-to-return and
///     pushes residual flow toward the nearest Ret. Conservation again holds
///     by construction; only the loop weighting is approximate.
///
/// Functions with an entry-reachable block that cannot reach any Ret (the
/// static picture of an infinite loop) return Finished = false, mirroring
/// the interpreter exhausting its budget.
///
//===----------------------------------------------------------------------===//

#include "trace/EstimateProfile.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

using namespace bsched;
using namespace bsched::trace;
using namespace bsched::ir;

namespace {

/// Heuristic branch probabilities, in the spirit of Ball and Larus's static
/// predictors with hit rates rounded to this IR's reality. Each value is the
/// probability of the slot the heuristic points at.
constexpr double ProbLoopBack = 0.88;  ///< back edges are followed
constexpr double ProbLoopStay = 0.80;  ///< edges staying inside the loop
constexpr double ProbLoopEnter = 0.78; ///< edges entering a loop (guards)
constexpr double ProbEqTaken = 0.16;   ///< equality / x<0 compares rarely hold
constexpr double ProbStoreSucc = 0.45; ///< store-containing side slightly cold
constexpr double ProbRetSucc = 0.28;   ///< early-returning side is cold
constexpr double ProbClampLo = 0.02;
constexpr double ProbClampHi = 0.98;

/// Hard cap on a single loop's planned flow; keeps nested products far from
/// uint64 overflow even after many levels of splitting and accumulation.
constexpr double FlowCap = 1e14;

/// Rounds of plan rescaling (reducible path) and of weighted sweeps
/// (irreducible fallback) before giving up / draining.
constexpr int MaxRounds = 8;

/// Wu-Larus combination of two independent predictions for the same branch:
/// p = p1*p2 / (p1*p2 + (1-p1)(1-p2)).
double combineProb(double P, double Q) {
  double Num = P * Q;
  double Den = Num + (1.0 - P) * (1.0 - Q);
  return Den > 0.0 ? Num / Den : 0.5;
}

/// Natural loops that share a header, merged into one region with (possibly)
/// several latches.
struct MergedLoop {
  int Header = -1;
  std::vector<int> Latches;
  std::vector<bool> Contains;
  size_t Size = 0;
};

} // namespace

InterpResult trace::estimateProfile(const Function &F) {
  size_t N = F.Blocks.size();
  InterpResult R;
  R.Finished = true;
  R.BlockCounts.assign(N, 0);
  R.EdgeCounts.assign(N, {0, 0});
  if (N == 0)
    return R;

  std::vector<std::vector<int>> Succ(N), Pred(N);
  for (size_t B = 0; B != N; ++B)
    Succ[B] = F.Blocks[B].successors();
  for (size_t B = 0; B != N; ++B)
    for (int S : Succ[B])
      Pred[static_cast<size_t>(S)].push_back(static_cast<int>(B));

  // Entry-reachability and shortest distance-to-Ret (over reversed edges).
  std::vector<bool> FromEntry(N, false);
  {
    std::vector<int> Work{0};
    FromEntry[0] = true;
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      for (int S : Succ[B])
        if (!FromEntry[S]) {
          FromEntry[S] = true;
          Work.push_back(S);
        }
    }
  }
  std::vector<int> DistToRet(N, std::numeric_limits<int>::max());
  {
    std::vector<int> Frontier;
    for (size_t B = 0; B != N; ++B)
      if (Succ[B].empty() && !F.Blocks[B].Instrs.empty()) {
        DistToRet[B] = 0;
        Frontier.push_back(static_cast<int>(B));
      }
    while (!Frontier.empty()) {
      std::vector<int> Next;
      for (int B : Frontier)
        for (int P : Pred[B])
          if (DistToRet[P] == std::numeric_limits<int>::max()) {
            DistToRet[P] = DistToRet[B] + 1;
            Next.push_back(P);
          }
      Frontier = std::move(Next);
    }
  }
  // A reachable block that cannot reach a Ret means the program loops
  // forever; no finite flow-conserving profile exists. Mirror the
  // interpreter's budget exhaustion so callers reject it the same way.
  for (size_t B = 0; B != N; ++B)
    if (FromEntry[B] && DistToRet[B] == std::numeric_limits<int>::max()) {
      R.Finished = false;
      return R;
    }

  std::vector<std::vector<bool>> Back = findBackEdges(F);

  // One loop discovery for everything below: depths (same per-NaturalLoop
  // counting as ir::loopDepths), then the loops merged by header.
  std::vector<NaturalLoop> Natural = findNaturalLoops(F);
  std::vector<int> Depth(N, 0);
  for (const NaturalLoop &L : Natural)
    for (size_t B = 0; B != N; ++B)
      if (L.Contains[B])
        ++Depth[B];

  std::vector<MergedLoop> Loops;
  std::vector<int> LoopAtHeader(N, -1);
  for (const NaturalLoop &L : Natural) {
    int &Slot = LoopAtHeader[static_cast<size_t>(L.Header)];
    if (Slot < 0) {
      Slot = static_cast<int>(Loops.size());
      Loops.push_back({L.Header, {}, std::vector<bool>(N, false), 0});
    }
    MergedLoop &M = Loops[static_cast<size_t>(Slot)];
    M.Latches.push_back(L.Latch);
    for (size_t B = 0; B != N; ++B)
      if (L.Contains[B])
        M.Contains[B] = true;
  }
  for (MergedLoop &M : Loops)
    M.Size = static_cast<size_t>(
        std::count(M.Contains.begin(), M.Contains.end(), true));

  // Innermost containing merged loop per block (fewest blocks wins).
  std::vector<int> Inner(N, -1);
  for (size_t LI = 0; LI != Loops.size(); ++LI)
    for (size_t B = 0; B != N; ++B)
      if (Loops[LI].Contains[B] &&
          (Inner[B] < 0 ||
           Loops[LI].Size < Loops[static_cast<size_t>(Inner[B])].Size))
        Inner[B] = static_cast<int>(LI);

  auto BlockHasStore = [&](int B) {
    for (const Instr &I : F.Blocks[static_cast<size_t>(B)].Instrs)
      if (I.isStore())
        return true;
    return false;
  };
  auto BlockReturns = [&](int B) {
    const auto &Is = F.Blocks[static_cast<size_t>(B)].Instrs;
    return !Is.empty() && Is.back().Op == Opcode::Ret;
  };

  // Stage 1: per-branch probability of slot 0 (the taken side of a Br).
  std::vector<double> EffP0(N, 0.5);
  for (size_t B = 0; B != N; ++B) {
    if (Succ[B].size() != 2)
      continue;
    int S0 = Succ[B][0], S1 = Succ[B][1];
    bool Bk0 = Back[B][0], Bk1 = Back[B][1];
    double P = 0.5;
    auto Predict = [&](int Slot, double Prob) {
      P = combineProb(P, Slot == 0 ? Prob : 1.0 - Prob);
    };
    // Loop-back: the edge that re-enters the loop wins.
    if (Bk0 != Bk1)
      Predict(Bk0 ? 0 : 1, ProbLoopBack);
    // Loop-stay: prefer the successor that stays in the innermost loop.
    if (!Bk0 && !Bk1 && Inner[B] >= 0) {
      const MergedLoop &L = Loops[static_cast<size_t>(Inner[B])];
      if (L.Contains[static_cast<size_t>(S0)] !=
          L.Contains[static_cast<size_t>(S1)])
        Predict(L.Contains[static_cast<size_t>(S0)] ? 0 : 1, ProbLoopStay);
    }
    // Loop-enter: a guard usually admits its loop.
    auto Enters = [&](int Slot, int T) {
      int LI = LoopAtHeader[static_cast<size_t>(T)];
      return !Back[B][static_cast<size_t>(Slot)] && LI >= 0 &&
             !Loops[static_cast<size_t>(LI)].Contains[B];
    };
    bool En0 = Enters(0, S0), En1 = Enters(1, S1);
    if (En0 != En1)
      Predict(En0 ? 0 : 1, ProbLoopEnter);
    // Opcode: equality compares and x < 0 / x <= 0 tests rarely hold.
    {
      const auto &Is = F.Blocks[B].Instrs;
      const Instr &T = Is.back();
      for (size_t I = Is.size() - 1; I-- > 0;) {
        const Instr &D = Is[I];
        if (!D.def().isValid() || D.def() != T.SrcA)
          continue;
        if (D.Op == Opcode::CmpEq || D.Op == Opcode::FCmpEq)
          Predict(0, ProbEqTaken);
        else if ((D.Op == Opcode::CmpLt || D.Op == Opcode::CmpLe) &&
                 D.HasImm && D.Imm <= 0)
          Predict(0, ProbEqTaken);
        break;
      }
    }
    // Store: the side that stores is slightly colder (Ball/Larus SH).
    bool St0 = BlockHasStore(S0), St1 = BlockHasStore(S1);
    if (St0 != St1)
      Predict(St0 ? 0 : 1, ProbStoreSucc);
    // Return: the side that immediately returns is cold.
    bool Rt0 = BlockReturns(S0), Rt1 = BlockReturns(S1);
    if (Rt0 != Rt1)
      Predict(Rt0 ? 0 : 1, ProbRetSucc);
    P = std::clamp(P, ProbClampLo, ProbClampHi);

    // Exact trip counts beat every heuristic. A branch-annotated block with
    // no back edge is the loop's guard: trip >= 1 admits everything into the
    // (deeper) body, trip == 0 admits nothing. An annotated latch re-enters
    // with probability (T-1)/T so the loop body runs exactly T times.
    int64_t Annot = F.Blocks[B].ExactTripCount;
    if (Annot >= 0 && !Bk0 && !Bk1) {
      int BodySlot = Depth[static_cast<size_t>(S1)] >
                             Depth[static_cast<size_t>(S0)]
                         ? 1
                         : 0;
      P = ((BodySlot == 0) == (Annot >= 1)) ? 1.0 : 0.0;
    } else if (Annot >= 0 && Bk0 != Bk1) {
      double T = static_cast<double>(std::max<int64_t>(Annot, 1));
      double PBack = (T - 1.0) / T;
      P = Bk0 ? PBack : 1.0 - PBack;
    }
    EffP0[B] = P;
  }

  // Reverse post-order (same DFS discipline as findBackEdges, so an edge is
  // RPO-retreating exactly when findBackEdges classified it as a back edge
  // in reducible graphs).
  std::vector<int> RPO;
  RPO.reserve(N);
  std::vector<int> RPOIndex(N, -1);
  {
    std::vector<bool> Visited(N, false);
    std::vector<std::pair<int, size_t>> Stack;
    std::vector<int> Post;
    Post.reserve(N);
    Stack.push_back({0, 0});
    Visited[0] = true;
    while (!Stack.empty()) {
      auto &[B, K] = Stack.back();
      if (K == Succ[static_cast<size_t>(B)].size()) {
        Post.push_back(B);
        Stack.pop_back();
        continue;
      }
      int S = Succ[static_cast<size_t>(B)][K++];
      if (!Visited[static_cast<size_t>(S)]) {
        Visited[static_cast<size_t>(S)] = true;
        Stack.push_back({S, 0});
      }
    }
    RPO.assign(Post.rbegin(), Post.rend());
    for (size_t I = 0; I != RPO.size(); ++I)
      RPOIndex[static_cast<size_t>(RPO[I])] = static_cast<int>(I);
  }

  // Immediate dominators (Cooper-Harvey-Kennedy) for the reducibility test:
  // every back edge's header must dominate its latch, and every non-back
  // edge must advance in RPO.
  std::vector<int> Idom(N, -1);
  Idom[0] = 0;
  {
    auto Intersect = [&](int A, int B) {
      while (A != B) {
        while (RPOIndex[static_cast<size_t>(A)] >
               RPOIndex[static_cast<size_t>(B)])
          A = Idom[static_cast<size_t>(A)];
        while (RPOIndex[static_cast<size_t>(B)] >
               RPOIndex[static_cast<size_t>(A)])
          B = Idom[static_cast<size_t>(B)];
      }
      return A;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int B : RPO) {
        if (B == 0)
          continue;
        int New = -1;
        for (int P : Pred[static_cast<size_t>(B)]) {
          if (RPOIndex[static_cast<size_t>(P)] < 0 ||
              Idom[static_cast<size_t>(P)] < 0)
            continue;
          New = New < 0 ? P : Intersect(P, New);
        }
        if (New >= 0 && Idom[static_cast<size_t>(B)] != New) {
          Idom[static_cast<size_t>(B)] = New;
          Changed = true;
        }
      }
    }
  }
  auto Dominates = [&](int A, int B) {
    while (true) {
      if (B == A)
        return true;
      if (B == 0 || Idom[static_cast<size_t>(B)] < 0)
        return false;
      B = Idom[static_cast<size_t>(B)];
    }
  };
  bool Reducible = true;
  for (size_t B = 0; B != N && Reducible; ++B) {
    if (RPOIndex[B] < 0)
      continue;
    for (size_t K = 0; K != Succ[B].size(); ++K) {
      int T = Succ[B][K];
      if (Back[B][K]) {
        if (!Dominates(T, static_cast<int>(B)))
          Reducible = false;
      } else if (RPOIndex[static_cast<size_t>(T)] <=
                 RPOIndex[B]) {
        Reducible = false;
      }
    }
  }

  // Stage 2: per-loop trip factor.
  std::vector<double> Trip(Loops.size(),
                           static_cast<double>(EstimatedTripCount));
  {
    std::vector<double> Rel(N, 0.0);
    for (size_t LI = 0; LI != Loops.size(); ++LI) {
      const MergedLoop &L = Loops[LI];
      int64_t Annot = -1;
      for (int Latch : L.Latches)
        Annot = std::max(Annot,
                         F.Blocks[static_cast<size_t>(Latch)].ExactTripCount);
      if (Annot >= 0) {
        Trip[LI] = static_cast<double>(std::max<int64_t>(Annot, 1));
        continue;
      }
      if (RPOIndex[static_cast<size_t>(L.Header)] < 0)
        continue;
      // Cyclic probability: propagate one relative unit from the header
      // through the loop; inner-loop back edges are redirected to their
      // sibling edge (the inner loop runs, then exits).
      std::fill(Rel.begin(), Rel.end(), 0.0);
      Rel[static_cast<size_t>(L.Header)] = 1.0;
      double Cyc = 0.0;
      for (int B : RPO) {
        if (!L.Contains[static_cast<size_t>(B)] ||
            Rel[static_cast<size_t>(B)] <= 0.0)
          continue;
        double C = Rel[static_cast<size_t>(B)];
        const std::vector<int> &Ss = Succ[static_cast<size_t>(B)];
        if (Ss.empty())
          continue;
        if (Ss.size() == 1) {
          int T = Ss[0];
          if (Back[static_cast<size_t>(B)][0]) {
            if (T == L.Header)
              Cyc += C;
          } else if (L.Contains[static_cast<size_t>(T)]) {
            Rel[static_cast<size_t>(T)] += C;
          }
          continue;
        }
        double Sh0 = EffP0[static_cast<size_t>(B)] * C, Sh1 = C - Sh0;
        if (Back[static_cast<size_t>(B)][0] && Ss[0] != L.Header) {
          Sh1 += Sh0;
          Sh0 = 0.0;
        }
        if (Back[static_cast<size_t>(B)][1] && Ss[1] != L.Header) {
          Sh0 += Sh1;
          Sh1 = 0.0;
        }
        const double Sh[2] = {Sh0, Sh1};
        for (int K = 0; K != 2; ++K) {
          if (Sh[K] <= 0.0)
            continue;
          int T = Ss[static_cast<size_t>(K)];
          if (Back[static_cast<size_t>(B)][static_cast<size_t>(K)]) {
            if (T == L.Header)
              Cyc += Sh[K];
          } else if (L.Contains[static_cast<size_t>(T)]) {
            Rel[static_cast<size_t>(T)] += Sh[K];
          }
        }
      }
      Cyc = std::min(Cyc, ProbClampHi);
      if (Cyc > 0.0)
        Trip[LI] = std::min(1.0 / (1.0 - Cyc), 1e6);
    }
  }

  // Stage 3: exact integer propagation over the reducible loop forest.
  bool Done = false;
  if (Reducible) {
    std::vector<double> Scale(Loops.size(), 1.0);
    std::vector<uint64_t> FwdIn(N), Counts(N);
    std::vector<uint64_t> Remaining(Loops.size()), Planned(Loops.size());
    std::vector<std::array<uint64_t, 2>> Edges(N);
    for (int Round = 0; Round != MaxRounds && !Done; ++Round) {
      std::fill(FwdIn.begin(), FwdIn.end(), 0);
      std::fill(Counts.begin(), Counts.end(), 0);
      std::fill(Remaining.begin(), Remaining.end(), 0);
      std::fill(Planned.begin(), Planned.end(), 0);
      std::fill(Edges.begin(), Edges.end(), std::array<uint64_t, 2>{0, 0});
      FwdIn[0] = EstimateEntryCount;
      bool Over = false;
      for (int B : RPO) {
        uint64_t C = FwdIn[static_cast<size_t>(B)];
        int LI = LoopAtHeader[static_cast<size_t>(B)];
        if (LI >= 0) {
          // Plan the loop's deficit: the latches owe the header
          // (trip - 1) * inflow extra units over the back edges.
          double Want = (Trip[static_cast<size_t>(LI)] - 1.0) *
                        Scale[static_cast<size_t>(LI)] *
                        static_cast<double>(C);
          uint64_t D =
              Want <= 0.0
                  ? 0
                  : static_cast<uint64_t>(std::llround(std::min(Want, FlowCap)));
          Planned[static_cast<size_t>(LI)] = D;
          Remaining[static_cast<size_t>(LI)] = D;
          C += D;
        }
        Counts[static_cast<size_t>(B)] = C;
        const std::vector<int> &Ss = Succ[static_cast<size_t>(B)];
        if (Ss.empty() || C == 0)
          continue;
        if (Ss.size() == 1) {
          Edges[static_cast<size_t>(B)][0] = C;
          int T = Ss[0];
          if (Back[static_cast<size_t>(B)][0]) {
            int HL = LoopAtHeader[static_cast<size_t>(T)];
            if (HL >= 0 && C <= Remaining[static_cast<size_t>(HL)])
              Remaining[static_cast<size_t>(HL)] -= C;
            else
              Over = true;
          } else {
            FwdIn[static_cast<size_t>(T)] += C;
          }
          continue;
        }
        bool Bk0 = Back[static_cast<size_t>(B)][0];
        bool Bk1 = Back[static_cast<size_t>(B)][1];
        if (Bk0 || Bk1) {
          // Latch: deliver the header's outstanding plan, keep the rest on
          // the exit edge.
          int K = Bk0 ? 0 : 1;
          int HL = LoopAtHeader[static_cast<size_t>(Ss[static_cast<size_t>(K)])];
          uint64_t Deliver =
              HL >= 0 ? std::min(C, Remaining[static_cast<size_t>(HL)]) : 0;
          if (HL >= 0)
            Remaining[static_cast<size_t>(HL)] -= Deliver;
          uint64_t Rest = C - Deliver;
          Edges[static_cast<size_t>(B)][static_cast<size_t>(K)] = Deliver;
          Edges[static_cast<size_t>(B)][static_cast<size_t>(1 - K)] = Rest;
          int T = Ss[static_cast<size_t>(1 - K)];
          if (Bk0 && Bk1) {
            int HL2 = LoopAtHeader[static_cast<size_t>(T)];
            if (HL2 >= 0 && Rest <= Remaining[static_cast<size_t>(HL2)])
              Remaining[static_cast<size_t>(HL2)] -= Rest;
            else if (Rest > 0)
              Over = true;
          } else if (Rest > 0) {
            FwdIn[static_cast<size_t>(T)] += Rest;
          }
          continue;
        }
        uint64_t W0 = static_cast<uint64_t>(
            std::llround(EffP0[static_cast<size_t>(B)] * static_cast<double>(C)));
        if (W0 > C)
          W0 = C;
        Edges[static_cast<size_t>(B)][0] = W0;
        Edges[static_cast<size_t>(B)][1] = C - W0;
        if (W0)
          FwdIn[static_cast<size_t>(Ss[0])] += W0;
        if (C - W0)
          FwdIn[static_cast<size_t>(Ss[1])] += C - W0;
      }
      bool Under = false;
      for (uint64_t Rem : Remaining)
        if (Rem != 0)
          Under = true;
      if (!Over && !Under) {
        R.BlockCounts = Counts;
        R.EdgeCounts = Edges;
        Done = true;
      } else if (Over) {
        // A forced edge (e.g. an unconditional latch) pushed more flow than
        // planned; the plan cannot absorb it, so use the exact fallback.
        break;
      } else {
        // Under-delivery: some loop flow escaped before reaching a latch.
        // Shrink the plan by the delivered fraction and retry.
        for (size_t LI = 0; LI != Loops.size(); ++LI)
          if (Remaining[LI] != 0)
            Scale[LI] *= Planned[LI]
                             ? static_cast<double>(Planned[LI] - Remaining[LI]) /
                                   static_cast<double>(Planned[LI])
                             : 0.0;
      }
    }
  }

  // Stage 4: capped iterative fallback. Weighted sweeps carry flow crossing
  // retreating edges into the next round; the final drain walks blocks by
  // decreasing distance-to-Ret so every remaining unit strictly approaches,
  // and is absorbed by, a return block.
  if (!Done) {
    std::vector<uint64_t> InFlow(N, 0), Carry(N, 0);
    Carry[0] = EstimateEntryCount;
    for (int Round = 0; Round != MaxRounds; ++Round) {
      std::swap(InFlow, Carry);
      std::fill(Carry.begin(), Carry.end(), 0);
      bool Any = false;
      for (int B : RPO) {
        uint64_t C = InFlow[static_cast<size_t>(B)];
        if (C == 0)
          continue;
        InFlow[static_cast<size_t>(B)] = 0;
        Any = true;
        R.BlockCounts[static_cast<size_t>(B)] += C;
        const std::vector<int> &Ss = Succ[static_cast<size_t>(B)];
        if (Ss.empty())
          continue;
        uint64_t W[2] = {C, 0};
        if (Ss.size() == 2) {
          W[0] = static_cast<uint64_t>(std::llround(
              EffP0[static_cast<size_t>(B)] * static_cast<double>(C)));
          if (W[0] > C)
            W[0] = C;
          W[1] = C - W[0];
        }
        for (size_t K = 0; K != Ss.size(); ++K) {
          if (!W[K])
            continue;
          int T = Ss[K];
          R.EdgeCounts[static_cast<size_t>(B)][K] += W[K];
          if (RPOIndex[static_cast<size_t>(T)] >
              RPOIndex[static_cast<size_t>(B)])
            InFlow[static_cast<size_t>(T)] += W[K];
          else
            Carry[static_cast<size_t>(T)] += W[K];
        }
      }
      bool Pending = false;
      for (uint64_t C : Carry)
        if (C) {
          Pending = true;
          break;
        }
      if (!Any || !Pending)
        break;
    }
    std::vector<int> Order;
    for (int B : RPO)
      Order.push_back(B);
    std::sort(Order.begin(), Order.end(), [&](int A, int B) {
      if (DistToRet[static_cast<size_t>(A)] != DistToRet[static_cast<size_t>(B)])
        return DistToRet[static_cast<size_t>(A)] >
               DistToRet[static_cast<size_t>(B)];
      return A < B;
    });
    for (int B : Order) {
      uint64_t C = Carry[static_cast<size_t>(B)];
      if (C == 0)
        continue;
      Carry[static_cast<size_t>(B)] = 0;
      R.BlockCounts[static_cast<size_t>(B)] += C;
      const std::vector<int> &Ss = Succ[static_cast<size_t>(B)];
      if (Ss.empty())
        continue;
      size_t BestK = 0;
      if (Ss.size() == 2 && DistToRet[static_cast<size_t>(Ss[1])] <
                                DistToRet[static_cast<size_t>(Ss[0])])
        BestK = 1;
      R.EdgeCounts[static_cast<size_t>(B)][BestK] += C;
      Carry[static_cast<size_t>(Ss[BestK])] += C;
    }
  }
  return R;
}
