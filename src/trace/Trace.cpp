//===- trace/Trace.cpp - Profile-guided trace scheduling -------------------===//
//
// The optimized trace-scheduling core (TraceImpl::Fast). Three things
// distinguish it from the seed implementation preserved in
// TraceReference.cpp:
//
//  - dense indices everywhere: trace formation walks a flat successor table
//    and a predecessor CSR instead of materializing successor/predecessor
//    vectors per step, and the scheduler maintains per-block predecessor
//    lists incrementally across compensation edits instead of rescanning
//    the whole function per join;
//  - the cross-block dependence DAG is extended incrementally as each block
//    joins the trace (sched::DepDAGBuilder), the region is a vector of
//    pointers into the trace blocks rather than a copied instruction
//    vector, and the scheduled segments are MOVED into place (every segment
//    is staged before any block is assigned, so later segments still read
//    live source buffers; compensation then copies the installed
//    instructions back out through the position mapping);
//  - transient position/home/segment arrays live in a bump-pointer arena
//    (support/Arena.h) that is rewound per trace, and every vector scratch
//    is recycled across traces.
//
// Output is byte-identical to the reference twin — same traces, same
// schedules, same compensation blocks in the same order. The golden-schedule
// tests, trace_equivalence_test, and the fuzz oracle's trace twin check
// assert this; the comments below flag every spot where the equivalence is
// non-obvious (tie-break order, duplicate predecessor entries, move-install
// lifetimes).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "ir/CFG.h"
#include "ir/Liveness.h"
#include "sched/DepDAG.h"
#include "support/Arena.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace bsched;
using namespace bsched::trace;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

/// Per-edge execution counts keyed by (from, successor slot).
uint64_t edgeCount(const InterpResult &Profile, int From, size_t Slot) {
  if (static_cast<size_t>(From) >= Profile.EdgeCounts.size() || Slot >= 2)
    return 0;
  return Profile.EdgeCounts[From][Slot];
}

uint64_t nsSince(std::chrono::steady_clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace formation
//===----------------------------------------------------------------------===//

std::vector<Trace> trace::formTraces(const Function &F,
                                     const InterpResult &Profile) {
  size_t N = F.Blocks.size();
  std::vector<std::vector<bool>> Back = findBackEdges(F);

  // Flat successor table in the terminator's (taken, fallthrough) slot
  // order, replacing the per-step successors() vector materialization.
  std::vector<int> Succ(2 * N, -1);
  std::vector<uint8_t> NumSucc(N, 0);
  for (size_t B = 0; B != N; ++B) {
    const Instr &T = F.Blocks[B].terminator();
    if (T.Op == Opcode::Br) {
      Succ[2 * B] = T.Target0;
      Succ[2 * B + 1] = T.Target1;
      NumSucc[B] = 2;
    } else if (T.Op == Opcode::Jmp) {
      Succ[2 * B] = T.Target0;
      NumSucc[B] = 1;
    }
  }

  // Traces stay within one loop level: growth never crosses an edge that
  // leaves a loop (out of a latch) or enters one (into a header). Beyond
  // matching the Multiflow restriction that traces do not cross loop
  // boundaries, this guarantees that no interior trace block receives a
  // back edge, so every segment of a scheduled trace executes at most once
  // per trace entry (the compensation-code invariant).
  std::vector<bool> IsHeader(N, false), IsLatch(N, false);
  for (size_t B = 0; B != N; ++B)
    for (unsigned K = 0; K != NumSucc[B]; ++K)
      if (Back[B][K]) {
        IsLatch[B] = true;
        IsHeader[Succ[2 * B + K]] = true;
      }

  // Predecessor CSR enumerating in-edges in (block id, successor slot)
  // order — exactly Function::predecessors' iteration order, one entry per
  // parallel edge. Backward growth below therefore performs the identical
  // sequence of strictly-greater comparisons as the seed's rescan (a
  // duplicated predecessor contributes no update on its repeat visits).
  std::vector<unsigned> PredStart(N + 1, 0);
  for (size_t B = 0; B != N; ++B)
    for (unsigned K = 0; K != NumSucc[B]; ++K)
      ++PredStart[static_cast<size_t>(Succ[2 * B + K]) + 1];
  for (size_t B = 0; B != N; ++B)
    PredStart[B + 1] += PredStart[B];
  std::vector<int> PredBlock(PredStart[N]);
  std::vector<uint8_t> PredSlot(PredStart[N]);
  {
    std::vector<unsigned> Fill(PredStart.begin(), PredStart.end() - 1);
    for (size_t B = 0; B != N; ++B)
      for (unsigned K = 0; K != NumSucc[B]; ++K) {
        unsigned &At = Fill[static_cast<size_t>(Succ[2 * B + K])];
        PredBlock[At] = static_cast<int>(B);
        PredSlot[At] = static_cast<uint8_t>(K);
        ++At;
      }
  }

  std::vector<int> Seeds(N);
  for (size_t B = 0; B != N; ++B)
    Seeds[B] = static_cast<int>(B);
  std::stable_sort(Seeds.begin(), Seeds.end(), [&](int A, int B) {
    uint64_t CA = static_cast<size_t>(A) < Profile.BlockCounts.size()
                      ? Profile.BlockCounts[A]
                      : 0;
    uint64_t CB = static_cast<size_t>(B) < Profile.BlockCounts.size()
                      ? Profile.BlockCounts[B]
                      : 0;
    return CA > CB;
  });

  std::vector<bool> Taken(N, false);
  std::vector<Trace> Traces;
  std::vector<int> Prefix;

  for (int Seed : Seeds) {
    if (Taken[Seed])
      continue;
    Trace T{Seed};
    Taken[Seed] = true;

    // Grow forward along the hottest non-back edge into fresh blocks.
    int B = Seed;
    while (!IsLatch[B]) {
      int Best = -1;
      uint64_t BestCount = 0;
      for (unsigned K = 0; K != NumSucc[B]; ++K) {
        int S = Succ[2 * static_cast<size_t>(B) + K];
        if (Back[B][K] || Taken[S] || IsHeader[S])
          continue;
        uint64_t C = edgeCount(Profile, B, K);
        if (C > BestCount) {
          BestCount = C;
          Best = S;
        }
      }
      if (Best < 0)
        break;
      T.push_back(Best);
      Taken[Best] = true;
      B = Best;
    }

    // Grow backward along the hottest incoming non-back edge; the prefix is
    // collected outward and reversed into place (equivalent to the seed's
    // repeated front insertion).
    Prefix.clear();
    B = Seed;
    while (!IsHeader[B]) {
      int Best = -1;
      uint64_t BestCount = 0;
      for (unsigned E = PredStart[B]; E != PredStart[B + 1]; ++E) {
        int P = PredBlock[E];
        if (Taken[P] || IsLatch[P] || Back[P][PredSlot[E]])
          continue;
        uint64_t C = edgeCount(Profile, P, PredSlot[E]);
        if (C > BestCount) {
          BestCount = C;
          Best = P;
        }
      }
      if (Best < 0)
        break;
      Prefix.push_back(Best);
      Taken[Best] = true;
      B = Best;
    }
    if (!Prefix.empty()) {
      std::reverse(Prefix.begin(), Prefix.end());
      T.insert(T.begin(), Prefix.begin(), Prefix.end());
    }

    Traces.push_back(std::move(T));
  }
  return Traces;
}

//===----------------------------------------------------------------------===//
// Trace scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Region scratch recycled across *compiles*, not just across the traces of
/// one compile: the batched compile service (driver::runAll) has each pool
/// worker drain a whole chunk of jobs, and routing every compile on a
/// thread through one scratch instance means the arena chunks, DAG storage
/// and staging vectors reach steady state once per worker instead of being
/// reallocated per compile. Every member is (re)initialized at its use site
/// — beginRegion, assign, clear, reset — so reuse never leaks state from a
/// previous compile; the trace-twin equivalence tests and golden schedule
/// hashes pin that.
struct TraceScratch {
  DepDAGBuilder Builder;
  BalancedWeightsBuilder WB;
  Arena A;
  std::vector<const Instr *> Ptrs;
  std::vector<std::vector<Instr>> Segs;
  std::vector<unsigned> Crossed;
  std::vector<int> OffPreds;
  std::vector<std::vector<int>> PredList;
};

class TraceScheduler {
public:
  TraceScheduler(Module &M, const InterpResult &Profile, SchedulerKind Kind,
                 BalanceOptions Opts, TraceScratch &S)
      : M(M), Profile(Profile), Kind(Kind), Opts(Opts), Builder(S.Builder),
        WB(S.WB), A(S.A), Ptrs(S.Ptrs), Segs(S.Segs), Crossed(S.Crossed),
        OffPreds(S.OffPreds), PredList(S.PredList) {}

  TraceStats run() {
    Liveness L = computeLiveness(M.Fn);
    auto T0 = std::chrono::steady_clock::now();
    std::vector<Trace> Traces = formTraces(M.Fn, Profile);
    buildPredLists();
    Stats.FormNs = nsSince(T0);
    Stats.Traces = static_cast<int>(Traces.size());
    Stats.Formed = Traces;
    for (const Trace &T : Traces) {
      Stats.LongestTrace =
          std::max(Stats.LongestTrace, static_cast<int>(T.size()));
      if (T.size() >= 2) {
        ++Stats.MultiBlockTraces;
        scheduleTrace(T, L);
      } else {
        scheduleSingleBlock(T[0]);
      }
    }
    return Stats;
  }

private:
  Module &M;
  const InterpResult &Profile;
  SchedulerKind Kind;
  BalanceOptions Opts;
  TraceStats Stats;

  /// Region state recycled across traces, single blocks, and (via the
  /// thread-local TraceScratch) whole batches of compiles.
  DepDAGBuilder &Builder;
  BalancedWeightsBuilder &WB;
  Arena &A;
  std::vector<const Instr *> &Ptrs;
  std::vector<std::vector<Instr>> &Segs;
  std::vector<unsigned> &Crossed;
  std::vector<int> &OffPreds;

  /// Per-block predecessor ids, one entry per in-edge, in (block id,
  /// successor slot) order — the exact contents Function::predecessors
  /// would return, maintained incrementally as compensation retargets
  /// edges (instead of an O(blocks) rescan per join).
  std::vector<std::vector<int>> &PredList;

  /// Balanced weights for the current region in Ptrs via the recycled
  /// incremental builder (one extension step per entry of \p Boundaries, or
  /// a single whole-region step when none are given). Routes to the
  /// reference algorithm when the scheduler twin is selected, and charges
  /// the time to the WeightsNs phase timer either way.
  std::vector<double>
  builderBalancedWeights(const DepDAG &G,
                         const unsigned *Boundaries = nullptr, // terminator ids
                         size_t NumBoundaries = 0) {
    auto T0 = std::chrono::steady_clock::now();
    std::vector<double> W;
    if (Opts.Impl == SchedImpl::Reference) {
      W = balancedWeights(G, Ptrs, Opts);
    } else {
      WB.begin(Opts);
      for (size_t I = 0; I != NumBoundaries; ++I)
        WB.extend(G, Ptrs, Boundaries[I] + 1); // cover through this term
      WB.extend(G, Ptrs);
      W = WB.weights(Ptrs);
    }
    Stats.WeightsNs += nsSince(T0);
    return W;
  }

  void buildPredLists() {
    const Function &F = M.Fn;
    PredList.assign(F.Blocks.size(), {});
    for (const BasicBlock &B : F.Blocks)
      for (int S : B.successors())
        PredList[S].push_back(B.Id);
  }

  void scheduleSingleBlock(int B) {
    BasicBlock &BB = M.Fn.Blocks[B];
    if (BB.Instrs.size() <= 2)
      return;
    auto T0 = std::chrono::steady_clock::now();
    // sched::scheduleRegion with the recycled incremental builder; the
    // install moves instructions instead of copying them (the source
    // vector stays alive until the final assignment).
    Ptrs.clear();
    Ptrs.reserve(BB.Instrs.size());
    Builder.beginRegion(static_cast<unsigned>(BB.Instrs.size()));
    for (const Instr &I : BB.Instrs) {
      Ptrs.push_back(&I);
      Builder.append(&I);
    }
    DepDAG &G = Builder.finalize();
    addBlockControlEdges(G, Ptrs);
    SchedulerKind RegionKind = effectiveKind(Kind, Ptrs, Opts);
    std::vector<double> W = RegionKind == SchedulerKind::Balanced
                                ? builderBalancedWeights(G)
                                : traditionalWeights(Ptrs);
    std::vector<unsigned> Order = listSchedule(G, W, Ptrs,
                                               Opts.PressureThreshold,
                                               Opts.Impl);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size());
    for (unsigned I : Order)
      NewInstrs.push_back(std::move(BB.Instrs[I]));
    BB.Instrs = std::move(NewInstrs);
    Stats.CompactNs += nsSince(T0);
  }

  void scheduleTrace(const Trace &T, const Liveness &L) {
    auto T0 = std::chrono::steady_clock::now();
    Function &F = M.Fn;
    size_t K = T.size();
    A.reset();

    size_t Total = 0;
    for (int B : T)
      Total += F.Blocks[B].Instrs.size();

    // Region = concatenated instruction pointers into the trace blocks (no
    // copies); the cross-block DAG is extended incrementally as each block
    // joins the region. Home positions and terminator node ids live in the
    // per-trace arena.
    int *Home = A.alloc<int>(Total);
    unsigned *TermNode = A.alloc<unsigned>(K);
    Ptrs.clear();
    Ptrs.reserve(Total);
    Builder.beginRegion(static_cast<unsigned>(Total));
    for (size_t Pos = 0; Pos != K; ++Pos) {
      for (const Instr &I : F.Blocks[T[Pos]].Instrs) {
        Home[Ptrs.size()] = static_cast<int>(Pos);
        Ptrs.push_back(&I);
        Builder.append(&I);
      }
      TermNode[Pos] = static_cast<unsigned>(Ptrs.size()) - 1;
    }
    DepDAG &G = Builder.finalize();

    // Control constraints.
    // (a) Branches keep their relative order.
    for (size_t Pos = 1; Pos != K; ++Pos)
      G.addEdge(TermNode[Pos - 1], TermNode[Pos]);
    // (b) No downward motion past the home block's terminator.
    for (unsigned I = 0; I != Total; ++I)
      G.addEdge(I, TermNode[static_cast<size_t>(Home[I])]);
    // (c) Upward motion above a split is speculative: only safe
    //     instructions may cross, and only when the instruction's home
    //     block is not colder than the split (hoisting rarely-executed code
    //     onto a frequent path inflates the dynamic instruction count — the
    //     paper's DYFESM pathology).
    auto FreqOf = [&](size_t Pos) -> uint64_t {
      int B = T[Pos];
      return static_cast<size_t>(B) < Profile.BlockCounts.size()
                 ? Profile.BlockCounts[B]
                 : 0;
    };
    for (size_t Split = 0; Split + 1 != K; ++Split) {
      int OffTrace = offTraceSuccessor(T, Split);
      if (OffTrace < 0)
        continue; // Unconditional jump to the next trace block: no split.
      uint64_t SplitFreq = FreqOf(Split);
      for (unsigned I = 0; I != Total; ++I) {
        if (Home[I] <= static_cast<int>(Split) || Ptrs[I]->isTerminator())
          continue;
        if (FreqOf(static_cast<size_t>(Home[I])) >= SplitFreq &&
            isSpeculationSafe(*Ptrs[I], OffTrace, L))
          continue;
        G.addEdge(TermNode[Split], I);
      }
    }

    // (d) Upward motion above a join is only worthwhile when the on-trace
    //     flow dominates the off-trace entries; otherwise the compensation
    //     copies on the entering edges would execute about as often as the
    //     hoisted originals, inflating the dynamic instruction count for
    //     nothing. Pin the join in that case.
    for (size_t Mm = 1; Mm != K; ++Mm) {
      uint64_t OnFlow = edgeFlow(T[Mm - 1], T[Mm]);
      uint64_t OffFlow = 0;
      for (int P : PredList[T[Mm]])
        if (P != T[Mm - 1])
          OffFlow += edgeFlow(P, T[Mm]);
      if (OffFlow == 0 || 2 * OffFlow < OnFlow)
        continue; // joins with negligible off-trace flow stay free
      for (unsigned I = 0; I != Total; ++I)
        if (Home[I] >= static_cast<int>(Mm))
          G.addEdge(TermNode[Mm - 1], I);
    }

    // Weights + list scheduling over the whole trace ("as though the trace
    // were a single basic block"). Balanced weights extend block by block:
    // each constituent block is one incremental step of the builder, so the
    // reachability rows of an already-covered prefix are reused rather than
    // reswept (the weights come out bit-identical to a one-shot pass).
    SchedulerKind RegionKind = effectiveKind(Kind, Ptrs, Opts);
    std::vector<double> W = RegionKind == SchedulerKind::Balanced
                                ? builderBalancedWeights(G, TermNode, K - 1)
                                : traditionalWeights(Ptrs);
    std::vector<unsigned> Order = listSchedule(G, W, Ptrs,
                                               Opts.PressureThreshold,
                                               Opts.Impl);

    // --- Reconstruction --------------------------------------------------
    // Cut the schedule at the terminators; segment Pos replaces trace block
    // T[Pos], so every external edge keeps its target. Order doubles as the
    // segment concatenation: SegOff[Pos] is segment Pos's start position.
    size_t *SegOff = A.alloc<size_t>(K + 1);
    size_t *PosOf = A.alloc<size_t>(Total);
    int *SegOfNode = A.alloc<int>(Total);
    {
      size_t Seg = 0;
      SegOff[0] = 0;
      for (size_t P = 0; P != Order.size(); ++P) {
        unsigned Node = Order[P];
        assert(Seg < K && "instructions scheduled after the last terminator");
        PosOf[Node] = P;
        SegOfNode[Node] = static_cast<int>(Seg);
        if (Ptrs[Node]->isTerminator()) {
          ++Seg;
          SegOff[Seg] = P + 1;
        }
      }
      assert(Seg == K && "terminator count mismatch");
    }

    // Install by moving: stage EVERY segment before assigning ANY block, so
    // later segments still read live source buffers (the assignment below
    // frees them). Swapping (rather than moving) the staged vectors in
    // recycles both allocations across traces.
    if (Segs.size() < K)
      Segs.resize(K);
    for (size_t Pos = 0; Pos != K; ++Pos) {
      std::vector<Instr> &S = Segs[Pos];
      S.clear();
      S.reserve(SegOff[Pos + 1] - SegOff[Pos]);
      for (size_t P = SegOff[Pos]; P != SegOff[Pos + 1]; ++P)
        S.push_back(std::move(const_cast<Instr &>(*Ptrs[Order[P]])));
    }
    for (size_t Pos = 0; Pos != K; ++Pos)
      std::swap(F.Blocks[T[Pos]].Instrs, Segs[Pos]);
    Stats.CompactNs += nsSince(T0);

    // Compensation: for each join (off-trace edge entering T[m], m > 0),
    // copy every instruction whose home is below the join but which was
    // scheduled above it (i.e. before term_{m-1}). The originals were moved
    // into their scheduled slots above; node I now lives in segment
    // SegOfNode[I] at offset PosOf[I] - SegOff[SegOfNode[I]], and installed
    // non-terminators are never modified afterwards (retargeting only
    // touches terminators), so copying the installed instruction is
    // copying the original.
    auto T1 = std::chrono::steady_clock::now();
    for (size_t Mm = 1; Mm != K; ++Mm) {
      OffPreds.clear();
      for (int P : PredList[T[Mm]])
        if (P != T[Mm - 1])
          OffPreds.push_back(P);
      if (OffPreds.empty())
        continue;
      Crossed.clear();
      for (unsigned I = 0; I != Total; ++I)
        if (Home[I] >= static_cast<int>(Mm) &&
            PosOf[I] < PosOf[TermNode[Mm - 1]])
          Crossed.push_back(I); // Already in original order by construction.
      if (Crossed.empty())
        continue;

      int Comp = F.makeBlock();
      assert(static_cast<size_t>(Comp) == PredList.size() &&
             "predecessor lists out of step with block creation");
      PredList.emplace_back();
      ++Stats.CompensationBlocks;
      F.Blocks[Comp].Instrs.reserve(Crossed.size() + 1);
      for (unsigned I : Crossed) {
        size_t S = static_cast<size_t>(SegOfNode[I]);
        F.Blocks[Comp].Instrs.push_back(
            F.Blocks[T[S]].Instrs[PosOf[I] - SegOff[S]]);
        ++Stats.CompensationInstrs;
      }
      Instr Jmp;
      Jmp.Op = Opcode::Jmp;
      Jmp.Target0 = T[Mm];
      F.Blocks[Comp].Instrs.push_back(Jmp);

      for (int P : OffPreds) {
        Instr &Term = F.Blocks[P].terminator();
        if (Term.Target0 == T[Mm])
          Term.Target0 = Comp;
        if (Term.Op == Opcode::Br && Term.Target1 == T[Mm])
          Term.Target1 = Comp;
      }

      // Incremental predecessor maintenance: the off-trace in-edges of
      // T[Mm] now enter Comp (same relative order), and Comp's jump enters
      // T[Mm]. Comp's id is the global maximum, so appending it keeps the
      // list in Function::predecessors' (id, slot) order.
      std::vector<int> &JoinPreds = PredList[T[Mm]];
      std::vector<int> &CompPreds = PredList[static_cast<size_t>(Comp)];
      size_t Keep = 0;
      for (size_t E = 0; E != JoinPreds.size(); ++E) {
        if (JoinPreds[E] == T[Mm - 1])
          JoinPreds[Keep++] = JoinPreds[E];
        else
          CompPreds.push_back(JoinPreds[E]);
      }
      JoinPreds.resize(Keep);
      JoinPreds.push_back(Comp);
    }
    Stats.CompensationNs += nsSince(T1);
  }

  /// Profile count of the CFG edge From -> To (summing parallel edges).
  uint64_t edgeFlow(int From, int To) const {
    if (static_cast<size_t>(From) >= Profile.EdgeCounts.size())
      return 0;
    const Instr &Term = M.Fn.Blocks[From].terminator();
    uint64_t Flow = 0;
    if (Term.Target0 == To)
      Flow += Profile.EdgeCounts[From][0];
    if (Term.Op == Opcode::Br && Term.Target1 == To)
      Flow += Profile.EdgeCounts[From][1];
    return Flow;
  }

  /// The successor of trace block \p Split that leaves the trace, or -1.
  int offTraceSuccessor(const Trace &T, size_t Split) {
    const Instr &Term = M.Fn.Blocks[T[Split]].terminator();
    if (Term.Op != Opcode::Br)
      return -1;
    int OnTrace = T[Split + 1];
    if (Term.Target0 != OnTrace)
      return Term.Target0;
    if (Term.Target1 != OnTrace)
      return Term.Target1;
    return -1; // Both arms stay on trace.
  }

  /// Safe to execute \p I when the branch to \p OffTraceBlock is taken:
  /// not a store, and the written register is dead on that path. Loads are
  /// treated as non-faulting when speculated.
  bool isSpeculationSafe(const Instr &I, int OffTraceBlock,
                         const Liveness &L) {
    if (I.isStore())
      return false;
    Reg D = I.def();
    if (D.isValid() && L.isLiveIn(OffTraceBlock, D))
      return false;
    // Conditional moves read their old destination; hoisting one above a
    // split re-reads state but writes only D, covered above.
    return true;
  }
};

} // namespace

TraceStats trace::traceScheduleFunction(Module &M, const InterpResult &Profile,
                                        SchedulerKind Kind,
                                        BalanceOptions Opts, TraceImpl Impl) {
  if (Impl == TraceImpl::Reference)
    return reference::traceScheduleFunction(M, Profile, Kind, Opts);
  // One scratch per thread: a pool worker compiling a batch of jobs reuses
  // the same arena chunks and vector capacities for every compile it runs.
  static thread_local TraceScratch Scratch;
  return TraceScheduler(M, Profile, Kind, Opts, Scratch).run();
}
