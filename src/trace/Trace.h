//===- trace/Trace.h - Profile-guided trace scheduling ----------*- C++ -*-===//
///
/// \file
/// Trace scheduling (section 3.2, after Fisher / the Multiflow compiler):
/// guided by profiled basic-block and edge frequencies, group the hottest
/// acyclic paths into traces and schedule each trace as if it were one basic
/// block, with the code-motion rules the paper describes:
///
///  - traces never cross loop back edges;
///  - branches keep their relative order;
///  - upward motion past a split (a conditional branch whose other arm
///    leaves the trace) is speculative and restricted to safe instructions:
///    never a store, and never an instruction whose destination is live into
///    the off-trace path ("speculative motion is restricted to safe
///    operations only"); speculative loads are permitted (non-faulting
///    loads, with the destination-liveness restriction);
///  - upward motion past a join (an off-trace edge entering the trace) is
///    repaired with compensation code: a copy of every crossed instruction,
///    in original order, on each entering edge;
///  - downward motion past a split is not performed (each instruction stays
///    above its home block's terminator), the common restriction that avoids
///    split compensation.
///
/// Blocks not covered by a multi-block trace are list-scheduled normally, so
/// this pass subsumes sched::scheduleFunction.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_TRACE_TRACE_H
#define BALSCHED_TRACE_TRACE_H

#include "ir/IR.h"
#include "ir/Interp.h"
#include "sched/Schedule.h"

#include <vector>

namespace bsched {
namespace trace {

/// Selects between the optimized trace-scheduling core (the default) and the
/// original seed implementation preserved in TraceReference.cpp. The two
/// produce byte-identical output — same traces, same schedules, same
/// compensation blocks in the same order — asserted by the golden-schedule
/// tests, trace_equivalence_test, and the fuzz oracle's trace twin check.
/// The reference exists as a correctness oracle and as the baseline that
/// bench_compile_throughput measures the trace overhaul against.
enum class TraceImpl : uint8_t { Fast, Reference };

/// Formed traces (block ids in control-flow order); exposed for tests and
/// the Figure-2 example.
using Trace = std::vector<int>;

struct TraceStats {
  int Traces = 0;
  int MultiBlockTraces = 0;
  int LongestTrace = 0;       ///< in blocks.
  int CompensationBlocks = 0;
  int CompensationInstrs = 0;
  /// Phase timers, nanoseconds (fast core only; the reference twin leaves
  /// them zero): trace formation, trace compaction (DAG build + weights +
  /// list scheduling + install, including the leftover single blocks), and
  /// compensation bookkeeping. WeightsNs is the balanced-weight share of
  /// CompactNs — the incremental builder's cost, reported separately so the
  /// bench can track it.
  uint64_t FormNs = 0;
  uint64_t CompactNs = 0;
  uint64_t WeightsNs = 0;
  uint64_t CompensationNs = 0;
  /// The traces actually formed, in scheduling order: the certificate the
  /// static verifier audits compensation code against.
  std::vector<Trace> Formed;
};

/// Picks traces from profiled block/edge counts: seeds in decreasing
/// execution frequency, grown forward and backward along the most frequent
/// edges, never crossing back edges or entering another trace.
std::vector<Trace> formTraces(const ir::Function &F,
                              const ir::InterpResult &Profile);

/// Trace-schedules every trace of \p M (profile from ir::interpret on the
/// same module), inserting compensation blocks as needed, then list-schedules
/// the remaining single blocks. Uses the given scheduler for instruction
/// weights; \p Impl selects the seed implementation instead (identical
/// output, see TraceImpl).
TraceStats traceScheduleFunction(ir::Module &M,
                                 const ir::InterpResult &Profile,
                                 sched::SchedulerKind Kind,
                                 sched::BalanceOptions Opts = {},
                                 TraceImpl Impl = TraceImpl::Fast);

namespace reference {

/// The seed trace-formation and trace-scheduling implementation, preserved
/// verbatim (TraceReference.cpp) behind TraceImpl::Reference.
std::vector<Trace> formTraces(const ir::Function &F,
                              const ir::InterpResult &Profile);
TraceStats traceScheduleFunction(ir::Module &M,
                                 const ir::InterpResult &Profile,
                                 sched::SchedulerKind Kind,
                                 sched::BalanceOptions Opts);

} // namespace reference

} // namespace trace
} // namespace bsched

#endif // BALSCHED_TRACE_TRACE_H
