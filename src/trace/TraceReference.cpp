//===- trace/TraceReference.cpp - Seed trace scheduler (reference twin) ----===//
//
// The original (seed) trace-formation and trace-scheduling implementation,
// preserved verbatim behind trace::TraceImpl::Reference. The optimized core
// in Trace.cpp produces byte-identical output (same traces, same schedules,
// same compensation blocks in the same order); the golden-schedule tests,
// trace_equivalence_test, and the fuzz oracle's trace twin check assert
// this. It also serves as the baseline that bench_compile_throughput
// measures the trace-scheduling overhaul against.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "ir/CFG.h"
#include "ir/Liveness.h"
#include "sched/DepDAG.h"

#include <algorithm>
#include <cassert>

using namespace bsched;
using namespace bsched::trace;
using namespace bsched::ir;
using namespace bsched::sched;

//===----------------------------------------------------------------------===//
// Back-edge detection
//===----------------------------------------------------------------------===//

namespace {

/// Per-edge execution counts keyed by (from, successor slot).
uint64_t edgeCount(const InterpResult &Profile, int From, size_t Slot) {
  if (static_cast<size_t>(From) >= Profile.EdgeCounts.size() || Slot >= 2)
    return 0;
  return Profile.EdgeCounts[From][Slot];
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace formation
//===----------------------------------------------------------------------===//

std::vector<Trace> trace::reference::formTraces(const Function &F,
                                                const InterpResult &Profile) {
  size_t N = F.Blocks.size();
  std::vector<std::vector<bool>> Back = findBackEdges(F);

  // Traces stay within one loop level: growth never crosses an edge that
  // leaves a loop (out of a latch) or enters one (into a header). Beyond
  // matching the Multiflow restriction that traces do not cross loop
  // boundaries, this guarantees that no interior trace block receives a
  // back edge, so every segment of a scheduled trace executes at most once
  // per trace entry (the compensation-code invariant).
  std::vector<bool> IsHeader(N, false), IsLatch(N, false);
  for (size_t B = 0; B != N; ++B) {
    std::vector<int> Succs = F.Blocks[B].successors();
    for (size_t K = 0; K != Succs.size(); ++K)
      if (Back[B][K]) {
        IsLatch[B] = true;
        IsHeader[Succs[K]] = true;
      }
  }

  std::vector<int> Seeds(N);
  for (size_t B = 0; B != N; ++B)
    Seeds[B] = static_cast<int>(B);
  std::stable_sort(Seeds.begin(), Seeds.end(), [&](int A, int B) {
    uint64_t CA = static_cast<size_t>(A) < Profile.BlockCounts.size()
                      ? Profile.BlockCounts[A]
                      : 0;
    uint64_t CB = static_cast<size_t>(B) < Profile.BlockCounts.size()
                      ? Profile.BlockCounts[B]
                      : 0;
    return CA > CB;
  });

  std::vector<bool> Taken(N, false);
  std::vector<Trace> Traces;

  for (int Seed : Seeds) {
    if (Taken[Seed])
      continue;
    Trace T{Seed};
    Taken[Seed] = true;

    // Grow forward along the hottest non-back edge into fresh blocks.
    int B = Seed;
    while (!IsLatch[B]) {
      std::vector<int> Succs = F.Blocks[B].successors();
      int Best = -1;
      uint64_t BestCount = 0;
      for (size_t K = 0; K != Succs.size(); ++K) {
        if (Back[B][K] || Taken[Succs[K]] || IsHeader[Succs[K]])
          continue;
        uint64_t C = edgeCount(Profile, B, K);
        if (C > BestCount) {
          BestCount = C;
          Best = Succs[K];
        }
      }
      if (Best < 0)
        break;
      T.push_back(Best);
      Taken[Best] = true;
      B = Best;
    }

    // Grow backward along the hottest incoming non-back edge.
    B = Seed;
    while (!IsHeader[B]) {
      int Best = -1;
      uint64_t BestCount = 0;
      for (int P : F.predecessors(B)) {
        if (Taken[P] || IsLatch[P])
          continue;
        std::vector<int> Succs = F.Blocks[P].successors();
        for (size_t K = 0; K != Succs.size(); ++K) {
          if (Succs[K] != B || Back[P][K])
            continue;
          uint64_t C = edgeCount(Profile, P, K);
          if (C > BestCount) {
            BestCount = C;
            Best = P;
          }
        }
      }
      if (Best < 0)
        break;
      T.insert(T.begin(), Best);
      Taken[Best] = true;
      B = Best;
    }

    Traces.push_back(std::move(T));
  }
  return Traces;
}

//===----------------------------------------------------------------------===//
// Trace scheduling
//===----------------------------------------------------------------------===//

namespace {

class TraceScheduler {
public:
  TraceScheduler(Module &M, const InterpResult &Profile, SchedulerKind Kind,
                 BalanceOptions Opts)
      : M(M), Profile(Profile), Kind(Kind), Opts(Opts) {}

  TraceStats run() {
    Liveness L = computeLiveness(M.Fn);
    std::vector<Trace> Traces = trace::reference::formTraces(M.Fn, Profile);
    Stats.Traces = static_cast<int>(Traces.size());
    Stats.Formed = Traces;
    for (const Trace &T : Traces) {
      Stats.LongestTrace =
          std::max(Stats.LongestTrace, static_cast<int>(T.size()));
      if (T.size() >= 2) {
        ++Stats.MultiBlockTraces;
        scheduleTrace(T, L);
      } else {
        scheduleSingleBlock(T[0]);
      }
    }
    return Stats;
  }

private:
  Module &M;
  const InterpResult &Profile;
  SchedulerKind Kind;
  BalanceOptions Opts;
  TraceStats Stats;

  void scheduleSingleBlock(int B) {
    BasicBlock &BB = M.Fn.Blocks[B];
    if (BB.Instrs.size() <= 2)
      return;
    std::vector<const Instr *> Ptrs;
    for (const Instr &I : BB.Instrs)
      Ptrs.push_back(&I);
    std::vector<unsigned> Order = scheduleRegion(Ptrs, Kind, Opts);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size());
    for (unsigned I : Order)
      NewInstrs.push_back(BB.Instrs[I]);
    BB.Instrs = std::move(NewInstrs);
  }

  void scheduleTrace(const Trace &T, const Liveness &L) {
    Function &F = M.Fn;
    size_t K = T.size();

    // Region = concatenated instructions; remember each one's home position
    // in the trace and the terminator node ids.
    std::vector<Instr> Region;
    std::vector<int> Home;
    std::vector<unsigned> TermNode(K);
    for (size_t Pos = 0; Pos != K; ++Pos) {
      const BasicBlock &B = F.Blocks[T[Pos]];
      for (const Instr &I : B.Instrs) {
        Region.push_back(I);
        Home.push_back(static_cast<int>(Pos));
      }
      TermNode[Pos] = static_cast<unsigned>(Region.size()) - 1;
    }

    std::vector<const Instr *> Ptrs;
    Ptrs.reserve(Region.size());
    for (const Instr &I : Region)
      Ptrs.push_back(&I);

    DepDAG G = buildDepDAG(Ptrs, Opts.Impl);

    // Control constraints.
    // (a) Branches keep their relative order.
    for (size_t Pos = 1; Pos != K; ++Pos)
      G.addEdge(TermNode[Pos - 1], TermNode[Pos]);
    // (b) No downward motion past the home block's terminator.
    for (unsigned I = 0; I != Region.size(); ++I)
      G.addEdge(I, TermNode[static_cast<size_t>(Home[I])]);
    // (c) Upward motion above a split is speculative: only safe
    //     instructions may cross, and only when the instruction's home
    //     block is not colder than the split (hoisting rarely-executed code
    //     onto a frequent path inflates the dynamic instruction count — the
    //     paper's DYFESM pathology).
    auto FreqOf = [&](size_t Pos) -> uint64_t {
      int B = T[Pos];
      return static_cast<size_t>(B) < Profile.BlockCounts.size()
                 ? Profile.BlockCounts[B]
                 : 0;
    };
    for (size_t Split = 0; Split + 1 != K; ++Split) {
      int OffTrace = offTraceSuccessor(T, Split);
      if (OffTrace < 0)
        continue; // Unconditional jump to the next trace block: no split.
      uint64_t SplitFreq = FreqOf(Split);
      for (unsigned I = 0; I != Region.size(); ++I) {
        if (Home[I] <= static_cast<int>(Split) || Ptrs[I]->isTerminator())
          continue;
        if (FreqOf(static_cast<size_t>(Home[I])) >= SplitFreq &&
            isSpeculationSafe(*Ptrs[I], OffTrace, L))
          continue;
        G.addEdge(TermNode[Split], I);
      }
    }

    // (d) Upward motion above a join is only worthwhile when the on-trace
    //     flow dominates the off-trace entries; otherwise the compensation
    //     copies on the entering edges would execute about as often as the
    //     hoisted originals, inflating the dynamic instruction count for
    //     nothing. Pin the join in that case.
    for (size_t Mm = 1; Mm != K; ++Mm) {
      uint64_t OnFlow = edgeFlow(T[Mm - 1], T[Mm]);
      uint64_t OffFlow = 0;
      for (int P : F.predecessors(T[Mm]))
        if (P != T[Mm - 1])
          OffFlow += edgeFlow(P, T[Mm]);
      if (OffFlow == 0 || 2 * OffFlow < OnFlow)
        continue; // joins with negligible off-trace flow stay free
      for (unsigned I = 0; I != Region.size(); ++I)
        if (Home[I] >= static_cast<int>(Mm))
          G.addEdge(TermNode[Mm - 1], I);
    }

    // Weights + list scheduling over the whole trace ("as though the trace
    // were a single basic block").
    SchedulerKind RegionKind = effectiveKind(Kind, Ptrs, Opts);
    std::vector<double> W = RegionKind == SchedulerKind::Balanced
                                ? balancedWeights(G, Ptrs, Opts)
                                : traditionalWeights(Ptrs);
    std::vector<unsigned> Order = listSchedule(G, W, Ptrs,
                                               Opts.PressureThreshold,
                                               Opts.Impl);

    // --- Reconstruction --------------------------------------------------
    // Cut the schedule at the terminators; segment Pos replaces trace block
    // T[Pos], so every external edge keeps its target.
    std::vector<std::vector<unsigned>> Segments(K);
    {
      size_t Seg = 0;
      for (unsigned Node : Order) {
        assert(Seg < K && "instructions scheduled after the last terminator");
        Segments[Seg].push_back(Node);
        if (Ptrs[Node]->isTerminator())
          ++Seg;
      }
      assert(Seg == K && "terminator count mismatch");
    }

    // Positions for the join bookkeeping.
    std::vector<size_t> PosOf(Region.size());
    for (size_t P = 0; P != Order.size(); ++P)
      PosOf[Order[P]] = P;

    // Install the segments first: compensation below retargets terminators
    // of off-trace predecessors, which may themselves be trace blocks (a
    // loop back edge re-entering the trace), so their final instruction
    // lists must already be in place.
    for (size_t Pos = 0; Pos != K; ++Pos) {
      std::vector<Instr> NewInstrs;
      NewInstrs.reserve(Segments[Pos].size());
      for (unsigned Node : Segments[Pos])
        NewInstrs.push_back(Region[Node]);
      F.Blocks[T[Pos]].Instrs = std::move(NewInstrs);
    }

    // Compensation: for each join (off-trace edge entering T[m], m > 0),
    // copy every instruction whose home is below the join but which was
    // scheduled above it (i.e. before term_{m-1}).
    for (size_t Mm = 1; Mm != K; ++Mm) {
      std::vector<int> OffPreds;
      for (int P : F.predecessors(T[Mm]))
        if (P != T[Mm - 1])
          OffPreds.push_back(P);
      if (OffPreds.empty())
        continue;
      std::vector<unsigned> Crossed;
      for (unsigned I = 0; I != Region.size(); ++I)
        if (Home[I] >= static_cast<int>(Mm) &&
            PosOf[I] < PosOf[TermNode[Mm - 1]])
          Crossed.push_back(I); // Already in original order by construction.
      if (Crossed.empty())
        continue;

      int Comp = F.makeBlock();
      ++Stats.CompensationBlocks;
      for (unsigned I : Crossed) {
        F.Blocks[Comp].Instrs.push_back(Region[I]);
        ++Stats.CompensationInstrs;
      }
      Instr Jmp;
      Jmp.Op = Opcode::Jmp;
      Jmp.Target0 = T[Mm];
      F.Blocks[Comp].Instrs.push_back(Jmp);

      for (int P : OffPreds) {
        Instr &Term = F.Blocks[P].terminator();
        if (Term.Target0 == T[Mm])
          Term.Target0 = Comp;
        if (Term.Op == Opcode::Br && Term.Target1 == T[Mm])
          Term.Target1 = Comp;
      }
    }
  }

  /// Profile count of the CFG edge From -> To (summing parallel edges).
  uint64_t edgeFlow(int From, int To) const {
    if (static_cast<size_t>(From) >= Profile.EdgeCounts.size())
      return 0;
    const Instr &Term = M.Fn.Blocks[From].terminator();
    uint64_t Flow = 0;
    if (Term.Target0 == To)
      Flow += Profile.EdgeCounts[From][0];
    if (Term.Op == Opcode::Br && Term.Target1 == To)
      Flow += Profile.EdgeCounts[From][1];
    return Flow;
  }

  /// The successor of trace block \p Split that leaves the trace, or -1.
  int offTraceSuccessor(const Trace &T, size_t Split) {
    const Instr &Term = M.Fn.Blocks[T[Split]].terminator();
    if (Term.Op != Opcode::Br)
      return -1;
    int OnTrace = T[Split + 1];
    if (Term.Target0 != OnTrace)
      return Term.Target0;
    if (Term.Target1 != OnTrace)
      return Term.Target1;
    return -1; // Both arms stay on trace.
  }

  /// Safe to execute \p I when the branch to \p OffTraceBlock is taken:
  /// not a store, and the written register is dead on that path. Loads are
  /// treated as non-faulting when speculated.
  bool isSpeculationSafe(const Instr &I, int OffTraceBlock,
                         const Liveness &L) {
    if (I.isStore())
      return false;
    Reg D = I.def();
    if (D.isValid() && L.isLiveIn(OffTraceBlock, D))
      return false;
    // Conditional moves read their old destination; hoisting one above a
    // split re-reads state but writes only D, covered above.
    return true;
  }
};

} // namespace

TraceStats trace::reference::traceScheduleFunction(Module &M,
                                                   const InterpResult &Profile,
                                                   SchedulerKind Kind,
                                                   BalanceOptions Opts) {
  return TraceScheduler(M, Profile, Kind, Opts).run();
}
