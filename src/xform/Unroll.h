//===- xform/Unroll.h - Loop unrolling and peeling ---------------*- C++ -*-===//
///
/// \file
/// Source-level loop transformations of sections 3.1 and 3.3:
///  - loop unrolling with a postconditioned remainder (the Figure-4 shape: a
///    main loop stepping factor*step, followed by a chain of guarded body
///    copies, so every main-loop chunk starts on the same alignment);
///  - first-iteration peeling (Figure 5) for temporal locality.
///
/// The paper's unrolling policy is implemented in unrollLoops: unroll
/// innermost loops, clamp the factor so the unrolled block stays under 64
/// instructions at factor 4 / 128 at factor 8, and skip loops with more than
/// one internal conditional branch that cannot be predicated (section 4.2,
/// footnote 2).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_XFORM_UNROLL_H
#define BALSCHED_XFORM_UNROLL_H

#include "lang/AST.h"

#include <functional>

namespace bsched {
namespace xform {

/// Invoked for every body copy the unroller creates (main loop and remainder
/// chain alike) so the locality pass can mark per-copy cache behaviour.
using CopyCallback = std::function<void(int CopyIdx, lang::StmtList &Copy)>;

/// Statistics for the paper's per-benchmark discussion.
struct UnrollStats {
  int LoopsConsidered = 0;
  int LoopsUnrolled = 0;       ///< unrolled by some factor >= 2.
  int LoopsFullyUnrolled = 0;  ///< unrolled by the requested factor.
  int LoopsSkippedBranches = 0;///< >1 non-predicable internal conditional.
  int LoopsSkippedSize = 0;    ///< instruction limit left factor < 2.
};

/// The paper's unrolled-block instruction limit for a given factor
/// (64 at 4, 128 at 8; proportional in between).
int unrollInstrLimit(int Factor);

/// Unrolls the loop at \p Parent[Idx] by exactly \p Factor, replacing the
/// statement with { next = lo; main loop; remainder chain }. \p OnCopy (if
/// set) is called for each body copy. Returns false (no change) if the
/// statement is not a For or Factor < 2. Fresh scalars are appended to
/// \p P.Vars. The created main loop is tagged NoUnroll so later passes leave
/// it alone.
bool unrollForStmt(lang::Program &P, lang::StmtList &Parent, size_t Idx,
                   int Factor, const CopyCallback &OnCopy = nullptr);

/// Applies the paper's unrolling policy to every innermost loop of \p P.
/// Factor <= 1 is a no-op. Re-run lang::checkProgram afterwards.
UnrollStats unrollLoops(lang::Program &P, int Factor);

/// Peels the first iteration of the loop at \p Parent[Idx] (Figure 5),
/// replacing it with { if (lo < hi) peeled-body; for (i = lo+step; ...) }.
/// \p OnPeeled is called with the peeled copy. Returns false if not a For.
bool peelFirstIteration(lang::Program &P, lang::StmtList &Parent, size_t Idx,
                        const std::function<void(lang::StmtList &)> &OnPeeled
                        = nullptr);

/// Counts conditionals in \p Body (recursively) that cannot be predicated
/// into conditional moves; the unrolling gate uses this.
int countNonPredicableBranches(const lang::StmtList &Body);

/// True if \p S is a For containing no nested For.
bool isInnermostLoop(const lang::Stmt &S);

} // namespace xform
} // namespace bsched

#endif // BALSCHED_XFORM_UNROLL_H
