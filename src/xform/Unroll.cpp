//===- xform/Unroll.cpp - Loop unrolling and peeling ------------------------===//

#include "xform/Unroll.h"

#include "lower/Lower.h" // isPredicable: predicated ifs don't gate unrolling

#include <cassert>
#include <set>

using namespace bsched;
using namespace bsched::xform;
using namespace bsched::lang;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

int xform::unrollInstrLimit(int Factor) {
  // 64 instructions at factor 4, 128 at factor 8 (section 4.2).
  return Factor <= 4 ? 64 : 128;
}

bool xform::isInnermostLoop(const Stmt &S) {
  if (S.Kind != StmtKind::For)
    return false;
  std::function<bool(const StmtList &)> HasFor =
      [&](const StmtList &L) -> bool {
    for (const StmtPtr &C : L) {
      if (C->Kind == StmtKind::For)
        return true;
      if (C->Kind == StmtKind::If && (HasFor(C->Then) || HasFor(C->Else)))
        return true;
    }
    return false;
  };
  return !HasFor(S.Body);
}

int xform::countNonPredicableBranches(const StmtList &Body) {
  int N = 0;
  for (const StmtPtr &S : Body) {
    if (S->Kind == StmtKind::If) {
      if (!lower::isPredicable(*S))
        ++N;
      N += countNonPredicableBranches(S->Then);
      N += countNonPredicableBranches(S->Else);
    } else if (S->Kind == StmtKind::For) {
      N += countNonPredicableBranches(S->Body);
    }
  }
  return N;
}

namespace {

/// Allocates a scalar name not used by any declaration in \p P.
std::string freshName(Program &P, const std::string &Stem) {
  for (int K = 0;; ++K) {
    std::string Name = "__" + Stem + std::to_string(K);
    if (!P.findVar(Name) && !P.findArray(Name))
      return Name;
  }
}

void collectReadsExpr(const Expr &E, std::set<std::string> &Reads) {
  if (E.Kind == ExprKind::VarRef)
    Reads.insert(E.Name);
  for (const ExprPtr &A : E.Args)
    collectReadsExpr(*A, Reads);
}

void collectAccesses(const Stmt &S, std::set<std::string> &Reads,
                     std::set<std::string> &Writes) {
  switch (S.Kind) {
  case StmtKind::Assign:
    collectReadsExpr(*S.Rhs, Reads);
    if (S.Lhs->Kind == ExprKind::ArrayRef)
      collectReadsExpr(*S.Lhs, Reads);
    else
      Writes.insert(S.Lhs->Name);
    return;
  case StmtKind::If:
    collectReadsExpr(*S.Cond, Reads);
    for (const StmtPtr &C : S.Then)
      collectAccesses(*C, Reads, Writes);
    for (const StmtPtr &C : S.Else)
      collectAccesses(*C, Reads, Writes);
    return;
  case StmtKind::For:
    collectReadsExpr(*S.Lo, Reads);
    collectReadsExpr(*S.Hi, Reads);
    for (const StmtPtr &C : S.Body)
      collectAccesses(*C, Reads, Writes);
    return;
  }
}

/// Scalars the unroller may rename per body copy (Multiflow-style register
/// renaming): dead on loop entry because every iteration writes them before
/// any read. Conservatively requires the first access to be an unconditional
/// top-level assignment whose RHS does not read the scalar; anything touched
/// first inside control flow is treated as read-first.
std::set<std::string> privatizableScalars(const Program &P,
                                          const StmtList &Body) {
  std::set<std::string> ReadFirst, WrittenFirst;
  for (const StmtPtr &S : Body) {
    std::set<std::string> Reads, Writes;
    if (S->Kind == StmtKind::Assign && S->Lhs->Kind == ExprKind::VarRef) {
      collectReadsExpr(*S->Rhs, Reads);
      for (const std::string &R : Reads)
        if (!WrittenFirst.count(R))
          ReadFirst.insert(R);
      if (!ReadFirst.count(S->Lhs->Name))
        WrittenFirst.insert(S->Lhs->Name);
      continue;
    }
    // Control flow (or array stores): every scalar accessed inside counts
    // as read-first unless already known write-first.
    collectAccesses(*S, Reads, Writes);
    Reads.insert(Writes.begin(), Writes.end());
    for (const std::string &R : Reads)
      if (!WrittenFirst.count(R))
        ReadFirst.insert(R);
  }
  // Only declared fp/int scalars (never loop variables, which reach here as
  // plain names too).
  std::set<std::string> Out;
  for (const std::string &W : WrittenFirst)
    if (P.findVar(W))
      Out.insert(W);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Unrolling
//===----------------------------------------------------------------------===//

bool xform::unrollForStmt(Program &P, StmtList &Parent, size_t Idx,
                          int Factor, const CopyCallback &OnCopy) {
  assert(Idx < Parent.size() && "bad statement index");
  Stmt &S = *Parent[Idx];
  if (S.Kind != StmtKind::For || Factor < 2)
    return false;

  const std::string &IV = S.LoopVar;
  int64_t Step = S.Step;

  // Cursor scalar carrying the first not-yet-executed iteration out of the
  // main loop into the remainder chain.
  VarDecl NextDecl;
  NextDecl.Name = freshName(P, "next");
  NextDecl.Ty = Type::Int;
  P.Vars.push_back(NextDecl);
  const std::string &Next = NextDecl.Name;

  // Main loop: for (i = lo; i < hi - (F-1)*step; i += F*step).
  auto MainFor = std::make_unique<Stmt>();
  MainFor->Kind = StmtKind::For;
  MainFor->LoopVar = IV;
  MainFor->Lo = S.Lo->clone();
  MainFor->Hi = binary(BinOp::Sub, S.Hi->clone(),
                       intLit(static_cast<int64_t>(Factor - 1) * Step));
  MainFor->Step = Step * Factor;
  MainFor->NoUnroll = true;
  // Multiflow-style renaming: iteration-private temporaries get a fresh name
  // in every main copy but the last, removing the false anti-dependences
  // that would otherwise serialize the unrolled copies. The last copy keeps
  // the original names so post-loop reads still see the final iteration's
  // values (the remainder chain also writes the originals).
  std::set<std::string> Private = privatizableScalars(P, S.Body);
  for (int K = 0; K != Factor; ++K) {
    StmtList Copy = cloneList(S.Body);
    if (K != 0)
      for (StmtPtr &C : Copy)
        addToVarRefs(*C, IV, static_cast<int64_t>(K) * Step);
    if (K + 1 != Factor) {
      for (const std::string &Scalar : Private) {
        const VarDecl *Orig = P.findVar(Scalar);
        VarDecl Priv;
        Priv.Name = freshName(P, Scalar + "_c" + std::to_string(K) + "_");
        Priv.Ty = Orig->Ty;
        P.Vars.push_back(Priv);
        ExprPtr NewRef = varRef(Priv.Name);
        for (StmtPtr &C : Copy)
          replaceVarRefs(*C, Scalar, *NewRef);
      }
    }
    if (OnCopy)
      OnCopy(K, Copy);
    for (StmtPtr &C : Copy)
      MainFor->Body.push_back(std::move(C));
  }
  // next = i + F*step, so after the loop `next` points at the remainder.
  MainFor->Body.push_back(
      assign(varRef(Next), binary(BinOp::Add, varRef(IV),
                                  intLit(static_cast<int64_t>(Factor) *
                                         Step))));

  // Remainder: Figure-4 postconditioning — a chain of F-1 guarded copies
  // with the cursor bumped between them, never a second loop ("we cannot
  // simply use another for loop ... because we must be able to mark the load
  // instructions as cache hits or misses").
  StmtPtr Chain;
  for (int K = Factor - 2; K >= 0; --K) {
    StmtList Guarded;
    StmtList Copy = cloneList(S.Body);
    for (StmtPtr &C : Copy) {
      ExprPtr NextRef = varRef(Next);
      replaceVarRefs(*C, IV, *NextRef);
    }
    if (OnCopy)
      OnCopy(K, Copy);
    for (StmtPtr &C : Copy)
      Guarded.push_back(std::move(C));
    if (Chain) {
      Guarded.push_back(
          assign(varRef(Next), binary(BinOp::Add, varRef(Next),
                                      intLit(Step))));
      Guarded.push_back(std::move(Chain));
    }
    Chain = ifStmt(binary(BinOp::Lt, varRef(Next), S.Hi->clone()),
                   std::move(Guarded));
  }

  // Splice: next = lo; main loop; chain.
  StmtList Replacement;
  Replacement.push_back(assign(varRef(Next), S.Lo->clone()));
  Replacement.push_back(std::move(MainFor));
  if (Chain)
    Replacement.push_back(std::move(Chain));

  Parent.erase(Parent.begin() + static_cast<long>(Idx));
  Parent.insert(Parent.begin() + static_cast<long>(Idx),
                std::make_move_iterator(Replacement.begin()),
                std::make_move_iterator(Replacement.end()));
  return true;
}

namespace {

struct UnrollWalker {
  Program &P;
  int Factor;
  UnrollStats Stats;

  void walk(StmtList &L) {
    for (size_t I = 0; I < L.size(); ++I) {
      Stmt &S = *L[I];
      switch (S.Kind) {
      case StmtKind::Assign:
        break;
      case StmtKind::If:
        walk(S.Then);
        walk(S.Else);
        break;
      case StmtKind::For: {
        if (!isInnermostLoop(S) || S.NoUnroll) {
          walk(S.Body);
          break;
        }
        ++Stats.LoopsConsidered;
        if (countNonPredicableBranches(S.Body) > 1) {
          ++Stats.LoopsSkippedBranches;
          break;
        }
        // Clamp the factor so the unrolled body stays within the limit.
        int BodyCost = lang::estimateCost(S.Body);
        int Limit = unrollInstrLimit(Factor);
        int F = Factor;
        while (F >= 2 && F * BodyCost > Limit)
          --F;
        if (F < 2) {
          ++Stats.LoopsSkippedSize;
          break;
        }
        if (unrollForStmt(P, L, I, F)) {
          ++Stats.LoopsUnrolled;
          if (F == Factor)
            ++Stats.LoopsFullyUnrolled;
          // Skip over the three spliced statements; the main loop is tagged
          // NoUnroll, so even a rescan would leave it alone.
          I += 2;
        }
        break;
      }
      }
    }
  }
};

} // namespace

UnrollStats xform::unrollLoops(Program &P, int Factor) {
  UnrollWalker W{P, Factor, {}};
  if (Factor > 1)
    W.walk(P.Body);
  return W.Stats;
}

//===----------------------------------------------------------------------===//
// Peeling
//===----------------------------------------------------------------------===//

bool xform::peelFirstIteration(
    Program &P, StmtList &Parent, size_t Idx,
    const std::function<void(StmtList &)> &OnPeeled) {
  (void)P;
  assert(Idx < Parent.size() && "bad statement index");
  Stmt &S = *Parent[Idx];
  if (S.Kind != StmtKind::For)
    return false;

  // Peeled copy: body with i replaced by lo, guarded by (lo < hi).
  StmtList Peeled = cloneList(S.Body);
  for (StmtPtr &C : Peeled)
    replaceVarRefs(*C, S.LoopVar, *S.Lo);
  if (OnPeeled)
    OnPeeled(Peeled);
  StmtPtr Guard = ifStmt(binary(BinOp::Lt, S.Lo->clone(), S.Hi->clone()),
                         std::move(Peeled));

  // Residual loop starts one step later.
  auto Rest = std::make_unique<Stmt>();
  Rest->Kind = StmtKind::For;
  Rest->LoopVar = S.LoopVar;
  Rest->Lo = binary(BinOp::Add, S.Lo->clone(), intLit(S.Step));
  Rest->Hi = S.Hi->clone();
  Rest->Step = S.Step;
  Rest->Body = cloneList(S.Body);
  Rest->NoUnroll = S.NoUnroll;

  Parent.erase(Parent.begin() + static_cast<long>(Idx));
  Parent.insert(Parent.begin() + static_cast<long>(Idx), std::move(Rest));
  Parent.insert(Parent.begin() + static_cast<long>(Idx), std::move(Guard));
  return true;
}
