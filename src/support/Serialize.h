//===- support/Serialize.h - Bounds-checked binary (de)serialization -*- C++ -*-===//
///
/// \file
/// The byte-level substrate of the persistent artifact store: a writer that
/// appends fixed-width little-endian fields to a growable buffer, a reader
/// that consumes them with every access bounds-checked, and the project's
/// FNV-1a hash in one canonical place (runCached keys, golden hashes, module
/// digests and artifact checksums all already speak FNV-1a; the store's
/// content keys and payload checksums must match that dialect bit for bit).
///
/// Design rules, because loaded bytes come from disk and disk lies:
///  - The reader NEVER trusts a length field. Strings and arrays first check
///    the claimed size against the bytes actually remaining; a lying length
///    flips the reader into the failed state instead of allocating or
///    overrunning.
///  - Failure is sticky and quiet: after the first short or malformed read,
///    every further read returns a zero value and ok() stays false. Callers
///    check ok() once at the end instead of wrapping every field access.
///  - Encoding is canonical: one value has exactly one byte sequence
///    (fixed-width LE, doubles by bit pattern), so "round-trips bit-exactly"
///    and "equal bytes <=> equal values" are the same property.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_SERIALIZE_H
#define BALSCHED_SUPPORT_SERIALIZE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace bsched {

/// Incremental 64-bit FNV-1a. The offset basis / prime match every other
/// FNV-1a in the project (ProfileCache keys, golden hashes, fuzz digests).
class Fnv1a {
public:
  void byte(uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  }
  void bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I)
      byte(P[I]);
  }
  /// Hashes the 8 little-endian bytes of \p V (the project's "word" idiom).
  void word(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>((V >> (8 * I)) & 0xff));
  }
  void str(const std::string &S) { bytes(S.data(), S.size()); }
  uint64_t get() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

/// One-shot convenience over Fnv1a.
inline uint64_t fnv1a(const void *Data, size_t Len) {
  Fnv1a H;
  H.bytes(Data, Len);
  return H.get();
}
inline uint64_t fnv1a(const std::string &S) { return fnv1a(S.data(), S.size()); }

/// Appends fixed-width little-endian fields to an owned byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { appendLE(V, 4); }
  void u64(uint64_t V) { appendLE(V, 8); }
  void i64(int64_t V) { appendLE(static_cast<uint64_t>(V), 8); }
  void b(bool V) { u8(V ? 1 : 0); }
  void d(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S.data(), S.size());
  }

  const std::string &buffer() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  void appendLE(uint64_t V, int Bytes) {
    for (int I = 0; I != Bytes; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }

  std::string Buf;
};

/// Consumes ByteWriter output. Every read is bounds-checked; the first
/// failure is sticky (all later reads return zero values) and recorded in
/// ok(). A reader that ends with ok() && atEnd() consumed a well-formed
/// buffer exactly.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Len)
      : P(static_cast<const unsigned char *>(Data)), Remaining(Len) {}
  explicit ByteReader(const std::string &S) : ByteReader(S.data(), S.size()) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return P[-1];
  }
  uint32_t u32() { return static_cast<uint32_t>(readLE(4)); }
  uint64_t u64() { return readLE(8); }
  int64_t i64() { return static_cast<int64_t>(readLE(8)); }
  bool b() { return u8() != 0; }
  double d() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    // A corrupt length must not trigger a giant allocation: validate against
    // the bytes that actually remain before touching memory.
    if (Len > Remaining) {
      Failed = true;
      Remaining = 0;
      return std::string();
    }
    if (!take(static_cast<size_t>(Len)))
      return std::string();
    return std::string(reinterpret_cast<const char *>(P - Len),
                       static_cast<size_t>(Len));
  }
  /// Bounds-check for caller-side loops: true when \p Count items of at
  /// least \p MinBytesEach more bytes could still be present. Guards
  /// vector.reserve() against lying element counts.
  bool canHold(uint64_t Count, uint64_t MinBytesEach) {
    if (MinBytesEach != 0 && Count > Remaining / MinBytesEach) {
      Failed = true;
      Remaining = 0;
      return false;
    }
    return true;
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return Remaining == 0; }
  size_t remaining() const { return Remaining; }

private:
  bool take(size_t N) {
    if (Failed || N > Remaining) {
      Failed = true;
      Remaining = 0;
      return false;
    }
    P += N;
    Remaining -= N;
    return true;
  }
  uint64_t readLE(int Bytes) {
    if (!take(static_cast<size_t>(Bytes)))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(P[I - Bytes]) << (8 * I);
    return V;
  }

  const unsigned char *P;
  size_t Remaining;
  bool Failed = false;
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_SERIALIZE_H
