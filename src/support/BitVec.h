//===- support/BitVec.h - Dense bit vector ----------------------*- C++ -*-===//
///
/// \file
/// A minimal dense bit vector (in the spirit of llvm::BitVector) used for
/// liveness sets and dependence-DAG reachability closures.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_BITVEC_H
#define BALSCHED_SUPPORT_BITVEC_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bsched {

class BitVec {
public:
  BitVec() = default;
  explicit BitVec(unsigned NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  void set(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= 1ull << (I % 64);
  }
  void reset(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(1ull << (I % 64));
  }
  bool test(unsigned I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Re-initializes to \p NewBits bits, all zero, retaining the word
  /// storage's capacity (for scratch sets reused across regions).
  void resizeCleared(unsigned NewBits) {
    NumBits = NewBits;
    Words.assign((NewBits + 63) / 64, 0);
  }

  /// this |= Other. Returns true if any bit changed.
  bool orWith(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (std::size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= ~Other.
  void subtract(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (std::size_t I = 0; I != Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// this &= Other.
  void andWith(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (std::size_t I = 0; I != Words.size(); ++I)
      Words[I] &= Other.Words[I];
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W != 0)
        return true;
    return false;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  /// Index of the lowest set bit, or -1 if none.
  int findFirst() const {
    for (std::size_t WI = 0; WI != Words.size(); ++WI)
      if (Words[WI] != 0)
        return static_cast<int>(WI * 64 +
                                static_cast<unsigned>(__builtin_ctzll(Words[WI])));
    return -1;
  }

  /// Raw storage view, e.g. for hashing a set as a cache key.
  const std::vector<uint64_t> &words() const { return Words; }
  /// Mutable raw storage, for bulk-filling a set from flat word arrays
  /// (callers must not change the vector's length).
  std::vector<uint64_t> &words() { return Words; }

  bool operator==(const BitVec &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Calls \p Fn for each set bit index, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (std::size_t WI = 0; WI != Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W != 0) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(static_cast<unsigned>(WI * 64 + Bit));
        W &= W - 1;
      }
    }
  }

private:
  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_BITVEC_H
