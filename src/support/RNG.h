//===- support/RNG.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
///
/// \file
/// A small deterministic xorshift128+ generator. Used by the stochastic
/// memory model (the simple machine model of the original balanced-scheduling
/// study, reproduced for the paper's section 5.5 comparison) and by
/// property-based tests. Deterministic across platforms, unlike std::rand.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_RNG_H
#define BALSCHED_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace bsched {

/// xorshift128+ pseudo-random generator with a fixed, seedable state.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the two state words.
    State[0] = splitMix(Seed);
    State[1] = splitMix(Seed + 0xbf58476d1ce4e5b9ull);
    if (State[0] == 0 && State[1] == 0)
      State[0] = 1;
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t X = State[0];
    const uint64_t Y = State[1];
    State[0] = Y;
    X ^= X << 23;
    State[1] = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State[1] + Y;
  }

  /// Returns a uniformly distributed value in [0, Bound). Uses rejection
  /// sampling: a bare `next() % Bound` over-weights the low residues
  /// whenever Bound does not divide 2^64 (up to ~2x for bounds near 2^63).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Reject the partial final copy of [0, Bound) at the top of the 64-bit
    // range: accept X only below 2^64 - (2^64 mod Bound). At most one
    // retry in expectation (acceptance probability always > 1/2).
    const uint64_t Residue = (0 - Bound) % Bound; // == 2^64 mod Bound
    uint64_t X = next();
    while (X < Residue)
      X = next();
    return X % Bound;
  }

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitMix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  uint64_t State[2];
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_RNG_H
