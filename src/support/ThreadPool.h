//===- support/ThreadPool.h - Minimal fixed-size thread pool ----*- C++ -*-===//
///
/// \file
/// A small fixed-size worker pool for the parallel compilation pipeline:
/// submit() enqueues a task, wait() blocks until every submitted task has
/// finished. Tasks must be independent — the pool provides no ordering
/// between them — and determinism is the *tasks'* job: every compile in this
/// codebase is a pure function of its inputs (per-compile RNG streams,
/// no shared mutable state), so results are identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_THREADPOOL_H
#define BALSCHED_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsched {

class ThreadPool {
public:
  /// Creates \p NumThreads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);
  /// Waits for pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has completed.
  void wait();

  /// Runs Fn(0) .. Fn(Count-1) on \p NumThreads workers and waits for all
  /// of them. Convenience for the "compile every job of an experiment"
  /// pattern; with NumThreads == 1 the work still flows through a single
  /// worker, so code paths match the parallel case exactly.
  template <typename FnT>
  static void parallelFor(unsigned NumThreads, size_t Count, FnT Fn) {
    ThreadPool Pool(NumThreads);
    for (size_t I = 0; I != Count; ++I)
      Pool.submit([Fn, I] { Fn(I); });
    Pool.wait();
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< signalled on submit/stop.
  std::condition_variable AllDone;       ///< signalled when Outstanding hits 0.
  size_t Outstanding = 0;                ///< queued + currently running tasks.
  bool Stopping = false;
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_THREADPOOL_H
