//===- support/ThreadPool.h - Minimal fixed-size thread pool ----*- C++ -*-===//
///
/// \file
/// A small fixed-size worker pool for the parallel compilation pipeline:
/// submit() enqueues a task, wait() blocks until every submitted task has
/// finished. Tasks must be independent — the pool provides no ordering
/// between them — and determinism is the *tasks'* job: every compile in this
/// codebase is a pure function of its inputs (per-compile RNG streams,
/// no shared mutable state), so results are identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_THREADPOOL_H
#define BALSCHED_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsched {

/// How parallelForChunked carves an index range into per-worker batches.
///
/// Static hands every worker one contiguous slice up front (lowest dispatch
/// cost, best when iterations are uniform); Guided hands out shrinking
/// chunks from a shared cursor (remaining / 2T, never below a small
/// minimum), so early imbalance is absorbed by later, smaller grabs — the
/// trade-off analyzed in "OpenMP Loop Scheduling Revisited". Either way an
/// index is executed exactly once, and callers that write results by index
/// get output independent of the policy and the worker count.
enum class ChunkPolicy { Static, Guided };

class ThreadPool {
public:
  /// Creates \p NumThreads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);
  /// Waits for pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has completed.
  void wait();

  /// Runs Fn(0) .. Fn(Count-1) on \p NumThreads workers and waits for all
  /// of them. Convenience for the "compile every job of an experiment"
  /// pattern; with NumThreads == 1 the work still flows through a single
  /// worker, so code paths match the parallel case exactly.
  template <typename FnT>
  static void parallelFor(unsigned NumThreads, size_t Count, FnT Fn) {
    ThreadPool Pool(NumThreads);
    for (size_t I = 0; I != Count; ++I)
      Pool.submit([Fn, I] { Fn(I); });
    Pool.wait();
  }

  /// Runs Fn(0) .. Fn(Count-1) on \p NumThreads workers with one pool task
  /// per *worker*, each draining chunks of the index range per \p Policy,
  /// instead of one task per index. For cheap iterations (a memoized cache
  /// lookup, a sub-millisecond compile) this removes the queue mutex and
  /// condition-variable round trip from the per-iteration cost: dispatch
  /// touches the shared queue NumThreads times total, and all further
  /// scheduling is a relaxed fetch_add on the chunk cursor.
  template <typename FnT>
  static void parallelForChunked(unsigned NumThreads, size_t Count, FnT Fn,
                                 ChunkPolicy Policy = ChunkPolicy::Guided) {
    if (Count == 0)
      return;
    ThreadPool Pool(NumThreads);
    unsigned T = Pool.numThreads();
    if (Policy == ChunkPolicy::Static) {
      // Balanced contiguous slices: the first Count % T workers take one
      // extra index, so slice sizes differ by at most one.
      size_t Base = Count / T, Extra = Count % T, Start = 0;
      for (unsigned W = 0; W != T && Start != Count; ++W) {
        size_t Len = Base + (W < Extra ? 1 : 0);
        size_t End = Start + Len;
        Pool.submit([Fn, Start, End] {
          for (size_t I = Start; I != End; ++I)
            Fn(I);
        });
        Start = End;
      }
    } else {
      // Guided: shrinking grabs from a shared cursor. The chunk size is
      // computed from a possibly-stale remaining count, which is harmless:
      // the fetch_add is the only claim, and the tail clamps to Count.
      auto Next = std::make_shared<std::atomic<size_t>>(0);
      for (unsigned W = 0; W != T; ++W) {
        Pool.submit([Fn, Next, Count, T] {
          for (;;) {
            size_t Seen = Next->load(std::memory_order_relaxed);
            if (Seen >= Count)
              return;
            size_t Chunk = std::max<size_t>(1, (Count - Seen) / (2 * T));
            size_t Start = Next->fetch_add(Chunk, std::memory_order_relaxed);
            if (Start >= Count)
              return;
            size_t End = std::min(Count, Start + Chunk);
            for (size_t I = Start; I != End; ++I)
              Fn(I);
          }
        });
      }
    }
    Pool.wait();
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< signalled on submit/stop.
  std::condition_variable AllDone;       ///< signalled when Outstanding hits 0.
  size_t Outstanding = 0;                ///< queued + currently running tasks.
  bool Stopping = false;
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_THREADPOOL_H
