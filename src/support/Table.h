//===- support/Table.h - Aligned text table printer -------------*- C++ -*-===//
///
/// \file
/// A small column-aligned table printer used by the benchmark harness to
/// regenerate the paper's tables as plain text.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_TABLE_H
#define BALSCHED_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace bsched {

/// Builds and renders a column-aligned text table.
///
/// Usage:
/// \code
///   Table T({"Benchmark", "Speedup"});
///   T.addRow({"ARC2D", "1.26"});
///   std::fputs(T.render().c_str(), stdout);
/// \endcode
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row. Missing cells render empty; extra cells assert.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Sets a caption printed above the table.
  void setCaption(std::string Caption) { this->Caption = std::move(Caption); }

  /// Renders the table, including header and separators.
  std::string render() const;

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }
  unsigned numCols() const { return static_cast<unsigned>(Header.size()); }

private:
  std::string Caption;
  std::vector<std::string> Header;
  // A row with the single magic cell kSeparator renders as a rule.
  std::vector<std::vector<std::string>> Rows;

  static const char *separatorTag();
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_TABLE_H
