//===- support/Str.cpp - Small string formatting helpers -----------------===//

#include "support/Str.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace bsched;

std::string bsched::fmtDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string bsched::fmtDoubleExact(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

std::string bsched::fmtPercent(double Fraction, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Fraction * 100.0);
  return Buf;
}

std::string bsched::fmtInt(int64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, Value);
  std::string Raw(Buf);
  bool Negative = !Raw.empty() && Raw[0] == '-';
  std::string Digits = Negative ? Raw.substr(1) : Raw;
  std::string Out;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Count;
  }
  if (Negative)
    Out.push_back('-');
  return std::string(Out.rbegin(), Out.rend());
}

std::string bsched::fmtMillions(uint64_t Value, int Decimals) {
  return fmtDouble(static_cast<double>(Value) / 1.0e6, Decimals);
}

bool bsched::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}
