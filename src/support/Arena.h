//===- support/Arena.h - Bump-pointer arena ---------------------*- C++ -*-===//
///
/// \file
/// A bump-pointer arena for transient hot-path scratch (in the spirit of
/// llvm::BumpPtrAllocator). The trace-scheduling and profiling hot paths
/// allocate many short-lived arrays per region — per-trace node tables,
/// segment buffers, predecoded op streams — whose lifetimes all end
/// together. Carving them out of one arena turns that churn into pointer
/// bumps, and reset() recycles the memory for the next region without
/// returning it to the heap.
///
/// Only trivially-destructible element types are supported: reset() and the
/// destructor free memory without running destructors.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_ARENA_H
#define BALSCHED_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace bsched {

class Arena {
public:
  explicit Arena(size_t FirstChunkBytes = 1u << 16)
      : FirstChunkBytes(FirstChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  void *allocate(size_t Bytes, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = (Cur + Align - 1) & ~static_cast<uintptr_t>(Align - 1);
    if (P + Bytes > End) {
      grow(Bytes + Align);
      P = (Cur + Align - 1) & ~static_cast<uintptr_t>(Align - 1);
    }
    Cur = P + Bytes;
    return reinterpret_cast<void *>(P);
  }

  /// Returns an uninitialized array of \p N elements of \p T.
  template <typename T> T *alloc(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Returns an array of \p N value-initialized (zeroed) elements.
  template <typename T> T *allocZeroed(size_t N) {
    T *P = alloc<T>(N);
    for (size_t I = 0; I != N; ++I)
      P[I] = T();
    return P;
  }

  /// Recycles all memory for reuse. Chunks are retained, so a steady-state
  /// caller (one reset per region) stops touching the heap entirely.
  void reset() {
    ChunkIdx = 0;
    if (!Chunks.empty()) {
      Cur = reinterpret_cast<uintptr_t>(Chunks[0].Data.get());
      End = Cur + Chunks[0].Size;
    } else {
      Cur = End = 0;
    }
  }

  /// Total bytes of chunk storage owned (capacity, not live allocations).
  size_t capacityBytes() const {
    size_t S = 0;
    for (const Chunk &C : Chunks)
      S += C.Size;
    return S;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> Data;
    size_t Size = 0;
  };

  void grow(size_t MinBytes) {
    // Reuse the next retained chunk when it is big enough; otherwise insert
    // a fresh chunk (doubling sizes) at the current position.
    while (ChunkIdx + 1 < Chunks.size()) {
      ++ChunkIdx;
      if (Chunks[ChunkIdx].Size >= MinBytes) {
        Cur = reinterpret_cast<uintptr_t>(Chunks[ChunkIdx].Data.get());
        End = Cur + Chunks[ChunkIdx].Size;
        return;
      }
    }
    size_t Size = Chunks.empty() ? FirstChunkBytes : Chunks.back().Size * 2;
    if (Size < MinBytes)
      Size = MinBytes;
    Chunk C;
    C.Data = std::make_unique<char[]>(Size);
    C.Size = Size;
    Chunks.push_back(std::move(C));
    ChunkIdx = Chunks.size() - 1;
    Cur = reinterpret_cast<uintptr_t>(Chunks.back().Data.get());
    End = Cur + Size;
  }

  size_t FirstChunkBytes;
  std::vector<Chunk> Chunks;
  size_t ChunkIdx = 0;
  uintptr_t Cur = 0, End = 0;
};

} // namespace bsched

#endif // BALSCHED_SUPPORT_ARENA_H
