//===- support/Str.h - Small string formatting helpers ---------*- C++ -*-===//
//
// Part of the balsched project: a reproduction of Lo & Eggers, "Improving
// Balanced Scheduling with Compiler Optimizations that Increase
// Instruction-Level Parallelism" (PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers used throughout the project. We deliberately
/// avoid <iostream> in library code (per the LLVM coding standards); these
/// helpers build std::strings that callers print with std::fputs / printf.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SUPPORT_STR_H
#define BALSCHED_SUPPORT_STR_H

#include <cstdint>
#include <string>

namespace bsched {

/// Formats \p Value with \p Decimals digits after the decimal point.
std::string fmtDouble(double Value, int Decimals = 2);

/// Formats \p Value with enough significant digits (%.17g) to round-trip
/// the exact bit pattern through strtod.
std::string fmtDoubleExact(double Value);

/// Formats \p Value as a percentage string, e.g. "23.3%".
std::string fmtPercent(double Fraction, int Decimals = 1);

/// Formats an integer with thousands separators, e.g. "1,234,567".
std::string fmtInt(int64_t Value);

/// Formats \p Value scaled to millions with one decimal, e.g. "17844.8".
std::string fmtMillions(uint64_t Value, int Decimals = 1);

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

} // namespace bsched

#endif // BALSCHED_SUPPORT_STR_H
