//===- support/ThreadPool.cpp - Minimal fixed-size thread pool --------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace bsched;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++Outstanding;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--Outstanding == 0)
        AllDone.notify_all();
    }
  }
}
