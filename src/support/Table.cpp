//===- support/Table.cpp - Aligned text table printer ---------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace bsched;

const char *Table::separatorTag() { return "\x01sep"; }

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() <= Header.size() && "row has more cells than columns");
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void Table::addSeparator() { Rows.push_back({separatorTag()}); }

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == separatorTag())
      continue;
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());
  }

  auto appendRule = [&](std::string &Out) {
    for (size_t C = 0; C != Widths.size(); ++C) {
      Out.append(Widths[C] + 2, '-');
      if (C + 1 != Widths.size())
        Out.push_back('+');
    }
    Out.push_back('\n');
  };
  auto appendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Widths.size(); ++C) {
      const std::string &Cell = C < Row.size() ? Row[C] : std::string();
      Out.push_back(' ');
      Out.append(Cell);
      Out.append(Widths[C] - Cell.size() + 1, ' ');
      if (C + 1 != Widths.size())
        Out.push_back('|');
    }
    Out.push_back('\n');
  };

  std::string Out;
  if (!Caption.empty()) {
    Out.append(Caption);
    Out.push_back('\n');
  }
  appendRow(Out, Header);
  appendRule(Out);
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == separatorTag())
      appendRule(Out);
    else
      appendRow(Out, Row);
  }
  return Out;
}
