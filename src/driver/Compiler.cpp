//===- driver/Compiler.cpp - Whole-pipeline facade --------------------------===//

#include "driver/Compiler.h"

#include "driver/ProfileCache.h"
#include "ir/Interp.h"
#include "trace/EstimateProfile.h"
#include "lang/Parser.h"

#include <optional>

using namespace bsched;
using namespace bsched::driver;

std::string CompileOptions::tag() const {
  std::string S = Scheduler == sched::SchedulerKind::Balanced ? "BS"
                  : Scheduler == sched::SchedulerKind::Hybrid ? "HY"
                                                              : "TS";
  if (LocalityAnalysis)
    S += "+LA";
  if (UnrollFactor > 1)
    S += "+LU" + std::to_string(UnrollFactor);
  if (TraceScheduling)
    S += "+TrS";
  if (UseEstimatedProfile)
    S += "+Est";
  return S;
}

CompileResult driver::compileProgram(const lang::Program &Source,
                                     const CompileOptions &Opts) {
  CompileResult R;
  lang::Program P = Source; // Deep copy; transforms run on our own AST.

  if (std::string E = lang::checkProgram(P); !E.empty()) {
    R.Error = "check: " + E;
    return R;
  }

  // Phase 2: locality analysis first — it claims (and tags) the loops whose
  // reuse it exploits; plain unrolling then covers the rest.
  if (Opts.LocalityAnalysis) {
    locality::LocalityOptions LOpts;
    LOpts.UnrollFactor = Opts.UnrollFactor > 1 ? Opts.UnrollFactor : 0;
    R.Locality = locality::applyLocality(P, LOpts);
  }
  if (Opts.UnrollFactor > 1)
    R.Unroll = xform::unrollLoops(P, Opts.UnrollFactor);
  if (Opts.LocalityAnalysis || Opts.UnrollFactor > 1) {
    if (std::string E = lang::checkProgram(P); !E.empty()) {
      R.Error = "recheck after transforms: " + E;
      return R;
    }
  }

  lower::LowerResult LR = lower::lowerProgram(P, Opts.Lower);
  if (!LR.ok()) {
    R.Error = "lower: " + LR.Error;
    return R;
  }
  R.M = std::move(LR.M);

  // Impl==Reference selects the pre-overhaul (seed) implementation of every
  // phase that has one — cleanup and the profiling interpreter here, DAG
  // build and scheduling below — so end-to-end timings of Reference vs Fast
  // compare the whole old pipeline against the whole new one. Output is
  // byte-identical either way (pinned by the golden-schedule tests).
  bool Ref = Opts.Balance.Impl == sched::SchedImpl::Reference;

  if (Opts.CleanupIR) {
    R.Cleanup = opt::cleanupModule(R.M, Ref);
    if (std::string E = ir::verify(R.M); !E.empty()) {
      R.Error = "cleanup broke the IR: " + E;
      return R;
    }
  }

  // Hands the verifier's findings back through the result; the first
  // diagnostic doubles as the hard error so no caller can ignore it.
  auto Flag = [&R](verify::VerifyResult V, const char *Pass) {
    if (V.ok())
      return false;
    R.Error = std::string(Pass) + " verifier: " + toString(V.Diags.front()) +
              (V.Diags.size() > 1
                   ? " (+" + std::to_string(V.Diags.size() - 1) + " more)"
                   : "");
    R.VerifyDiags = std::move(V.Diags);
    return true;
  };

  // Phase 3: scheduling. Trace scheduling needs the profile the paper also
  // gathers first ("we first profiled the programs to determine basic block
  // execution frequencies").
  //
  // Under SchedImpl::Exact, collect the optimality oracle's per-region
  // outcomes for the whole phase (the fast trace core schedules traces
  // directly and bypasses the oracle; only block scheduling engages it).
  std::optional<sched::exact::ExactStatsScope> ExactScope;
  if (Opts.Balance.Impl == sched::SchedImpl::Exact)
    ExactScope.emplace();
  ir::Module PreSched;
  if (Opts.VerifyPasses)
    PreSched = R.M;
  if (Opts.TraceScheduling) {
    // The fast pipeline memoizes the profiling run on the module's content
    // (driver/ProfileCache.h): sweeps recompile the same module under many
    // scheduler configurations, and the profile depends on none of them.
    // Estimated and interpreted profiles share the cache but are keyed under
    // distinct kinds (an estimate must never be served where an interpreted
    // profile was expected); the Reference pipeline bypasses the cache for
    // both and recomputes from scratch.
    ir::InterpResult Profile =
        Opts.UseEstimatedProfile
            ? (Ref ? trace::estimateProfile(R.M.Fn)
                   : estimatedProfileModule(R.M))
            : (Ref ? ir::interpretByInstr(R.M) : profileModule(R.M));
    if (!Profile.Finished) {
      R.Error = Opts.UseEstimatedProfile
                    ? "profile estimate: some path never returns"
                    : "profiling run exceeded the instruction budget";
      return R;
    }
    R.Trace = trace::traceScheduleFunction(
        R.M, Profile, Opts.Scheduler, Opts.Balance,
        Ref ? trace::TraceImpl::Reference : Opts.TraceImpl);
    if (Opts.VerifyPasses &&
        Flag(verify::verifyTraceSchedule(PreSched, R.M, R.Trace.Formed),
             "trace-schedule"))
      return R;
  } else {
    sched::scheduleFunction(R.M, Opts.Scheduler, Opts.Balance);
    if (Opts.VerifyPasses &&
        Flag(verify::verifySchedule(PreSched, R.M), "schedule"))
      return R;
  }
  if (ExactScope) {
    R.Exact = ExactScope->stats();
    ExactScope.reset();
  }
  if (Opts.VerifyPasses && Flag(verify::verifyModule(R.M), "module"))
    return R;

  if (!Opts.StopBeforeRegAlloc) {
    ir::Module PreAlloc;
    if (Opts.VerifyPasses)
      PreAlloc = R.M;
    R.RegAlloc = regalloc::allocateRegisters(R.M, Opts.RegAlloc, Ref);
    if (!R.RegAlloc.ok()) {
      R.Error = "regalloc: " + R.RegAlloc.Error;
      return R;
    }
    if (Opts.VerifyPasses &&
        Flag(verify::verifyRegAlloc(PreAlloc, R.M,
                                    Opts.RegAlloc.AllocatablePerClass),
             "regalloc"))
      return R;
  }

  if (std::string E = ir::verify(R.M); !E.empty())
    R.Error = "verify: " + E;
  return R;
}

CompileResult driver::compileSource(const std::string &Text,
                                    const std::string &Name,
                                    const CompileOptions &Opts) {
  lang::ParseResult PR = lang::parseProgram(Text, Name);
  if (!PR.ok()) {
    CompileResult R;
    R.Error = "parse: " + PR.Error;
    return R;
  }
  return compileProgram(PR.Prog, Opts);
}
