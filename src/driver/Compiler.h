//===- driver/Compiler.h - Whole-pipeline facade ----------------*- C++ -*-===//
///
/// \file
/// The public entry point tying the pipeline together the way the modified
/// Multiflow compiler of section 4 does:
///
///   parse/check -> [locality analysis (Phase 2)] -> [loop unrolling]
///     -> lower -> [profile + trace scheduling | list scheduling (Phase 3)]
///     -> register allocation -> verified machine code for the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_COMPILER_H
#define BALSCHED_DRIVER_COMPILER_H

#include "ir/IR.h"
#include "locality/Locality.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"
#include "trace/Trace.h"
#include "verify/Verify.h"
#include "xform/Unroll.h"

#include <string>

namespace bsched {
namespace driver {

/// One experimental configuration (a row/column of the paper's tables).
struct CompileOptions {
  sched::SchedulerKind Scheduler = sched::SchedulerKind::Balanced;
  /// 1 = no unrolling; the paper evaluates 4 and 8.
  int UnrollFactor = 1;
  bool TraceScheduling = false;
  /// Use static frequency estimation instead of a profiling run to guide
  /// trace selection (section 3.2 allows either; the paper profiles).
  bool UseEstimatedProfile = false;
  bool LocalityAnalysis = false;
  /// Run the IR cleanup (copy propagation, constant folding, DCE) after
  /// lowering; on by default, off for ablation.
  bool CleanupIR = true;
  /// Skip register allocation (for passes that inspect virtual-register
  /// code); such modules cannot be simulated.
  bool StopBeforeRegAlloc = false;
  /// Run the static legality verifier (verify::) after scheduling and after
  /// register allocation. Default on — tests and fuzzing want every config
  /// independently checked; benchmarks turn it off (bench/BenchCommon.h).
  bool VerifyPasses = true;

  sched::BalanceOptions Balance;
  lower::LowerOptions Lower;
  regalloc::RegAllocOptions RegAlloc;

  /// Trace-scheduling core (fast by default; the seed twin for timing
  /// baselines and differential checks). Balance.Impl == Reference selects
  /// the reference twin regardless, so the reference pipeline stays the
  /// whole seed pipeline.
  trace::TraceImpl TraceImpl = trace::TraceImpl::Fast;

  /// Short textual tag, e.g. "BS+LU4+TrS".
  std::string tag() const;
};

struct CompileResult {
  ir::Module M;
  std::string Error; ///< empty on success.

  xform::UnrollStats Unroll;
  opt::CleanupStats Cleanup;
  locality::LocalityStats Locality;
  trace::TraceStats Trace;
  regalloc::RegAllocStats RegAlloc;
  /// Optimality-oracle outcomes (populated only when Balance.Impl ==
  /// sched::SchedImpl::Exact): per-block closure counts and the summed
  /// fast-vs-optimal cycles over closed blocks.
  sched::exact::ExactStats Exact;
  /// Diagnostics from the static verifier (empty unless VerifyPasses found a
  /// miscompile; Error is set alongside).
  std::vector<verify::Diagnostic> VerifyDiags;

  bool ok() const { return Error.empty(); }
};

/// Compiles \p Source (already checked) under \p Opts. The input program is
/// copied; transformations never mutate the caller's AST.
CompileResult compileProgram(const lang::Program &Source,
                             const CompileOptions &Opts);

/// Parses, checks and compiles kernel-language text.
CompileResult compileSource(const std::string &Text, const std::string &Name,
                            const CompileOptions &Opts);

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_COMPILER_H
