//===- driver/Experiment.h - Experiment harness -----------------*- C++ -*-===//
///
/// \file
/// Shared harness for the table-regenerating benchmark binaries: compiles a
/// workload under one configuration, simulates it, cross-checks the result
/// against the functional oracle, and memoizes (workload, configuration)
/// pairs so one binary can assemble several table columns cheaply.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_EXPERIMENT_H
#define BALSCHED_DRIVER_EXPERIMENT_H

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "sim/Machine.h"

#include <string>
#include <vector>

namespace bsched {
namespace driver {

struct RunResult {
  std::string Error; ///< empty on success.
  sim::SimResult Sim;

  // Compilation statistics for the tables' footnote-level discussion.
  xform::UnrollStats Unroll;
  locality::LocalityStats Locality;
  trace::TraceStats Trace;
  regalloc::RegAllocStats RegAlloc;

  bool ok() const { return Error.empty(); }
};

/// Compiles and simulates \p W under \p Opts on \p Machine. The simulated
/// checksum is verified against the AST evaluator; a mismatch is an error
/// (an experiment must never report numbers from a miscompiled program).
RunResult runWorkload(const Workload &W, const CompileOptions &Opts,
                      const sim::MachineConfig &Machine = {});

/// Memoized variant keyed on workload name + options tag + machine model;
/// the benchmark binaries use this so overlapping tables share runs.
///
/// Thread-safe: concurrent callers with distinct keys compute in parallel;
/// concurrent callers with the same key block until the first one finishes
/// and then share its result. Returned references stay valid for the
/// process lifetime.
const RunResult &runCached(const Workload &W, const CompileOptions &Opts,
                           const sim::MachineConfig &Machine = {});

/// One (workload, configuration, machine) cell of an experiment.
struct ExperimentJob {
  const Workload *W = nullptr;
  CompileOptions Opts;
  sim::MachineConfig Machine;
};

/// Runs every job through runCached on \p NumThreads pool workers (0 = one
/// per hardware thread) and returns the results in job order. Each compile
/// is a pure function of its job — per-compile RNG streams, no shared
/// mutable state — so the results are identical for any thread count; the
/// golden-schedule tests assert this.
std::vector<const RunResult *> runAll(const std::vector<ExperimentJob> &Jobs,
                                      unsigned NumThreads = 0);

/// Arithmetic mean (the paper reports arithmetic average speedups).
double mean(const std::vector<double> &Xs);

/// speedup = Base / New in total cycles.
double speedup(const RunResult &Base, const RunResult &New);

/// Percentage decrease from Base to New (0.23 = 23% fewer).
double pctDecrease(uint64_t Base, uint64_t New);

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_EXPERIMENT_H
