//===- driver/Experiment.h - Experiment harness -----------------*- C++ -*-===//
///
/// \file
/// Shared harness for the table-regenerating benchmark binaries: compiles a
/// workload under one configuration, simulates it, cross-checks the result
/// against the functional oracle, and memoizes (workload, configuration)
/// pairs so one binary can assemble several table columns cheaply.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_EXPERIMENT_H
#define BALSCHED_DRIVER_EXPERIMENT_H

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "sim/Machine.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bsched {
namespace driver {

struct RunResult {
  std::string Error; ///< empty on success.
  sim::SimResult Sim;

  // Compilation statistics for the tables' footnote-level discussion.
  xform::UnrollStats Unroll;
  locality::LocalityStats Locality;
  trace::TraceStats Trace;
  regalloc::RegAllocStats RegAlloc;

  bool ok() const { return Error.empty(); }
};

/// Compiles and simulates \p W under \p Opts on \p Machine. The simulated
/// checksum is verified against the AST evaluator; a mismatch is an error
/// (an experiment must never report numbers from a miscompiled program).
RunResult runWorkload(const Workload &W, const CompileOptions &Opts,
                      const sim::MachineConfig &Machine = {});

/// The content key runCached memoizes under: workload name + options tag +
/// machine model + every option that changes the result. This exact string
/// is also the persistent store's key material (ArtifactStore salts it with
/// the schema version), and the suite runner deduplicates cross-table jobs
/// by comparing it.
std::string resultKey(const Workload &W, const CompileOptions &Opts,
                      const sim::MachineConfig &Machine = {});

/// Memoized variant keyed on resultKey(); the benchmark binaries use this
/// so overlapping tables share runs.
///
/// Thread-safe and sharded: the cache is split by key hash with one mutex
/// per shard, so concurrent callers with distinct keys neither recompute
/// nor contend on a shared lock; concurrent callers with the same key block
/// until the first one finishes and then share its result (in-flight
/// deduplication — a completed key is never recomputed). Returned
/// references stay valid for the process lifetime (until clearResultCache).
///
/// When the persistent ArtifactStore is enabled, a memory miss first tries
/// the disk tier: a verified on-disk artifact is decoded instead of
/// recomputed, and a computed OK result is written back. Disk entries that
/// fail any check degrade to recompute — identical results, just slower.
const RunResult &runCached(const Workload &W, const CompileOptions &Opts,
                           const sim::MachineConfig &Machine = {});

/// Empties every shard of the in-memory result cache. All references
/// previously returned by runCached/runAll become dangling — callers are
/// the suite runner (between its cold and warm measurement passes) and
/// tests, which drop their results first. Must not race with runCached.
void clearResultCache();

/// runCached observability, aggregated over shards. Hits found a completed
/// entry, Misses paid the compile+simulate, InFlightWaits arrived while
/// another thread was computing the same key and blocked on it.
struct ResultCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t InFlightWaits = 0;
};
ResultCacheStats resultCacheStats();

/// One (workload, configuration, machine) cell of an experiment.
struct ExperimentJob {
  const Workload *W = nullptr;
  CompileOptions Opts;
  sim::MachineConfig Machine;
};

/// Runs every job through runCached on \p NumThreads pool workers (0 = one
/// per hardware thread) and returns the results in job order. Jobs are
/// dispatched in *batches* — each worker drains chunks of the job list per
/// \p Policy (guided by default, static selectable) — so the pool queue is
/// touched once per worker rather than once per compile. Each compile is a
/// pure function of its job — per-compile RNG streams, no shared mutable
/// state — and results are written by job index, so the returned vector is
/// byte-identical for any thread count and chunk policy; the
/// golden-schedule and compile-service tests assert this.
std::vector<const RunResult *>
runAll(const std::vector<ExperimentJob> &Jobs, unsigned NumThreads = 0,
       ChunkPolicy Policy = ChunkPolicy::Guided);

/// Arithmetic mean (the paper reports arithmetic average speedups).
double mean(const std::vector<double> &Xs);

/// speedup = Base / New in total cycles.
double speedup(const RunResult &Base, const RunResult &New);

/// Percentage decrease from Base to New (0.23 = 23% fewer).
double pctDecrease(uint64_t Base, uint64_t New);

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_EXPERIMENT_H
