//===- driver/ProfileCache.cpp - Memoized profiling runs -------------------===//

#include "driver/ProfileCache.h"

#include <mutex>
#include <unordered_map>

using namespace bsched;
using namespace bsched::driver;
using namespace bsched::ir;

namespace {

/// FNV-1a over the module state the interpreter reads. Two modules with equal
/// hashes-input produce identical InterpResults by construction: the
/// interpreter's behaviour is a function of exactly these fields (plus the
/// zero-initialized register file and memory image, whose sizes are
/// included). Scheduling metadata the interpreter never touches — memory
/// dependence terms, hit/miss hints, locality groups, spill flags — is
/// deliberately excluded so reschedulings of the same code share a profile.
class Hasher {
public:
  void word(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  uint64_t hash() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

uint64_t hashModule(const Module &M, uint64_t MaxInstrs) {
  Hasher H;
  H.word(MaxInstrs);
  H.word(M.MemorySize);
  H.word(M.Fn.numRegs());
  H.word(M.Arrays.size());
  for (const ArrayInfo &A : M.Arrays) {
    H.word(A.Base);
    H.word(static_cast<uint64_t>(A.sizeBytes()));
    H.word(A.IsOutput ? 1 : 0);
  }
  H.word(M.Fn.Blocks.size());
  for (const BasicBlock &B : M.Fn.Blocks) {
    H.word(B.Instrs.size());
    for (const Instr &I : B.Instrs) {
      H.word(static_cast<uint64_t>(I.Op));
      H.word(I.Dst.Id);
      H.word(I.SrcA.Id);
      H.word(I.SrcB.Id);
      H.word(static_cast<uint64_t>(I.Imm));
      H.word(I.Base.Id);
      H.word(static_cast<uint64_t>(I.Offset));
      H.word(static_cast<uint64_t>(I.Target0));
      H.word(static_cast<uint64_t>(I.Target1));
    }
  }
  return H.hash();
}

struct Cache {
  std::mutex Mu;
  std::unordered_map<uint64_t, InterpResult> Map;
  ProfileCacheStats Stats;
};

Cache &cache() {
  static Cache C;
  return C;
}

/// Growth bound: experiment sweeps see a few dozen distinct modules, fuzzing
/// sees a stream of unique ones. Dropping everything on overflow keeps the
/// worst case bounded without any bookkeeping on the hit path.
constexpr size_t MaxEntries = 256;

} // namespace

InterpResult driver::profileModule(const Module &M, uint64_t MaxInstrs) {
  uint64_t Key = hashModule(M, MaxInstrs);
  Cache &C = cache();
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    auto It = C.Map.find(Key);
    if (It != C.Map.end()) {
      ++C.Stats.Hits;
      return It->second;
    }
    ++C.Stats.Misses;
  }
  // Interpret outside the lock: concurrent misses on the same module do
  // redundant work but never block one another, and both compute the same
  // result.
  InterpResult R = interpret(M, MaxInstrs);
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    if (C.Map.size() >= MaxEntries)
      C.Map.clear();
    C.Map.emplace(Key, R);
  }
  return R;
}

ProfileCacheStats driver::profileCacheStats() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  return C.Stats;
}

void driver::clearProfileCache() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Map.clear();
  C.Stats = {};
}
