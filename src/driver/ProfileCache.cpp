//===- driver/ProfileCache.cpp - Memoized profiling runs -------------------===//

#include "driver/ProfileCache.h"

#include "trace/EstimateProfile.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace bsched;
using namespace bsched::driver;
using namespace bsched::ir;

namespace {

/// FNV-1a over the module state the interpreter reads. Two modules with equal
/// hashes-input produce identical InterpResults by construction: the
/// interpreter's behaviour is a function of exactly these fields (plus the
/// zero-initialized register file and memory image, whose sizes are
/// included). Scheduling metadata the interpreter never touches — memory
/// dependence terms, hit/miss hints, locality groups, spill flags — is
/// deliberately excluded so reschedulings of the same code share a profile.
class Hasher {
public:
  void word(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  uint64_t hash() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

/// Profile kinds share the cache but never a slot: the salt is the first
/// word of every key, so an estimated profile cannot be served where an
/// interpreted one was expected (they disagree on counts by design).
enum class ProfileKind : uint64_t { Interpreted = 0, Estimated = 1 };

uint64_t hashModule(const Module &M, uint64_t MaxInstrs, ProfileKind Kind) {
  Hasher H;
  H.word(static_cast<uint64_t>(Kind));
  H.word(MaxInstrs);
  H.word(M.MemorySize);
  H.word(M.Fn.numRegs());
  H.word(M.Arrays.size());
  for (const ArrayInfo &A : M.Arrays) {
    H.word(A.Base);
    H.word(static_cast<uint64_t>(A.sizeBytes()));
    H.word(A.IsOutput ? 1 : 0);
  }
  H.word(M.Fn.Blocks.size());
  for (const BasicBlock &B : M.Fn.Blocks) {
    // The estimator (not the interpreter) reads the trip-count annotation;
    // hashing it for both kinds costs nothing beyond a rare extra miss.
    H.word(static_cast<uint64_t>(B.ExactTripCount));
    H.word(B.Instrs.size());
    for (const Instr &I : B.Instrs) {
      H.word(static_cast<uint64_t>(I.Op));
      H.word(I.Dst.Id);
      H.word(I.SrcA.Id);
      H.word(I.SrcB.Id);
      H.word(static_cast<uint64_t>(I.Imm));
      H.word(I.Base.Id);
      H.word(static_cast<uint64_t>(I.Offset));
      H.word(static_cast<uint64_t>(I.Target0));
      H.word(static_cast<uint64_t>(I.Target1));
    }
  }
  return H.hash();
}

/// One memoized profile. The once_flag serializes concurrent computations
/// of the same key without holding the shard locked: the shard mutex only
/// guards slot creation, the first arrival interprets under call_once, and
/// later arrivals for that key block on the flag (not on the shard).
/// Entries are handed out as shared_ptr so an eviction sweep can drop the
/// map without invalidating a computation a waiter is still blocked on.
struct Entry {
  std::once_flag Once;
  std::atomic<bool> Done{false}; ///< stats-only: distinguishes hit from wait.
  InterpResult R;
};

struct Shard {
  std::mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> Map;
  ProfileCacheStats Stats;
};

/// Shard count: a power of two well above the worker counts this codebase
/// runs (<= 16), so two workers profiling different modules almost never
/// share a shard mutex.
constexpr size_t NumShards = 8;

/// Growth bound per shard: experiment sweeps see a few dozen distinct
/// modules, fuzzing sees a stream of unique ones. Dropping a full shard on
/// overflow keeps the worst case bounded without any bookkeeping on the hit
/// path.
constexpr size_t MaxEntriesPerShard = 64;

Shard *shards() {
  static Shard S[NumShards];
  return S;
}

/// Shared lookup-or-compute: finds/creates the slot for \p Key and runs
/// \p Compute exactly once per key across all threads.
template <typename ComputeFn>
InterpResult cachedProfile(uint64_t Key, ComputeFn Compute) {
  // FNV-1a mixes well into the low bits; fold the high half anyway so shard
  // choice never degenerates for structured keys.
  Shard &S = shards()[(Key ^ (Key >> 32)) & (NumShards - 1)];
  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      if (S.Map.size() >= MaxEntriesPerShard)
        S.Map.clear(); // waiters keep their entries alive via shared_ptr.
      It = S.Map.emplace(Key, std::make_shared<Entry>()).first;
      ++S.Stats.Misses;
    } else if (It->second->Done.load(std::memory_order_acquire)) {
      ++S.Stats.Hits;
    } else {
      ++S.Stats.InFlightWaits;
    }
    E = It->second;
  }
  std::call_once(E->Once, [&] {
    E->R = Compute();
    E->Done.store(true, std::memory_order_release);
  });
  return E->R;
}

} // namespace

InterpResult driver::profileModule(const Module &M, uint64_t MaxInstrs) {
  return cachedProfile(hashModule(M, MaxInstrs, ProfileKind::Interpreted),
                       [&] { return interpret(M, MaxInstrs); });
}

InterpResult driver::estimatedProfileModule(const Module &M) {
  return cachedProfile(hashModule(M, 0, ProfileKind::Estimated),
                       [&] { return trace::estimateProfile(M.Fn); });
}

ProfileCacheStats driver::profileCacheStats() {
  ProfileCacheStats Total;
  for (size_t I = 0; I != NumShards; ++I) {
    Shard &S = shards()[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.Hits += S.Stats.Hits;
    Total.Misses += S.Stats.Misses;
    Total.InFlightWaits += S.Stats.InFlightWaits;
  }
  return Total;
}

void driver::clearProfileCache() {
  for (size_t I = 0; I != NumShards; ++I) {
    Shard &S = shards()[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
    S.Stats = {};
  }
}
