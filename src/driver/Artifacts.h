//===- driver/Artifacts.h - Binary codecs for pipeline results --*- C++ -*-===//
///
/// \file
/// Versioned binary serialization for the result types the experiment
/// pipeline produces: simulated statistics (sim::SimResult), profiles
/// (ir::InterpResult), whole compiled modules with their per-pass statistics
/// (driver::CompileResult), and the memoized experiment cell
/// (driver::RunResult) that driver::ArtifactStore persists across processes.
///
/// Contract: encode/decode are exact inverses — every field round-trips
/// bit-exactly (doubles by bit pattern), so a decoded artifact is
/// indistinguishable from the freshly computed value. tests/serialize_test
/// pins this field by field, and re-derives the golden schedule and
/// simulation hashes from decoded artifacts.
///
/// The decoders run on bytes that may come from a truncated, corrupted or
/// foreign file, so they never trust the input: all reads go through the
/// bounds-checked ByteReader, claimed element counts are validated against
/// the bytes remaining before any allocation, and the caller observes one
/// bool — decode succeeded and consumed a well-formed record, or the
/// artifact is rejected (ArtifactStore treats rejection as a cache miss).
///
/// ArtifactSchemaVersion salts every persisted key: bumping it (required
/// whenever any encoded layout or any serialized struct changes) strands the
/// old on-disk entries as misses instead of letting a new binary misparse
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_ARTIFACTS_H
#define BALSCHED_DRIVER_ARTIFACTS_H

#include "driver/Compiler.h"
#include "driver/Experiment.h"
#include "ir/Interp.h"
#include "sim/Machine.h"
#include "support/Serialize.h"

namespace bsched {
namespace driver {

/// Bump on ANY change to the encoded layout of ANY type below (field added,
/// removed, reordered, or re-typed). The store embeds it in both the content
/// key and the file header, so stale entries of either polarity read as
/// misses, never as garbage values.
constexpr uint32_t ArtifactSchemaVersion = 1;

// Simulation / profile artifacts.
void encode(ByteWriter &W, const sim::SimResult &R);
bool decode(ByteReader &R, sim::SimResult &Out);
void encode(ByteWriter &W, const ir::InterpResult &R);
bool decode(ByteReader &R, ir::InterpResult &Out);

// Whole compiled modules (instruction streams included: a decoded
// CompileResult re-produces its golden schedule hash).
void encode(ByteWriter &W, const ir::Module &M);
bool decode(ByteReader &R, ir::Module &Out);
void encode(ByteWriter &W, const CompileResult &C);
bool decode(ByteReader &R, CompileResult &Out);

// The memoized experiment cell runCached persists.
void encode(ByteWriter &W, const RunResult &R);
bool decode(ByteReader &R, RunResult &Out);

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_ARTIFACTS_H
