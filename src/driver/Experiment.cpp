//===- driver/Experiment.cpp - Experiment harness ---------------------------===//

#include "driver/Experiment.h"

#include "lang/Eval.h"
#include "support/Str.h"
#include "support/ThreadPool.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

using namespace bsched;
using namespace bsched::driver;

RunResult driver::runWorkload(const Workload &W, const CompileOptions &Opts,
                              const sim::MachineConfig &Machine) {
  RunResult R;

  lang::Program P = parseWorkload(W);
  lang::EvalResult Ref = lang::evalProgram(P);
  if (!Ref.ok()) {
    R.Error = std::string(W.Name) + ": oracle: " + Ref.Error;
    return R;
  }

  CompileResult C = compileProgram(P, Opts);
  if (!C.ok()) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() + "]: " + C.Error;
    return R;
  }
  R.Unroll = C.Unroll;
  R.Locality = C.Locality;
  R.Trace = C.Trace;
  R.RegAlloc = C.RegAlloc;

  R.Sim = sim::simulate(C.M, Machine);
  if (!R.Sim.ok()) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() + "]: " + R.Sim.Error;
    return R;
  }
  if (!R.Sim.Finished) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() +
              "]: simulation exceeded the cycle budget";
    return R;
  }
  if (R.Sim.Checksum != Ref.Checksum) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() +
              "]: MISCOMPILE - simulated checksum differs from the oracle";
    return R;
  }
  return R;
}

namespace {

/// One memoized run. The once_flag serializes concurrent computations of
/// the same key without holding the whole cache locked: the map mutex only
/// guards slot creation, and the first caller to reach call_once computes
/// while later callers for that key block on the flag (not on the cache).
struct CacheEntry {
  std::once_flag Once;
  RunResult R;
};

} // namespace

const RunResult &driver::runCached(const Workload &W,
                                   const CompileOptions &Opts,
                                   const sim::MachineConfig &Machine) {
  // Entries live behind unique_ptr so the returned references stay valid
  // however much the table grows or rehashes: callers hold them across many
  // later runCached calls.
  static std::mutex CacheMutex;
  static std::unordered_map<std::string, std::unique_ptr<CacheEntry>> Cache;
  std::string Key = std::string(W.Name) + "|" + Opts.tag() + "|" +
                    (Machine.SimpleModel
                         ? "simple:" + fmtDouble(Machine.SimpleHitRate, 3)
                         : std::string("21164")) +
                    "|w" + std::to_string(Machine.IssueWidth) + "|p" +
                    std::to_string(Opts.Balance.PressureThreshold) +
                    (Opts.Balance.BalanceFixedOps ? "|bf" : "") + "|a" +
                    std::to_string(Opts.RegAlloc.AllocatablePerClass) +
                    (Opts.UseEstimatedProfile ? "|est" : "") +
                    (Opts.VerifyPasses ? "" : "|nv") +
                    (Opts.Balance.Impl == sched::SchedImpl::Reference ? "|ref"
                                                                      : "") +
                    (Opts.Balance.Impl == sched::SchedImpl::Exact ? "|exact"
                                                                  : "") +
                    (Opts.TraceImpl == trace::TraceImpl::Reference ? "|trref"
                                                                   : "") +
                    (Machine.Impl == sim::SimImpl::Reference ? "|simref" : "");
  CacheEntry *Entry;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    std::unique_ptr<CacheEntry> &Slot = Cache[Key];
    if (!Slot)
      Slot = std::make_unique<CacheEntry>();
    Entry = Slot.get();
  }
  std::call_once(Entry->Once,
                 [&] { Entry->R = runWorkload(W, Opts, Machine); });
  return Entry->R;
}

std::vector<const RunResult *>
driver::runAll(const std::vector<ExperimentJob> &Jobs, unsigned NumThreads) {
  std::vector<const RunResult *> Results(Jobs.size(), nullptr);
  ThreadPool::parallelFor(NumThreads, Jobs.size(), [&](size_t I) {
    const ExperimentJob &J = Jobs[I];
    Results[I] = &runCached(*J.W, J.Opts, J.Machine);
  });
  return Results;
}

double driver::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double driver::speedup(const RunResult &Base, const RunResult &New) {
  if (New.Sim.Cycles == 0)
    return 0.0;
  return static_cast<double>(Base.Sim.Cycles) /
         static_cast<double>(New.Sim.Cycles);
}

double driver::pctDecrease(uint64_t Base, uint64_t New) {
  if (Base == 0)
    return 0.0;
  return (static_cast<double>(Base) - static_cast<double>(New)) /
         static_cast<double>(Base);
}
