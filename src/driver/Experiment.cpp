//===- driver/Experiment.cpp - Experiment harness ---------------------------===//

#include "driver/Experiment.h"

#include "driver/ArtifactStore.h"
#include "driver/Artifacts.h"
#include "lang/Eval.h"
#include "support/Serialize.h"
#include "support/Str.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

using namespace bsched;
using namespace bsched::driver;

RunResult driver::runWorkload(const Workload &W, const CompileOptions &Opts,
                              const sim::MachineConfig &Machine) {
  RunResult R;

  lang::Program P = parseWorkload(W);
  lang::EvalResult Ref = lang::evalProgram(P);
  if (!Ref.ok()) {
    R.Error = std::string(W.Name) + ": oracle: " + Ref.Error;
    return R;
  }

  CompileResult C = compileProgram(P, Opts);
  if (!C.ok()) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() + "]: " + C.Error;
    return R;
  }
  R.Unroll = C.Unroll;
  R.Locality = C.Locality;
  R.Trace = C.Trace;
  R.RegAlloc = C.RegAlloc;

  R.Sim = sim::simulate(C.M, Machine);
  if (!R.Sim.ok()) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() + "]: " + R.Sim.Error;
    return R;
  }
  if (!R.Sim.Finished) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() +
              "]: simulation exceeded the cycle budget";
    return R;
  }
  if (R.Sim.Checksum != Ref.Checksum) {
    R.Error = std::string(W.Name) + " [" + Opts.tag() +
              "]: MISCOMPILE - simulated checksum differs from the oracle";
    return R;
  }
  return R;
}

namespace {

/// One memoized run. The once_flag serializes concurrent computations of
/// the same key without holding its shard locked: the shard mutex only
/// guards slot creation, and the first caller to reach call_once computes
/// while later callers for that key block on the flag (not on the shard).
struct CacheEntry {
  std::once_flag Once;
  std::atomic<bool> Done{false}; ///< stats-only: distinguishes hit from wait.
  RunResult R;
};

/// The result cache is sharded by key hash so workers running unrelated
/// jobs never touch the same mutex: with one global lock, every compile of
/// a batched sweep paid a serialized lookup, which dominated wall time once
/// PRs 2/5 made the compiles themselves cheap. Entries live behind
/// unique_ptr so the returned references stay valid however much a shard
/// grows or rehashes: callers hold them across many later runCached calls.
struct ResultShard {
  std::mutex Mu;
  std::unordered_map<std::string, std::unique_ptr<CacheEntry>> Map;
  ResultCacheStats Stats;
};

/// Power of two comfortably above the worker counts this codebase runs.
constexpr size_t NumResultShards = 16;

ResultShard *resultShards() {
  static ResultShard S[NumResultShards];
  return S;
}

} // namespace

ResultCacheStats driver::resultCacheStats() {
  ResultCacheStats Total;
  for (size_t I = 0; I != NumResultShards; ++I) {
    ResultShard &S = resultShards()[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.Hits += S.Stats.Hits;
    Total.Misses += S.Stats.Misses;
    Total.InFlightWaits += S.Stats.InFlightWaits;
  }
  return Total;
}

std::string driver::resultKey(const Workload &W, const CompileOptions &Opts,
                              const sim::MachineConfig &Machine) {
  return std::string(W.Name) + "|" + Opts.tag() + "|" +
         (Machine.SimpleModel
              ? "simple:" + fmtDouble(Machine.SimpleHitRate, 3)
              : std::string("21164")) +
         "|w" + std::to_string(Machine.IssueWidth) + "|p" +
         std::to_string(Opts.Balance.PressureThreshold) +
         (Opts.Balance.BalanceFixedOps ? "|bf" : "") + "|a" +
         std::to_string(Opts.RegAlloc.AllocatablePerClass) +
         // tag() already carries "+Est"; keep the explicit suffix
         // as belt-and-braces (the ProfileCache layer separates
         // the two profile kinds with its own key salt).
         (Opts.UseEstimatedProfile ? "|est" : "") +
         (Opts.VerifyPasses ? "" : "|nv") +
         (Opts.Balance.Impl == sched::SchedImpl::Reference ? "|ref" : "") +
         (Opts.Balance.Impl == sched::SchedImpl::Exact ? "|exact" : "") +
         (Opts.TraceImpl == trace::TraceImpl::Reference ? "|trref" : "") +
         (Machine.Impl == sim::SimImpl::Reference ? "|simref" : "");
}

void driver::clearResultCache() {
  for (size_t I = 0; I != NumResultShards; ++I) {
    ResultShard &S = resultShards()[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
  }
}

const RunResult &driver::runCached(const Workload &W,
                                   const CompileOptions &Opts,
                                   const sim::MachineConfig &Machine) {
  std::string Key = resultKey(W, Opts, Machine);
  size_t Hash = std::hash<std::string>{}(Key);
  ResultShard &S = resultShards()[(Hash ^ (Hash >> 32)) & (NumResultShards - 1)];
  CacheEntry *Entry;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    std::unique_ptr<CacheEntry> &Slot = S.Map[Key];
    if (!Slot) {
      Slot = std::make_unique<CacheEntry>();
      ++S.Stats.Misses;
    } else if (Slot->Done.load(std::memory_order_acquire)) {
      ++S.Stats.Hits;
    } else {
      ++S.Stats.InFlightWaits;
    }
    Entry = Slot.get();
  }
  std::call_once(Entry->Once, [&] {
    // Disk tier: a verified, decodable artifact substitutes for the
    // compute. Anything less degrades to runWorkload — a bad disk entry
    // can cost time, never correctness.
    std::string Blob;
    if (loadArtifact(Key, Blob)) {
      ByteReader Rd(Blob);
      RunResult Loaded;
      if (decode(Rd, Loaded) && Rd.atEnd()) {
        Entry->R = std::move(Loaded);
        Entry->Done.store(true, std::memory_order_release);
        return;
      }
      noteArtifactDecodeFailure();
    }
    Entry->R = runWorkload(W, Opts, Machine);
    // Persist only clean results: errors are cheap to re-derive and must
    // not outlive the bug (or transient condition) that caused them.
    if (Entry->R.ok() && artifactStoreEnabled()) {
      ByteWriter Wr;
      encode(Wr, Entry->R);
      storeArtifact(Key, Wr.buffer());
    }
    Entry->Done.store(true, std::memory_order_release);
  });
  return Entry->R;
}

std::vector<const RunResult *>
driver::runAll(const std::vector<ExperimentJob> &Jobs, unsigned NumThreads,
               ChunkPolicy Policy) {
  std::vector<const RunResult *> Results(Jobs.size(), nullptr);
  ThreadPool::parallelForChunked(
      NumThreads, Jobs.size(),
      [&](size_t I) {
        const ExperimentJob &J = Jobs[I];
        Results[I] = &runCached(*J.W, J.Opts, J.Machine);
      },
      Policy);
  return Results;
}

double driver::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double driver::speedup(const RunResult &Base, const RunResult &New) {
  if (New.Sim.Cycles == 0)
    return 0.0;
  return static_cast<double>(Base.Sim.Cycles) /
         static_cast<double>(New.Sim.Cycles);
}

double driver::pctDecrease(uint64_t Base, uint64_t New) {
  if (Base == 0)
    return 0.0;
  return (static_cast<double>(Base) - static_cast<double>(New)) /
         static_cast<double>(Base);
}
