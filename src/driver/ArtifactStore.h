//===- driver/ArtifactStore.h - Persistent artifact store -------*- C++ -*-===//
///
/// \file
/// A persistent, content-addressed blob store that tiers UNDER the in-memory
/// result caches: memory hit -> disk hit (load + checksum verify + decode)
/// -> compute + write-back. Keys are the exact strings the in-memory caches
/// already use (runCached's key material), salted with ArtifactSchemaVersion
/// and hashed (FNV-1a) into file names; the full key is embedded in every
/// file and compared on load, so a file-name hash collision reads as a miss
/// rather than as someone else's result.
///
/// Trust model: the disk lies. Every load re-derives the payload checksum,
/// validates the magic, the schema version and the embedded key, and parses
/// through the bounds-checked ByteReader — truncated, bit-flipped,
/// version-stale or colliding entries are rejected (counted per cause in
/// ArtifactStoreStats) and the caller recomputes. A rejected or unreadable
/// entry is NEVER an error: the store can only make things faster, not
/// wrong. tests/artifact_store_test injects each fault class and asserts
/// exactly this degradation.
///
/// Writes are atomic (temp file + rename in the store directory), so
/// concurrent writers of the same key — two suite processes, or a writer
/// racing a reader — leave one complete file, never an interleaved one.
///
/// The store is disabled until given a directory, either explicitly
/// (setArtifactStoreDir) or via the BSCHED_ARTIFACT_DIR environment
/// variable; all entry points are no-ops while disabled, so binaries that
/// never opt in keep their exact pre-store behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_ARTIFACTSTORE_H
#define BALSCHED_DRIVER_ARTIFACTSTORE_H

#include <cstdint>
#include <string>

namespace bsched {
namespace driver {

/// Per-process store observability. All counters are monotonic; the suite
/// runner resets them between its cold and warm passes.
struct ArtifactStoreStats {
  uint64_t DiskHits = 0;         ///< loads that returned a verified payload.
  uint64_t DiskMisses = 0;       ///< reads with no file present.
  uint64_t Writes = 0;           ///< successful write-backs.
  uint64_t WriteFailures = 0;    ///< I/O errors while writing (non-fatal).
  uint64_t CorruptRejected = 0;  ///< bad magic, truncation, checksum, decode.
  uint64_t VersionRejected = 0;  ///< schema-version mismatch.
  uint64_t KeyRejected = 0;      ///< embedded key != requested (collision).
};

/// Points the store at \p Dir (created if missing) or disables it with "".
/// Overrides BSCHED_ARTIFACT_DIR. Not safe to call concurrently with loads
/// or stores.
void setArtifactStoreDir(const std::string &Dir);

/// The active store directory ("" when disabled). Resolves the environment
/// variable on first use.
std::string artifactStoreDir();

/// True when a store directory is configured.
bool artifactStoreEnabled();

/// Toggles disk *reads* (writes are unaffected). The suite runner's forced-
/// cold measurement pass turns reads off so cold timings are honest even
/// when a warm store is already on disk.
void setArtifactStoreReads(bool Enabled);
bool artifactStoreReads();

ArtifactStoreStats artifactStoreStats();
void resetArtifactStoreStats();

/// The file a key persists to (valid whether or not the file exists).
/// Exposed so the fault-injection tests can truncate and flip bytes in the
/// real on-disk entry for a real key.
std::string artifactPath(const std::string &Key);

/// Loads and verifies the blob stored under \p Key. Returns true and fills
/// \p PayloadOut only when the entry passed every check; any failure —
/// absent, truncated, corrupt, version-stale, colliding — returns false
/// after bumping the matching counter. Returns false without touching disk
/// when the store is disabled or reads are off.
bool loadArtifact(const std::string &Key, std::string &PayloadOut);

/// Persists \p Payload under \p Key (atomic temp-file + rename; last writer
/// wins and every observable file is complete). Returns false when the
/// store is disabled or the write failed; callers never need to care.
bool storeArtifact(const std::string &Key, const std::string &Payload);

/// Reclassifies the most recent hit as corrupt: called by a consumer that
/// received a verified blob but could not decode it into the expected type
/// (a schema bug the version salt failed to catch). Keeps the hit/reject
/// counters truthful for the suite report and the fault tests.
void noteArtifactDecodeFailure();

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_ARTIFACTSTORE_H
