//===- driver/ProfileCache.h - Memoized profiling runs ----------*- C++ -*-===//
///
/// \file
/// Content-keyed memoization of the profiling interpreter. The profile that
/// guides trace scheduling depends only on the laid-out module — not on the
/// scheduler, balance options, or machine model — yet every experiment sweep
/// (and every benchmark repetition) recompiles the same workload under many
/// scheduler configurations, re-running the same multi-million-instruction
/// profiling interpretation each time. This cache keys the InterpResult on a
/// hash of exactly the module state the interpreter reads (opcodes, operand
/// registers, immediates, memory operands, control-flow targets, the memory
/// layout, and the output arrays that feed the checksum), so a recompile of
/// an unchanged module reuses its profile bit-for-bit.
///
/// This is the same discipline as driver::runCached one layer down: results
/// are identical with or without the cache, only the time to obtain them
/// changes. The reference pipeline (sched::SchedImpl::Reference) bypasses it
/// and always re-runs the seed interpreter, so fast-vs-reference end-to-end
/// comparisons stay honest.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_PROFILECACHE_H
#define BALSCHED_DRIVER_PROFILECACHE_H

#include "ir/Interp.h"

#include <cstdint>

namespace bsched {
namespace driver {

/// Returns ir::interpret(M, MaxInstrs), memoized on the module's
/// execution-relevant content. Thread-safe; results are bit-identical to an
/// uncached run.
///
/// The cache is sharded by key hash with a mutex per shard, so concurrent
/// compiles of unrelated modules never serialize on one lock, and each
/// shard deduplicates in-flight computations: the first miss on a key
/// interprets while later arrivals for the same key block on that one
/// computation instead of redundantly re-interpreting (profiling is the
/// most expensive phase of a cold trace-scheduled compile, so a thundering
/// herd on one hot module would otherwise multiply it by the worker count).
ir::InterpResult profileModule(const ir::Module &M,
                               uint64_t MaxInstrs = 1000000000ull);

/// Returns trace::estimateProfile(M.Fn), memoized alongside the interpreted
/// profiles but under a kind-salted key: an estimated profile must never be
/// served from (or stored into) a slot an interpreted profile of the same
/// module could hit, since the two disagree on counts by design. The key also
/// covers the per-block ExactTripCount annotations the estimator consumes.
ir::InterpResult estimatedProfileModule(const ir::Module &M);

/// Cache observability for benchmarks and tests, aggregated over shards.
struct ProfileCacheStats {
  uint64_t Hits = 0;          ///< key present and already computed.
  uint64_t Misses = 0;        ///< first arrival; pays the interpretation.
  uint64_t InFlightWaits = 0; ///< arrived while another thread computed it.
};
ProfileCacheStats profileCacheStats();

/// Drops every cached profile (tests use this to measure cold behaviour).
void clearProfileCache();

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_PROFILECACHE_H
