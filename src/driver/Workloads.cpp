//===- driver/Workloads.cpp - The Table-1 workload analogues ----------------===//

#include "driver/Workloads.h"

#include "lang/Parser.h"

#include <cstdio>
#include <cstdlib>

using namespace bsched;
using namespace bsched::driver;

namespace {

// --- ARC2D: 2-D fluid-flow solver -----------------------------------------
// Jacobi-style sweeps over grids larger than the L1: unrollable stencil
// inner loops, abundant load-level parallelism, line-aligned rows (96
// columns = 768-byte row stride).
const char *Arc2dSrc = R"(
array U[96][96];
array V[96][96] output;
var c0 = 0.5;
var c1 = 0.125;
var c2 = 0.125;
for (i = 0; i < 96; i += 1) {
  for (j = 0; j < 96; j += 1) { U[i][j] = i * 0.37 + j * 0.11; }
}
for (t = 0; t < 2; t += 1) {
  for (i = 1; i < 95; i += 1) {
    for (j = 1; j < 95; j += 1) {
      V[i][j] = c0 * U[i][j] + c1 * (U[i][j - 1] + U[i][j + 1])
              + c2 * (U[i - 1][j] + U[i + 1][j]);
    }
  }
  for (i = 1; i < 95; i += 1) {
    for (j = 1; j < 95; j += 1) {
      U[i][j] = c0 * V[i][j] + c1 * (V[i][j - 1] + V[i][j + 1])
              + c2 * (V[i - 1][j] + V[i + 1][j]);
    }
  }
}
)";

// --- BDNA: nucleic-acid molecular dynamics ---------------------------------
// One very large straight-line loop body: the unrolled block would blow the
// instruction limit, so unrolling is disabled — yet the block already holds
// plenty of load-level parallelism ("these blocks were large enough to
// exploit load-level parallelism without loop unrolling").
const char *BdnaSrc = R"(
array P[4096];
array Q[4096];
array R[4096];
array S[4096] output;
var e = 0.0;
var s0 = 0.0;
var s1 = 0.0;
var s2 = 0.0;
var s3 = 0.0;
var s4 = 0.0;
var s5 = 0.0;
var s6 = 0.0;
var s7 = 0.0;
for (i = 0; i < 4096; i += 1) {
  P[i] = i * 0.001 + 0.5;
  Q[i] = 1.0 - i * 0.0002;
  R[i] = i * 0.0005;
}
for (i = 0; i < 4090; i += 1) {
  s0 = P[i] * Q[i] + R[i];
  s1 = P[i + 1] * Q[i + 1] + R[i + 1];
  s2 = P[i + 2] * Q[i + 2] + R[i + 2];
  s3 = P[i + 3] * Q[i + 3] + R[i + 3];
  s4 = P[i + 4] * R[i + 2] - Q[i + 1];
  s5 = Q[i + 5] * R[i] - P[i + 2];
  s6 = P[i] * R[i + 4] + Q[i + 2] * R[i + 1];
  s7 = Q[i + 4] * R[i + 3] - P[i + 1] * P[i + 3];
  S[i] = s0 + s1 + s2 + s3 + s4 * s5 + s6 * s7;
  e = e + s0 * s3 - s1 * s2 + s4 * s7 - s5 * s6;
}
S[0] = e;
)";

// --- DYFESM: structural dynamics -------------------------------------------
// A data-dependent 50/50 branch with array stores in both arms: no dominant
// path for the trace picker, unpredictable for the branch predictor, and not
// predicable into conditional moves.
const char *DyfesmSrc = R"(
array F[2048];
array A[2048];
array B[2048] output;
var t = 0.0;
var u = 0.0;
for (i = 0; i < 2048; i += 1) {
  F[i] = t;
  t = 1.0 - t;
}
for (s = 0; s < 12; s += 1) {
  for (i = 0; i < 2048; i += 1) {
    if (F[i] < 0.5) {
      A[i] = A[i] + 1.5;
      u = u + A[i];
    } else {
      B[i] = B[i] + 2.5;
      u = u - B[i];
    }
  }
}
B[0] = u;
)";

// --- MDG: flexible-water molecular dynamics --------------------------------
// Pair-distance energies with a serial chain through 30-cycle divides:
// fixed-latency interlocks dominate, the case where traditional scheduling
// can beat balanced scheduling (section 5.1 caveat).
const char *MdgSrc = R"(
array X[2048];
array Y[2048];
array E[8] output;
var e = 0.0;
var f = 1.0;
var dx = 0.0;
var dy = 0.0;
var r2 = 0.0;
var inv = 0.0;
for (i = 0; i < 2048; i += 1) {
  X[i] = i * 0.003 + 0.1;
  Y[i] = 1.5 - i * 0.002;
}
for (s = 0; s < 10; s += 1) {
  for (i = 0; i < 2040; i += 1) {
    dx = X[i] - Y[i + 3];
    dy = X[i + 5] - Y[i];
    r2 = dx * dx + dy * dy + 0.25;
    inv = 1.0 / r2;
    e = e + inv;
    f = f * 0.9999 + inv * inv;
  }
}
E[0] = e;
E[1] = f;
)";

// --- QCD2: lattice-gauge simulation ----------------------------------------
// Link-field updates touching four-element site groups (32-byte stride, a
// full cache line per iteration: no spatial reuse to mark) over arrays far
// larger than the L2.
const char *Qcd2Src = R"(
array L[16384];
array G[16384];
array Out[8] output;
var acc = 0.0;
var a = 0.0;
var b = 0.0;
for (i = 0; i < 16384; i += 1) {
  L[i] = i * 0.0001 + 0.2;
  G[i] = 0.9 - i * 0.00005;
}
for (s = 0; s < 3; s += 1) {
  for (i = 0; i < 4095; i += 1) {
    a = L[i * 4] * G[i * 4 + 1] + L[i * 4 + 2] * G[i * 4 + 3];
    b = L[i * 4 + 1] * G[i * 4] - L[i * 4 + 3] * G[i * 4 + 2];
    acc = acc + a * b;
    L[i * 4] = a * 0.5 + L[i * 4] * 0.5;
    G[i * 4 + 2] = b * 0.5 + G[i * 4 + 2] * 0.5;
  }
}
Out[0] = acc;
)";

// --- TRFD: two-electron integral transformation ----------------------------
// Triangular loops with many simultaneously live temporaries: unrolling by 8
// raises register pressure until spill code erases the benefit (Table 4:
// TRFD regresses from 1.34 to 1.31).
const char *TrfdSrc = R"(
array T[128][128];
array V2[128][128] output;
var t0 = 0.0;
var t1 = 0.0;
var t2 = 0.0;
var t3 = 0.0;
var t4 = 0.0;
var t5 = 0.0;
var t6 = 0.0;
for (i = 0; i < 128; i += 1) {
  for (j = 0; j < 128; j += 1) { T[i][j] = i * 0.01 - j * 0.007; }
}
for (i = 0; i < 128; i += 1) {
  for (j = 0; j < i + 1; j += 1) {
    t0 = T[i][j] * 0.5;
    t1 = T[j][i] * 0.25;
    t2 = t0 + t1;
    t3 = t0 - t1;
    t4 = t2 * t2 + 0.125;
    t5 = t3 * t2 - t0;
    t6 = t4 * t3 + t1 * t5;
    V2[i][j] = t2 + t5 * t4;
    V2[j][i] = t3 + t6 * t0;
  }
}
)";

// --- alvinn: neural-net back-propagation -------------------------------------
// Dense matrix-vector products over a weight matrix bigger than the L2;
// unrolling mostly removes branch overhead (the paper reports a 36% dynamic
// instruction decrease for alvinn).
const char *AlvinnSrc = R"(
array W[256][128];
array xin[128];
array yout[256] output;
var acc = 0.0;
for (i = 0; i < 256; i += 1) {
  for (j = 0; j < 128; j += 1) { W[i][j] = i * 0.001 - j * 0.002; }
}
for (j = 0; j < 128; j += 1) { xin[j] = j * 0.01; }
for (e = 0; e < 2; e += 1) {
  for (i = 0; i < 256; i += 1) {
    acc = 0.0;
    for (j = 0; j < 128; j += 1) {
      acc = acc + W[i][j] * xin[j];
    }
    yout[i] = acc / (1.0 + acc * acc);
  }
}
)";

// --- dnasa7: matrix manipulation kernels -------------------------------------
// Dense matrix multiply, the canonical unrolling winner: temporal reuse on
// A[i][k], spatial on B and C, line-aligned 56-column rows.
const char *Dnasa7Src = R"(
array A[56][56];
array Bm[56][56];
array C[56][56] output;
for (i = 0; i < 56; i += 1) {
  for (j = 0; j < 56; j += 1) {
    A[i][j] = i * 0.02 - j * 0.01;
    Bm[i][j] = 1.0 + i * 0.005 + j * 0.003;
  }
}
for (i = 0; i < 56; i += 1) {
  for (k = 0; k < 56; k += 1) {
    for (j = 0; j < 56; j += 1) {
      C[i][j] = C[i][j] + A[i][k] * Bm[k][j];
    }
  }
}
)";

// --- doduc: nuclear-reactor Monte Carlo --------------------------------------
// Many distinct phases revisited in rotation: conditional-laden loops that
// cannot unroll, plus several unrollable sweeps whose factor-8 expansion
// pushes the hot footprint past the 8KB instruction cache (Table 4: doduc
// drops below 1.0 at LU8 via "degradation in instruction cache performance").
const char *DoducSrc = R"(
array D1[768];
array D2[768];
array D3[768];
array D4[768];
array D5[768];
array D6[768] output;
var thr = 0.45;
var w = 0.0;
for (i = 0; i < 768; i += 1) {
  D1[i] = i * 0.0013;
  D2[i] = 1.0 - i * 0.0011;
  D3[i] = i * 0.0007 + 0.1;
  D4[i] = 0.8 - i * 0.0005;
  D5[i] = i * 0.0009 + 0.05;
}
for (p = 0; p < 96; p += 1) {
  for (i = 0; i < 128; i += 1) {
    if (D1[i] < thr) { D2[i] = D2[i] + D1[i] * 0.125; }
    if (D2[i] > 0.9) { D3[i] = D3[i] - D2[i] * 0.0625; }
  }
  for (i = 0; i < 60; i += 1) {
    D6[i] = D1[i] * 0.2 + D2[i + 1] * 0.3 + D3[i + 2] * 0.1 + D4[i] * 0.15
          + D5[i + 3] * 0.25;
  }
  for (i = 0; i < 60; i += 1) {
    D4[i] = D4[i] * 0.97 + D6[i + 2] * 0.02 + D5[i] * 0.01 + D1[i + 1] * 0.005;
  }
  for (i = 0; i < 60; i += 1) {
    D5[i] = D5[i] * 0.96 + D3[i + 1] * 0.03 + D6[i] * 0.01 + D2[i + 3] * 0.004;
  }
  for (i = 0; i < 60; i += 1) {
    D1[i] = D1[i] * 0.98 + D4[i + 3] * 0.01 + D5[i + 1] * 0.01 + D3[i] * 0.003;
  }
  for (i = 0; i < 60; i += 1) {
    D3[i] = D3[i] * 0.99 + D1[i + 2] * 0.004 + D6[i + 1] * 0.006 + D4[i] * 0.002;
  }
  for (i = 0; i < 60; i += 1) {
    D2[i] = D2[i] * 0.995 + D5[i + 2] * 0.002 + D6[i + 3] * 0.002 + D1[i] * 0.001;
  }
  for (i = 0; i < 60; i += 1) {
    D6[i] = D6[i] * 0.9 + D2[i + 1] * 0.05 + D4[i + 2] * 0.03 + D5[i] * 0.02;
  }
  for (i = 0; i < 60; i += 1) {
    D4[i] = D4[i] * 0.96 + D1[i + 3] * 0.02 + D3[i + 1] * 0.01 + D6[i] * 0.01;
  }
  for (i = 0; i < 60; i += 1) {
    D5[i] = D5[i] * 0.98 + D6[i + 2] * 0.008 + D2[i] * 0.007 + D3[i + 3] * 0.005;
  }
  for (i = 0; i < 60; i += 1) {
    D1[i] = D1[i] * 0.97 + D5[i + 1] * 0.015 + D4[i] * 0.01 + D2[i + 2] * 0.005;
  }
  w = w + D6[p * 8] + D2[p * 4];
}
D6[0] = w;
)";

// --- ear: human-cochlea model -------------------------------------------------
// Cascaded first-order filters: a loop-carried store-to-load recurrence
// leaves little load-level parallelism for any scheduler (ear is one of the
// programs where traditional scheduling wins in Table 5).
const char *EarSrc = R"(
array Xe[8192];
array Ye[8192] output;
var a = 0.77;
var b = 0.23;
for (i = 0; i < 8192; i += 1) { Xe[i] = i * 0.0004 + 0.01; }
for (t = 0; t < 3; t += 1) {
  for (i = 1; i < 8192; i += 1) {
    Ye[i] = a * Ye[i - 1] + b * Xe[i];
  }
  for (i = 1; i < 8192; i += 1) {
    Xe[i] = Ye[i] * 0.5 + Xe[i - 1] * 0.5;
  }
}
)";

// --- hydro2d: galactic-jet Navier-Stokes ---------------------------------------
// Flux-difference sweeps over four grids (512-byte aligned rows), a second
// stencil family that responds well to unrolling.
const char *Hydro2dSrc = R"(
array Up[128][64];
array Vp[128][64];
array Wp[128][64];
array Zp[128][64] output;
var g = 0.3;
for (i = 0; i < 128; i += 1) {
  for (j = 0; j < 64; j += 1) {
    Up[i][j] = i * 0.01 + j * 0.004;
    Vp[i][j] = 1.0 - i * 0.003 + j * 0.002;
    Wp[i][j] = 0.5 + i * 0.001 - j * 0.001;
  }
}
for (t = 0; t < 3; t += 1) {
  for (i = 0; i < 127; i += 1) {
    for (j = 0; j < 63; j += 1) {
      Zp[i][j] = Up[i][j] + g * (Vp[i][j + 1] - Vp[i][j])
               + g * (Wp[i + 1][j] - Wp[i][j]);
    }
  }
  for (i = 0; i < 127; i += 1) {
    for (j = 0; j < 63; j += 1) {
      Up[i][j] = Up[i][j] * 0.9 + Zp[i][j] * 0.1 + Vp[i][j] * 0.01;
    }
  }
}
)";

// --- mdljdp2: equations of motion ----------------------------------------------
// Two non-predicable conditionals inside the hot loop: the paper's unrolling
// gate ("did not unroll loops with more than one internal conditional
// branch") keeps this kernel untouched — the dynamic instruction change in
// Table 4 is ~0.5%.
const char *Mdljdp2Src = R"(
array Fo[4096];
array Ve[4096];
array Ac[4096] output;
var r = 0.0;
for (i = 0; i < 4096; i += 1) {
  Fo[i] = i * 0.019;
  Ve[i] = 0.5 - i * 0.0001;
}
for (s = 0; s < 8; s += 1) {
  for (i = 0; i < 4096; i += 1) {
    r = Fo[i] * 0.01;
    if (r < 0.4) { Ve[i] = Ve[i] + r * 0.5; }
    if (r > 0.6) { Ac[i] = Ac[i] - r * 0.25 + Ve[i] * 0.125; }
    Fo[i] = Fo[i] * 0.9993 + 0.003;
  }
}
)";

// --- ora: optical ray tracing ---------------------------------------------------
// One large, loop-free FP block per ray (the paper: "most of the execution
// time is spent in a large, loop-free subroutine"): unrolling is disabled by
// the size limit and there is virtually nothing for loads to hide.
const char *OraSrc = R"(
array Ro[16] output;
var x = 0.0;
var y = 0.0;
var z = 0.0;
var dx = 0.30;
var dy = 0.36;
var dz = 0.88;
var q0 = 0.0;
var q1 = 0.0;
var q2 = 0.0;
var q3 = 0.0;
var q4 = 0.0;
var acc = 0.0;
for (ray = 0; ray < 1200; ray += 1) {
  x = ray * 0.001 + 0.1;
  y = x * 0.5 - 0.2;
  z = 1.0 - x * 0.25;
  q0 = x * dx + y * dy + z * dz;
  q1 = x * x + y * y + z * z - q0 * q0;
  q2 = (4.0 - q1) / (1.0 + q0 * q0);
  q3 = q0 - q2 * 0.5;
  x = x + dx * q3;
  y = y + dy * q3;
  z = z + dz * q3;
  q4 = 2.0 / (x * x + y * y + z * z + 0.5);
  dx = dx - x * q4;
  dy = dy - y * q4;
  dz = dz - z * q4;
  q0 = x * dx + y * dy + z * dz;
  q1 = x * x + y * y + z * z - q0 * q0;
  q2 = (9.0 - q1) / (1.0 + q0 * q0);
  q3 = q0 + q2 * 0.25;
  x = x + dx * q3;
  y = y + dy * q3;
  z = z + dz * q3;
  q4 = 1.5 / (x * x + y * y + z * z + 0.25);
  dx = dx + x * q4 * 0.1;
  dy = dy + y * q4 * 0.1;
  dz = dz + z * q4 * 0.1;
  acc = acc + q3 * q4 - q2 * 0.01;
}
Ro[0] = acc;
Ro[1] = x;
Ro[2] = y;
Ro[3] = z;
Ro[4] = dx;
Ro[5] = dy;
Ro[6] = dz;
)";

// --- spice2g6: circuit simulation -----------------------------------------------
// Sparse-matrix-style indirection: every access goes through an index array,
// so no affine forms, no locality information, conservative memory
// dependences, tiny schedulable blocks — and a large load-interlock share
// that no scheduler can hide (spice wastes ~30% of cycles either way in
// Table 5).
const char *SpiceSrc = R"(
array idx[4096] int;
array Vv[4096];
array Ii[4096] output;
var j int = 0;
var g = 0.0;
for (a = 0; a < 64; a += 1) {
  for (b = 0; b < 64; b += 1) { idx[a * 64 + b] = b * 64 + a; }
}
for (i = 0; i < 4096; i += 1) { Vv[i] = i * 0.0007 + 0.05; }
for (s = 0; s < 8; s += 1) {
  for (i = 0; i < 4096; i += 1) {
    j = idx[i];
    g = Vv[j] * 0.35 + 0.01;
    Ii[j] = Ii[j] + g;
    Vv[j] = Vv[j] * 0.998 + g * 0.05;
  }
}
)";

// --- su2cor: quark-gluon masses ---------------------------------------------------
// Gather through a link table plus a serial accumulation chain.
const char *Su2corSrc = R"(
array lk[2048] int;
array Sa[2048];
array Sb[2048];
array Pr[8] output;
var k int = 0;
var p = 0.0;
var q = 1.0;
for (a = 0; a < 32; a += 1) {
  for (b = 0; b < 64; b += 1) { lk[a * 64 + b] = b * 32 + a; }
}
for (i = 0; i < 2048; i += 1) {
  Sa[i] = i * 0.0011 + 0.3;
  Sb[i] = 0.7 - i * 0.0003;
}
for (s = 0; s < 10; s += 1) {
  for (i = 0; i < 2048; i += 1) {
    k = lk[i];
    p = Sa[k] * Sb[i] + Sa[i] * Sb[k];
    q = q * 0.9995 + p * 0.001;
  }
}
Pr[0] = q;
)";

// --- swm256: shallow-water equations ------------------------------------------------
// A stencil whose body size trips the 64-instruction cap at factor 4 (only
// partial unrolling) while the 128-instruction cap at factor 8 admits more —
// the paper's footnoted swm256 behaviour.
const char *Swm256Src = R"(
array Pp[128][128];
array Uu[128][128];
array Vw[128][128] output;
var cu = 0.12;
var cv = 0.08;
for (i = 0; i < 128; i += 1) {
  for (j = 0; j < 128; j += 1) {
    Pp[i][j] = 10.0 + i * 0.01 - j * 0.008;
    Uu[i][j] = i * 0.002;
    Vw[i][j] = j * 0.003;
  }
}
for (t = 0; t < 2; t += 1) {
  for (i = 0; i < 127; i += 1) {
    for (j = 0; j < 127; j += 1) {
      Uu[i][j] = Uu[i][j] + cu * (Pp[i][j + 1] - Pp[i][j]);
      Vw[i][j] = Vw[i][j] + cv * (Pp[i + 1][j] - Pp[i][j]);
      Pp[i][j] = Pp[i][j] * 0.999
               + (Uu[i][j] + Vw[i][j] + Uu[i][j + 1]) * 0.001;
    }
  }
}
)";

// --- tomcatv: mesh generation -------------------------------------------------------
// Very sequential reads of large read-only grids: the locality-analysis star
// (the paper reports a 1.5 speedup for tomcatv from LA alone).
const char *TomcatvSrc = R"(
array Xg[128][128];
array Yg[128][128];
array RX[128][128] output;
array RY[128][128] output;
var xx = 0.0;
var yx = 0.0;
var xy = 0.0;
for (i = 0; i < 128; i += 1) {
  for (j = 0; j < 128; j += 1) {
    Xg[i][j] = i * 0.013 + j * 0.005;
    Yg[i][j] = i * 0.004 - j * 0.011;
  }
}
for (t = 0; t < 2; t += 1) {
  for (i = 1; i < 127; i += 1) {
    for (j = 1; j < 127; j += 1) {
      xx = Xg[i][j + 1] - Xg[i][j - 1];
      xy = Xg[i + 1][j] - Xg[i - 1][j];
      yx = Yg[i][j + 1] - Yg[i][j - 1];
      RX[i][j] = xx * 0.5 + xy * 0.25 + yx * 0.125;
      RY[i][j] = yx * 0.5 - xx * 0.25 + xy * 0.0625;
    }
  }
}
)";

const std::vector<Workload> AllWorkloads = {
    {"ARC2D", "Fortran",
     "Two-dimensional fluid flow problem solver using Euler equations",
     "unrollable stencil sweeps over L2-sized grids", Arc2dSrc},
    {"BDNA", "Fortran",
     "Simulation of hydration structure and dynamics of nucleic acids",
     "huge straight-line blocks; size limit disables unrolling", BdnaSrc},
    {"DYFESM", "Fortran",
     "Structural dynamics benchmark to solve displacements and stresses",
     "50/50 data-dependent branches; no dominant trace", DyfesmSrc},
    {"MDG", "Fortran",
     "Molecular dynamic simulation of flexible water molecules",
     "serial FP-divide chains; fixed-latency interlocks dominate", MdgSrc},
    {"QCD2", "Fortran", "Lattice-gauge QCD simulation",
     "full-line strides over huge arrays; no spatial reuse", Qcd2Src},
    {"TRFD", "Fortran", "Two-electron integral transformation",
     "triangular loops, many live temporaries; spills at LU8", TrfdSrc},
    {"alvinn", "C", "Trains a neural network using back propagation",
     "matrix-vector sweeps; unrolling removes branch overhead", AlvinnSrc},
    {"dnasa7", "Fortran", "Matrix manipulation routines",
     "dense matrix multiply; biggest unrolling winner", Dnasa7Src},
    {"doduc", "Fortran",
     "Monte Carlo simulation of the time evolution of a nuclear reactor "
     "component",
     "branchy loops plus many phases; I-cache pressure at LU8", DoducSrc},
    {"ear", "C", "Simulates the propagation of sound in the human cochlea",
     "loop-carried filter recurrences; minimal load-level parallelism",
     EarSrc},
    {"hydro2d", "Fortran",
     "Solves hydrodynamical Navier Stokes equations to compute galactical "
     "jets",
     "flux-difference stencils; good unrolling response", Hydro2dSrc},
    {"mdljdp2", "Fortran",
     "Chemical application program that solves equations of motion for atoms",
     "two non-predicable conditionals disable unrolling", Mdljdp2Src},
    {"ora", "Fortran",
     "Traces rays through an optical system composed of spherical and planar "
     "surfaces",
     "one large loop-free FP block; optimizations are no-ops", OraSrc},
    {"spice2g6", "Fortran", "Circuit simulation package",
     "indirect sparse accesses; no locality info, conservative deps",
     SpiceSrc},
    {"su2cor", "Fortran",
     "Computes masses of elementary particles in the framework of the "
     "Quark-Gluon theory",
     "gather through a link table plus serial accumulation", Su2corSrc},
    {"swm256", "Fortran",
     "Solves shallow water equations using finite difference equations",
     "body trips the 64-instruction cap at LU4; LU8 unrolls further",
     Swm256Src},
    {"tomcatv", "Fortran", "Vectorized mesh generation program",
     "sequential read-only sweeps; the locality-analysis star", TomcatvSrc},
};

} // namespace

const std::vector<Workload> &driver::workloads() { return AllWorkloads; }

const Workload *driver::findWorkload(const std::string &Name) {
  for (const Workload &W : AllWorkloads)
    if (Name == W.Name)
      return &W;
  return nullptr;
}

lang::Program driver::parseWorkload(const Workload &W) {
  lang::ParseResult R = lang::parseProgram(W.Source, W.Name);
  if (!R.ok()) {
    std::fprintf(stderr, "workload %s: %s\n", W.Name, R.Error.c_str());
    std::abort();
  }
  if (std::string E = lang::checkProgram(R.Prog); !E.empty()) {
    std::fprintf(stderr, "workload %s: %s\n", W.Name, E.c_str());
    std::abort();
  }
  return std::move(R.Prog);
}
