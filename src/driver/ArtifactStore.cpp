//===- driver/ArtifactStore.cpp - Persistent artifact store -----------------===//

#include "driver/ArtifactStore.h"

#include "driver/Artifacts.h"
#include "support/Serialize.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include <unistd.h>

using namespace bsched;
using namespace bsched::driver;

namespace {

// File layout, all little-endian:
//   u32 magic  u32 schema-version  str key  str payload  u64 checksum
// where str = u64 length + bytes and the checksum is FNV-1a over every
// preceding byte (header included, so a flipped version or key byte fails
// the checksum too, independent of the field comparisons).
constexpr uint32_t ArtifactMagic = 0x52415342u; // "BSAR"

struct StoreState {
  std::mutex Mu;
  std::string Dir;
  bool DirResolved = false;
  std::atomic<bool> ReadsEnabled{true};

  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> DiskMisses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> WriteFailures{0};
  std::atomic<uint64_t> CorruptRejected{0};
  std::atomic<uint64_t> VersionRejected{0};
  std::atomic<uint64_t> KeyRejected{0};
};

StoreState &state() {
  static StoreState S;
  return S;
}

/// Key -> file name: FNV-1a over the schema version then the key bytes.
/// The version participates so a schema bump changes the addresses as well
/// as the headers — stale entries become invisible, not just rejected.
std::string fileNameForKey(const std::string &Key) {
  Fnv1a H;
  H.word(ArtifactSchemaVersion);
  H.str(Key);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.art",
                static_cast<unsigned long long>(H.get()));
  return Buf;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (In.bad())
    return false;
  Out = std::move(Data);
  return true;
}

} // namespace

void driver::setArtifactStoreDir(const std::string &Dir) {
  StoreState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Dir = Dir;
  S.DirResolved = true;
  if (!Dir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Dir, EC);
    if (EC)
      S.Dir.clear(); // unusable directory: stay disabled, never throw.
  }
}

std::string driver::artifactStoreDir() {
  StoreState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (!S.DirResolved) {
    S.DirResolved = true;
    if (const char *Env = std::getenv("BSCHED_ARTIFACT_DIR");
        Env && Env[0] != '\0') {
      S.Dir = Env;
      std::error_code EC;
      std::filesystem::create_directories(S.Dir, EC);
      if (EC)
        S.Dir.clear();
    }
  }
  return S.Dir;
}

bool driver::artifactStoreEnabled() { return !artifactStoreDir().empty(); }

void driver::setArtifactStoreReads(bool Enabled) {
  state().ReadsEnabled.store(Enabled, std::memory_order_relaxed);
}

bool driver::artifactStoreReads() {
  return state().ReadsEnabled.load(std::memory_order_relaxed);
}

ArtifactStoreStats driver::artifactStoreStats() {
  StoreState &S = state();
  ArtifactStoreStats R;
  R.DiskHits = S.DiskHits.load(std::memory_order_relaxed);
  R.DiskMisses = S.DiskMisses.load(std::memory_order_relaxed);
  R.Writes = S.Writes.load(std::memory_order_relaxed);
  R.WriteFailures = S.WriteFailures.load(std::memory_order_relaxed);
  R.CorruptRejected = S.CorruptRejected.load(std::memory_order_relaxed);
  R.VersionRejected = S.VersionRejected.load(std::memory_order_relaxed);
  R.KeyRejected = S.KeyRejected.load(std::memory_order_relaxed);
  return R;
}

void driver::resetArtifactStoreStats() {
  StoreState &S = state();
  S.DiskHits.store(0, std::memory_order_relaxed);
  S.DiskMisses.store(0, std::memory_order_relaxed);
  S.Writes.store(0, std::memory_order_relaxed);
  S.WriteFailures.store(0, std::memory_order_relaxed);
  S.CorruptRejected.store(0, std::memory_order_relaxed);
  S.VersionRejected.store(0, std::memory_order_relaxed);
  S.KeyRejected.store(0, std::memory_order_relaxed);
}

std::string driver::artifactPath(const std::string &Key) {
  std::string Dir = artifactStoreDir();
  if (Dir.empty())
    return std::string();
  return Dir + "/" + fileNameForKey(Key);
}

bool driver::loadArtifact(const std::string &Key, std::string &PayloadOut) {
  if (!artifactStoreEnabled() || !artifactStoreReads())
    return false;
  StoreState &S = state();

  std::string Data;
  if (!readFile(artifactPath(Key), Data)) {
    S.DiskMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Checksum over everything but the trailing checksum word itself. Checked
  // before any field is interpreted so no corrupt byte — in header, key or
  // payload — survives to the comparisons below.
  if (Data.size() < 8) {
    S.CorruptRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  size_t BodyLen = Data.size() - 8;
  uint64_t Stored = 0;
  for (int I = 0; I != 8; ++I)
    Stored |= static_cast<uint64_t>(
                  static_cast<unsigned char>(Data[BodyLen + I]))
              << (8 * I);
  if (fnv1a(Data.data(), BodyLen) != Stored) {
    S.CorruptRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  ByteReader R(Data.data(), BodyLen);
  if (R.u32() != ArtifactMagic) {
    S.CorruptRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (R.u32() != ArtifactSchemaVersion) {
    S.VersionRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (R.str() != Key || !R.ok()) {
    // With the checksum already verified this is a genuine file-name hash
    // collision (or a truncated key read): someone else's artifact.
    S.KeyRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string Payload = R.str();
  if (!R.ok() || !R.atEnd()) {
    S.CorruptRejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  S.DiskHits.fetch_add(1, std::memory_order_relaxed);
  PayloadOut = std::move(Payload);
  return true;
}

bool driver::storeArtifact(const std::string &Key, const std::string &Payload) {
  if (!artifactStoreEnabled())
    return false;
  StoreState &S = state();

  ByteWriter W;
  W.u32(ArtifactMagic);
  W.u32(ArtifactSchemaVersion);
  W.str(Key);
  W.str(Payload);
  uint64_t Check = fnv1a(W.buffer());
  W.u64(Check);

  // Unique temp name per write (pid + process-wide counter), renamed into
  // place: a reader either sees the old complete file or the new complete
  // file, and concurrent writers of one key resolve to last-writer-wins.
  static std::atomic<uint64_t> Seq{0};
  std::string Final = artifactPath(Key);
  std::string Tmp = Final + ".tmp." +
                    std::to_string(static_cast<unsigned long>(::getpid())) +
                    "." +
                    std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      S.WriteFailures.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Out.write(W.buffer().data(),
              static_cast<std::streamsize>(W.buffer().size()));
    Out.flush();
    if (!Out) {
      S.WriteFailures.fetch_add(1, std::memory_order_relaxed);
      Out.close();
      std::error_code EC;
      std::filesystem::remove(Tmp, EC);
      return false;
    }
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    S.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  S.Writes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void driver::noteArtifactDecodeFailure() {
  StoreState &S = state();
  S.DiskHits.fetch_sub(1, std::memory_order_relaxed);
  S.CorruptRejected.fetch_add(1, std::memory_order_relaxed);
}
