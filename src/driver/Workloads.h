//===- driver/Workloads.h - The Table-1 workload analogues ------*- C++ -*-===//
///
/// \file
/// Seventeen synthetic kernels standing in for the paper's Perfect Club and
/// SPEC92 programs (Table 1). The originals are proprietary Fortran/C codes;
/// each analogue is written in the kernel language and engineered to exhibit
/// the behaviour the paper reports for its namesake — which loops unroll,
/// where register pressure bites, which programs are dominated by fixed
/// latency interlocks, where locality analysis applies, and so on. See
/// DESIGN.md section 4 for the per-kernel intent.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_DRIVER_WORKLOADS_H
#define BALSCHED_DRIVER_WORKLOADS_H

#include "lang/AST.h"

#include <string>
#include <vector>

namespace bsched {
namespace driver {

struct Workload {
  const char *Name;        ///< the paper benchmark this one mirrors.
  const char *Language;    ///< the original's language ("Fortran" / "C").
  const char *Description; ///< Table-1 description of the original.
  const char *Behaviour;   ///< what the analogue is engineered to do.
  const char *Source;      ///< kernel-language text.
};

/// The full 17-kernel workload, in the paper's Table-1 order.
const std::vector<Workload> &workloads();

/// Looks a workload up by name; nullptr if unknown.
const Workload *findWorkload(const std::string &Name);

/// Parses and checks a workload's source (aborts the process on error —
/// workload sources are compiled-in constants validated by the test suite).
lang::Program parseWorkload(const Workload &W);

} // namespace driver
} // namespace bsched

#endif // BALSCHED_DRIVER_WORKLOADS_H
