//===- driver/Artifacts.cpp - Binary codecs for pipeline results -----------===//

#include "driver/Artifacts.h"

#include <limits>

using namespace bsched;
using namespace bsched::driver;

namespace {

// Decoded enums are range-checked before the static_cast: an enum value a
// newer (or corrupted) file invented must fail the decode, not materialize
// as an out-of-range enumerator that downstream switch statements trust.
template <typename EnumT>
bool decodeEnum(ByteReader &R, EnumT &Out, uint8_t MaxValue) {
  uint8_t V = R.u8();
  if (!R.ok() || V > MaxValue)
    return false;
  Out = static_cast<EnumT>(V);
  return true;
}

//===----------------------------------------------------------------------===//
// Leaf statistics
//===----------------------------------------------------------------------===//

void encodeCacheStats(ByteWriter &W, const sim::CacheStats &S) {
  W.u64(S.Accesses);
  W.u64(S.Misses);
}
bool decodeCacheStats(ByteReader &R, sim::CacheStats &S) {
  S.Accesses = R.u64();
  S.Misses = R.u64();
  return R.ok();
}

void encodeCounts(ByteWriter &W, const sim::InstrCounts &C) {
  W.u64(C.ShortInt);
  W.u64(C.LongInt);
  W.u64(C.ShortFp);
  W.u64(C.LongFp);
  W.u64(C.Loads);
  W.u64(C.Stores);
  W.u64(C.Branches);
  W.u64(C.Spills);
  W.u64(C.Restores);
}
bool decodeCounts(ByteReader &R, sim::InstrCounts &C) {
  C.ShortInt = R.u64();
  C.LongInt = R.u64();
  C.ShortFp = R.u64();
  C.LongFp = R.u64();
  C.Loads = R.u64();
  C.Stores = R.u64();
  C.Branches = R.u64();
  C.Spills = R.u64();
  C.Restores = R.u64();
  return R.ok();
}

void encodeUnroll(ByteWriter &W, const xform::UnrollStats &S) {
  W.i64(S.LoopsConsidered);
  W.i64(S.LoopsUnrolled);
  W.i64(S.LoopsFullyUnrolled);
  W.i64(S.LoopsSkippedBranches);
  W.i64(S.LoopsSkippedSize);
}
bool decodeUnroll(ByteReader &R, xform::UnrollStats &S) {
  S.LoopsConsidered = static_cast<int>(R.i64());
  S.LoopsUnrolled = static_cast<int>(R.i64());
  S.LoopsFullyUnrolled = static_cast<int>(R.i64());
  S.LoopsSkippedBranches = static_cast<int>(R.i64());
  S.LoopsSkippedSize = static_cast<int>(R.i64());
  return R.ok();
}

void encodeLocality(ByteWriter &W, const locality::LocalityStats &S) {
  W.i64(S.LoopsAnalyzed);
  W.i64(S.LoopsPeeled);
  W.i64(S.LoopsUnrolled);
  W.i64(S.TemporalRefs);
  W.i64(S.SpatialRefs);
  W.i64(S.RefsNoInfo);
}
bool decodeLocality(ByteReader &R, locality::LocalityStats &S) {
  S.LoopsAnalyzed = static_cast<int>(R.i64());
  S.LoopsPeeled = static_cast<int>(R.i64());
  S.LoopsUnrolled = static_cast<int>(R.i64());
  S.TemporalRefs = static_cast<int>(R.i64());
  S.SpatialRefs = static_cast<int>(R.i64());
  S.RefsNoInfo = static_cast<int>(R.i64());
  return R.ok();
}

void encodeTrace(ByteWriter &W, const trace::TraceStats &S) {
  W.i64(S.Traces);
  W.i64(S.MultiBlockTraces);
  W.i64(S.LongestTrace);
  W.i64(S.CompensationBlocks);
  W.i64(S.CompensationInstrs);
  W.u64(S.FormNs);
  W.u64(S.CompactNs);
  W.u64(S.WeightsNs);
  W.u64(S.CompensationNs);
  W.u64(S.Formed.size());
  for (const trace::Trace &T : S.Formed) {
    W.u64(T.size());
    for (int B : T)
      W.i64(B);
  }
}
bool decodeTrace(ByteReader &R, trace::TraceStats &S) {
  S.Traces = static_cast<int>(R.i64());
  S.MultiBlockTraces = static_cast<int>(R.i64());
  S.LongestTrace = static_cast<int>(R.i64());
  S.CompensationBlocks = static_cast<int>(R.i64());
  S.CompensationInstrs = static_cast<int>(R.i64());
  S.FormNs = R.u64();
  S.CompactNs = R.u64();
  S.WeightsNs = R.u64();
  S.CompensationNs = R.u64();
  uint64_t NumTraces = R.u64();
  if (!R.canHold(NumTraces, 8))
    return false;
  S.Formed.clear();
  S.Formed.reserve(NumTraces);
  for (uint64_t I = 0; I != NumTraces; ++I) {
    uint64_t Len = R.u64();
    if (!R.canHold(Len, 8))
      return false;
    trace::Trace T;
    T.reserve(Len);
    for (uint64_t J = 0; J != Len; ++J)
      T.push_back(static_cast<int>(R.i64()));
    S.Formed.push_back(std::move(T));
  }
  return R.ok();
}

void encodeRegAlloc(ByteWriter &W, const regalloc::RegAllocStats &S) {
  W.u64(S.IntRegsUsed);
  W.u64(S.FpRegsUsed);
  W.i64(S.SpilledVRegs);
  W.i64(S.SpillStores);
  W.i64(S.RestoreLoads);
  W.i64(S.Remats);
  W.str(S.Error);
}
bool decodeRegAlloc(ByteReader &R, regalloc::RegAllocStats &S) {
  S.IntRegsUsed = static_cast<unsigned>(R.u64());
  S.FpRegsUsed = static_cast<unsigned>(R.u64());
  S.SpilledVRegs = static_cast<int>(R.i64());
  S.SpillStores = static_cast<int>(R.i64());
  S.RestoreLoads = static_cast<int>(R.i64());
  S.Remats = static_cast<int>(R.i64());
  S.Error = R.str();
  return R.ok();
}

void encodeCleanup(ByteWriter &W, const opt::CleanupStats &S) {
  W.i64(S.CopiesPropagated);
  W.i64(S.ConstantsFolded);
  W.i64(S.Hoisted);
  W.i64(S.DeadRemoved);
  W.i64(S.Iterations);
  W.i64(S.LivenessFullComputes);
  W.i64(S.LivenessIncrementalUpdates);
  W.i64(S.BlocksSkipped);
}
bool decodeCleanup(ByteReader &R, opt::CleanupStats &S) {
  S.CopiesPropagated = static_cast<int>(R.i64());
  S.ConstantsFolded = static_cast<int>(R.i64());
  S.Hoisted = static_cast<int>(R.i64());
  S.DeadRemoved = static_cast<int>(R.i64());
  S.Iterations = static_cast<int>(R.i64());
  S.LivenessFullComputes = static_cast<int>(R.i64());
  S.LivenessIncrementalUpdates = static_cast<int>(R.i64());
  S.BlocksSkipped = static_cast<int>(R.i64());
  return R.ok();
}

void encodeExact(ByteWriter &W, const sched::exact::ExactStats &S) {
  W.u64(S.BlocksAttempted);
  W.u64(S.BlocksClosed);
  W.u64(S.BlocksTimedOut);
  W.u64(S.BlocksTooLarge);
  W.u64(S.BlocksImproved);
  W.u64(S.FastCycles);
  W.u64(S.ExactCycles);
  W.u64(S.Expanded);
}
bool decodeExact(ByteReader &R, sched::exact::ExactStats &S) {
  S.BlocksAttempted = static_cast<unsigned>(R.u64());
  S.BlocksClosed = static_cast<unsigned>(R.u64());
  S.BlocksTimedOut = static_cast<unsigned>(R.u64());
  S.BlocksTooLarge = static_cast<unsigned>(R.u64());
  S.BlocksImproved = static_cast<unsigned>(R.u64());
  S.FastCycles = R.u64();
  S.ExactCycles = R.u64();
  S.Expanded = R.u64();
  return R.ok();
}

void encodeDiag(ByteWriter &W, const verify::Diagnostic &D) {
  W.u8(static_cast<uint8_t>(D.Kind));
  W.i64(D.Block);
  W.i64(D.Instr);
  W.str(D.Message);
}
bool decodeDiag(ByteReader &R, verify::Diagnostic &D) {
  if (!decodeEnum(R, D.Kind, static_cast<uint8_t>(verify::Check::Locality)))
    return false;
  D.Block = static_cast<int>(R.i64());
  D.Instr = static_cast<int>(R.i64());
  D.Message = R.str();
  return R.ok();
}

//===----------------------------------------------------------------------===//
// IR
//===----------------------------------------------------------------------===//

void encodeMemRef(ByteWriter &W, const ir::MemRef &M) {
  W.i64(M.ArrayId);
  W.b(M.HasForm);
  W.u64(M.Terms.size());
  for (const ir::MemRef::Term &T : M.Terms) {
    W.u32(T.RegId);
    W.i64(T.Coeff);
  }
  W.i64(M.Const);
  W.i64(M.Size);
}
bool decodeMemRef(ByteReader &R, ir::MemRef &M) {
  M.ArrayId = static_cast<int>(R.i64());
  M.HasForm = R.b();
  uint64_t NumTerms = R.u64();
  if (!R.canHold(NumTerms, 12))
    return false;
  M.Terms.clear();
  M.Terms.reserve(NumTerms);
  for (uint64_t I = 0; I != NumTerms; ++I) {
    ir::MemRef::Term T;
    T.RegId = R.u32();
    T.Coeff = R.i64();
    M.Terms.push_back(T);
  }
  M.Const = R.i64();
  M.Size = static_cast<int>(R.i64());
  return R.ok();
}

void encodeInstr(ByteWriter &W, const ir::Instr &I) {
  W.u8(static_cast<uint8_t>(I.Op));
  W.u32(I.Dst.Id);
  W.u32(I.SrcA.Id);
  W.u32(I.SrcB.Id);
  W.u32(I.SrcC.Id);
  W.i64(I.Imm);
  W.b(I.HasImm);
  W.u32(I.Base.Id);
  W.i64(I.Offset);
  encodeMemRef(W, I.Mem);
  W.u8(static_cast<uint8_t>(I.HM));
  W.i64(I.LocalityGroup);
  W.b(I.IsSpill);
  W.b(I.IsRestore);
  W.b(I.IsRemat);
  W.i64(I.Target0);
  W.i64(I.Target1);
}
bool decodeInstr(ByteReader &R, ir::Instr &I) {
  if (!decodeEnum(R, I.Op, static_cast<uint8_t>(ir::Opcode::Ret)))
    return false;
  I.Dst = ir::Reg(R.u32());
  I.SrcA = ir::Reg(R.u32());
  I.SrcB = ir::Reg(R.u32());
  I.SrcC = ir::Reg(R.u32());
  I.Imm = R.i64();
  I.HasImm = R.b();
  I.Base = ir::Reg(R.u32());
  I.Offset = R.i64();
  if (!decodeMemRef(R, I.Mem))
    return false;
  if (!decodeEnum(R, I.HM, static_cast<uint8_t>(ir::HitMiss::Miss)))
    return false;
  I.LocalityGroup = static_cast<int>(R.i64());
  I.IsSpill = R.b();
  I.IsRestore = R.b();
  I.IsRemat = R.b();
  I.Target0 = static_cast<int>(R.i64());
  I.Target1 = static_cast<int>(R.i64());
  return R.ok();
}

void encodeArray(ByteWriter &W, const ir::ArrayInfo &A) {
  W.str(A.Name);
  W.u64(A.Dims.size());
  for (int64_t D : A.Dims)
    W.i64(D);
  W.i64(A.ElemSize);
  W.b(A.RowMajor);
  W.b(A.IsOutput);
  W.u64(A.Base);
}
bool decodeArray(ByteReader &R, ir::ArrayInfo &A) {
  A.Name = R.str();
  uint64_t NumDims = R.u64();
  if (!R.canHold(NumDims, 8))
    return false;
  A.Dims.clear();
  A.Dims.reserve(NumDims);
  for (uint64_t I = 0; I != NumDims; ++I)
    A.Dims.push_back(R.i64());
  A.ElemSize = static_cast<int>(R.i64());
  A.RowMajor = R.b();
  A.IsOutput = R.b();
  A.Base = R.u64();
  return R.ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public codecs
//===----------------------------------------------------------------------===//

void driver::encode(ByteWriter &W, const sim::SimResult &R) {
  W.b(R.Finished);
  W.str(R.Error);
  W.u64(R.Checksum);
  W.u64(R.Cycles);
  encodeCounts(W, R.Counts);
  W.u64(R.LoadInterlockCycles);
  W.u64(R.FixedInterlockCycles);
  W.u64(R.ICacheStallCycles);
  W.u64(R.ITlbStallCycles);
  W.u64(R.DTlbStallCycles);
  W.u64(R.BranchPenaltyCycles);
  W.u64(R.MshrStallCycles);
  W.u64(R.WriteBufferStallCycles);
  encodeCacheStats(W, R.L1D);
  encodeCacheStats(W, R.L2);
  encodeCacheStats(W, R.L3);
  encodeCacheStats(W, R.L1I);
  W.u64(R.DTlbMisses);
  W.u64(R.ITlbMisses);
  W.u64(R.BranchMispredicts);
}

bool driver::decode(ByteReader &R, sim::SimResult &Out) {
  Out = sim::SimResult();
  Out.Finished = R.b();
  Out.Error = R.str();
  Out.Checksum = R.u64();
  Out.Cycles = R.u64();
  if (!decodeCounts(R, Out.Counts))
    return false;
  Out.LoadInterlockCycles = R.u64();
  Out.FixedInterlockCycles = R.u64();
  Out.ICacheStallCycles = R.u64();
  Out.ITlbStallCycles = R.u64();
  Out.DTlbStallCycles = R.u64();
  Out.BranchPenaltyCycles = R.u64();
  Out.MshrStallCycles = R.u64();
  Out.WriteBufferStallCycles = R.u64();
  if (!decodeCacheStats(R, Out.L1D) || !decodeCacheStats(R, Out.L2) ||
      !decodeCacheStats(R, Out.L3) || !decodeCacheStats(R, Out.L1I))
    return false;
  Out.DTlbMisses = R.u64();
  Out.ITlbMisses = R.u64();
  Out.BranchMispredicts = R.u64();
  return R.ok();
}

void driver::encode(ByteWriter &W, const ir::InterpResult &R) {
  W.b(R.Finished);
  W.u64(R.DynInstrs);
  W.u64(R.Checksum);
  W.u64(R.BlockCounts.size());
  for (uint64_t C : R.BlockCounts)
    W.u64(C);
  W.u64(R.EdgeCounts.size());
  for (const auto &E : R.EdgeCounts) {
    W.u64(E[0]);
    W.u64(E[1]);
  }
}

bool driver::decode(ByteReader &R, ir::InterpResult &Out) {
  Out = ir::InterpResult();
  Out.Finished = R.b();
  Out.DynInstrs = R.u64();
  Out.Checksum = R.u64();
  uint64_t NumBlocks = R.u64();
  if (!R.canHold(NumBlocks, 8))
    return false;
  Out.BlockCounts.reserve(NumBlocks);
  for (uint64_t I = 0; I != NumBlocks; ++I)
    Out.BlockCounts.push_back(R.u64());
  uint64_t NumEdges = R.u64();
  if (!R.canHold(NumEdges, 16))
    return false;
  Out.EdgeCounts.reserve(NumEdges);
  for (uint64_t I = 0; I != NumEdges; ++I) {
    std::array<uint64_t, 2> E;
    E[0] = R.u64();
    E[1] = R.u64();
    Out.EdgeCounts.push_back(E);
  }
  return R.ok();
}

void driver::encode(ByteWriter &W, const ir::Module &M) {
  W.u64(M.Arrays.size());
  for (const ir::ArrayInfo &A : M.Arrays)
    encodeArray(W, A);
  W.str(M.Fn.Name);
  W.u64(M.Fn.RegClasses.size());
  for (ir::RegClass C : M.Fn.RegClasses)
    W.u8(static_cast<uint8_t>(C));
  W.u64(M.Fn.Blocks.size());
  for (const ir::BasicBlock &B : M.Fn.Blocks) {
    W.i64(B.Id);
    W.i64(B.ExactTripCount);
    W.u64(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs)
      encodeInstr(W, I);
  }
  W.u64(M.MemorySize);
  W.i64(M.SpillArrayId);
}

bool driver::decode(ByteReader &R, ir::Module &Out) {
  Out = ir::Module();
  uint64_t NumArrays = R.u64();
  if (!R.canHold(NumArrays, 8))
    return false;
  Out.Arrays.reserve(NumArrays);
  for (uint64_t I = 0; I != NumArrays; ++I) {
    ir::ArrayInfo A;
    if (!decodeArray(R, A))
      return false;
    Out.Arrays.push_back(std::move(A));
  }
  Out.Fn.Name = R.str();
  uint64_t NumRegs = R.u64();
  if (!R.canHold(NumRegs, 1))
    return false;
  // Function() pre-seeds the physical registers; rebuild the class table
  // from the encoded one wholesale (it covers the physical ids too).
  Out.Fn.RegClasses.clear();
  Out.Fn.RegClasses.reserve(NumRegs);
  for (uint64_t I = 0; I != NumRegs; ++I) {
    ir::RegClass C;
    if (!decodeEnum(R, C, static_cast<uint8_t>(ir::RegClass::Fp)))
      return false;
    Out.Fn.RegClasses.push_back(C);
  }
  uint64_t NumBlocks = R.u64();
  if (!R.canHold(NumBlocks, 16))
    return false;
  Out.Fn.Blocks.clear();
  Out.Fn.Blocks.reserve(NumBlocks);
  for (uint64_t I = 0; I != NumBlocks; ++I) {
    ir::BasicBlock B;
    B.Id = static_cast<int>(R.i64());
    B.ExactTripCount = R.i64();
    uint64_t NumInstrs = R.u64();
    // An Instr encodes to well over 64 bytes; 16 is a safe floor that still
    // rejects absurd counts before the reserve.
    if (!R.canHold(NumInstrs, 16))
      return false;
    B.Instrs.reserve(NumInstrs);
    for (uint64_t J = 0; J != NumInstrs; ++J) {
      ir::Instr Ins;
      if (!decodeInstr(R, Ins))
        return false;
      B.Instrs.push_back(std::move(Ins));
    }
    Out.Fn.Blocks.push_back(std::move(B));
  }
  Out.MemorySize = R.u64();
  Out.SpillArrayId = static_cast<int>(R.i64());
  return R.ok();
}

void driver::encode(ByteWriter &W, const CompileResult &C) {
  encode(W, C.M);
  W.str(C.Error);
  encodeUnroll(W, C.Unroll);
  encodeCleanup(W, C.Cleanup);
  encodeLocality(W, C.Locality);
  encodeTrace(W, C.Trace);
  encodeRegAlloc(W, C.RegAlloc);
  encodeExact(W, C.Exact);
  W.u64(C.VerifyDiags.size());
  for (const verify::Diagnostic &D : C.VerifyDiags)
    encodeDiag(W, D);
}

bool driver::decode(ByteReader &R, CompileResult &Out) {
  Out = CompileResult();
  if (!decode(R, Out.M))
    return false;
  Out.Error = R.str();
  if (!decodeUnroll(R, Out.Unroll) || !decodeCleanup(R, Out.Cleanup) ||
      !decodeLocality(R, Out.Locality) || !decodeTrace(R, Out.Trace) ||
      !decodeRegAlloc(R, Out.RegAlloc) || !decodeExact(R, Out.Exact))
    return false;
  uint64_t NumDiags = R.u64();
  if (!R.canHold(NumDiags, 16))
    return false;
  Out.VerifyDiags.reserve(NumDiags);
  for (uint64_t I = 0; I != NumDiags; ++I) {
    verify::Diagnostic D;
    if (!decodeDiag(R, D))
      return false;
    Out.VerifyDiags.push_back(std::move(D));
  }
  return R.ok();
}

void driver::encode(ByteWriter &W, const RunResult &R) {
  W.str(R.Error);
  encode(W, R.Sim);
  encodeUnroll(W, R.Unroll);
  encodeLocality(W, R.Locality);
  encodeTrace(W, R.Trace);
  encodeRegAlloc(W, R.RegAlloc);
}

bool driver::decode(ByteReader &R, RunResult &Out) {
  Out = RunResult();
  Out.Error = R.str();
  if (!decode(R, Out.Sim))
    return false;
  if (!decodeUnroll(R, Out.Unroll) || !decodeLocality(R, Out.Locality) ||
      !decodeTrace(R, Out.Trace) || !decodeRegAlloc(R, Out.RegAlloc))
    return false;
  return R.ok();
}
