//===- locality/Locality.cpp - Cache-reuse analysis -------------------------===//

#include "locality/Locality.h"

#include "xform/Unroll.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

using namespace bsched;
using namespace bsched::locality;
using namespace bsched::lang;

namespace {

//===----------------------------------------------------------------------===//
// AST-level affine analysis
//===----------------------------------------------------------------------===//

/// Linear form over loop-variable names: Const + sum Coeff * var.
struct AstAffine {
  bool Valid = false;
  int64_t Const = 0;
  std::map<std::string, int64_t> Terms;

  static AstAffine constant(int64_t C) {
    AstAffine F;
    F.Valid = true;
    F.Const = C;
    return F;
  }

  AstAffine plus(const AstAffine &O, int64_t Sign) const {
    if (!Valid || !O.Valid)
      return AstAffine();
    AstAffine R = *this;
    R.Const += Sign * O.Const;
    for (const auto &[Name, C] : O.Terms) {
      R.Terms[Name] += Sign * C;
      if (R.Terms[Name] == 0)
        R.Terms.erase(Name);
    }
    return R;
  }

  AstAffine scaled(int64_t K) const {
    if (!Valid)
      return AstAffine();
    AstAffine R;
    R.Valid = true;
    R.Const = Const * K;
    if (K != 0)
      for (const auto &[Name, C] : Terms)
        R.Terms[Name] = C * K;
    return R;
  }

  int64_t coeffOf(const std::string &Var) const {
    auto It = Terms.find(Var);
    return It == Terms.end() ? 0 : It->second;
  }
};

AstAffine astAffine(const Expr &E, const std::set<std::string> &LoopVars) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return AstAffine::constant(E.IntVal);
  case ExprKind::VarRef:
    if (LoopVars.count(E.Name)) {
      AstAffine F;
      F.Valid = true;
      F.Terms[E.Name] = 1;
      return F;
    }
    return AstAffine(); // Paper limit: symbolic non-induction subscripts.
  case ExprKind::Unary:
    if (E.UOp == UnOp::Neg)
      return astAffine(*E.Args[0], LoopVars).scaled(-1);
    return AstAffine();
  case ExprKind::Binary: {
    if (E.BOp == BinOp::Add)
      return astAffine(*E.Args[0], LoopVars)
          .plus(astAffine(*E.Args[1], LoopVars), 1);
    if (E.BOp == BinOp::Sub)
      return astAffine(*E.Args[0], LoopVars)
          .plus(astAffine(*E.Args[1], LoopVars), -1);
    if (E.BOp == BinOp::Mul) {
      AstAffine L = astAffine(*E.Args[0], LoopVars);
      AstAffine R = astAffine(*E.Args[1], LoopVars);
      if (L.Valid && L.Terms.empty())
        return R.scaled(L.Const);
      if (R.Valid && R.Terms.empty())
        return L.scaled(R.Const);
      return AstAffine();
    }
    return AstAffine();
  }
  default:
    return AstAffine();
  }
}

/// Constant-folds an int expression made of literals; nullopt otherwise.
std::optional<int64_t> constEval(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return E.IntVal;
  case ExprKind::Unary:
    if (E.UOp == UnOp::Neg)
      if (auto V = constEval(*E.Args[0]))
        return -*V;
    return std::nullopt;
  case ExprKind::Binary: {
    auto L = constEval(*E.Args[0]);
    auto R = constEval(*E.Args[1]);
    if (!L || !R)
      return std::nullopt;
    switch (E.BOp) {
    case BinOp::Add: return *L + *R;
    case BinOp::Sub: return *L - *R;
    case BinOp::Mul: return *L * *R;
    default: return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Reference collection
//===----------------------------------------------------------------------===//

/// Collects the array references executed as loads in \p L (rvalues and
/// subscript expressions; assignment targets excluded but their subscripts
/// included).
void collectLoadRefs(StmtList &L, std::vector<Expr *> &Out);

void collectLoadRefsExpr(Expr &E, std::vector<Expr *> &Out) {
  if (E.Kind == ExprKind::ArrayRef)
    Out.push_back(&E);
  for (ExprPtr &A : E.Args)
    collectLoadRefsExpr(*A, Out);
}

void collectLoadRefs(StmtList &L, std::vector<Expr *> &Out) {
  for (StmtPtr &S : L) {
    switch (S->Kind) {
    case StmtKind::Assign:
      // The target element itself is a store, but its subscripts are loads.
      if (S->Lhs->Kind == ExprKind::ArrayRef)
        for (ExprPtr &Idx : S->Lhs->Args)
          collectLoadRefsExpr(*Idx, Out);
      collectLoadRefsExpr(*S->Rhs, Out);
      break;
    case StmtKind::If:
      collectLoadRefsExpr(*S->Cond, Out);
      collectLoadRefs(S->Then, Out);
      collectLoadRefs(S->Else, Out);
      break;
    case StmtKind::For:
      // Innermost loops contain no nested For; defensive anyway.
      collectLoadRefs(S->Body, Out);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Pass driver
//===----------------------------------------------------------------------===//

struct SpatialInfo {
  int64_t StrideBytes = 0; ///< per-iteration byte stride (coeff * step).
  int64_t AddrAtLoMod = 0; ///< address of the first iteration, mod line size.
};

class LocalityPass {
public:
  LocalityPass(Program &P, LocalityOptions Opts) : P(P), Opts(Opts) {}

  LocalityStats run() {
    walk(P.Body, {});
    return Stats;
  }

private:
  Program &P;
  LocalityOptions Opts;
  LocalityStats Stats;
  int NextGroup = 0;
  /// Spatial marking info per locality group, consulted by the unroll copy
  /// callback.
  std::map<int, SpatialInfo> SpatialGroups;

  void walk(StmtList &L, std::set<std::string> OuterVars) {
    for (size_t I = 0; I < L.size(); ++I) {
      Stmt &S = *L[I];
      switch (S.Kind) {
      case StmtKind::Assign:
        break;
      case StmtKind::If: {
        walk(S.Then, OuterVars);
        walk(S.Else, OuterVars);
        break;
      }
      case StmtKind::For: {
        if (!xform::isInnermostLoop(S) || S.NoUnroll) {
          std::set<std::string> Inner = OuterVars;
          Inner.insert(S.LoopVar);
          walk(S.Body, std::move(Inner));
          break;
        }
        I += processInnermost(L, I, OuterVars);
        break;
      }
      }
    }
  }

  /// Handles one innermost loop at L[Idx]; returns how many extra statements
  /// were spliced before the position to skip.
  size_t processInnermost(StmtList &L, size_t Idx,
                          const std::set<std::string> &OuterVars) {
    ++Stats.LoopsAnalyzed;
    size_t Skip = 0;

    {
      Stmt &S = *L[Idx];
      std::set<std::string> Vars = OuterVars;
      Vars.insert(S.LoopVar);

      // --- Temporal reuse: mark + peel -----------------------------------
      std::vector<Expr *> Refs;
      collectLoadRefs(S.Body, Refs);
      std::vector<int> TemporalGroups;
      for (Expr *Ref : Refs) {
        const ArrayDecl *A = P.findArray(Ref->Name);
        if (!A || Ref->LocGroup >= 0)
          continue;
        AstAffine Addr = addressForm(*Ref, *A, Vars);
        if (!Addr.Valid) {
          ++Stats.RefsNoInfo;
          continue;
        }
        if (Addr.coeffOf(S.LoopVar) == 0) {
          // Invariant in the inner loop: temporal reuse. All in-loop
          // executions after the first hit the line.
          Ref->LocGroup = NextGroup++;
          Ref->HM = ir::HitMiss::Hit;
          TemporalGroups.push_back(Ref->LocGroup);
          ++Stats.TemporalRefs;
        }
      }
      if (!TemporalGroups.empty()) {
        std::set<int> Groups(TemporalGroups.begin(), TemporalGroups.end());
        auto MarkPeeledMiss = [&Groups](StmtList &Peeled) {
          std::vector<Expr *> PeelRefs;
          collectLoadRefs(Peeled, PeelRefs);
          for (Expr *R : PeelRefs)
            if (Groups.count(R->LocGroup))
              R->HM = ir::HitMiss::Miss;
        };
        xform::peelFirstIteration(P, L, Idx, MarkPeeledMiss);
        ++Stats.LoopsPeeled;
        // L[Idx] is now the guard; the residual loop follows it.
        ++Idx;
        ++Skip;
      }
    }

    // --- Spatial reuse: mark + unroll ------------------------------------
    Stmt &S = *L[Idx];
    std::set<std::string> Vars = OuterVars;
    Vars.insert(S.LoopVar);
    std::optional<int64_t> LoVal = constEval(*S.Lo);

    std::vector<Expr *> Refs;
    collectLoadRefs(S.Body, Refs);
    int64_t NeededFactor = 1;
    int NumSpatial = 0;
    std::vector<std::pair<Expr *, SpatialInfo>> Pending;
    for (Expr *Ref : Refs) {
      const ArrayDecl *A = P.findArray(Ref->Name);
      if (!A || Ref->LocGroup >= 0)
        continue;
      AstAffine Addr = addressForm(*Ref, *A, Vars);
      if (!Addr.Valid) {
        ++Stats.RefsNoInfo;
        continue;
      }
      int64_t Stride = Addr.coeffOf(S.LoopVar) * S.Step;
      if (Stride <= 0 || Stride >= CacheLineSize ||
          CacheLineSize % Stride != 0) {
        ++Stats.RefsNoInfo;
        continue;
      }
      // Alignment must be statically known: every outer term a multiple of
      // the line size, and a literal loop start (paper limits 1 and 3).
      bool Aligned = LoVal.has_value();
      for (const auto &[Name, C] : Addr.Terms)
        if (Name != S.LoopVar && C % CacheLineSize != 0)
          Aligned = false;
      if (!Aligned) {
        ++Stats.RefsNoInfo;
        continue;
      }
      SpatialInfo Info;
      Info.StrideBytes = Stride;
      int64_t AtLo = Addr.Const + Addr.coeffOf(S.LoopVar) * *LoVal;
      Info.AddrAtLoMod = ((AtLo % CacheLineSize) + CacheLineSize) %
                         CacheLineSize;
      Pending.emplace_back(Ref, Info);
      NeededFactor = std::max(NeededFactor, CacheLineSize / Stride);
      ++NumSpatial;
    }

    if (NumSpatial == 0)
      return Skip;

    // Pick the factor: honour a simultaneous loop-unrolling request when it
    // keeps whole cache lines per body instance, else the minimal factor.
    auto FactorWorks = [&](int64_t F) {
      for (const auto &[Ref, Info] : Pending) {
        (void)Ref;
        if ((F * Info.StrideBytes) % CacheLineSize != 0)
          return false;
      }
      return true;
    };
    int64_t Factor = 0;
    if (Opts.UnrollFactor > 1 && FactorWorks(Opts.UnrollFactor))
      Factor = Opts.UnrollFactor;
    else if (FactorWorks(NeededFactor))
      Factor = NeededFactor;

    // Locality analysis only unrolls loops that actually exhibit reuse, so
    // it uses the laxer 128-instruction ceiling regardless of factor (plain
    // unrolling's 64-at-4 limit stays with xform::unrollLoops).
    constexpr int LocalityInstrLimit = 128;
    int BodyCost = lang::estimateCost(S.Body);
    if (Factor > 0 && Factor * BodyCost > LocalityInstrLimit)
      Factor = FactorWorks(NeededFactor) &&
                       NeededFactor * BodyCost <= LocalityInstrLimit
                   ? NeededFactor
                   : 0;
    if (Factor < 2 || xform::countNonPredicableBranches(S.Body) > 1) {
      // Cannot unroll: no spatial marking is possible.
      for (auto &[Ref, Info] : Pending) {
        (void)Info;
        (void)Ref;
        ++Stats.RefsNoInfo;
      }
      return Skip;
    }

    for (auto &[Ref, Info] : Pending) {
      Ref->LocGroup = NextGroup++;
      SpatialGroups[Ref->LocGroup] = Info;
      ++Stats.SpatialRefs;
    }

    auto MarkCopy = [this](int CopyIdx, StmtList &Copy) {
      std::vector<Expr *> CopyRefs;
      collectLoadRefs(Copy, CopyRefs);
      for (Expr *R : CopyRefs) {
        auto It = SpatialGroups.find(R->LocGroup);
        if (It == SpatialGroups.end())
          continue;
        const SpatialInfo &Info = It->second;
        int64_t Addr =
            (Info.AddrAtLoMod + CopyIdx * Info.StrideBytes) % CacheLineSize;
        R->HM = Addr == 0 ? ir::HitMiss::Miss : ir::HitMiss::Hit;
      }
    };
    xform::unrollForStmt(P, L, Idx, static_cast<int>(Factor), MarkCopy);
    ++Stats.LoopsUnrolled;
    Skip += 2; // assign + main-for + chain replaced one statement.
    return Skip;
  }

  AstAffine addressForm(const Expr &Ref, const ArrayDecl &A,
                        const std::set<std::string> &LoopVars) {
    size_t N = Ref.Args.size();
    if (N != A.Dims.size())
      return AstAffine();
    std::vector<int64_t> Strides(N, 8);
    if (A.RowMajor) {
      for (size_t K = N; K-- > 0;)
        Strides[K] = (K + 1 == N) ? 8 : Strides[K + 1] * A.Dims[K + 1];
    } else {
      for (size_t K = 0; K != N; ++K)
        Strides[K] = (K == 0) ? 8 : Strides[K - 1] * A.Dims[K - 1];
    }
    AstAffine Total = AstAffine::constant(0);
    for (size_t K = 0; K != N; ++K) {
      AstAffine Sub = astAffine(*Ref.Args[K], LoopVars);
      if (!Sub.Valid)
        return AstAffine();
      Total = Total.plus(Sub.scaled(Strides[K]), 1);
    }
    return Total;
  }
};

} // namespace

LocalityStats locality::applyLocality(Program &P, LocalityOptions Opts) {
  return LocalityPass(P, Opts).run();
}
