//===- locality/Locality.h - Cache-reuse analysis ----------------*- C++ -*-===//
///
/// \file
/// The locality-analysis optimization of section 3.3, following Mowry, Lam
/// and Gupta's reuse analysis: for array references with affine subscripts in
/// innermost loops, classify
///  - temporal reuse (address invariant in the inner loop): peel the first
///    iteration (Figure 5) and mark the peeled load a miss, the in-loop
///    loads hits;
///  - spatial reuse (stride divides the 32-byte line, alignment statically
///    known): unroll so one line spans a whole body instance (Figure 4) and
///    mark the line-aligned copy a miss, the others hits.
///
/// Hit-marked loads keep the optimistic latency during balanced scheduling,
/// freeing independent instructions to pad miss loads; miss->hit DAG arcs
/// keep hits from floating above their miss (section 4.2).
///
/// Limits mirror the paper's (section 5.3): unknown alignment (outer-term
/// coefficients not line-multiples, non-literal loop start), non-affine
/// subscripts, and non-innermost loops all disqualify a reference.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_LOCALITY_LOCALITY_H
#define BALSCHED_LOCALITY_LOCALITY_H

#include "lang/AST.h"

namespace bsched {
namespace locality {

/// Cache line size of the Alpha 21164 first-level data cache.
constexpr int64_t CacheLineSize = 32;

struct LocalityOptions {
  /// Unrolling factor requested by a simultaneous loop-unrolling
  /// optimization (0 = locality analysis alone, which unrolls just enough to
  /// separate the miss from the hits: line size / stride).
  int UnrollFactor = 0;
};

struct LocalityStats {
  int LoopsAnalyzed = 0;
  int LoopsPeeled = 0;    ///< temporal reuse found and peeled.
  int LoopsUnrolled = 0;  ///< spatial reuse found and unrolled+marked.
  int TemporalRefs = 0;
  int SpatialRefs = 0;
  int RefsNoInfo = 0;     ///< affine but unknown alignment, or non-affine.
};

/// Runs reuse analysis and the enabling transformations over every innermost
/// loop of \p P. Loops it unrolls are tagged NoUnroll so a subsequent
/// xform::unrollLoops pass (for the LA+LU configurations) leaves them alone.
/// Re-run lang::checkProgram afterwards.
LocalityStats applyLocality(lang::Program &P, LocalityOptions Opts = {});

} // namespace locality
} // namespace bsched

#endif // BALSCHED_LOCALITY_LOCALITY_H
