//===- sched/DepDAG.h - Data-dependence DAG ---------------------*- C++ -*-===//
///
/// \file
/// The code DAG of section 2: nodes are instructions of a scheduling region
/// (one basic block, or a trace treated as one), edges are register
/// dependences (true/anti/output), memory dependences (with array
/// disambiguation from the MemRef linear forms), and the locality-analysis
/// miss->hit ordering arcs of section 4.2.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_DEPDAG_H
#define BALSCHED_SCHED_DEPDAG_H

#include "ir/IR.h"
#include "support/BitVec.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bsched {
namespace sched {

/// Selects between the optimized scheduler core (the default), the
/// original seed algorithms preserved in Reference.cpp, and the exact
/// branch-and-bound backend in Exact.cpp. Fast and Reference produce
/// byte-identical schedules (asserted by the golden-schedule tests); the
/// reference exists as a correctness oracle and as the baseline that
/// bench_compile_throughput measures speedups against. Exact runs the fast
/// pipeline, then replaces each region's schedule with a provably
/// cycle-optimal one whenever the branch-and-bound solver closes the region
/// within budget (sched/Exact.h) — the optimality oracle of ROADMAP item 4.
enum class SchedImpl : uint8_t { Fast, Reference, Exact };

class DepDAG {
public:
  explicit DepDAG(unsigned NumNodes) { reset(NumNodes); }

  DepDAG(const DepDAG &) = default;
  DepDAG &operator=(const DepDAG &) = default;
  // Moves must reset the source's logical sizes: they describe the moved-
  // away storage, and a stale nonzero size over empty vectors would break a
  // later reset() of the source.
  DepDAG(DepDAG &&O) noexcept
      : Succs(std::move(O.Succs)), Preds(std::move(O.Preds)),
        EdgeBits(std::move(O.EdgeBits)), N(O.N), Rows(O.Rows),
        Stride(O.Stride) {
    O.N = O.Rows = O.Stride = 0;
  }
  DepDAG &operator=(DepDAG &&O) noexcept {
    Succs = std::move(O.Succs);
    Preds = std::move(O.Preds);
    EdgeBits = std::move(O.EdgeBits);
    N = O.N;
    Rows = O.Rows;
    Stride = O.Stride;
    O.N = O.Rows = O.Stride = 0;
    return *this;
  }

  unsigned size() const { return N; }

  /// Adds From -> To (deduplicated). Self-edges are ignored.
  ///
  /// Node ids are region positions in original program order and every
  /// dependence points forward, so the id order IS a topological order.
  /// balancedWeights' reachability tests rely on this invariant (a path
  /// From -> To can exist only when From < To), hence the assert.
  void addEdge(unsigned From, unsigned To) {
    assert(From <= To && "dependence edges must point forward in program "
                         "order (node ids are topologically ordered)");
    if (From == To)
      return;
    uint64_t &Word = EdgeBits[size_t(From) * Stride + To / 64];
    uint64_t Mask = 1ull << (To % 64);
    if (Word & Mask)
      return;
    Word |= Mask;
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }

  bool hasEdge(unsigned From, unsigned To) const {
    return (EdgeBits[size_t(From) * Stride + To / 64] >> (To % 64)) & 1;
  }

  const std::vector<unsigned> &succs(unsigned N) const { return Succs[N]; }
  const std::vector<unsigned> &preds(unsigned N) const { return Preds[N]; }

  /// Re-initializes to an empty graph over \p NumNodes nodes, retaining the
  /// per-node adjacency and dedup-bitmap storage already allocated.
  /// DepDAGBuilder uses this to recycle one graph across the regions of a
  /// function instead of paying per-region allocations. The dedup bitmap is
  /// high-water sized and un-set by replaying the previous region's
  /// adjacency — O(edges) words instead of an O(nodes^2 / 8)-byte clear per
  /// region, which dominated DAG construction for long traces.
  void reset(unsigned NumNodes) {
    // Invariant: every node >= the logical size has empty adjacency (each
    // reset clears exactly [0, N)), so replaying [0, N) un-sets every bit
    // in the dedup bitmap.
    for (unsigned I = 0; I != N; ++I) {
      for (unsigned S : Succs[I])
        EdgeBits[size_t(I) * Stride + S / 64] = 0;
      Succs[I].clear();
      Preds[I].clear();
    }
    unsigned NeedStride = (NumNodes + 63) / 64;
    if (NumNodes > Rows || NeedStride > Stride) {
      // Growing the row count or the row width invalidates the replay-
      // cleared layout; restart from an all-zero bitmap at the new high
      // water (amortized: a function's largest region grows it once).
      Rows = std::max(Rows, NumNodes);
      Stride = std::max(Stride, NeedStride);
      EdgeBits.assign(size_t(Rows) * Stride, 0);
    }
    if (Succs.size() < NumNodes) {
      // Never shrinks: spare nodes keep their vectors' capacity.
      Succs.resize(NumNodes);
      Preds.resize(NumNodes);
    }
    N = NumNodes;
  }

  /// Topological order (by Kahn's algorithm); asserts the graph is acyclic.
  std::vector<unsigned> topoOrder() const;

  /// Forward reachability closure: Reach[i].test(j) iff a (non-empty) path
  /// i -> j exists.
  std::vector<BitVec> reachability() const;

private:
  std::vector<std::vector<unsigned>> Succs, Preds; ///< high-water sized.
  /// Dedup bitmap, Rows x Stride words (high-water): bit To of row From is
  /// set iff the edge exists. Cleared incrementally by reset().
  std::vector<uint64_t> EdgeBits;
  unsigned N = 0;      ///< logical node count of the current region.
  unsigned Rows = 0;   ///< allocated bitmap rows.
  unsigned Stride = 0; ///< allocated words per bitmap row.
};

/// Builds the dependence DAG for \p Instrs (a region in program order).
/// Adds register, memory, and locality-group edges; the caller supplies
/// control-flow constraints (e.g. "everything before the block terminator")
/// via addEdge, because they differ between basic-block and trace scheduling.
///
/// The default implementation keys its register tables by dense Reg.Id
/// vectors and buckets memory references by array/linear-form so
/// disambiguation avoids the all-pairs scan; \p Impl selects the original
/// algorithms instead (identical output, see SchedImpl).
DepDAG buildDepDAG(const std::vector<const ir::Instr *> &Instrs,
                   SchedImpl Impl = SchedImpl::Fast);

/// Adds the basic-block control edges: every instruction precedes the
/// terminator, which must be the last element of \p Instrs.
void addBlockControlEdges(DepDAG &G,
                          const std::vector<const ir::Instr *> &Instrs);

/// Incremental builder over the fast algorithm of buildDepDAG, for callers
/// that build one region after another (the trace scheduler: every trace and
/// every remaining single block of a function). Two things distinguish it
/// from the one-shot entry point:
///
///  - the region is appended instruction by instruction (a trace appends
///    block by block as it is assembled), with register dependences emitted
///    during append — the register phase's state evolution is prefix-closed,
///    so streaming it produces exactly the one-shot builder's edges;
///  - every table, bitset, and the graph itself is recycled across regions
///    (DepDAG::reset), turning the per-region allocation storm into a few
///    amortized clears.
///
/// Edge order is identical to buildDepDAG's — all register edges in
/// instruction order, then memory edges in memory-ordinal order, then
/// locality arcs — which keeps succ/pred adjacency orders, and therefore
/// every downstream floating-point accumulation and ready-list tie-break,
/// bit-identical to the one-shot builder (asserted by the golden-schedule
/// and trace-equivalence tests).
class DepDAGBuilder {
public:
  /// Starts a region of exactly \p NumNodes instructions.
  void beginRegion(unsigned NumNodes);

  /// Appends the next region instruction (program order) and emits its
  /// register dependences; capture of memory forms is epoch-stamped here,
  /// exactly as in the one-shot builder's first phase.
  void append(const ir::Instr *In);

  /// Runs the deferred memory and locality phases. The returned graph (and
  /// everything it references) stays valid until the next beginRegion.
  DepDAG &finalize();

  DepDAG &graph() { return G; }

private:
  void ensureReg(uint32_t Id);

  DepDAG G{0};
  unsigned N = 0;         ///< region size declared by beginRegion.
  unsigned Appended = 0;  ///< instructions appended so far.

  // Region instructions (for the deferred phases).
  std::vector<const ir::Instr *> Nodes;

  // Register phase state, high-water sized across regions.
  std::vector<unsigned> LastDef;
  std::vector<std::vector<unsigned>> Readers;
  std::vector<uint32_t> DefCount;
  std::vector<ir::Reg> Uses;

  // Memory/locality phase inputs collected during append.
  std::vector<unsigned> MemIdx;
  std::vector<std::vector<int64_t>> FormKey;
  int NumArrays = 0, NumGroups = 0;

  // Memory phase scratch, recycled across regions.
  BitVec Prior, StoresPrior, UnknownPrior, Conflicts, ArrScratch;
  std::vector<BitVec> ArrayPrior;
  std::vector<bool> OrdIsStore;
  std::vector<unsigned> LastMiss;
};

} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_DEPDAG_H
