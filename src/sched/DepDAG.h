//===- sched/DepDAG.h - Data-dependence DAG ---------------------*- C++ -*-===//
///
/// \file
/// The code DAG of section 2: nodes are instructions of a scheduling region
/// (one basic block, or a trace treated as one), edges are register
/// dependences (true/anti/output), memory dependences (with array
/// disambiguation from the MemRef linear forms), and the locality-analysis
/// miss->hit ordering arcs of section 4.2.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_DEPDAG_H
#define BALSCHED_SCHED_DEPDAG_H

#include "ir/IR.h"
#include "support/BitVec.h"

#include <vector>

namespace bsched {
namespace sched {

class DepDAG {
public:
  explicit DepDAG(unsigned NumNodes)
      : Succs(NumNodes), Preds(NumNodes), Edge(NumNodes, BitVec(NumNodes)) {}

  unsigned size() const { return static_cast<unsigned>(Succs.size()); }

  /// Adds From -> To (deduplicated). Self-edges are ignored.
  void addEdge(unsigned From, unsigned To) {
    if (From == To || Edge[From].test(To))
      return;
    Edge[From].set(To);
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }

  bool hasEdge(unsigned From, unsigned To) const {
    return Edge[From].test(To);
  }

  const std::vector<unsigned> &succs(unsigned N) const { return Succs[N]; }
  const std::vector<unsigned> &preds(unsigned N) const { return Preds[N]; }

  /// Topological order (by Kahn's algorithm); asserts the graph is acyclic.
  std::vector<unsigned> topoOrder() const;

  /// Forward reachability closure: Reach[i].test(j) iff a (non-empty) path
  /// i -> j exists.
  std::vector<BitVec> reachability() const;

private:
  std::vector<std::vector<unsigned>> Succs, Preds;
  std::vector<BitVec> Edge;
};

/// Builds the dependence DAG for \p Instrs (a region in program order).
/// Adds register, memory, and locality-group edges; the caller supplies
/// control-flow constraints (e.g. "everything before the block terminator")
/// via addEdge, because they differ between basic-block and trace scheduling.
DepDAG buildDepDAG(const std::vector<const ir::Instr *> &Instrs);

/// Adds the basic-block control edges: every instruction precedes the
/// terminator, which must be the last element of \p Instrs.
void addBlockControlEdges(DepDAG &G,
                          const std::vector<const ir::Instr *> &Instrs);

} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_DEPDAG_H
