//===- sched/Exact.cpp - Optimal-scheduler oracle (branch & bound) ----------===//

#include "sched/Exact.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;
using namespace bsched::sched::exact;

const char *exact::statusName(ExactStatus S) {
  switch (S) {
  case ExactStatus::Closed: return "closed";
  case ExactStatus::TimedOut: return "timed-out";
  case ExactStatus::TooLarge: return "too-large";
  }
  return "?";
}

namespace {

/// Modelled issue-to-result latency of one instruction.
int modelLatency(const Instr *I, const ExactOptions &Opts) {
  return I->isLoad() ? Opts.LoadLatency : opInfo(I->Op).Latency;
}

/// The model's per-edge issue separation: result latency on true register
/// dependences, one issue slot on everything else (anti, output, memory,
/// locality, control). Reads-a's-def is decided from the instructions, not
/// the (untyped) DAG edge, so merged edges get the strongest delay they
/// carry.
int edgeDelay(const Instr *From, const Instr *To, const ExactOptions &Opts) {
  Reg D = From->def();
  if (D.isValid()) {
    // appendUses covers srcA/srcB/srcC, the conditional-move old
    // destination, and the address base register.
    static thread_local std::vector<Reg> Uses;
    Uses.clear();
    To->appendUses(Uses);
    for (Reg R : Uses)
      if (R == D)
        return modelLatency(From, Opts);
  }
  return 1;
}

/// Precomputed per-region model: dense successor/predecessor edge lists with
/// delays, and the critical-path tail of every node.
struct RegionModel {
  struct Edge {
    unsigned Node;
    int Delay;
  };
  unsigned N = 0;
  std::vector<std::vector<Edge>> Succs, Preds;
  /// tail[n] = longest delay path from issuing n to the end of the block,
  /// counting n's own issue slot: max(1, max over succ edges of
  /// delay + tail(succ)). The critical-path relaxation.
  std::vector<unsigned> Tail;
  /// Equivalence-class representative for interchangeable-instruction
  /// pruning: EquivRep[n] == smallest m with identical latency and
  /// identical pred/succ edge+delay sets. Only the smallest unissued member
  /// of a class may issue first among its class.
  std::vector<unsigned> EquivRep;

  RegionModel(const DepDAG &G, const std::vector<const Instr *> &Instrs,
              const ExactOptions &Opts)
      : N(G.size()), Succs(N), Preds(N), Tail(N, 1), EquivRep(N) {
    for (unsigned I = 0; I != N; ++I)
      for (unsigned S : G.succs(I)) {
        int D = edgeDelay(Instrs[I], Instrs[S], Opts);
        Succs[I].push_back({S, D});
        Preds[S].push_back({I, D});
      }
    // Node ids are topologically ordered, so a reverse sweep sees
    // successors first.
    for (unsigned I = N; I-- != 0;)
      for (const Edge &E : Succs[I])
        Tail[I] = std::max(Tail[I],
                           static_cast<unsigned>(E.Delay) + Tail[E.Node]);
    computeEquiv(Instrs, Opts);
  }

  void computeEquiv(const std::vector<const Instr *> &Instrs,
                    const ExactOptions &Opts) {
    // Quadratic over the region, but regions here are <= MaxNodes (<= 64)
    // and the edge lists are tiny; sorting copies keeps the comparison
    // order-insensitive.
    auto SortedEdges = [](std::vector<Edge> Es) {
      std::sort(Es.begin(), Es.end(), [](const Edge &A, const Edge &B) {
        return A.Node != B.Node ? A.Node < B.Node : A.Delay < B.Delay;
      });
      return Es;
    };
    auto SameEdges = [](const std::vector<Edge> &A,
                        const std::vector<Edge> &B) {
      if (A.size() != B.size())
        return false;
      for (size_t K = 0; K != A.size(); ++K)
        if (A[K].Node != B[K].Node || A[K].Delay != B[K].Delay)
          return false;
      return true;
    };
    std::vector<std::vector<Edge>> SP(N), SS(N);
    for (unsigned I = 0; I != N; ++I) {
      SP[I] = SortedEdges(Preds[I]);
      SS[I] = SortedEdges(Succs[I]);
      EquivRep[I] = I;
    }
    for (unsigned I = 0; I != N; ++I) {
      if (EquivRep[I] != I)
        continue;
      for (unsigned J = I + 1; J != N; ++J) {
        if (EquivRep[J] != J)
          continue;
        if (modelLatency(Instrs[I], Opts) != modelLatency(Instrs[J], Opts))
          continue;
        if (SameEdges(SP[I], SP[J]) && SameEdges(SS[I], SS[J]))
          EquivRep[J] = I;
      }
    }
  }
};

/// One remembered state for dominance pruning, keyed externally by the
/// issued-set mask: the cycle after the last issue, and the release time of
/// every node (meaningful only for unissued ones). A remembered state
/// dominates a new one over the same mask when it finished no later and
/// releases everything no later — any completion of the new state is then
/// feasible, no later, from the remembered one.
struct SeenState {
  uint32_t NextFree;
  std::vector<uint16_t> Release;
};

struct Search {
  const RegionModel &M;
  const ExactOptions &Opts;
  unsigned N;
  uint64_t Full;

  // Incumbent.
  unsigned Best;
  std::vector<unsigned> BestOrder;
  bool Improved = false;

  // Current path.
  std::vector<unsigned> Path;
  std::vector<uint32_t> Release;     ///< earliest issue per node.
  std::vector<unsigned> PredsLeft;   ///< unissued predecessor count.
  std::vector<unsigned> ClassAhead;  ///< unissued smaller-id class members.

  uint64_t Expanded = 0;
  bool Budget = true; ///< false once MaxExpansions is exhausted.

  // Dominance memo. Capped per mask so memory stays bounded; a full slot
  // only costs pruning power, never soundness.
  static constexpr size_t MaxSeenPerMask = 6;
  std::unordered_map<uint64_t, std::vector<SeenState>> Seen;

  Search(const RegionModel &M, const ExactOptions &Opts, unsigned Warm,
         std::vector<unsigned> WarmOrder)
      : M(M), Opts(Opts), N(M.N),
        Full(N == 64 ? ~0ull : ((1ull << N) - 1)), Best(Warm),
        BestOrder(std::move(WarmOrder)), Release(N, 0), PredsLeft(N, 0),
        ClassAhead(N, 0) {
    Path.reserve(N);
    for (unsigned I = 0; I != N; ++I) {
      PredsLeft[I] = static_cast<unsigned>(M.Preds[I].size());
      for (unsigned J = 0; J != I; ++J)
        if (M.EquivRep[J] == M.EquivRep[I])
          ++ClassAhead[I];
    }
  }

  /// Lower bound on the final makespan from a state where the machine is
  /// next free at \p NextFree with \p Remaining instructions unissued:
  /// critical-path relaxation over every unissued node's known release
  /// (issued predecessors only — unissued ones can only push it later) and
  /// the single-issue slot relaxation.
  unsigned lowerBound(uint64_t Mask, uint32_t NextFree,
                      unsigned Remaining) const {
    unsigned LB = NextFree + Remaining; // one issue slot each, then +1.
    for (unsigned I = 0; I != N; ++I) {
      if (Mask & (1ull << I))
        continue;
      uint32_t At = std::max(Release[I], NextFree);
      LB = std::max(LB, At + M.Tail[I]);
    }
    return LB;
  }

  /// Dominance check + memoization for the state (Mask, NextFree, Release).
  /// Returns true when a remembered state dominates it (prune).
  bool seenDominates(uint64_t Mask, uint32_t NextFree) {
    std::vector<SeenState> &Slot = Seen[Mask];
    for (const SeenState &S : Slot) {
      if (S.NextFree > NextFree)
        continue;
      bool Dom = true;
      for (unsigned I = 0; I != N && Dom; ++I)
        if (!(Mask & (1ull << I)) && S.Release[I] > Release[I])
          Dom = false;
      if (Dom)
        return true;
    }
    if (Slot.size() < MaxSeenPerMask) {
      SeenState S;
      S.NextFree = NextFree;
      S.Release.resize(N);
      for (unsigned I = 0; I != N; ++I)
        S.Release[I] = static_cast<uint16_t>(
            std::min<uint32_t>(Release[I], 0xffffu));
      Slot.push_back(std::move(S));
    }
    return false;
  }

  /// Depth-first branch and bound. \p Mask = issued set, \p NextFree = first
  /// cycle the issue slot is free (== issue time of the previous node + 1).
  void dfs(uint64_t Mask, uint32_t NextFree) {
    if (!Budget)
      return;
    if (Mask == Full) {
      // NextFree is issue(last) + 1 — exactly the model's block cost.
      if (NextFree < Best) {
        Best = NextFree;
        BestOrder = Path;
        Improved = true;
      }
      return;
    }
    if (++Expanded > Opts.MaxExpansions) {
      Budget = false;
      return;
    }

    unsigned Remaining = N - static_cast<unsigned>(Path.size());
    if (lowerBound(Mask, NextFree, Remaining) >= Best)
      return;
    if (seenDominates(Mask, NextFree))
      return;

    // Active schedules only: issue at the earliest cycle any ready node can
    // go, and branch over exactly the ready nodes issuable then. (Exchange
    // argument: idling while a node is ready never helps, and a candidate
    // not ready at that cycle can always be swapped behind one that is.)
    uint32_t T = ~0u;
    for (unsigned I = 0; I != N; ++I) {
      if ((Mask & (1ull << I)) || PredsLeft[I] != 0)
        continue;
      T = std::min(T, std::max(Release[I], NextFree));
    }
    assert(T != ~0u && "no ready node in an acyclic DAG");

    for (unsigned I = 0; I != N && Budget; ++I) {
      if ((Mask & (1ull << I)) || PredsLeft[I] != 0)
        continue;
      if (std::max(Release[I], NextFree) != T)
        continue;
      if (ClassAhead[I] != 0)
        continue; // an interchangeable twin with a smaller id is unissued.

      // Issue I at cycle T.
      Path.push_back(I);
      std::vector<std::pair<unsigned, uint32_t>> Undo;
      for (const RegionModel::Edge &E : M.Succs[I]) {
        --PredsLeft[E.Node];
        uint32_t NewRel = T + static_cast<uint32_t>(E.Delay);
        if (NewRel > Release[E.Node]) {
          Undo.emplace_back(E.Node, Release[E.Node]);
          Release[E.Node] = NewRel;
        }
      }
      for (unsigned J = I + 1; J != N; ++J)
        if (M.EquivRep[J] == M.EquivRep[I])
          --ClassAhead[J];

      dfs(Mask | (1ull << I), T + 1);

      for (unsigned J = I + 1; J != N; ++J)
        if (M.EquivRep[J] == M.EquivRep[I])
          ++ClassAhead[J];
      for (const RegionModel::Edge &E : M.Succs[I])
        ++PredsLeft[E.Node];
      for (auto It = Undo.rbegin(); It != Undo.rend(); ++It)
        Release[It->first] = It->second;
      Path.pop_back();
    }
  }
};

/// Critical-path greedy order for the self-seeded warm start (callers
/// normally pass the list scheduler's order instead).
std::vector<unsigned> greedyOrder(const RegionModel &M) {
  unsigned N = M.N;
  std::vector<unsigned> PredsLeft(N), Order;
  Order.reserve(N);
  std::vector<bool> Done(N, false);
  for (unsigned I = 0; I != N; ++I)
    PredsLeft[I] = static_cast<unsigned>(M.Preds[I].size());
  for (unsigned K = 0; K != N; ++K) {
    unsigned Pick = N;
    for (unsigned I = 0; I != N; ++I) {
      if (Done[I] || PredsLeft[I] != 0)
        continue;
      if (Pick == N || M.Tail[I] > M.Tail[Pick])
        Pick = I;
    }
    assert(Pick != N && "cyclic DAG");
    Done[Pick] = true;
    Order.push_back(Pick);
    for (const RegionModel::Edge &E : M.Succs[Pick])
      --PredsLeft[E.Node];
  }
  return Order;
}

unsigned evaluate(const RegionModel &M, const std::vector<unsigned> &Order) {
  uint32_t NextFree = 0;
  std::vector<uint32_t> Release(M.N, 0);
  for (unsigned I : Order) {
    uint32_t T = std::max(Release[I], NextFree);
    for (const RegionModel::Edge &E : M.Succs[I])
      Release[E.Node] =
          std::max(Release[E.Node], T + static_cast<uint32_t>(E.Delay));
    NextFree = T + 1;
  }
  return NextFree;
}

} // namespace

unsigned exact::evaluateOrder(const DepDAG &G,
                              const std::vector<const Instr *> &Instrs,
                              const std::vector<unsigned> &Order,
                              const ExactOptions &Opts) {
  assert(Order.size() == G.size() && "order/DAG size mismatch");
  RegionModel M(G, Instrs, Opts);
  return evaluate(M, Order);
}

ExactResult exact::scheduleExact(const DepDAG &G,
                                 const std::vector<const Instr *> &Instrs,
                                 const ExactOptions &Opts,
                                 const std::vector<unsigned> *WarmStart) {
  ExactResult R;
  unsigned N = G.size();
  if (N > std::min(Opts.MaxNodes, 64u)) {
    R.Status = ExactStatus::TooLarge;
    return R;
  }
  RegionModel M(G, Instrs, Opts);
  std::vector<unsigned> Warm = WarmStart ? *WarmStart : greedyOrder(M);
  unsigned WarmCycles = evaluate(M, Warm);

  Search S(M, Opts, WarmCycles, std::move(Warm));
  R.LowerBound = S.lowerBound(0, 0, N);
  if (R.LowerBound >= WarmCycles || N == 0) {
    // The warm start already meets the root relaxation: optimal, no search.
    R.Status = ExactStatus::Closed;
    R.Cycles = WarmCycles;
    R.LowerBound = R.Cycles;
    R.Order = std::move(S.BestOrder);
    return R;
  }
  S.dfs(0, 0);
  R.Cycles = S.Best;
  R.Order = std::move(S.BestOrder);
  R.Expanded = S.Expanded;
  if (S.Budget) {
    R.Status = ExactStatus::Closed;
    R.LowerBound = R.Cycles; // exhaustion is the proof.
  } else {
    R.Status = ExactStatus::TimedOut;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Pipeline statistics
//===----------------------------------------------------------------------===//

namespace {
thread_local ExactStatsScope *CurrentScope = nullptr;
} // namespace

ExactStatsScope::ExactStatsScope() : Prev(CurrentScope) {
  CurrentScope = this;
}

ExactStatsScope::~ExactStatsScope() { CurrentScope = Prev; }

void exact::recordRegion(const ExactResult &R, unsigned FastCycles) {
  if (!CurrentScope)
    return;
  ExactStats &S = CurrentScope->S;
  switch (R.Status) {
  case ExactStatus::TooLarge:
    ++S.BlocksTooLarge;
    return;
  case ExactStatus::TimedOut:
    ++S.BlocksAttempted;
    ++S.BlocksTimedOut;
    break;
  case ExactStatus::Closed:
    ++S.BlocksAttempted;
    ++S.BlocksClosed;
    S.FastCycles += FastCycles;
    S.ExactCycles += R.Cycles;
    break;
  }
  if (R.Cycles < FastCycles)
    ++S.BlocksImproved;
  S.Expanded += R.Expanded;
}
