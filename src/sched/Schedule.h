//===- sched/Schedule.h - Balanced & traditional list scheduling -*- C++ -*-===//
///
/// \file
/// The paper's core contribution, reimplemented: a top-down list scheduler
/// whose load weights come either from the architecture's optimistic L1-hit
/// latency (traditional scheduling) or from the Kerns-Eggers balanced
/// scheduling algorithm, which measures the load-level parallelism available
/// to each load and distributes it across competing loads (section 2).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_SCHEDULE_H
#define BALSCHED_SCHED_SCHEDULE_H

#include "ir/IR.h"
#include "sched/DepDAG.h"
#include "sched/Exact.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bsched {
namespace sched {

enum class SchedulerKind : uint8_t {
  Traditional, ///< all loads weigh LoadHitLatency (cache-hit assumption).
  Balanced,    ///< load weights from load-level parallelism (Kerns-Eggers).
  /// Paper section-6 future work: "heuristics to statically choose between
  /// the two schedulers on a basic block basis". Picks Balanced or
  /// Traditional per region by comparing the estimated load-latency-hiding
  /// demand against the fixed-latency demand (see effectiveKind).
  Hybrid,
};

struct BalanceOptions {
  /// Load-weight cap; the paper uses 50 (the main-memory latency) to limit
  /// register pressure (section 4.2, footnote 1).
  double WeightCap = ir::LoadWeightCap;
  /// Loads that locality analysis proved to be cache hits keep the
  /// optimistic latency so their padders are freed for miss loads
  /// (section 3.3). Disabled only by ablation studies.
  bool RespectHitAnnotations = true;
  /// List-scheduler register-pressure ceiling (see
  /// DefaultPressureThreshold); 0 disables it. Applies to both weight
  /// models.
  unsigned PressureThreshold = 24;
  /// Paper section-6 future work: "incorporating multi-cycle instructions
  /// with fixed latencies into the balanced scheduling algorithm". When set,
  /// fixed multi-cycle instructions also receive balanced weights —
  /// min(true latency, 1 + padding credit) — so scarce parallelism is
  /// shared between loads and long fixed-latency operations instead of
  /// being monopolized by loads.
  bool BalanceFixedOps = false;
  /// Expected per-load latency-hiding demand (cycles) used by the Hybrid
  /// chooser; tuned on the workload (the fate of any static heuristic of
  /// this kind): high enough that miss-prone blocks stay balanced, low
  /// enough that recurrence/divide-bound blocks fall back to traditional.
  int HybridLoadCost = 6;
  /// Scheduler-core implementation. Reference selects the original seed
  /// algorithms (sched::reference::*) end to end — DAG build, weights, and
  /// list scheduling — for golden-schedule testing and speedup measurement
  /// (byte-identical schedules to Fast). Exact refines the fast schedule
  /// with the branch-and-bound optimality oracle per region (sched/Exact.h).
  SchedImpl Impl = SchedImpl::Fast;
  /// Budgets and machine model for SchedImpl::Exact; ignored otherwise.
  exact::ExactOptions Exact;
};

/// Computes the Kerns-Eggers balanced weight for every node of \p G:
/// non-loads get their fixed Table-3 latency; each load's weight is
///
///   w(l) = max(hit latency, 1 + sum over instructions n that can run in
///              parallel with l of 1/|component of l among the loads
///              parallel to n|),  capped at Opts.WeightCap.
///
/// Independent loads each receive full credit from a shared padding
/// instruction; loads connected by a dependence path split it (Figure 1).
std::vector<double>
balancedWeights(const DepDAG &G, const std::vector<const ir::Instr *> &Instrs,
                BalanceOptions Opts = {});

/// Fixed, architecture-optimistic weights: every load LoadHitLatency, every
/// other instruction its Table-3 latency.
std::vector<double>
traditionalWeights(const std::vector<const ir::Instr *> &Instrs);

/// Incremental Kerns-Eggers balanced weights over a growing region.
///
/// The balanced-weight analysis decomposes into per-node load-reachability
/// rows (loads reachable from each node, loads reaching each node), the
/// load-to-load relatedness matrix derived from them, and a memo of
/// availability-set -> component-credit lists. All of it extends cheaply
/// when nodes are appended to the region: node ids are a topological order
/// (DepDAG edges only point forward), so once a prefix has been analysed its
/// rows over the *old* load ordinals are final — an extension only sweeps
/// the new loads' bit range through the old rows and builds full rows for
/// the new nodes, O(new nodes + affected words) instead of a from-scratch
/// O(region^2 / 64) pass per growth step.
///
/// Contract: between extend() calls the DAG may only grow — previously seen
/// nodes keep their ids and previously seen edges persist, and new edges
/// touch at least one new node (block-boundary prefixes of the trace
/// scheduler's region growth satisfy this, including its control edges).
/// weights() is bit-identical to the one-shot balancedWeights on the final
/// region: the floating-point accumulation is re-run node-major over the
/// cached credit lists every time, never delta-adjusted.
///
/// All storage is recycled across begin() cycles; the trace scheduler keeps
/// one builder per thread in its scratch state.
class BalancedWeightsBuilder {
public:
  /// Starts a new region with the given options; cached analysis state from
  /// the previous region is discarded (storage is recycled).
  void begin(const BalanceOptions &Opts);

  /// Extends the cached analysis to cover \p G's first \p UpTo nodes.
  /// \p Instrs must hold the region's instructions, one per node. Edges
  /// leaving the covered prefix are deferred: they contribute when a later
  /// extension covers their head node.
  void extend(const DepDAG &G, const std::vector<const ir::Instr *> &Instrs,
              unsigned UpTo);
  void extend(const DepDAG &G, const std::vector<const ir::Instr *> &Instrs) {
    extend(G, Instrs, G.size());
  }

  /// Balanced weights for every node covered so far; bit-identical to
  /// one-shot balancedWeights over the same DAG.
  std::vector<double> weights(const std::vector<const ir::Instr *> &Instrs);

  /// Nodes covered by extend() so far.
  unsigned size() const { return N; }

private:
  struct WordsHash {
    size_t operator()(const std::vector<uint64_t> &Ws) const {
      uint64_t H = 0xcbf29ce484222325ull;
      for (uint64_t W : Ws) {
        H ^= W;
        H *= 0x100000001b3ull;
      }
      return static_cast<size_t>(H);
    }
  };

  void relayout(size_t NewStride);

  BalanceOptions Opts;
  unsigned N = 0; ///< nodes covered so far.
  unsigned L = 0; ///< balanced candidates ("loads") among them.
  size_t Stride = 0;      ///< words per row (capacity for LW() active words).
  size_t RowsReady = 0;   ///< Fwd/Bwd rows zero-claimed this region.
  size_t RelRowsReady = 0; ///< Rel rows written this region.
  size_t WordsReady = 0;  ///< active words valid in every ready row.

  size_t LW() const { return (L + 63) / 64; } ///< active words per row.

  std::vector<unsigned> Loads; ///< candidate node ids, ascending.
  std::vector<int> LoadOrd;    ///< node id -> load ordinal, or -1.
  /// Load-ordinal bitset rows, Stride words each: loads reachable from each
  /// node (Fwd), loads reaching each node (Bwd), and the symmetric
  /// load-to-load relation (Rel, L rows).
  std::vector<uint64_t> Fwd, Bwd, Rel;

  /// Availability-set memo: full active-word key -> (load ordinal, credit)
  /// pairs. Entries stay valid across extends that do not change the active
  /// word count (their keys only cover old ordinals, whose Rel sub-matrix is
  /// final); a stride relayout clears the memo.
  std::unordered_map<std::vector<uint64_t>,
                     std::vector<std::pair<unsigned, double>>, WordsHash>
      Memo;

  // Scratch recycled across calls.
  std::vector<uint64_t> Avail, Rem, Cur, Next;
  std::vector<unsigned> Members;
  std::vector<double> Extra;
};

/// Register-pressure ceiling for the list scheduler: once the number of
/// simultaneously live values of a class in the partial schedule reaches
/// this, selection prefers instructions that do not grow that class's
/// liveness. Models the register-pressure control the Multiflow compiler's
/// integrated scheduling/allocation provides (and that the paper's
/// consumed-minus-defined tie-breaker and 50-cycle weight cap approximate).
/// 0 disables the ceiling (ablation).
constexpr unsigned DefaultPressureThreshold = 24;


/// Top-down list scheduling of \p G with the given weights. Priority of an
/// instruction is its weight plus the maximum successor priority; ties are
/// broken by (1) largest consumed-minus-defined register count, (2) most
/// newly exposed successors, (3) original program order (section 4.2).
/// Returns a permutation of node ids (a valid topological order of G).
///
/// The default implementation precomputes the static tie-key parts,
/// maintains the exposed-successor counts incrementally, and removes
/// selected entries from the ready list in O(1) amortized; \p Impl selects
/// the original per-candidate recomputation instead (identical output).
std::vector<unsigned>
listSchedule(const DepDAG &G, const std::vector<double> &Weights,
             const std::vector<const ir::Instr *> &Instrs,
             unsigned PressureThreshold = DefaultPressureThreshold,
             SchedImpl Impl = SchedImpl::Fast);

/// Resolves the Hybrid scheduler for one region: Balanced when the loads'
/// estimated latency-hiding demand (#balanceable loads * HybridLoadCost)
/// meets or exceeds the fixed-latency demand (sum of latency-1 over
/// multi-cycle non-load instructions), else Traditional. Non-hybrid kinds
/// pass through unchanged.
SchedulerKind effectiveKind(SchedulerKind Kind,
                            const std::vector<const ir::Instr *> &Instrs,
                            const BalanceOptions &Opts = {});

/// Schedules every basic block of \p M in place with the given scheduler.
void scheduleFunction(ir::Module &M, SchedulerKind Kind,
                      BalanceOptions Opts = {});

/// Schedules one region (instruction list in program order, ending in a
/// terminator) and returns the new order. Convenience wrapper used by
/// scheduleFunction and by tests.
std::vector<unsigned>
scheduleRegion(const std::vector<const ir::Instr *> &Instrs,
               SchedulerKind Kind, BalanceOptions Opts = {});

} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_SCHEDULE_H
