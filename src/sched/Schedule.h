//===- sched/Schedule.h - Balanced & traditional list scheduling -*- C++ -*-===//
///
/// \file
/// The paper's core contribution, reimplemented: a top-down list scheduler
/// whose load weights come either from the architecture's optimistic L1-hit
/// latency (traditional scheduling) or from the Kerns-Eggers balanced
/// scheduling algorithm, which measures the load-level parallelism available
/// to each load and distributes it across competing loads (section 2).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_SCHEDULE_H
#define BALSCHED_SCHED_SCHEDULE_H

#include "ir/IR.h"
#include "sched/DepDAG.h"
#include "sched/Exact.h"

#include <vector>

namespace bsched {
namespace sched {

enum class SchedulerKind : uint8_t {
  Traditional, ///< all loads weigh LoadHitLatency (cache-hit assumption).
  Balanced,    ///< load weights from load-level parallelism (Kerns-Eggers).
  /// Paper section-6 future work: "heuristics to statically choose between
  /// the two schedulers on a basic block basis". Picks Balanced or
  /// Traditional per region by comparing the estimated load-latency-hiding
  /// demand against the fixed-latency demand (see effectiveKind).
  Hybrid,
};

struct BalanceOptions {
  /// Load-weight cap; the paper uses 50 (the main-memory latency) to limit
  /// register pressure (section 4.2, footnote 1).
  double WeightCap = ir::LoadWeightCap;
  /// Loads that locality analysis proved to be cache hits keep the
  /// optimistic latency so their padders are freed for miss loads
  /// (section 3.3). Disabled only by ablation studies.
  bool RespectHitAnnotations = true;
  /// List-scheduler register-pressure ceiling (see
  /// DefaultPressureThreshold); 0 disables it. Applies to both weight
  /// models.
  unsigned PressureThreshold = 24;
  /// Paper section-6 future work: "incorporating multi-cycle instructions
  /// with fixed latencies into the balanced scheduling algorithm". When set,
  /// fixed multi-cycle instructions also receive balanced weights —
  /// min(true latency, 1 + padding credit) — so scarce parallelism is
  /// shared between loads and long fixed-latency operations instead of
  /// being monopolized by loads.
  bool BalanceFixedOps = false;
  /// Expected per-load latency-hiding demand (cycles) used by the Hybrid
  /// chooser; tuned on the workload (the fate of any static heuristic of
  /// this kind): high enough that miss-prone blocks stay balanced, low
  /// enough that recurrence/divide-bound blocks fall back to traditional.
  int HybridLoadCost = 6;
  /// Scheduler-core implementation. Reference selects the original seed
  /// algorithms (sched::reference::*) end to end — DAG build, weights, and
  /// list scheduling — for golden-schedule testing and speedup measurement
  /// (byte-identical schedules to Fast). Exact refines the fast schedule
  /// with the branch-and-bound optimality oracle per region (sched/Exact.h).
  SchedImpl Impl = SchedImpl::Fast;
  /// Budgets and machine model for SchedImpl::Exact; ignored otherwise.
  exact::ExactOptions Exact;
};

/// Computes the Kerns-Eggers balanced weight for every node of \p G:
/// non-loads get their fixed Table-3 latency; each load's weight is
///
///   w(l) = max(hit latency, 1 + sum over instructions n that can run in
///              parallel with l of 1/|component of l among the loads
///              parallel to n|),  capped at Opts.WeightCap.
///
/// Independent loads each receive full credit from a shared padding
/// instruction; loads connected by a dependence path split it (Figure 1).
std::vector<double>
balancedWeights(const DepDAG &G, const std::vector<const ir::Instr *> &Instrs,
                BalanceOptions Opts = {});

/// Fixed, architecture-optimistic weights: every load LoadHitLatency, every
/// other instruction its Table-3 latency.
std::vector<double>
traditionalWeights(const std::vector<const ir::Instr *> &Instrs);

/// Register-pressure ceiling for the list scheduler: once the number of
/// simultaneously live values of a class in the partial schedule reaches
/// this, selection prefers instructions that do not grow that class's
/// liveness. Models the register-pressure control the Multiflow compiler's
/// integrated scheduling/allocation provides (and that the paper's
/// consumed-minus-defined tie-breaker and 50-cycle weight cap approximate).
/// 0 disables the ceiling (ablation).
constexpr unsigned DefaultPressureThreshold = 24;


/// Top-down list scheduling of \p G with the given weights. Priority of an
/// instruction is its weight plus the maximum successor priority; ties are
/// broken by (1) largest consumed-minus-defined register count, (2) most
/// newly exposed successors, (3) original program order (section 4.2).
/// Returns a permutation of node ids (a valid topological order of G).
///
/// The default implementation precomputes the static tie-key parts,
/// maintains the exposed-successor counts incrementally, and removes
/// selected entries from the ready list in O(1) amortized; \p Impl selects
/// the original per-candidate recomputation instead (identical output).
std::vector<unsigned>
listSchedule(const DepDAG &G, const std::vector<double> &Weights,
             const std::vector<const ir::Instr *> &Instrs,
             unsigned PressureThreshold = DefaultPressureThreshold,
             SchedImpl Impl = SchedImpl::Fast);

/// Resolves the Hybrid scheduler for one region: Balanced when the loads'
/// estimated latency-hiding demand (#balanceable loads * HybridLoadCost)
/// meets or exceeds the fixed-latency demand (sum of latency-1 over
/// multi-cycle non-load instructions), else Traditional. Non-hybrid kinds
/// pass through unchanged.
SchedulerKind effectiveKind(SchedulerKind Kind,
                            const std::vector<const ir::Instr *> &Instrs,
                            const BalanceOptions &Opts = {});

/// Schedules every basic block of \p M in place with the given scheduler.
void scheduleFunction(ir::Module &M, SchedulerKind Kind,
                      BalanceOptions Opts = {});

/// Schedules one region (instruction list in program order, ending in a
/// terminator) and returns the new order. Convenience wrapper used by
/// scheduleFunction and by tests.
std::vector<unsigned>
scheduleRegion(const std::vector<const ir::Instr *> &Instrs,
               SchedulerKind Kind, BalanceOptions Opts = {});

} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_SCHEDULE_H
