//===- sched/Reference.h - Reference scheduler implementations --*- C++ -*-===//
///
/// \file
/// The original (pre-optimization) implementations of the scheduler core:
/// map-keyed dependence-DAG construction, the per-node union-find balanced
/// weight computation, and the linear-scan list scheduler. They are kept as
/// the behavioural oracle for the optimized implementations in DepDAG.cpp /
/// Schedule.cpp: the golden-schedule tests assert byte-identical output, and
/// bench_compile_throughput times both to report the speedup. Select them
/// end to end with BalanceOptions::Impl = SchedImpl::Reference.
///
/// These functions are intentionally simple rather than fast; do not
/// optimize them.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_REFERENCE_H
#define BALSCHED_SCHED_REFERENCE_H

#include "sched/Schedule.h"

namespace bsched {
namespace sched {
namespace reference {

/// Seed buildDepDAG: std::map register tables and all-pairs memory
/// disambiguation.
DepDAG buildDepDAG(const std::vector<const ir::Instr *> &Instrs);

/// Seed balancedWeights: per-node union-find over the candidate loads.
std::vector<double> balancedWeights(const DepDAG &G,
                                    const std::vector<const ir::Instr *> &Instrs,
                                    BalanceOptions Opts = {});

/// Seed listSchedule: per-candidate tie-key recomputation and O(N) ready-list
/// erase.
std::vector<unsigned>
listSchedule(const DepDAG &G, const std::vector<double> &Weights,
             const std::vector<const ir::Instr *> &Instrs,
             unsigned PressureThreshold = DefaultPressureThreshold);

} // namespace reference
} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_REFERENCE_H
