//===- sched/DepDAG.cpp - Data-dependence DAG ------------------------------===//
//
// The optimized DAG builder: register tables are dense vectors indexed by
// Reg.Id (the id space is already dense, see ir/IR.h), and memory
// disambiguation buckets references by (array, linear form, epochs) so the
// common provably-disjoint pairs of an unrolled loop body are subtracted
// with bitset operations instead of being re-proved one pair at a time.
// Output is byte-identical to reference::buildDepDAG (same edges, added in
// the same order); the golden-schedule tests assert this.
//
//===----------------------------------------------------------------------===//

#include "sched/DepDAG.h"
#include "sched/Reference.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <unordered_map>

using namespace bsched;
using namespace bsched::sched;
using namespace bsched::ir;

std::vector<unsigned> DepDAG::topoOrder() const {
  unsigned N = size();
  std::vector<unsigned> InDegree(N, 0);
  for (unsigned I = 0; I != N; ++I)
    InDegree[I] = static_cast<unsigned>(Preds[I].size());
  std::vector<unsigned> Work, Order;
  Order.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    if (InDegree[I] == 0)
      Work.push_back(I);
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    Order.push_back(I);
    for (unsigned S : Succs[I])
      if (--InDegree[S] == 0)
        Work.push_back(S);
  }
  assert(Order.size() == N && "dependence graph has a cycle");
  return Order;
}

std::vector<BitVec> DepDAG::reachability() const {
  unsigned N = size();
  std::vector<BitVec> Reach(N, BitVec(N));
  // Node ids are a topological order (addEdge enforces From < To), so a
  // reverse id sweep visits successors before predecessors.
  for (unsigned I = N; I-- != 0;) {
    for (unsigned S : Succs[I]) {
      Reach[I].set(S);
      Reach[I].orWith(Reach[S]);
    }
  }
  return Reach;
}

namespace {

/// Hash for the (array, linear form, epochs) bucket keys below: FNV-1a over
/// the encoded words.
struct KeyHash {
  size_t operator()(const std::vector<int64_t> &Key) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (int64_t V : Key) {
      H ^= static_cast<uint64_t>(V);
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

/// All memory references with the same comparable linear form (same array,
/// same terms, same definition epochs): within a bucket, two accesses
/// conflict iff their constant offsets are closer than the access size.
struct FormBucket {
  BitVec Bits;                                ///< members, by mem ordinal.
  std::map<int64_t, std::vector<unsigned>> ByConst; ///< Const -> ordinals.
  int MaxSize = 0;                            ///< largest access size seen.
};

} // namespace

DepDAG sched::buildDepDAG(const std::vector<const Instr *> &Instrs,
                          SchedImpl Impl) {
  if (Impl == SchedImpl::Reference)
    return reference::buildDepDAG(Instrs);

  // The fast algorithm lives in DepDAGBuilder (one implementation, shared
  // with the trace scheduler's incremental use); the one-shot entry point is
  // a region of known size appended in one sweep.
  DepDAGBuilder B;
  B.beginRegion(static_cast<unsigned>(Instrs.size()));
  for (const Instr *In : Instrs)
    B.append(In);
  B.finalize();
  return std::move(B.graph());
}

//===----------------------------------------------------------------------===//
// DepDAGBuilder
//===----------------------------------------------------------------------===//

namespace {
constexpr unsigned None = ~0u;
} // namespace

void DepDAGBuilder::ensureReg(uint32_t Id) {
  if (Id < LastDef.size())
    return;
  LastDef.resize(Id + 1, None);
  Readers.resize(Id + 1);
  DefCount.resize(Id + 1, 0);
}

void DepDAGBuilder::beginRegion(unsigned NumNodes) {
  N = NumNodes;
  Appended = 0;
  G.reset(NumNodes);
  Nodes.clear();
  Nodes.reserve(NumNodes);
  // Register tables are high-water sized: clear the prefix in use rather
  // than reallocating (Readers keeps each per-register vector's capacity).
  std::fill(LastDef.begin(), LastDef.end(), None);
  for (std::vector<unsigned> &R : Readers)
    R.clear();
  std::fill(DefCount.begin(), DefCount.end(), 0);
  MemIdx.clear();
  FormKey.clear();
  NumArrays = 0;
  NumGroups = 0;
}

void DepDAGBuilder::append(const Instr *In) {
  assert(Appended < N && "more instructions than beginRegion declared");
  unsigned I = Appended++;
  Nodes.push_back(In);

  // Register dependences: LastDef[r] = most recent writer, Readers[r] =
  // readers of the current value, DefCount[r] = definition epoch for
  // memory-form stamping. Streaming this phase is sound because its state
  // after instruction I depends only on instructions 0..I.
  Uses.clear();
  In->appendUses(Uses);
  for (Reg R : Uses) {
    ensureReg(R.Id);
    if (LastDef[R.Id] != None)
      G.addEdge(LastDef[R.Id], I); // true dependence
    Readers[R.Id].push_back(I);
  }

  if (Reg D = In->def(); D.isValid()) {
    ensureReg(D.Id);
    if (LastDef[D.Id] != None)
      G.addEdge(LastDef[D.Id], I); // output dependence
    for (unsigned Rd : Readers[D.Id])
      G.addEdge(Rd, I); // anti dependence
    Readers[D.Id].clear();
    LastDef[D.Id] = I;
    ++DefCount[D.Id];
  }

  // Per memory op (in region order): its instruction index, and — when the
  // address has a comparable affine form — the bucket key encoding
  // (ArrayId, (RegId, Coeff, epoch)...). An empty key means "no form".
  if (In->isMem()) {
    MemIdx.push_back(I);
    std::vector<int64_t> Key;
    if (In->Mem.HasForm) {
      Key.reserve(1 + 3 * In->Mem.Terms.size());
      Key.push_back(In->Mem.ArrayId);
      for (const MemRef::Term &T : In->Mem.Terms) {
        ensureReg(T.RegId);
        Key.push_back(T.RegId);
        Key.push_back(T.Coeff);
        Key.push_back(DefCount[T.RegId]);
      }
    }
    FormKey.push_back(std::move(Key));
    NumArrays = std::max(NumArrays, In->Mem.ArrayId + 1);
  }
  NumGroups = std::max(NumGroups, In->LocalityGroup + 1);
}

DepDAG &DepDAGBuilder::finalize() {
  assert(Appended == N && "region incomplete at finalize");

  // --- Memory dependences ---------------------------------------------------
  // For each op J (over the mem-op ordinal space 0..M-1), the earlier
  // conflicting ops are
  //
  //   (all prior | prior stores, by J's kind)      load-load pairs reorder
  //   & (same array | unknown-object prior)        distinct arrays disjoint
  //   - (same comparable form, offsets far apart)  bucket subtraction
  //
  // computed with O(M/64) word operations plus a constant-radius window scan
  // in J's form bucket, instead of proving every pair disjoint individually.
  unsigned M = static_cast<unsigned>(MemIdx.size());
  Prior.resizeCleared(M);
  StoresPrior.resizeCleared(M);
  UnknownPrior.resizeCleared(M);
  Conflicts.resizeCleared(M);
  ArrScratch.resizeCleared(M);
  if (ArrayPrior.size() < static_cast<size_t>(NumArrays))
    ArrayPrior.resize(static_cast<size_t>(NumArrays));
  for (int A = 0; A != NumArrays; ++A)
    ArrayPrior[static_cast<size_t>(A)].resizeCleared(M);
  OrdIsStore.assign(M, false);
  std::unordered_map<std::vector<int64_t>, FormBucket, KeyHash> Buckets;

  for (unsigned J = 0; J != M; ++J) {
    const Instr &In = *Nodes[MemIdx[J]];
    const MemRef &Mem = In.Mem;
    bool JStore = In.isStore();
    OrdIsStore[J] = JStore;

    Conflicts = JStore ? Prior : StoresPrior;
    if (Mem.ArrayId >= 0) {
      ArrScratch = ArrayPrior[static_cast<size_t>(Mem.ArrayId)];
      ArrScratch.orWith(UnknownPrior);
      Conflicts.andWith(ArrScratch);
    }

    FormBucket *Bucket = nullptr;
    if (!FormKey[J].empty()) {
      FormBucket &B = Buckets[FormKey[J]];
      if (B.Bits.size() == 0)
        B.Bits = BitVec(M);
      Bucket = &B;
      Conflicts.subtract(B.Bits);
      // Same-form ops with offsets closer than the access size still
      // conflict: re-admit the window around J's constant.
      int64_t Radius = std::max(B.MaxSize, Mem.Size);
      auto It = B.ByConst.lower_bound(Mem.Const - Radius + 1);
      for (; It != B.ByConst.end() && It->first < Mem.Const + Radius; ++It) {
        int64_t Delta = std::llabs(Mem.Const - It->first);
        for (unsigned K : It->second) {
          const MemRef &MK = Nodes[MemIdx[K]]->Mem;
          if (Delta < std::max(MK.Size, Mem.Size) &&
              (JStore || OrdIsStore[K]))
            Conflicts.set(K);
        }
      }
    }

    // Ascending ordinal order == ascending instruction order, matching the
    // reference builder's edge insertion order exactly.
    unsigned JIdx = MemIdx[J];
    Conflicts.forEach([&](unsigned K) { G.addEdge(MemIdx[K], JIdx); });

    Prior.set(J);
    if (JStore)
      StoresPrior.set(J);
    if (Mem.ArrayId >= 0)
      ArrayPrior[static_cast<size_t>(Mem.ArrayId)].set(J);
    else
      UnknownPrior.set(J);
    if (Bucket) {
      Bucket->Bits.set(J);
      Bucket->ByConst[Mem.Const].push_back(J);
      Bucket->MaxSize = std::max(Bucket->MaxSize, Mem.Size);
    }
  }

  // --- Locality miss->hit arcs (section 4.2) --------------------------------
  // "Dependence arcs were added in the code DAG between each miss load and
  //  its corresponding hit loads to prevent the latter from floating above
  //  the miss during scheduling."
  // Single forward pass: each hit is anchored below the *nearest preceding*
  // miss of its group. (A two-pass version keyed on the last miss per group
  // silently dropped the arc for hits sandwiched between two misses.)
  LastMiss.assign(static_cast<size_t>(NumGroups), None);
  for (unsigned I = 0; I != N; ++I) {
    const Instr &In = *Nodes[I];
    if (!In.isLoad() || In.LocalityGroup < 0)
      continue;
    if (In.HM == HitMiss::Miss) {
      LastMiss[static_cast<size_t>(In.LocalityGroup)] = I;
    } else if (In.HM == HitMiss::Hit) {
      unsigned Miss = LastMiss[static_cast<size_t>(In.LocalityGroup)];
      if (Miss != None)
        G.addEdge(Miss, I);
    }
  }

  return G;
}

void sched::addBlockControlEdges(DepDAG &G,
                                 const std::vector<const Instr *> &Instrs) {
  assert(!Instrs.empty() && Instrs.back()->isTerminator() &&
         "region must end in the block terminator");
  unsigned Last = static_cast<unsigned>(Instrs.size()) - 1;
  for (unsigned I = 0; I != Last; ++I)
    G.addEdge(I, Last);
}
