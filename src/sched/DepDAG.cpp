//===- sched/DepDAG.cpp - Data-dependence DAG ------------------------------===//

#include "sched/DepDAG.h"

#include <cassert>
#include <map>

using namespace bsched;
using namespace bsched::sched;
using namespace bsched::ir;

std::vector<unsigned> DepDAG::topoOrder() const {
  unsigned N = size();
  std::vector<unsigned> InDegree(N, 0);
  for (unsigned I = 0; I != N; ++I)
    InDegree[I] = static_cast<unsigned>(Preds[I].size());
  std::vector<unsigned> Work, Order;
  Order.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    if (InDegree[I] == 0)
      Work.push_back(I);
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    Order.push_back(I);
    for (unsigned S : Succs[I])
      if (--InDegree[S] == 0)
        Work.push_back(S);
  }
  assert(Order.size() == N && "dependence graph has a cycle");
  return Order;
}

std::vector<BitVec> DepDAG::reachability() const {
  unsigned N = size();
  std::vector<BitVec> Reach(N, BitVec(N));
  std::vector<unsigned> Order = topoOrder();
  // Process in reverse topological order so successors are complete.
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    unsigned I = *It;
    for (unsigned S : Succs[I]) {
      Reach[I].set(S);
      Reach[I].orWith(Reach[S]);
    }
  }
  return Reach;
}

namespace {

/// Epoch-stamped memory reference: the linear form is only comparable when
/// the referenced registers have identical definition counts.
struct StampedRef {
  const MemRef *Mem = nullptr;
  std::vector<uint32_t> Epochs; ///< parallel to Mem->Terms.
  uint32_t BaseEpoch = 0;       ///< unused; reserved.
};

/// Returns true when the two accesses certainly touch disjoint memory.
bool certainlyDisjoint(const StampedRef &A, const StampedRef &B) {
  const MemRef &MA = *A.Mem;
  const MemRef &MB = *B.Mem;
  // Distinct named arrays never overlap.
  if (MA.ArrayId >= 0 && MB.ArrayId >= 0 && MA.ArrayId != MB.ArrayId)
    return true;
  if (!MA.sameLinearForm(MB))
    return false;
  if (A.Epochs != B.Epochs)
    return false;
  int64_t Delta = MA.Const - MB.Const;
  if (Delta < 0)
    Delta = -Delta;
  return Delta >= std::max(MA.Size, MB.Size);
}

} // namespace

DepDAG sched::buildDepDAG(const std::vector<const Instr *> &Instrs) {
  unsigned N = static_cast<unsigned>(Instrs.size());
  DepDAG G(N);

  // --- Register dependences -------------------------------------------------
  // LastDef[r] = index of most recent writer; ReadersSinceDef[r] = readers of
  // the current value.
  std::map<uint32_t, unsigned> LastDef;
  std::map<uint32_t, std::vector<unsigned>> Readers;
  std::map<uint32_t, uint32_t> DefCount;

  std::vector<StampedRef> Stamped(N);
  std::vector<Reg> Uses;

  for (unsigned I = 0; I != N; ++I) {
    const Instr &In = *Instrs[I];

    Uses.clear();
    In.appendUses(Uses);
    for (Reg R : Uses) {
      auto DefIt = LastDef.find(R.Id);
      if (DefIt != LastDef.end())
        G.addEdge(DefIt->second, I); // true dependence
      Readers[R.Id].push_back(I);
    }

    if (Reg D = In.def(); D.isValid()) {
      auto DefIt = LastDef.find(D.Id);
      if (DefIt != LastDef.end())
        G.addEdge(DefIt->second, I); // output dependence
      for (unsigned Rd : Readers[D.Id])
        G.addEdge(Rd, I); // anti dependence
      Readers[D.Id].clear();
      LastDef[D.Id] = I;
      ++DefCount[D.Id];
    }

    if (In.isMem()) {
      Stamped[I].Mem = &In.Mem;
      Stamped[I].Epochs.reserve(In.Mem.Terms.size());
      for (const MemRef::Term &T : In.Mem.Terms)
        Stamped[I].Epochs.push_back(DefCount[T.RegId]);
    }
  }

  // --- Memory dependences ---------------------------------------------------
  for (unsigned J = 0; J != N; ++J) {
    if (!Instrs[J]->isMem())
      continue;
    bool JStore = Instrs[J]->isStore();
    for (unsigned I = 0; I != J; ++I) {
      if (!Instrs[I]->isMem())
        continue;
      bool IStore = Instrs[I]->isStore();
      if (!IStore && !JStore)
        continue; // load-load pairs are free to reorder
      if (certainlyDisjoint(Stamped[I], Stamped[J]))
        continue;
      G.addEdge(I, J);
    }
  }

  // --- Locality miss->hit arcs (section 4.2) --------------------------------
  // "Dependence arcs were added in the code DAG between each miss load and
  //  its corresponding hit loads to prevent the latter from floating above
  //  the miss during scheduling."
  // Single forward pass: each hit is anchored below the *nearest preceding*
  // miss of its group. (A two-pass version keyed on the last miss per group
  // silently dropped the arc for hits sandwiched between two misses.)
  std::map<int, unsigned> LastMiss;
  for (unsigned I = 0; I != N; ++I) {
    const Instr &In = *Instrs[I];
    if (!In.isLoad() || In.LocalityGroup < 0)
      continue;
    if (In.HM == HitMiss::Miss) {
      LastMiss[In.LocalityGroup] = I;
    } else if (In.HM == HitMiss::Hit) {
      auto It = LastMiss.find(In.LocalityGroup);
      if (It != LastMiss.end())
        G.addEdge(It->second, I);
    }
  }

  return G;
}

void sched::addBlockControlEdges(DepDAG &G,
                                 const std::vector<const Instr *> &Instrs) {
  assert(!Instrs.empty() && Instrs.back()->isTerminator() &&
         "region must end in the block terminator");
  unsigned Last = static_cast<unsigned>(Instrs.size()) - 1;
  for (unsigned I = 0; I != Last; ++I)
    G.addEdge(I, Last);
}
