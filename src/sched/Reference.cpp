//===- sched/Reference.cpp - Reference scheduler implementations -----------===//
//
// Verbatim copies of the scheduler core as it stood before the
// compile-throughput overhaul (modulo the removal of one dead struct field).
// See Reference.h for why they are kept.
//
//===----------------------------------------------------------------------===//

#include "sched/Reference.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

using namespace bsched;
using namespace bsched::sched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Dependence DAG
//===----------------------------------------------------------------------===//

namespace {

/// Epoch-stamped memory reference: the linear form is only comparable when
/// the referenced registers have identical definition counts.
struct StampedRef {
  const MemRef *Mem = nullptr;
  std::vector<uint32_t> Epochs; ///< parallel to Mem->Terms.
};

/// Returns true when the two accesses certainly touch disjoint memory.
bool certainlyDisjoint(const StampedRef &A, const StampedRef &B) {
  const MemRef &MA = *A.Mem;
  const MemRef &MB = *B.Mem;
  // Distinct named arrays never overlap.
  if (MA.ArrayId >= 0 && MB.ArrayId >= 0 && MA.ArrayId != MB.ArrayId)
    return true;
  if (!MA.sameLinearForm(MB))
    return false;
  if (A.Epochs != B.Epochs)
    return false;
  int64_t Delta = MA.Const - MB.Const;
  if (Delta < 0)
    Delta = -Delta;
  return Delta >= std::max(MA.Size, MB.Size);
}

} // namespace

DepDAG reference::buildDepDAG(const std::vector<const Instr *> &Instrs) {
  unsigned N = static_cast<unsigned>(Instrs.size());
  DepDAG G(N);

  // --- Register dependences -------------------------------------------------
  // LastDef[r] = index of most recent writer; ReadersSinceDef[r] = readers of
  // the current value.
  std::map<uint32_t, unsigned> LastDef;
  std::map<uint32_t, std::vector<unsigned>> Readers;
  std::map<uint32_t, uint32_t> DefCount;

  std::vector<StampedRef> Stamped(N);
  std::vector<Reg> Uses;

  for (unsigned I = 0; I != N; ++I) {
    const Instr &In = *Instrs[I];

    Uses.clear();
    In.appendUses(Uses);
    for (Reg R : Uses) {
      auto DefIt = LastDef.find(R.Id);
      if (DefIt != LastDef.end())
        G.addEdge(DefIt->second, I); // true dependence
      Readers[R.Id].push_back(I);
    }

    if (Reg D = In.def(); D.isValid()) {
      auto DefIt = LastDef.find(D.Id);
      if (DefIt != LastDef.end())
        G.addEdge(DefIt->second, I); // output dependence
      for (unsigned Rd : Readers[D.Id])
        G.addEdge(Rd, I); // anti dependence
      Readers[D.Id].clear();
      LastDef[D.Id] = I;
      ++DefCount[D.Id];
    }

    if (In.isMem()) {
      Stamped[I].Mem = &In.Mem;
      Stamped[I].Epochs.reserve(In.Mem.Terms.size());
      for (const MemRef::Term &T : In.Mem.Terms)
        Stamped[I].Epochs.push_back(DefCount[T.RegId]);
    }
  }

  // --- Memory dependences ---------------------------------------------------
  for (unsigned J = 0; J != N; ++J) {
    if (!Instrs[J]->isMem())
      continue;
    bool JStore = Instrs[J]->isStore();
    for (unsigned I = 0; I != J; ++I) {
      if (!Instrs[I]->isMem())
        continue;
      bool IStore = Instrs[I]->isStore();
      if (!IStore && !JStore)
        continue; // load-load pairs are free to reorder
      if (certainlyDisjoint(Stamped[I], Stamped[J]))
        continue;
      G.addEdge(I, J);
    }
  }

  // --- Locality miss->hit arcs (section 4.2) --------------------------------
  // "Dependence arcs were added in the code DAG between each miss load and
  //  its corresponding hit loads to prevent the latter from floating above
  //  the miss during scheduling."
  // Single forward pass: each hit is anchored below the *nearest preceding*
  // miss of its group. (A two-pass version keyed on the last miss per group
  // silently dropped the arc for hits sandwiched between two misses.)
  std::map<int, unsigned> LastMiss;
  for (unsigned I = 0; I != N; ++I) {
    const Instr &In = *Instrs[I];
    if (!In.isLoad() || In.LocalityGroup < 0)
      continue;
    if (In.HM == HitMiss::Miss) {
      LastMiss[In.LocalityGroup] = I;
    } else if (In.HM == HitMiss::Hit) {
      auto It = LastMiss.find(In.LocalityGroup);
      if (It != LastMiss.end())
        G.addEdge(It->second, I);
    }
  }

  return G;
}

//===----------------------------------------------------------------------===//
// Balanced weights
//===----------------------------------------------------------------------===//

std::vector<double>
reference::balancedWeights(const DepDAG &G,
                           const std::vector<const Instr *> &Instrs,
                           BalanceOptions Opts) {
  unsigned N = G.size();
  std::vector<double> W = traditionalWeights(Instrs);

  // Candidates for balancing: loads (hit-annotated loads keep the
  // optimistic weight so their would-be padders serve other loads), plus —
  // with BalanceFixedOps, the paper's future-work extension — multi-cycle
  // fixed-latency instructions, which then compete for padders too.
  std::vector<unsigned> Loads; // historical name: the balanced candidates
  std::vector<bool> IsBalancedLoad(N, false);
  for (unsigned I = 0; I != N; ++I) {
    bool Candidate = false;
    if (Instrs[I]->isLoad())
      Candidate =
          !(Opts.RespectHitAnnotations && Instrs[I]->HM == HitMiss::Hit);
    else if (Opts.BalanceFixedOps && !Instrs[I]->isTerminator())
      Candidate = opInfo(Instrs[I]->Op).Latency > 1;
    if (!Candidate)
      continue;
    Loads.push_back(I);
    IsBalancedLoad[I] = true;
  }
  if (Loads.empty())
    return W;

  std::vector<BitVec> Reach = G.reachability();
  auto Related = [&](unsigned A, unsigned B) {
    return Reach[A].test(B) || Reach[B].test(A);
  };

  std::vector<double> Extra(N, 0.0);
  // Scratch union-find over the candidate loads of one iteration.
  std::vector<unsigned> Avail;
  std::vector<unsigned> Parent(Loads.size());
  std::vector<unsigned> CompSize(Loads.size());

  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };

  for (unsigned Node = 0; Node != N; ++Node) {
    // Loads that could be serviced while Node initiates execution: no
    // dependence path between Node and the load, in either direction.
    Avail.clear();
    for (size_t LI = 0; LI != Loads.size(); ++LI) {
      unsigned L = Loads[LI];
      if (L == Node || Related(Node, L))
        continue;
      Avail.push_back(static_cast<unsigned>(LI));
    }
    if (Avail.empty())
      continue;

    // Loads connected by a dependence path compete for Node's single issue
    // slot; loads in separate components each get full credit.
    for (unsigned LI : Avail) {
      Parent[LI] = LI;
      CompSize[LI] = 1;
    }
    for (size_t A = 0; A != Avail.size(); ++A)
      for (size_t B = A + 1; B != Avail.size(); ++B) {
        unsigned LA = Avail[A], LB = Avail[B];
        if (!Related(Loads[LA], Loads[LB]))
          continue;
        unsigned RA = Find(LA), RB = Find(LB);
        if (RA == RB)
          continue;
        Parent[RB] = RA;
        CompSize[RA] += CompSize[RB];
      }
    for (unsigned LI : Avail)
      Extra[Loads[LI]] += 1.0 / CompSize[Find(LI)];
  }

  for (unsigned I = 0; I != N; ++I) {
    if (!IsBalancedLoad[I])
      continue;
    double Balanced = 1.0 + Extra[I];
    if (Instrs[I]->isLoad()) {
      W[I] = std::min(std::max(Balanced,
                               static_cast<double>(LoadHitLatency)),
                      Opts.WeightCap);
    } else {
      // Fixed-latency op: its true latency is known, so never weight it
      // beyond that; when parallelism is scarce its weight shrinks and the
      // padders flow to whoever can still use them.
      W[I] = std::min(static_cast<double>(opInfo(Instrs[I]->Op).Latency),
                      std::max(Balanced, 1.0));
    }
  }
  return W;
}

//===----------------------------------------------------------------------===//
// List scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Tie-break key (larger wins), per section 4.2.
struct TieKey {
  int RegPressure;   ///< consumed registers minus defined registers.
  int Exposed;       ///< successors that become ready if this issues.
  int NegOrigIndex;  ///< earlier original position preferred.
};

bool tieLess(const TieKey &A, const TieKey &B) {
  if (A.RegPressure != B.RegPressure)
    return A.RegPressure < B.RegPressure;
  if (A.Exposed != B.Exposed)
    return A.Exposed < B.Exposed;
  return A.NegOrigIndex < B.NegOrigIndex;
}

} // namespace

std::vector<unsigned>
reference::listSchedule(const DepDAG &G, const std::vector<double> &Weights,
                        const std::vector<const Instr *> &Instrs,
                        unsigned PressureThreshold) {
  unsigned N = G.size();
  assert(Weights.size() == N && Instrs.size() == N && "size mismatch");

  // Pressure bookkeeping: the producing node of every register operand, and
  // per-producer remaining-reader counts, so scheduling can track how many
  // values are live in the partial schedule.
  std::vector<std::vector<unsigned>> Producers(N); // per node, dedup'd
  std::vector<unsigned> ReadersLeft(N, 0);
  {
    std::map<uint32_t, unsigned> LastDef;
    std::vector<Reg> Uses;
    for (unsigned I = 0; I != N; ++I) {
      Uses.clear();
      Instrs[I]->appendUses(Uses);
      for (Reg R : Uses) {
        auto It = LastDef.find(R.Id);
        if (It == LastDef.end())
          continue;
        unsigned P = It->second;
        bool Seen = false;
        for (unsigned Q : Producers[I])
          Seen |= Q == P;
        if (!Seen) {
          Producers[I].push_back(P);
          ++ReadersLeft[P];
        }
      }
      if (Reg D = Instrs[I]->def(); D.isValid())
        LastDef[D.Id] = I;
    }
  }
  unsigned Live[2] = {0, 0}; // [0]=int, [1]=fp values live right now.
  auto clsOf = [&](unsigned Node) {
    return opInfo(Instrs[Node]->Op).DstCls == 1 ? 1 : 0;
  };
  // Net liveness change of issuing Node for class C.
  auto pressureDelta = [&](unsigned Node, int C) {
    int Delta = 0;
    if (Reg D = Instrs[Node]->def();
        D.isValid() && clsOf(Node) == C && ReadersLeft[Node] > 0)
      ++Delta;
    for (unsigned P : Producers[Node])
      if (ReadersLeft[P] == 1 &&
          (opInfo(Instrs[P]->Op).DstCls == 1 ? 1 : 0) == C)
        --Delta;
    return Delta;
  };

  // Priority: weight plus maximum successor priority (critical path).
  std::vector<double> Prio(N, 0.0);
  std::vector<unsigned> Topo = G.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    unsigned I = *It;
    double MaxSucc = 0.0;
    for (unsigned S : G.succs(I))
      MaxSucc = std::max(MaxSucc, Prio[S]);
    Prio[I] = Weights[I] + MaxSucc;
  }

  std::vector<unsigned> PredsLeft(N);
  std::vector<unsigned> Ready;
  for (unsigned I = 0; I != N; ++I) {
    PredsLeft[I] = static_cast<unsigned>(G.preds(I).size());
    if (PredsLeft[I] == 0)
      Ready.push_back(I);
  }

  auto tieKeyOf = [&](unsigned I) {
    std::vector<Reg> Uses;
    Instrs[I]->appendUses(Uses);
    int Consumed = static_cast<int>(Uses.size());
    int Defined = Instrs[I]->def().isValid() ? 1 : 0;
    int Exposed = 0;
    for (unsigned S : G.succs(I))
      if (PredsLeft[S] == 1)
        ++Exposed;
    return TieKey{Consumed - Defined, Exposed, -static_cast<int>(I)};
  };

  std::vector<unsigned> Order;
  Order.reserve(N);
  constexpr double Eps = 1e-9;
  while (!Ready.empty()) {
    // When a register class is saturated, restrict the candidates to
    // instructions that do not grow its liveness (if any exist).
    int OverClass = -1;
    if (PressureThreshold != 0) {
      if (Live[0] >= PressureThreshold)
        OverClass = 0;
      else if (Live[1] >= PressureThreshold)
        OverClass = 1;
    }
    auto admissible = [&](unsigned Node) {
      return OverClass < 0 || pressureDelta(Node, OverClass) <= 0;
    };
    bool AnyAdmissible = false;
    if (OverClass >= 0)
      for (unsigned R : Ready)
        AnyAdmissible |= admissible(R);
    if (!AnyAdmissible)
      OverClass = -1; // Nothing relieves pressure: fall back to priority.

    // Select the admissible ready instruction with the highest priority,
    // breaking ties with the heuristic stack.
    size_t Best = Ready.size();
    TieKey BestKey{0, 0, 0};
    for (size_t K = 0; K != Ready.size(); ++K) {
      if (!admissible(Ready[K]))
        continue;
      if (Best == Ready.size()) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      double DP = Prio[Ready[K]] - Prio[Ready[Best]];
      if (DP > Eps) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      if (DP < -Eps)
        continue;
      TieKey Key = tieKeyOf(Ready[K]);
      if (tieLess(BestKey, Key)) {
        Best = K;
        BestKey = Key;
      }
    }
    assert(Best != Ready.size() && "no candidate selected");
    unsigned I = Ready[Best];
    Ready.erase(Ready.begin() + static_cast<long>(Best));
    Order.push_back(I);

    // Update liveness: the consumed producers may die; our def goes live.
    for (unsigned P : Producers[I]) {
      assert(ReadersLeft[P] > 0);
      if (--ReadersLeft[P] == 0) {
        unsigned C = opInfo(Instrs[P]->Op).DstCls == 1 ? 1u : 0u;
        assert(Live[C] > 0);
        --Live[C];
      }
    }
    if (Reg D = Instrs[I]->def(); D.isValid() && ReadersLeft[I] > 0)
      ++Live[clsOf(I)];

    for (unsigned S : G.succs(I))
      if (--PredsLeft[S] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == N && "scheduler failed to order all instructions");
  return Order;
}
