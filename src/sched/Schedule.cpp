//===- sched/Schedule.cpp - Balanced & traditional list scheduling ---------===//
//
// The optimized scheduler core. The balanced-weight analysis lives in
// BalancedWeightsBuilder: per-node load-reachability bitset rows, a
// load-to-load relation matrix, and a memo of availability-set ->
// component-credit lists, all extensible as a region grows (the trace
// scheduler extends block by block; one-shot balancedWeights is a
// begin/extend/weights cycle over a thread-local builder). listSchedule
// precomputes the static tie-key parts, maintains the exposed-successor
// counts incrementally, and removes ready entries in O(1) amortized. Both
// are byte-identical to the originals kept in Reference.cpp; the
// golden-schedule and weights_incremental tests assert it.
//
//===----------------------------------------------------------------------===//

#include "sched/Schedule.h"
#include "sched/Reference.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace bsched;
using namespace bsched::sched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Weights
//===----------------------------------------------------------------------===//

std::vector<double>
sched::traditionalWeights(const std::vector<const Instr *> &Instrs) {
  std::vector<double> W(Instrs.size());
  for (size_t I = 0; I != Instrs.size(); ++I)
    W[I] = opInfo(Instrs[I]->Op).Latency;
  return W;
}

//===----------------------------------------------------------------------===//
// BalancedWeightsBuilder
//===----------------------------------------------------------------------===//

namespace {

inline void setWordBit(uint64_t *Row, unsigned I) {
  Row[I / 64] |= 1ull << (I % 64);
}

} // namespace

void BalancedWeightsBuilder::begin(const BalanceOptions &O) {
  Opts = O;
  N = 0;
  L = 0;
  Loads.clear();
  LoadOrd.clear();
  Memo.clear();
  // Row storage and stride persist across regions; rows are re-zeroed as
  // they are claimed (WordsReady/RowsReady reset below via extend()).
  RowsReady = 0;
  RelRowsReady = 0;
  WordsReady = 0;
}

/// Widens every row to \p NewStride words in place (back-to-front moves, so
/// no temporary allocation). The memo's keys are active-word vectors, not
/// strided rows, so they survive — but growing the stride means the load
/// count crossed a word boundary, which invalidates nothing by itself;
/// entries are only ever keyed on availability sets whose Rel sub-matrix is
/// final, so the memo is kept.
void BalancedWeightsBuilder::relayout(size_t NewStride) {
  auto Widen = [&](std::vector<uint64_t> &V, size_t Rows) {
    V.resize(std::max(V.size() / (Stride ? Stride : 1), Rows) * NewStride, 0);
    for (size_t R = Rows; R-- > 0;) {
      std::memmove(V.data() + R * NewStride, V.data() + R * Stride,
                   Stride * sizeof(uint64_t));
      std::memset(V.data() + R * NewStride + Stride, 0,
                  (NewStride - Stride) * sizeof(uint64_t));
    }
  };
  Widen(Fwd, RowsReady);
  Widen(Bwd, RowsReady);
  Widen(Rel, RelRowsReady);
  Stride = NewStride;
}

void BalancedWeightsBuilder::extend(const DepDAG &G,
                                    const std::vector<const Instr *> &Instrs,
                                    unsigned UpTo) {
  unsigned N1 = UpTo;
  assert(N1 <= G.size() && N1 <= Instrs.size() && "prefix out of range");
  assert(N1 >= N && "region shrank between extends");
  if (N1 == N)
    return;
  unsigned N0 = N, L0 = L;

  // Candidates for balancing among the new nodes: loads (hit-annotated
  // loads keep the optimistic weight so their would-be padders serve other
  // loads), plus — with BalanceFixedOps, the paper's future-work extension —
  // multi-cycle fixed-latency instructions, which then compete for padders
  // too. Node ids are topological, so new ordinals append at the end.
  LoadOrd.resize(N1, -1);
  for (unsigned I = N0; I != N1; ++I) {
    bool Candidate = false;
    if (Instrs[I]->isLoad())
      Candidate =
          !(Opts.RespectHitAnnotations && Instrs[I]->HM == HitMiss::Hit);
    else if (Opts.BalanceFixedOps && !Instrs[I]->isTerminator())
      Candidate = opInfo(Instrs[I]->Op).Latency > 1;
    if (!Candidate)
      continue;
    LoadOrd[I] = static_cast<int>(L);
    Loads.push_back(I);
    ++L;
  }
  N = N1;
  if (L == 0)
    return; // nothing to analyse yet; rows materialize once a load appears

  size_t NeedW = LW();
  if (NeedW > Stride)
    relayout(std::max(NeedW, Stride * 2));

  // Claim storage: widen previously-claimed rows to the new active word
  // count, then zero-claim the new rows. (Recycled memory: explicit zeroing,
  // not vector value-init, is what makes the rows valid.)
  if (Fwd.size() < size_t(N1) * Stride) {
    Fwd.resize(size_t(N1) * Stride, 0);
    Bwd.resize(size_t(N1) * Stride, 0);
  }
  if (Rel.size() < size_t(L) * Stride)
    Rel.resize(size_t(L) * Stride, 0);
  if (NeedW > WordsReady) {
    for (size_t R = 0; R != RowsReady; ++R) {
      std::memset(Fwd.data() + R * Stride + WordsReady, 0,
                  (NeedW - WordsReady) * sizeof(uint64_t));
      std::memset(Bwd.data() + R * Stride + WordsReady, 0,
                  (NeedW - WordsReady) * sizeof(uint64_t));
    }
    for (size_t R = 0; R != RelRowsReady; ++R)
      std::memset(Rel.data() + R * Stride + WordsReady, 0,
                  (NeedW - WordsReady) * sizeof(uint64_t));
  }
  for (size_t R = RowsReady; R != N1; ++R) {
    std::memset(Fwd.data() + R * Stride, 0, NeedW * sizeof(uint64_t));
    std::memset(Bwd.data() + R * Stride, 0, NeedW * sizeof(uint64_t));
  }
  RowsReady = N1;
  WordsReady = NeedW;

  // Forward rows (loads reachable from each node): edges only point to
  // higher ids, so (1) a new node can never reach an old load — old-ordinal
  // bits of new rows stay zero; (2) old-ordinal bits of old rows are final.
  // Only the new loads' bit range [L0, L) needs sweeping, over ALL nodes
  // (old nodes do reach new loads through old->new edges), reverse-id so
  // successors are finished first.
  size_t WB0 = size_t(L0) / 64; // first word holding any new ordinal
  if (L > L0) {
    for (unsigned I = N1; I-- > 0;) {
      uint64_t *Row = Fwd.data() + size_t(I) * Stride;
      for (unsigned S : G.succs(I)) {
        if (S >= N1)
          continue; // deferred until an extension covers S
        const uint64_t *SR = Fwd.data() + size_t(S) * Stride;
        for (size_t Wd = WB0; Wd != NeedW; ++Wd)
          Row[Wd] |= SR[Wd];
        if (int Ord = LoadOrd[S]; Ord >= static_cast<int>(L0))
          setWordBit(Row, static_cast<unsigned>(Ord));
      }
    }
  }

  // Backward rows (loads reaching each node): preds of an old node are old,
  // so old rows are final in full; only the new nodes need rows, over the
  // whole active span (old loads do reach new nodes).
  for (unsigned I = N0; I != N1; ++I) {
    uint64_t *Row = Bwd.data() + size_t(I) * Stride;
    for (unsigned P : G.preds(I)) {
      const uint64_t *PR = Bwd.data() + size_t(P) * Stride;
      for (size_t Wd = 0; Wd != NeedW; ++Wd)
        Row[Wd] |= PR[Wd];
      if (int Ord = LoadOrd[P]; Ord >= 0)
        setWordBit(Row, static_cast<unsigned>(Ord));
    }
  }

  // Load-to-load relatedness, Rel[A] = loads reachable from A or reaching
  // A. Old rows only gain bits for the new loads they reach (nothing new
  // can reach an old load); new rows are Fwd | Bwd of the load's node.
  if (L > L0) {
    for (unsigned LI = 0; LI != L0; ++LI) {
      uint64_t *Row = Rel.data() + size_t(LI) * Stride;
      const uint64_t *F = Fwd.data() + size_t(Loads[LI]) * Stride;
      for (size_t Wd = WB0; Wd != NeedW; ++Wd)
        Row[Wd] |= F[Wd];
    }
    for (unsigned LI = L0; LI != L; ++LI) {
      uint64_t *Row = Rel.data() + size_t(LI) * Stride;
      const uint64_t *F = Fwd.data() + size_t(Loads[LI]) * Stride;
      const uint64_t *B = Bwd.data() + size_t(Loads[LI]) * Stride;
      for (size_t Wd = 0; Wd != NeedW; ++Wd)
        Row[Wd] = F[Wd] | B[Wd];
    }
    RelRowsReady = L;
  }
}

std::vector<double>
BalancedWeightsBuilder::weights(const std::vector<const Instr *> &Instrs) {
  assert(Instrs.size() == N && "weights() before matching extend()");
  std::vector<double> W = traditionalWeights(Instrs);
  if (L == 0)
    return W;

  size_t NeedW = LW();
  Extra.assign(N, 0.0);
  Avail.resize(NeedW);
  Rem.resize(NeedW);
  Cur.resize(NeedW);
  Next.resize(NeedW);
  uint64_t TopMask = (L % 64) ? ((1ull << (L % 64)) - 1) : ~0ull;

  for (unsigned Node = 0; Node != N; ++Node) {
    // Loads that could be serviced while Node initiates execution: no
    // dependence path between Node and the load, in either direction.
    const uint64_t *F = Fwd.data() + size_t(Node) * Stride;
    const uint64_t *B = Bwd.data() + size_t(Node) * Stride;
    for (size_t Wd = 0; Wd != NeedW; ++Wd)
      Avail[Wd] = ~(F[Wd] | B[Wd]);
    Avail[NeedW - 1] &= TopMask;
    if (int Ord = LoadOrd[Node]; Ord >= 0)
      Avail[Ord / 64] &= ~(1ull << (Ord % 64));
    bool Any = false;
    for (size_t Wd = 0; Wd != NeedW; ++Wd)
      Any |= Avail[Wd] != 0;
    if (!Any)
      continue;

    auto [It, Inserted] = Memo.try_emplace(Avail);
    if (Inserted) {
      // Loads connected by a dependence path compete for Node's single
      // issue slot; loads in separate components each get full credit.
      // Component search: repeated bitset frontier expansion over Rel.
      std::vector<std::pair<unsigned, double>> &Contrib = It->second;
      std::copy(Avail.begin(), Avail.end(), Rem.begin());
      for (;;) {
        int Seed = -1;
        for (size_t Wd = 0; Wd != NeedW && Seed < 0; ++Wd)
          if (Rem[Wd])
            Seed = static_cast<int>(Wd * 64 +
                                    __builtin_ctzll(Rem[Wd]));
        if (Seed < 0)
          break;
        Members.clear();
        std::fill(Cur.begin(), Cur.end(), 0);
        setWordBit(Cur.data(), static_cast<unsigned>(Seed));
        Rem[Seed / 64] &= ~(1ull << (Seed % 64));
        for (;;) {
          bool CurAny = false;
          std::fill(Next.begin(), Next.end(), 0);
          for (size_t Wd = 0; Wd != NeedW; ++Wd) {
            uint64_t Bits = Cur[Wd];
            while (Bits) {
              unsigned I =
                  static_cast<unsigned>(Wd * 64 + __builtin_ctzll(Bits));
              Bits &= Bits - 1;
              Members.push_back(I);
              const uint64_t *RR = Rel.data() + size_t(I) * Stride;
              for (size_t V = 0; V != NeedW; ++V)
                Next[V] |= RR[V];
            }
          }
          for (size_t Wd = 0; Wd != NeedW; ++Wd) {
            Next[Wd] &= Rem[Wd];
            Rem[Wd] &= ~Next[Wd];
            CurAny |= Next[Wd] != 0;
          }
          std::swap(Cur, Next);
          if (!CurAny)
            break;
        }
        double Credit = 1.0 / static_cast<double>(Members.size());
        for (unsigned I : Members)
          Contrib.emplace_back(I, Credit);
      }
    }
    // Each available load receives exactly one credit per node, so the
    // accumulation order (node-major, as in the reference) is preserved and
    // the doubles come out bit-identical — Extra is re-accumulated from
    // scratch on every weights() call, never delta-adjusted.
    for (const auto &[LI, Credit] : It->second)
      Extra[Loads[LI]] += Credit;
  }

  for (unsigned LI = 0; LI != L; ++LI) {
    unsigned I = Loads[LI];
    double Balanced = 1.0 + Extra[I];
    if (Instrs[I]->isLoad()) {
      W[I] = std::min(std::max(Balanced,
                               static_cast<double>(LoadHitLatency)),
                      Opts.WeightCap);
    } else {
      // Fixed-latency op: its true latency is known, so never weight it
      // beyond that; when parallelism is scarce its weight shrinks and the
      // padders flow to whoever can still use them.
      W[I] = std::min(static_cast<double>(opInfo(Instrs[I]->Op).Latency),
                      std::max(Balanced, 1.0));
    }
  }
  return W;
}

std::vector<double>
sched::balancedWeights(const DepDAG &G,
                       const std::vector<const Instr *> &Instrs,
                       BalanceOptions Opts) {
  if (Opts.Impl == SchedImpl::Reference)
    return reference::balancedWeights(G, Instrs, Opts);

  // One-shot = builder with a single extension. The builder's storage is
  // recycled across regions (thread-local), which is most of the win for
  // block-sized regions — the old per-call BitVec matrices dominated the
  // runtime of small schedules.
  static thread_local BalancedWeightsBuilder Builder;
  Builder.begin(Opts);
  Builder.extend(G, Instrs);
  return Builder.weights(Instrs);
}

//===----------------------------------------------------------------------===//
// List scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Tie-break key (larger wins), per section 4.2.
struct TieKey {
  int RegPressure;   ///< consumed registers minus defined registers.
  int Exposed;       ///< successors that become ready if this issues.
  int NegOrigIndex;  ///< earlier original position preferred.
};

bool tieLess(const TieKey &A, const TieKey &B) {
  if (A.RegPressure != B.RegPressure)
    return A.RegPressure < B.RegPressure;
  if (A.Exposed != B.Exposed)
    return A.Exposed < B.Exposed;
  return A.NegOrigIndex < B.NegOrigIndex;
}

} // namespace

std::vector<unsigned>
sched::listSchedule(const DepDAG &G, const std::vector<double> &Weights,
                    const std::vector<const Instr *> &Instrs,
                    unsigned PressureThreshold, SchedImpl Impl) {
  if (Impl == SchedImpl::Reference)
    return reference::listSchedule(G, Weights, Instrs, PressureThreshold);

  unsigned N = G.size();
  assert(Weights.size() == N && Instrs.size() == N && "size mismatch");
  constexpr unsigned None = ~0u;

  // Static per-node facts, gathered once: register-id space, use counts
  // (the static half of the tie key), destination class and validity.
  uint32_t NumRegs = 0;
  std::vector<int> StaticPressure(N); // consumed minus defined registers
  std::vector<uint8_t> Cls(N);        // 0 = int, 1 = fp destination
  std::vector<bool> DefValid(N);
  std::vector<Reg> Uses;
  for (unsigned I = 0; I != N; ++I) {
    Uses.clear();
    Instrs[I]->appendUses(Uses);
    for (Reg R : Uses)
      NumRegs = std::max(NumRegs, R.Id + 1);
    Reg D = Instrs[I]->def();
    if (D.isValid())
      NumRegs = std::max(NumRegs, D.Id + 1);
    DefValid[I] = D.isValid();
    Cls[I] = opInfo(Instrs[I]->Op).DstCls == 1 ? 1 : 0;
    StaticPressure[I] =
        static_cast<int>(Uses.size()) - (D.isValid() ? 1 : 0);
  }

  // Pressure bookkeeping: the producing node of every register operand, and
  // per-producer remaining-reader counts, so scheduling can track how many
  // values are live in the partial schedule. Producer dedup uses a
  // last-consumer stamp instead of rescanning the producer list.
  std::vector<std::vector<unsigned>> Producers(N); // per node, dedup'd
  std::vector<unsigned> ReadersLeft(N, 0);
  {
    std::vector<unsigned> LastDef(NumRegs, None);
    std::vector<unsigned> LastConsumer(N, None);
    for (unsigned I = 0; I != N; ++I) {
      Uses.clear();
      Instrs[I]->appendUses(Uses);
      for (Reg R : Uses) {
        unsigned P = LastDef[R.Id];
        if (P == None || LastConsumer[P] == I)
          continue;
        LastConsumer[P] = I;
        Producers[I].push_back(P);
        ++ReadersLeft[P];
      }
      if (DefValid[I])
        LastDef[Instrs[I]->def().Id] = I;
    }
  }
  unsigned Live[2] = {0, 0}; // [0]=int, [1]=fp values live right now.
  // Net liveness change of issuing Node for class C.
  auto pressureDelta = [&](unsigned Node, int C) {
    int Delta = 0;
    if (DefValid[Node] && Cls[Node] == C && ReadersLeft[Node] > 0)
      ++Delta;
    for (unsigned P : Producers[Node])
      if (ReadersLeft[P] == 1 && Cls[P] == C)
        --Delta;
    return Delta;
  };

  // Priority: weight plus maximum successor priority (critical path). Node
  // ids are a topological order, so a reverse id sweep sees successors
  // first.
  std::vector<double> Prio(N, 0.0);
  for (unsigned I = N; I-- != 0;) {
    double MaxSucc = 0.0;
    for (unsigned S : G.succs(I))
      MaxSucc = std::max(MaxSucc, Prio[S]);
    Prio[I] = Weights[I] + MaxSucc;
  }

  // Exposed[I] = number of successors that would become ready if I issued
  // (succs whose only unscheduled predecessor is I), maintained
  // incrementally as predecessors retire.
  std::vector<unsigned> PredsLeft(N);
  std::vector<int> Exposed(N, 0);
  for (unsigned I = 0; I != N; ++I)
    PredsLeft[I] = static_cast<unsigned>(G.preds(I).size());
  for (unsigned I = 0; I != N; ++I)
    for (unsigned S : G.succs(I))
      if (PredsLeft[S] == 1)
        ++Exposed[I];

  // Ready list: insertion-ordered entries with tombstoned removal, so
  // selection scans candidates in exactly the reference order while erase
  // is O(1) amortized (compaction halves the buffer when half is dead).
  constexpr unsigned Tomb = ~0u;
  std::vector<unsigned> Ready;
  unsigned LiveEntries = 0, Tombs = 0;
  std::vector<bool> Scheduled(N, false);
  for (unsigned I = 0; I != N; ++I)
    if (PredsLeft[I] == 0) {
      Ready.push_back(I);
      ++LiveEntries;
    }

  auto tieKeyOf = [&](unsigned I) {
    return TieKey{StaticPressure[I], Exposed[I], -static_cast<int>(I)};
  };

  std::vector<unsigned> Order;
  Order.reserve(N);
  constexpr double Eps = 1e-9;
  while (LiveEntries != 0) {
    // When a register class is saturated, restrict the candidates to
    // instructions that do not grow its liveness (if any exist).
    int OverClass = -1;
    if (PressureThreshold != 0) {
      if (Live[0] >= PressureThreshold)
        OverClass = 0;
      else if (Live[1] >= PressureThreshold)
        OverClass = 1;
    }
    auto admissible = [&](unsigned Node) {
      return OverClass < 0 || pressureDelta(Node, OverClass) <= 0;
    };
    bool AnyAdmissible = false;
    if (OverClass >= 0)
      for (unsigned R : Ready)
        AnyAdmissible |= R != Tomb && admissible(R);
    if (!AnyAdmissible)
      OverClass = -1; // Nothing relieves pressure: fall back to priority.

    // Select the admissible ready instruction with the highest priority,
    // breaking ties with the heuristic stack.
    size_t Best = Ready.size();
    TieKey BestKey{0, 0, 0};
    for (size_t K = 0; K != Ready.size(); ++K) {
      if (Ready[K] == Tomb || !admissible(Ready[K]))
        continue;
      if (Best == Ready.size()) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      double DP = Prio[Ready[K]] - Prio[Ready[Best]];
      if (DP > Eps) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      if (DP < -Eps)
        continue;
      TieKey Key = tieKeyOf(Ready[K]);
      if (tieLess(BestKey, Key)) {
        Best = K;
        BestKey = Key;
      }
    }
    assert(Best != Ready.size() && "no candidate selected");
    unsigned I = Ready[Best];
    Ready[Best] = Tomb;
    --LiveEntries;
    if (++Tombs > LiveEntries) {
      Ready.erase(std::remove(Ready.begin(), Ready.end(), Tomb), Ready.end());
      Tombs = 0;
    }
    Order.push_back(I);
    Scheduled[I] = true;

    // Update liveness: the consumed producers may die; our def goes live.
    for (unsigned P : Producers[I]) {
      assert(ReadersLeft[P] > 0);
      if (--ReadersLeft[P] == 0) {
        assert(Live[Cls[P]] > 0);
        --Live[Cls[P]];
      }
    }
    if (DefValid[I] && ReadersLeft[I] > 0)
      ++Live[Cls[I]];

    for (unsigned S : G.succs(I)) {
      unsigned Left = --PredsLeft[S];
      if (Left == 0) {
        Ready.push_back(S);
        ++LiveEntries;
      } else if (Left == 1) {
        // S's one remaining unscheduled predecessor now exposes it.
        for (unsigned P : G.preds(S))
          if (!Scheduled[P]) {
            ++Exposed[P];
            break;
          }
      }
    }
  }
  assert(Order.size() == N && "scheduler failed to order all instructions");
  return Order;
}

//===----------------------------------------------------------------------===//
// Function-level driver
//===----------------------------------------------------------------------===//

SchedulerKind
sched::effectiveKind(SchedulerKind Kind,
                     const std::vector<const Instr *> &Instrs,
                     const BalanceOptions &Opts) {
  if (Kind != SchedulerKind::Hybrid)
    return Kind;
  int64_t LoadDemand = 0, FixedDemand = 0;
  for (const Instr *I : Instrs) {
    if (I->isLoad()) {
      if (!(Opts.RespectHitAnnotations && I->HM == HitMiss::Hit))
        LoadDemand += Opts.HybridLoadCost;
    } else if (!I->isTerminator()) {
      FixedDemand += opInfo(I->Op).Latency - 1;
    }
  }
  return LoadDemand >= FixedDemand ? SchedulerKind::Balanced
                                   : SchedulerKind::Traditional;
}

std::vector<unsigned>
sched::scheduleRegion(const std::vector<const Instr *> &Instrs,
                      SchedulerKind Kind, BalanceOptions Opts) {
  Kind = effectiveKind(Kind, Instrs, Opts);
  DepDAG G = buildDepDAG(Instrs, Opts.Impl);
  addBlockControlEdges(G, Instrs);
  std::vector<double> W = Kind == SchedulerKind::Balanced
                              ? balancedWeights(G, Instrs, Opts)
                              : traditionalWeights(Instrs);
  std::vector<unsigned> Order =
      listSchedule(G, W, Instrs, Opts.PressureThreshold, Opts.Impl);
  if (Opts.Impl == SchedImpl::Exact) {
    // Optimality-oracle refinement: warm-start the branch-and-bound solver
    // with the list schedule (so exact can never be worse) and adopt its
    // order when the region closes within budget.
    exact::ExactResult R =
        exact::scheduleExact(G, Instrs, Opts.Exact, &Order);
    unsigned FastCycles = exact::evaluateOrder(G, Instrs, Order, Opts.Exact);
    exact::recordRegion(R, FastCycles);
    if (R.closed())
      Order = std::move(R.Order);
  }
  return Order;
}

void sched::scheduleFunction(Module &M, SchedulerKind Kind,
                             BalanceOptions Opts) {
  for (BasicBlock &B : M.Fn.Blocks) {
    if (B.Instrs.size() <= 2)
      continue;
    std::vector<const Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    std::vector<unsigned> Order = scheduleRegion(Ptrs, Kind, Opts);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(B.Instrs.size());
    for (unsigned I : Order)
      NewInstrs.push_back(B.Instrs[I]);
    B.Instrs = std::move(NewInstrs);
  }
}
