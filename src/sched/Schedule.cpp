//===- sched/Schedule.cpp - Balanced & traditional list scheduling ---------===//
//
// The optimized scheduler core. balancedWeights replaces the per-node
// union-find rebuild with bitset component search over a load-to-load
// relation matrix (plus memoization of repeated availability sets), and
// listSchedule precomputes the static tie-key parts, maintains the
// exposed-successor counts incrementally, and removes ready entries in O(1)
// amortized. Both are byte-identical to the originals kept in Reference.cpp;
// the golden-schedule tests assert it.
//
//===----------------------------------------------------------------------===//

#include "sched/Schedule.h"
#include "sched/Reference.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace bsched;
using namespace bsched::sched;
using namespace bsched::ir;

//===----------------------------------------------------------------------===//
// Weights
//===----------------------------------------------------------------------===//

std::vector<double>
sched::traditionalWeights(const std::vector<const Instr *> &Instrs) {
  std::vector<double> W(Instrs.size());
  for (size_t I = 0; I != Instrs.size(); ++I)
    W[I] = opInfo(Instrs[I]->Op).Latency;
  return W;
}

namespace {

/// FNV-1a over a word vector; keys the availability-set memo below.
struct WordsHash {
  size_t operator()(const std::vector<uint64_t> &Ws) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint64_t W : Ws) {
      H ^= W;
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace

std::vector<double>
sched::balancedWeights(const DepDAG &G,
                       const std::vector<const Instr *> &Instrs,
                       BalanceOptions Opts) {
  if (Opts.Impl == SchedImpl::Reference)
    return reference::balancedWeights(G, Instrs, Opts);

  unsigned N = G.size();
  std::vector<double> W = traditionalWeights(Instrs);

  // Candidates for balancing: loads (hit-annotated loads keep the
  // optimistic weight so their would-be padders serve other loads), plus —
  // with BalanceFixedOps, the paper's future-work extension — multi-cycle
  // fixed-latency instructions, which then compete for padders too.
  std::vector<unsigned> Loads; // historical name: the balanced candidates
  std::vector<bool> IsBalancedLoad(N, false);
  for (unsigned I = 0; I != N; ++I) {
    bool Candidate = false;
    if (Instrs[I]->isLoad())
      Candidate =
          !(Opts.RespectHitAnnotations && Instrs[I]->HM == HitMiss::Hit);
    else if (Opts.BalanceFixedOps && !Instrs[I]->isTerminator())
      Candidate = opInfo(Instrs[I]->Op).Latency > 1;
    if (!Candidate)
      continue;
    Loads.push_back(I);
    IsBalancedLoad[I] = true;
  }
  if (Loads.empty())
    return W;

  // Small regions: the reference's per-node union-find has less setup cost
  // than the bitset sweeps below and produces identical weights; use it.
  if (N < 96)
    return reference::balancedWeights(G, Instrs, Opts);

  unsigned L = static_cast<unsigned>(Loads.size());

  // Node id -> load ordinal (or -1).
  std::vector<int> LoadOrd(N, -1);
  for (unsigned LI = 0; LI != L; ++LI)
    LoadOrd[Loads[LI]] = static_cast<int>(LI);

  // Per-node load-ordinal masks, computed by two linear sweeps instead of
  // materializing the N x N reachability closure: node ids are topologically
  // ordered (every edge points forward), so a reverse-id sweep accumulates
  // the loads reachable FROM each node and a forward-id sweep the loads that
  // REACH it. O((N + E) * L/64) words total.
  std::vector<BitVec> FwdLoads(N, BitVec(L)); // loads reachable from node
  std::vector<BitVec> BwdRel(N, BitVec(L));   // loads that reach node
  for (unsigned I = N; I-- > 0;)
    for (unsigned S : G.succs(I)) {
      FwdLoads[I].orWith(FwdLoads[S]);
      if (int Ord = LoadOrd[S]; Ord >= 0)
        FwdLoads[I].set(static_cast<unsigned>(Ord));
    }
  for (unsigned I = 0; I != N; ++I)
    for (unsigned P : G.preds(I)) {
      BwdRel[I].orWith(BwdRel[P]);
      if (int Ord = LoadOrd[P]; Ord >= 0)
        BwdRel[I].set(static_cast<unsigned>(Ord));
    }

  // Load-to-load relatedness: for load A, FwdLoads[A] holds every load a
  // path from A can hit (the reverse direction is statically impossible for
  // A < B); symmetrize into Rel.
  std::vector<BitVec> Rel(L, BitVec(L));
  for (unsigned LI = 0; LI != L; ++LI) {
    Rel[LI].orWith(FwdLoads[Loads[LI]]);
    FwdLoads[Loads[LI]].forEach(
        [&](unsigned Ord) { Rel[Ord].set(LI); });
  }

  std::vector<double> Extra(N, 0.0);

  // Per-node contribution = 1/|component| for each available load, where
  // components are taken over Rel restricted to the node's availability
  // set. Nodes of a regular (unrolled) block repeat the same availability
  // set many times, so the component analysis is memoized on it.
  std::unordered_map<std::vector<uint64_t>, std::vector<std::pair<unsigned, double>>,
                     WordsHash>
      Memo;
  BitVec AllLoads(L);
  for (unsigned LI = 0; LI != L; ++LI)
    AllLoads.set(LI);
  BitVec Avail(L), Rem(L), Cur(L), Next(L);
  std::vector<unsigned> Members;

  for (unsigned Node = 0; Node != N; ++Node) {
    // Loads that could be serviced while Node initiates execution: no
    // dependence path between Node and the load, in either direction.
    Avail = AllLoads;
    Avail.subtract(FwdLoads[Node]); // loads Node reaches
    Avail.subtract(BwdRel[Node]);   // loads that reach Node
    if (int Ord = LoadOrd[Node]; Ord >= 0)
      Avail.reset(static_cast<unsigned>(Ord));
    if (!Avail.any())
      continue;

    auto [It, Inserted] = Memo.try_emplace(Avail.words());
    if (Inserted) {
      // Loads connected by a dependence path compete for Node's single
      // issue slot; loads in separate components each get full credit.
      // Component search: repeated bitset frontier expansion over Rel.
      std::vector<std::pair<unsigned, double>> &Contrib = It->second;
      Rem = Avail;
      int Seed;
      while ((Seed = Rem.findFirst()) >= 0) {
        Members.clear();
        Cur.clear();
        Cur.set(static_cast<unsigned>(Seed));
        Rem.reset(static_cast<unsigned>(Seed));
        while (Cur.any()) {
          Next.clear();
          Cur.forEach([&](unsigned I) {
            Members.push_back(I);
            Next.orWith(Rel[I]);
          });
          Next.andWith(Rem);
          Rem.subtract(Next);
          std::swap(Cur, Next);
        }
        double Credit = 1.0 / static_cast<double>(Members.size());
        for (unsigned I : Members)
          Contrib.emplace_back(I, Credit);
      }
      Rem.clear();
    }
    // Each available load receives exactly one credit per node, so the
    // accumulation order (node-major, as in the reference) is preserved and
    // the doubles come out bit-identical.
    for (const auto &[LI, Credit] : It->second)
      Extra[Loads[LI]] += Credit;
  }

  for (unsigned I = 0; I != N; ++I) {
    if (!IsBalancedLoad[I])
      continue;
    double Balanced = 1.0 + Extra[I];
    if (Instrs[I]->isLoad()) {
      W[I] = std::min(std::max(Balanced,
                               static_cast<double>(LoadHitLatency)),
                      Opts.WeightCap);
    } else {
      // Fixed-latency op: its true latency is known, so never weight it
      // beyond that; when parallelism is scarce its weight shrinks and the
      // padders flow to whoever can still use them.
      W[I] = std::min(static_cast<double>(opInfo(Instrs[I]->Op).Latency),
                      std::max(Balanced, 1.0));
    }
  }
  return W;
}

//===----------------------------------------------------------------------===//
// List scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Tie-break key (larger wins), per section 4.2.
struct TieKey {
  int RegPressure;   ///< consumed registers minus defined registers.
  int Exposed;       ///< successors that become ready if this issues.
  int NegOrigIndex;  ///< earlier original position preferred.
};

bool tieLess(const TieKey &A, const TieKey &B) {
  if (A.RegPressure != B.RegPressure)
    return A.RegPressure < B.RegPressure;
  if (A.Exposed != B.Exposed)
    return A.Exposed < B.Exposed;
  return A.NegOrigIndex < B.NegOrigIndex;
}

} // namespace

std::vector<unsigned>
sched::listSchedule(const DepDAG &G, const std::vector<double> &Weights,
                    const std::vector<const Instr *> &Instrs,
                    unsigned PressureThreshold, SchedImpl Impl) {
  if (Impl == SchedImpl::Reference)
    return reference::listSchedule(G, Weights, Instrs, PressureThreshold);

  unsigned N = G.size();
  assert(Weights.size() == N && Instrs.size() == N && "size mismatch");
  constexpr unsigned None = ~0u;

  // Static per-node facts, gathered once: register-id space, use counts
  // (the static half of the tie key), destination class and validity.
  uint32_t NumRegs = 0;
  std::vector<int> StaticPressure(N); // consumed minus defined registers
  std::vector<uint8_t> Cls(N);        // 0 = int, 1 = fp destination
  std::vector<bool> DefValid(N);
  std::vector<Reg> Uses;
  for (unsigned I = 0; I != N; ++I) {
    Uses.clear();
    Instrs[I]->appendUses(Uses);
    for (Reg R : Uses)
      NumRegs = std::max(NumRegs, R.Id + 1);
    Reg D = Instrs[I]->def();
    if (D.isValid())
      NumRegs = std::max(NumRegs, D.Id + 1);
    DefValid[I] = D.isValid();
    Cls[I] = opInfo(Instrs[I]->Op).DstCls == 1 ? 1 : 0;
    StaticPressure[I] =
        static_cast<int>(Uses.size()) - (D.isValid() ? 1 : 0);
  }

  // Pressure bookkeeping: the producing node of every register operand, and
  // per-producer remaining-reader counts, so scheduling can track how many
  // values are live in the partial schedule. Producer dedup uses a
  // last-consumer stamp instead of rescanning the producer list.
  std::vector<std::vector<unsigned>> Producers(N); // per node, dedup'd
  std::vector<unsigned> ReadersLeft(N, 0);
  {
    std::vector<unsigned> LastDef(NumRegs, None);
    std::vector<unsigned> LastConsumer(N, None);
    for (unsigned I = 0; I != N; ++I) {
      Uses.clear();
      Instrs[I]->appendUses(Uses);
      for (Reg R : Uses) {
        unsigned P = LastDef[R.Id];
        if (P == None || LastConsumer[P] == I)
          continue;
        LastConsumer[P] = I;
        Producers[I].push_back(P);
        ++ReadersLeft[P];
      }
      if (DefValid[I])
        LastDef[Instrs[I]->def().Id] = I;
    }
  }
  unsigned Live[2] = {0, 0}; // [0]=int, [1]=fp values live right now.
  // Net liveness change of issuing Node for class C.
  auto pressureDelta = [&](unsigned Node, int C) {
    int Delta = 0;
    if (DefValid[Node] && Cls[Node] == C && ReadersLeft[Node] > 0)
      ++Delta;
    for (unsigned P : Producers[Node])
      if (ReadersLeft[P] == 1 && Cls[P] == C)
        --Delta;
    return Delta;
  };

  // Priority: weight plus maximum successor priority (critical path). Node
  // ids are a topological order, so a reverse id sweep sees successors
  // first.
  std::vector<double> Prio(N, 0.0);
  for (unsigned I = N; I-- != 0;) {
    double MaxSucc = 0.0;
    for (unsigned S : G.succs(I))
      MaxSucc = std::max(MaxSucc, Prio[S]);
    Prio[I] = Weights[I] + MaxSucc;
  }

  // Exposed[I] = number of successors that would become ready if I issued
  // (succs whose only unscheduled predecessor is I), maintained
  // incrementally as predecessors retire.
  std::vector<unsigned> PredsLeft(N);
  std::vector<int> Exposed(N, 0);
  for (unsigned I = 0; I != N; ++I)
    PredsLeft[I] = static_cast<unsigned>(G.preds(I).size());
  for (unsigned I = 0; I != N; ++I)
    for (unsigned S : G.succs(I))
      if (PredsLeft[S] == 1)
        ++Exposed[I];

  // Ready list: insertion-ordered entries with tombstoned removal, so
  // selection scans candidates in exactly the reference order while erase
  // is O(1) amortized (compaction halves the buffer when half is dead).
  constexpr unsigned Tomb = ~0u;
  std::vector<unsigned> Ready;
  unsigned LiveEntries = 0, Tombs = 0;
  std::vector<bool> Scheduled(N, false);
  for (unsigned I = 0; I != N; ++I)
    if (PredsLeft[I] == 0) {
      Ready.push_back(I);
      ++LiveEntries;
    }

  auto tieKeyOf = [&](unsigned I) {
    return TieKey{StaticPressure[I], Exposed[I], -static_cast<int>(I)};
  };

  std::vector<unsigned> Order;
  Order.reserve(N);
  constexpr double Eps = 1e-9;
  while (LiveEntries != 0) {
    // When a register class is saturated, restrict the candidates to
    // instructions that do not grow its liveness (if any exist).
    int OverClass = -1;
    if (PressureThreshold != 0) {
      if (Live[0] >= PressureThreshold)
        OverClass = 0;
      else if (Live[1] >= PressureThreshold)
        OverClass = 1;
    }
    auto admissible = [&](unsigned Node) {
      return OverClass < 0 || pressureDelta(Node, OverClass) <= 0;
    };
    bool AnyAdmissible = false;
    if (OverClass >= 0)
      for (unsigned R : Ready)
        AnyAdmissible |= R != Tomb && admissible(R);
    if (!AnyAdmissible)
      OverClass = -1; // Nothing relieves pressure: fall back to priority.

    // Select the admissible ready instruction with the highest priority,
    // breaking ties with the heuristic stack.
    size_t Best = Ready.size();
    TieKey BestKey{0, 0, 0};
    for (size_t K = 0; K != Ready.size(); ++K) {
      if (Ready[K] == Tomb || !admissible(Ready[K]))
        continue;
      if (Best == Ready.size()) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      double DP = Prio[Ready[K]] - Prio[Ready[Best]];
      if (DP > Eps) {
        Best = K;
        BestKey = tieKeyOf(Ready[K]);
        continue;
      }
      if (DP < -Eps)
        continue;
      TieKey Key = tieKeyOf(Ready[K]);
      if (tieLess(BestKey, Key)) {
        Best = K;
        BestKey = Key;
      }
    }
    assert(Best != Ready.size() && "no candidate selected");
    unsigned I = Ready[Best];
    Ready[Best] = Tomb;
    --LiveEntries;
    if (++Tombs > LiveEntries) {
      Ready.erase(std::remove(Ready.begin(), Ready.end(), Tomb), Ready.end());
      Tombs = 0;
    }
    Order.push_back(I);
    Scheduled[I] = true;

    // Update liveness: the consumed producers may die; our def goes live.
    for (unsigned P : Producers[I]) {
      assert(ReadersLeft[P] > 0);
      if (--ReadersLeft[P] == 0) {
        assert(Live[Cls[P]] > 0);
        --Live[Cls[P]];
      }
    }
    if (DefValid[I] && ReadersLeft[I] > 0)
      ++Live[Cls[I]];

    for (unsigned S : G.succs(I)) {
      unsigned Left = --PredsLeft[S];
      if (Left == 0) {
        Ready.push_back(S);
        ++LiveEntries;
      } else if (Left == 1) {
        // S's one remaining unscheduled predecessor now exposes it.
        for (unsigned P : G.preds(S))
          if (!Scheduled[P]) {
            ++Exposed[P];
            break;
          }
      }
    }
  }
  assert(Order.size() == N && "scheduler failed to order all instructions");
  return Order;
}

//===----------------------------------------------------------------------===//
// Function-level driver
//===----------------------------------------------------------------------===//

SchedulerKind
sched::effectiveKind(SchedulerKind Kind,
                     const std::vector<const Instr *> &Instrs,
                     const BalanceOptions &Opts) {
  if (Kind != SchedulerKind::Hybrid)
    return Kind;
  int64_t LoadDemand = 0, FixedDemand = 0;
  for (const Instr *I : Instrs) {
    if (I->isLoad()) {
      if (!(Opts.RespectHitAnnotations && I->HM == HitMiss::Hit))
        LoadDemand += Opts.HybridLoadCost;
    } else if (!I->isTerminator()) {
      FixedDemand += opInfo(I->Op).Latency - 1;
    }
  }
  return LoadDemand >= FixedDemand ? SchedulerKind::Balanced
                                   : SchedulerKind::Traditional;
}

std::vector<unsigned>
sched::scheduleRegion(const std::vector<const Instr *> &Instrs,
                      SchedulerKind Kind, BalanceOptions Opts) {
  Kind = effectiveKind(Kind, Instrs, Opts);
  DepDAG G = buildDepDAG(Instrs, Opts.Impl);
  addBlockControlEdges(G, Instrs);
  std::vector<double> W = Kind == SchedulerKind::Balanced
                              ? balancedWeights(G, Instrs, Opts)
                              : traditionalWeights(Instrs);
  std::vector<unsigned> Order =
      listSchedule(G, W, Instrs, Opts.PressureThreshold, Opts.Impl);
  if (Opts.Impl == SchedImpl::Exact) {
    // Optimality-oracle refinement: warm-start the branch-and-bound solver
    // with the list schedule (so exact can never be worse) and adopt its
    // order when the region closes within budget.
    exact::ExactResult R =
        exact::scheduleExact(G, Instrs, Opts.Exact, &Order);
    unsigned FastCycles = exact::evaluateOrder(G, Instrs, Order, Opts.Exact);
    exact::recordRegion(R, FastCycles);
    if (R.closed())
      Order = std::move(R.Order);
  }
  return Order;
}

void sched::scheduleFunction(Module &M, SchedulerKind Kind,
                             BalanceOptions Opts) {
  for (BasicBlock &B : M.Fn.Blocks) {
    if (B.Instrs.size() <= 2)
      continue;
    std::vector<const Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    std::vector<unsigned> Order = scheduleRegion(Ptrs, Kind, Opts);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(B.Instrs.size());
    for (unsigned I : Order)
      NewInstrs.push_back(B.Instrs[I]);
    B.Instrs = std::move(NewInstrs);
  }
}
