//===- sched/Exact.h - Optimal-scheduler oracle (branch & bound) -*- C++ -*-===//
///
/// \file
/// An exact combinatorial scheduling backend: for small-to-medium dependence
/// DAGs it computes a provably cycle-optimal issue order under a
/// deterministic single-issue in-order machine model, by depth-first branch
/// and bound over time-indexed issue decisions. It exists to answer the
/// question the paper leaves open (and ROADMAP item 4 asks): how far from
/// optimal are balanced and traditional list scheduling, per workload and
/// per machine model?
///
/// The machine model (shared by evaluateOrder and the solver):
///
///   - one instruction issues per cycle, in schedule order (in-order,
///     single-issue);
///   - a true register dependence a -> b stalls b until a's result is ready:
///     issue(b) >= issue(a) + latency(a), where loads cost
///     ExactOptions::LoadLatency (the machine-model axis: 2 models every
///     load an L1 hit, larger values model miss-dominated blocks) and other
///     opcodes their fixed Table-3 latency;
///   - every other dependence (anti, output, memory, locality, control) is
///     ordering-only: issue(b) >= issue(a) + 1;
///   - the block's cost is issue(last) + 1, the cycle after the final issue
///     (with the terminator ordered after everything, this is the cycle the
///     block's branch leaves the pipe).
///
/// This is exactly the interlock structure the 21164 simulator charges
/// (stall-on-use, not stall-on-issue); it abstracts away fetch, cache and
/// TLB behaviour, which is what makes the optimum computable.
///
/// Solver structure (the MRIS-ILP / beilpsched lineage, done as search):
///
///   - restriction to *active* schedules: an exchange argument shows some
///     optimal schedule never idles while an instruction is ready, so each
///     decision point branches only over the ready instructions issuable at
///     the earliest next cycle;
///   - ILP-style lower bounds at every node: the critical-path relaxation
///     (longest remaining delay path, with all resource constraints
///     dropped) and the issue-slot resource relaxation (remaining
///     instruction count, with all dependences dropped). The register file
///     is relaxed away entirely — the fast scheduler's pressure ceiling can
///     only lengthen schedules, so the relaxed optimum remains a valid
///     lower bound for it;
///   - dominance pruning with memoized state hashing: states are keyed by
///     the set of issued instructions; a state is pruned when a remembered
///     state over the same set finished no later and releases every pending
///     instruction no later;
///   - interchangeable-instruction pruning: among ready instructions that
///     are mutually substitutable (same latency, same predecessor and
///     successor edge sets with the same delays), only the lowest-numbered
///     one may issue first;
///   - a warm start: the caller seeds the incumbent with the list
///     scheduler's order, so the solver's result can never be worse than
///     the schedule it is judging (the fuzz oracle's solver-bug invariant).
///
/// Budgets make it degrade gracefully: blocks beyond MaxNodes are refused
/// (Status == TooLarge), and a search that exhausts MaxExpansions returns
/// the incumbent with Status == TimedOut plus the root lower bound. Only
/// Status == Closed certifies optimality. The search is deterministic — a
/// pure function of (DAG, instructions, options) — so results are identical
/// across thread counts and runs.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_SCHED_EXACT_H
#define BALSCHED_SCHED_EXACT_H

#include "ir/IR.h"
#include "sched/DepDAG.h"

#include <cstdint>
#include <vector>

namespace bsched {
namespace sched {
namespace exact {

struct ExactOptions {
  /// Per-block node-count budget. Blocks with more instructions are not
  /// attempted (TooLarge). Hard ceiling 64: the solver keys states on a
  /// one-word issued-set mask.
  unsigned MaxNodes = 40;
  /// Search budget in branch-and-bound expansions; 0 means "evaluate the
  /// warm start and the root bound only". Exhausting it yields TimedOut.
  uint64_t MaxExpansions = 200000;
  /// Modelled load-to-use latency. LoadHitLatency (2) is the optimistic
  /// machine model; larger values (8 = L2, 50 = memory) model blocks whose
  /// loads miss, the regime balanced scheduling targets.
  int LoadLatency = ir::LoadHitLatency;
};

enum class ExactStatus : uint8_t {
  Closed,   ///< search exhausted: Cycles is provably optimal.
  TimedOut, ///< expansion budget hit: Cycles is the incumbent, a valid
            ///< upper bound; LowerBound still holds.
  TooLarge, ///< block exceeds MaxNodes; nothing was attempted.
};

const char *statusName(ExactStatus S);

struct ExactResult {
  ExactStatus Status = ExactStatus::TooLarge;
  /// Makespan of Order under the model. Provably optimal iff Closed.
  unsigned Cycles = 0;
  /// Provable lower bound on any legal schedule (root relaxations; equals
  /// Cycles when Closed). 0 when TooLarge.
  unsigned LowerBound = 0;
  /// The best issue order found (a valid topological order of the DAG).
  /// Empty when TooLarge.
  std::vector<unsigned> Order;
  uint64_t Expanded = 0; ///< branch-and-bound nodes expanded.

  bool closed() const { return Status == ExactStatus::Closed; }
};

/// Makespan of \p Order (a topological order of \p G) under the model above.
unsigned evaluateOrder(const DepDAG &G,
                       const std::vector<const ir::Instr *> &Instrs,
                       const std::vector<unsigned> &Order,
                       const ExactOptions &Opts = {});

/// Runs the branch-and-bound solver on one region. \p WarmStart, when
/// non-null, must be a valid topological order; it seeds the incumbent (the
/// usual caller passes the list scheduler's output, making
/// "exact never worse than fast" structural). Without a warm start the
/// solver seeds itself with a critical-path greedy order.
ExactResult scheduleExact(const DepDAG &G,
                          const std::vector<const ir::Instr *> &Instrs,
                          const ExactOptions &Opts = {},
                          const std::vector<unsigned> *WarmStart = nullptr);

//===----------------------------------------------------------------------===//
// Pipeline statistics
//===----------------------------------------------------------------------===//

/// Aggregate solver statistics for one compile under SchedImpl::Exact,
/// collected across every region scheduleRegion attempted.
struct ExactStats {
  unsigned BlocksAttempted = 0; ///< regions within the node budget.
  unsigned BlocksClosed = 0;    ///< proved optimal.
  unsigned BlocksTimedOut = 0;  ///< budget hit; incumbent kept.
  unsigned BlocksTooLarge = 0;  ///< refused (over MaxNodes).
  unsigned BlocksImproved = 0;  ///< exact beat the list schedule.
  /// Summed makespans over *closed* blocks only, so Fast/Exact compare a
  /// like-for-like population.
  uint64_t FastCycles = 0, ExactCycles = 0;
  uint64_t Expanded = 0; ///< total branch-and-bound expansions.

  void add(const ExactStats &O) {
    BlocksAttempted += O.BlocksAttempted;
    BlocksClosed += O.BlocksClosed;
    BlocksTimedOut += O.BlocksTimedOut;
    BlocksTooLarge += O.BlocksTooLarge;
    BlocksImproved += O.BlocksImproved;
    FastCycles += O.FastCycles;
    ExactCycles += O.ExactCycles;
    Expanded += O.Expanded;
  }
};

/// RAII collector wiring scheduleRegion's per-region solver outcomes to the
/// driver: while one is alive on this thread, every SchedImpl::Exact region
/// scheduled on the thread accumulates into it (scopes nest; the innermost
/// wins). The driver opens one around the scheduling phase and copies the
/// result into CompileResult::Exact.
class ExactStatsScope {
public:
  ExactStatsScope();
  ~ExactStatsScope();
  ExactStatsScope(const ExactStatsScope &) = delete;
  ExactStatsScope &operator=(const ExactStatsScope &) = delete;

  const ExactStats &stats() const { return S; }

private:
  ExactStats S;
  ExactStatsScope *Prev;
  friend void recordRegion(const ExactResult &R, unsigned FastCycles);
};

/// Adds one region outcome to the innermost live scope on this thread (no-op
/// without one). scheduleRegion calls this for SchedImpl::Exact.
void recordRegion(const ExactResult &R, unsigned FastCycles);

} // namespace exact
} // namespace sched
} // namespace bsched

#endif // BALSCHED_SCHED_EXACT_H
