//===- examples/builder_api.cpp - Programmatic kernel construction ---------===//
//
// Builds a kernel with the lang:: builder API instead of the textual parser
// — the route for embedding the compiler in another tool or for generating
// parameterized kernels — then runs the paper's pipeline over it and prints
// the full section-4.3 metrics report.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "lang/AST.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "sim/Machine.h"
#include "sim/Report.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::lang;

namespace {

/// Builds, programmatically:
///
///   array A[N][N]; array B[N][N]; array C[N][N] output;
///   for (i) for (j) { A = f(i,j); B = g(i,j); }
///   for (i) for (k) for (j) C[i][j] += A[i][k] * B[k][j];
Program buildMatMul(int64_t N) {
  Program P;
  P.Name = "builder-matmul";

  for (const char *Name : {"A", "B", "C"}) {
    ArrayDecl D;
    D.Name = Name;
    D.Dims = {N, N};
    D.IsOutput = Name[0] == 'C';
    P.Arrays.push_back(std::move(D));
  }

  auto Ref = [](const char *Arr, ExprPtr I, ExprPtr J) {
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(I));
    Subs.push_back(std::move(J));
    return arrayRef(Arr, std::move(Subs));
  };

  // Initialization nest.
  {
    StmtList Inner;
    Inner.push_back(assign(
        Ref("A", varRef("i"), varRef("j")),
        sub(mul(varRef("i"), fpLit(0.02)), mul(varRef("j"), fpLit(0.01)))));
    Inner.push_back(assign(
        Ref("B", varRef("i"), varRef("j")),
        add(fpLit(1.0), mul(varRef("j"), fpLit(0.003)))));
    StmtList Outer;
    Outer.push_back(
        forLoop("j", intLit(0), intLit(N), 1, std::move(Inner)));
    P.Body.push_back(
        forLoop("i", intLit(0), intLit(N), 1, std::move(Outer)));
  }

  // C[i][j] += A[i][k] * B[k][j].
  {
    StmtList JBody;
    JBody.push_back(assign(
        Ref("C", varRef("i"), varRef("j")),
        add(Ref("C", varRef("i"), varRef("j")),
            mul(Ref("A", varRef("i"), varRef("k")),
                Ref("B", varRef("k"), varRef("j"))))));
    StmtList KBody;
    KBody.push_back(forLoop("j", intLit(0), intLit(N), 1, std::move(JBody)));
    StmtList IBody;
    IBody.push_back(forLoop("k", intLit(0), intLit(N), 1, std::move(KBody)));
    P.Body.push_back(
        forLoop("i", intLit(0), intLit(N), 1, std::move(IBody)));
  }
  return P;
}

} // namespace

int main() {
  Program P = buildMatMul(40);
  // Builder-made ASTs must be type-checked before evaluation or compilation
  // (the checker resolves expression types and inserts int->fp conversions).
  if (std::string E = checkProgram(P); !E.empty()) {
    std::fprintf(stderr, "check: %s\n", E.c_str());
    return 1;
  }
  std::printf("Built programmatically:\n\n%s\n", printProgram(P).c_str());

  EvalResult Oracle = evalProgram(P);
  if (!Oracle.ok()) {
    std::fprintf(stderr, "oracle: %s\n", Oracle.Error.c_str());
    return 1;
  }

  driver::CompileOptions Opts;
  Opts.UnrollFactor = 4;
  Opts.LocalityAnalysis = true; // A[i][k] is temporal, B/C spatial in j.
  driver::CompileResult C = driver::compileProgram(P, Opts);
  if (!C.ok()) {
    std::fprintf(stderr, "compile: %s\n", C.Error.c_str());
    return 1;
  }
  std::printf("Locality analysis: %d temporal ref(s), %d spatial ref(s)\n\n",
              C.Locality.TemporalRefs, C.Locality.SpatialRefs);

  sim::SimResult R = sim::simulate(C.M);
  std::fputs(sim::printReport(R, "BS+LA+LU4 on the 21164 model").c_str(),
             stdout);
  std::printf("\nchecksum %s the oracle\n",
              R.Checksum == Oracle.Checksum ? "matches" : "DOES NOT match");
  return R.Checksum == Oracle.Checksum ? 0 : 1;
}
