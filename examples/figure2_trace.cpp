//===- examples/figure2_trace.cpp - The paper's Figure 2, executable --------===//
//
// Builds the Figure-2 control-flow shape — block 1 splits into blocks 2 and
// 3, block 2 splits again toward 4, everything joins at 5 — runs the
// profile-guided trace picker, and trace-schedules the hot path, printing
// the traces, the code motion, and any compensation blocks inserted on the
// off-trace joins.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "ir/Interp.h"
#include "lang/Parser.h"
#include "trace/Trace.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::ir;

// The source below lowers to the Figure-2 shape inside a loop: a split
// (trace A follows the likely arm), an inner split, and a join at the tail.
static const char *Source = R"(
array A[512] output;
var t = 0.0;
var u = 0.0;
for (i = 0; i < 512; i += 1) {
  if (i < 480) {            # split: block 2 (hot) vs block 3 (cold)
    t = t + 1.0;
    A[i] = t * 2.0;
    if (i < 400) {          # split inside the trace
      u = u + t;
      A[i] = A[i] + u * 0.001;
    }
  } else {
    t = t - 1.0;
    A[i] = t * 0.5;
  }
  A[i] = A[i] + i;          # join: executed on every path
}
)";

int main() {
  lang::ParseResult PR = lang::parseProgram(Source, "figure2");
  if (!PR.ok()) {
    std::fprintf(stderr, "parse: %s\n", PR.Error.c_str());
    return 1;
  }
  lang::checkProgram(PR.Prog);

  // Keep the conditionals as real branches so there is something to trace.
  lower::LowerOptions LOpts;
  LOpts.IfConversion = false;
  lower::LowerResult LR = lower::lowerProgram(PR.Prog, LOpts);
  if (!LR.ok()) {
    std::fprintf(stderr, "lower: %s\n", LR.Error.c_str());
    return 1;
  }

  std::printf("Control flow before trace scheduling (%zu blocks):\n\n%s\n",
              LR.M.Fn.Blocks.size(), printFunction(LR.M.Fn).c_str());

  InterpResult Profile = interpret(LR.M);
  std::printf("Block execution counts: ");
  for (size_t B = 0; B != Profile.BlockCounts.size(); ++B)
    std::printf("b%zu:%llu ", B,
                static_cast<unsigned long long>(Profile.BlockCounts[B]));
  std::printf("\n\n");

  std::vector<trace::Trace> Traces = trace::formTraces(LR.M.Fn, Profile);
  std::printf("Traces (picked in decreasing execution frequency):\n");
  for (size_t K = 0; K != Traces.size(); ++K) {
    std::printf("  trace %zu:", K);
    for (int B : Traces[K])
      std::printf(" b%d", B);
    std::printf("%s\n", Traces[K].size() > 1 ? "   <- scheduled as one block"
                                             : "");
  }

  size_t BlocksBefore = LR.M.Fn.Blocks.size();
  trace::TraceStats S = trace::traceScheduleFunction(
      LR.M, Profile, sched::SchedulerKind::Balanced);
  std::printf("\nTrace scheduling: %d traces, %d multi-block, longest %d "
              "blocks, %d compensation blocks (%d instructions copied)\n",
              S.Traces, S.MultiBlockTraces, S.LongestTrace,
              S.CompensationBlocks, S.CompensationInstrs);
  if (LR.M.Fn.Blocks.size() > BlocksBefore)
    std::printf("Compensation blocks b%zu..b%zu were added on off-trace "
                "edges into the trace (the paper's join bookkeeping).\n",
                BlocksBefore, LR.M.Fn.Blocks.size() - 1);

  std::printf("\nControl flow after trace scheduling:\n\n%s",
              printFunction(LR.M.Fn).c_str());

  // Prove the transformation preserved the program.
  InterpResult After = interpret(LR.M);
  std::printf("\nchecksum before %016llx / after %016llx -> %s\n",
              static_cast<unsigned long long>(Profile.Checksum),
              static_cast<unsigned long long>(After.Checksum),
              Profile.Checksum == After.Checksum ? "identical" : "BROKEN");
  return Profile.Checksum == After.Checksum ? 0 : 1;
}
