//===- examples/figures345_locality.cpp - Figures 3-5, executable -----------===//
//
// Starts from the paper's Figure-3 loop
//
//     for (i) for (j) C[i][j] = A[i][j] + B[i][0];
//
// where A[i][j] has spatial reuse in j and B[i][0] temporal reuse, runs the
// locality-analysis pass, and prints the transformed source: the peeled
// first iteration (Figure 5), the postconditioned unrolled loop (Figure 4),
// and the per-copy hit/miss marks the scheduler consumes.
//
//===----------------------------------------------------------------------===//

#include "lang/Eval.h"
#include "lang/Parser.h"
#include "locality/Locality.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::lang;

static const char *Figure3 = R"(
array A[16][16];
array B[16][16];
array C[16][16] output;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) {
    C[i][j] = A[i][j] + B[i][0];
  }
}
)";

int main() {
  ParseResult PR = parseProgram(Figure3, "figure3");
  if (!PR.ok()) {
    std::fprintf(stderr, "parse: %s\n", PR.Error.c_str());
    return 1;
  }
  checkProgram(PR.Prog);

  std::printf("Figure 3 (input):\n\n%s\n", printProgram(PR.Prog).c_str());
  EvalResult Before = evalProgram(PR.Prog);

  locality::LocalityStats S = locality::applyLocality(PR.Prog);
  checkProgram(PR.Prog);

  std::printf("Locality analysis: %d loop(s) analyzed, %d peeled "
              "(temporal reuse, Figure 5), %d unrolled+marked (spatial "
              "reuse, Figure 4); %d temporal ref(s), %d spatial ref(s), "
              "%d with no information.\n\n",
              S.LoopsAnalyzed, S.LoopsPeeled, S.LoopsUnrolled,
              S.TemporalRefs, S.SpatialRefs, S.RefsNoInfo);

  std::printf("Transformed program (/*miss*/ and /*hit*/ are the marks the "
              "balanced scheduler consumes):\n\n%s\n",
              printProgram(PR.Prog).c_str());

  EvalResult After = evalProgram(PR.Prog);
  std::printf("checksum before %016llx / after %016llx -> %s\n",
              static_cast<unsigned long long>(Before.Checksum),
              static_cast<unsigned long long>(After.Checksum),
              Before.Checksum == After.Checksum ? "identical" : "BROKEN");

  std::printf(
      "\nReading the output:\n"
      " - B[i][0] is invariant in j (temporal reuse): the first iteration\n"
      "   was peeled and its load marked /*miss*/; in-loop copies are\n"
      "   /*hit*/ and keep the optimistic weight during scheduling.\n"
      " - A[i][j] walks a 32-byte line in four iterations (spatial reuse):\n"
      "   the loop was unrolled by four with a postconditioned remainder\n"
      "   chain — never a second loop, so every copy can carry its own\n"
      "   mark — and only the line-aligned copy is a /*miss*/.\n");
  return Before.Checksum == After.Checksum ? 0 : 1;
}
