//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
//
// Compiles a small kernel twice — once with the traditional scheduler, once
// with balanced scheduling — runs both on the simulated Alpha 21164, and
// shows where the cycles went. This is the paper's headline experiment in
// miniature.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "sim/Machine.h"
#include "support/Str.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;

// A kernel with load-level parallelism and real cache misses: exactly the
// situation where balanced scheduling pays off.
static const char *Kernel = R"(
array A[65536];
array B[65536];
array Out[8] output;
var s = 0.0;
var t = 1.0;
for (i = 0; i < 65536; i += 1) { A[i] = i * 0.5; B[i] = 1.0 - i * 0.25; }
for (i = 0; i < 65528; i += 1) {
  s = s + A[i] * 2.0 + B[i + 7] * 3.0 + A[i + 3];
  t = t * 1.0000001 + s * 0.0000001;
}
Out[0] = s;
Out[1] = t;
)";

int main() {
  // 1. Parse and type-check the kernel-language source.
  lang::ParseResult PR = lang::parseProgram(Kernel, "quickstart");
  if (!PR.ok()) {
    std::fprintf(stderr, "parse error: %s\n", PR.Error.c_str());
    return 1;
  }
  if (std::string E = lang::checkProgram(PR.Prog); !E.empty()) {
    std::fprintf(stderr, "check error: %s\n", E.c_str());
    return 1;
  }

  // 2. The AST evaluator is the ground truth every compile must reproduce.
  lang::EvalResult Oracle = lang::evalProgram(PR.Prog);
  std::printf("oracle checksum: %016llx\n\n",
              static_cast<unsigned long long>(Oracle.Checksum));

  // 3. Compile + simulate under both schedulers.
  Table T({"Scheduler", "Cycles", "Instructions", "Load-interlock cycles",
           "li% of cycles", "Checksum OK"});
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    driver::CompileOptions Opts;
    Opts.Scheduler = Kind;
    driver::CompileResult C = driver::compileProgram(PR.Prog, Opts);
    if (!C.ok()) {
      std::fprintf(stderr, "compile error: %s\n", C.Error.c_str());
      return 1;
    }
    sim::SimResult S = sim::simulate(C.M);
    T.addRow({Kind == sched::SchedulerKind::Balanced ? "balanced"
                                                     : "traditional",
              fmtInt(static_cast<int64_t>(S.Cycles)),
              fmtInt(static_cast<int64_t>(S.Counts.total())),
              fmtInt(static_cast<int64_t>(S.LoadInterlockCycles)),
              fmtPercent(S.loadInterlockShare()),
              S.Checksum == Oracle.Checksum ? "yes" : "NO"});
  }
  std::fputs(T.render().c_str(), stdout);

  std::printf(
      "\nBalanced scheduling spaces independent instructions behind loads in\n"
      "proportion to each load's available load-level parallelism, instead\n"
      "of assuming every load is an L1 hit — so cache misses stall less.\n"
      "Add unrolling (CompileOptions::UnrollFactor = 4) and the gap grows.\n");
  return 0;
}
