//===- examples/figure1_dag.cpp - The paper's Figure 1, executable ----------===//
//
// Reconstructs the Figure-1 code DAG: independent loads L0 and L1, a serial
// load pair L2 -> L3, and non-load instructions X1, X2 that can pad either.
// Prints the Kerns-Eggers balanced weights next to the traditional fixed
// weights and the schedules each produces, showing the paper's point:
// "X1 and X2 can be used to hide the latency of either L2 or L3, but not
// both", so the serialized loads split their padding credit while L0 and L1
// keep full credit.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "sched/DepDAG.h"
#include "sched/Schedule.h"
#include "support/Str.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

int main() {
  Function F;
  std::vector<Instr> Block;
  std::vector<std::string> Names;

  Reg Base = F.makeReg(RegClass::Int);
  Reg R0 = F.makeReg(RegClass::Fp), R1 = F.makeReg(RegClass::Fp);
  Reg R2 = F.makeReg(RegClass::Fp), R3 = F.makeReg(RegClass::Fp);
  Reg Addr3 = F.makeReg(RegClass::Int);
  Reg U = F.makeReg(RegClass::Fp), V = F.makeReg(RegClass::Fp);
  Reg W = F.makeReg(RegClass::Fp);

  auto Load = [&](const char *Name, Reg Dst, Reg B2, int64_t Off, int Arr) {
    Instr I;
    I.Op = Opcode::FLoad;
    I.Dst = Dst;
    I.Base = B2;
    I.Offset = Off;
    I.Mem.ArrayId = Arr;
    I.Mem.HasForm = true;
    I.Mem.Const = Off;
    Block.push_back(I);
    Names.push_back(Name);
  };

  Load("L0", R0, Base, 0, 0);
  Load("L1", R1, Base, 64, 0);
  Load("L2", R2, Base, 128, 0);
  {
    // L3 depends on L2 through its address: the serial pair of Figure 1.
    Instr I;
    I.Op = Opcode::FtoI;
    I.Dst = Addr3;
    I.SrcA = R2;
    Block.push_back(I);
    Names.push_back("X0 (addr of L3, depends on L2)");
  }
  Load("L3", R3, Addr3, 0, 1);
  {
    Instr I;
    I.Op = Opcode::FAdd;
    I.Dst = V;
    I.SrcA = U;
    I.SrcB = U;
    Block.push_back(I);
    Names.push_back("X1");
    I.Dst = W;
    I.SrcA = V;
    I.SrcB = V;
    Block.push_back(I);
    Names.push_back("X2 (depends on X1)");
  }
  {
    Instr I;
    I.Op = Opcode::Ret;
    Block.push_back(I);
    Names.push_back("(terminator)");
  }

  std::vector<const Instr *> Ptrs;
  for (const Instr &I : Block)
    Ptrs.push_back(&I);

  DepDAG G = buildDepDAG(Ptrs);
  addBlockControlEdges(G, Ptrs);
  std::vector<double> Balanced = balancedWeights(G, Ptrs);
  std::vector<double> Traditional = traditionalWeights(Ptrs);

  std::printf("Figure 1: load-level parallelism and balanced load weights\n\n");
  Table T({"Node", "Instruction", "Traditional wt", "Balanced wt"});
  for (size_t I = 0; I != Block.size(); ++I)
    T.addRow({Names[I], printInstr(Block[I]), fmtDouble(Traditional[I], 1),
              fmtDouble(Balanced[I], 2)});
  std::fputs(T.render().c_str(), stdout);

  std::printf("\nIndependent loads L0/L1 earn full credit from every padder;"
              "\nthe serial pair L2->L3 splits each shared padder 50/50, so"
              "\nits weights are lower — schedule independent work behind"
              "\nthe loads that can actually use it.\n\n");

  for (auto Kind :
       {SchedulerKind::Traditional, SchedulerKind::Balanced}) {
    std::vector<unsigned> Order = listSchedule(
        G,
        Kind == SchedulerKind::Balanced ? Balanced : Traditional, Ptrs);
    std::printf("%s schedule: ",
                Kind == SchedulerKind::Balanced ? "balanced   "
                                                : "traditional");
    for (unsigned N : Order)
      std::printf("%s ", Names[N].substr(0, 2).c_str());
    std::printf("\n");
  }
  return 0;
}
