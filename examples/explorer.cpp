//===- examples/explorer.cpp - Compiler/simulator explorer CLI --------------===//
//
// A small driver for poking at the system:
//
//   explorer --list                        list the built-in workloads
//   explorer <name|file.kl>                sweep the paper's configurations
//   explorer <name|file.kl> --dump [tag]   print the scheduled machine code
//                                          for one configuration (default BS)
//   explorer <name|file.kl> --report [tag] full section-4.3 metrics report
//   explorer <file.ir> --run               simulate textual IR directly
//
// A .kl file is kernel-language source, a .ir file is textual IR (the
// --dump format); anything else is looked up among the built-in Table-1
// workloads.
//
//===----------------------------------------------------------------------===//

#include "driver/Experiment.h"
#include "ir/IRParser.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "regalloc/LinearScan.h"
#include "sim/Report.h"
#include "support/Str.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace bsched;
using namespace bsched::driver;

namespace {

int listWorkloads() {
  Table T({"Name", "Mirrors", "Engineered behaviour"});
  for (const Workload &W : workloads())
    T.addRow({W.Name, W.Description, W.Behaviour});
  std::fputs(T.render().c_str(), stdout);
  return 0;
}

bool loadProgram(const std::string &Arg, lang::Program &Out) {
  if (Arg.size() > 3 && Arg.substr(Arg.size() - 3) == ".kl") {
    std::ifstream In(Arg);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Arg.c_str());
      return false;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    lang::ParseResult PR = lang::parseProgram(SS.str(), Arg);
    if (!PR.ok()) {
      std::fprintf(stderr, "%s: %s\n", Arg.c_str(), PR.Error.c_str());
      return false;
    }
    if (std::string E = lang::checkProgram(PR.Prog); !E.empty()) {
      std::fprintf(stderr, "%s: %s\n", Arg.c_str(), E.c_str());
      return false;
    }
    Out = std::move(PR.Prog);
    return true;
  }
  const Workload *W = findWorkload(Arg);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n", Arg.c_str());
    return false;
  }
  Out = parseWorkload(*W);
  return true;
}

CompileOptions optionsFromTag(const std::string &Tag) {
  CompileOptions O;
  O.Scheduler = Tag.find("TS") == 0 ? sched::SchedulerKind::Traditional
                                    : sched::SchedulerKind::Balanced;
  if (Tag.find("LU4") != std::string::npos)
    O.UnrollFactor = 4;
  if (Tag.find("LU8") != std::string::npos)
    O.UnrollFactor = 8;
  O.TraceScheduling = Tag.find("TrS") != std::string::npos;
  O.LocalityAnalysis = Tag.find("LA") != std::string::npos;
  return O;
}

int runIRFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  ir::ParseIRResult R = ir::parseModule(SS.str());
  if (!R.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), R.Error.c_str());
    return 1;
  }
  // Textual IR may still use virtual registers; allocate if so.
  bool AnyVirtual = false;
  for (const ir::BasicBlock &B : R.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (ir::Reg D = I.def(); D.isValid())
        AnyVirtual |= D.isVirtual();
  if (AnyVirtual) {
    regalloc::RegAllocStats S = regalloc::allocateRegisters(R.M);
    if (!S.ok()) {
      std::fprintf(stderr, "regalloc: %s\n", S.Error.c_str());
      return 1;
    }
  }
  sim::SimResult S = sim::simulate(R.M);
  std::fputs(sim::printReport(S, Path).c_str(), stdout);
  return S.Finished ? 0 : 1;
}

int report(const lang::Program &P, const std::string &Tag) {
  CompileResult C = compileProgram(P, optionsFromTag(Tag));
  if (!C.ok()) {
    std::fprintf(stderr, "%s\n", C.Error.c_str());
    return 1;
  }
  sim::SimResult S = sim::simulate(C.M);
  std::fputs(sim::printReport(S, Tag).c_str(), stdout);
  return 0;
}

int dump(const lang::Program &P, const std::string &Tag) {
  CompileResult C = compileProgram(P, optionsFromTag(Tag));
  if (!C.ok()) {
    std::fprintf(stderr, "%s\n", C.Error.c_str());
    return 1;
  }
  std::printf("; %s, scheduled + register-allocated (re-runnable: save as\n"
              "; a .ir file and pass it back to this tool)\n%s",
              Tag.c_str(), ir::printModule(C.M).c_str());
  return 0;
}

int sweep(const lang::Program &P) {
  lang::EvalResult Oracle = lang::evalProgram(P);
  if (!Oracle.ok()) {
    std::fprintf(stderr, "oracle: %s\n", Oracle.Error.c_str());
    return 1;
  }

  struct Cfg {
    const char *Tag;
  } Cfgs[] = {{"TS"},        {"BS"},        {"TS+LU4"},    {"BS+LU4"},
              {"BS+LU8"},    {"BS+TrS+LU4"}, {"BS+LA"},    {"BS+LA+LU4"},
              {"BS+LA+TrS+LU8"}};

  Table T({"Config", "Cycles", "Instrs", "li%", "fi%", "L1D miss%",
           "Spill+restore", "OK"});
  for (const Cfg &C : Cfgs) {
    CompileResult R = compileProgram(P, optionsFromTag(C.Tag));
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", C.Tag, R.Error.c_str());
      return 1;
    }
    sim::SimResult S = sim::simulate(R.M);
    double Fi = S.Cycles == 0 ? 0.0
                              : static_cast<double>(S.FixedInterlockCycles) /
                                    static_cast<double>(S.Cycles);
    T.addRow({C.Tag, fmtInt(static_cast<int64_t>(S.Cycles)),
              fmtInt(static_cast<int64_t>(S.Counts.total())),
              fmtPercent(S.loadInterlockShare()), fmtPercent(Fi),
              fmtPercent(S.L1D.missRate()),
              fmtInt(static_cast<int64_t>(S.Counts.Spills +
                                          S.Counts.Restores)),
              S.Checksum == Oracle.Checksum ? "yes" : "NO"});
  }
  std::fputs(T.render().c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "--list") == 0)
    return listWorkloads();
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s --list | <workload|file.kl> [--dump [tag]]\n",
                 Argv[0]);
    return 2;
  }
  std::string First = Argv[1];
  if (First.size() > 3 && First.substr(First.size() - 3) == ".ir")
    return runIRFile(First);
  lang::Program P;
  if (!loadProgram(First, P))
    return 1;
  if (Argc >= 3 && std::strcmp(Argv[2], "--dump") == 0)
    return dump(P, Argc >= 4 ? Argv[3] : "BS");
  if (Argc >= 3 && std::strcmp(Argv[2], "--report") == 0)
    return report(P, Argc >= 4 ? Argv[3] : "BS");
  return sweep(P);
}
