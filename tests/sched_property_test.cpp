//===- tests/sched_property_test.cpp - Scheduler invariants, fuzzed --------===//
//
// Property-based checks of the dependence DAG and list scheduler over blocks
// taken from randomly generated programs: schedules are valid topological
// orders, balanced weights respect their bounds, scheduling is
// deterministic, and the register-pressure ceiling actually reduces the
// maximum number of simultaneously live values.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"
#include "driver/Compiler.h"
#include "lang/Generate.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "sched/DepDAG.h"
#include "sched/Exact.h"
#include "sched/Schedule.h"
#include "verify/Verify.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>
#include <map>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

/// All blocks of a lowered (optionally unrolled) fuzz program with at least
/// \p MinSize instructions.
std::vector<std::vector<const Instr *>> fuzzBlocks(uint64_t Seed,
                                                   Module &Storage,
                                                   int Unroll = 1,
                                                   size_t MinSize = 4) {
  lang::Program P = lang::generateProgram(Seed);
  if (Unroll > 1) {
    xform::unrollLoops(P, Unroll);
    lang::checkProgram(P);
  }
  lower::LowerResult LR = lower::lowerProgram(P);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  Storage = std::move(LR.M);
  std::vector<std::vector<const Instr *>> Out;
  for (const BasicBlock &B : Storage.Fn.Blocks) {
    if (B.Instrs.size() < MinSize)
      continue;
    std::vector<const Instr *> Ptrs;
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    Out.push_back(std::move(Ptrs));
  }
  return Out;
}

void expectValidTopo(const DepDAG &G, const std::vector<unsigned> &Order) {
  ASSERT_EQ(Order.size(), G.size());
  std::vector<unsigned> Pos(G.size());
  std::vector<bool> Seen(G.size(), false);
  for (unsigned K = 0; K != Order.size(); ++K) {
    ASSERT_FALSE(Seen[Order[K]]);
    Seen[Order[K]] = true;
    Pos[Order[K]] = K;
  }
  for (unsigned I = 0; I != G.size(); ++I)
    for (unsigned S : G.succs(I))
      EXPECT_LT(Pos[I], Pos[S]);
}

/// Maximum simultaneously live values (per class) of a schedule: a value is
/// live from its producer's position to its last reader's.
unsigned maxLive(const std::vector<const Instr *> &Instrs,
                 const std::vector<unsigned> &Order, RegClass Cls) {
  // Producer node per register at each point, in scheduled order.
  std::vector<const Instr *> Seq;
  for (unsigned N : Order)
    Seq.push_back(Instrs[N]);
  std::map<uint32_t, size_t> LastDef;
  // Intervals [def, lastUse] over scheduled positions.
  std::map<std::pair<uint32_t, size_t>, size_t> End; // (reg,defpos)->lastuse
  std::vector<Reg> Uses;
  for (size_t K = 0; K != Seq.size(); ++K) {
    Uses.clear();
    Seq[K]->appendUses(Uses);
    for (Reg R : Uses) {
      auto It = LastDef.find(R.Id);
      if (It != LastDef.end())
        End[{R.Id, It->second}] = K;
    }
    if (Reg D = Seq[K]->def(); D.isValid())
      LastDef[D.Id] = K;
  }
  std::vector<int> Delta(Seq.size() + 1, 0);
  for (const auto &[Key, E] : End) {
    size_t DefPos = Key.second;
    const Instr *Def = Seq[DefPos];
    bool IsFp = opInfo(Def->Op).DstCls == 1;
    if ((Cls == RegClass::Fp) != IsFp)
      continue;
    ++Delta[DefPos];
    --Delta[E];
  }
  int Live = 0, Max = 0;
  for (size_t K = 0; K != Delta.size(); ++K) {
    Live += Delta[K];
    Max = std::max(Max, Live);
  }
  return static_cast<unsigned>(Max);
}

class SchedProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SchedProperty, SchedulesAreValidTopologicalOrders) {
  Module M;
  for (auto &Ptrs : fuzzBlocks(GetParam(), M)) {
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    for (auto Kind : {SchedulerKind::Traditional, SchedulerKind::Balanced}) {
      std::vector<double> W = Kind == SchedulerKind::Balanced
                                  ? balancedWeights(G, Ptrs)
                                  : traditionalWeights(Ptrs);
      expectValidTopo(G, listSchedule(G, W, Ptrs));
    }
  }
}

TEST_P(SchedProperty, BalancedWeightBounds) {
  Module M;
  for (auto &Ptrs : fuzzBlocks(GetParam(), M)) {
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    std::vector<double> W = balancedWeights(G, Ptrs);
    for (size_t K = 0; K != Ptrs.size(); ++K) {
      if (Ptrs[K]->isLoad()) {
        EXPECT_GE(W[K], static_cast<double>(LoadHitLatency));
        EXPECT_LE(W[K], static_cast<double>(LoadWeightCap));
      } else {
        EXPECT_DOUBLE_EQ(W[K],
                         static_cast<double>(opInfo(Ptrs[K]->Op).Latency));
      }
    }
  }
}

TEST_P(SchedProperty, SchedulingIsDeterministic) {
  Module M1, M2;
  auto A = fuzzBlocks(GetParam(), M1);
  auto B = fuzzBlocks(GetParam(), M2);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(scheduleRegion(A[I], SchedulerKind::Balanced),
              scheduleRegion(B[I], SchedulerKind::Balanced));
  }
}

TEST_P(SchedProperty, PressureCeilingReducesMaxLive) {
  // On unrolled code (big blocks), a low ceiling must not increase the
  // schedule's maximum liveness relative to no ceiling, and should reduce it
  // whenever the unconstrained schedule exceeds the ceiling by a margin.
  Module M;
  for (auto &Ptrs : fuzzBlocks(GetParam(), M, /*Unroll=*/4, /*MinSize=*/24)) {
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    std::vector<double> W = balancedWeights(G, Ptrs);
    std::vector<unsigned> Free = listSchedule(G, W, Ptrs, /*Threshold=*/0);
    std::vector<unsigned> Capped = listSchedule(G, W, Ptrs, /*Threshold=*/6);
    expectValidTopo(G, Capped);
    for (RegClass Cls : {RegClass::Int, RegClass::Fp}) {
      unsigned MF = maxLive(Ptrs, Free, Cls);
      unsigned MC = maxLive(Ptrs, Capped, Cls);
      if (MF > 10) {
        EXPECT_LT(MC, MF) << "ceiling did not relieve pressure";
      }
      EXPECT_LE(MC, std::max(MF, 8u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedProperty,
                         ::testing::Values(1, 3, 7, 11, 19, 23, 42, 77, 101,
                                           311));

// On every block the exact branch-and-bound oracle closes, across the
// shared differential compile configs: the fast schedule is never better
// than the proven optimum (the gap is never negative — fast-beats-exact
// would be a solver bug), the solver's order is a legal topological order,
// and the exact schedule passes the independent verify:: legality checker
// exactly like the fast one (which the pipeline already verified under
// VerifyPasses).
TEST(ExactOptimalityGap, ClosedBlocksAreLegalAndNeverNegative) {
  exact::ExactOptions EO;
  EO.MaxNodes = 24;
  EO.MaxExpansions = 20000;
  unsigned Attempted = 0, Closed = 0;
  for (uint64_t Seed : {uint64_t(3), uint64_t(42), uint64_t(101)}) {
    lang::Program P = lang::generateProgram(Seed);
    for (driver::CompileOptions Cfg : test::fuzzConfigs()) {
      Cfg.StopBeforeRegAlloc = true; // judge the scheduler's own output
      driver::CompileResult C = driver::compileProgram(P, Cfg);
      ASSERT_TRUE(C.ok()) << Cfg.tag() << ": " << C.Error;
      for (size_t BI = 0; BI != C.M.Fn.Blocks.size(); ++BI) {
        const BasicBlock &B = C.M.Fn.Blocks[BI];
        if (B.Instrs.size() <= 2 || B.Instrs.size() > EO.MaxNodes)
          continue;
        std::vector<const Instr *> Ptrs;
        for (const Instr &I : B.Instrs)
          Ptrs.push_back(&I);
        DepDAG G = buildDepDAG(Ptrs);
        addBlockControlEdges(G, Ptrs);
        // The block is already scheduled, so identity IS the fast order.
        std::vector<unsigned> Fast(Ptrs.size());
        for (unsigned K = 0; K != Ptrs.size(); ++K)
          Fast[K] = K;
        unsigned FastCycles = exact::evaluateOrder(G, Ptrs, Fast, EO);
        exact::ExactResult R = exact::scheduleExact(G, Ptrs, EO, &Fast);
        ++Attempted;
        EXPECT_LE(R.Cycles, FastCycles)
            << Cfg.tag() << " b" << B.Id << ": solver lost to its warm start";
        if (!R.closed())
          continue;
        ++Closed;
        EXPECT_EQ(R.LowerBound, R.Cycles);
        expectValidTopo(G, R.Order);
        EXPECT_EQ(exact::evaluateOrder(G, Ptrs, R.Order, EO), R.Cycles);

        ir::Module After = C.M;
        std::vector<Instr> Permuted;
        Permuted.reserve(B.Instrs.size());
        for (unsigned N : R.Order)
          Permuted.push_back(B.Instrs[N]);
        After.Fn.Blocks[BI].Instrs = std::move(Permuted);
        verify::VerifyResult V = verify::verifySchedule(C.M, After);
        EXPECT_TRUE(V.ok())
            << Cfg.tag() << " b" << B.Id << ":\n" << V.report();
      }
    }
  }
  // The sweep must actually exercise the solver, and mostly close.
  EXPECT_GT(Attempted, 20u);
  EXPECT_GE(Closed * 10, Attempted * 6) << Closed << "/" << Attempted;
}
