//===- tests/fuzz_tools_test.cpp - Fuzzing-subsystem unit tests ------------===//
//
// Unit and property tests for src/fuzz: the structured mutator's validity
// contract, the coverage map, the differential oracle on known-clean inputs,
// the delta-debugging reducer (planted failure, never-failing oracle,
// always-failing termination), the repro file format, and the fuzzer loop's
// thread-count determinism.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Mutate.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "fuzz/Repro.h"

#include "lang/Eval.h"
#include "lang/Generate.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <string>

using namespace bsched;
using namespace bsched::fuzz;

namespace {

lang::Program parseChecked(const std::string &Source) {
  lang::ParseResult R = lang::parseProgram(Source);
  EXPECT_EQ(R.Error, "");
  EXPECT_EQ(lang::checkProgram(R.Prog), "");
  return std::move(R.Prog);
}

} // namespace

//===----------------------------------------------------------------------===//
// Mutator
//===----------------------------------------------------------------------===//

// The satellite contract: long mutation walks never leave the valid-program
// envelope. 10 seeds x 100 steps = 1000 mutation steps, each independently
// re-validated (reparse, semantic check, in-bounds AST evaluation) rather
// than trusting the mutator's own gate.
TEST(Mutator, ThousandStepsStayValid) {
  MutateOptions MO;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    RNG Rng(Seed * 977 + 5);
    int Applied = 0;
    for (int Step = 0; Step != 100; ++Step) {
      if (mutateProgram(P, Rng, MO))
        ++Applied;
      std::string E = validateProgram(P, MO.EvalBudget);
      ASSERT_EQ(E, "") << "seed " << Seed << " step " << Step << ":\n"
                       << lang::printProgram(P);
    }
    // The walk must actually move: a mutator that rejects nearly every
    // candidate would vacuously pass the validity check.
    EXPECT_GT(Applied, 50) << "seed " << Seed;
  }
}

TEST(Mutator, DeterministicForSeed) {
  for (uint64_t Seed : {1ull, 7ull, 23ull}) {
    lang::Program A = lang::generateProgram(Seed);
    lang::Program B = lang::generateProgram(Seed);
    RNG RngA(Seed + 99), RngB(Seed + 99);
    for (int Step = 0; Step != 25; ++Step) {
      mutateProgram(A, RngA);
      mutateProgram(B, RngB);
    }
    EXPECT_EQ(lang::printProgram(A), lang::printProgram(B))
        << "seed " << Seed;
  }
}

TEST(Mutator, RejectsNothingOnValidInput) {
  // validateProgram accepts what the generator produces.
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    EXPECT_EQ(validateProgram(P, 2000000), "") << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Coverage map
//===----------------------------------------------------------------------===//

TEST(Coverage, Log2Buckets) {
  EXPECT_EQ(log2Bucket(0), 0u);
  EXPECT_EQ(log2Bucket(1), 1u);
  EXPECT_EQ(log2Bucket(2), 2u);
  EXPECT_EQ(log2Bucket(3), 2u);
  EXPECT_EQ(log2Bucket(4), 3u);
  EXPECT_EQ(log2Bucket(1023), 10u);
  EXPECT_EQ(log2Bucket(1024), 11u);
}

TEST(Coverage, AddMergeWouldGrow) {
  CoverageMap A;
  EXPECT_EQ(A.bitsSet(), 0u);
  EXPECT_TRUE(A.add(0, Feature::Cycles, 3));
  EXPECT_FALSE(A.add(0, Feature::Cycles, 3)) << "same triple, same bit";
  EXPECT_TRUE(A.add(1, Feature::Cycles, 3)) << "config is part of the key";
  EXPECT_TRUE(A.add(0, Feature::Cycles, 4)) << "bucket is part of the key";
  EXPECT_TRUE(A.add(0, Feature::SpillStores, 3))
      << "feature is part of the key";
  EXPECT_EQ(A.bitsSet(), 4u);

  CoverageMap B;
  B.add(0, Feature::Cycles, 3);
  EXPECT_FALSE(A.wouldGrow(B));
  EXPECT_EQ(A.merge(B), 0u);
  B.add(2, Feature::MshrStall, 9);
  EXPECT_TRUE(A.wouldGrow(B));
  EXPECT_EQ(A.merge(B), 1u);
  EXPECT_EQ(A.bitsSet(), 5u);
  EXPECT_FALSE(A.wouldGrow(B));
}

TEST(Coverage, CompileFeaturesLightBits) {
  lang::Program P = lang::generateProgram(3);
  driver::CompileOptions O;
  O.UnrollFactor = 4;
  driver::CompileResult C = driver::compileProgram(P, O);
  ASSERT_TRUE(C.ok()) << C.Error;
  CoverageMap M;
  addCompileFeatures(M, 0, C);
  EXPECT_GT(M.bitsSet(), 5u) << "a real compile must light many features";
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(Oracle, CleanOnGeneratedPrograms) {
  for (uint64_t Seed = 0; Seed != 3; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    OracleRun Run = runOracle(P);
    EXPECT_TRUE(Run.clean())
        << "seed " << Seed << ": " << failureKindName(Run.Failures[0].Kind)
        << " " << Run.Failures[0].Detail;
    EXPECT_GT(Run.Cov.bitsSet(), 0u);
  }
}

TEST(Oracle, DiffSimResultsNamesFirstField) {
  sim::SimResult A, B;
  EXPECT_EQ(diffSimResults(A, B), "");
  B.Cycles = 123;
  std::string D = diffSimResults(A, B);
  EXPECT_NE(D.find("Cycles"), std::string::npos) << D;
  EXPECT_NE(D.find("123"), std::string::npos) << D;
}

TEST(Oracle, MachineByTagRoundTrips) {
  EXPECT_EQ(machineByTag("starved").NumMSHRs, 2u);
  EXPECT_EQ(machineByTag("starved").WriteBufferEntries, 1u);
  EXPECT_EQ(machineByTag("oddgeom").PageSize, 1000u);
  EXPECT_TRUE(machineByTag("simple80").SimpleModel);
  EXPECT_TRUE(machineByTag("pfe").PerfectFrontEnd);
  EXPECT_EQ(machineByTag("w4").IssueWidth, 4u);
  // Unknown and empty tags fall back to the default 21164.
  EXPECT_EQ(machineByTag("").NumMSHRs, sim::MachineConfig{}.NumMSHRs);
  EXPECT_EQ(machineByTag("nonsense").PageSize,
            sim::MachineConfig{}.PageSize);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

namespace {

const char *PlantedSrc = R"(
array a[16] output;
array b[16];
var s = 1.0;
for (i = 0; i < 16; i += 1) { b[i] = i * 0.5; }
for (i = 0; i < 16; i += 1) { a[i] = b[i] + s; }
a[0] = 0.125;
a[1] = s * 2.0;
if (s > 0.5) { a[2] = 3.0; } else { a[3] = 4.0; }
)";

/// Synthetic oracle: "fails" exactly when the planted literal survives.
bool hasPlantedLiteral(const lang::Program &P) {
  return lang::printProgram(P).find("0.125") != std::string::npos;
}

} // namespace

TEST(Reducer, ShrinksToPlantedStatement) {
  lang::Program P = parseChecked(PlantedSrc);
  ASSERT_TRUE(hasPlantedLiteral(P));
  ReduceStats Stats;
  lang::Program R = reduceProgram(P, hasPlantedLiteral, {}, &Stats);
  EXPECT_TRUE(hasPlantedLiteral(R));
  EXPECT_EQ(R.Body.size(), 1u) << lang::printProgram(R);
  EXPECT_EQ(validateProgram(R, 2000000), "");
  // The surviving statement is the planted assignment, and the unused
  // declarations went with the deleted statements.
  EXPECT_NE(lang::printProgram(R).find("0.125"), std::string::npos);
  EXPECT_EQ(lang::printProgram(R).find("for"), std::string::npos)
      << lang::printProgram(R);
  EXPECT_GT(Stats.CandidatesAccepted, 0);
}

TEST(Reducer, NeverFailingOracleLeavesInputUnchanged) {
  lang::Program P = parseChecked(PlantedSrc);
  ReduceStats Stats;
  lang::Program R = reduceProgram(
      P, [](const lang::Program &) { return false; }, {}, &Stats);
  EXPECT_EQ(lang::printProgram(R), lang::printProgram(P));
  EXPECT_EQ(Stats.CandidatesAccepted, 0);
}

TEST(Reducer, AlwaysFailingOracleTerminates) {
  lang::Program P = parseChecked(PlantedSrc);
  ReduceOptions RO;
  RO.MaxCandidates = 500;
  ReduceStats Stats;
  lang::Program R =
      reduceProgram(P, [](const lang::Program &) { return true; }, RO,
                    &Stats);
  EXPECT_LE(Stats.CandidatesTried, RO.MaxCandidates);
  EXPECT_EQ(validateProgram(R, 2000000), "");
  EXPECT_LT(lang::printProgram(R).size(), lang::printProgram(P).size());
}

TEST(Reducer, StripsUnneededOptions) {
  lang::Program P = parseChecked(PlantedSrc);
  driver::CompileOptions O;
  O.UnrollFactor = 8;
  O.TraceScheduling = true;
  O.RegAlloc.AllocatablePerClass = 4;
  O.Balance.BalanceFixedOps = true;
  // Synthetic failure that only needs the tight register file.
  driver::CompileOptions R = reduceCompileOptions(
      P, O, [](const lang::Program &, const driver::CompileOptions &C) {
        return C.RegAlloc.AllocatablePerClass == 4;
      });
  const driver::CompileOptions D;
  EXPECT_EQ(R.RegAlloc.AllocatablePerClass, 4u);
  EXPECT_EQ(R.UnrollFactor, D.UnrollFactor);
  EXPECT_EQ(R.TraceScheduling, D.TraceScheduling);
  EXPECT_EQ(R.Balance.BalanceFixedOps, D.Balance.BalanceFixedOps);
}

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

TEST(Repro, RoundTripsOptionsAndSource) {
  Repro R;
  R.Kind = "sim-twin-divergence";
  R.Detail = "MshrStallCycles fast=12 ref=13";
  R.MachineTag = "starved";
  R.Options.Scheduler = sched::SchedulerKind::Traditional;
  R.Options.UnrollFactor = 8;
  R.Options.TraceScheduling = true;
  R.Options.RegAlloc.AllocatablePerClass = 4;
  R.Source = "array a[8] output;\na[0] = 1.0;\n";

  Repro Out;
  std::string Err;
  ASSERT_TRUE(parseRepro(writeRepro(R), Out, Err)) << Err;
  EXPECT_EQ(Out.Kind, R.Kind);
  EXPECT_EQ(Out.Detail, R.Detail);
  EXPECT_EQ(Out.MachineTag, R.MachineTag);
  EXPECT_EQ(Out.Options.Scheduler, R.Options.Scheduler);
  EXPECT_EQ(Out.Options.UnrollFactor, R.Options.UnrollFactor);
  EXPECT_EQ(Out.Options.TraceScheduling, R.Options.TraceScheduling);
  EXPECT_EQ(Out.Options.RegAlloc.AllocatablePerClass,
            R.Options.RegAlloc.AllocatablePerClass);
  EXPECT_EQ(Out.Source, R.Source);
}

TEST(Repro, RejectsMalformedInput) {
  Repro Out;
  std::string Err;
  EXPECT_FALSE(parseRepro("kind: x\nno separator\n", Out, Err));
  EXPECT_NE(Err.find("unrecognized"), std::string::npos) << Err;
  EXPECT_FALSE(parseRepro("kind: x\n", Out, Err));
  EXPECT_NE(Err.find("---"), std::string::npos) << Err;
  EXPECT_FALSE(parseRepro("option bogus 1\n---\na = 1.0;\n", Out, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos) << Err;
  EXPECT_FALSE(parseRepro("---\n", Out, Err));
  EXPECT_NE(Err.find("empty source"), std::string::npos) << Err;
}

TEST(Repro, ReplayCleanSource) {
  Repro R;
  R.Kind = "none";
  R.Source = "array a[8] output;\nfor (i = 0; i < 8; i += 1) { a[i] = i * "
             "0.5; }\n";
  std::string Err;
  Failure F = replayRepro(R, Err);
  EXPECT_EQ(Err, "");
  EXPECT_EQ(F.Kind, FailureKind::None) << F.Detail;
  // The simulator leg replays too when a machine tag is present.
  R.MachineTag = "starved";
  F = replayRepro(R, Err);
  EXPECT_EQ(Err, "");
  EXPECT_EQ(F.Kind, FailureKind::None) << F.Detail;
}

TEST(Repro, ReplayReportsParseErrors) {
  Repro R;
  R.Source = "this is not a kernel\n";
  std::string Err;
  Failure F = replayRepro(R, Err);
  EXPECT_NE(Err, "");
  EXPECT_EQ(F.Kind, FailureKind::EvalError);
}

//===----------------------------------------------------------------------===//
// Fuzzer loop
//===----------------------------------------------------------------------===//

TEST(Fuzzer, DeterministicAcrossThreadCounts) {
  FuzzOptions FO;
  FO.Seed = 7;
  FO.Rounds = 2;
  FO.Seconds = 0;
  FO.JobsPerRound = 6;
  FO.InitialSeeds = 4;
  FO.Verbose = false;

  FO.Threads = 1;
  FuzzReport R1 = runFuzzer(FO);
  FO.Threads = 4;
  FuzzReport R4 = runFuzzer(FO);

  EXPECT_TRUE(R1.clean());
  EXPECT_TRUE(R4.clean());
  EXPECT_EQ(R1.Iterations, R4.Iterations);
  EXPECT_EQ(R1.RoundsRun, R4.RoundsRun);
  EXPECT_EQ(R1.CorpusSize, R4.CorpusSize);
  EXPECT_EQ(R1.CoverageBits, R4.CoverageBits);
  for (int K = 0; K != NumMutationKinds; ++K)
    EXPECT_EQ(R1.Mutations.Applied[K], R4.Mutations.Applied[K]) << K;
  EXPECT_EQ(R1.Mutations.Rejected, R4.Mutations.Rejected);
}

TEST(Fuzzer, CoverageGrowsOverSeedRound) {
  FuzzOptions FO;
  FO.Seed = 3;
  FO.Rounds = 1;
  FO.Seconds = 0;
  FO.JobsPerRound = 4;
  FO.InitialSeeds = 6;
  FO.Verbose = false;
  FuzzReport R = runFuzzer(FO);
  EXPECT_TRUE(R.clean());
  EXPECT_GT(R.CoverageBits, 100u)
      << "the seed corpus alone must light many behaviour buckets";
  EXPECT_EQ(R.Iterations, 10u);
  EXPECT_GE(R.CorpusSize, 6u);
}
