//===- tests/caches_test.cpp - Cache / TLB / predictor unit tests ---------===//

#include "sim/Caches.h"
#include "sim/FastCaches.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::sim;

namespace {

CacheConfig smallCache(uint64_t Size = 256, unsigned Line = 32,
                       unsigned Assoc = 2) {
  return CacheConfig{Size, Line, Assoc, 2};
}

} // namespace

TEST(Cache, ColdMissThenHit) {
  Cache C(smallCache());
  CacheStats S;
  EXPECT_FALSE(C.access(0x100, true, S));
  EXPECT_TRUE(C.access(0x100, true, S));
  EXPECT_TRUE(C.access(0x11f, true, S)) << "same 32-byte line";
  EXPECT_FALSE(C.access(0x120, true, S)) << "next line";
  EXPECT_EQ(S.Accesses, 4u);
  EXPECT_EQ(S.Misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 256B / 32B / 2-way = 4 sets; lines mapping to set 0 are 0, 4, 8, ...
  Cache C(smallCache());
  ASSERT_EQ(C.numSets(), 4u);
  CacheStats S;
  auto LineAddr = [](uint64_t Line) { return Line * 32; };
  C.access(LineAddr(0), true, S);  // set 0, way A
  C.access(LineAddr(4), true, S);  // set 0, way B
  C.access(LineAddr(0), true, S);  // touch A: B becomes LRU
  C.access(LineAddr(8), true, S);  // evicts B (line 4)
  EXPECT_TRUE(C.access(LineAddr(0), true, S));
  EXPECT_FALSE(C.access(LineAddr(4), true, S)) << "line 4 was evicted";
}

TEST(Cache, DirectMappedConflicts) {
  Cache C(smallCache(256, 32, 1)); // 8 sets, direct mapped
  CacheStats S;
  C.access(0, true, S);
  C.access(256, true, S); // same set, evicts
  EXPECT_FALSE(C.access(0, true, S));
}

TEST(Cache, TouchNeverAllocates) {
  Cache C(smallCache());
  CacheStats S;
  EXPECT_FALSE(C.touch(0x40, S));
  EXPECT_FALSE(C.touch(0x40, S)) << "touch must not have filled the line";
  C.access(0x40, true, S);
  EXPECT_TRUE(C.touch(0x40, S));
}

TEST(Cache, StatsMissRate) {
  CacheStats S;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.0);
  S.Accesses = 8;
  S.Misses = 2;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.25);
}

TEST(Tlb, HitAfterInstall) {
  Tlb T(4, 8192);
  EXPECT_FALSE(T.access(0));
  EXPECT_TRUE(T.access(100)) << "same page";
  EXPECT_FALSE(T.access(8192)) << "next page";
  EXPECT_TRUE(T.access(8192 + 4096));
}

TEST(Tlb, LruReplacement) {
  Tlb T(2, 8192);
  T.access(0 * 8192);
  T.access(1 * 8192);
  T.access(0 * 8192);  // page 0 most recent
  T.access(2 * 8192);  // evicts page 1
  EXPECT_TRUE(T.access(0 * 8192));
  EXPECT_FALSE(T.access(1 * 8192));
}

TEST(Predictor, LearnsAlwaysTaken) {
  BranchPredictor P(16);
  uint64_t Addr = 0x1000;
  // Weakly-not-taken start: the first taken outcomes mispredict, then lock.
  P.predictAndUpdate(Addr, true);
  P.predictAndUpdate(Addr, true);
  for (int K = 0; K != 20; ++K)
    EXPECT_TRUE(P.predictAndUpdate(Addr, true));
}

TEST(Predictor, AlternatingPatternMispredicts) {
  BranchPredictor P(16);
  uint64_t Addr = 0x2000;
  int Wrong = 0;
  for (int K = 0; K != 100; ++K)
    Wrong += !P.predictAndUpdate(Addr, K % 2 == 0);
  EXPECT_GT(Wrong, 40) << "2-bit counters cannot track strict alternation";
}

TEST(Predictor, HysteresisSurvivesOneExit) {
  BranchPredictor P(16);
  uint64_t Addr = 0x3000;
  for (int K = 0; K != 8; ++K)
    P.predictAndUpdate(Addr, true);
  P.predictAndUpdate(Addr, false); // loop exit
  EXPECT_TRUE(P.predictAndUpdate(Addr, true))
      << "one not-taken must not flip a saturated counter";
}

TEST(Predictor, IndexedByAddress) {
  BranchPredictor P(1024);
  // Different (word-aligned) addresses train independently.
  for (int K = 0; K != 4; ++K) {
    P.predictAndUpdate(0x4000, true);
    P.predictAndUpdate(0x4004, false);
  }
  EXPECT_TRUE(P.predictAndUpdate(0x4000, true));
  EXPECT_TRUE(P.predictAndUpdate(0x4004, false));
}

//===----------------------------------------------------------------------===//
// Fast twins (FastCaches.h): behaviourally identical to the reference models
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic address stream with reuse: a small working set makes hits,
/// misses, conflicts and evictions all common.
uint64_t nextAddr(uint64_t &State) {
  State = State * 6364136223846793005ull + 1442695040888963407ull;
  return (State >> 33) % (1 << 16);
}

} // namespace

TEST(FastCache, MatchesReferenceOnRandomStream) {
  // Geometries covering each fast path and its fallback: power-of-two
  // direct-mapped (one-probe path), power-of-two set-associative, a
  // non-power-of-two set count (div/mod fallback), and a non-power-of-two
  // line size.
  const CacheConfig Geometries[] = {
      {256, 32, 1, 2},  // 8 sets, direct mapped, all power of two
      {512, 32, 2, 2},  // 8 sets, 2-way
      {4800, 32, 3, 2}, // 50 sets: non-power-of-two set count
      {240, 24, 1, 2},  // non-power-of-two line size, 10 sets
  };
  for (const CacheConfig &G : Geometries) {
    Cache Ref(G);
    FastCache Fast(G);
    ASSERT_EQ(Fast.numSets(), Ref.numSets());
    CacheStats RS, FS;
    uint64_t Stream = G.SizeBytes; // per-geometry seed
    for (int I = 0; I != 20000; ++I) {
      uint64_t Addr = nextAddr(Stream);
      bool Allocate = (Stream & 4) != 0;
      ASSERT_EQ(Fast.access(Addr, Allocate, FS), Ref.access(Addr, Allocate, RS))
          << "geometry " << G.SizeBytes << "/" << G.LineSize << "/" << G.Assoc
          << " access " << I;
      ASSERT_EQ(FS.Accesses, RS.Accesses);
      ASSERT_EQ(FS.Misses, RS.Misses);
    }
  }
}

TEST(FastCache, CheapHitMatchesRealHit) {
  // After any access, a cheapHit must leave the cache in the same state a
  // real same-line access would: verify by diverging two identical caches
  // and checking subsequent eviction behaviour stays identical.
  CacheConfig G{256, 32, 2, 2};
  Cache Ref(G);
  FastCache Fast(G);
  CacheStats RS, FS;
  uint64_t Stream = 7;
  for (int I = 0; I != 5000; ++I) {
    uint64_t Addr = nextAddr(Stream);
    ASSERT_EQ(Fast.access(Addr, true, FS), Ref.access(Addr, true, RS));
    // Book two same-line re-touches: full access on the reference, cheap
    // hits on the fast twin.
    for (int K = 0; K != 2; ++K) {
      ASSERT_TRUE(Ref.access(Addr, true, RS));
      Fast.cheapHit(FS);
    }
    ASSERT_EQ(FS.Accesses, RS.Accesses);
    ASSERT_EQ(FS.Misses, RS.Misses);
  }
}

TEST(FastTlb, MatchesReferenceOnRandomStream) {
  struct Geometry {
    unsigned Entries;
    unsigned PageSize;
  };
  const Geometry Geometries[] = {
      {1, 8192}, {4, 8192}, {48, 8192}, {3, 1000} /* non-power-of-two page */};
  for (const Geometry &G : Geometries) {
    Tlb Ref(G.Entries, G.PageSize);
    FastTlb Fast(G.Entries, G.PageSize);
    uint64_t Stream = G.Entries * 131 + G.PageSize;
    for (int I = 0; I != 20000; ++I) {
      uint64_t Addr = nextAddr(Stream) * 257; // spread across pages
      ASSERT_EQ(Fast.access(Addr), Ref.access(Addr))
          << G.Entries << " entries, page " << G.PageSize << ", access " << I;
    }
  }
}

TEST(FastTlb, CheapHitMatchesRealHit) {
  Tlb Ref(4, 8192);
  FastTlb Fast(4, 8192);
  uint64_t Stream = 99;
  for (int I = 0; I != 5000; ++I) {
    uint64_t Addr = nextAddr(Stream) * 64;
    ASSERT_EQ(Fast.access(Addr), Ref.access(Addr)) << "access " << I;
    // Same-page re-touches: full scan on the reference, MRU cheap hit on
    // the fast twin; LRU order must stay identical afterwards.
    ASSERT_TRUE(Ref.access(Addr));
    Fast.cheapHit();
  }
}

TEST(MshrFile, MergeRetireAndPressure) {
  MshrFile M(2);
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.findDone(10), 0u) << "absent line reports 0";
  M.insert(10, 100);
  M.insert(20, 50);
  EXPECT_EQ(M.size(), 2u);
  EXPECT_EQ(M.findDone(10), 100u);
  EXPECT_EQ(M.findDone(20), 50u);
  EXPECT_EQ(M.earliestDone(), 50u);
  M.retire(49);
  EXPECT_EQ(M.size(), 2u) << "nothing complete yet";
  M.retire(50);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_EQ(M.findDone(20), 0u);
  EXPECT_EQ(M.findDone(10), 100u);
  M.retire(1000);
  EXPECT_EQ(M.size(), 0u);
}

TEST(WriteFifo, DrainsInOrder) {
  WriteFifo W(3);
  EXPECT_TRUE(W.empty());
  W.push(10);
  W.push(20);
  W.push(30);
  EXPECT_EQ(W.size(), 3u);
  EXPECT_EQ(W.front(), 10u);
  W.drain(9);
  EXPECT_EQ(W.size(), 3u);
  W.drain(20);
  EXPECT_EQ(W.size(), 1u);
  EXPECT_EQ(W.front(), 30u);
  // Ring wrap: reuse freed slots.
  W.push(40);
  W.push(50);
  EXPECT_EQ(W.size(), 3u);
  W.drain(40);
  EXPECT_EQ(W.size(), 1u);
  EXPECT_EQ(W.front(), 50u);
  W.drain(50);
  EXPECT_TRUE(W.empty());
}
