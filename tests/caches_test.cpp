//===- tests/caches_test.cpp - Cache / TLB / predictor unit tests ---------===//

#include "sim/Caches.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::sim;

namespace {

CacheConfig smallCache(uint64_t Size = 256, unsigned Line = 32,
                       unsigned Assoc = 2) {
  return CacheConfig{Size, Line, Assoc, 2};
}

} // namespace

TEST(Cache, ColdMissThenHit) {
  Cache C(smallCache());
  CacheStats S;
  EXPECT_FALSE(C.access(0x100, true, S));
  EXPECT_TRUE(C.access(0x100, true, S));
  EXPECT_TRUE(C.access(0x11f, true, S)) << "same 32-byte line";
  EXPECT_FALSE(C.access(0x120, true, S)) << "next line";
  EXPECT_EQ(S.Accesses, 4u);
  EXPECT_EQ(S.Misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 256B / 32B / 2-way = 4 sets; lines mapping to set 0 are 0, 4, 8, ...
  Cache C(smallCache());
  ASSERT_EQ(C.numSets(), 4u);
  CacheStats S;
  auto LineAddr = [](uint64_t Line) { return Line * 32; };
  C.access(LineAddr(0), true, S);  // set 0, way A
  C.access(LineAddr(4), true, S);  // set 0, way B
  C.access(LineAddr(0), true, S);  // touch A: B becomes LRU
  C.access(LineAddr(8), true, S);  // evicts B (line 4)
  EXPECT_TRUE(C.access(LineAddr(0), true, S));
  EXPECT_FALSE(C.access(LineAddr(4), true, S)) << "line 4 was evicted";
}

TEST(Cache, DirectMappedConflicts) {
  Cache C(smallCache(256, 32, 1)); // 8 sets, direct mapped
  CacheStats S;
  C.access(0, true, S);
  C.access(256, true, S); // same set, evicts
  EXPECT_FALSE(C.access(0, true, S));
}

TEST(Cache, TouchNeverAllocates) {
  Cache C(smallCache());
  CacheStats S;
  EXPECT_FALSE(C.touch(0x40, S));
  EXPECT_FALSE(C.touch(0x40, S)) << "touch must not have filled the line";
  C.access(0x40, true, S);
  EXPECT_TRUE(C.touch(0x40, S));
}

TEST(Cache, StatsMissRate) {
  CacheStats S;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.0);
  S.Accesses = 8;
  S.Misses = 2;
  EXPECT_DOUBLE_EQ(S.missRate(), 0.25);
}

TEST(Tlb, HitAfterInstall) {
  Tlb T(4, 8192);
  EXPECT_FALSE(T.access(0));
  EXPECT_TRUE(T.access(100)) << "same page";
  EXPECT_FALSE(T.access(8192)) << "next page";
  EXPECT_TRUE(T.access(8192 + 4096));
}

TEST(Tlb, LruReplacement) {
  Tlb T(2, 8192);
  T.access(0 * 8192);
  T.access(1 * 8192);
  T.access(0 * 8192);  // page 0 most recent
  T.access(2 * 8192);  // evicts page 1
  EXPECT_TRUE(T.access(0 * 8192));
  EXPECT_FALSE(T.access(1 * 8192));
}

TEST(Predictor, LearnsAlwaysTaken) {
  BranchPredictor P(16);
  uint64_t Addr = 0x1000;
  // Weakly-not-taken start: the first taken outcomes mispredict, then lock.
  P.predictAndUpdate(Addr, true);
  P.predictAndUpdate(Addr, true);
  for (int K = 0; K != 20; ++K)
    EXPECT_TRUE(P.predictAndUpdate(Addr, true));
}

TEST(Predictor, AlternatingPatternMispredicts) {
  BranchPredictor P(16);
  uint64_t Addr = 0x2000;
  int Wrong = 0;
  for (int K = 0; K != 100; ++K)
    Wrong += !P.predictAndUpdate(Addr, K % 2 == 0);
  EXPECT_GT(Wrong, 40) << "2-bit counters cannot track strict alternation";
}

TEST(Predictor, HysteresisSurvivesOneExit) {
  BranchPredictor P(16);
  uint64_t Addr = 0x3000;
  for (int K = 0; K != 8; ++K)
    P.predictAndUpdate(Addr, true);
  P.predictAndUpdate(Addr, false); // loop exit
  EXPECT_TRUE(P.predictAndUpdate(Addr, true))
      << "one not-taken must not flip a saturated counter";
}

TEST(Predictor, IndexedByAddress) {
  BranchPredictor P(1024);
  // Different (word-aligned) addresses train independently.
  for (int K = 0; K != 4; ++K) {
    P.predictAndUpdate(0x4000, true);
    P.predictAndUpdate(0x4004, false);
  }
  EXPECT_TRUE(P.predictAndUpdate(0x4000, true));
  EXPECT_TRUE(P.predictAndUpdate(0x4004, false));
}
