//===- tests/exact_sched_test.cpp - Exact-scheduler oracle unit tests ------===//
//
// Hand-built regions with known optimal makespans (chains, diamonds,
// anti-dependence knots, latency-uncertain loads), the budget/timeout
// degradation paths, warm-start dominance, the pipeline hook, and
// determinism across threads.
//
//===----------------------------------------------------------------------===//

#include "sched/DepDAG.h"
#include "sched/Exact.h"
#include "sched/Schedule.h"

#include <gtest/gtest.h>
#include <thread>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;
using namespace bsched::sched::exact;

namespace {

/// Instruction factory owning its storage (the sched_test.cpp idiom).
struct RegionBuilder {
  Function F;
  std::vector<Instr> Storage;

  Reg newInt() { return F.makeReg(RegClass::Int); }
  Reg newFp() { return F.makeReg(RegClass::Fp); }

  unsigned fload(Reg Dst, Reg Base, int64_t Off, int ArrayId = 0) {
    Instr I;
    I.Op = Opcode::FLoad;
    I.Dst = Dst;
    I.Base = Base;
    I.Offset = Off;
    I.Mem.ArrayId = ArrayId;
    I.Mem.HasForm = true;
    I.Mem.Const = Off;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned fadd(Reg Dst, Reg A, Reg B) {
    Instr I;
    I.Op = Opcode::FAdd;
    I.Dst = Dst;
    I.SrcA = A;
    I.SrcB = B;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned iadd(Reg Dst, Reg A, int64_t Imm) {
    Instr I;
    I.Op = Opcode::IAdd;
    I.Dst = Dst;
    I.SrcA = A;
    I.Imm = Imm;
    I.HasImm = true;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned ret() {
    Instr I;
    I.Op = Opcode::Ret;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  std::vector<const Instr *> ptrs() const {
    std::vector<const Instr *> P;
    for (const Instr &I : Storage)
      P.push_back(&I);
    return P;
  }
};

DepDAG dagOf(const std::vector<const Instr *> &Ptrs) {
  DepDAG G = buildDepDAG(Ptrs);
  addBlockControlEdges(G, Ptrs);
  return G;
}

void expectValidTopo(const DepDAG &G, const std::vector<unsigned> &Order) {
  ASSERT_EQ(Order.size(), G.size());
  std::vector<unsigned> Pos(G.size());
  std::vector<bool> Seen(G.size(), false);
  for (unsigned K = 0; K != Order.size(); ++K) {
    ASSERT_LT(Order[K], G.size());
    ASSERT_FALSE(Seen[Order[K]]) << "duplicate node in schedule";
    Seen[Order[K]] = true;
    Pos[Order[K]] = K;
  }
  for (unsigned I = 0; I != G.size(); ++I)
    for (unsigned S : G.succs(I))
      EXPECT_LT(Pos[I], Pos[S]) << "edge " << I << "->" << S << " violated";
}

/// Two miss-able load->use pairs plus three independent integer adds: the
/// adds can hide the load latency, so issue order decides the makespan.
/// With LoadLatency = 8: loads at 0/1, adds fill 2-4, uses stall to 8/9,
/// ret at 10 -> 11 cycles optimal. A critical-path greedy order (both
/// loads, then both uses) wastes the stall cycles and costs 14.
RegionBuilder loadHidingRegion() {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg A = B.newFp(), C = B.newFp(), D = B.newFp(), E = B.newFp();
  Reg I1 = B.newInt(), I2 = B.newInt(), I3 = B.newInt();
  B.fload(A, Base, 0);
  B.fload(C, Base, 8);
  B.fadd(D, A, A);
  B.fadd(E, C, C);
  B.iadd(I1, Base, 1);
  B.iadd(I2, Base, 2);
  B.iadd(I3, Base, 3);
  B.ret();
  return B;
}

} // namespace

TEST(ExactSched, StatusNames) {
  EXPECT_STREQ(statusName(ExactStatus::Closed), "closed");
  EXPECT_STREQ(statusName(ExactStatus::TimedOut), "timed-out");
  EXPECT_STREQ(statusName(ExactStatus::TooLarge), "too-large");
}

TEST(ExactSched, ChainMakespanIsForced) {
  // load(2) -> fadd(4) -> fadd(4) -> fadd(4) -> ret: a pure chain, every
  // order identical. Issues at 0, 2, 6, 10; ret (ordering-only, nothing
  // reads the last result) at 11 -> 12 cycles.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp(), Z = B.newFp(), W = B.newFp();
  B.fload(X, Base, 0);
  B.fadd(Y, X, X);
  B.fadd(Z, Y, Y);
  B.fadd(W, Z, Z);
  B.ret();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);

  ExactResult R = scheduleExact(G, Ptrs);
  EXPECT_EQ(R.Status, ExactStatus::Closed);
  EXPECT_EQ(R.Cycles, 12u);
  EXPECT_EQ(R.LowerBound, R.Cycles);
  expectValidTopo(G, R.Order);
  EXPECT_EQ(evaluateOrder(G, Ptrs, R.Order), R.Cycles);
  // The chain's critical path meets the root relaxation: no search needed.
  EXPECT_EQ(R.Expanded, 0u);
}

TEST(ExactSched, DiamondHidesSecondLoadLatency) {
  // Two independent load->use pairs: interleaving the loads hides one hit
  // latency. L1@0 L2@1 U1@2 U2@3 ret@4 -> 5 cycles.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg A = B.newFp(), C = B.newFp(), D = B.newFp(), E = B.newFp();
  B.fload(A, Base, 0);
  B.fload(C, Base, 8);
  B.fadd(D, A, A);
  B.fadd(E, C, C);
  B.ret();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);

  ExactResult R = scheduleExact(G, Ptrs);
  EXPECT_EQ(R.Status, ExactStatus::Closed);
  EXPECT_EQ(R.Cycles, 5u);
  expectValidTopo(G, R.Order);

  // The non-interleaved order pays the un-hidden stall.
  unsigned Serial = evaluateOrder(G, Ptrs, {0, 2, 1, 3, 4});
  EXPECT_EQ(Serial, 7u);
  EXPECT_GT(Serial, R.Cycles);
}

TEST(ExactSched, AntiDependenceIsOrderingOnly) {
  // fload X; fadd Y,X,X; fadd X,W,W: the second add anti-depends on the
  // first (and output-depends on the load) but must NOT pay their result
  // latencies — one issue slot each. L@0, A1@2, A2@3, ret@4 -> 5 cycles.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp(), W = B.newFp();
  B.fload(X, Base, 0);
  B.fadd(Y, X, X);
  B.fadd(X, W, W);
  B.ret();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);
  ASSERT_TRUE(G.hasEdge(1, 2)) << "anti dependence missing from the DAG";

  ExactResult R = scheduleExact(G, Ptrs);
  EXPECT_EQ(R.Status, ExactStatus::Closed);
  EXPECT_EQ(R.Cycles, 5u);
}

TEST(ExactSched, LoadLatencyAxisScalesTheOptimum) {
  // load -> use -> ret: the use stalls to cycle L, ret (ordering-only) goes
  // at L+1, so the optimum is L+2 — the machine-model axis in one block.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp();
  B.fload(X, Base, 0);
  B.fadd(Y, X, X);
  B.ret();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);

  for (int Lat : {2, 8, 50}) {
    ExactOptions O;
    O.LoadLatency = Lat;
    ExactResult R = scheduleExact(G, Ptrs, O);
    EXPECT_EQ(R.Status, ExactStatus::Closed);
    EXPECT_EQ(R.Cycles, static_cast<unsigned>(Lat) + 2) << "lat " << Lat;
  }
}

TEST(ExactSched, BeatsCriticalPathGreedyOnLoadHiding) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);
  ExactOptions O;
  O.LoadLatency = 8;

  // Program order issues both load uses straight after the loads, leaving
  // the adds stuck behind the stalls: issues 0,1,8,9,10,11,12, ret 13.
  unsigned Program = evaluateOrder(G, Ptrs, {0, 1, 2, 3, 4, 5, 6, 7}, O);
  EXPECT_EQ(Program, 14u);

  // Filling the stalls with the independent adds reaches the optimum:
  // loads at 0/1, adds at 2-4, uses at 8/9, ret at 10.
  unsigned Interleaved = evaluateOrder(G, Ptrs, {0, 1, 4, 5, 6, 2, 3, 7}, O);
  EXPECT_EQ(Interleaved, 11u);

  ExactResult R = scheduleExact(G, Ptrs, O);
  EXPECT_EQ(R.Status, ExactStatus::Closed);
  EXPECT_EQ(R.Cycles, 11u);
  expectValidTopo(G, R.Order);
  EXPECT_EQ(evaluateOrder(G, Ptrs, R.Order, O), R.Cycles);
}

TEST(ExactSched, WarmStartIsNeverLost) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);
  ExactOptions O;
  O.LoadLatency = 8;

  // Warm-start with a deliberately bad (but legal) order: the result must
  // still be <= its makespan, whatever the status.
  std::vector<unsigned> Bad{0, 2, 1, 3, 4, 5, 6, 7};
  unsigned BadCycles = evaluateOrder(G, Ptrs, Bad, O);
  for (uint64_t Budget : {uint64_t(0), uint64_t(10), uint64_t(200000)}) {
    O.MaxExpansions = Budget;
    ExactResult R = scheduleExact(G, Ptrs, O, &Bad);
    EXPECT_LE(R.Cycles, BadCycles);
    EXPECT_GE(R.Cycles, R.LowerBound);
    expectValidTopo(G, R.Order);
    EXPECT_EQ(evaluateOrder(G, Ptrs, R.Order, O), R.Cycles);
  }
}

TEST(ExactSched, BudgetPaths) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);

  // Node budget: refused outright.
  ExactOptions Small;
  Small.MaxNodes = 4;
  ExactResult R = scheduleExact(G, Ptrs, Small);
  EXPECT_EQ(R.Status, ExactStatus::TooLarge);
  EXPECT_TRUE(R.Order.empty());
  EXPECT_FALSE(R.closed());

  // Expansion budget: a bad warm start plus zero expansions must time out
  // (the root bound is below the incumbent, so search is required).
  ExactOptions None;
  None.LoadLatency = 8;
  None.MaxExpansions = 0;
  std::vector<unsigned> Bad{0, 2, 1, 3, 4, 5, 6, 7};
  R = scheduleExact(G, Ptrs, None, &Bad);
  EXPECT_EQ(R.Status, ExactStatus::TimedOut);
  // The incumbent is exactly the warm start: no search was allowed.
  EXPECT_EQ(R.Cycles, evaluateOrder(G, Ptrs, Bad, None));
  EXPECT_LT(R.LowerBound, R.Cycles);
}

TEST(ExactSched, DeterministicAcrossThreads) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);
  ExactOptions O;
  O.LoadLatency = 8;

  ExactResult Main = scheduleExact(G, Ptrs, O);
  std::vector<ExactResult> FromThreads(4);
  {
    std::vector<std::thread> Ts;
    for (ExactResult &Out : FromThreads)
      Ts.emplace_back([&, Slot = &Out] {
        *Slot = scheduleExact(G, Ptrs, O);
      });
    for (std::thread &T : Ts)
      T.join();
  }
  for (const ExactResult &R : FromThreads) {
    EXPECT_EQ(R.Status, Main.Status);
    EXPECT_EQ(R.Cycles, Main.Cycles);
    EXPECT_EQ(R.LowerBound, Main.LowerBound);
    EXPECT_EQ(R.Order, Main.Order);
    EXPECT_EQ(R.Expanded, Main.Expanded);
  }
}

TEST(ExactSched, ScheduleRegionHookAdoptsClosedOptimum) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);

  BalanceOptions Fast;
  std::vector<unsigned> FastOrder =
      scheduleRegion(Ptrs, SchedulerKind::Balanced, Fast);

  BalanceOptions Exact = Fast;
  Exact.Impl = SchedImpl::Exact;
  ExactStatsScope Scope;
  std::vector<unsigned> ExactOrder =
      scheduleRegion(Ptrs, SchedulerKind::Balanced, Exact);
  expectValidTopo(G, ExactOrder);

  const ExactStats &S = Scope.stats();
  EXPECT_EQ(S.BlocksAttempted, 1u);
  EXPECT_EQ(S.BlocksClosed, 1u);
  EXPECT_EQ(S.BlocksTooLarge, 0u);
  // Like-for-like totals over closed blocks; exact never above fast.
  EXPECT_LE(S.ExactCycles, S.FastCycles);
  EXPECT_LE(evaluateOrder(G, Ptrs, ExactOrder),
            evaluateOrder(G, Ptrs, FastOrder));
}

TEST(ExactSched, StatsScopesNest) {
  RegionBuilder B = loadHidingRegion();
  auto Ptrs = B.ptrs();
  DepDAG G = dagOf(Ptrs);
  ExactResult R = scheduleExact(G, Ptrs);
  ASSERT_TRUE(R.closed());

  ExactStatsScope Outer;
  recordRegion(R, R.Cycles + 3);
  {
    ExactStatsScope Inner;
    recordRegion(R, R.Cycles); // innermost wins
    EXPECT_EQ(Inner.stats().BlocksClosed, 1u);
    EXPECT_EQ(Inner.stats().BlocksImproved, 0u);
  }
  EXPECT_EQ(Outer.stats().BlocksClosed, 1u);
  EXPECT_EQ(Outer.stats().BlocksImproved, 1u);
  EXPECT_EQ(Outer.stats().FastCycles, Outer.stats().ExactCycles + 3);

  ExactStats Sum;
  Sum.add(Outer.stats());
  Sum.add(Outer.stats());
  EXPECT_EQ(Sum.BlocksClosed, 2u);
}
