//===- tests/sim_timing_test.cpp - Exact timing-model validation -----------===//
//
// Cycle-accurate checks of the 21164 model on hand-built physical-register
// programs where the expected interlock counts are computable by hand:
// serial chains stall by latency-minus-distance, independent fillers hide
// stalls one-for-one, non-blocking loads overlap misses, and the divider
// serializes.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sim;

namespace {

/// Builds a straight-line module: prologue, N copies of a pattern, ret.
/// Uses physical registers so it can run directly on the simulator.
Module straightLine(const std::string &Pattern, int Repeat,
                    const std::string &Prologue = "  ldi r1, 64\n"
                                                  "  fldi f1, 1.5\n"
                                                  "  fldi f2, 0.25\n") {
  std::string Text = "array A 4096\narray Out 8 output\nfunc t\nb0:\n";
  Text += Prologue;
  for (int K = 0; K != Repeat; ++K)
    Text += Pattern;
  Text += "  ret\n";
  ParseIRResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error << "\n" << Text;
  return std::move(R.M);
}

/// Full machine, perfect front end: isolates the interlock model.
MachineConfig backEndOnly() {
  MachineConfig C;
  C.PerfectFrontEnd = true;
  return C;
}

} // namespace

TEST(SimTiming, SerialFpChainStallsByLatencyMinusOne) {
  // f1 = f1 + f2, repeated: each link waits FAdd latency (4) minus the one
  // cycle the producer's own issue slot covers = 3 stall cycles.
  const int N = 1000;
  Module M = straightLine("  fadd f1, f1, f2\n", N);
  SimResult R = simulate(M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.FixedInterlockCycles, static_cast<uint64_t>(3 * (N - 1)));
  EXPECT_EQ(R.LoadInterlockCycles, 0u);
}

TEST(SimTiming, FillersHideFixedLatencyOneForOne) {
  // Insert K independent integer ops between the links: stalls drop by K.
  for (int Fillers = 0; Fillers <= 4; ++Fillers) {
    std::string Pattern = "  fadd f1, f1, f2\n";
    for (int K = 0; K != Fillers; ++K)
      Pattern += "  add r" + std::to_string(10 + K) + ", r1, #1\n";
    const int N = 500;
    Module M = straightLine(Pattern, N);
    SimResult R = simulate(M, backEndOnly());
    ASSERT_TRUE(R.Finished);
    uint64_t PerLink = static_cast<uint64_t>(std::max(0, 3 - Fillers));
    EXPECT_EQ(R.FixedInterlockCycles, PerLink * (N - 1))
        << Fillers << " fillers";
  }
}

TEST(SimTiming, SerialDividerChain) {
  // f1 = f1 / f2 repeated: 30-cycle divide, 29 interlock cycles per link
  // (the divider is also busy, but the data dependence dominates).
  const int N = 200;
  Module M = straightLine("  fdiv f1, f1, f2\n", N);
  SimResult R = simulate(M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.FixedInterlockCycles, static_cast<uint64_t>(29 * (N - 1)));
}

TEST(SimTiming, IndependentDividesSerializeOnTheUnit) {
  // Independent divides to distinct registers: no data stalls, but the
  // non-pipelined divider forces 30-cycle spacing; the structural wait is
  // booked as fixed interlock.
  std::string Pattern = "  fdiv f3, f1, f2\n  fdiv f4, f1, f2\n";
  const int N = 100;
  Module M = straightLine(Pattern, N);
  SimResult R = simulate(M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  // 2N divides; each after the first waits 29 cycles for the unit.
  EXPECT_EQ(R.FixedInterlockCycles, static_cast<uint64_t>(29 * (2 * N - 1)));
}

TEST(SimTiming, L1HitLoadsStallOneWhenConsumedImmediately) {
  // Warm line at A[0]: ld latency 2, consumer next cycle -> 1 stall/pair,
  // after the first (cold) access.
  std::string Prologue = "  ldi r1, 64\n  fldi f2, 0.25\n"
                         "  fld f3, 0(r1)\n  fadd f4, f3, f2\n";
  const int N = 500;
  Module M = straightLine("  fld f1, 0(r1)\n  fadd f5, f1, f2\n", N,
                          Prologue);
  SimResult R = simulate(M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  // The warmup pair absorbs the cold miss; every later pair stalls exactly
  // 2-1 = 1 cycle on the L1 hit.
  EXPECT_EQ(R.LoadInterlockCycles - (R.LoadInterlockCycles % 100),
            static_cast<uint64_t>(N - (N % 100)))
      << "expected ~1 load-interlock cycle per consuming pair, got "
      << R.LoadInterlockCycles;
  EXPECT_LE(R.LoadInterlockCycles, static_cast<uint64_t>(N + 60));
  EXPECT_GE(R.LoadInterlockCycles, static_cast<uint64_t>(N - 2));
}

TEST(SimTiming, NonBlockingLoadsOverlapMisses) {
  // Six independent loads touching six distinct cold lines, then a barrier
  // consumer: the misses overlap in the MSHRs, so the total time is far
  // below 6 sequential memory latencies.
  std::string Text = "array A 4096\narray Out 8 output\nfunc t\nb0:\n"
                     "  ldi r1, 64\n";
  for (int K = 0; K != 6; ++K)
    Text += "  fld f" + std::to_string(3 + K) + ", " +
            std::to_string(K * 512) + "(r1)\n";
  // Consume all six.
  Text += "  fadd f10, f3, f4\n  fadd f11, f5, f6\n  fadd f12, f7, f8\n";
  Text += "  ret\n";
  ParseIRResult P = parseModule(Text);
  ASSERT_TRUE(P.ok()) << P.Error;
  SimResult R = simulate(P.M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  MachineConfig C;
  // All six lines are cold: sequential (blocking) cost would exceed
  // 6 * memory latency; overlapped cost is bounded by one memory latency
  // plus slack.
  EXPECT_LT(R.Cycles, static_cast<uint64_t>(2 * C.MemoryLatency + 40));
}

TEST(SimTiming, MshrLimitSerializesTheSeventhMiss) {
  // Seven cold misses back to back: the seventh must wait for an MSHR.
  std::string Text =
      "array A 8192\narray Out 8 output\nfunc t\nb0:\n  ldi r1, 64\n";
  for (int K = 0; K != 7; ++K)
    Text += "  fld f" + std::to_string(3 + K) + ", " +
            std::to_string(K * 512) + "(r1)\n";
  Text += "  ret\n";
  ParseIRResult P = parseModule(Text);
  ASSERT_TRUE(P.ok()) << P.Error;
  SimResult R = simulate(P.M, backEndOnly());
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.MshrStallCycles, 0u) << "the 7th miss must stall for an MSHR";
}

TEST(SimTiming, TotalCyclesEqualSlotsPlusStallsExactly) {
  const int N = 300;
  Module M = straightLine("  fadd f1, f1, f2\n  add r2, r1, #3\n", N);
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  uint64_t Stalls = R.LoadInterlockCycles + R.FixedInterlockCycles +
                    R.ICacheStallCycles + R.ITlbStallCycles +
                    R.DTlbStallCycles + R.BranchPenaltyCycles +
                    R.MshrStallCycles + R.WriteBufferStallCycles;
  EXPECT_EQ(R.Cycles, R.Counts.total() + Stalls);
}

TEST(SimTiming, WidthTwoPairsIndependentOps) {
  // Pairs of independent int ops: width 2 halves the issue cycles.
  const int N = 400;
  std::string Pattern = "  add r2, r1, #1\n  add r3, r1, #2\n";
  Module M = straightLine(Pattern, N, "  ldi r1, 64\n");
  SimResult R1 = simulate(M, backEndOnly());
  MachineConfig C2 = backEndOnly();
  C2.IssueWidth = 2;
  SimResult R2 = simulate(M, C2);
  ASSERT_TRUE(R1.Finished);
  ASSERT_TRUE(R2.Finished);
  double Ratio = static_cast<double>(R1.Cycles) -
                 static_cast<double>(R1.ICacheStallCycles);
  Ratio /= static_cast<double>(R2.Cycles) -
           static_cast<double>(R2.ICacheStallCycles);
  EXPECT_GT(Ratio, 1.8) << "width 2 should nearly double throughput here";
}

