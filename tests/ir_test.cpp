//===- tests/ir_test.cpp - Unit tests for the IR, verifier, interpreter ---===//

#include "ir/IR.h"
#include "ir/Interp.h"
#include "ir/Liveness.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;

namespace {

/// Builds a module that sums A[0..N) into B[0] with a simple counted loop:
///   b0: i = 0; sum = 0.0; base = &A
///   b1: t = (i < N); br t, b2, b3
///   b2: x = A[i]; sum += x; i += 1; jmp b1
///   b3: B[0] = sum; ret
Module buildSumModule(int64_t N) {
  Module M;
  ArrayInfo A;
  A.Name = "A";
  A.Dims = {N};
  int AId = M.addArray(A);
  ArrayInfo B;
  B.Name = "B";
  B.Dims = {1};
  B.IsOutput = true;
  int BId = M.addArray(B);
  M.layout();

  Function &F = M.Fn;
  Reg I = F.makeReg(RegClass::Int);
  Reg Sum = F.makeReg(RegClass::Fp);
  Reg ABase = F.makeReg(RegClass::Int);
  Reg BBase = F.makeReg(RegClass::Int);
  Reg T = F.makeReg(RegClass::Int);
  Reg X = F.makeReg(RegClass::Fp);
  Reg Addr = F.makeReg(RegClass::Int);
  Reg Off = F.makeReg(RegClass::Int);

  int B0 = F.makeBlock();
  int B1 = F.makeBlock();
  int B2 = F.makeBlock();
  int B3 = F.makeBlock();

  auto emit = [&F](int BB, Instr In) { F.Blocks[BB].Instrs.push_back(In); };

  {
    Instr In;
    In.Op = Opcode::LdI;
    In.Dst = I;
    In.Imm = 0;
    In.HasImm = true;
    emit(B0, In);
    In = Instr();
    In.Op = Opcode::FLdI;
    In.Dst = Sum;
    In.setFImm(0.0);
    emit(B0, In);
    In = Instr();
    In.Op = Opcode::LdI;
    In.Dst = ABase;
    In.Imm = static_cast<int64_t>(M.Arrays[AId].Base);
    In.HasImm = true;
    emit(B0, In);
    In = Instr();
    In.Op = Opcode::LdI;
    In.Dst = BBase;
    In.Imm = static_cast<int64_t>(M.Arrays[BId].Base);
    In.HasImm = true;
    emit(B0, In);
    In = Instr();
    In.Op = Opcode::Jmp;
    In.Target0 = B1;
    emit(B0, In);
  }
  {
    Instr In;
    In.Op = Opcode::CmpLt;
    In.Dst = T;
    In.SrcA = I;
    In.Imm = N;
    In.HasImm = true;
    emit(B1, In);
    In = Instr();
    In.Op = Opcode::Br;
    In.SrcA = T;
    In.Target0 = B2;
    In.Target1 = B3;
    emit(B1, In);
  }
  {
    Instr In;
    In.Op = Opcode::Sll;
    In.Dst = Off;
    In.SrcA = I;
    In.Imm = 3;
    In.HasImm = true;
    emit(B2, In);
    In = Instr();
    In.Op = Opcode::IAdd;
    In.Dst = Addr;
    In.SrcA = ABase;
    In.SrcB = Off;
    emit(B2, In);
    In = Instr();
    In.Op = Opcode::FLoad;
    In.Dst = X;
    In.Base = Addr;
    In.Offset = 0;
    In.Mem.ArrayId = AId;
    emit(B2, In);
    In = Instr();
    In.Op = Opcode::FAdd;
    In.Dst = Sum;
    In.SrcA = Sum;
    In.SrcB = X;
    emit(B2, In);
    In = Instr();
    In.Op = Opcode::IAdd;
    In.Dst = I;
    In.SrcA = I;
    In.Imm = 1;
    In.HasImm = true;
    emit(B2, In);
    In = Instr();
    In.Op = Opcode::Jmp;
    In.Target0 = B1;
    emit(B2, In);
  }
  {
    Instr In;
    In.Op = Opcode::FStore;
    In.SrcA = Sum;
    In.Base = BBase;
    In.Offset = 0;
    In.Mem.ArrayId = BId;
    emit(B3, In);
    In = Instr();
    In.Op = Opcode::Ret;
    emit(B3, In);
  }
  return M;
}

} // namespace

TEST(IRBasics, RegHelpers) {
  Reg R;
  EXPECT_FALSE(R.isValid());
  EXPECT_TRUE(physIntReg(0).isPhys());
  EXPECT_TRUE(physFpReg(31).isPhys());
  Function F;
  Reg V = F.makeReg(RegClass::Fp);
  EXPECT_TRUE(V.isVirtual());
  EXPECT_EQ(F.regClass(V), RegClass::Fp);
  EXPECT_EQ(F.regClass(physIntReg(5)), RegClass::Int);
  EXPECT_EQ(F.regClass(physFpReg(5)), RegClass::Fp);
}

TEST(IRBasics, OpInfoTable) {
  EXPECT_EQ(opInfo(Opcode::IMul).Latency, 8);
  EXPECT_EQ(opInfo(Opcode::FDiv).Latency, 30);
  EXPECT_EQ(opInfo(Opcode::FAdd).Latency, 4);
  EXPECT_EQ(opInfo(Opcode::Load).Latency, LoadHitLatency);
  EXPECT_TRUE(opInfo(Opcode::Load).IsLoad);
  EXPECT_TRUE(opInfo(Opcode::FStore).IsStore);
  EXPECT_TRUE(opInfo(Opcode::Br).IsTerminator);
  EXPECT_EQ(opInfo(Opcode::IMul).Cls, InstrClass::LongInt);
  EXPECT_EQ(opInfo(Opcode::FDiv).Cls, InstrClass::LongFp);
}

TEST(IRBasics, FImmRoundTrip) {
  Instr In;
  In.setFImm(3.14159);
  EXPECT_DOUBLE_EQ(In.fimm(), 3.14159);
  In.setFImm(-0.0);
  EXPECT_DOUBLE_EQ(In.fimm(), -0.0);
}

TEST(IRBasics, CMovReadsOldDst) {
  Instr In;
  In.Op = Opcode::CMov;
  In.Dst = Reg(100);
  In.SrcA = Reg(101);
  In.SrcB = Reg(102);
  std::vector<Reg> Uses;
  In.appendUses(Uses);
  ASSERT_EQ(Uses.size(), 3u);
  EXPECT_EQ(Uses[2], Reg(100));
}

TEST(Layout, ArraysAreCacheLineAligned) {
  Module M = buildSumModule(7);
  for (const ArrayInfo &A : M.Arrays)
    EXPECT_EQ(A.Base % 32, 0u) << A.Name;
  EXPECT_GE(M.Arrays[1].Base, M.Arrays[0].Base + 7 * 8);
  EXPECT_GE(M.SpillArrayId, 0);
  EXPECT_GT(M.MemorySize, M.Arrays.back().Base);
}

TEST(Layout, Idempotent) {
  Module M = buildSumModule(4);
  uint64_t Base0 = M.Arrays[0].Base;
  int NumArrays = static_cast<int>(M.Arrays.size());
  M.layout();
  EXPECT_EQ(M.Arrays[0].Base, Base0);
  EXPECT_EQ(static_cast<int>(M.Arrays.size()), NumArrays);
}

TEST(Verifier, AcceptsWellFormed) {
  Module M = buildSumModule(3);
  EXPECT_EQ(verify(M), "");
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M = buildSumModule(3);
  M.Fn.Blocks[3].Instrs.pop_back(); // drop ret
  EXPECT_NE(verify(M), "");
}

TEST(Verifier, RejectsClassMismatch) {
  Module M = buildSumModule(3);
  // FAdd with an integer operand.
  for (Instr &I : M.Fn.Blocks[2].Instrs)
    if (I.Op == Opcode::FAdd)
      I.SrcB = I.SrcA = Reg(0); // physical int reg
  EXPECT_NE(verify(M), "");
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module M = buildSumModule(3);
  M.Fn.Blocks[1].terminator().Target0 = 99;
  EXPECT_NE(verify(M), "");
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Module M = buildSumModule(3);
  Instr Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.Target0 = 0;
  auto &Instrs = M.Fn.Blocks[2].Instrs;
  Instrs.insert(Instrs.begin(), Jmp);
  EXPECT_NE(verify(M), "");
}

TEST(Interp, SumsArray) {
  // All memory starts zeroed, so the sum is 0; use a program that writes
  // then reads instead: store i as double via ItoF into A, then sum.
  const int64_t N = 10;
  Module M = buildSumModule(N);
  // Prepend an init loop is complex here; instead run and check determinism
  // and the block counts of the sum loop.
  InterpResult R = interpret(M);
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.BlockCounts[0], 1u);
  EXPECT_EQ(R.BlockCounts[1], static_cast<uint64_t>(N + 1));
  EXPECT_EQ(R.BlockCounts[2], static_cast<uint64_t>(N));
  EXPECT_EQ(R.BlockCounts[3], 1u);
  // Edge counts: b1 takes the loop edge N times, exits once.
  EXPECT_EQ(R.EdgeCounts[1][0], static_cast<uint64_t>(N));
  EXPECT_EQ(R.EdgeCounts[1][1], 1u);
}

TEST(Interp, ChecksumIsDeterministic) {
  Module M1 = buildSumModule(5);
  Module M2 = buildSumModule(5);
  EXPECT_EQ(interpret(M1).Checksum, interpret(M2).Checksum);
}

TEST(Interp, RespectsInstructionBudget) {
  Module M = buildSumModule(1000000);
  InterpResult R = interpret(M, 100);
  EXPECT_FALSE(R.Finished);
  EXPECT_LE(R.DynInstrs, 100u);
}

TEST(Interp, DynInstrCountMatchesStructure) {
  const int64_t N = 4;
  Module M = buildSumModule(N);
  InterpResult R = interpret(M);
  // b0: 5 instrs, b1: 2 per visit, b2: 6 per iteration, b3: 2.
  uint64_t Expected = 5 + 2 * (N + 1) + 6 * N + 2;
  EXPECT_EQ(R.DynInstrs, Expected);
}

TEST(Printer, ContainsOpcodesAndBlocks) {
  Module M = buildSumModule(2);
  std::string S = printFunction(M.Fn);
  EXPECT_NE(S.find("b0:"), std::string::npos);
  EXPECT_NE(S.find("fld"), std::string::npos);
  EXPECT_NE(S.find("br"), std::string::npos);
  EXPECT_NE(S.find("ret"), std::string::npos);
}

TEST(Liveness, LoopCarriedValuesLiveAroundLoop) {
  Module M = buildSumModule(3);
  Liveness L = computeLiveness(M.Fn);
  // Sum (vreg index 1 => id 65) is live into the loop header and body.
  Reg Sum(NumPhysTotal + 1);
  EXPECT_TRUE(L.isLiveIn(1, Sum));
  EXPECT_TRUE(L.isLiveIn(2, Sum));
  EXPECT_TRUE(L.isLiveIn(3, Sum));
  // X (vreg index 5) is block-local to b2: not live in anywhere.
  Reg X(NumPhysTotal + 5);
  for (int B = 0; B != 4; ++B)
    EXPECT_FALSE(L.isLiveIn(B, X)) << "block " << B;
}

TEST(Liveness, DeadAfterLastUse) {
  Module M = buildSumModule(3);
  Liveness L = computeLiveness(M.Fn);
  Reg Sum(NumPhysTotal + 1);
  // Sum is consumed by the store in b3 and not live out of it.
  EXPECT_FALSE(L.isLiveOut(3, Sum));
}
