//===- tests/trace_test.cpp - Trace formation / scheduling tests ----------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "regalloc/LinearScan.h"
#include "sim/Machine.h"
#include "trace/Trace.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>
#include <algorithm>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::trace;

namespace {

lang::Program parseOk(const std::string &Src) {
  lang::ParseResult R = lang::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = lang::checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

/// Lowers without if-conversion so conditionals stay as branches (the
/// interesting case for trace scheduling).
Module lowerBranchy(const lang::Program &P) {
  lower::LowerOptions Opts;
  Opts.IfConversion = false;
  lower::LowerResult LR = lower::lowerProgram(P, Opts);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return std::move(LR.M);
}

/// The full equivalence gauntlet: profile, trace-schedule with both weight
/// models, verify, and compare interpreter checksums; then register-allocate
/// and run the timing simulator for the same check.
void expectTraceEquivalence(const std::string &Src) {
  lang::Program P = parseOk(Src);
  lang::EvalResult Ref = lang::evalProgram(P);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    Module M = lowerBranchy(P);
    InterpResult Profile = interpret(M);
    ASSERT_TRUE(Profile.Finished);
    traceScheduleFunction(M, Profile, Kind);
    ASSERT_EQ(verify(M), "") << printFunction(M.Fn);
    InterpResult After = interpret(M);
    ASSERT_TRUE(After.Finished);
    EXPECT_EQ(After.Checksum, Ref.Checksum) << Src;

    regalloc::RegAllocStats RA = regalloc::allocateRegisters(M);
    ASSERT_TRUE(RA.ok()) << RA.Error;
    ASSERT_EQ(verify(M), "");
    sim::SimResult SR = sim::simulate(M);
    ASSERT_TRUE(SR.Finished);
    EXPECT_EQ(SR.Checksum, Ref.Checksum) << Src;
  }
}

/// Biased diamond in a loop: the Figure-2 shape (split, two arms, join,
/// tail) with a dominant path.
const char *BiasedDiamond = R"(
array A[256] output;
var t = 0.0;
for (i = 0; i < 256; i += 1) {
  if (i < 240) {
    t = t + 1.0;
    A[i] = t * 2.0;
  } else {
    t = t - 1.0;
    A[i] = t * 0.5;
  }
  A[i] = A[i] + i;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Trace formation
//===----------------------------------------------------------------------===//

TEST(TraceForm, FollowsDominantPath) {
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  std::vector<Trace> Traces = formTraces(M.Fn, Profile);

  // Find the block of the hot arm (the one executed 240 times) and the cold
  // arm (16 times); the hottest trace must contain the hot arm and not the
  // cold one.
  int Hot = -1, Cold = -1;
  for (size_t B = 0; B != Profile.BlockCounts.size(); ++B) {
    if (Profile.BlockCounts[B] == 240)
      Hot = static_cast<int>(B);
    if (Profile.BlockCounts[B] == 16)
      Cold = static_cast<int>(B);
  }
  ASSERT_GE(Hot, 0);
  ASSERT_GE(Cold, 0);

  const Trace *HotTrace = nullptr;
  for (const Trace &T : Traces)
    if (std::find(T.begin(), T.end(), Hot) != T.end())
      HotTrace = &T;
  ASSERT_NE(HotTrace, nullptr);
  EXPECT_GE(HotTrace->size(), 2u) << "hot path should form a multi-block trace";
  EXPECT_EQ(std::find(HotTrace->begin(), HotTrace->end(), Cold),
            HotTrace->end())
      << "cold arm must not join the hot trace";
}

TEST(TraceForm, EveryBlockInExactlyOneTrace) {
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  std::vector<Trace> Traces = formTraces(M.Fn, Profile);
  std::vector<int> Seen(M.Fn.Blocks.size(), 0);
  for (const Trace &T : Traces)
    for (int B : T)
      ++Seen[B];
  for (size_t B = 0; B != Seen.size(); ++B)
    EXPECT_EQ(Seen[B], 1) << "block " << B;
}

TEST(TraceForm, TracesAreControlFlowPaths) {
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  for (const Trace &T : formTraces(M.Fn, Profile))
    for (size_t K = 0; K + 1 != T.size(); ++K) {
      std::vector<int> Succs = M.Fn.Blocks[T[K]].successors();
      EXPECT_NE(std::find(Succs.begin(), Succs.end(), T[K + 1]), Succs.end())
          << "trace hops a non-edge";
    }
}

TEST(TraceForm, NeverCrossesBackEdges) {
  // A simple loop: the body block's back edge to itself must not produce a
  // trace containing the block twice, and the loop body must not chain into
  // a prior block through the back edge.
  lang::Program P = parseOk("array A[64] output;\n"
                            "for (i = 0; i < 64; i += 1) { A[i] = i; }\n");
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  for (const Trace &T : formTraces(M.Fn, Profile)) {
    std::vector<int> Sorted = T;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()), Sorted.end())
        << "a block appears twice in a trace";
  }
}

//===----------------------------------------------------------------------===//
// Trace scheduling: semantics
//===----------------------------------------------------------------------===//

TEST(TraceSched, BiasedDiamondEquivalent) {
  expectTraceEquivalence(BiasedDiamond);
}

TEST(TraceSched, NestedConditionals) {
  expectTraceEquivalence(R"(
array A[128] output;
var t = 0.0;
for (i = 0; i < 128; i += 1) {
  if (i < 100) {
    if (i < 50) { t = t + 1.0; } else { t = t + 2.0; }
    A[i] = t;
  } else {
    A[i] = t - i;
  }
}
)");
}

TEST(TraceSched, FiftyFiftyBranches) {
  // DYFESM-style: no dominant path; traces are short and compensation
  // hurts, but semantics must hold.
  expectTraceEquivalence(R"(
array A[200] output;
var t = 1.0;
for (i = 0; i < 200; i += 2) {
  if (A[i] < 1.0) { t = t * 1.001; A[i] = t + i; }
  if (A[i + 1] < t) { A[i + 1] = t - i; } else { A[i + 1] = 2.0; }
}
)");
}

TEST(TraceSched, StraightLineCode) {
  expectTraceEquivalence(R"(
array Out[16] output;
var a = 1.0;
var b = 2.0;
Out[0] = a + b;
Out[1] = a * b;
Out[2] = a - b;
Out[3] = a / b;
)");
}

TEST(TraceSched, SequentialLoopsAndTails) {
  expectTraceEquivalence(R"(
array A[64];
array B[64] output;
var s = 0.0;
for (i = 0; i < 64; i += 1) { A[i] = i * 1.5; }
for (i = 0; i < 64; i += 1) { B[i] = A[i] + 1.0; s = s + B[i]; }
B[0] = s;
if (s < 100.0) { B[1] = 7.0; } else { B[2] = 8.0; }
)");
}

TEST(TraceSched, DeepLoopNest) {
  expectTraceEquivalence(R"(
array C[8][8][4] output;
for (i = 0; i < 8; i += 1) {
  for (j = 0; j < 8; j += 1) {
    for (k = 0; k < 4; k += 1) {
      if (k < 2) { C[i][j][k] = i + j + k; } else { C[i][j][k] = i * j; }
    }
  }
}
)");
}

//===----------------------------------------------------------------------===//
// Trace scheduling: structure
//===----------------------------------------------------------------------===//

TEST(TraceSched, ReportsStats) {
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  TraceStats S = traceScheduleFunction(M, Profile,
                                       sched::SchedulerKind::Balanced);
  EXPECT_GT(S.Traces, 0);
  EXPECT_GT(S.MultiBlockTraces, 0);
  EXPECT_GE(S.LongestTrace, 2);
}

TEST(TraceSched, CompensationPreservesColdPath) {
  // Force motion above a join: the tail statement's code can hoist into the
  // hot arm, requiring a compensation copy on the cold arm's entry.
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  size_t BlocksBefore = M.Fn.Blocks.size();
  InterpResult Profile = interpret(M);
  TraceStats S = traceScheduleFunction(M, Profile,
                                       sched::SchedulerKind::Balanced);
  ASSERT_EQ(verify(M), "");
  if (S.CompensationBlocks > 0) {
    EXPECT_GT(M.Fn.Blocks.size(), BlocksBefore);
    EXPECT_GT(S.CompensationInstrs, 0);
  }
  // Either way the program still computes the same thing (checked via
  // interpreter against the AST oracle).
  lang::EvalResult Ref = lang::evalProgram(P);
  EXPECT_EQ(interpret(M).Checksum, Ref.Checksum);
}

TEST(TraceSched, BranchOrderPreservedInSegments) {
  lang::Program P = parseOk(BiasedDiamond);
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  traceScheduleFunction(M, Profile, sched::SchedulerKind::Balanced);
  // Every block still ends in exactly one terminator (verify checks this,
  // but assert directly for clarity).
  for (const BasicBlock &B : M.Fn.Blocks) {
    ASSERT_FALSE(B.Instrs.empty());
    for (size_t K = 0; K != B.Instrs.size(); ++K)
      EXPECT_EQ(B.Instrs[K].isTerminator(), K + 1 == B.Instrs.size());
  }
}

TEST(TraceSched, WorksAfterUnrolling) {
  // The paper's main use: traces over unrolled loops with internal
  // conditionals.
  lang::Program P = parseOk(R"(
array A[128] output;
var t = 0.0;
for (i = 0; i < 126; i += 1) {
  if (i < 120) { t = t + 1.0; A[i] = t; } else { A[i] = 0.5 * i; t = 0.0; }
}
)");
  lang::EvalResult Ref = lang::evalProgram(P);
  xform::UnrollStats U = xform::unrollLoops(P, 4);
  (void)U;
  ASSERT_EQ(lang::checkProgram(P), "");
  Module M = lowerBranchy(P);
  InterpResult Profile = interpret(M);
  traceScheduleFunction(M, Profile, sched::SchedulerKind::Balanced);
  ASSERT_EQ(verify(M), "");
  EXPECT_EQ(interpret(M).Checksum, Ref.Checksum);
}
