//===- tests/fuzz_test.cpp - Differential fuzzing of the whole pipeline ----===//
//
// Property-based testing: for randomly generated (but deterministic,
// seed-indexed) kernel programs, every compiler configuration must produce
// code whose interpreted output checksum matches the AST evaluator's. This
// sweeps code shapes the hand-written tests and the 17 workloads miss.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"

#include "driver/Compiler.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Generate.h"
#include "lang/Parser.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace bsched;
using test::fuzzConfigs;

namespace {

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FuzzPipeline, EveryConfigMatchesOracle) {
  lang::Program P = lang::generateProgram(GetParam());

  lang::EvalResult Ref = lang::evalProgram(P);
  ASSERT_TRUE(Ref.ok()) << "seed " << GetParam() << ": oracle failed: "
                        << Ref.Error << "\n"
                        << lang::printProgram(P);

  for (const driver::CompileOptions &Opts : fuzzConfigs()) {
    // CompileOptions::VerifyPasses defaults to on: the static verifier runs
    // after scheduling and after allocation for every config and seed.
    driver::CompileResult C = driver::compileProgram(P, Opts);
    std::string DiagText;
    for (const verify::Diagnostic &D : C.VerifyDiags)
      DiagText += verify::toString(D) + "\n";
    ASSERT_TRUE(C.VerifyDiags.empty())
        << "seed " << GetParam() << " [" << Opts.tag()
        << "]: verifier diagnostics:\n"
        << DiagText << lang::printProgram(P);
    ASSERT_TRUE(C.ok()) << "seed " << GetParam() << " [" << Opts.tag()
                        << "]: " << C.Error << "\n"
                        << lang::printProgram(P);
    ir::InterpResult I = ir::interpret(C.M);
    ASSERT_TRUE(I.Finished) << "seed " << GetParam();
    ASSERT_EQ(I.Checksum, Ref.Checksum)
        << "seed " << GetParam() << " [" << Opts.tag() << "] miscompiled:\n"
        << lang::printProgram(P);
  }
}

// 100 seeds x 12 configs; the per-config verifier passes bound the sweep's
// wall-clock, so the seed count trades off against the added config.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(0, 100));

namespace {

class FuzzSim : public ::testing::TestWithParam<uint64_t> {};

/// Asserts every SimResult field equal between the two simulator cores.
void expectSimResultsEqual(const sim::SimResult &F, const sim::SimResult &R,
                           uint64_t Seed, const char *Tag) {
  EXPECT_EQ(F.Finished, R.Finished) << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.Checksum, R.Checksum) << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.Cycles, R.Cycles) << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.Counts.total(), R.Counts.total())
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.LoadInterlockCycles, R.LoadInterlockCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.FixedInterlockCycles, R.FixedInterlockCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.ICacheStallCycles, R.ICacheStallCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.ITlbStallCycles, R.ITlbStallCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.DTlbStallCycles, R.DTlbStallCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.BranchPenaltyCycles, R.BranchPenaltyCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.MshrStallCycles, R.MshrStallCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.WriteBufferStallCycles, R.WriteBufferStallCycles)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.L1D.Accesses, R.L1D.Accesses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.L1D.Misses, R.L1D.Misses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.L1I.Accesses, R.L1I.Accesses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.L1I.Misses, R.L1I.Misses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.DTlbMisses, R.DTlbMisses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.ITlbMisses, R.ITlbMisses)
      << "seed " << Seed << " [" << Tag << "]";
  EXPECT_EQ(F.BranchMispredicts, R.BranchMispredicts)
      << "seed " << Seed << " [" << Tag << "]";
}

} // namespace

// Sim-focused differential fuzzing: random programs through one compile,
// then the fast and reference simulator cores must agree on every statistic
// under machine models that stress different fast paths. Random CFGs reach
// fetch-run and branch shapes the 17 curated workloads never build.
TEST_P(FuzzSim, FastCoreMatchesReferenceCore) {
  lang::Program P = lang::generateProgram(GetParam());
  driver::CompileOptions Opts;
  Opts.UnrollFactor = 4;
  Opts.VerifyPasses = false; // legality is FuzzPipeline's job
  driver::CompileResult C = driver::compileProgram(P, Opts);
  ASSERT_TRUE(C.ok()) << "seed " << GetParam() << ": " << C.Error;

  for (test::MachinePoint &M : test::simDifferentialMachines()) {
    M.Config.Impl = sim::SimImpl::Fast;
    sim::SimResult F = sim::simulate(C.M, M.Config, /*MaxCycles=*/400000);
    M.Config.Impl = sim::SimImpl::Reference;
    sim::SimResult R = sim::simulate(C.M, M.Config, /*MaxCycles=*/400000);
    ASSERT_TRUE(F.ok()) << "seed " << GetParam() << ": " << F.Error;
    expectSimResultsEqual(F, R, GetParam(), M.Tag);
  }
}

INSTANTIATE_TEST_SUITE_P(SimSeeds, FuzzSim, ::testing::Range<uint64_t>(0, 25));

TEST(Generator, DeterministicPerSeed) {
  lang::Program A = lang::generateProgram(42);
  lang::Program B = lang::generateProgram(42);
  EXPECT_EQ(lang::printProgram(A), lang::printProgram(B));
  lang::Program C = lang::generateProgram(43);
  EXPECT_NE(lang::printProgram(A), lang::printProgram(C));
}

TEST(Generator, ProgramsAreReparseable) {
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    std::string Text = lang::printProgram(P);
    lang::ParseResult R = lang::parseProgram(Text);
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error << "\n" << Text;
    EXPECT_EQ(lang::checkProgram(R.Prog), "");
  }
}

TEST(Generator, TinyMaxArrayElemsIsRejected) {
  // The shared lead dimension is at least 8, so MaxArrayElems cannot go
  // below that. It used to underflow the nextBelow(MaxArrayElems - 7)
  // bound (wrapping to a near-2^64 draw and absurd array sizes); now the
  // generator asserts in debug builds and clamps to 8 otherwise.
  lang::GenerateOptions Boundary;
  Boundary.MaxArrayElems = 8; // smallest honorable value: LeadDim == 8
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    lang::Program P = lang::generateProgram(Seed, Boundary);
    ASSERT_FALSE(P.Arrays.empty()) << "seed " << Seed;
    for (const lang::ArrayDecl &A : P.Arrays)
      EXPECT_EQ(A.Dims[0], 8) << "seed " << Seed << " array " << A.Name;
    EXPECT_TRUE(lang::evalProgram(P, /*MaxStmts=*/2000000).ok())
        << "seed " << Seed;
  }
#ifdef NDEBUG
  // Release builds clamp instead of asserting; the result is identical to
  // MaxArrayElems == 8.
  lang::GenerateOptions Tiny;
  Tiny.MaxArrayElems = 3;
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    lang::Program P = lang::generateProgram(Seed, Tiny);
    EXPECT_EQ(lang::printProgram(P),
              lang::printProgram(lang::generateProgram(Seed, Boundary)))
        << "seed " << Seed;
  }
#endif
}

TEST(Generator, ProgramsTerminateQuickly) {
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    lang::EvalResult R = lang::evalProgram(P, /*MaxStmts=*/2000000);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << " ran away";
  }
}

