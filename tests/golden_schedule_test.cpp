//===- tests/golden_schedule_test.cpp - Schedule determinism goldens --------===//
//
// Pins the scheduler's output down to the byte:
//
//  * Golden hashes: every workload, compiled under a spread of scheduler
//    kinds and configurations (virtual-register code, pre-regalloc), must
//    hash to the checked-in value in golden_schedules.inc. Any change to
//    scheduling output — intended or not — shows up as a diff of that file.
//  * Fast == Reference: the optimized scheduler core (sched::SchedImpl::Fast)
//    must reproduce the preserved seed implementation's output exactly, for
//    every workload and configuration.
//  * Thread invariance: running experiments on a thread pool must give
//    results identical to running them sequentially, and runCached must hand
//    every concurrent caller the same stable reference.
//
// Regenerating the goldens after an intentional scheduling change:
//   BSCHED_GOLDEN_REGEN=1 ./golden_schedule_test > tests/golden_schedules.inc
//
//===----------------------------------------------------------------------===//

#include "driver/Experiment.h"
#include "ir/Interp.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "regalloc/LinearScan.h"
#include "support/ThreadPool.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// The configurations pinned by the golden table: each scheduler kind on
/// straight-line blocks, plus the big-block (unroll 8) and trace paths for
/// the two kinds the paper compares throughout — each trace path twice,
/// once with the interpreted profile and once with the static estimate
/// (trace::estimateProfile), so estimator changes show up as golden diffs.
std::vector<CompileOptions> goldenConfigs() {
  std::vector<CompileOptions> Cs;
  auto Base = [] {
    CompileOptions O;
    O.StopBeforeRegAlloc = true; // hash the schedule, not the allocator
    O.VerifyPasses = false;      // legality is pipeline_test/fuzz_test's job
    return O;
  };
  for (sched::SchedulerKind K :
       {sched::SchedulerKind::Balanced, sched::SchedulerKind::Traditional,
        sched::SchedulerKind::Hybrid}) {
    CompileOptions O = Base();
    O.Scheduler = K;
    Cs.push_back(O);
  }
  for (sched::SchedulerKind K :
       {sched::SchedulerKind::Balanced, sched::SchedulerKind::Traditional}) {
    for (bool Est : {false, true}) {
      CompileOptions O = Base();
      O.Scheduler = K;
      O.UnrollFactor = 8;
      O.TraceScheduling = true;
      O.UseEstimatedProfile = Est;
      Cs.push_back(O);
    }
  }
  return Cs;
}

std::string compiledText(const lang::Program &P, CompileOptions Opts,
                         sched::SchedImpl Impl) {
  Opts.Balance.Impl = Impl;
  CompileResult C = compileProgram(P, Opts);
  EXPECT_TRUE(C.ok()) << C.Error;
  return C.ok() ? ir::printFunction(C.M.Fn) : std::string();
}

struct GoldenRow {
  const char *Config;
  const char *Workload;
  uint64_t Hash;
};

const GoldenRow GoldenTable[] = {
#include "golden_schedules.inc"
    {"", "", 0}, // sentinel so the array is never empty pre-regeneration
};

const GoldenRow *findGolden(const std::string &Config,
                            const std::string &Workload) {
  for (const GoldenRow &R : GoldenTable)
    if (Config == R.Config && Workload == R.Workload)
      return &R;
  return nullptr;
}

} // namespace

/// Fast and Reference cores produce byte-identical virtual-register code for
/// every workload under every golden configuration, and the fast output
/// matches the checked-in golden hash.
TEST(GoldenSchedule, FastMatchesReferenceAndGoldens) {
  bool Regen = std::getenv("BSCHED_GOLDEN_REGEN") != nullptr;
  for (const CompileOptions &Opts : goldenConfigs()) {
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      std::string Fast = compiledText(P, Opts, sched::SchedImpl::Fast);
      std::string Ref = compiledText(P, Opts, sched::SchedImpl::Reference);
      ASSERT_FALSE(Fast.empty());
      EXPECT_EQ(Fast, Ref) << W.Name << " [" << Opts.tag()
                           << "]: optimized scheduler diverged from the "
                              "reference implementation";
      if (Opts.TraceScheduling) {
        // The trace-core twin must hit the same golden bytes: fast scheduler
        // core both times, only the trace scheduler differs.
        CompileOptions TraceRef = Opts;
        TraceRef.TraceImpl = trace::TraceImpl::Reference;
        std::string TR = compiledText(P, TraceRef, sched::SchedImpl::Fast);
        EXPECT_EQ(Fast, TR) << W.Name << " [" << Opts.tag()
                            << "]: fast trace core diverged from the "
                               "reference trace twin";
      }
      uint64_t H = fnv1a(Fast);
      if (Regen) {
        std::printf("    {\"%s\", \"%s\", 0x%016llxull},\n",
                    Opts.tag().c_str(), W.Name,
                    static_cast<unsigned long long>(H));
        continue;
      }
      const GoldenRow *G = findGolden(Opts.tag(), W.Name);
      ASSERT_NE(G, nullptr)
          << W.Name << " [" << Opts.tag() << "]: no golden entry "
          << "(regenerate tests/golden_schedules.inc)";
      EXPECT_EQ(G->Hash, H)
          << W.Name << " [" << Opts.tag() << "]: schedule changed "
          << "(regenerate tests/golden_schedules.inc if intended)";
    }
  }
}

namespace {

/// Lowers \p W (optionally unrolled) without cleanup, ready for a pass-level
/// differential run.
ir::Module lowerWorkload(const Workload &W, int Unroll) {
  lang::Program P = parseWorkload(W);
  if (Unroll > 1) {
    xform::unrollLoops(P, Unroll);
    EXPECT_EQ(lang::checkProgram(P), "");
  }
  lower::LowerResult LR = lower::lowerProgram(P, {});
  EXPECT_TRUE(LR.ok()) << W.Name << ": " << LR.Error;
  return std::move(LR.M);
}

} // namespace

/// The dense timestamp-validated cleanup passes make the same decisions as
/// the preserved map-based reference passes: identical stats and identical
/// module text on every workload, plain and unrolled.
TEST(PassEquivalence, CleanupFastMatchesReference) {
  for (const Workload &W : workloads()) {
    for (int Unroll : {1, 8}) {
      ir::Module FastM = lowerWorkload(W, Unroll);
      ir::Module RefM = FastM;
      opt::CleanupStats FS = opt::cleanupModule(FastM, /*UseReferenceImpl=*/false);
      opt::CleanupStats RS = opt::cleanupModule(RefM, /*UseReferenceImpl=*/true);
      EXPECT_EQ(FS.CopiesPropagated, RS.CopiesPropagated) << W.Name;
      EXPECT_EQ(FS.ConstantsFolded, RS.ConstantsFolded) << W.Name;
      EXPECT_EQ(FS.Hoisted, RS.Hoisted) << W.Name;
      EXPECT_EQ(FS.DeadRemoved, RS.DeadRemoved) << W.Name;
      EXPECT_EQ(FS.Iterations, RS.Iterations) << W.Name;
      EXPECT_EQ(ir::printFunction(FastM.Fn), ir::printFunction(RefM.Fn))
          << W.Name << " LU" << Unroll
          << ": dense cleanup diverged from the reference passes";
    }
  }
}

/// The dense linear-scan allocator and the preserved map-based seed
/// allocator emit identical code and stats — including under a tight
/// register file that forces spills, restores, and remats everywhere.
TEST(PassEquivalence, RegAllocFastMatchesReference) {
  for (const Workload &W : workloads()) {
    for (unsigned PerClass : {28u, 6u}) {
      ir::Module FastM = lowerWorkload(W, 4);
      opt::cleanupModule(FastM);
      ir::Module RefM = FastM;
      regalloc::RegAllocOptions Opts;
      Opts.AllocatablePerClass = PerClass;
      regalloc::RegAllocStats FS =
          regalloc::allocateRegisters(FastM, Opts, /*UseReferenceImpl=*/false);
      regalloc::RegAllocStats RS =
          regalloc::allocateRegisters(RefM, Opts, /*UseReferenceImpl=*/true);
      ASSERT_TRUE(FS.ok()) << W.Name << ": " << FS.Error;
      ASSERT_TRUE(RS.ok()) << W.Name << ": " << RS.Error;
      EXPECT_EQ(FS.SpilledVRegs, RS.SpilledVRegs) << W.Name;
      EXPECT_EQ(FS.SpillStores, RS.SpillStores) << W.Name;
      EXPECT_EQ(FS.RestoreLoads, RS.RestoreLoads) << W.Name;
      EXPECT_EQ(FS.Remats, RS.Remats) << W.Name;
      EXPECT_EQ(FS.IntRegsUsed, RS.IntRegsUsed) << W.Name;
      EXPECT_EQ(FS.FpRegsUsed, RS.FpRegsUsed) << W.Name;
      EXPECT_EQ(ir::printFunction(FastM.Fn), ir::printFunction(RefM.Fn))
          << W.Name << " regs/class=" << PerClass
          << ": dense allocator diverged from the reference allocator";
    }
  }
}

/// The predecoded interpreter reproduces the instruction-at-a-time executor
/// bit for bit: same termination, dynamic instruction count, checksum, and
/// block/edge profile on every workload.
TEST(PassEquivalence, PredecodedInterpreterMatchesByInstr) {
  for (const Workload &W : workloads()) {
    ir::Module M = lowerWorkload(W, 4);
    opt::cleanupModule(M);
    ir::InterpResult Fast = ir::interpret(M);
    ir::InterpResult Ref = ir::interpretByInstr(M);
    EXPECT_EQ(Fast.Finished, Ref.Finished) << W.Name;
    EXPECT_EQ(Fast.DynInstrs, Ref.DynInstrs) << W.Name;
    EXPECT_EQ(Fast.Checksum, Ref.Checksum) << W.Name;
    EXPECT_EQ(Fast.BlockCounts, Ref.BlockCounts) << W.Name;
    EXPECT_EQ(Fast.EdgeCounts, Ref.EdgeCounts) << W.Name;
    // The budget cutoff truncates at the same block boundary.
    ir::InterpResult FastCut = ir::interpret(M, 10000);
    ir::InterpResult RefCut = ir::interpretByInstr(M, 10000);
    EXPECT_EQ(FastCut.Finished, RefCut.Finished) << W.Name;
    EXPECT_EQ(FastCut.DynInstrs, RefCut.DynInstrs) << W.Name;
    EXPECT_EQ(FastCut.BlockCounts, RefCut.BlockCounts) << W.Name;
  }
}

/// Experiment results are a pure function of the job: running the same jobs
/// sequentially and on a multi-worker pool yields identical cycle counts and
/// checksums (per-compile RNG streams, no cross-compile state).
TEST(ParallelPipeline, ThreadCountInvariance) {
  std::vector<const Workload *> Ws;
  const auto &All = workloads();
  for (size_t I = 0; I < All.size() && I < 5; ++I)
    Ws.push_back(&All[I]);

  std::vector<CompileOptions> Cfgs(2);
  Cfgs[0].Scheduler = sched::SchedulerKind::Balanced;
  Cfgs[1].Scheduler = sched::SchedulerKind::Balanced;
  Cfgs[1].UnrollFactor = 4;
  Cfgs[1].TraceScheduling = true;

  struct Outcome {
    uint64_t Cycles = 0;
    uint64_t Checksum = 0;
  };
  auto RunAt = [&](unsigned Threads) {
    std::vector<Outcome> Out(Ws.size() * Cfgs.size());
    ThreadPool::parallelFor(Threads, Out.size(), [&](size_t I) {
      const Workload &W = *Ws[I % Ws.size()];
      const CompileOptions &O = Cfgs[I / Ws.size()];
      RunResult R = runWorkload(W, O);
      ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
      Out[I] = {R.Sim.Cycles, R.Sim.Checksum};
    });
    return Out;
  };

  std::vector<Outcome> Seq = RunAt(1);
  std::vector<Outcome> Par = RunAt(3);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I != Seq.size(); ++I) {
    EXPECT_EQ(Seq[I].Cycles, Par[I].Cycles) << "job " << I;
    EXPECT_EQ(Seq[I].Checksum, Par[I].Checksum) << "job " << I;
  }
}

/// Hammer runCached with concurrent same-key calls: every caller must get
/// the same address (one computation, stable reference), and runAll must
/// return identical pointers whatever the thread count.
TEST(ParallelPipeline, RunCachedIsThreadSafe) {
  const Workload &W = workloads().front();
  CompileOptions Opts;
  Opts.Scheduler = sched::SchedulerKind::Balanced;

  constexpr unsigned NumCalls = 16;
  std::vector<const RunResult *> Ptrs(NumCalls, nullptr);
  ThreadPool::parallelFor(4, NumCalls,
                          [&](size_t I) { Ptrs[I] = &runCached(W, Opts); });
  for (const RunResult *P : Ptrs) {
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(P, Ptrs.front());
    EXPECT_TRUE(P->ok()) << P->Error;
  }

  std::vector<ExperimentJob> Jobs;
  for (const Workload &Each : workloads()) {
    Jobs.push_back({&Each, Opts, {}});
    if (Jobs.size() == 6)
      break;
  }
  std::vector<const RunResult *> Seq = runAll(Jobs, 1);
  std::vector<const RunResult *> Par = runAll(Jobs, 4);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I != Seq.size(); ++I) {
    EXPECT_EQ(Seq[I], Par[I]) << "job " << I;
    EXPECT_TRUE(Seq[I]->ok()) << Seq[I]->Error;
  }
}
